module Sim = Ccsim_engine.Sim
module Packet = Ccsim_net.Packet
module Cca = Ccsim_cca.Cca
module Obs = Ccsim_obs

type segment = {
  seq : int;
  len : int;
  mutable sent_at : float;
  mutable retx_count : int;
  mutable sacked : bool;
  mutable lost : bool;  (* marked for retransmission *)
  mutable in_pipe : bool;  (* counted in the outstanding estimate *)
  mutable delivered_at_send : int;
  mutable app_limited_at_send : bool;
}

type limited = Not_started | App | Rwnd | Cwnd | Pacing | Busy

let limited_equal a b =
  match (a, b) with
  | Not_started, Not_started | App, App | Rwnd, Rwnd -> true
  | Cwnd, Cwnd | Pacing, Pacing | Busy, Busy -> true
  | _ -> false

let limited_index = function
  | Not_started -> 0
  | App -> 1
  | Rwnd -> 2
  | Cwnd -> 3
  | Pacing -> 4
  | Busy -> 5

type t = {
  sim : Sim.t;
  flow : int;
  cca : Cca.t;
  path : Packet.t -> unit;
  mss : int;
  on_complete : t -> unit;
  rtt : Rtt_estimator.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable buffered : int;  (* application bytes not yet segmented *)
  mutable unlimited : bool;
  mutable closed : bool;
  mutable completed : bool;
  mutable stopped : bool;
  mutable rwnd : int;  (* latest advertised receive window *)
  segments : segment Queue.t;  (* in flight, ascending seq *)
  mutable pipe_bytes : int;  (* SACK-aware outstanding estimate *)
  mutable lost_bytes : int;  (* marked lost, not yet retransmitted *)
  mutable highest_sacked : int;
  mutable newest_delivered_sent_at : float;
      (* transmit time of the most recently sent segment known delivered;
         RACK marks a segment lost only if something sent after it got
         through *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;  (* recovery ends when snd_una passes this *)
  mutable last_ecn_response : float;
      (* an ECN echo triggers at most one congestion response per RTT *)
  mutable ecn_responses : int;
  mutable rto_event : Sim.event_id option;
  pace_next : float array;
      (* one unboxed slot: a mutable float field in this mixed record
         would box on every per-segment store *)
  mutable pace_pending : bool;
  (* statistics *)
  started_at : float;
  mutable bytes_sent : int;
  mutable bytes_retrans : int;
  mutable segs_retrans : int;
  mutable rto_count : int;
  last_delivery_rate : float array;  (* one unboxed slot, stored per ack *)
  (* Delivery-rate window: a flat ring of (time, delivered) samples,
     one per cumulative ack. The previous representation pushed a
     boxed tuple through a Queue per ack and threaded the baseline as
     an option; the ring keeps the times unboxed and the baseline in
     dedicated slots. *)
  mutable ah_times : float array;
  mutable ah_delivered : int array;
  mutable ah_head : int;
  mutable ah_len : int;
  rate_t0 : float array;  (* one unboxed slot; valid when rate_valid *)
  mutable rate_d0 : int;
  mutable rate_valid : bool;
  mutable delivered_bytes : int;
      (* bytes known delivered: cumulative acks plus SACKed ranges, each
         counted when first learned (as in Linux's tcp_rate sampler) *)
  (* limited-state accounting *)
  mutable limited_state : limited;
  mutable limited_since : float;
  limited_s : float array;
      (* seconds spent in each limited state, indexed by limited_index;
         float-array storage keeps the per-transition accumulation
         unboxed (slot 0, Not_started, is never charged) *)
  mutable recovery_since : float;  (* meaningful while in_recovery *)
  mutable recovery_s : float;
  (* observability, resolved from the ambient scope at creation *)
  m_retransmits : Obs.Metrics.counter option;
  m_rtos : Obs.Metrics.counter option;
  m_cwnd_limited : Obs.Metrics.counter option;
  obs_recorder : Obs.Recorder.t option;
}

let flow t = t.flow
let cca t = t.cca
let bytes_acked t = t.snd_una
let ecn_responses t = t.ecn_responses
let bytes_sent t = t.bytes_sent
let bytes_retrans t = t.bytes_retrans
let segs_retrans t = t.segs_retrans
let inflight t = t.snd_nxt - t.snd_una
let send_buffer t = if t.unlimited then max_int else t.buffered
let srtt t = Rtt_estimator.srtt t.rtt
let min_rtt t = Rtt_estimator.min_rtt t.rtt

(* --- limited-state accounting ------------------------------------------- *)

let[@ccsim.hot] account_limited t state =
  let now = Sim.now t.sim in
  if not (limited_equal state t.limited_state) then begin
    (match (state, t.m_cwnd_limited) with
    | Cwnd, Some c -> Obs.Metrics.inc c
    | _ -> ());
    let prev = limited_index t.limited_state in
    if prev > 0 then
      t.limited_s.(prev) <- t.limited_s.(prev) +. (now -. t.limited_since);
    t.limited_state <- state;
    t.limited_since <- now
  end

let app_limited_now t = (not t.unlimited) && t.buffered < t.mss

(* --- scoreboard helpers --------------------------------------------------- *)

let[@ccsim.hot] remove_from_pipe t seg =
  if seg.in_pipe then begin
    seg.in_pipe <- false;
    t.pipe_bytes <- t.pipe_bytes - seg.len
  end

let[@ccsim.hot] mark_lost t seg =
  if (not seg.lost) && not seg.sacked then begin
    seg.lost <- true;
    t.lost_bytes <- t.lost_bytes + seg.len;
    remove_from_pipe t seg
  end

(* A segment is presumed lost once three segments' worth of later data has
   been selectively acknowledged (RFC 6675's DupThresh in bytes).
   Retransmissions get a RACK-style time-based rule instead: unsacked,
   below the SACK frontier, and older than ~1.5 smoothed RTTs — without
   it, a lost retransmission would linger until the RTO backstop even
   though acks keep arriving. *)
let[@ccsim.hot] detect_losses t =
  let now = Sim.now t.sim in
  let srtt = Rtt_estimator.srtt t.rtt in
  let reorder_window = if srtt > 0.0 then 1.5 *. srtt else 0.1 in
  Queue.iter
    ((fun seg ->
      if (not seg.sacked) && not seg.lost then begin
        if seg.retx_count = 0 && seg.seq + seg.len + (3 * t.mss) <= t.highest_sacked then
          mark_lost t seg
        else if
          seg.sent_at < t.newest_delivered_sent_at && now -. seg.sent_at > reorder_window
        then
          (* RACK-style: a segment sent later has been delivered, and this
             one is older than the reordering window. Covers lost
             retransmissions and holes past the SACK frontier, which
             would otherwise wait for the RTO backstop. *)
          mark_lost t seg
      end)
    [@ccsim.alloc_ok "one scoreboard-sweep closure per ack, not per segment"])
    t.segments

let enter_recovery t =
  if not t.in_recovery then begin
    t.in_recovery <- true;
    t.recover <- t.snd_nxt;
    let now = Sim.now t.sim in
    t.recovery_since <- now;
    (match t.obs_recorder with
    | Some r ->
        Obs.Recorder.record r ~at:now ~severity:Obs.Recorder.Info ~kind:"cca"
          ~point:t.cca.Cca.name
          ~fields:
            [
              ("flow", string_of_int t.flow);
              ("inflight", string_of_int (inflight t));
              ("lost_bytes", string_of_int t.lost_bytes);
            ]
          "loss_response"
    | None -> ());
    t.cca.Cca.on_loss { Cca.now; inflight = inflight t; mss = t.mss }
  end

(* --- timers ---------------------------------------------------------------- *)

let cancel_rto t =
  match t.rto_event with
  | Some id ->
      Sim.cancel t.sim id;
      t.rto_event <- None
  | None -> ()

(* --- transmission ----------------------------------------------------------- *)

let[@ccsim.hot] pacing_delay t bytes =
  let rate = t.cca.Cca.pacing_rate in
  if Float.is_finite rate && rate > 0.0 then float_of_int bytes *. 8.0 /. rate else 0.0

let[@ccsim.hot] transmit t (seg : segment) ~is_retx =
  let now = Sim.now t.sim in
  seg.sent_at <- now;
  seg.in_pipe <- true;
  t.pipe_bytes <- t.pipe_bytes + seg.len;
  seg.delivered_at_send <- t.snd_una;
  seg.app_limited_at_send <- app_limited_now t;
  t.bytes_sent <- t.bytes_sent + seg.len;
  if is_retx then begin
    seg.retx_count <- seg.retx_count + 1;
    t.bytes_retrans <- t.bytes_retrans + seg.len;
    t.segs_retrans <- t.segs_retrans + 1;
    match t.m_retransmits with Some c -> Obs.Metrics.inc c | None -> ()
  end;
  t.pace_next.(0) <- Float.max now t.pace_next.(0) +. pacing_delay t seg.len;
  t.cca.Cca.on_send ~now ~bytes:seg.len;
  (t.path
     (Packet.data ~flow:t.flow ~seq:seg.seq ~payload_bytes:seg.len ~retx:is_retx ~sent_at:now ())
  [@ccsim.alloc_ok
    "packet construction: one record (plus optional-argument wrappers) per transmitted packet"])

let next_lost_segment t =
  if t.lost_bytes = 0 then None
  else begin
    let found = ref None in
    (try
       Queue.iter
         (fun seg ->
           if seg.lost then begin
             found := Some seg;
             raise Exit
           end)
         t.segments
     with Exit -> ());
    !found
  end

let[@ccsim.hot] rec arm_rto t =
  cancel_rto t;
  if inflight t > 0 && not t.stopped then begin
    let delay = Rtt_estimator.rto t.rtt in
    t.rto_event <-
      ((Some
          (Sim.schedule t.sim ~delay (fun () ->
               Sim.set_component t.sim "tcp";
               on_rto t)))
      [@ccsim.alloc_ok
        "rearming builds one timer handle and closure per ack; a timer wheel would reorder same-instant events and break replay determinism"])
  end

and on_rto t =
  t.rto_event <- None;
  if inflight t > 0 && not t.stopped then begin
    t.rto_count <- t.rto_count + 1;
    (match t.m_rtos with Some c -> Obs.Metrics.inc c | None -> ());
    (match t.obs_recorder with
    | Some r ->
        Obs.Recorder.record r ~at:(Sim.now t.sim) ~severity:Obs.Recorder.Warn ~kind:"tcp"
          ~point:"sender"
          ~fields:
            [
              ("flow", string_of_int t.flow);
              ("inflight", string_of_int (inflight t));
              ("rto_count", string_of_int t.rto_count);
            ]
          "rto"
    | None -> ());
    Rtt_estimator.backoff t.rtt;
    t.cca.Cca.on_rto ~now:(Sim.now t.sim);
    t.dupacks <- 0;
    if not t.in_recovery then t.recovery_since <- Sim.now t.sim;
    t.in_recovery <- true;
    t.recover <- t.snd_nxt;
    (* Everything unsacked is presumed lost and will be retransmitted as
       the (collapsed) window allows. *)
    Queue.iter (fun seg -> if not seg.sacked then mark_lost t seg) t.segments;
    try_send t;
    arm_rto t
  end

and schedule_pace t ~now =
  if not t.pace_pending then begin
    t.pace_pending <- true;
    ignore
      (Sim.schedule t.sim
         ~delay:(t.pace_next.(0) -. now)
         ((fun () ->
            Sim.set_component t.sim "tcp";
            t.pace_pending <- false;
            try_send t)
         [@ccsim.alloc_ok "one pacing-timer closure per pacing stall, not per segment"]))
  end

(* Recursion rather than a [while]/[ref] loop: the per-ack send burst
   must not allocate a reference cell just to drive iteration. *)
and[@ccsim.hot] try_send t =
  if t.stopped then ()
  else begin
    let now = Sim.now t.sim in
    let cwnd_room = t.cca.Cca.cwnd -. float_of_int t.pipe_bytes in
    let pace_blocked = now < t.pace_next.(0) in
    match next_lost_segment t with
    | Some seg ->
        if cwnd_room < float_of_int seg.len then account_limited t Cwnd
        else if pace_blocked then begin
          account_limited t Pacing;
          schedule_pace t ~now
        end
        else begin
          seg.lost <- false;
          t.lost_bytes <- t.lost_bytes - seg.len;
          transmit t seg ~is_retx:true;
          if Option.is_none t.rto_event then arm_rto t;
          account_limited t Busy;
          try_send t
        end
    | None ->
        let available = if t.unlimited then t.mss else min t.buffered t.mss in
        let rwnd_room = t.rwnd - inflight t in
        if available <= 0 then
          (* No data to send: application-limited even while earlier
             data is still in flight (Linux's tcp_info semantics). *)
          account_limited t App
        else if cwnd_room < float_of_int available then account_limited t Cwnd
        else if rwnd_room < available then account_limited t Rwnd
        else if pace_blocked then begin
          account_limited t Pacing;
          schedule_pace t ~now
        end
        else begin
          let seg =
            ({
               seq = t.snd_nxt;
               len = available;
               sent_at = now;
               retx_count = 0;
               sacked = false;
               lost = false;
               in_pipe = false;
               delivered_at_send = t.snd_una;
               app_limited_at_send = false;
             }
            [@ccsim.alloc_ok
              "per-segment bookkeeping record; it lives on the scoreboard until acked"])
          in
          (Queue.push seg t.segments
          [@ccsim.alloc_ok "scoreboard queue cell, one per segment in flight"]);
          t.snd_nxt <- t.snd_nxt + available;
          if not t.unlimited then t.buffered <- t.buffered - available;
          transmit t seg ~is_retx:false;
          if Option.is_none t.rto_event then arm_rto t;
          account_limited t Busy;
          try_send t
        end
  end

(* --- ack processing --------------------------------------------------------- *)

let check_complete t =
  if t.closed && (not t.completed) && t.buffered = 0 && inflight t = 0 then begin
    t.completed <- true;
    cancel_rto t;
    account_limited t App;
    t.on_complete t
  end

let[@ccsim.hot] process_sacks t sacks =
  List.iter
    ((fun (lo, hi) ->
       if hi > t.highest_sacked then t.highest_sacked <- hi;
       Queue.iter
         (fun seg ->
           if (not seg.sacked) && seg.seq >= lo && seg.seq + seg.len <= hi then begin
             seg.sacked <- true;
             t.delivered_bytes <- t.delivered_bytes + seg.len;
             if seg.sent_at > t.newest_delivered_sent_at then
               t.newest_delivered_sent_at <- seg.sent_at;
             if seg.lost then begin
               seg.lost <- false;
               t.lost_bytes <- t.lost_bytes - seg.len
             end;
             remove_from_pipe t seg
           end)
         t.segments)
    [@ccsim.alloc_ok "two sweep closures per sacked ack; acks without SACK blocks skip them"])
    sacks

(* Retire fully-acked segments from the scoreboard head. Recursion +
   [Queue.peek]/[Queue.pop] rather than a [ref]-driven loop over
   [Queue.peek_opt]: the per-ack path must not allocate cells or
   options just to iterate. *)
let[@ccsim.hot] rec retire_acked t =
  if not (Queue.is_empty t.segments) then begin
    let seg = Queue.peek t.segments in
    if seg.seq + seg.len <= t.snd_una then begin
      ignore (Queue.pop t.segments);
      remove_from_pipe t seg;
      if not seg.sacked then t.delivered_bytes <- t.delivered_bytes + seg.len;
      if seg.sent_at > t.newest_delivered_sent_at then
        t.newest_delivered_sent_at <- seg.sent_at;
      if seg.lost then begin
        seg.lost <- false;
        t.lost_bytes <- t.lost_bytes - seg.len
      end;
      retire_acked t
    end
  end

(* Append one (time, delivered) sample to the delivery-rate ring,
   doubling the backing arrays when full. *)
let[@ccsim.hot] ah_push t ~now =
  let cap = Array.length t.ah_times in
  if t.ah_len = cap then begin
    (let cap' = if cap = 0 then 64 else 2 * cap in
     let times = Array.make cap' 0.0 in
     let delivered = Array.make cap' 0 in
     for i = 0 to t.ah_len - 1 do
       let j = (t.ah_head + i) mod (if cap = 0 then 1 else cap) in
       times.(i) <- t.ah_times.(j);
       delivered.(i) <- t.ah_delivered.(j)
     done;
     t.ah_times <- times;
     t.ah_delivered <- delivered;
     t.ah_head <- 0)
    [@ccsim.alloc_ok "amortized ring doubling: O(log n) growth events over a run, not per ack"]
  end;
  let cap = Array.length t.ah_times in
  let slot = (t.ah_head + t.ah_len) mod cap in
  t.ah_times.(slot) <- now;
  t.ah_delivered.(slot) <- t.delivered_bytes;
  t.ah_len <- t.ah_len + 1

let[@ccsim.hot] handle_ack t (pkt : Packet.t) =
  if t.stopped then ()
  else begin
    Sim.set_component t.sim "tcp";
    let now = Sim.now t.sim in
    t.rwnd <- pkt.rwnd;
    process_sacks t pkt.sacks;
    (* ECN: a congestion-experienced echo is a loss-equivalent window
       signal — without a retransmission — rate-limited to once per
       smoothed RTT (RFC 3168 semantics, simplified). *)
    (if pkt.ece then
       let srtt = Float.max 0.01 (Rtt_estimator.srtt t.rtt) in
       if now -. t.last_ecn_response > srtt then begin
         t.last_ecn_response <- now;
         t.ecn_responses <- t.ecn_responses + 1;
         t.cca.Cca.on_loss
           ({ Cca.now; inflight = inflight t; mss = t.mss }
           [@ccsim.alloc_ok "one loss_info record per ECN response, rate-limited to once per RTT"])
       end);
    if pkt.ack > t.snd_una then begin
      let newly_acked = pkt.ack - t.snd_una in
      t.snd_una <- pkt.ack;
      t.dupacks <- 0;
      (* RTT from the ack's echoed transmit timestamp; Karn's rule skips
         acks triggered by retransmitted segments. *)
      let rtt_sample =
        (if pkt.echo > 0.0 && not pkt.retx then Some (now -. pkt.echo) else None)
        [@ccsim.alloc_ok "the CCA interface carries the RTT sample as an option"]
      in
      (match rtt_sample with
      | Some r when r > 0.0 -> Rtt_estimator.observe t.rtt r
      | Some _ | None -> ());
      retire_acked t;
      (* Delivery rate: acked bytes over a sliding window of roughly one
         smoothed RTT (floor 20 ms). Windowed averaging is robust to the
         bursty cumulative-ack jumps SACK recovery produces. The baseline
         is the most recent point that has aged out of the window. *)
      ah_push t ~now;
      let window = Float.max 0.02 (Rtt_estimator.srtt t.rtt) in
      while t.ah_len > 0 && t.ah_times.(t.ah_head) <= now -. window do
        t.rate_t0.(0) <- t.ah_times.(t.ah_head);
        t.rate_d0 <- t.ah_delivered.(t.ah_head);
        t.rate_valid <- true;
        t.ah_head <- (t.ah_head + 1) mod Array.length t.ah_times;
        t.ah_len <- t.ah_len - 1
      done;
      if t.rate_valid && now > t.rate_t0.(0) then
        t.last_delivery_rate.(0) <-
          float_of_int (t.delivered_bytes - t.rate_d0) *. 8.0 /. (now -. t.rate_t0.(0));
      let app_limited_sample = app_limited_now t && inflight t < t.mss * 4 in
      detect_losses t;
      if t.lost_bytes > 0 then enter_recovery t;
      if t.in_recovery && t.snd_una >= t.recover then begin
        t.in_recovery <- false;
        ((t.recovery_s <- t.recovery_s +. (now -. t.recovery_since))
        [@ccsim.alloc_ok "one float box per recovery episode, not per ack"])
      end;
      let ack_info =
        ({
           Cca.now;
           rtt_sample;
           srtt = Rtt_estimator.srtt t.rtt;
           min_rtt = Rtt_estimator.min_rtt t.rtt;
           newly_acked;
           inflight = inflight t;
           delivery_rate = t.last_delivery_rate.(0);
           app_limited = app_limited_sample;
           mss = t.mss;
         }
        [@ccsim.alloc_ok "the CCA interface takes one ack_info record per cumulative ack"])
      in
      t.cca.Cca.on_ack ack_info;
      arm_rto t;
      try_send t;
      check_complete t
    end
    else begin
      (* Duplicate ack: the SACK scoreboard carries the real signal; the
         counter is a fallback for the head-of-line hole. *)
      if inflight t > 0 then begin
        t.dupacks <- t.dupacks + 1;
        detect_losses t;
        if t.dupacks >= 3 && not (Queue.is_empty t.segments) then begin
          let seg = Queue.peek t.segments in
          if (not seg.sacked) && seg.retx_count = 0 then mark_lost t seg
        end;
        if t.lost_bytes > 0 then enter_recovery t;
        try_send t
      end
    end
  end

(* --- application interface --------------------------------------------------- *)

let write t n =
  if n <= 0 then invalid_arg "Sender.write: bytes must be positive";
  if t.closed then invalid_arg "Sender.write: sender is closed";
  t.buffered <- t.buffered + n;
  try_send t

let set_unlimited t =
  t.unlimited <- true;
  try_send t

let close t =
  t.closed <- true;
  t.unlimited <- false;
  check_complete t

let stop t =
  t.stopped <- true;
  cancel_rto t

let info t =
  let now = Sim.now t.sim in
  (* Flush the in-progress limited interval without changing state. *)
  let extra = now -. t.limited_since in
  let limited st = t.limited_s.(limited_index st) in
  let app = limited App +. (match t.limited_state with App -> extra | _ -> 0.0) in
  let rwnd = limited Rwnd +. (match t.limited_state with Rwnd -> extra | _ -> 0.0) in
  let cwnd = limited Cwnd +. (match t.limited_state with Cwnd -> extra | _ -> 0.0) in
  let pacing =
    limited Pacing +. (match t.limited_state with Pacing -> extra | _ -> 0.0)
  in
  let recovery =
    t.recovery_s +. if t.in_recovery then now -. t.recovery_since else 0.0
  in
  {
    Tcp_info.at = now;
    bytes_acked = t.snd_una;
    bytes_sent = t.bytes_sent;
    bytes_retrans = t.bytes_retrans;
    segs_retrans = t.segs_retrans;
    cwnd_bytes = t.cca.Cca.cwnd;
    srtt = Rtt_estimator.srtt t.rtt;
    min_rtt = Rtt_estimator.min_rtt t.rtt;
    delivery_rate_bps = t.last_delivery_rate.(0);
    app_limited_s = app;
    rwnd_limited_s = rwnd;
    cwnd_limited_s = cwnd;
    pacing_limited_s = pacing;
    recovery_s = recovery;
    elapsed_s = now -. t.started_at;
  }

let create sim ~flow ~cca ~path ?(mss = Ccsim_util.Units.mss) ?(on_complete = fun _ -> ()) () =
  let scope = Obs.Scope.ambient () in
  let counter name =
    Option.map
      (fun m -> Obs.Metrics.counter m ~labels:[ ("flow", string_of_int flow) ] name)
      scope.Obs.Scope.metrics
  in
  (match scope.Obs.Scope.watchdog with
  | Some w ->
      let component = Printf.sprintf "tcp/flow%d" flow in
      Obs.Watchdog.register w ~component ~invariant:"cwnd_positive" (fun () ->
          let cwnd = cca.Cca.cwnd in
          if (not (Float.is_finite cwnd)) || cwnd <= 0.0 then
            Some (Printf.sprintf "cwnd is %g bytes" cwnd)
          else None)
  | None -> ());
  let t =
    {
    sim;
    flow;
    cca;
    path;
    mss;
    on_complete;
    rtt = Rtt_estimator.create ();
    snd_una = 0;
    snd_nxt = 0;
    buffered = 0;
    unlimited = false;
    closed = false;
    completed = false;
    stopped = false;
    rwnd = max_int;
    segments = Queue.create ();
    pipe_bytes = 0;
    lost_bytes = 0;
    highest_sacked = 0;
    newest_delivered_sent_at = neg_infinity;
    dupacks = 0;
    in_recovery = false;
    recover = 0;
    last_ecn_response = neg_infinity;
    ecn_responses = 0;
    rto_event = None;
    pace_next = Array.make 1 0.0;
    pace_pending = false;
    started_at = Sim.now sim;
    bytes_sent = 0;
    bytes_retrans = 0;
    segs_retrans = 0;
    rto_count = 0;
    last_delivery_rate = Array.make 1 0.0;
    ah_times = [||];
    ah_delivered = [||];
    ah_head = 0;
    ah_len = 0;
    rate_t0 = Array.make 1 0.0;
    rate_d0 = 0;
    rate_valid = false;
    delivered_bytes = 0;
    limited_state = Not_started;
    limited_since = Sim.now sim;
    limited_s = Array.make 6 0.0;
    recovery_since = 0.0;
    recovery_s = 0.0;
      m_retransmits = counter "tcp_retransmits_total";
      m_rtos = counter "tcp_rtos_total";
      m_cwnd_limited = counter "tcp_cwnd_limited_transitions_total";
      obs_recorder = scope.Obs.Scope.recorder;
    }
  in
  (match scope.Obs.Scope.watchdog with
  | Some w ->
      let component = Printf.sprintf "tcp/flow%d" flow in
      Obs.Watchdog.register w ~component ~invariant:"inflight_nonnegative" (fun () ->
          let inflight = inflight t in
          if inflight < 0 || t.pipe_bytes < 0 then
            Some
              (Printf.sprintf "inflight=%d bytes, pipe=%d bytes" inflight t.pipe_bytes)
          else None)
  | None -> ());
  t
