module Sim = Ccsim_engine.Sim
module Packet = Ccsim_net.Packet

type t = {
  sim : Sim.t;
  flow : int;
  ack_path : Packet.t -> unit;
  buffer_bytes : int;
  consume_rate_bps : float;
  delayed_ack : bool;
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list;  (* disjoint buffered ranges, sorted *)
  mutable consumed : int;  (* bytes the app has drained *)
  mutable consumed_updated : float;
  mutable acks_sent : int;
  mutable unacked_segments : int;  (* in-order segments since the last ack *)
  mutable delack_timer : Sim.event_id option;
  mutable pending_echo : float;  (* sent_at of the newest unacked segment *)
  mutable pending_retx : bool;
  receive_times : Ccsim_util.Timeseries.t;
  m_acks : Ccsim_obs.Metrics.counter option;
}

let create sim ~flow ~ack_path ?(buffer_bytes = 4 * 1024 * 1024) ?(consume_rate_bps = infinity)
    ?(delayed_ack = false) () =
  if buffer_bytes <= 0 then invalid_arg "Receiver.create: buffer must be positive";
  {
    sim;
    flow;
    ack_path;
    buffer_bytes;
    consume_rate_bps;
    delayed_ack;
    rcv_nxt = 0;
    ooo = [];
    consumed = 0;
    consumed_updated = Sim.now sim;
    acks_sent = 0;
    unacked_segments = 0;
    delack_timer = None;
    pending_echo = 0.0;
    pending_retx = false;
    receive_times = Ccsim_util.Timeseries.create ();
    m_acks =
      Option.map
        (fun m ->
          Ccsim_obs.Metrics.counter m
            ~labels:[ ("flow", string_of_int flow) ]
            "tcp_acks_sent_total")
        (Ccsim_obs.Scope.ambient ()).Ccsim_obs.Scope.metrics;
  }

(* Advance the application-drain model to the current time. *)
let update_consumed t =
  let now = Sim.now t.sim in
  if Float.is_finite t.consume_rate_bps then begin
    let drained =
      int_of_float (t.consume_rate_bps *. (now -. t.consumed_updated) /. 8.0)
    in
    t.consumed <- min t.rcv_nxt (t.consumed + drained)
  end
  else t.consumed <- t.rcv_nxt;
  t.consumed_updated <- now

let advertised_window t =
  update_consumed t;
  max 0 (t.buffer_bytes - (t.rcv_nxt - t.consumed))

(* Insert a received range and advance rcv_nxt over any now-contiguous
   buffered ranges. *)
let integrate t ~seq ~len =
  let lo = seq and hi = seq + len in
  if hi > t.rcv_nxt then begin
    let ranges = (max lo t.rcv_nxt, hi) :: t.ooo in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ranges in
    (* Merge overlapping/adjacent ranges. *)
    let merged =
      List.fold_left
        (fun acc (lo, hi) ->
          match acc with
          | (plo, phi) :: rest when lo <= phi -> (plo, max phi hi) :: rest
          | _ -> (lo, hi) :: acc)
        [] sorted
    in
    let merged = List.rev merged in
    (* Pop leading ranges that extend the contiguous prefix. *)
    let rec advance ranges =
      match ranges with
      | (lo, hi) :: rest when lo <= t.rcv_nxt ->
          if hi > t.rcv_nxt then t.rcv_nxt <- hi;
          advance rest
      | rest -> rest
    in
    t.ooo <- advance merged
  end

let send_ack t ~echo ~for_retx ~ece =
  let rwnd = advertised_window t in
  (* Advertise up to three buffered out-of-order ranges (SACK blocks). *)
  let sacks = List.filteri (fun i _ -> i < 3) t.ooo in
  t.acks_sent <- t.acks_sent + 1;
  (match t.m_acks with Some c -> Ccsim_obs.Metrics.inc c | None -> ());
  t.unacked_segments <- 0;
  (match t.delack_timer with
  | Some id ->
      Sim.cancel t.sim id;
      t.delack_timer <- None
  | None -> ());
  t.ack_path
    (Packet.ack ~flow:t.flow ~ack:t.rcv_nxt ~echo ~for_retx ~rwnd ~sacks ~ece
       ~sent_at:(Sim.now t.sim) ())

let handle_data t (pkt : Packet.t) =
  if Packet.is_data pkt then begin
    let before = t.rcv_nxt in
    integrate t ~seq:pkt.seq ~len:pkt.payload_bytes;
    Ccsim_util.Timeseries.add t.receive_times ~time:(Sim.now t.sim)
      ~value:(float_of_int t.rcv_nxt);
    let in_order = t.rcv_nxt > before && (match t.ooo with [] -> true | _ :: _ -> false) in
    if (not t.delayed_ack) || (not in_order) || pkt.ecn_ce then
      (* Immediate ack: per-packet mode, out-of-order data (dupack/SACK
         must not be delayed), or congestion signal. *)
      send_ack t ~echo:pkt.sent_at ~for_retx:pkt.retx ~ece:pkt.ecn_ce
    else begin
      t.unacked_segments <- t.unacked_segments + 1;
      t.pending_echo <- pkt.sent_at;
      t.pending_retx <- pkt.retx;
      if t.unacked_segments >= 2 then send_ack t ~echo:pkt.sent_at ~for_retx:pkt.retx ~ece:false
      else if Option.is_none t.delack_timer then
        t.delack_timer <-
          Some
            (Sim.schedule t.sim ~delay:0.04 (fun () ->
                 Sim.set_component t.sim "tcp";
                 t.delack_timer <- None;
                 if t.unacked_segments > 0 then
                   send_ack t ~echo:t.pending_echo ~for_retx:t.pending_retx ~ece:false))
    end
  end

let bytes_received t = t.rcv_nxt
let acks_sent t = t.acks_sent
let receive_times t = t.receive_times
