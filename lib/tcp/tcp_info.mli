(** TCPInfo-style telemetry snapshots.

    Mirrors the fields of the Linux [tcp_info]/NDT schema that the
    paper's §3.1 M-Lab analysis consumes: cumulative byte counts, RTT
    estimates, and — crucially — the cumulative time the connection spent
    limited by the application ([AppLimited]), the receiver's window
    ([RWndLimited]), or the congestion window. *)

type t = {
  at : float;  (** snapshot time *)
  bytes_acked : int;
  bytes_sent : int;
  bytes_retrans : int;
  segs_retrans : int;
  cwnd_bytes : float;
  srtt : float;
  min_rtt : float;
  delivery_rate_bps : float;  (** most recent delivery-rate sample *)
  app_limited_s : float;  (** cumulative seconds app-limited *)
  rwnd_limited_s : float;
  cwnd_limited_s : float;
  pacing_limited_s : float;
      (** cumulative seconds the next send waited only on the pacing
          clock (previously folded into serialization busy time) *)
  recovery_s : float;  (** cumulative seconds spent in loss recovery *)
  elapsed_s : float;  (** connection age at the snapshot *)
}

val throughput_bps : prev:t -> cur:t -> float
(** Goodput between two snapshots, from acked bytes. Raises
    [Invalid_argument] when [cur] does not strictly follow [prev]. *)

val app_limited_fraction : t -> float
(** Fraction of the connection's lifetime spent app-limited. *)

val rwnd_limited_fraction : t -> float
val pp : Format.formatter -> t -> unit
