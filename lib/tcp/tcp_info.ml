type t = {
  at : float;
  bytes_acked : int;
  bytes_sent : int;
  bytes_retrans : int;
  segs_retrans : int;
  cwnd_bytes : float;
  srtt : float;
  min_rtt : float;
  delivery_rate_bps : float;
  app_limited_s : float;
  rwnd_limited_s : float;
  cwnd_limited_s : float;
  pacing_limited_s : float;
  recovery_s : float;
  elapsed_s : float;
}

let throughput_bps ~prev ~cur =
  if cur.at <= prev.at then invalid_arg "Tcp_info.throughput_bps: snapshots out of order";
  float_of_int (cur.bytes_acked - prev.bytes_acked) *. 8.0 /. (cur.at -. prev.at)

let fraction_of_lifetime value t = if t.elapsed_s <= 0.0 then 0.0 else value /. t.elapsed_s
let app_limited_fraction t = fraction_of_lifetime t.app_limited_s t
let rwnd_limited_fraction t = fraction_of_lifetime t.rwnd_limited_s t

let pp ppf t =
  Format.fprintf ppf
    "t=%.3f acked=%d sent=%d retx=%d cwnd=%.0f srtt=%.4f app_lim=%.2fs rwnd_lim=%.2fs" t.at
    t.bytes_acked t.bytes_sent t.segs_retrans t.cwnd_bytes t.srtt t.app_limited_s
    t.rwnd_limited_s
