(** Queue-discipline interface.

    A qdisc buffers packets between arrival at a link and transmission.
    Implementations (FIFO, DRR fair queueing, RED, CoDel, strict
    priority) are records of closures so links can hold any discipline
    without functor plumbing.

    Invariant every implementation must satisfy: [dequeue] returns
    [Some _] exactly when [backlog_packets () > 0]. Rate-limiting
    elements (token-bucket shapers, policers) intentionally violate this
    and therefore live outside the qdisc interface, as standalone path
    elements ({!Shaper}, {!Policer}). *)

type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable dequeued : int;
  mutable bytes_dropped : int;
  mutable ecn_marked : int;
  mutable flow_dropped : (int, int ref) Hashtbl.t option;
      (** per-flow drop counts; [None] (default) until
          {!enable_flow_drop_accounting} — the zero-instrumentation
          [drop] path stays two field bumps and a [match] on [None] *)
}

type t = {
  name : string;
  enqueue : Packet.t -> bool;  (** false = packet dropped *)
  dequeue : unit -> Packet.t option;
  backlog_bytes : unit -> int;
  backlog_packets : unit -> int;
  set_cross_backlog : int -> unit;
      (** Bytes of the shared buffer held by a fluid cross-traffic
          aggregate (hybrid mode). Admission-relevant disciplines (FIFO
          byte limit, RED average) include it in their occupancy
          signal; schedulers that only order packets
          ({!Drr}/{!Prio}/{!Codel}) ignore it
          ({!ignore_cross_backlog}). Never affects
          [backlog_bytes]/[backlog_packets], which count real packets
          only — conservation invariants stay exact. *)
  stats : stats;
}

val ignore_cross_backlog : int -> unit
(** No-op [set_cross_backlog] for disciplines that don't model buffer
    sharing. *)

val make_stats : unit -> stats

val drop : stats -> Packet.t -> unit
(** Account a drop (every discipline's single drop choke point, so
    per-flow shares cover tail drops, head drops, and flushes alike). *)

val enable_flow_drop_accounting : stats -> unit
(** Arm per-flow drop accounting (idempotent). Called by the owning
    link when the ambient scope requests flow attribution. *)

val flow_drops : stats -> flow:int -> int
(** Drops charged to [flow] (0 when accounting is off). *)

val flush : t -> int
(** Drop the entire backlog (a qdisc reset, as when a discipline is
    reconfigured live): every buffered packet is drained through the
    discipline's own [dequeue] and re-accounted as dropped, so
    conservation invariants hold and senders see the flushed packets as
    losses. Returns the number of packets flushed. Used by
    [Ccsim_faults] qdisc-reset events. *)

val loss_rate : t -> float
(** Drops / arrivals seen so far (0 when nothing arrived). *)

val pp_stats : Format.formatter -> t -> unit
