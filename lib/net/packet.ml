type kind = Data | Ack

type t = {
  uid : int;
  flow : int;
  kind : kind;
  size_bytes : int;
  seq : int;
  payload_bytes : int;
  ack : int;
  sent_at : float;
  echo : float;
  retx : bool;
  rwnd : int;
  sacks : (int * int) list;
  ece : bool;
  prio : int;
  sampled : bool;
  mutable ecn_ce : bool;
}

(* Atomic so scenarios running on sibling domains (Ccsim_runner pools)
   still get unique uids. uids never influence simulation behaviour —
   they exist for tracing only. *)
let next_uid = Atomic.make 0

let fresh_uid () = Atomic.fetch_and_add next_uid 1 + 1

(* Lifecycle-span sample membership, decided once at construction so
   every hop agrees without re-deriving it. Reads the ambient scope —
   a single domain-local load and a [match] on [None] when spans are
   off, consuming no RNG either way. *)
let sampled_uid uid =
  match (Ccsim_obs.Scope.ambient ()).Ccsim_obs.Scope.span with
  | None -> false
  | Some s -> Ccsim_obs.Span.hit s ~uid

let data ~flow ~seq ~payload_bytes ?(header_bytes = Ccsim_util.Units.header_bytes) ?(retx = false)
    ?(prio = 0) ~sent_at () =
  if payload_bytes <= 0 then invalid_arg "Packet.data: payload must be positive";
  let uid = fresh_uid () in
  {
    uid;
    flow;
    kind = Data;
    size_bytes = payload_bytes + header_bytes;
    seq;
    payload_bytes;
    ack = 0;
    sent_at;
    echo = 0.0;
    retx;
    rwnd = max_int;
    sacks = [];
    ece = false;
    prio;
    sampled = sampled_uid uid;
    ecn_ce = false;
  }

let ack ~flow ~ack ?(size_bytes = 64) ?(echo = 0.0) ?(for_retx = false) ?(rwnd = max_int)
    ?(sacks = []) ?(ece = false) ?(prio = 0) ~sent_at () =
  let uid = fresh_uid () in
  {
    uid;
    flow;
    kind = Ack;
    size_bytes;
    seq = 0;
    payload_bytes = 0;
    ack;
    sent_at;
    echo;
    retx = for_retx;
    rwnd;
    sacks;
    ece;
    prio;
    sampled = sampled_uid uid;
    ecn_ce = false;
  }

let end_seq t = t.seq + t.payload_bytes
let is_data t = match t.kind with Data -> true | Ack -> false

let pp ppf t =
  match t.kind with
  | Data ->
      Format.fprintf ppf "data(flow=%d seq=%d..%d %dB%s)" t.flow t.seq (end_seq t) t.size_bytes
        (if t.retx then " retx" else "")
  | Ack -> Format.fprintf ppf "ack(flow=%d ack=%d)" t.flow t.ack
