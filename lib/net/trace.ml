type event_kind = Sent | Delivered | Dropped

type event = {
  at : float;
  kind : event_kind;
  point : string;
  flow : int;
  seq : int;
  size_bytes : int;
  is_ack : bool;
  retx : bool;
}

type t = {
  sim : Ccsim_engine.Sim.t;
  capacity : int;
  buffer : event Queue.t;
  mutable total : int;
  mirror : Ccsim_obs.Recorder.t option;
}

let create ?(capacity = 100_000) sim =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  let scope = Ccsim_obs.Scope.ambient () in
  { sim; capacity; buffer = Queue.create (); total = 0; mirror = scope.Ccsim_obs.Scope.recorder }

let kind_label = function Sent -> "sent" | Delivered -> "delivered" | Dropped -> "dropped"

let record t ~kind ~point (pkt : Packet.t) =
  let at = Ccsim_engine.Sim.now t.sim in
  let event =
    {
      at;
      kind;
      point;
      flow = pkt.flow;
      seq = pkt.seq;
      size_bytes = pkt.size_bytes;
      is_ack = not (Packet.is_data pkt);
      retx = pkt.retx;
    }
  in
  Queue.push event t.buffer;
  t.total <- t.total + 1;
  if Queue.length t.buffer > t.capacity then ignore (Queue.pop t.buffer);
  match t.mirror with
  | Some r ->
      let severity =
        match kind with
        | Dropped -> Ccsim_obs.Recorder.Warn
        | Sent | Delivered -> Ccsim_obs.Recorder.Debug
      in
      Ccsim_obs.Recorder.record r ~at ~severity ~kind:"packet" ~point
        ~fields:
          [
            ("flow", string_of_int pkt.flow);
            ("seq", string_of_int pkt.seq);
            ("bytes", string_of_int pkt.size_bytes);
            ("ack", if Packet.is_data pkt then "0" else "1");
            ("retx", if pkt.retx then "1" else "0");
          ]
        (kind_label kind)
  | None -> ()

let tap t ~point sink pkt =
  record t ~kind:Delivered ~point pkt;
  sink pkt

let tap_send t ~point sink pkt =
  record t ~kind:Sent ~point pkt;
  sink pkt

let events t = List.of_seq (Queue.to_seq t.buffer)
let count t = t.total
let filter t ~f = List.filter f (events t)
let deliveries_for t ~flow = filter t ~f:(fun e -> e.flow = flow && (match e.kind with Delivered -> true | _ -> false))
let drops_for t ~flow = filter t ~f:(fun e -> e.flow = flow && (match e.kind with Dropped -> true | _ -> false))

let pp_event ppf e =
  let kind = match e.kind with Sent -> "sent" | Delivered -> "dlvr" | Dropped -> "drop" in
  Format.fprintf ppf "%.6f %s %s flow=%d seq=%d %dB%s%s" e.at kind e.point e.flow e.seq
    e.size_bytes
    (if e.is_ack then " ack" else "")
    (if e.retx then " retx" else "")
