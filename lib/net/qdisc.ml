type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable dequeued : int;
  mutable bytes_dropped : int;
  mutable ecn_marked : int;
  mutable flow_dropped : (int, int ref) Hashtbl.t option;
      (* per-flow drop shares; [None] (the default) keeps [drop] a pure
         pair of field bumps. Enabled by the owning link when the
         ambient scope asks for flow attribution. *)
}

type t = {
  name : string;
  enqueue : Packet.t -> bool;
  dequeue : unit -> Packet.t option;
  backlog_bytes : unit -> int;
  backlog_packets : unit -> int;
  set_cross_backlog : int -> unit;
  stats : stats;
}

let ignore_cross_backlog (_ : int) = ()

let make_stats () =
  {
    enqueued = 0;
    dropped = 0;
    dequeued = 0;
    bytes_dropped = 0;
    ecn_marked = 0;
    flow_dropped = None;
  }

let enable_flow_drop_accounting stats =
  match stats.flow_dropped with
  | Some _ -> ()
  | None -> stats.flow_dropped <- Some (Hashtbl.create 16)

let drop stats (pkt : Packet.t) =
  stats.dropped <- stats.dropped + 1;
  stats.bytes_dropped <- stats.bytes_dropped + pkt.size_bytes;
  match stats.flow_dropped with
  | None -> ()
  | Some tbl -> (
      match Hashtbl.find_opt tbl pkt.flow with
      | Some r -> incr r
      | None -> Hashtbl.add tbl pkt.flow (ref 1))

let flow_drops stats ~flow =
  match stats.flow_dropped with
  | None -> 0
  | Some tbl -> ( match Hashtbl.find_opt tbl flow with Some r -> !r | None -> 0)

(* Drain through the discipline's own dequeue path, then reclassify the
   drained packets as drops: dequeued is rewound and dropped advanced,
   so the conservation residue enqueued - dequeued - backlog stays
   within [0, dropped] and the flushed packets read as losses to their
   senders (they were in flight, never acked). *)
let flush t =
  let rec drain n =
    match t.dequeue () with
    | None -> n
    | Some pkt ->
        t.stats.dequeued <- t.stats.dequeued - 1;
        drop t.stats pkt;
        drain (n + 1)
  in
  drain 0

let loss_rate t =
  let arrivals = t.stats.enqueued + t.stats.dropped in
  if arrivals = 0 then 0.0 else float_of_int t.stats.dropped /. float_of_int arrivals

let pp_stats ppf t =
  Format.fprintf ppf "%s: enq=%d deq=%d drop=%d (%.2f%%) marked=%d" t.name t.stats.enqueued
    t.stats.dequeued t.stats.dropped
    (100.0 *. loss_rate t)
    t.stats.ecn_marked
