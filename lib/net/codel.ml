type entry = { pkt : Packet.t; arrived : float }

let create ~now ?(target = 0.005) ?(interval = 0.1) ?(limit_bytes = Fifo.default_limit_bytes) () =
  if target <= 0.0 || interval <= 0.0 then invalid_arg "Codel.create: times must be positive";
  let queue : entry Queue.t = Queue.create () in
  let bytes = ref 0 in
  let stats = Qdisc.make_stats () in
  let first_above_time = ref 0.0 in
  let dropping = ref false in
  let drop_next = ref 0.0 in
  let drop_count = ref 0 in
  let enqueue (pkt : Packet.t) =
    if !bytes + pkt.size_bytes > limit_bytes then begin
      Qdisc.drop stats pkt;
      false
    end
    else begin
      Queue.push { pkt; arrived = now () } queue;
      bytes := !bytes + pkt.size_bytes;
      stats.enqueued <- stats.enqueued + 1;
      true
    end
  in
  let pop () =
    match Queue.take_opt queue with
    | None -> None
    | Some entry ->
        bytes := !bytes - entry.pkt.size_bytes;
        Some entry
  in
  (* Returns the head packet if its sojourn is acceptable, per the CoDel
     state machine; [None] signals the queue went empty. *)
  let should_drop entry t =
    let sojourn = t -. entry.arrived in
    if sojourn < target || !bytes < Ccsim_util.Units.mss then begin
      first_above_time := 0.0;
      false
    end
    else if Ccsim_util.Feq.feq ~eps:0.0 !first_above_time 0.0 then begin
      first_above_time := t +. interval;
      false
    end
    else t >= !first_above_time
  in
  let control_law t count = t +. (interval /. sqrt (float_of_int (max 1 count))) in
  let rec dequeue () =
    match pop () with
    | None ->
        dropping := false;
        None
    | Some entry ->
        let t = now () in
        let ok_to_drop = should_drop entry t in
        if !dropping then begin
          if not ok_to_drop then begin
            dropping := false;
            stats.dequeued <- stats.dequeued + 1;
            Some entry.pkt
          end
          else if t >= !drop_next then begin
            Qdisc.drop stats entry.pkt;
            incr drop_count;
            drop_next := control_law !drop_next !drop_count;
            dequeue ()
          end
          else begin
            stats.dequeued <- stats.dequeued + 1;
            Some entry.pkt
          end
        end
        else if ok_to_drop then begin
          Qdisc.drop stats entry.pkt;
          dropping := true;
          (* Restart from a count informed by recent history, as in the
             reference pseudocode. *)
          drop_count := if !drop_count > 2 then !drop_count - 2 else 1;
          drop_next := control_law t !drop_count;
          dequeue ()
        end
        else begin
          stats.dequeued <- stats.dequeued + 1;
          Some entry.pkt
        end
  in
  {
    Qdisc.name = "codel";
    enqueue;
    dequeue;
    backlog_bytes = (fun () -> !bytes);
    backlog_packets = (fun () -> Queue.length queue);
    set_cross_backlog = Qdisc.ignore_cross_backlog;
    stats;
  }
