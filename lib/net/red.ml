let full_packet = Ccsim_util.Units.mss + Ccsim_util.Units.header_bytes

let create ?(min_th_bytes = 30 * full_packet) ?(max_th_bytes = 90 * full_packet) ?(max_p = 0.1)
    ?(weight = 0.002) ?(limit_bytes = Fifo.default_limit_bytes) ?(ecn = false) () =
  if min_th_bytes >= max_th_bytes then invalid_arg "Red.create: requires min_th < max_th";
  if max_p <= 0.0 || max_p > 1.0 then invalid_arg "Red.create: max_p must be in (0,1]";
  if weight <= 0.0 || weight > 1.0 then invalid_arg "Red.create: weight must be in (0,1]";
  let queue : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  (* Shared-buffer occupancy held by a fluid aggregate (hybrid mode);
     feeds the average-queue signal and the hard limit like real
     occupancy would, but is never dequeued here. *)
  let cross = ref 0 in
  let avg = ref 0.0 in
  let count_since_drop = ref (-1) in
  let stats = Qdisc.make_stats () in
  (* Deterministic pseudo-random sequence for drop decisions: the qdisc
     owns its own stream so runs stay reproducible. *)
  let rng = Ccsim_util.Rng.create 0x5ED in
  let admit (pkt : Packet.t) =
    Queue.push pkt queue;
    bytes := !bytes + pkt.size_bytes;
    stats.enqueued <- stats.enqueued + 1;
    true
  in
  let congest (pkt : Packet.t) =
    if ecn then begin
      pkt.ecn_ce <- true;
      stats.ecn_marked <- stats.ecn_marked + 1;
      admit pkt
    end
    else begin
      Qdisc.drop stats pkt;
      false
    end
  in
  let enqueue (pkt : Packet.t) =
    avg := ((1.0 -. weight) *. !avg) +. (weight *. float_of_int (!bytes + !cross));
    if !bytes + !cross + pkt.size_bytes > limit_bytes then begin
      Qdisc.drop stats pkt;
      false
    end
    else if !avg < float_of_int min_th_bytes then begin
      count_since_drop := -1;
      admit pkt
    end
    else if !avg >= float_of_int max_th_bytes then begin
      count_since_drop := 0;
      congest pkt
    end
    else begin
      incr count_since_drop;
      let frac =
        (!avg -. float_of_int min_th_bytes) /. float_of_int (max_th_bytes - min_th_bytes)
      in
      let pb = max_p *. frac in
      let pa =
        let denom = 1.0 -. (float_of_int !count_since_drop *. pb) in
        if denom <= 0.0 then 1.0 else pb /. denom
      in
      if Ccsim_util.Rng.bernoulli rng ~p:pa then begin
        count_since_drop := 0;
        congest pkt
      end
      else admit pkt
    end
  in
  let dequeue () =
    match Queue.take_opt queue with
    | None -> None
    | Some pkt ->
        bytes := !bytes - pkt.size_bytes;
        stats.dequeued <- stats.dequeued + 1;
        Some pkt
  in
  {
    Qdisc.name = "red";
    enqueue;
    dequeue;
    backlog_bytes = (fun () -> !bytes);
    backlog_packets = (fun () -> Queue.length queue);
    set_cross_backlog = (fun b -> cross := Int.max 0 b);
    stats;
  }
