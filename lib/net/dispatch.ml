module Obs = Ccsim_obs

(* Concurrency/determinism audit (ccsim-lint): all state here is
   per-instance, each instance lives on one runner domain, and the
   handler table is only ever probed by key — hash order never leaks. *)
type t = {
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  mutable unmatched : int;
  m_delivered : Obs.Metrics.counter option;
  m_unmatched : Obs.Metrics.counter option;
}

let create () =
  let scope = Obs.Scope.ambient () in
  let counter name =
    Option.map (fun m -> Obs.Metrics.counter m name) scope.Obs.Scope.metrics
  in
  {
    handlers = Hashtbl.create 16;
    unmatched = 0;
    m_delivered = counter "dispatch_delivered_total";
    m_unmatched = counter "dispatch_unmatched_total";
  }

let register t ~flow handler =
  if Hashtbl.mem t.handlers flow then invalid_arg "Dispatch.register: flow already registered";
  Hashtbl.add t.handlers flow handler

let unregister t ~flow = Hashtbl.remove t.handlers flow

let deliver t (pkt : Packet.t) =
  match Hashtbl.find_opt t.handlers pkt.flow with
  | Some handler ->
      (match t.m_delivered with Some c -> Obs.Metrics.inc c | None -> ());
      handler pkt
  | None ->
      t.unmatched <- t.unmatched + 1;
      (match t.m_unmatched with Some c -> Obs.Metrics.inc c | None -> ())

let as_sink t pkt = deliver t pkt
let unmatched t = t.unmatched
