module Obs = Ccsim_obs

let pkt_kind (pkt : Packet.t) = if Packet.is_data pkt then "data" else "ack"

(* Lifecycle-span sites at the queue boundary: accepted enqueues open a
   span record, dequeues close the queueing phase, tail drops complete
   the record as dropped. Only packets carrying the construction-time
   [sampled] tag are touched. *)
let span_enqueue span ~hop ~now (pkt : Packet.t) =
  match span with
  | Some s when pkt.Packet.sampled ->
      Obs.Span.note_enqueue s ~hop ~at:(now ()) ~uid:pkt.uid ~flow:pkt.flow ~seq:pkt.seq
        ~bytes:pkt.size_bytes ~kind:(pkt_kind pkt)
  | Some _ | None -> ()

let span_tail_drop span ~hop ~now (pkt : Packet.t) =
  match span with
  | Some s when pkt.Packet.sampled ->
      Obs.Span.note_dropped s ~hop ~at:(now ()) ~uid:pkt.uid ~flow:pkt.flow ~seq:pkt.seq
        ~bytes:pkt.size_bytes ~kind:(pkt_kind pkt)
  | Some _ | None -> ()

let span_dequeue span ~hop ~now (pkt : Packet.t) =
  match span with
  | Some s when pkt.Packet.sampled -> Obs.Span.note_dequeue s ~hop ~at:(now ()) ~uid:pkt.uid
  | Some _ | None -> ()

let instrument ?metrics ?recorder ?span ?(hop = "link") ~now (q : Qdisc.t) : Qdisc.t =
  match (metrics, recorder, span) with
  | None, None, None -> q
  | _ ->
      let labels = [ ("qdisc", q.name) ] in
      let m_enq =
        Option.map (fun m -> Obs.Metrics.counter m ~labels "qdisc_enqueued_total") metrics
      in
      let m_deq =
        Option.map (fun m -> Obs.Metrics.counter m ~labels "qdisc_dequeued_total") metrics
      in
      let m_drop =
        Option.map (fun m -> Obs.Metrics.counter m ~labels "qdisc_dropped_total") metrics
      in
      let m_backlog =
        Option.map (fun m -> Obs.Metrics.gauge m ~labels "qdisc_backlog_bytes") metrics
      in
      let m_sojourn =
        Option.map (fun m -> Obs.Metrics.histogram m ~labels "qdisc_sojourn_seconds") metrics
      in
      (* Enqueue timestamps for sojourn measurement, keyed by packet uid.
         Entries for packets the discipline drops internally are swept
         lazily: uid keys of packets never dequeued stay until the map is
         next compacted against the backlog size. *)
      let enq_times : (int, float) Hashtbl.t = Hashtbl.create 256 in
      let record_drop ~count pkt =
        Option.iter (fun c -> Obs.Metrics.add c count) m_drop;
        Option.iter
          (fun r ->
            let fields =
              match pkt with
              | Some (p : Packet.t) ->
                  [
                    ("flow", string_of_int p.flow);
                    ("seq", string_of_int p.seq);
                    ("bytes", string_of_int p.size_bytes);
                  ]
              | None -> [ ("count", string_of_int count) ]
            in
            Obs.Recorder.record r ~at:(now ()) ~severity:Obs.Recorder.Warn ~kind:"qdisc"
              ~point:q.name ~fields "drop")
          recorder
      in
      let update_backlog () =
        match m_backlog with
        | Some g -> Obs.Metrics.set g (float_of_int (q.backlog_bytes ()))
        | None -> ()
      in
      let compact_enq_times () =
        (* Disciplines that drop internally (CoDel head drops, RED) orphan
           their packets' timestamps. The wrapper cannot enumerate the
           discipline's live queue, so when orphans dominate it resets the
           map — losing the in-flight sojourn samples once in a while in
           exchange for bounded memory. *)
        if Hashtbl.length enq_times > (2 * q.backlog_packets ()) + 1024 then
          Hashtbl.reset enq_times
      in
      let enqueue pkt =
        let dropped_before = q.stats.dropped in
        let accepted = q.enqueue pkt in
        if accepted then begin
          Option.iter Obs.Metrics.inc m_enq;
          if Option.is_some m_sojourn then Hashtbl.replace enq_times pkt.Packet.uid (now ());
          span_enqueue span ~hop ~now pkt
        end
        else span_tail_drop span ~hop ~now pkt;
        let internal = q.stats.dropped - dropped_before - (if accepted then 0 else 1) in
        if not accepted then record_drop ~count:1 (Some pkt);
        if internal > 0 then record_drop ~count:internal None;
        update_backlog ();
        accepted
      in
      let dequeue () =
        let dropped_before = q.stats.dropped in
        let result = q.dequeue () in
        (match result with
        | Some pkt -> (
            Option.iter Obs.Metrics.inc m_deq;
            span_dequeue span ~hop ~now pkt;
            match m_sojourn with
            | Some h -> (
                match Hashtbl.find_opt enq_times pkt.Packet.uid with
                | Some t0 ->
                    Hashtbl.remove enq_times pkt.Packet.uid;
                    Obs.Metrics.observe h (now () -. t0)
                | None -> ())
            | None -> ())
        | None -> ());
        let internal = q.stats.dropped - dropped_before in
        if internal > 0 then record_drop ~count:internal None;
        compact_enq_times ();
        update_backlog ();
        result
      in
      { q with enqueue; dequeue }
