module Obs = Ccsim_obs

type t = {
  sim : Ccsim_engine.Sim.t;
  bucket : Token_bucket.t;
  sink : Packet.t -> unit;
  mutable dropped : int;
  mutable forwarded : int;
  m_conforming : Obs.Metrics.counter option;
  m_dropped : Obs.Metrics.counter option;
  obs_recorder : Obs.Recorder.t option;
}

let create sim ~rate_bps ~burst_bytes ~sink () =
  let scope = Obs.Scope.ambient () in
  let counter name =
    Option.map (fun m -> Obs.Metrics.counter m name) scope.Obs.Scope.metrics
  in
  {
    sim;
    bucket = Token_bucket.create ~rate_bps ~burst_bytes ~now:(Ccsim_engine.Sim.now sim);
    sink;
    dropped = 0;
    forwarded = 0;
    m_conforming = counter "policer_conforming_total";
    m_dropped = counter "policer_dropped_total";
    obs_recorder = scope.Obs.Scope.recorder;
  }

let input t (pkt : Packet.t) =
  let now = Ccsim_engine.Sim.now t.sim in
  if Token_bucket.try_consume t.bucket ~now ~bytes:pkt.size_bytes then begin
    t.forwarded <- t.forwarded + 1;
    (match t.m_conforming with Some c -> Obs.Metrics.inc c | None -> ());
    t.sink pkt
  end
  else begin
    t.dropped <- t.dropped + 1;
    (match t.m_dropped with Some c -> Obs.Metrics.inc c | None -> ());
    match t.obs_recorder with
    | Some r ->
        Obs.Recorder.record r ~at:now ~severity:Obs.Recorder.Warn ~kind:"qdisc"
          ~point:"policer"
          ~fields:
            [ ("flow", string_of_int pkt.flow); ("bytes", string_of_int pkt.size_bytes) ]
          "drop"
    | None -> ()
  end

let dropped t = t.dropped
let forwarded t = t.forwarded
let as_sink t pkt = input t pkt
