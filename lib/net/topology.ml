module Sim = Ccsim_engine.Sim

type ingress =
  | No_ingress
  | Shape of { rate_bps : float; burst_bytes : int }
  | Police of { rate_bps : float; burst_bytes : int }

type t = {
  sim : Sim.t;
  bottleneck : Link.t;
  fwd_dispatch : Dispatch.t;
  rev_dispatch : Dispatch.t;
  fwd_entry : flow:int -> Packet.t -> unit;
  rev_entry : flow:int -> Packet.t -> unit;
  one_way_delay : flow:int -> float;
}

let dumbbell sim ~rate_bps ~delay_s ?qdisc ?(edge_delay = fun _ -> 0.001)
    ?edge_rate_bps ?(ingress = fun _ -> No_ingress) ?rev_rate_bps () =
  let edge_rate = match edge_rate_bps with Some r -> r | None -> 100.0 *. rate_bps in
  let rev_rate = match rev_rate_bps with Some r -> r | None -> 100.0 *. rate_bps in
  let fwd_dispatch = Dispatch.create () in
  let rev_dispatch = Dispatch.create () in
  let bottleneck =
    Link.create sim ~name:"bottleneck" ~rate_bps ~delay_s ?qdisc
      ~sink:(Dispatch.as_sink fwd_dispatch) ()
  in
  (* Per-flow forward edge: edge link -> (optional shaper/policer) -> bottleneck.
     Concurrency/determinism audit (ccsim-lint): the entry tables below
     are closure-local to one topology on one runner domain, and are
     only ever probed by flow id — hash order never leaks. *)
  let fwd_entries : (int, Packet.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  let fwd_entry ~flow =
    match Hashtbl.find_opt fwd_entries flow with
    | Some entry -> entry
    | None ->
        let to_bottleneck = Link.as_sink bottleneck in
        let next =
          match ingress flow with
          | No_ingress -> to_bottleneck
          | Shape { rate_bps; burst_bytes } ->
              Shaper.as_sink (Shaper.create sim ~rate_bps ~burst_bytes ~sink:to_bottleneck ())
          | Police { rate_bps; burst_bytes } ->
              Policer.as_sink (Policer.create sim ~rate_bps ~burst_bytes ~sink:to_bottleneck ())
        in
        let edge =
          Link.create sim
            ~name:(Printf.sprintf "edge:%d" flow)
            ~rate_bps:edge_rate ~delay_s:(edge_delay flow) ~sink:next ()
        in
        let entry = Link.as_sink edge in
        Hashtbl.add fwd_entries flow entry;
        entry
  in
  (* Per-flow reverse path: a single uncongested link covering the whole
     return propagation. *)
  let rev_entries : (int, Packet.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  let rev_entry ~flow =
    match Hashtbl.find_opt rev_entries flow with
    | Some entry -> entry
    | None ->
        let delay = delay_s +. edge_delay flow in
        let link =
          Link.create sim
            ~name:(Printf.sprintf "rev:%d" flow)
            ~rate_bps:rev_rate ~delay_s:delay
            ~qdisc:(Fifo.create ~limit_bytes:100_000_000 ())
            ~sink:(Dispatch.as_sink rev_dispatch) ()
        in
        let entry = Link.as_sink link in
        Hashtbl.add rev_entries flow entry;
        entry
  in
  let one_way_delay ~flow = delay_s +. edge_delay flow in
  { sim; bottleneck; fwd_dispatch; rev_dispatch; fwd_entry; rev_entry; one_way_delay }

let base_rtt t ~flow = 2.0 *. t.one_way_delay ~flow
