(** A unidirectional link: transmission rate + propagation delay + qdisc.

    Packets offered with {!send} are enqueued into the qdisc; the link
    serializes one packet at a time at its current rate and delivers each
    to the [sink] one propagation delay after serialization completes.
    The rate can change mid-simulation ({!set_rate}), which models
    cellular/satellite capacity variation; an in-flight serialization
    finishes at the old rate.

    When the ambient {!Ccsim_obs.Scope} carries instruments at
    {!create} time, the link wraps its qdisc with
    {!Qdisc_obs.instrument}, maintains [link_tx_bytes_total],
    [link_tx_packets_total], [link_rate_changes_total] counters and
    [link_rate_bps] / [link_busy_seconds_total] gauges, and journals a
    debug-severity ["packet"]-class event per delivery. Under the
    default empty scope none of this exists and behaviour is
    byte-identical. *)

type t

val create :
  Ccsim_engine.Sim.t ->
  rate_bps:float ->
  delay_s:float ->
  ?qdisc:Qdisc.t ->
  sink:(Packet.t -> unit) ->
  unit ->
  t
(** Default qdisc: {!Fifo.create}[ ()]. Rate must be positive, delay
    non-negative. *)

val send : t -> Packet.t -> unit
(** Offer a packet (may be dropped by the qdisc). *)

val as_sink : t -> Packet.t -> unit

val rate_bps : t -> float
val set_rate : t -> float -> unit
(** Must be positive. Takes effect at the next serialization. *)

val set_cross_rate_bps : t -> float -> unit
(** Fluid cross-traffic rate sharing the wire (hybrid mode): packets
    serialize at [rate - cross], floored at 1% of [rate] so the packet
    share degrades instead of stalling. Must be non-negative; takes
    effect at the next serialization. Updated periodically by
    [Ccsim_fluid.Fluid_driver]. *)

val cross_rate_bps : t -> float
(** Current fluid cross-traffic rate (0 outside hybrid mode). *)

val delay_s : t -> float
val qdisc : t -> Qdisc.t

val busy_seconds : t -> float
(** Cumulative time the link has spent serializing packets. *)

val utilization : t -> now:float -> float
(** [busy_seconds / now]; 0 at time 0. *)

val bytes_delivered : t -> int
