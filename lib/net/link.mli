(** A unidirectional link: transmission rate + propagation delay + qdisc.

    Packets offered with {!send} are enqueued into the qdisc; the link
    serializes one packet at a time at its current rate and delivers each
    to the [sink] one propagation delay after serialization completes.
    The rate can change mid-simulation ({!set_rate}), which models
    cellular/satellite capacity variation; an in-flight serialization
    finishes at the old rate.

    When the ambient {!Ccsim_obs.Scope} carries instruments at
    {!create} time, the link wraps its qdisc with
    {!Qdisc_obs.instrument}, maintains [link_tx_bytes_total],
    [link_tx_packets_total], [link_rate_changes_total] counters and
    [link_rate_bps] / [link_busy_seconds_total] gauges, and journals a
    debug-severity ["packet"]-class event per delivery. Under the
    default empty scope none of this exists and behaviour is
    byte-identical. *)

type t

type loss_model =
  | Uniform of { p : float }  (** i.i.d. per-packet wire loss *)
  | Gilbert_elliott of {
      p_enter : float;  (** good→bad transition probability, per packet *)
      p_exit : float;  (** bad→good transition probability, per packet *)
      loss_good : float;  (** loss probability in the good state *)
      loss_bad : float;  (** loss probability in the bad (burst) state *)
    }
(** Non-congestive wire-loss processes ({!set_loss_model}). A lost
    packet consumes its serialization time but never reaches the sink —
    loss that is {e not} caused by queue overflow, the regime where
    elasticity detection must stay correct. *)

val create :
  Ccsim_engine.Sim.t ->
  ?name:string ->
  rate_bps:float ->
  delay_s:float ->
  ?qdisc:Qdisc.t ->
  sink:(Packet.t -> unit) ->
  unit ->
  t
(** Default qdisc: {!Fifo.create}[ ()]. Rate must be positive, delay
    non-negative. [name] (default ["link"]) is the hop label carried by
    lifecycle spans and flow-attribution probes. *)

val name : t -> string

val send : t -> Packet.t -> unit
(** Offer a packet (may be dropped by the qdisc). *)

val as_sink : t -> Packet.t -> unit

val rate_bps : t -> float
val set_rate : t -> float -> unit
(** Must be positive. Takes effect at the next serialization. *)

val set_cross_rate_bps : t -> float -> unit
(** Fluid cross-traffic rate sharing the wire (hybrid mode): packets
    serialize at [rate - cross], floored at 1% of [rate] so the packet
    share degrades instead of stalling. Must be non-negative; takes
    effect at the next serialization. Updated periodically by
    [Ccsim_fluid.Fluid_driver]. *)

val cross_rate_bps : t -> float
(** Current fluid cross-traffic rate (0 outside hybrid mode). *)

val delay_s : t -> float
val qdisc : t -> Qdisc.t

val busy_seconds : t -> float
(** Cumulative time the link has spent serializing packets. *)

val flow_busy_seconds : t -> flow:int -> float
(** [flow]'s share of {!busy_seconds} — its bottleneck occupancy.
    Accounted only when the ambient scope carries a timeline or metrics
    at {!create} time; 0 otherwise. *)

val flow_drops : t -> flow:int -> int
(** Qdisc drops charged to [flow] (tail, head, and flush drops alike).
    Accounted under the same condition as {!flow_busy_seconds}. *)

val utilization : t -> now:float -> float
(** [busy_seconds / now]; 0 at time 0. *)

val bytes_delivered : t -> int

(** {1 Fault-injection hooks}

    Driven by [Ccsim_faults.Injector]; every setter may also be used
    directly in tests. Impairment state is allocated lazily by the
    first setter, so a link that never sees a fault keeps its
    byte-identical fast path. Stochastic impairments draw from the
    stream installed with {!set_fault_rng} (SplitMix64, seeded by the
    fault plan — never a global PRNG), with a fixed per-packet draw
    order so a [(plan, seed)] pair reproduces exactly. *)

val set_fault_rng : t -> Ccsim_util.Rng.t -> unit
(** Install the random stream the stochastic impairments draw from.
    Must be called before arming loss/corruption/duplication/reorder
    (raises [Invalid_argument] otherwise). *)

val set_outage : t -> bool -> unit
(** [set_outage t true] takes the link down: serialization pauses, the
    qdisc keeps accepting (and eventually tail-dropping) arrivals, and
    an in-flight packet finishes. [set_outage t false] restores the
    link and resumes serialization from the backlog. *)

val is_down : t -> bool

val set_loss_model : t -> loss_model option -> unit
(** Arm (or clear, with [None]) a wire-loss process. Arming resets the
    Gilbert–Elliott chain to the good state. Probabilities must lie in
    [\[0, 1\]]. *)

val set_corrupt_p : t -> float -> unit
(** Per-packet bit-corruption probability: a corrupted packet is
    delivered in time but checksum-discarded at the receiving end, so
    it behaves as non-congestive loss journaled as ["corrupt"]. 0
    disables. *)

val set_duplicate_p : t -> float -> unit
(** Per-packet duplication probability: the sink sees a ghost copy of
    the packet at the same delivery time. 0 disables. *)

val set_reorder : t -> (float * float) option -> unit
(** [Some (p, extra_s)]: with probability [p] a delivered packet's
    propagation is stretched by [extra_s] seconds, letting later
    packets overtake it. [None] disables. *)

val set_spike_delay : t -> float -> unit
(** Extra propagation delay applied to every delivery while a delay
    spike is live; 0 restores the base delay. *)

val wire_lost_packets : t -> int
val wire_corrupted_packets : t -> int
val wire_duplicated_packets : t -> int
val wire_reordered_packets : t -> int
(** Cumulative impairment counters (0 when no fault was ever armed). *)
