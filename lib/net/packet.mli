(** Simulated packets.

    A packet is either a data segment or a (pure) cumulative
    acknowledgment. Sizes are wire sizes in bytes (payload + header).
    Sequence numbers are byte offsets, as in TCP. *)

type kind = Data | Ack

type t = {
  uid : int;  (** globally unique, for tracing *)
  flow : int;  (** flow identifier; qdiscs classify on this *)
  kind : kind;
  size_bytes : int;  (** wire size *)
  seq : int;  (** first payload byte (data); meaningless for acks *)
  payload_bytes : int;  (** payload carried (data); 0 for acks *)
  ack : int;  (** next expected byte (acks); 0 for data *)
  sent_at : float;  (** transmit timestamp of this (re)transmission *)
  echo : float;  (** acks: [sent_at] of the segment that triggered them *)
  retx : bool;  (** retransmission? (acks echo this to suppress bad RTT samples) *)
  rwnd : int;  (** acks: receiver's advertised window in bytes *)
  sacks : (int * int) list;
      (** acks: up to three selectively-acknowledged [lo, hi) byte ranges
          above the cumulative ack point *)
  ece : bool;  (** acks: congestion-experienced echo (ECN) *)
  prio : int;  (** priority band for {!Prio} qdiscs; 0 = highest *)
  sampled : bool;
      (** in the ambient {!Ccsim_obs.Span} store's 1-in-N lifecycle
          sample (decided at construction; always [false] when spans
          are off). Tracing only — never influences behaviour. *)
  mutable ecn_ce : bool;  (** congestion-experienced mark *)
}

val data :
  flow:int ->
  seq:int ->
  payload_bytes:int ->
  ?header_bytes:int ->
  ?retx:bool ->
  ?prio:int ->
  sent_at:float ->
  unit ->
  t
(** Fresh data segment; wire size is payload + header (default
    {!Ccsim_util.Units.header_bytes}). *)

val ack :
  flow:int ->
  ack:int ->
  ?size_bytes:int ->
  ?echo:float ->
  ?for_retx:bool ->
  ?rwnd:int ->
  ?sacks:(int * int) list ->
  ?ece:bool ->
  ?prio:int ->
  sent_at:float ->
  unit ->
  t
(** Pure ack (default 64 bytes on the wire). [for_retx] echoes whether the
    acked segment was a retransmission. *)

val end_seq : t -> int
(** [seq + payload_bytes]. *)

val is_data : t -> bool
val pp : Format.formatter -> t -> unit
