type flow_state = {
  queue : Packet.t Queue.t;
  mutable deficit : float;
  mutable queued_bytes : int;
  mutable active : bool;
  weight : float;
}

let default_quantum = Ccsim_util.Units.mss + Ccsim_util.Units.header_bytes

let create ?(quantum_bytes = default_quantum) ?(limit_bytes = Fifo.default_limit_bytes)
    ?(weight_of_flow = fun _ -> 1.0) () =
  if quantum_bytes <= 0 then invalid_arg "Drr.create: quantum must be positive";
  if limit_bytes <= 0 then invalid_arg "Drr.create: limit must be positive";
  let flows : (int, flow_state) Hashtbl.t = Hashtbl.create 16 in
  (* Known flow ids, ascending. Scans go through this list rather than
     Hashtbl.iter so tie-breaks never depend on hash order (ccsim-lint
     R2): among equally long queues the lowest flow id is evicted. *)
  let known_flows = ref [] in
  let active : flow_state Queue.t = Queue.create () in
  let total_bytes = ref 0 in
  let total_packets = ref 0 in
  let stats = Qdisc.make_stats () in
  let flow_state flow =
    match Hashtbl.find_opt flows flow with
    | Some fs -> fs
    | None ->
        let weight = weight_of_flow flow in
        if weight <= 0.0 then invalid_arg "Drr: flow weight must be positive";
        let fs = { queue = Queue.create (); deficit = 0.0; queued_bytes = 0; active = false; weight } in
        Hashtbl.add flows flow fs;
        known_flows := List.merge compare [ flow ] !known_flows;
        fs
  in
  (* Longest-queue-drop: evict one packet from the fullest flow queue. *)
  let drop_from_longest () =
    let longest = ref None in
    List.iter
      (fun flow ->
        let fs = Hashtbl.find flows flow in
        match !longest with
        | None -> if fs.queued_bytes > 0 then longest := Some fs
        | Some best -> if fs.queued_bytes > best.queued_bytes then longest := Some fs)
      !known_flows;
    match !longest with
    | None -> ()
    | Some fs -> (
        (* Drop from the tail: rebuild the queue minus its last packet. *)
        let n = Queue.length fs.queue in
        if n > 0 then begin
          let keep = Queue.create () in
          for i = 1 to n do
            let pkt = Queue.pop fs.queue in
            if i < n then Queue.push pkt keep
            else begin
              fs.queued_bytes <- fs.queued_bytes - pkt.Packet.size_bytes;
              total_bytes := !total_bytes - pkt.Packet.size_bytes;
              decr total_packets;
              Qdisc.drop stats pkt
            end
          done;
          Queue.transfer keep fs.queue
        end)
  in
  let enqueue (pkt : Packet.t) =
    let fs = flow_state pkt.flow in
    if !total_bytes + pkt.size_bytes > limit_bytes then drop_from_longest ();
    if !total_bytes + pkt.size_bytes > limit_bytes then begin
      (* Still over (e.g. a single huge packet): drop the arrival. *)
      Qdisc.drop stats pkt;
      false
    end
    else begin
      Queue.push pkt fs.queue;
      fs.queued_bytes <- fs.queued_bytes + pkt.size_bytes;
      total_bytes := !total_bytes + pkt.size_bytes;
      incr total_packets;
      stats.enqueued <- stats.enqueued + 1;
      if not fs.active then begin
        fs.active <- true;
        fs.deficit <- 0.0;
        Queue.push fs active
      end;
      true
    end
  in
  (* Classic DRR: when a flow reaches the head of the round it earns one
     quantum (scaled by its weight) and is served for as long as its
     deficit covers the head packet — across successive dequeue calls —
     before the round moves on. [current] is the flow being served. *)
  let current = ref None in
  let serve fs =
    match Queue.pop fs.queue with
    | pkt ->
        fs.deficit <- fs.deficit -. float_of_int pkt.Packet.size_bytes;
        fs.queued_bytes <- fs.queued_bytes - pkt.size_bytes;
        total_bytes := !total_bytes - pkt.size_bytes;
        decr total_packets;
        stats.dequeued <- stats.dequeued + 1;
        if Queue.is_empty fs.queue then begin
          fs.active <- false;
          fs.deficit <- 0.0;
          current := None
        end;
        pkt
  in
  let rec dequeue () =
    if !total_packets = 0 then begin
      current := None;
      None
    end
    else begin
      match !current with
      | Some fs -> (
          match Queue.peek_opt fs.queue with
          | Some pkt when float_of_int pkt.Packet.size_bytes <= fs.deficit ->
              Some (serve fs)
          | Some _ ->
              (* Deficit exhausted: back of the round, keep the residue. *)
              Queue.push fs active;
              current := None;
              dequeue ()
          | None ->
              fs.active <- false;
              fs.deficit <- 0.0;
              current := None;
              dequeue ())
      | None -> (
          match Queue.take_opt active with
          | None -> None
          | Some fs ->
              if Queue.is_empty fs.queue then begin
                fs.active <- false;
                dequeue ()
              end
              else begin
                fs.deficit <- fs.deficit +. (float_of_int quantum_bytes *. fs.weight);
                current := Some fs;
                dequeue ()
              end)
    end
  in
  {
    Qdisc.name = "drr";
    enqueue;
    dequeue;
    backlog_bytes = (fun () -> !total_bytes);
    backlog_packets = (fun () -> !total_packets);
    set_cross_backlog = Qdisc.ignore_cross_backlog;
    stats;
  }
