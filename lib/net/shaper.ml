module Obs = Ccsim_obs

type t = {
  sim : Ccsim_engine.Sim.t;
  bucket : Token_bucket.t;
  queue : Packet.t Queue.t;
  limit_bytes : int;
  sink : Packet.t -> unit;
  mutable backlog : int;
  mutable dropped : int;
  mutable forwarded : int;
  mutable release_pending : bool;
  m_conforming : Obs.Metrics.counter option;
  m_dropped : Obs.Metrics.counter option;
  obs_recorder : Obs.Recorder.t option;
}

let create sim ~rate_bps ~burst_bytes ?(limit_bytes = Fifo.default_limit_bytes) ~sink () =
  if limit_bytes <= 0 then invalid_arg "Shaper.create: limit must be positive";
  let scope = Obs.Scope.ambient () in
  let counter name =
    Option.map (fun m -> Obs.Metrics.counter m name) scope.Obs.Scope.metrics
  in
  {
    sim;
    bucket = Token_bucket.create ~rate_bps ~burst_bytes ~now:(Ccsim_engine.Sim.now sim);
    queue = Queue.create ();
    limit_bytes;
    sink;
    backlog = 0;
    dropped = 0;
    forwarded = 0;
    release_pending = false;
    m_conforming = counter "shaper_conforming_total";
    m_dropped = counter "shaper_dropped_total";
    obs_recorder = scope.Obs.Scope.recorder;
  }

let note_drop t (pkt : Packet.t) =
  (match t.m_dropped with Some c -> Obs.Metrics.inc c | None -> ());
  match t.obs_recorder with
  | Some r ->
      Obs.Recorder.record r
        ~at:(Ccsim_engine.Sim.now t.sim)
        ~severity:Obs.Recorder.Warn ~kind:"qdisc" ~point:"shaper"
        ~fields:[ ("flow", string_of_int pkt.flow); ("bytes", string_of_int pkt.size_bytes) ]
        "drop"
  | None -> ()

let forward t pkt =
  t.forwarded <- t.forwarded + 1;
  (match t.m_conforming with Some c -> Obs.Metrics.inc c | None -> ());
  t.sink pkt

(* Drain the head of the queue while tokens allow; otherwise schedule a
   wake-up for when the head packet conforms. *)
let rec drain t =
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some pkt when pkt.Packet.size_bytes > Token_bucket.burst_bytes t.bucket ->
      (* The bucket can never cover a packet larger than its burst; drop
         it rather than stall the queue forever. *)
      ignore (Queue.pop t.queue);
      t.backlog <- t.backlog - pkt.size_bytes;
      t.dropped <- t.dropped + 1;
      note_drop t pkt;
      drain t
  | Some pkt ->
      let now = Ccsim_engine.Sim.now t.sim in
      if Token_bucket.try_consume t.bucket ~now ~bytes:pkt.Packet.size_bytes then begin
        ignore (Queue.pop t.queue);
        t.backlog <- t.backlog - pkt.size_bytes;
        forward t pkt;
        drain t
      end
      else if not t.release_pending then begin
        let wait = Token_bucket.time_until_available t.bucket ~now ~bytes:pkt.size_bytes in
        (* Floor the wake-up so float rounding can never schedule a
           zero-progress busy loop at a frozen virtual clock. *)
        let wait = Float.max wait 1e-6 in
        t.release_pending <- true;
        ignore
          (Ccsim_engine.Sim.schedule t.sim ~delay:wait (fun () ->
               t.release_pending <- false;
               drain t))
      end

let input t (pkt : Packet.t) =
  let now = Ccsim_engine.Sim.now t.sim in
  if Queue.is_empty t.queue && Token_bucket.try_consume t.bucket ~now ~bytes:pkt.size_bytes then
    forward t pkt
  else if t.backlog + pkt.size_bytes > t.limit_bytes then begin
    t.dropped <- t.dropped + 1;
    note_drop t pkt
  end
  else begin
    Queue.push pkt t.queue;
    t.backlog <- t.backlog + pkt.size_bytes;
    drain t
  end

let backlog_bytes t = t.backlog
let dropped t = t.dropped
let forwarded t = t.forwarded
let as_sink t pkt = input t pkt
