let default_limit_bytes = 150 * (Ccsim_util.Units.mss + Ccsim_util.Units.header_bytes)

let create ?(limit_bytes = default_limit_bytes) ?limit_packets () =
  if limit_bytes <= 0 then invalid_arg "Fifo.create: limit_bytes must be positive";
  (match limit_packets with
  | Some p when p <= 0 -> invalid_arg "Fifo.create: limit_packets must be positive"
  | Some _ | None -> ());
  let queue : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  (* Shared-buffer occupancy held by a fluid aggregate (hybrid mode);
     counts against the byte limit but never against the backlog. *)
  let cross = ref 0 in
  let stats = Qdisc.make_stats () in
  (match (Ccsim_obs.Scope.ambient ()).Ccsim_obs.Scope.watchdog with
  | Some w ->
      Ccsim_obs.Watchdog.register w ~component:"qdisc:fifo" ~invariant:"backlog_capacity"
        (fun () ->
          if !bytes < 0 then Some (Printf.sprintf "negative backlog: %d bytes" !bytes)
          else if !bytes > limit_bytes then
            Some (Printf.sprintf "backlog %d bytes exceeds the %d-byte limit" !bytes limit_bytes)
          else
            match limit_packets with
            | Some p when Queue.length queue > p ->
                Some
                  (Printf.sprintf "backlog %d packets exceeds the %d-packet limit"
                     (Queue.length queue) p)
            | Some _ | None -> None)
  | None -> ());
  let[@ccsim.hot] enqueue (pkt : Packet.t) =
    let over_packets =
      match limit_packets with Some p -> Queue.length queue >= p | None -> false
    in
    if over_packets || !bytes + !cross + pkt.size_bytes > limit_bytes then begin
      Qdisc.drop stats pkt;
      false
    end
    else begin
      (Queue.push pkt queue
      [@ccsim.alloc_ok "backlog queue cell, one per enqueued packet"]);
      bytes := !bytes + pkt.size_bytes;
      stats.enqueued <- stats.enqueued + 1;
      true
    end
  in
  let[@ccsim.hot] dequeue () =
    (match Queue.take_opt queue with
     | None -> None
     | Some pkt ->
         bytes := !bytes - pkt.size_bytes;
         stats.dequeued <- stats.dequeued + 1;
         Some pkt)
    [@ccsim.alloc_ok "the qdisc interface hands the dequeued packet back as an option"]
  in
  {
    Qdisc.name = "fifo";
    enqueue;
    dequeue;
    backlog_bytes = (fun () -> !bytes);
    backlog_packets = (fun () -> Queue.length queue);
    set_cross_backlog = (fun b -> cross := Int.max 0 b);
    stats;
  }
