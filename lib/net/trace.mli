(** Packet event tracing.

    A bounded in-memory log of packet-level events (sends, deliveries,
    drops) for debugging scenarios and asserting fine-grained behaviour
    in tests. Wrap any sink with {!tap} to record deliveries at that
    point; qdisc/shaper drops are recorded by the caller via
    {!record}.

    When the ambient {!Ccsim_obs.Scope} carries a flight recorder at
    {!create} time, every event is mirrored into it as a
    ["packet"]-class entry (drops at [Warn] severity, sends/deliveries
    at [Debug]), so packet history lands in the same journal as CCA
    decisions and qdisc drops. *)

type event_kind = Sent | Delivered | Dropped

type event = {
  at : float;
  kind : event_kind;
  point : string;  (** where in the path the event was observed *)
  flow : int;
  seq : int;
  size_bytes : int;
  is_ack : bool;
  retx : bool;
}

type t

val create : ?capacity:int -> Ccsim_engine.Sim.t -> t
(** Keeps the most recent [capacity] events (default 100,000). *)

val record : t -> kind:event_kind -> point:string -> Packet.t -> unit

val tap : t -> point:string -> (Packet.t -> unit) -> Packet.t -> unit
(** [tap trace ~point sink] is a sink that records a [Delivered] event
    and forwards to [sink]. *)

val tap_send : t -> point:string -> (Packet.t -> unit) -> Packet.t -> unit
(** Like {!tap} but records [Sent] — wrap a flow's injection point. *)

val events : t -> event list
(** Oldest first, within the retained window. Once more than
    [capacity] events have been observed, the window holds exactly the
    [capacity] {e most recent} events: recording event number
    [capacity + k] evicts the oldest retained event, so the window
    spans observations [(count - capacity + 1) .. count]. *)

val count : t -> int
(** Total events ever observed, {e including} evicted ones — this keeps
    growing after the buffer is full, so [count t] may exceed
    [List.length (events t)] (which is bounded by [capacity]). *)

val filter : t -> f:(event -> bool) -> event list

val deliveries_for : t -> flow:int -> event list
val drops_for : t -> flow:int -> event list

val pp_event : Format.formatter -> event -> unit
