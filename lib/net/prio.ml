let create ?(bands = 3) ?(limit_bytes_per_band = Fifo.default_limit_bytes) () =
  if bands <= 0 then invalid_arg "Prio.create: bands must be positive";
  if limit_bytes_per_band <= 0 then invalid_arg "Prio.create: limit must be positive";
  let queues = Array.init bands (fun _ -> Queue.create ()) in
  let band_bytes = Array.make bands 0 in
  let stats = Qdisc.make_stats () in
  let band_of (pkt : Packet.t) = min (bands - 1) (max 0 pkt.prio) in
  let enqueue (pkt : Packet.t) =
    let b = band_of pkt in
    if band_bytes.(b) + pkt.size_bytes > limit_bytes_per_band then begin
      Qdisc.drop stats pkt;
      false
    end
    else begin
      Queue.push pkt queues.(b);
      band_bytes.(b) <- band_bytes.(b) + pkt.size_bytes;
      stats.enqueued <- stats.enqueued + 1;
      true
    end
  in
  let dequeue () =
    let rec scan b =
      if b >= bands then None
      else
        match Queue.take_opt queues.(b) with
        | None -> scan (b + 1)
        | Some pkt ->
            band_bytes.(b) <- band_bytes.(b) - pkt.size_bytes;
            stats.dequeued <- stats.dequeued + 1;
            Some pkt
    in
    scan 0
  in
  {
    Qdisc.name = "prio";
    enqueue;
    dequeue;
    backlog_bytes = (fun () -> Array.fold_left ( + ) 0 band_bytes);
    backlog_packets = (fun () -> Array.fold_left (fun acc q -> acc + Queue.length q) 0 queues);
    set_cross_backlog = Qdisc.ignore_cross_backlog;
    stats;
  }
