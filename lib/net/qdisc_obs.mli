(** Observability decorator for queue disciplines.

    {!instrument} wraps any {!Qdisc.t} — FIFO, DRR, RED, CoDel, strict
    priority — with metrics and flight-recorder hooks, without touching
    the implementations: per-discipline enqueue/dequeue/drop counters
    ([qdisc_enqueued_total] etc., labeled [{qdisc=<name>}]), a backlog
    gauge, a log-scale sojourn-time histogram, and a ["qdisc"]-class
    drop event per dropped packet. Instruments are shared across wrapped
    instances with the same discipline name (registry semantics), so
    numbers aggregate per discipline.

    The wrapper shares the inner discipline's [stats] record and
    backlog closures: external readers of the original record keep
    working. Internal drops (e.g. CoDel head drops) are detected via
    [stats.dropped] deltas around each operation.

    {!Link.create} applies this automatically to its qdisc when the
    ambient {!Ccsim_obs.Scope} carries metrics or a recorder; with the
    default empty scope, [instrument] is never called and the qdisc is
    untouched. *)

val instrument :
  ?metrics:Ccsim_obs.Metrics.t ->
  ?recorder:Ccsim_obs.Recorder.t ->
  now:(unit -> float) ->
  Qdisc.t ->
  Qdisc.t
(** Returns the qdisc unchanged when neither [metrics] nor [recorder]
    is given. *)
