(** Observability decorator for queue disciplines.

    {!instrument} wraps any {!Qdisc.t} — FIFO, DRR, RED, CoDel, strict
    priority — with metrics and flight-recorder hooks, without touching
    the implementations: per-discipline enqueue/dequeue/drop counters
    ([qdisc_enqueued_total] etc., labeled [{qdisc=<name>}]), a backlog
    gauge, a log-scale sojourn-time histogram, and a ["qdisc"]-class
    drop event per dropped packet. Instruments are shared across wrapped
    instances with the same discipline name (registry semantics), so
    numbers aggregate per discipline.

    The wrapper shares the inner discipline's [stats] record and
    backlog closures: external readers of the original record keep
    working. Internal drops (e.g. CoDel head drops) are detected via
    [stats.dropped] deltas around each operation.

    When a {!Ccsim_obs.Span} store is given, the wrapper also drives
    the queue-side lifecycle-span sites for packets carrying the
    [sampled] tag: accepted enqueues open a span record at [hop],
    dequeues close the queueing phase, and tail drops complete the
    record as dropped.

    {!Link.create} applies this automatically to its qdisc when the
    ambient {!Ccsim_obs.Scope} carries metrics, a recorder, or a span
    store; with the default empty scope, [instrument] is never called
    and the qdisc is untouched. *)

val instrument :
  ?metrics:Ccsim_obs.Metrics.t ->
  ?recorder:Ccsim_obs.Recorder.t ->
  ?span:Ccsim_obs.Span.t ->
  ?hop:string ->
  now:(unit -> float) ->
  Qdisc.t ->
  Qdisc.t
(** Returns the qdisc unchanged when none of [metrics], [recorder],
    [span] is given. [hop] (default ["link"]) names the link in span
    records. *)
