module Obs = Ccsim_obs

(* Observability handles resolved once at creation from the ambient
   scope. [None] everywhere under the default scope, in which case the
   per-packet paths below reduce to a [match] on [None]. *)
type obs = {
  recorder : Obs.Recorder.t option;
  tx_bytes : Obs.Metrics.counter option;
  tx_packets : Obs.Metrics.counter option;
  busy_seconds_g : Obs.Metrics.gauge option;
  rate_g : Obs.Metrics.gauge option;
  rate_changes : Obs.Metrics.counter option;
}

let no_obs =
  {
    recorder = None;
    tx_bytes = None;
    tx_packets = None;
    busy_seconds_g = None;
    rate_g = None;
    rate_changes = None;
  }

(* Watchdog conservation state: transmission starts and completions are
   counted at their two distinct event sites (dequeue vs delivery), so
   corrupting either side — or the public [bytes_delivered] aggregate —
   breaks an invariant instead of going unnoticed. Wire-level faults
   (non-congestive loss, corruption) are counted at their own site so
   the wire invariant stays exact under fault injection:
   started = delivered + lost + (at most one in flight). *)
type wd = {
  mutable tx_started_pkts : int;
  mutable tx_started_bytes : int;
  mutable wd_delivered_pkts : int;
  mutable wd_delivered_bytes : int;
  mutable wd_lost_pkts : int;
  mutable wd_lost_bytes : int;
}

type loss_model =
  | Uniform of { p : float }
  | Gilbert_elliott of {
      p_enter : float;  (* good -> bad transition probability per packet *)
      p_exit : float;  (* bad -> good transition probability per packet *)
      loss_good : float;
      loss_bad : float;
    }

(* Wire impairments (Ccsim_faults): allocated lazily by the first
   setter so the fault-free delivery path stays a [match] on [None]
   and is byte-identical to the pre-fault binary. All stochastic
   draws come from the injector-installed SplitMix64 stream, never a
   global PRNG (ccsim-lint R2). *)
type impairment = {
  mutable fault_rng : Ccsim_util.Rng.t option;
  mutable loss : loss_model option;
  mutable ge_bad : bool;  (* Gilbert–Elliott chain state *)
  mutable corrupt_p : float;
  mutable duplicate_p : float;
  mutable reorder : (float * float) option;  (* probability, extra delay (s) *)
  mutable spike_delay_s : float;  (* added to propagation while a delay spike is live *)
  mutable down : bool;  (* outage: serialization paused, queue builds *)
  mutable wire_lost_pkts : int;
  mutable wire_corrupted_pkts : int;
  mutable wire_duplicated_pkts : int;
  mutable wire_reordered_pkts : int;
}

let fresh_impairment () =
  {
    fault_rng = None;
    loss = None;
    ge_bad = false;
    corrupt_p = 0.0;
    duplicate_p = 0.0;
    reorder = None;
    spike_delay_s = 0.0;
    down = false;
    wire_lost_pkts = 0;
    wire_corrupted_pkts = 0;
    wire_duplicated_pkts = 0;
    wire_reordered_pkts = 0;
  }

let check_probability ~what p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Link.%s: probability %g outside [0, 1]" what p)

(* A fluid cross-traffic aggregate (hybrid mode) consumes part of the
   wire: serialization proceeds at the residual rate, floored at 1% of
   capacity so packet flows starve gracefully instead of stalling the
   event loop. *)
let min_residual_frac = 0.01

type t = {
  sim : Ccsim_engine.Sim.t;
  name : string;  (* hop label in lifecycle spans *)
  mutable rate_bps : float;
  mutable cross_bps : float;
  delay_s : float;
  qdisc : Qdisc.t;
  sink : Packet.t -> unit;
  mutable busy : bool;
  busy_seconds : float array;
      (* one unboxed slot: a mutable float field in this mixed record
         would box on every per-packet accumulation *)
  mutable bytes_delivered : int;
  obs : obs;
  profile : Obs.Profile.t option;
      (* ambient engine profile: simulated-packet hot-path counters
         (enqueued/dequeued/delivered/tail-dropped) feed the
         packets-per-wall-second metric; a single field store per
         packet when profiling, a [match] on [None] otherwise *)
  span : Obs.Span.t option;
  flow_busy : (int, float ref) Hashtbl.t option;
      (* per-flow serialization seconds (bottleneck occupancy shares);
         allocated only when the ambient scope carries a timeline or
         metrics, one table probe per transmission otherwise nothing *)
  wd : wd option;
  mutable imp : impairment option;
}

let create sim ?(name = "link") ~rate_bps ~delay_s ?qdisc ~sink () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be positive";
  if delay_s < 0.0 then invalid_arg "Link.create: negative delay";
  let qdisc = match qdisc with Some q -> q | None -> Fifo.create () in
  let scope = Obs.Scope.ambient () in
  let qdisc =
    match (scope.Obs.Scope.metrics, scope.Obs.Scope.recorder, scope.Obs.Scope.span) with
    | None, None, None -> qdisc
    | metrics, recorder, span ->
        Qdisc_obs.instrument ?metrics ?recorder ?span ~hop:name
          ~now:(fun () -> Ccsim_engine.Sim.now sim)
          qdisc
  in
  let flow_busy =
    match (scope.Obs.Scope.timeline, scope.Obs.Scope.metrics) with
    | None, None -> None
    | _ ->
        (* Flow attribution rides the same scope slots the per-flow
           timeline probes and metrics export read from. *)
        Qdisc.enable_flow_drop_accounting qdisc.Qdisc.stats;
        Some (Hashtbl.create 16)
  in
  let obs =
    match scope.Obs.Scope.metrics with
    | None when Option.is_none scope.Obs.Scope.recorder -> no_obs
    | m ->
        let counter name = Option.map (fun m -> Obs.Metrics.counter m name) m in
        let gauge name = Option.map (fun m -> Obs.Metrics.gauge m name) m in
        {
          recorder = scope.Obs.Scope.recorder;
          tx_bytes = counter "link_tx_bytes_total";
          tx_packets = counter "link_tx_packets_total";
          busy_seconds_g = gauge "link_busy_seconds_total";
          rate_g = gauge "link_rate_bps";
          rate_changes = counter "link_rate_changes_total";
        }
  in
  (match obs.rate_g with Some g -> Obs.Metrics.set g rate_bps | None -> ());
  let wd =
    Option.map
      (fun _ ->
        {
          tx_started_pkts = 0;
          tx_started_bytes = 0;
          wd_delivered_pkts = 0;
          wd_delivered_bytes = 0;
          wd_lost_pkts = 0;
          wd_lost_bytes = 0;
        })
      scope.Obs.Scope.watchdog
  in
  let t =
    {
      sim;
      name;
      rate_bps;
      cross_bps = 0.0;
      delay_s;
      qdisc;
      sink;
      busy = false;
      busy_seconds = Array.make 1 0.0;
      bytes_delivered = 0;
      obs;
      profile = scope.Obs.Scope.profile;
      span = scope.Obs.Scope.span;
      flow_busy;
      wd;
      imp = None;
    }
  in
  (match (scope.Obs.Scope.watchdog, wd) with
  | Some w, Some wd ->
      (* Qdisc conservation: packets enqueued either left through
         dequeue, still sit in the backlog, or were dropped internally
         (CoDel/RED-style head drops); tail drops are never counted as
         enqueued, so the residue is bounded by the drop count. *)
      Obs.Watchdog.register w
        ~component:("link/qdisc:" ^ qdisc.Qdisc.name)
        ~invariant:"packet_conservation"
        (fun () ->
          let st = t.qdisc.Qdisc.stats in
          let backlog = t.qdisc.Qdisc.backlog_packets () in
          let residue = st.enqueued - st.dequeued - backlog in
          if residue < 0 || residue > st.dropped then
            Some
              (Printf.sprintf
                 "enqueued=%d, dequeued=%d, backlog=%d, dropped=%d: residue %d outside [0, dropped]"
                 st.enqueued st.dequeued backlog st.dropped residue)
          else None);
      (* Wire conservation: the link serializes one packet at a time, so
         transmissions started and deliveries completed differ by at
         most the packet on the wire. *)
      Obs.Watchdog.register w ~component:"link" ~invariant:"packet_conservation" (fun () ->
          let in_flight = wd.tx_started_pkts - wd.wd_delivered_pkts - wd.wd_lost_pkts in
          if in_flight < 0 || in_flight > 1 then
            Some
              (Printf.sprintf
                 "tx_started=%d, delivered=%d, wire_lost=%d: %d packet(s) on a one-packet wire"
                 wd.tx_started_pkts wd.wd_delivered_pkts wd.wd_lost_pkts in_flight)
          else None);
      Obs.Watchdog.register w ~component:"link" ~invariant:"byte_conservation" (fun () ->
          if wd.wd_delivered_bytes <> t.bytes_delivered then
            Some
              (Printf.sprintf "delivered byte counters disagree: %d tracked vs %d reported"
                 wd.wd_delivered_bytes t.bytes_delivered)
          else if wd.tx_started_bytes < wd.wd_delivered_bytes + wd.wd_lost_bytes then
            Some
              (Printf.sprintf "delivered %d + wire-lost %d bytes but only %d entered the wire"
                 wd.wd_delivered_bytes wd.wd_lost_bytes wd.tx_started_bytes)
          else None)
  | _ -> ());
  t

let note_delivery t (pkt : Packet.t) =
  (match t.obs.tx_bytes with Some c -> Obs.Metrics.add c pkt.size_bytes | None -> ());
  (match t.obs.tx_packets with Some c -> Obs.Metrics.inc c | None -> ());
  (match t.obs.busy_seconds_g with Some g -> Obs.Metrics.set g t.busy_seconds.(0) | None -> ());
  match t.obs.recorder with
  | Some r ->
      Obs.Recorder.record r
        ~at:(Ccsim_engine.Sim.now t.sim)
        ~severity:Obs.Recorder.Debug ~kind:"packet" ~point:"link"
        ~fields:
          [
            ("flow", string_of_int pkt.flow);
            ("seq", string_of_int pkt.seq);
            ("bytes", string_of_int pkt.size_bytes);
            ("ack", if Packet.is_data pkt then "0" else "1");
          ]
        "delivered"
  | None -> ()

let note_fault t ~what (pkt : Packet.t) =
  match t.obs.recorder with
  | Some r ->
      Obs.Recorder.record r
        ~at:(Ccsim_engine.Sim.now t.sim)
        ~severity:Obs.Recorder.Debug ~kind:"fault" ~point:"link"
        ~fields:
          [
            ("flow", string_of_int pkt.flow);
            ("seq", string_of_int pkt.seq);
            ("bytes", string_of_int pkt.size_bytes);
          ]
        what
  | None -> ()

(* Wire-side lifecycle-span sites (the queue-side sites live in
   Qdisc_obs): serialization-complete, delivery at the far end, and
   wire drops. Only packets carrying the [sampled] tag are touched. *)
let span_note_tx t (pkt : Packet.t) =
  match t.span with
  | Some s when pkt.Packet.sampled ->
      Obs.Span.note_tx s ~hop:t.name ~at:(Ccsim_engine.Sim.now t.sim) ~uid:pkt.Packet.uid
  | Some _ | None -> ()

let span_note_delivered t (pkt : Packet.t) =
  match t.span with
  | Some s when pkt.Packet.sampled ->
      Obs.Span.note_delivered s ~hop:t.name
        ~at:(Ccsim_engine.Sim.now t.sim)
        ~uid:pkt.Packet.uid
  | Some _ | None -> ()

let span_note_wire_drop t (pkt : Packet.t) =
  match t.span with
  | Some s when pkt.Packet.sampled ->
      Obs.Span.note_dropped s ~hop:t.name
        ~at:(Ccsim_engine.Sim.now t.sim)
        ~uid:pkt.Packet.uid ~flow:pkt.Packet.flow ~seq:pkt.Packet.seq
        ~bytes:pkt.Packet.size_bytes
        ~kind:(if Packet.is_data pkt then "data" else "ack")
  | Some _ | None -> ()

(* Per-packet wire-loss draw: advances the Gilbert–Elliott chain (if
   configured) and returns whether this packet is lost on the wire.
   Only called with an impairment whose rng is installed. *)
let[@ccsim.hot] wire_lost imp rng =
  match imp.loss with
  | None -> false
  | Some (Uniform { p }) -> p > 0.0 && Ccsim_util.Rng.bernoulli rng ~p
  | Some (Gilbert_elliott { p_enter; p_exit; loss_good; loss_bad }) ->
      (if imp.ge_bad then begin
         if p_exit > 0.0 && Ccsim_util.Rng.bernoulli rng ~p:p_exit then imp.ge_bad <- false
       end
       else if p_enter > 0.0 && Ccsim_util.Rng.bernoulli rng ~p:p_enter then
         imp.ge_bad <- true);
      let p = if imp.ge_bad then loss_bad else loss_good in
      p > 0.0 && Ccsim_util.Rng.bernoulli rng ~p

let[@ccsim.hot] rec transmit_next t =
  let down = match t.imp with Some imp -> imp.down | None -> false in
  if down then t.busy <- false
  else
    match t.qdisc.Qdisc.dequeue () with
    | None -> t.busy <- false
    | Some pkt ->
        t.busy <- true;
        (match t.profile with
        | Some p -> Obs.Profile.note_pkt_dequeued p
        | None -> ());
        let effective_bps =
          Float.max (min_residual_frac *. t.rate_bps) (t.rate_bps -. t.cross_bps)
        in
        let tx_time =
          Ccsim_util.Units.seconds_to_transmit ~size_bytes:pkt.Packet.size_bytes
            ~rate_bps:effective_bps
        in
        t.busy_seconds.(0) <- t.busy_seconds.(0) +. tx_time;
        ((match t.flow_busy with
         | Some tbl -> (
             match Hashtbl.find_opt tbl pkt.Packet.flow with
             | Some r -> r := !r +. tx_time
             | None -> Hashtbl.add tbl pkt.Packet.flow (ref tx_time))
         | None -> ())
        [@ccsim.alloc_ok "per-flow busy tracking only allocates when that observability is on"]);
        (match t.wd with
        | Some wd ->
            wd.tx_started_pkts <- wd.tx_started_pkts + 1;
            wd.tx_started_bytes <- wd.tx_started_bytes + pkt.Packet.size_bytes
        | None -> ());
        (ignore
           (Ccsim_engine.Sim.schedule t.sim ~delay:tx_time (fun () ->
                Ccsim_engine.Sim.set_component t.sim "link";
                span_note_tx t pkt;
                (match t.imp with
                | None -> deliver t pkt ~extra_delay:0.0 ~duplicate:false
                | Some imp -> deliver_impaired t imp pkt);
                transmit_next t))
        [@ccsim.alloc_ok "serialization-complete callback: one closure per packet is the engine's scheduling currency"])

(* The fault-free delivery site, also the tail of the impaired path. *)
and[@ccsim.hot] deliver t (pkt : Packet.t) ~extra_delay ~duplicate =
  t.bytes_delivered <- t.bytes_delivered + pkt.size_bytes;
  (match t.profile with
  | Some p -> Obs.Profile.note_pkt_delivered p
  | None -> ());
  (match t.wd with
  | Some wd ->
      wd.wd_delivered_pkts <- wd.wd_delivered_pkts + 1;
      wd.wd_delivered_bytes <- wd.wd_delivered_bytes + pkt.size_bytes
  | None -> ());
  note_delivery t pkt;
  let propagation = t.delay_s +. extra_delay in
  (ignore
     (Ccsim_engine.Sim.schedule t.sim ~delay:propagation (fun () ->
          Ccsim_engine.Sim.set_component t.sim "link";
          (* First arrival closes the span; a duplicate ghost's second
             call finds the record already closed and is ignored. *)
          span_note_delivered t pkt;
          t.sink pkt))
  [@ccsim.alloc_ok "propagation callback: one closure per delivered packet is the engine's scheduling currency"]);
  if duplicate then
    (ignore
       (Ccsim_engine.Sim.schedule t.sim ~delay:propagation (fun () ->
            Ccsim_engine.Sim.set_component t.sim "link";
            t.sink pkt))
    [@ccsim.alloc_ok "duplicate-ghost callback, armed-fault path only"])

(* Serialization complete under an armed impairment: decide the
   packet's fate. Wire loss and corruption consume wire time but never
   reach the sink (a corrupted packet is checksum-discarded by the
   receiving end); duplication delivers a ghost copy; reordering and
   delay spikes stretch propagation. Draw order is fixed
   (loss, corruption, duplication, reordering) and each draw happens
   only while its fault is armed, so arming one fault never perturbs
   another's stream. *)
and[@ccsim.hot] deliver_impaired t imp (pkt : Packet.t) =
  (* Draws stay tuple-free: the fault path runs per packet. *)
  let lost = match imp.fault_rng with None -> false | Some rng -> wire_lost imp rng in
  let corrupted =
    match imp.fault_rng with
    | None -> false
    | Some rng ->
        (not lost) && imp.corrupt_p > 0.0 && Ccsim_util.Rng.bernoulli rng ~p:imp.corrupt_p
  in
  if lost || corrupted then begin
    (match t.wd with
    | Some wd ->
        wd.wd_lost_pkts <- wd.wd_lost_pkts + 1;
        wd.wd_lost_bytes <- wd.wd_lost_bytes + pkt.size_bytes
    | None -> ());
    span_note_wire_drop t pkt;
    if lost then begin
      imp.wire_lost_pkts <- imp.wire_lost_pkts + 1;
      note_fault t ~what:"wire-loss" pkt
    end
    else begin
      imp.wire_corrupted_pkts <- imp.wire_corrupted_pkts + 1;
      note_fault t ~what:"corrupt" pkt
    end
  end
  else begin
    let duplicate =
      match imp.fault_rng with
      | None -> false
      | Some rng -> imp.duplicate_p > 0.0 && Ccsim_util.Rng.bernoulli rng ~p:imp.duplicate_p
    in
    let reorder_delay =
      match imp.fault_rng with
      | None -> 0.0
      | Some rng -> (
          match imp.reorder with
          | Some (p, extra_s) when p > 0.0 && Ccsim_util.Rng.bernoulli rng ~p -> extra_s
          | Some _ | None -> 0.0)
    in
    if duplicate then begin
      imp.wire_duplicated_pkts <- imp.wire_duplicated_pkts + 1;
      note_fault t ~what:"duplicate" pkt
    end;
    if reorder_delay > 0.0 then begin
      imp.wire_reordered_pkts <- imp.wire_reordered_pkts + 1;
      note_fault t ~what:"reorder" pkt
    end;
    deliver t pkt ~extra_delay:(imp.spike_delay_s +. reorder_delay) ~duplicate
  end

let[@ccsim.hot] send t pkt =
  match t.profile with
  | None -> if t.qdisc.Qdisc.enqueue pkt && not t.busy then transmit_next t
  | Some p ->
      let accepted = t.qdisc.Qdisc.enqueue pkt in
      if accepted then Obs.Profile.note_pkt_enqueued p
      else Obs.Profile.note_pkt_dropped p;
      if accepted && not t.busy then transmit_next t

(* --- fault-injection hooks (Ccsim_faults) ------------------------------ *)

let impairment t =
  match t.imp with
  | Some imp -> imp
  | None ->
      let imp = fresh_impairment () in
      t.imp <- Some imp;
      imp

let require_rng t ~what =
  match (impairment t).fault_rng with
  | Some _ -> ()
  | None ->
      invalid_arg
        (Printf.sprintf "Link.%s: stochastic impairment needs Link.set_fault_rng first" what)

let set_fault_rng t rng = (impairment t).fault_rng <- Some rng

let set_outage t down =
  let imp = impairment t in
  let was_down = imp.down in
  imp.down <- down;
  (match t.obs.recorder with
  | Some r ->
      Obs.Recorder.record r
        ~at:(Ccsim_engine.Sim.now t.sim)
        ~severity:Obs.Recorder.Warn ~kind:"fault" ~point:"link"
        (if down then "outage" else "restored")
  | None -> ());
  (* Restoration kicks serialization if traffic queued up during the
     outage; an in-flight packet (scheduled before the outage) finishes
     on its own and re-enters transmit_next. *)
  if was_down && (not down) && not t.busy then transmit_next t

let is_down t = match t.imp with Some imp -> imp.down | None -> false

let set_loss_model t model =
  (match model with
  | None -> ()
  | Some (Uniform { p }) ->
      check_probability ~what:"set_loss_model" p;
      require_rng t ~what:"set_loss_model"
  | Some (Gilbert_elliott { p_enter; p_exit; loss_good; loss_bad }) ->
      check_probability ~what:"set_loss_model" p_enter;
      check_probability ~what:"set_loss_model" p_exit;
      check_probability ~what:"set_loss_model" loss_good;
      check_probability ~what:"set_loss_model" loss_bad;
      require_rng t ~what:"set_loss_model");
  let imp = impairment t in
  imp.loss <- model;
  (* Each arming starts the burst chain from the good state, so a
     (plan, seed) pair replays the same chain regardless of what ran
     before. *)
  imp.ge_bad <- false

let set_corrupt_p t p =
  check_probability ~what:"set_corrupt_p" p;
  if p > 0.0 then require_rng t ~what:"set_corrupt_p";
  (impairment t).corrupt_p <- p

let set_duplicate_p t p =
  check_probability ~what:"set_duplicate_p" p;
  if p > 0.0 then require_rng t ~what:"set_duplicate_p";
  (impairment t).duplicate_p <- p

let set_reorder t spec =
  (match spec with
  | None -> ()
  | Some (p, extra_s) ->
      check_probability ~what:"set_reorder" p;
      if extra_s < 0.0 then invalid_arg "Link.set_reorder: negative extra delay";
      if p > 0.0 then require_rng t ~what:"set_reorder");
  (impairment t).reorder <- spec

let set_spike_delay t extra_s =
  if extra_s < 0.0 then invalid_arg "Link.set_spike_delay: negative extra delay";
  (impairment t).spike_delay_s <- extra_s

let wire_lost_packets t = match t.imp with Some i -> i.wire_lost_pkts | None -> 0
let wire_corrupted_packets t = match t.imp with Some i -> i.wire_corrupted_pkts | None -> 0
let wire_duplicated_packets t = match t.imp with Some i -> i.wire_duplicated_pkts | None -> 0
let wire_reordered_packets t = match t.imp with Some i -> i.wire_reordered_pkts | None -> 0

let as_sink t pkt = send t pkt
let name t = t.name
let rate_bps t = t.rate_bps

let flow_busy_seconds t ~flow =
  match t.flow_busy with
  | None -> 0.0
  | Some tbl -> ( match Hashtbl.find_opt tbl flow with Some r -> !r | None -> 0.0)

let flow_drops t ~flow = Qdisc.flow_drops t.qdisc.Qdisc.stats ~flow

let set_rate t rate =
  if rate <= 0.0 then invalid_arg "Link.set_rate: rate must be positive";
  t.rate_bps <- rate;
  (match t.obs.rate_changes with Some c -> Obs.Metrics.inc c | None -> ());
  match t.obs.rate_g with Some g -> Obs.Metrics.set g rate | None -> ()

let set_cross_rate_bps t rate =
  if rate < 0.0 then invalid_arg "Link.set_cross_rate_bps: negative rate";
  t.cross_bps <- rate

let cross_rate_bps t = t.cross_bps
let delay_s t = t.delay_s
let qdisc t = t.qdisc
let busy_seconds t = t.busy_seconds.(0)
let utilization t ~now = if now <= 0.0 then 0.0 else t.busy_seconds.(0) /. now
let bytes_delivered t = t.bytes_delivered
