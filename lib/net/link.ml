module Obs = Ccsim_obs

(* Observability handles resolved once at creation from the ambient
   scope. [None] everywhere under the default scope, in which case the
   per-packet paths below reduce to a [match] on [None]. *)
type obs = {
  recorder : Obs.Recorder.t option;
  tx_bytes : Obs.Metrics.counter option;
  tx_packets : Obs.Metrics.counter option;
  busy_seconds_g : Obs.Metrics.gauge option;
  rate_g : Obs.Metrics.gauge option;
  rate_changes : Obs.Metrics.counter option;
}

let no_obs =
  {
    recorder = None;
    tx_bytes = None;
    tx_packets = None;
    busy_seconds_g = None;
    rate_g = None;
    rate_changes = None;
  }

(* Watchdog conservation state: transmission starts and completions are
   counted at their two distinct event sites (dequeue vs delivery), so
   corrupting either side — or the public [bytes_delivered] aggregate —
   breaks an invariant instead of going unnoticed. *)
type wd = {
  mutable tx_started_pkts : int;
  mutable tx_started_bytes : int;
  mutable wd_delivered_pkts : int;
  mutable wd_delivered_bytes : int;
}

(* A fluid cross-traffic aggregate (hybrid mode) consumes part of the
   wire: serialization proceeds at the residual rate, floored at 1% of
   capacity so packet flows starve gracefully instead of stalling the
   event loop. *)
let min_residual_frac = 0.01

type t = {
  sim : Ccsim_engine.Sim.t;
  mutable rate_bps : float;
  mutable cross_bps : float;
  delay_s : float;
  qdisc : Qdisc.t;
  sink : Packet.t -> unit;
  mutable busy : bool;
  mutable busy_seconds : float;
  mutable bytes_delivered : int;
  obs : obs;
  wd : wd option;
}

let create sim ~rate_bps ~delay_s ?qdisc ~sink () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be positive";
  if delay_s < 0.0 then invalid_arg "Link.create: negative delay";
  let qdisc = match qdisc with Some q -> q | None -> Fifo.create () in
  let scope = Obs.Scope.ambient () in
  let qdisc =
    match (scope.Obs.Scope.metrics, scope.Obs.Scope.recorder) with
    | None, None -> qdisc
    | metrics, recorder ->
        Qdisc_obs.instrument ?metrics ?recorder
          ~now:(fun () -> Ccsim_engine.Sim.now sim)
          qdisc
  in
  let obs =
    match scope.Obs.Scope.metrics with
    | None when scope.Obs.Scope.recorder = None -> no_obs
    | m ->
        let counter name = Option.map (fun m -> Obs.Metrics.counter m name) m in
        let gauge name = Option.map (fun m -> Obs.Metrics.gauge m name) m in
        {
          recorder = scope.Obs.Scope.recorder;
          tx_bytes = counter "link_tx_bytes_total";
          tx_packets = counter "link_tx_packets_total";
          busy_seconds_g = gauge "link_busy_seconds_total";
          rate_g = gauge "link_rate_bps";
          rate_changes = counter "link_rate_changes_total";
        }
  in
  (match obs.rate_g with Some g -> Obs.Metrics.set g rate_bps | None -> ());
  let wd =
    Option.map
      (fun _ ->
        { tx_started_pkts = 0; tx_started_bytes = 0; wd_delivered_pkts = 0; wd_delivered_bytes = 0 })
      scope.Obs.Scope.watchdog
  in
  let t =
    {
      sim;
      rate_bps;
      cross_bps = 0.0;
      delay_s;
      qdisc;
      sink;
      busy = false;
      busy_seconds = 0.0;
      bytes_delivered = 0;
      obs;
      wd;
    }
  in
  (match (scope.Obs.Scope.watchdog, wd) with
  | Some w, Some wd ->
      (* Qdisc conservation: packets enqueued either left through
         dequeue, still sit in the backlog, or were dropped internally
         (CoDel/RED-style head drops); tail drops are never counted as
         enqueued, so the residue is bounded by the drop count. *)
      Obs.Watchdog.register w
        ~component:("link/qdisc:" ^ qdisc.Qdisc.name)
        ~invariant:"packet_conservation"
        (fun () ->
          let st = t.qdisc.Qdisc.stats in
          let backlog = t.qdisc.Qdisc.backlog_packets () in
          let residue = st.enqueued - st.dequeued - backlog in
          if residue < 0 || residue > st.dropped then
            Some
              (Printf.sprintf
                 "enqueued=%d, dequeued=%d, backlog=%d, dropped=%d: residue %d outside [0, dropped]"
                 st.enqueued st.dequeued backlog st.dropped residue)
          else None);
      (* Wire conservation: the link serializes one packet at a time, so
         transmissions started and deliveries completed differ by at
         most the packet on the wire. *)
      Obs.Watchdog.register w ~component:"link" ~invariant:"packet_conservation" (fun () ->
          let in_flight = wd.tx_started_pkts - wd.wd_delivered_pkts in
          if in_flight < 0 || in_flight > 1 then
            Some
              (Printf.sprintf "tx_started=%d, delivered=%d: %d packet(s) on a one-packet wire"
                 wd.tx_started_pkts wd.wd_delivered_pkts in_flight)
          else None);
      Obs.Watchdog.register w ~component:"link" ~invariant:"byte_conservation" (fun () ->
          if wd.wd_delivered_bytes <> t.bytes_delivered then
            Some
              (Printf.sprintf "delivered byte counters disagree: %d tracked vs %d reported"
                 wd.wd_delivered_bytes t.bytes_delivered)
          else if wd.tx_started_bytes < wd.wd_delivered_bytes then
            Some
              (Printf.sprintf "delivered %d bytes but only %d entered the wire"
                 wd.wd_delivered_bytes wd.tx_started_bytes)
          else None)
  | _ -> ());
  t

let note_delivery t (pkt : Packet.t) =
  (match t.obs.tx_bytes with Some c -> Obs.Metrics.add c pkt.size_bytes | None -> ());
  (match t.obs.tx_packets with Some c -> Obs.Metrics.inc c | None -> ());
  (match t.obs.busy_seconds_g with Some g -> Obs.Metrics.set g t.busy_seconds | None -> ());
  match t.obs.recorder with
  | Some r ->
      Obs.Recorder.record r
        ~at:(Ccsim_engine.Sim.now t.sim)
        ~severity:Obs.Recorder.Debug ~kind:"packet" ~point:"link"
        ~fields:
          [
            ("flow", string_of_int pkt.flow);
            ("seq", string_of_int pkt.seq);
            ("bytes", string_of_int pkt.size_bytes);
            ("ack", if Packet.is_data pkt then "0" else "1");
          ]
        "delivered"
  | None -> ()

let rec transmit_next t =
  match t.qdisc.Qdisc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let effective_bps =
        Float.max (min_residual_frac *. t.rate_bps) (t.rate_bps -. t.cross_bps)
      in
      let tx_time =
        Ccsim_util.Units.seconds_to_transmit ~size_bytes:pkt.Packet.size_bytes
          ~rate_bps:effective_bps
      in
      t.busy_seconds <- t.busy_seconds +. tx_time;
      (match t.wd with
      | Some wd ->
          wd.tx_started_pkts <- wd.tx_started_pkts + 1;
          wd.tx_started_bytes <- wd.tx_started_bytes + pkt.Packet.size_bytes
      | None -> ());
      ignore
        (Ccsim_engine.Sim.schedule t.sim ~delay:tx_time (fun () ->
             Ccsim_engine.Sim.set_component t.sim "link";
             t.bytes_delivered <- t.bytes_delivered + pkt.size_bytes;
             (match t.wd with
             | Some wd ->
                 wd.wd_delivered_pkts <- wd.wd_delivered_pkts + 1;
                 wd.wd_delivered_bytes <- wd.wd_delivered_bytes + pkt.size_bytes
             | None -> ());
             note_delivery t pkt;
             ignore
               (Ccsim_engine.Sim.schedule t.sim ~delay:t.delay_s (fun () ->
                    Ccsim_engine.Sim.set_component t.sim "link";
                    t.sink pkt));
             transmit_next t))

let send t pkt =
  if t.qdisc.Qdisc.enqueue pkt && not t.busy then transmit_next t

let as_sink t pkt = send t pkt
let rate_bps t = t.rate_bps

let set_rate t rate =
  if rate <= 0.0 then invalid_arg "Link.set_rate: rate must be positive";
  t.rate_bps <- rate;
  (match t.obs.rate_changes with Some c -> Obs.Metrics.inc c | None -> ());
  match t.obs.rate_g with Some g -> Obs.Metrics.set g rate | None -> ()

let set_cross_rate_bps t rate =
  if rate < 0.0 then invalid_arg "Link.set_cross_rate_bps: negative rate";
  t.cross_bps <- rate

let cross_rate_bps t = t.cross_bps
let delay_s t = t.delay_s
let qdisc t = t.qdisc
let busy_seconds t = t.busy_seconds
let utilization t ~now = if now <= 0.0 then 0.0 else t.busy_seconds /. now
let bytes_delivered t = t.bytes_delivered
