type deriv = t_s:float -> y:float array -> dy:float array -> unit

type workspace = {
  k1 : float array;
  k2 : float array;
  k3 : float array;
  k4 : float array;
  ytmp : float array;
}

let workspace n =
  if n < 1 then invalid_arg "Ode.workspace: dimension must be positive";
  {
    k1 = Array.make n 0.0;
    k2 = Array.make n 0.0;
    k3 = Array.make n 0.0;
    k4 = Array.make n 0.0;
    ytmp = Array.make n 0.0;
  }

let dim ws = Array.length ws.k1

let check ws ~dt_s y name =
  if dt_s <= 0.0 then invalid_arg (name ^ ": dt must be positive");
  if Array.length y <> dim ws then invalid_arg (name ^ ": state dimension mismatch")

let euler_step ws f ~t_s ~dt_s y =
  check ws ~dt_s y "Ode.euler_step";
  f ~t_s ~y ~dy:ws.k1;
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. (dt_s *. ws.k1.(i))
  done

let rk4_step ws f ~t_s ~dt_s y =
  check ws ~dt_s y "Ode.rk4_step";
  let n = Array.length y in
  let half = 0.5 *. dt_s in
  f ~t_s ~y ~dy:ws.k1;
  for i = 0 to n - 1 do
    ws.ytmp.(i) <- y.(i) +. (half *. ws.k1.(i))
  done;
  f ~t_s:(t_s +. half) ~y:ws.ytmp ~dy:ws.k2;
  for i = 0 to n - 1 do
    ws.ytmp.(i) <- y.(i) +. (half *. ws.k2.(i))
  done;
  f ~t_s:(t_s +. half) ~y:ws.ytmp ~dy:ws.k3;
  for i = 0 to n - 1 do
    ws.ytmp.(i) <- y.(i) +. (dt_s *. ws.k3.(i))
  done;
  f ~t_s:(t_s +. dt_s) ~y:ws.ytmp ~dy:ws.k4;
  let sixth = dt_s /. 6.0 in
  for i = 0 to n - 1 do
    y.(i) <-
      y.(i) +. (sixth *. (ws.k1.(i) +. (2.0 *. (ws.k2.(i) +. ws.k3.(i))) +. ws.k4.(i)))
  done

let integrate ws method_ f ~t0_s ~t1_s ~dt_s y =
  if dt_s <= 0.0 then invalid_arg "Ode.integrate: dt must be positive";
  let step =
    match method_ with `Euler -> euler_step ws f | `Rk4 -> rk4_step ws f
  in
  let t = ref t0_s in
  while !t < t1_s do
    step ~t_s:!t ~dt_s y;
    t := !t +. dt_s
  done;
  !t
