type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ~columns =
  if (match columns with [] -> true | _ :: _ -> false) then invalid_arg "Table.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row ->
        match row with
        | Rule -> widths
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 256 in
  let pad align width s =
    let fill = width - String.length s in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
  in
  let emit_cells cells =
    let parts = List.map2 (fun (w, a) c -> pad a w c) (List.combine widths t.aligns) cells in
    Buffer.add_string buf ("| " ^ String.concat " | " parts ^ " |\n")
  in
  let emit_rule () =
    let parts = List.map (fun w -> String.make w '-') widths in
    Buffer.add_string buf ("+-" ^ String.concat "-+-" parts ^ "-+\n")
  in
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Rule -> emit_rule () | Cells cells -> emit_cells cells) rows;
  emit_rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout
