let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let median xs = percentile xs 50.0

let coefficient_of_variation xs =
  let m = mean xs in
  if Feq.feq ~eps:0.0 m 0.0 then invalid_arg "Stats.coefficient_of_variation: zero mean";
  stddev xs /. m

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pct = percentile_sorted sorted in
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    p25 = pct 25.0;
    p50 = pct 50.0;
    p75 = pct 75.0;
    p90 = pct 90.0;
    p99 = pct 99.0;
    max = sorted.(Array.length sorted - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let min t =
    if t.n = 0 then invalid_arg "Stats.Online.min: empty accumulator";
    t.min

  let max t =
    if t.n = 0 then invalid_arg "Stats.Online.max: empty accumulator";
    t.max

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
    end
end
