type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  { sorted }

let count t = Array.length t.sorted
let min_value t = t.sorted.(0)
let max_value t = t.sorted.(Array.length t.sorted - 1)

(* Number of samples <= x, by binary search for the upper bound. *)
let rank t x =
  let a = t.sorted in
  let n = Array.length a in
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then loop (mid + 1) hi else loop lo mid
  in
  loop 0 n

let eval t x = float_of_int (rank t x) /. float_of_int (count t)
let fraction_below = eval

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Cdf.quantile: q out of [0,1]";
  let n = count t in
  let idx = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  let idx = max 0 (min (n - 1) idx) in
  t.sorted.(idx)

let points t =
  let n = count t in
  let acc = ref [] in
  let i = ref (n - 1) in
  while !i >= 0 do
    let x = t.sorted.(!i) in
    (* Skip duplicates, keeping the highest rank for each x. *)
    (match !acc with
    | (x', _) :: _ when Float.equal x' x -> ()
    | _ -> acc := (x, float_of_int (!i + 1) /. float_of_int n) :: !acc);
    decr i
  done;
  !acc

let sample_points t ~n =
  if n < 2 then invalid_arg "Cdf.sample_points: n must be >= 2";
  List.init n (fun i ->
      let q = float_of_int i /. float_of_int (n - 1) in
      (quantile t q, q))

let pp_ascii ?(width = 60) ?(height = 10) ppf t =
  let lo = min_value t and hi = max_value t in
  let span = if hi > lo then hi -. lo else 1.0 in
  for row = height downto 1 do
    let level = float_of_int row /. float_of_int height in
    Format.pp_print_string ppf (if row = height then "1.0 |" else if row = height / 2 then "0.5 |" else "    |");
    for col = 0 to width - 1 do
      let x = lo +. (span *. float_of_int col /. float_of_int (width - 1)) in
      let f = eval t x in
      Format.pp_print_char ppf (if f >= level then '#' else ' ')
    done;
    Format.pp_print_newline ppf ()
  done;
  Format.fprintf ppf "    +%s@." (String.make width '-');
  Format.fprintf ppf "     %-10.4g%*.4g@." lo (width - 10) hi
