(** Explicit float equality. ccsim-lint (R3) rejects bare structural
    [=] / [<>] on float-typed operands in simulator code; this module
    is the sanctioned replacement, making the tolerance explicit.

    [feq ~eps:0.] coincides with structural [=] on every float input,
    NaN included (both return [false] for NaN operands), so exact
    comparisons keep their semantics bit for bit. *)

val feq : eps:float -> float -> float -> bool
(** [feq ~eps a b] is [true] iff [a] and [b] are within [eps] of each
    other (or structurally equal, covering infinite operands). Raises
    [Invalid_argument] if [eps] is negative or NaN. *)

val fne : eps:float -> float -> float -> bool
(** [fne ~eps a b] is [not (feq ~eps a b)]. *)
