let jain_index xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Fairness.jain_index: empty array";
  Array.iter (fun x -> if x < 0.0 then invalid_arg "Fairness.jain_index: negative allocation") xs;
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let sum_sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if Feq.feq ~eps:0.0 sum_sq 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sum_sq)

let max_min_with_weights ~capacity ~demands ~weights =
  if capacity < 0.0 then invalid_arg "Fairness.max_min: negative capacity";
  let n = Array.length demands in
  if Array.length weights <> n then invalid_arg "Fairness.max_min: weights length mismatch";
  Array.iter (fun d -> if d < 0.0 then invalid_arg "Fairness.max_min: negative demand") demands;
  Array.iter (fun w -> if w <= 0.0 then invalid_arg "Fairness.max_min: weights must be positive") weights;
  let alloc = Array.make n 0.0 in
  let satisfied = Array.make n false in
  let remaining = ref capacity in
  let continue = ref (n > 0) in
  (* Progressive filling: repeatedly give each unsatisfied flow capacity in
     proportion to its weight until it meets its demand or capacity runs out. *)
  while !continue do
    let active_weight = ref 0.0 in
    for i = 0 to n - 1 do
      if not satisfied.(i) then active_weight := !active_weight +. weights.(i)
    done;
    if Feq.feq ~eps:0.0 !active_weight 0.0 || !remaining <= 1e-12 then continue := false
    else begin
      let fill = !remaining /. !active_weight in
      (* The binding flow: smallest remaining normalized demand. *)
      let binding = ref fill in
      for i = 0 to n - 1 do
        if not satisfied.(i) then begin
          let need = (demands.(i) -. alloc.(i)) /. weights.(i) in
          if need < !binding then binding := need
        end
      done;
      let step = !binding in
      if step <= 0.0 then begin
        (* Flows with zero residual demand: mark satisfied and retry. *)
        for i = 0 to n - 1 do
          if (not satisfied.(i)) && demands.(i) -. alloc.(i) <= 1e-12 then satisfied.(i) <- true
        done
      end
      else begin
        for i = 0 to n - 1 do
          if not satisfied.(i) then begin
            let grant = step *. weights.(i) in
            alloc.(i) <- alloc.(i) +. grant;
            remaining := !remaining -. grant;
            if demands.(i) -. alloc.(i) <= 1e-12 then satisfied.(i) <- true
          end
        done
      end
    end
  done;
  alloc

let max_min_allocation ~capacity ~demands =
  max_min_with_weights ~capacity ~demands ~weights:(Array.make (Array.length demands) 1.0)

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let harm ~solo ~contended =
  if solo <= 0.0 then invalid_arg "Fairness.harm: solo must be positive";
  clamp01 ((solo -. contended) /. solo)

let harm_lower_is_better ~solo ~contended =
  if contended <= 0.0 then invalid_arg "Fairness.harm_lower_is_better: contended must be positive";
  clamp01 ((contended -. solo) /. contended)

let throughput_shares xs =
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let n = Array.length xs in
  if sum <= 0.0 then Array.make n (if n = 0 then 0.0 else 1.0 /. float_of_int n)
  else Array.map (fun x -> x /. sum) xs

let starvation_episodes ~throughput ~fair_share ~threshold =
  let cut = threshold *. fair_share in
  Array.fold_left (fun acc x -> if x < cut then acc + 1 else acc) 0 throughput
