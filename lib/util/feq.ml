(* The one blessed site of float equality in the tree. ccsim-lint's R3
   forbids bare structural = / <> at float type everywhere else: the
   comparison compiles, but silently turns into a representation test
   that breaks change-point and elasticity verdicts the moment a
   computation is reassociated. Going through [feq] makes the intended
   tolerance explicit at every call site.

   With [~eps:0.] the result is exactly that of structural (=) on
   non-NaN floats, including infinities and signed zeros, so replacing
   `a = b` with `feq ~eps:0. a b` is verdict-preserving bit for bit
   (see test/test_util.ml's qcheck equivalence property). *)

(* lint: allow R3 -- this module implements the sanctioned comparison *)
let feq ~eps a b =
  if not (eps >= 0.0) then invalid_arg "Feq.feq: eps must be non-negative";
  (* The exact-equality fast path stays polymorphic [=] on purpose:
     [Float.equal] would make [feq nan nan] true, changing semantics. *)
  (a = b) [@lint.allow R6] || Float.abs (a -. b) <= eps

let fne ~eps a b = not (feq ~eps a b)
