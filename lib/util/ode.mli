(** Fixed-step ODE integration over [float array] state.

    The fluid-model engine integrates one large state vector (per-flow
    windows/rates plus per-link queue levels) on a fixed step; this
    module isolates the integrators so they are testable against
    closed-form solutions independent of any network model.

    A derivative function receives the current time and state and
    writes [dy/dt] into a caller-owned output array — no allocation on
    the stepping path. Steps mutate [y] in place. *)

type deriv = t_s:float -> y:float array -> dy:float array -> unit
(** [deriv ~t_s ~y ~dy] writes the derivative of every state component
    into [dy]. [y] must not be mutated by the derivative function. *)

type workspace
(** Preallocated scratch arrays for one state dimension. *)

val workspace : int -> workspace
(** [workspace dim] allocates scratch space for [dim]-component state.
    Raises [Invalid_argument] if [dim < 1]. *)

val dim : workspace -> int

val euler_step : workspace -> deriv -> t_s:float -> dt_s:float -> float array -> unit
(** One forward-Euler step: [y <- y + dt * f(t, y)]. [y] must have the
    workspace dimension; [dt_s] must be positive. O(dt) local error. *)

val rk4_step : workspace -> deriv -> t_s:float -> dt_s:float -> float array -> unit
(** One classical Runge–Kutta step (four derivative evaluations,
    O(dt^5) local error). Same contract as {!euler_step}. *)

val integrate :
  workspace ->
  [ `Euler | `Rk4 ] ->
  deriv ->
  t0_s:float ->
  t1_s:float ->
  dt_s:float ->
  float array ->
  float
(** [integrate ws method_ f ~t0_s ~t1_s ~dt_s y] steps [y] from [t0_s]
    to (at least) [t1_s] in fixed [dt_s] increments, returning the time
    actually reached (the first multiple of [dt_s] past [t0_s] that is
    [>= t1_s]; the caller keeps step bookkeeping trivial by choosing
    horizons aligned to the step). *)
