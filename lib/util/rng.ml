type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

(* 53 random bits mapped to [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: bound must be positive";
  unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub b 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.equal (Int64.logand (bits64 t) 1L) 1L

let bernoulli t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else unit_float t < p

let uniform t ~lo ~hi =
  if lo >= hi then invalid_arg "Rng.uniform: requires lo < hi";
  lo +. (unit_float t *. (hi -. lo))

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))

let bounded_pareto t ~shape ~scale ~cap =
  if not (scale < cap) then invalid_arg "Rng.bounded_pareto: requires scale < cap";
  (* Inverse-transform on the truncated CDF. *)
  let l = scale ** shape and h = cap ** shape in
  let u = unit_float t in
  ((-.(u *. h) +. (u *. l) +. h) /. (h *. l)) ** (-1.0 /. shape)

let normal t ~mean ~stddev =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~stddev:sigma)

let poisson t ~mean =
  if mean < 0.0 then invalid_arg "Rng.poisson: mean must be non-negative";
  if Feq.feq ~eps:0.0 mean 0.0 then 0
  else if mean < 30.0 then begin
    let l = exp (-.mean) in
    let rec loop k p =
      let p = p *. unit_float t in
      if p > l then loop (k + 1) p else k
    in
    loop 0 1.0
  end
  else
    (* Normal approximation with continuity correction. *)
    let x = normal t ~mean ~stddev:(sqrt mean) in
    max 0 (int_of_float (Float.round x))

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if Feq.feq ~eps:0.0 p 1.0 then 0
  else
    let u = 1.0 -. unit_float t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 1 to n do
    total := !total +. (1.0 /. (float_of_int k ** s));
    cdf.(k - 1) <- !total
  done;
  let target = unit_float t *. !total in
  (* Binary search for the first rank whose cumulative mass covers target. *)
  let rec search lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < target then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
