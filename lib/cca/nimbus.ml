module Sim = Ccsim_engine.Sim
module U = Ccsim_util

type handle = {
  elasticity : U.Timeseries.t;
  cross_rate : U.Timeseries.t;
  mode : unit -> [ `Delay | `Competitive ];
  capacity_estimate : unit -> float;
}

let create sim ?(mss = U.Units.mss) ?(pulse_freq_hz = 5.0) ?(pulse_amplitude = 0.25)
    ?(sample_rate_hz = 100.0) ?(fft_size = 512) ?(mode_switching = true) ?known_capacity_bps
    ?(elastic_threshold = 0.5) () =
  if not (U.Fft.is_power_of_two fft_size) then
    invalid_arg "Nimbus.create: fft_size must be a power of two";
  if pulse_amplitude <= 0.0 || pulse_amplitude >= 1.0 then
    invalid_arg "Nimbus.create: pulse_amplitude must be in (0,1)";
  let fmss = float_of_int mss in
  let cca =
    Cca.make ~name:"nimbus" ~cwnd:(Cca.initial_window ~mss)
      ~pacing_rate:(U.Units.mbps 1.0) ()
  in
  let dt = 1.0 /. sample_rate_hz in
  (* --- per-tick measured signals --- *)
  let sent_bytes = ref 0 in (* bytes sent since the last sampler tick *)
  let acked_bytes = ref 0 in (* bytes acked since the last sampler tick *)
  let rin = ref 0.0 in (* lightly smoothed send rate, bit/s *)
  let rout = ref 0.0 in (* lightly smoothed delivery (ack) rate, bit/s *)
  let rout_slow = ref 0.0 in (* heavily smoothed, feeds the capacity filter:
                                ack bursts after recovery would otherwise
                                masquerade as capacity *)
  let mu_filter = ref 0.0 in
  let srtt = ref 0.0 in
  let last_rtt = ref 0.0 in
  let min_rtt = ref infinity in
  let mu () =
    match known_capacity_bps with Some c -> c | None -> Float.max !mu_filter !rout
  in
  (* History of rin so the cross-traffic estimator can align the send
     rate with the delivery rate it produced one feedback delay later.
     Without this alignment the probe's own pulse, phase-shifted by the
     RTT, masquerades as elastic cross traffic. *)
  let history_len = 1024 in
  let rin_history = Array.make history_len 0.0 in
  let tick_count = ref 0 in
  (* --- elasticity estimation --- *)
  (* Raw-signal rings: longer than the FFT window by the maximum
     candidate alignment delay (see compute_elasticity). *)
  let max_delay_samples = 64 in
  let ring_len = fft_size + max_delay_samples in
  let z_ring = U.Ring_buffer.create ~capacity:fft_size in
  let rin_ring = U.Ring_buffer.create ~capacity:ring_len in
  let rout_ring = U.Ring_buffer.create ~capacity:ring_len in
  let dq_ring = U.Ring_buffer.create ~capacity:ring_len in
  let elasticity_series = U.Timeseries.create () in
  let cross_series = U.Timeseries.create () in
  let latest_elasticity = ref 0.0 in
  let scope = Ccsim_obs.Scope.ambient () in
  (* Exact mirror of the elasticity estimates into the run's timeline
     (one point per estimation epoch, far below the decimation
     threshold), so offline analysis of an exported series reproduces
     the in-simulation classification bit-for-bit. *)
  let tl_elasticity = Sim.timeline_series sim "nimbus_elasticity" in
  let m_switches =
    Option.map
      (fun m ->
        Ccsim_obs.Metrics.counter m ~labels:[ ("cca", "nimbus") ] "cca_state_switches_total")
      scope.Ccsim_obs.Scope.metrics
  in
  let m_epochs =
    Option.map
      (fun m -> Ccsim_obs.Metrics.counter m "nimbus_estimation_epochs_total")
      scope.Ccsim_obs.Scope.metrics
  in
  let obs_recorder = scope.Ccsim_obs.Scope.recorder in
  let mode_name = function `Delay -> "delay" | `Competitive -> "competitive" in
  let note_mode_switch ~now ~from_mode next =
    (match m_switches with Some c -> Ccsim_obs.Metrics.inc c | None -> ());
    match obs_recorder with
    | Some r ->
        Ccsim_obs.Recorder.record r ~at:now ~severity:Ccsim_obs.Recorder.Info ~kind:"cca"
          ~point:"nimbus"
          ~fields:
            [
              ("from", mode_name from_mode);
              ("to", mode_name next);
              ("elasticity", Printf.sprintf "%.4f" !latest_elasticity);
            ]
          "mode_switch"
    | None -> ()
  in
  (* --- control --- *)
  (* With mode switching disabled (the paper's measurement configuration)
     the probe runs TCP-competitive permanently: a delay-mode probe would
     starve against loss-based cross traffic and have no rate left to
     pulse with. *)
  let mode = ref (if mode_switching then `Delay else `Competitive) in
  let base_rate = ref (U.Units.mbps 1.0) in
  let virtual_cwnd = ref (Cca.initial_window ~mss) in
  (* The elasticity score searches over candidate feedback delays d and
     keeps the delay that best cancels the probe's own pulse:

       z_d(t) = mu * rin(t - d) / rout(t) - rin(t - d).

     For inelastic cross traffic there exists a d (the true feedback
     delay) at which z_d is constant, so min_d |Z_d(f_p)| ~ 0. Elastic
     cross traffic genuinely responds to the pulses, and no alignment
     cancels that response. This makes the metric robust to RTT
     estimation error and queueing-delay drift. *)
  let compute_elasticity now =
    if U.Ring_buffer.is_full rout_ring && U.Ring_buffer.is_full dq_ring then begin
      (match m_epochs with Some c -> Ccsim_obs.Metrics.inc c | None -> ());
      let rin_a = U.Ring_buffer.to_array rin_ring in
      let rout_a = U.Ring_buffer.to_array rout_ring in
      let dq_a = U.Ring_buffer.to_array dq_ring in
      let capacity = mu () in
      let offset = ring_len - fft_size in
      let z_d = Array.make fft_size 0.0 in
      let best = ref infinity in
      let d = ref 0 in
      while !d <= max_delay_samples do
        for i = 0 to fft_size - 1 do
          let rout_i = rout_a.(offset + i) in
          let rin_i = rin_a.(offset + i - !d) in
          (* The mixing identity behind z is only valid while the
             bottleneck queue is non-empty; on an unsaturated link there
             is no cross pressure to measure, so z reads zero. *)
          let saturated = dq_a.(offset + i) > 0.002 in
          z_d.(i) <-
            (if not saturated then 0.0
             else if rout_i > 0.02 *. capacity then
               Float.min capacity (Float.max 0.0 ((capacity *. rin_i /. rout_i) -. rin_i))
             else if i > 0 then z_d.(i - 1)
             else 0.0)
        done;
        let mag =
          U.Fft.magnitude_at (U.Fft.mean_removed z_d) ~sample_rate:sample_rate_hz
            ~freq:pulse_freq_hz
        in
        if mag < !best then best := mag;
        incr d
      done;
      let own_window = Array.sub rin_a offset fft_size in
      let own_mag =
        U.Fft.magnitude_at (U.Fft.mean_removed own_window) ~sample_rate:sample_rate_hz
          ~freq:pulse_freq_hz
      in
      (* Normalize by the larger of the measured self-pulse and half the
         configured pulse size, so a squashed own-signal cannot inflate
         the score. *)
      let pulse_floor = pulse_amplitude *. capacity /. 2.0 in
      let denom = Float.max own_mag pulse_floor in
      if denom > 0.0 then begin
        let e = !best /. denom in
        latest_elasticity := e;
        U.Timeseries.add elasticity_series ~time:now ~value:e;
        (match tl_elasticity with
        | Some s -> Ccsim_obs.Timeline.record s ~time:now ~value:e
        | None -> ());
        if mode_switching then
          match !mode with
          | `Delay when e > elastic_threshold ->
              note_mode_switch ~now ~from_mode:`Delay `Competitive;
              mode := `Competitive;
              virtual_cwnd := Float.max (4.0 *. fmss) (!base_rate *. !srtt /. 8.0)
          | `Competitive when e < elastic_threshold /. 2.0 ->
              note_mode_switch ~now ~from_mode:`Competitive `Delay;
              mode := `Delay
          | `Delay | `Competitive -> ()
      end
    end
  in
  let update_base_rate () =
    match !mode with
    | `Competitive ->
        (* Virtual Reno: rate follows the emulated window. *)
        if !srtt > 0.0 then base_rate := !virtual_cwnd *. 8.0 /. !srtt
    | `Delay ->
        (* Drive the queueing delay toward a small target. *)
        if !srtt > 0.0 && Float.is_finite !min_rtt then begin
          let dq = Float.max 0.0 (!srtt -. !min_rtt) in
          let target = Float.max 0.005 (0.1 *. !min_rtt) in
          let capacity = mu () in
          if capacity > 0.0 then begin
            let error = (target -. dq) /. target in
            let next = !rout +. (0.3 *. capacity *. error) in
            base_rate := Float.max (0.02 *. capacity) (Float.min (1.2 *. capacity) next)
          end
        end
  in
  let tick () =
    let now = Sim.now sim in
    let inst_rin = float_of_int !sent_bytes *. 8.0 /. dt in
    let inst_rout = float_of_int !acked_bytes *. 8.0 /. dt in
    sent_bytes := 0;
    acked_bytes := 0;
    (* Light smoothing: enough to tame packet quantization, mild pulse
       attenuation (applied identically to both signals). *)
    rin := (0.5 *. inst_rin) +. (0.5 *. !rin);
    rout := (0.5 *. inst_rout) +. (0.5 *. !rout);
    rout_slow := (0.05 *. inst_rout) +. (0.95 *. !rout_slow);
    rin_history.(!tick_count mod history_len) <- !rin;
    (* mu: decaying max of the slow delivery rate (~15 s memory). *)
    mu_filter := Float.max (!mu_filter *. (1.0 -. (dt /. 15.0))) !rout_slow;
    let capacity = mu () in
    (* Cross-traffic estimate with the send rate delayed by one RTT. *)
    let delay_samples =
      let d = if !srtt > 0.0 then !srtt else 0.1 in
      min (history_len - 1) (max 0 (int_of_float (Float.round (d /. dt))))
    in
    let delayed_index = (!tick_count - delay_samples + history_len) mod history_len in
    let rin_delayed = if !tick_count >= delay_samples then rin_history.(delayed_index) else !rin in
    incr tick_count;
    (* A transient ack stall would send z to infinity through the rout
       division; hold the previous estimate instead, and clamp to the
       physically meaningful range [0, capacity]. *)
    let dq =
      if Float.is_finite !min_rtt && !last_rtt > 0.0 then Float.max 0.0 (!last_rtt -. !min_rtt)
      else 0.0
    in
    let z =
      if dq <= 0.002 then 0.0
      else if !rout > 0.02 *. capacity then
        Float.min capacity
          (Float.max 0.0 ((capacity *. rin_delayed /. !rout) -. rin_delayed))
      else if U.Ring_buffer.length z_ring > 0 then U.Ring_buffer.newest z_ring
      else 0.0
    in
    U.Ring_buffer.push z_ring z;
    U.Ring_buffer.push rin_ring !rin;
    U.Ring_buffer.push rout_ring !rout;
    U.Ring_buffer.push dq_ring dq;
    U.Timeseries.add cross_series ~time:now ~value:z;
    update_base_rate ();
    (* Superimpose the probing pulse on the pacing rate. As in Nimbus,
       pulses are sized relative to the bottleneck capacity, not the
       flow's own rate — they must be large enough to force elastic
       cross traffic to visibly yield. *)
    let phase = 2.0 *. Float.pi *. pulse_freq_hz *. now in
    let pulse_scale = if capacity > 0.0 then capacity else !base_rate in
    let rate = !base_rate +. (pulse_amplitude *. pulse_scale *. sin phase) in
    cca.pacing_rate <- Float.max (Float.max (8.0 *. fmss) (0.02 *. pulse_scale)) rate;
    (* The window exists only to avoid limiting the paced rate — size it
       for the pulse peaks, not just the base, or the probing signal
       never reaches the wire when the base rate is low. *)
    let rtt = if !srtt > 0.0 then !srtt else 0.1 in
    cca.cwnd <-
      Float.max (4.0 *. fmss)
        (2.0 *. (!base_rate +. (pulse_amplitude *. pulse_scale)) *. rtt /. 8.0)
  in
  Sim.every sim ~interval:dt ~start:(Sim.now sim +. dt) (fun () ->
      Sim.set_component sim "cca";
      tick ());
  let estimation_interval = 0.5 in
  Sim.every sim ~interval:estimation_interval (fun () ->
      Sim.set_component sim "cca";
      compute_elasticity (Sim.now sim));
  let on_ack (info : Cca.ack_info) =
    if info.srtt > 0.0 then srtt := info.srtt;
    acked_bytes := !acked_bytes + info.newly_acked;
    (match info.rtt_sample with
    | Some rtt ->
        last_rtt := rtt;
        if rtt < !min_rtt then min_rtt := rtt
    | None -> ());
    (* Virtual Reno bookkeeping for competitive mode. *)
    virtual_cwnd :=
      !virtual_cwnd +. (fmss *. float_of_int info.newly_acked /. !virtual_cwnd)
  in
  let on_loss (_ : Cca.loss_info) =
    virtual_cwnd := Float.max (2.0 *. fmss) (!virtual_cwnd /. 2.0);
    match !mode with
    | `Delay -> base_rate := Float.max (8.0 *. fmss) (!base_rate *. 0.9)
    | `Competitive -> ()
  in
  let on_rto ~now:_ =
    virtual_cwnd := 2.0 *. fmss;
    base_rate := Float.max (8.0 *. fmss) (!base_rate *. 0.5)
  in
  let on_send ~now:_ ~bytes = sent_bytes := !sent_bytes + bytes in
  let handle =
    {
      elasticity = elasticity_series;
      cross_rate = cross_series;
      mode = (fun () -> !mode);
      capacity_estimate = mu;
    }
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca.Cca.on_send <- on_send;
  (cca, handle)
