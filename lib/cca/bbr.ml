type mode = Startup | Drain | Probe_bw | Probe_rtt

(* Max filter over the last [window] round trips. *)
module Max_filter = struct
  type t = { mutable samples : (int * float) list; window : int }

  let create ~window = { samples = []; window }

  let update t ~round ~value =
    let cutoff = round - t.window in
    t.samples <- (round, value) :: List.filter (fun (r, _) -> r >= cutoff) t.samples

  let get t = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 t.samples
end

let pacing_gain_cycle = [| 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let startup_gain = 2.885
let probe_rtt_duration = 0.2
let min_rtt_window = 10.0

let mode_label = function
  | Startup -> "startup"
  | Drain -> "drain"
  | Probe_bw -> "probe_bw"
  | Probe_rtt -> "probe_rtt"

let create ?(mss = Ccsim_util.Units.mss) ?initial_cwnd () =
  let fmss = float_of_int mss in
  let initial = match initial_cwnd with Some c -> c | None -> Cca.initial_window ~mss in
  let cca = Cca.make ~name:"bbr" ~cwnd:initial () in
  let scope = Ccsim_obs.Scope.ambient () in
  let m_switches =
    Option.map
      (fun m ->
        Ccsim_obs.Metrics.counter m ~labels:[ ("cca", "bbr") ] "cca_state_switches_total")
      scope.Ccsim_obs.Scope.metrics
  in
  let obs_recorder = scope.Ccsim_obs.Scope.recorder in
  let mode = ref Startup in
  let note_switch ~now next =
    (match m_switches with Some c -> Ccsim_obs.Metrics.inc c | None -> ());
    match obs_recorder with
    | Some r ->
        Ccsim_obs.Recorder.record r ~at:now ~severity:Ccsim_obs.Recorder.Info ~kind:"cca"
          ~point:"bbr"
          ~fields:[ ("from", mode_label !mode); ("to", mode_label next) ]
          "mode_switch"
    | None -> ()
  in
  let switch_mode ~now next =
    note_switch ~now next;
    mode := next
  in
  let btlbw = Max_filter.create ~window:10 in
  let min_rtt = ref infinity in
  let min_rtt_stamp = ref 0.0 in
  (* Round accounting: a round trip ends when the data outstanding at its
     start has been delivered. *)
  let delivered = ref 0 in
  let round = ref 0 in
  let round_end = ref 0 in
  let full_bw = ref 0.0 in
  let full_bw_count = ref 0 in
  let round_started = ref false in
  let cycle_index = ref 0 in
  let cycle_stamp = ref 0.0 in
  let probe_rtt_done = ref 0.0 in
  let pacing_gain () =
    match !mode with
    | Startup -> startup_gain
    | Drain -> 1.0 /. startup_gain
    | Probe_bw -> pacing_gain_cycle.(!cycle_index)
    | Probe_rtt -> 1.0
  in
  let cwnd_gain () =
    match !mode with Startup | Drain -> startup_gain | Probe_bw -> 2.0 | Probe_rtt -> 1.0
  in
  let bdp_bytes () =
    let bw = Max_filter.get btlbw in
    let rtt = if Float.is_finite !min_rtt then !min_rtt else 0.1 in
    bw *. rtt /. 8.0
  in
  let update_control () =
    let bw = Max_filter.get btlbw in
    if bw > 0.0 then begin
      cca.pacing_rate <- Float.max (pacing_gain () *. bw) 1000.0;
      let target = cwnd_gain () *. bdp_bytes () in
      cca.cwnd <-
        (match !mode with
        | Probe_rtt -> 4.0 *. fmss
        | Startup | Drain | Probe_bw -> Float.max (4.0 *. fmss) target)
    end
  in
  (* Once per round in STARTUP: has the bandwidth estimate grown >= 25%? *)
  let check_full_pipe () =
    let bw = Max_filter.get btlbw in
    if bw > !full_bw *. 1.25 then begin
      full_bw := bw;
      full_bw_count := 0
    end
    else incr full_bw_count
  in
  let on_ack (info : Cca.ack_info) =
    let now = info.now in
    delivered := !delivered + info.newly_acked;
    if !delivered >= !round_end then begin
      incr round;
      round_end := !delivered + info.inflight;
      round_started := true
    end
    else round_started := false;
    if info.delivery_rate > 0.0 && ((not info.app_limited) || info.delivery_rate > Max_filter.get btlbw)
    then Max_filter.update btlbw ~round:!round ~value:info.delivery_rate;
    (match info.rtt_sample with
    | Some rtt when rtt <= !min_rtt || now -. !min_rtt_stamp > min_rtt_window ->
        min_rtt := rtt;
        min_rtt_stamp := now
    | Some _ | None -> ());
    let rtt = if Float.is_finite !min_rtt then !min_rtt else Float.max info.srtt 0.01 in
    (match !mode with
    | Startup ->
        if !round_started then begin
          check_full_pipe ();
          if !full_bw_count >= 3 then switch_mode ~now Drain
        end
    | Drain ->
        if float_of_int info.inflight <= bdp_bytes () then begin
          switch_mode ~now Probe_bw;
          cycle_stamp := now;
          cycle_index := 2 (* start in a neutral phase *)
        end
    | Probe_bw ->
        (* Each gain phase lasts about one rtprop. *)
        if now -. !cycle_stamp >= rtt then begin
          cycle_stamp := now;
          cycle_index := (!cycle_index + 1) mod Array.length pacing_gain_cycle
        end;
        if now -. !min_rtt_stamp > min_rtt_window then begin
          switch_mode ~now Probe_rtt;
          probe_rtt_done := now +. probe_rtt_duration
        end
    | Probe_rtt ->
        if now >= !probe_rtt_done then begin
          min_rtt_stamp := now;
          switch_mode ~now Probe_bw;
          cycle_stamp := now;
          cycle_index := 2
        end);
    update_control ()
  in
  (* BBRv1 does not react to individual packet losses. *)
  let on_loss (_ : Cca.loss_info) = () in
  let on_rto ~now =
    (* Severe signal: restart the model conservatively. *)
    (match !mode with Startup -> () | _ -> note_switch ~now Startup);
    mode := Startup;
    full_bw := 0.0;
    full_bw_count := 0;
    cca.cwnd <- 4.0 *. fmss;
    update_control ()
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
