(** Discrete-event simulation core: virtual clock + event loop.

    All simulator components close over a [Sim.t] and schedule thunks.
    Running is single-threaded and deterministic: events at equal times
    fire in scheduling order. *)

type t

type event_id

val create :
  ?profile:Ccsim_obs.Profile.t ->
  ?timeline:Ccsim_obs.Timeline.t ->
  ?watchdog:Ccsim_obs.Watchdog.t ->
  unit ->
  t
(** Each instrument is taken explicitly or inherited from the ambient
    {!Ccsim_obs.Scope} when omitted.

    With [profile], every executed event is timed and charged to the
    component label its callback declares via {!set_component}; the
    peak heap depth and furthest simulated clock are tracked; scheduled
    and cancelled events are counted per component (attributed to the
    component running when the call happens); and sampled [Gc] deltas
    accumulate allocation totals (flushed when {!run} returns, see
    {!Ccsim_obs.Profile.gc_flush}).

    With an ambient {!Ccsim_obs.Scope} metrics registry, the event-heap
    depth is observed per executed event into the shared
    ["engine_heap_depth"] histogram (one instrument per registry, so
    multiple sims in a job aggregate).

    With [timeline], the sim tags its series with a fresh ["sim"] id,
    and a periodic driver (at {!Ccsim_obs.Timeline.interval}) samples
    every probe registered via {!add_timeline_probe}.

    With [watchdog], a periodic driver (at
    {!Ccsim_obs.Watchdog.interval}) sweeps the registered invariant
    checks, {!step} verifies clock monotonicity, and {!run} performs a
    final sweep before returning — raising
    {!Ccsim_obs.Watchdog.Violation} on the first broken invariant.

    Observability drivers reschedule themselves only while non-driver
    events remain, so they never keep an otherwise-drained run alive.
    Without instruments, the event loop is unchanged — no timing, no
    allocation. *)

val now : t -> float
(** Current virtual time in seconds (0 at creation). *)

val profile : t -> Ccsim_obs.Profile.t option
(** The attached engine profile, if any. *)

val timeline : t -> Ccsim_obs.Timeline.t option
val watchdog : t -> Ccsim_obs.Watchdog.t option

val add_timeline_tags : t -> (string * string) list -> unit
(** Prepend labels to every series this sim registers from now on (e.g.
    the scenario name). No-op without a timeline (the tags are stored
    but never used). *)

val timeline_series : t -> ?labels:Ccsim_obs.Timeline.labels -> string -> Ccsim_obs.Timeline.series option
(** Register (or fetch) a series carrying this sim's tags, for
    components that record exact points directly. [None] without a
    timeline. *)

val add_timeline_probe : t -> ?labels:Ccsim_obs.Timeline.labels -> string -> (unit -> float) -> unit
(** Register a gauge-style probe sampled by the timeline driver every
    {!Ccsim_obs.Timeline.interval} seconds. No-op without a timeline. *)

val set_component : t -> string -> unit
(** Called (with a literal label) at the top of a component's event
    callback to attribute the callback's execution time; a plain field
    store, free when profiling is off. The last label set during an
    event wins (a delivery that triggers synchronous TCP processing is
    charged to ["tcp"], not ["link"]). Unattributed events are charged
    to ["other"]. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule sim ~delay f] runs [f] at [now + delay]. [delay] must be
    non-negative (raises [Invalid_argument] otherwise). *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant; [time] must not precede [now]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; no-op if already fired or cancelled. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the heap is empty or the clock
    would pass [until]. With [until], the clock is left at exactly
    [until] afterwards, and events scheduled at [until] fire. *)

val step : t -> bool
(** Process a single event; [false] when none remain. *)

val pending : t -> int
(** Number of live scheduled events. *)

val stop : t -> unit
(** Make the current {!run} return after the in-progress event completes;
    pending events remain queued. *)

val deadline_hit : t -> bool
(** Whether a {!run} was cut short by the ambient
    {!Ccsim_obs.Deadline} (armed by the runner pool around the job).
    The deadline is polled at event boundaries every few hundred
    events; when it fires, the run stops cleanly between events with
    the clock at the last executed event, so partial metrics and
    timeline series remain collectable. A run that finishes before its
    deadline is byte-identical to an undeadlined run. *)

val periodic_driver : t -> interval:float -> comp:string -> (unit -> unit) -> unit
(** Install a periodic driver tick, like the built-in timeline and
    watchdog drivers: [f] runs every [interval] seconds charged to
    component [comp], but only reschedules itself while non-driver
    events remain, so drivers never keep an otherwise-drained run
    alive. Use for engines coupled to the sim clock (e.g. the fluid
    stepper) rather than {!every}, which would pin the run at its
    horizon. [interval] must be positive. *)

val every : t -> interval:float -> ?start:float -> ?stop_after:float -> (unit -> unit) -> unit
(** [every sim ~interval f] runs [f] at [start] (default [now + interval])
    and every [interval] thereafter, until [stop_after] (absolute time,
    default never) or the end of the run. [interval] must be positive. *)

val after_n : t -> n:int -> interval:float -> (int -> unit) -> unit
(** Run a callback [n] times, [interval] apart, starting one interval from
    now; the callback receives the 0-based tick index. *)
