(** Binary min-heap of timed events with O(log n) insert/extract and
    O(1) lazy cancellation.

    Keys are (time, sequence) pairs; the sequence number breaks ties so
    that events scheduled for the same instant fire in scheduling order —
    a property the TCP model relies on (e.g. an ack arriving "at the same
    time" as a timer must be processed deterministically). *)

type 'a t

type id
(** Handle for cancellation. *)

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> id
(** Insert an event; [time] may be any float (caller enforces
    monotonicity policies). *)

val cancel : 'a t -> id -> unit
(** Mark an event as cancelled. Cancelled events are skipped by
    {!pop}; cancelling twice or cancelling an already-fired event is a
    no-op. *)

val cancelled : id -> bool
(** Whether the event already fired or was cancelled — i.e. whether a
    {!cancel} on it would be a no-op. Lets the profiler count only
    live cancellations. *)

exception Empty

val pop_exn : 'a t -> 'a
(** Remove and return the earliest non-cancelled event's payload,
    raising {!Empty} when none is left. Allocation-free: the event's
    time is read back through {!last_time}. This is the engine loop's
    path; {!pop} wraps it for option-style callers. *)

val last_time : 'a t -> float
(** Time of the event most recently removed by {!pop_exn} (or {!pop});
    [nan] before the first removal. *)

val next_time : 'a t -> float
(** Time of the earliest non-cancelled event, or [infinity] when the
    heap has none left — the allocation-free {!peek_time}. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest non-cancelled event, or [None] when
    the heap has none left. *)

val peek_time : 'a t -> float option
(** Time of the earliest non-cancelled event without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool
