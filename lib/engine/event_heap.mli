(** Binary min-heap of timed events with O(log n) insert/extract and
    O(1) lazy cancellation.

    Keys are (time, sequence) pairs; the sequence number breaks ties so
    that events scheduled for the same instant fire in scheduling order —
    a property the TCP model relies on (e.g. an ack arriving "at the same
    time" as a timer must be processed deterministically). *)

type 'a t

type id
(** Handle for cancellation. *)

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> id
(** Insert an event; [time] may be any float (caller enforces
    monotonicity policies). *)

val cancel : 'a t -> id -> unit
(** Mark an event as cancelled. Cancelled events are skipped by
    {!pop}; cancelling twice or cancelling an already-fired event is a
    no-op. *)

val cancelled : id -> bool
(** Whether the event already fired or was cancelled — i.e. whether a
    {!cancel} on it would be a no-op. Lets the profiler count only
    live cancellations. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest non-cancelled event, or [None] when
    the heap has none left. *)

val peek_time : 'a t -> float option
(** Time of the earliest non-cancelled event without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool
