module Obs = Ccsim_obs

type event_id = Event_heap.id

type t = {
  heap : (unit -> unit) Event_heap.t;
  clock : float array;
      (* one unboxed slot: a mutable float field in this mixed record
         would box on every per-event store *)
  mutable stopped : bool;
  profile : Obs.Profile.t option;
  mutable component : string;
      (* label the in-flight event callback charges its execution to;
         reset to "other" before each event when profiling *)
  heap_hist : Obs.Metrics.histogram option;
      (* event-heap depth observed per executed event when a metrics
         registry is ambient; aggregates across sims by instrument name *)
  timeline : Obs.Timeline.t option;
  watchdog : Obs.Watchdog.t option;
  span : Obs.Span.t option;
      (* ambient lifecycle-span store; [run] seals it so packets still
         in flight at the end of the run export as incomplete spans *)
  mutable tl_tags : (string * string) list;
      (* labels appended to every series this sim registers, e.g.
         [("sim", "2"); ("scenario", "fig3/bbr bulk")] *)
  mutable probes : (Obs.Timeline.series * (unit -> float)) list;  (* newest first *)
  mutable driver_pending : int;  (* scheduled observability driver ticks *)
  deadline : Obs.Deadline.t option;
  mutable deadline_hit : bool;
  mutable deadline_events : int;  (* events since the last deadline poll *)
}

(* Polling the ambient deadline costs a wall-clock read, so it happens
   once per this many events; a hit stops the run at the next event
   boundary. The poll never feeds any simulated quantity, so a run that
   finishes in time is byte-identical to an undeadlined run. *)
let deadline_poll_every = 512

(* Periodic observability drivers must never keep the run alive on their
   own: a tick reschedules itself only while a non-driver event remains
   (events only beget events, so a heap holding nothing but driver ticks
   is done). [driver_pending] counts the scheduled ticks so the timeline
   and watchdog drivers do not keep each other alive either. *)
let install_driver t ~interval ~comp f =
  let note_tick () =
    match t.profile with
    | None -> ()
    | Some p -> Obs.Profile.note_scheduled p ~comp
  in
  let rec tick () =
    t.driver_pending <- t.driver_pending - 1;
    t.component <- comp;
    f ();
    if Event_heap.size t.heap > t.driver_pending then begin
      t.driver_pending <- t.driver_pending + 1;
      note_tick ();
      ignore (Event_heap.add t.heap ~time:(t.clock.(0) +. interval) tick)
    end
  in
  t.driver_pending <- t.driver_pending + 1;
  note_tick ();
  ignore (Event_heap.add t.heap ~time:(t.clock.(0) +. interval) tick)

let periodic_driver t ~interval ~comp f =
  if interval <= 0.0 then invalid_arg "Sim.periodic_driver: interval must be positive";
  install_driver t ~interval ~comp f

let sample_probes t () =
  List.iter
    (fun (s, probe) -> Obs.Timeline.record s ~time:t.clock.(0) ~value:(probe ()))
    (List.rev t.probes)

let create ?profile ?timeline ?watchdog () =
  let scope = Obs.Scope.ambient () in
  let profile = match profile with Some _ -> profile | None -> scope.Obs.Scope.profile in
  let heap_hist =
    match scope.Obs.Scope.metrics with
    | Some m -> Some (Obs.Metrics.histogram m "engine_heap_depth")
    | None -> None
  in
  let timeline =
    match timeline with Some _ -> timeline | None -> scope.Obs.Scope.timeline
  in
  let watchdog =
    match watchdog with Some _ -> watchdog | None -> scope.Obs.Scope.watchdog
  in
  let tl_tags =
    match timeline with
    | None -> []
    | Some tl -> [ ("sim", string_of_int (Obs.Timeline.next_sim_id tl)) ]
  in
  let t =
    {
      heap = Event_heap.create ();
      clock = Array.make 1 0.0;
      stopped = false;
      profile;
      heap_hist;
      component = "other";
      timeline;
      watchdog;
      span = scope.Obs.Scope.span;
      tl_tags;
      probes = [];
      driver_pending = 0;
      deadline = Obs.Deadline.ambient ();
      deadline_hit = false;
      deadline_events = 0;
    }
  in
  (match timeline with
  | Some tl -> install_driver t ~interval:(Obs.Timeline.interval tl) ~comp:"timeline" (sample_probes t)
  | None -> ());
  (match watchdog with
  | Some w ->
      install_driver t ~interval:(Obs.Watchdog.interval w) ~comp:"watchdog" (fun () ->
          Obs.Watchdog.check_now w ~now:t.clock.(0))
  | None -> ());
  t

let now t = t.clock.(0)
let profile t = t.profile
let timeline t = t.timeline
let watchdog t = t.watchdog
let set_component t name = t.component <- name

let add_timeline_tags t tags = t.tl_tags <- tags @ t.tl_tags

let timeline_series t ?(labels = []) name =
  Option.map
    (fun tl -> Obs.Timeline.series tl ~labels:(labels @ t.tl_tags) name)
    t.timeline

let add_timeline_probe t ?labels name probe =
  match timeline_series t ?labels name with
  | None -> ()
  | Some s -> t.probes <- (s, probe) :: t.probes

(* Scheduled/cancelled events are attributed to the component whose
   callback is running when the call happens ("other" during setup) —
   a field store plus one memoized lookup, only when profiling. *)
let note_scheduled t =
  match t.profile with
  | None -> ()
  | Some p -> Ccsim_obs.Profile.note_scheduled p ~comp:t.component

let[@ccsim.hot] schedule_at t ~time f =
  if time < t.clock.(0) then invalid_arg "Sim.schedule_at: time precedes the clock";
  note_scheduled t;
  Event_heap.add t.heap ~time f

let[@ccsim.hot] schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  note_scheduled t;
  Event_heap.add t.heap ~time:(t.clock.(0) +. delay) f

let[@ccsim.hot] cancel t id =
  (match t.profile with
  | None -> ()
  | Some p ->
      if not (Event_heap.cancelled id) then
        Ccsim_obs.Profile.note_cancelled p ~comp:t.component);
  Event_heap.cancel t.heap id

let[@ccsim.hot] step t =
  match Event_heap.pop_exn t.heap with
  | exception Event_heap.Empty -> false
  | f ->
      let time = Event_heap.last_time t.heap in
      (match t.watchdog with
      | Some w when time < t.clock.(0) ->
          (Obs.Watchdog.violate w ~now:t.clock.(0) ~component:"engine"
             ~invariant:"time_monotonicity"
             (Printf.sprintf "event at t=%.9f precedes the clock at t=%.9f" time t.clock.(0))
          [@ccsim.alloc_ok "cold branch: runs only on a time-monotonicity violation"])
      | Some _ | None -> ());
      t.clock.(0) <- time;
      (match t.heap_hist with
      | None -> ()
      | Some h -> Obs.Metrics.observe h (float_of_int (Event_heap.size t.heap + 1)));
      (match t.profile with
      | None -> f ()
      | Some p ->
          Ccsim_obs.Profile.note_heap_depth p (Event_heap.size t.heap + 1);
          Ccsim_obs.Profile.note_sim_time p time;
          t.component <- "other";
          let t0 = Ccsim_obs.Profile.wall_now () in
          f ();
          Ccsim_obs.Profile.record p ~comp:t.component
            ~seconds:(Ccsim_obs.Profile.wall_now () -. t0));
      true

let[@ccsim.hot] poll_deadline t =
  match t.deadline with
  | None -> ()
  | Some d ->
      t.deadline_events <- t.deadline_events + 1;
      if t.deadline_events >= deadline_poll_every then begin
        t.deadline_events <- 0;
        if Obs.Deadline.exceeded d then begin
          t.deadline_hit <- true;
          t.stopped <- true
        end
      end

(* The inner event loop: peek through the alloc-free [next_time]
   (infinity sentinel), execute, poll the deadline. Top-level recursion
   rather than a [while]/[ref] so the hot region allocates nothing. *)
let[@ccsim.hot] rec run_loop t ~horizon =
  if not t.stopped then begin
    let time = Event_heap.next_time t.heap in
    (* [next_time] = infinity means an empty heap — unless an event is
       genuinely scheduled at infinity, which [is_empty] distinguishes. *)
    if time > horizon || Event_heap.is_empty t.heap then ()
    else begin
      ignore (step t);
      poll_deadline t;
      run_loop t ~horizon
    end
  end

let run ?until t =
  t.stopped <- false;
  let horizon = match until with None -> infinity | Some u -> u in
  run_loop t ~horizon;
  (match until with
  | Some u when t.clock.(0) < u && not t.stopped -> t.clock.(0) <- u
  | Some _ | None -> ());
  (match t.profile with
  | Some p ->
      Ccsim_obs.Profile.note_sim_time p t.clock.(0);
      (* Close the allocation-sampling window so the Gc totals cover
         the whole run, not just the last full window. *)
      Ccsim_obs.Profile.gc_flush p
  | None -> ());
  (* Packets still queued or on the wire when the run ends become
     incomplete spans rather than leaking open records. *)
  (match t.span with
  | Some s -> Obs.Span.seal s ~now:t.clock.(0)
  | None -> ());
  (* A final sweep so violations between the last periodic check and the
     end of the run still fail it. *)
  match t.watchdog with
  | Some w -> Obs.Watchdog.check_now w ~now:t.clock.(0)
  | None -> ()

let pending t = Event_heap.size t.heap
let stop t = t.stopped <- true
let deadline_hit t = t.deadline_hit

let every t ~interval ?start ?(stop_after = infinity) f =
  if interval <= 0.0 then invalid_arg "Sim.every: interval must be positive";
  let first = match start with None -> t.clock.(0) +. interval | Some s -> s in
  let rec tick () =
    if t.clock.(0) <= stop_after then begin
      f ();
      if t.clock.(0) +. interval <= stop_after then ignore (schedule t ~delay:interval tick)
    end
  in
  if first <= stop_after then ignore (schedule_at t ~time:first tick)

let after_n t ~n ~interval f =
  if interval <= 0.0 then invalid_arg "Sim.after_n: interval must be positive";
  for i = 0 to n - 1 do
    ignore (schedule t ~delay:(float_of_int (i + 1) *. interval) (fun () -> f i))
  done
