type event_id = Event_heap.id

type t = {
  heap : (unit -> unit) Event_heap.t;
  mutable clock : float;
  mutable stopped : bool;
  profile : Ccsim_obs.Profile.t option;
  mutable component : string;
      (* label the in-flight event callback charges its execution to;
         reset to "other" before each event when profiling *)
}

let create ?profile () =
  let profile =
    match profile with
    | Some _ -> profile
    | None -> (Ccsim_obs.Scope.ambient ()).Ccsim_obs.Scope.profile
  in
  { heap = Event_heap.create (); clock = 0.0; stopped = false; profile; component = "other" }

let now t = t.clock
let profile t = t.profile
let set_component t name = t.component <- name

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Sim.schedule_at: time precedes the clock";
  Event_heap.add t.heap ~time f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Event_heap.add t.heap ~time:(t.clock +. delay) f

let cancel t id = Event_heap.cancel t.heap id

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      (match t.profile with
      | None -> f ()
      | Some p ->
          Ccsim_obs.Profile.note_heap_depth p (Event_heap.size t.heap + 1);
          t.component <- "other";
          let t0 = Unix.gettimeofday () in
          f ();
          Ccsim_obs.Profile.record p ~comp:t.component
            ~seconds:(Unix.gettimeofday () -. t0));
      true

let run ?until t =
  t.stopped <- false;
  let horizon = match until with None -> infinity | Some u -> u in
  let continue = ref true in
  while !continue && not t.stopped do
    match Event_heap.peek_time t.heap with
    | None -> continue := false
    | Some time when time > horizon -> continue := false
    | Some _ -> ignore (step t)
  done;
  (match until with
  | Some u when t.clock < u && not t.stopped -> t.clock <- u
  | Some _ | None -> ())

let pending t = Event_heap.size t.heap
let stop t = t.stopped <- true

let every t ~interval ?start ?(stop_after = infinity) f =
  if interval <= 0.0 then invalid_arg "Sim.every: interval must be positive";
  let first = match start with None -> t.clock +. interval | Some s -> s in
  let rec tick () =
    if t.clock <= stop_after then begin
      f ();
      if t.clock +. interval <= stop_after then ignore (schedule t ~delay:interval tick)
    end
  in
  if first <= stop_after then ignore (schedule_at t ~time:first tick)

let after_n t ~n ~interval f =
  if interval <= 0.0 then invalid_arg "Sim.after_n: interval must be positive";
  for i = 0 to n - 1 do
    ignore (schedule t ~delay:(float_of_int (i + 1) *. interval) (fun () -> f i))
  done
