(* Binary min-heap in structure-of-arrays layout. The previous
   array-of-entries representation allocated per event: an entry record
   plus a boxed float key on every [add], and two options plus a tuple
   on every [pop]/[peek_time]. The parallel arrays keep the float keys
   unboxed (float array storage), the [pop_exn]/[last_time]/[next_time]
   protocol returns through an unboxed one-slot float buffer, and the
   only remaining steady-state allocation is the 2-word cancellation
   handle [add] hands back. The option-returning [pop]/[peek_time] are
   kept as thin wrappers for existing callers and tests. *)

type id = { mutable cancelled : bool }

type 'a t = {
  (* Parallel arrays; slots at [len..] are stale. [payloads] stays [||]
     until the first add supplies a fill value. *)
  mutable times : float array;
  mutable seqs : int array;
  mutable ids : id array;
  mutable payloads : 'a array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
  (* Unboxed return slot for the time of the last [pop_exn]. *)
  last_popped : float array;
}

let create () =
  {
    times = [||];
    seqs = [||];
    ids = [||];
    payloads = [||];
    len = 0;
    next_seq = 0;
    live = 0;
    last_popped = Array.make 1 nan;
  }

(* Heap order: (time, seq) lexicographic; seq breaks same-instant ties
   in scheduling order, which the TCP model relies on. *)
let[@inline] before t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (Float.equal ti tj && t.seqs.(i) < t.seqs.(j))

let[@inline] swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let id = t.ids.(i) in
  t.ids.(i) <- t.ids.(j);
  t.ids.(j) <- id;
  let pl = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- pl

let[@ccsim.hot] rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let[@ccsim.hot] rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.len && before t l i then l else i in
  let smallest = if r < t.len && before t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

(* Amortized doubling; runs once per capacity step, not per event. *)
let grow t id payload =
  (let cap = if t.len = 0 then 16 else 2 * t.len in
   let times = Array.make cap 0.0 in
   Array.blit t.times 0 times 0 t.len;
   let seqs = Array.make cap 0 in
   Array.blit t.seqs 0 seqs 0 t.len;
   let ids = Array.make cap id in
   Array.blit t.ids 0 ids 0 t.len;
   let payloads = Array.make cap payload in
   Array.blit t.payloads 0 payloads 0 t.len;
   t.times <- times;
   t.seqs <- seqs;
   t.ids <- ids;
   t.payloads <- payloads)
  [@ccsim.alloc_ok "amortized array doubling: O(log n) growth events over a run, not per-event"]

let[@ccsim.hot] add t ~time payload =
  let id =
    ({ cancelled = false }
    [@ccsim.alloc_ok "the 2-word cancellation handle is the add API's return value"])
  in
  if t.len = Array.length t.times then grow t id payload;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.ids.(i) <- id;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t i;
  t.live <- t.live + 1;
  id

let cancelled id = id.cancelled

let cancel t id =
  if not id.cancelled then begin
    id.cancelled <- true;
    t.live <- t.live - 1
  end

(* Remove the root, restoring heap order. Caller checks len > 0. *)
let[@ccsim.hot] drop_top t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    let n = t.len in
    t.times.(0) <- t.times.(n);
    t.seqs.(0) <- t.seqs.(n);
    t.ids.(0) <- t.ids.(n);
    t.payloads.(0) <- t.payloads.(n);
    sift_down t 0
  end

exception Empty

let[@ccsim.hot] rec pop_exn t =
  if t.len = 0 then raise Empty
  else begin
    let id = t.ids.(0) in
    if id.cancelled then begin
      drop_top t;
      pop_exn t
    end
    else begin
      t.last_popped.(0) <- t.times.(0);
      let payload = t.payloads.(0) in
      id.cancelled <- true;
      (* fired events count as consumed *)
      t.live <- t.live - 1;
      drop_top t;
      payload
    end
  end

let[@inline] last_time t = t.last_popped.(0)

let rec next_time_slow t =
  if t.len = 0 then infinity
  else if t.ids.(0).cancelled then begin
    drop_top t;
    next_time_slow t
  end
  else t.times.(0)

let[@inline] next_time t =
  if t.len > 0 && not t.ids.(0).cancelled then t.times.(0) else next_time_slow t

(* Compatibility wrappers over the alloc-free protocol. *)

let pop t =
  match pop_exn t with
  | payload -> Some (last_time t, payload)
  | exception Empty -> None

let peek_time t = if t.live = 0 then None else Some (next_time t)

let size t = t.live
let is_empty t = t.live = 0
