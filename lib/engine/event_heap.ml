type id = { mutable cancelled : bool }

type 'a entry = { time : float; seq : int; payload : 'a; id : id }

type 'a t = {
  mutable data : 'a entry array option;
  (* [data] is [None] only when empty; entries beyond [len] are stale. *)
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { data = None; len = 0; next_seq = 0; live = 0 }

let entry_before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap arr i j =
  let tmp = arr.(i) in
  arr.(i) <- arr.(j);
  arr.(j) <- tmp

let rec sift_up arr i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before arr.(i) arr.(parent) then begin
      swap arr i parent;
      sift_up arr parent
    end
  end

let rec sift_down arr len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < len && entry_before arr.(l) arr.(!smallest) then smallest := l;
  if r < len && entry_before arr.(r) arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap arr i !smallest;
    sift_down arr len !smallest
  end

let add t ~time payload =
  let id = { cancelled = false } in
  let entry = { time; seq = t.next_seq; payload; id } in
  t.next_seq <- t.next_seq + 1;
  (match t.data with
  | None -> t.data <- Some (Array.make 16 entry)
  | Some arr when t.len = Array.length arr ->
      let bigger = Array.make (2 * t.len) entry in
      Array.blit arr 0 bigger 0 t.len;
      t.data <- Some bigger
  | Some _ -> ());
  (match t.data with
  | None -> assert false
  | Some arr ->
      arr.(t.len) <- entry;
      t.len <- t.len + 1;
      sift_up arr (t.len - 1));
  t.live <- t.live + 1;
  id

let cancelled id = id.cancelled

let cancel t id =
  if not id.cancelled then begin
    id.cancelled <- true;
    t.live <- t.live - 1
  end

let pop_entry t =
  match t.data with
  | None -> None
  | Some arr ->
      if t.len = 0 then None
      else begin
        let top = arr.(0) in
        t.len <- t.len - 1;
        if t.len > 0 then begin
          arr.(0) <- arr.(t.len);
          sift_down arr t.len 0
        end;
        Some top
      end

let rec pop t =
  match pop_entry t with
  | None -> None
  | Some entry ->
      if entry.id.cancelled then pop t
      else begin
        entry.id.cancelled <- true;
        (* fired events count as consumed *)
        t.live <- t.live - 1;
        Some (entry.time, entry.payload)
      end

let rec peek_time t =
  match t.data with
  | None -> None
  | Some arr ->
      if t.len = 0 then None
      else if arr.(0).id.cancelled then begin
        ignore (pop_entry t);
        peek_time t
      end
      else Some arr.(0).time

let size t = t.live
let is_empty t = t.live = 0
