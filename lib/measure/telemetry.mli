(** Periodic samplers that turn live simulation state into time series. *)

module Flow_monitor : sig
  type t

  val create :
    Ccsim_engine.Sim.t ->
    sender:Ccsim_tcp.Sender.t ->
    ?label:string ->
    ?interval:float ->
    unit ->
    t
  (** Samples the sender every [interval] (default 100 ms): cumulative
      acked bytes, cwnd, srtt. Raises [Invalid_argument] if [interval]
      is not positive. When the sim carries a timeline, also registers
      per-flow probes ([flow_goodput_bps], [flow_cwnd_bytes],
      [flow_srtt_s], [flow_inflight_bytes]) labelled with [label]
      (default: the sender's flow id). *)

  val throughput : t -> Ccsim_util.Timeseries.t
  (** Per-interval goodput in bit/s, derived from acked-byte deltas. *)

  val acked_bytes : t -> Ccsim_util.Timeseries.t
  val cwnd : t -> Ccsim_util.Timeseries.t
  val srtt : t -> Ccsim_util.Timeseries.t
  val snapshots : t -> Ccsim_tcp.Tcp_info.t list
  (** Full TCPInfo snapshots, oldest first. *)
end

module Queue_monitor : sig
  type t

  val create : Ccsim_engine.Sim.t -> qdisc:Ccsim_net.Qdisc.t -> ?interval:float -> unit -> t
  (** Samples backlog every [interval] (default 10 ms). Raises
      [Invalid_argument] if [interval] is not positive. When the sim
      carries a timeline, also registers [queue_backlog_bytes] and
      [queue_drops_total] probes labelled with the qdisc name. *)

  val backlog_bytes : t -> Ccsim_util.Timeseries.t
  val mean_backlog_bytes : t -> float
  val max_backlog_bytes : t -> float
end

module Link_monitor : sig
  type t

  val create : Ccsim_engine.Sim.t -> link:Ccsim_net.Link.t -> ?interval:float -> unit -> t
  (** Samples delivered bytes every [interval] (default 100 ms). Raises
      [Invalid_argument] if [interval] is not positive. *)

  val utilization : t -> Ccsim_util.Timeseries.t
  (** Per-interval utilization in [0, 1] relative to the link's current
      rate. *)
end
