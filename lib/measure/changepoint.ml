let prefix_sums signal =
  let n = Array.length signal in
  let prefix = Array.make (n + 1) 0.0 and prefix_sq = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. signal.(i);
    prefix_sq.(i + 1) <- prefix_sq.(i) +. (signal.(i) *. signal.(i))
  done;
  (prefix, prefix_sq)

(* L2 cost of [i, j): sum x^2 - (sum x)^2 / len. *)
let segment_cost ~prefix ~prefix_sq i j =
  if i >= j then 0.0
  else begin
    let s = prefix.(j) -. prefix.(i) in
    let sq = prefix_sq.(j) -. prefix_sq.(i) in
    sq -. (s *. s /. float_of_int (j - i))
  end

let default_penalty signal =
  let n = Array.length signal in
  if n < 3 then 1.0
  else begin
    (* Robust noise estimate from successive differences: x_{i+1} - x_i
       is N(0, sigma*sqrt 2) away from change points, and the median of
       |N(0, s)| is 0.6745 s. *)
    let diffs = Array.init (n - 1) (fun i -> Float.abs (signal.(i + 1) -. signal.(i))) in
    Array.sort Float.compare diffs;
    let med = diffs.(Array.length diffs / 2) in
    let sigma = med /. (0.6745 *. sqrt 2.0) in
    let sigma2 = Float.max (sigma *. sigma) 1e-9 in
    2.0 *. sigma2 *. log (float_of_int n)
  end

let pelt ?penalty signal =
  let n = Array.length signal in
  if n < 2 then []
  else begin
    let beta = match penalty with Some p -> p | None -> default_penalty signal in
    let prefix, prefix_sq = prefix_sums signal in
    let cost = segment_cost ~prefix ~prefix_sq in
    (* f.(t) = optimal cost of segmenting [0, t); last.(t) = last change. *)
    let f = Array.make (n + 1) 0.0 in
    let last = Array.make (n + 1) 0 in
    let candidates = ref [ 0 ] in
    for t = 1 to n do
      let best = ref infinity and best_s = ref 0 in
      List.iter
        (fun s ->
          let c = f.(s) +. cost s t +. beta in
          if c < !best then begin
            best := c;
            best_s := s
          end)
        !candidates;
      f.(t) <- !best;
      last.(t) <- !best_s;
      (* PELT pruning: s can never be optimal again if even without the
         penalty it cannot beat the current optimum. *)
      candidates :=
        t :: List.filter (fun s -> f.(s) +. cost s t <= f.(t)) !candidates
    done;
    let rec unwind t acc = if t <= 0 then acc else unwind last.(t) (if last.(t) > 0 then last.(t) :: acc else acc) in
    unwind n []
  end

let binary_segmentation ?penalty ?(max_changes = max_int) signal =
  let n = Array.length signal in
  if n < 2 then []
  else begin
    let beta = match penalty with Some p -> p | None -> default_penalty signal in
    let prefix, prefix_sq = prefix_sums signal in
    let cost = segment_cost ~prefix ~prefix_sq in
    let changes = ref [] in
    let rec split lo hi budget =
      if budget > 0 && hi - lo >= 2 then begin
        let whole = cost lo hi in
        let best_gain = ref 0.0 and best_k = ref (-1) in
        for k = lo + 1 to hi - 1 do
          let gain = whole -. cost lo k -. cost k hi in
          if gain > !best_gain then begin
            best_gain := gain;
            best_k := k
          end
        done;
        if !best_gain > beta && !best_k > 0 then begin
          changes := !best_k :: !changes;
          let remaining = budget - 1 in
          split lo !best_k remaining;
          split !best_k hi remaining
        end
      end
    in
    split 0 n max_changes;
    List.sort_uniq compare !changes
  end

let segment_means signal changes =
  let n = Array.length signal in
  if n = 0 then []
  else begin
    let bounds = (0 :: changes) @ [ n ] in
    let rec pairs = function
      | a :: (b :: _ as rest) ->
          let seg = Array.sub signal a (b - a) in
          (a, b, Ccsim_util.Stats.mean seg) :: pairs rest
      | [ _ ] | [] -> []
    in
    pairs bounds
  end

let largest_shift signal changes =
  let means = List.map (fun (_, _, m) -> m) (segment_means signal changes) in
  let rec max_jump acc = function
    | a :: (b :: _ as rest) -> max_jump (Float.max acc (Float.abs (b -. a))) rest
    | [ _ ] | [] -> acc
  in
  max_jump 0.0 means
