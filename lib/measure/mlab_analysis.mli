(** The paper's §3.1 passive-measurement pipeline over NDT records.

    Steps, as the paper describes them:
    + categorize flows as application-limited ([AppLimited > 0]) or
      receiver-limited ([RWndLimited > 0]) and set them aside, along
      with flows inferred to use cellular links;
    + for the remaining flows, search the throughput trace for level
      shifts (offline change-point detection) that could indicate a
      competing flow arriving or leaving;
    + report what fraction of flows even *could* have experienced CCA
      contention, and of those, how many show contention-consistent
      changes.

    When records carry ground truth (synthetic data), the verdicts are
    scored for precision/recall too. *)

type category = App_limited | Rwnd_limited | Cellular | Candidate

val category_equal : category -> category -> bool

type verdict = {
  record : Ndt.record;
  category : category;
  change_points : int list;  (** only computed for [Candidate] flows *)
  largest_shift_mbps : float;
  contention_consistent : bool;
      (** at least one change point with a level shift of at least
          [shift_threshold] x the flow's mean throughput *)
}

type report = {
  total : int;
  n_app_limited : int;
  n_rwnd_limited : int;
  n_cellular : int;
  n_candidates : int;
  n_contention_consistent : int;
  candidate_fraction : float;  (** candidates / total *)
  consistent_fraction_of_total : float;
  change_count_cdf : Ccsim_util.Cdf.t option;  (** per candidate flow *)
  shift_cdf : Ccsim_util.Cdf.t option;  (** largest shift / mean, per candidate *)
  verdicts : verdict list;
}

val categorize : ?limited_threshold:float -> Ndt.record -> category
(** The paper uses "field greater than zero"; the default threshold is
    exactly that (0.0 of lifetime fraction). *)

val analyze_record :
  ?shift_threshold:float ->
  ?limited_threshold:float ->
  ?penalty_scale:float ->
  Ndt.record ->
  verdict
(** [shift_threshold] defaults to 0.2 (a 20% throughput level shift);
    [penalty_scale] multiplies the change-point detector's default
    penalty (1.0 = PELT's BIC default; used by the A2 ablation). *)

val analyze :
  ?shift_threshold:float ->
  ?limited_threshold:float ->
  ?penalty_scale:float ->
  Ndt.record list ->
  report

type accuracy = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  true_negatives : int;
  precision : float;
  recall : float;
}

val score_against_ground_truth : report -> accuracy option
(** Treats [Gt_contended] as the positive class among candidate flows;
    [None] when no record carries ground truth. *)

val pp_report : Format.formatter -> report -> unit
