(** NDT (M-Lab network data test) record schema and synthetic dataset
    generation.

    The paper analysed one month of M-Lab NDT data (9,984 flows, June
    2023). That archive is not available offline, so this module
    provides the same record schema plus a labelled statistical
    generator whose population mixture follows the measurement
    literature the paper cites: most flows application-limited or
    receiver-limited, a cellular slice, a small genuinely-contended
    slice, and clean bulk tests. Because the generator attaches ground
    truth, the §3.1 pipeline ({!Mlab_analysis}) can additionally report
    precision/recall — something the real M-Lab data cannot. *)

type access = Fixed | Cellular

val access_equal : access -> access -> bool

type ground_truth =
  | Gt_app_limited
  | Gt_rwnd_limited
  | Gt_cellular_variation  (** rate variation from the link, not contention *)
  | Gt_contended of int  (** competing backlogged flows arriving/leaving *)
  | Gt_clean_bulk  (** uncontended, network-limited *)

type record = {
  id : int;
  access : access;
  duration_s : float;
  interval_s : float;  (** spacing of the throughput trace *)
  throughput_mbps : float array;  (** per-interval goodput trace *)
  mean_throughput_mbps : float;
  min_rtt_s : float;
  app_limited_frac : float;  (** fraction of lifetime app-limited *)
  rwnd_limited_frac : float;
  ground_truth : ground_truth option;  (** [None] for real/simulated data *)
}

type mixture = {
  app_limited : float;
  rwnd_limited : float;
  cellular : float;
  contended : float;
  clean_bulk : float;
}

val default_mixture : mixture
(** Weights chosen to echo the measurement literature (§2.2: Araújo et
    al. found <40% of traffic neither app- nor host- nor
    receiver-limited): 45% app-limited, 15% rwnd-limited, 20% cellular,
    5% contended, 15% clean bulk. *)

val generate : rng:Ccsim_util.Rng.t -> n:int -> ?mixture:mixture -> unit -> record list
(** [n] labelled records with 10 s / 100 ms throughput traces. *)

val of_speedtest :
  id:int -> access:access -> ?skip_s:float -> Ccsim_tcp.Tcp_info.t array -> record option
(** Convert a simulated {!Ccsim_app.Speedtest} snapshot sequence into an
    NDT record ([None] if fewer than two snapshots survive). Ground
    truth is [None]; attach your own from the scenario. [skip_s]
    (default 2 s) drops the initial snapshots so the slow-start ramp is
    not mistaken for a contention-induced level shift. *)

val with_ground_truth : record -> ground_truth -> record
