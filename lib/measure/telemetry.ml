module Sim = Ccsim_engine.Sim
module U = Ccsim_util

module Flow_monitor = struct
  type t = {
    acked : U.Timeseries.t;
    throughput : U.Timeseries.t;
    cwnd : U.Timeseries.t;
    srtt : U.Timeseries.t;
    mutable snapshots : Ccsim_tcp.Tcp_info.t list;
    mutable last_acked : int;
    mutable last_time : float;
  }

  let create sim ~sender ?label ?(interval = 0.1) () =
    if interval <= 0.0 then
      invalid_arg "Telemetry.Flow_monitor.create: interval must be positive";
    (* Per-flow timeline probes, sampled by the engine's timeline driver
       (no-ops without a timeline in scope). Goodput is the acked-byte
       delta between driver ticks. *)
    let labels =
      [
        ( "flow",
          match label with
          | Some l -> l
          | None -> string_of_int (Ccsim_tcp.Sender.flow sender) );
      ]
    in
    let probe_acked = ref (Ccsim_tcp.Sender.bytes_acked sender) in
    let probe_time = ref (Sim.now sim) in
    Sim.add_timeline_probe sim ~labels "flow_goodput_bps" (fun () ->
        let now = Sim.now sim in
        let acked = Ccsim_tcp.Sender.bytes_acked sender in
        let dt = now -. !probe_time in
        let rate =
          if dt > 0.0 then float_of_int (acked - !probe_acked) *. 8.0 /. dt else 0.0
        in
        probe_acked := acked;
        probe_time := now;
        rate);
    Sim.add_timeline_probe sim ~labels "flow_cwnd_bytes" (fun () ->
        (Ccsim_tcp.Sender.cca sender).Ccsim_cca.Cca.cwnd);
    Sim.add_timeline_probe sim ~labels "flow_srtt_s" (fun () ->
        Ccsim_tcp.Sender.srtt sender);
    Sim.add_timeline_probe sim ~labels "flow_inflight_bytes" (fun () ->
        float_of_int (Ccsim_tcp.Sender.inflight sender));
    Sim.add_timeline_probe sim ~labels "flow_min_rtt_s" (fun () ->
        Ccsim_tcp.Sender.min_rtt sender);
    (* Send-limit attribution: cumulative seconds per limit, one series
       per limit label so `ccsim explain` can read the final value of
       each. Sampling calls Sender.info once per limit per tick — cheap,
       and only while a timeline is in scope. *)
    List.iter
      (fun (limit, read) ->
        Sim.add_timeline_probe sim
          ~labels:(("limit", limit) :: labels)
          "flow_limited_s"
          (fun () -> read (Ccsim_tcp.Sender.info sender)))
      [
        ("app", fun (i : Ccsim_tcp.Tcp_info.t) -> i.app_limited_s);
        ("rwnd", fun (i : Ccsim_tcp.Tcp_info.t) -> i.rwnd_limited_s);
        ("cwnd", fun (i : Ccsim_tcp.Tcp_info.t) -> i.cwnd_limited_s);
        ("pacing", fun (i : Ccsim_tcp.Tcp_info.t) -> i.pacing_limited_s);
        ("recovery", fun (i : Ccsim_tcp.Tcp_info.t) -> i.recovery_s);
      ];
    let t =
      {
        acked = U.Timeseries.create ();
        throughput = U.Timeseries.create ();
        cwnd = U.Timeseries.create ();
        srtt = U.Timeseries.create ();
        snapshots = [];
        last_acked = Ccsim_tcp.Sender.bytes_acked sender;
        last_time = Sim.now sim;
      }
    in
    Sim.every sim ~interval (fun () ->
        Sim.set_component sim "telemetry";
        let now = Sim.now sim in
        let info = Ccsim_tcp.Sender.info sender in
        t.snapshots <- info :: t.snapshots;
        U.Timeseries.add t.acked ~time:now ~value:(float_of_int info.bytes_acked);
        U.Timeseries.add t.cwnd ~time:now ~value:info.cwnd_bytes;
        U.Timeseries.add t.srtt ~time:now ~value:info.srtt;
        let dt = now -. t.last_time in
        if dt > 0.0 then
          U.Timeseries.add t.throughput ~time:now
            ~value:(float_of_int (info.bytes_acked - t.last_acked) *. 8.0 /. dt);
        t.last_acked <- info.bytes_acked;
        t.last_time <- now);
    t

  let throughput t = t.throughput
  let acked_bytes t = t.acked
  let cwnd t = t.cwnd
  let srtt t = t.srtt
  let snapshots t = List.rev t.snapshots
end

module Queue_monitor = struct
  type t = { backlog : U.Timeseries.t }

  let create sim ~qdisc ?(interval = 0.01) () =
    if interval <= 0.0 then
      invalid_arg "Telemetry.Queue_monitor.create: interval must be positive";
    let labels = [ ("queue", qdisc.Ccsim_net.Qdisc.name) ] in
    Sim.add_timeline_probe sim ~labels "queue_backlog_bytes" (fun () ->
        float_of_int (qdisc.Ccsim_net.Qdisc.backlog_bytes ()));
    Sim.add_timeline_probe sim ~labels "queue_drops_total" (fun () ->
        float_of_int qdisc.Ccsim_net.Qdisc.stats.dropped);
    let t = { backlog = U.Timeseries.create () } in
    Sim.every sim ~interval (fun () ->
        Sim.set_component sim "telemetry";
        U.Timeseries.add t.backlog ~time:(Sim.now sim)
          ~value:(float_of_int (qdisc.Ccsim_net.Qdisc.backlog_bytes ())));
    t

  let backlog_bytes t = t.backlog

  let mean_backlog_bytes t =
    if U.Timeseries.is_empty t.backlog then 0.0 else U.Timeseries.mean_value t.backlog

  let max_backlog_bytes t =
    if U.Timeseries.is_empty t.backlog then 0.0
    else Array.fold_left Float.max 0.0 (U.Timeseries.values t.backlog)
end

module Link_monitor = struct
  type t = { utilization : U.Timeseries.t }

  let create sim ~link ?(interval = 0.1) () =
    if interval <= 0.0 then
      invalid_arg "Telemetry.Link_monitor.create: interval must be positive";
    let t = { utilization = U.Timeseries.create () } in
    let last = ref (Ccsim_net.Link.bytes_delivered link) in
    Sim.every sim ~interval (fun () ->
        Sim.set_component sim "telemetry";
        let now = Sim.now sim in
        let delivered = Ccsim_net.Link.bytes_delivered link in
        let rate = Ccsim_net.Link.rate_bps link in
        let used = float_of_int (delivered - !last) *. 8.0 /. interval in
        last := delivered;
        U.Timeseries.add t.utilization ~time:now ~value:(Float.min 1.0 (used /. rate)));
    t

  let utilization t = t.utilization
end
