(** Offline analysis of exported timeline series.

    Parses a `--series` NDJSON file back into series and reruns the
    lib/measure detectors over them: the Fig 2 change-point rule
    ({!Changepoint.pelt} + largest level shift vs mean) on NDT
    throughput traces, and the Fig 3 elasticity rule (steady-state p90
    vs threshold) on Nimbus elasticity series. Timeline floats are
    exported with round-trip precision, so the offline verdicts match
    the in-simulation ones exactly. *)

type series = {
  job : string option;
  name : string;
  labels : (string * string) list;
  times : float array;
  values : float array;
}

exception Parse_error of string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Obj of (string * json) list
  | Arr of json list

val json_of_string : string -> json
(** Parse one complete JSON value (the reader behind {!of_string}, also
    handy for validating whole-document exports such as Chrome traces).
    Raises {!Parse_error}. *)

val of_string : string -> series list
(** Parse NDJSON content (one [{"series", "labels", "t", "v"}] object
    per line; blank lines ignored; points with a null ["v"] skipped).
    Series appear in first-occurrence order, points in line order.
    Raises {!Parse_error} (with a line number) on malformed input. *)

val load : string -> series list
(** {!of_string} over a file's contents. *)

val filter : series list -> name:string -> series list

val ndt_series_name : string
(** ["ndt_throughput_mbps"] — recorded by fig2 for candidate flows. *)

val elasticity_series_name : string
(** ["nimbus_elasticity"] — recorded by the Nimbus CCA. *)

type changepoint_row = {
  cp_series : series;
  change_points : int list;
  largest_shift : float;
  mean : float;
  contention_consistent : bool;
}

val changepoint_of : ?shift_threshold:float -> series -> changepoint_row
(** The Fig 2 Candidate rule over one series' values:
    [Changepoint.pelt], largest level shift, and
    [contention_consistent] when the shift is at least
    [shift_threshold] (default 0.2) of the mean. *)

type elasticity_row = {
  el_series : series;
  samples : int;
  mean_elasticity : float;
  p90_elasticity : float;
  classified_elastic : bool;
}

val elasticity_of :
  ?warmup:float -> ?hi:float -> ?threshold:float -> series -> elasticity_row
(** The Fig 3 rule over one series: p90 of samples with
    [warmup <= t <= hi] (inclusive, matching [Timeseries.between]);
    elastic when p90 exceeds [threshold] (default 0.5). *)

val render :
  ?warmup:float -> ?hi:float -> ?threshold:float -> ?shift_threshold:float ->
  series list -> string
(** Human-readable report: an elasticity table for
    {!elasticity_series_name} series, a change-point table for
    {!ndt_series_name} series, and summary statistics for everything
    else. *)
