(** Offline analysis of exported timeline series.

    Parses a `--series` NDJSON file back into series and reruns the
    lib/measure detectors over them: the Fig 2 change-point rule
    ({!Changepoint.pelt} + largest level shift vs mean) on NDT
    throughput traces, and the Fig 3 elasticity rule (steady-state p90
    vs threshold) on Nimbus elasticity series. Timeline floats are
    exported with round-trip precision, so the offline verdicts match
    the in-simulation ones exactly. *)

type series = {
  job : string option;
  name : string;
  labels : (string * string) list;
  times : float array;
  values : float array;
}

exception Parse_error of string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Obj of (string * json) list
  | Arr of json list

val json_of_string : string -> json
(** Parse one complete JSON value (the reader behind {!of_string}, also
    handy for validating whole-document exports such as Chrome traces).
    Raises {!Parse_error}. *)

val of_string : string -> series list
(** Parse NDJSON content (one [{"series", "labels", "t", "v"}] object
    per line; blank lines ignored; points with a null ["v"] skipped).
    Series appear in first-occurrence order, points in line order.
    Raises {!Parse_error} (with a line number) on malformed input. *)

val load : string -> series list
(** {!of_string} over a file's contents. *)

val filter : series list -> name:string -> series list

val ndt_series_name : string
(** ["ndt_throughput_mbps"] — recorded by fig2 for candidate flows. *)

val elasticity_series_name : string
(** ["nimbus_elasticity"] — recorded by the Nimbus CCA. *)

type changepoint_row = {
  cp_series : series;
  change_points : int list;
  largest_shift : float;
  mean : float;
  contention_consistent : bool;
}

val changepoint_of : ?shift_threshold:float -> series -> changepoint_row
(** The Fig 2 Candidate rule over one series' values:
    [Changepoint.pelt], largest level shift, and
    [contention_consistent] when the shift is at least
    [shift_threshold] (default 0.2) of the mean. *)

type elasticity_row = {
  el_series : series;
  samples : int;
  mean_elasticity : float;
  p90_elasticity : float;
  classified_elastic : bool;
}

val elasticity_of :
  ?warmup:float -> ?hi:float -> ?threshold:float -> series -> elasticity_row
(** The Fig 3 rule over one series: p90 of samples with
    [warmup <= t <= hi] (inclusive, matching [Timeseries.between]);
    elastic when p90 exceeds [threshold] (default 0.5). *)

type explain_row = {
  ex_job : string option;
  ex_scenario : string;  (** ["scenario"] label, [""] when absent *)
  ex_flow : string;  (** ["flow"] label *)
  ex_goodput_bps : float;  (** mean of [flow_goodput_bps] over the window *)
  ex_limits : (string * float) list;
      (** cumulative seconds per send limit, in fixed order
          app/rwnd/cwnd/pacing/recovery (0 when a limit series is absent) *)
  ex_dominant : string;  (** limit with the most seconds, ["-"] for non-TCP flows *)
  ex_dominant_s : float;
  ex_queue_delay_share : float;
      (** (mean srtt − min rtt) / mean srtt over the window, in [0, 1] *)
  ex_occupancy_share : float;
      (** flow's share of bottleneck serialization time across the scenario *)
  ex_drop_share : float;  (** flow's share of bottleneck drops *)
  ex_contended_s : float;
      (** connection age minus app/rwnd-limited time: the span with unmet
          demand where the network set the flow's rate *)
  ex_verdict : string option;
      (** the scenario's Nimbus cross-traffic verdict (["elastic"] /
          ["inelastic"]), when a [nimbus_elasticity] series is present *)
}

val explain :
  ?warmup:float -> ?hi:float -> ?threshold:float -> series list -> explain_row list
(** Per-flow contention diagnosis from the attribution series recorded
    by a timeline-enabled run ([flow_limited_s], [flow_bneck_busy_s],
    [flow_bneck_drops], [flow_goodput_bps], [flow_srtt_s],
    [flow_min_rtt_s]). Flows are grouped per (job, scenario); the
    scenario's {!elasticity_series_name} verdict — computed with
    {!elasticity_of} over the same window, so it agrees bit-for-bit
    with the online detector — attaches to every flow row of that
    scenario. Rows appear in series first-occurrence order. *)

val render_explain :
  ?warmup:float -> ?hi:float -> ?threshold:float -> series list -> string
(** Human-readable {!explain} table (the body of [ccsim explain]). *)

val render :
  ?warmup:float -> ?hi:float -> ?threshold:float -> ?shift_threshold:float ->
  series list -> string
(** Human-readable report: an elasticity table for
    {!elasticity_series_name} series, a change-point table for
    {!ndt_series_name} series, and summary statistics for everything
    else. *)
