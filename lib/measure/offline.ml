module U = Ccsim_util

(* Offline analysis over exported timeline files: parse `--series`
   NDJSON back into series and rerun the lib/measure detectors over
   them. Floats are exported with round-trip precision, so the offline
   verdicts reproduce the in-simulation ones bit-for-bit. *)

type series = {
  job : string option;
  name : string;
  labels : (string * string) list;
  times : float array;
  values : float array;
}

(* --- a minimal JSON reader (objects, strings, numbers, the rest) ------- *)

exception Parse_error of string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Obj of (string * json) list
  | Arr of json list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let code = int_of_string ("0x" ^ String.sub s !pos 4) in
               pos := !pos + 4;
               (* UTF-8 encode the basic-plane code point. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let json_of_string = parse_json

(* --- NDJSON ingestion --------------------------------------------------- *)

type builder = {
  b_job : string option;
  b_name : string;
  b_labels : (string * string) list;
  mutable b_times : float list;  (* newest first *)
  mutable b_values : float list;
  mutable b_len : int;
}

let of_string content =
  let table : (string, builder) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let line_no = ref 0 in
  String.split_on_char '\n' content
  |> List.iter (fun line ->
         incr line_no;
         if String.trim line <> "" then begin
           let fields =
             match parse_json line with
             | Obj fields -> fields
             | _ -> raise (Parse_error (Printf.sprintf "line %d: not a JSON object" !line_no))
             | exception Parse_error msg ->
                 raise (Parse_error (Printf.sprintf "line %d: %s" !line_no msg))
           in
           let str_field k =
             match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None
           in
           let num_field k =
             match List.assoc_opt k fields with Some (Num v) -> Some v | _ -> None
           in
           match (str_field "series", num_field "t", num_field "v") with
           | None, _, _ | _, None, _ ->
               raise
                 (Parse_error
                    (Printf.sprintf "line %d: missing \"series\" or \"t\" field" !line_no))
           | Some _, Some _, None -> ()  (* null/non-numeric value: skip the point *)
           | Some name, Some t, Some v ->
               let job = str_field "job" in
               let labels =
                 match List.assoc_opt "labels" fields with
                 | Some (Obj pairs) ->
                     List.filter_map
                       (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None)
                       pairs
                 | _ -> []
               in
               let key =
                 String.concat "\x00"
                   ((match job with Some j -> j | None -> "")
                   :: name
                   :: List.concat_map (fun (k, v) -> [ k; v ]) labels)
               in
               let b =
                 match Hashtbl.find_opt table key with
                 | Some b -> b
                 | None ->
                     let b =
                       {
                         b_job = job;
                         b_name = name;
                         b_labels = labels;
                         b_times = [];
                         b_values = [];
                         b_len = 0;
                       }
                     in
                     Hashtbl.add table key b;
                     order := b :: !order;
                     b
               in
               b.b_times <- t :: b.b_times;
               b.b_values <- v :: b.b_values;
               b.b_len <- b.b_len + 1
         end);
  List.rev_map
    (fun b ->
      let times = Array.make b.b_len 0.0 and values = Array.make b.b_len 0.0 in
      List.iteri (fun i t -> times.(b.b_len - 1 - i) <- t) b.b_times;
      List.iteri (fun i v -> values.(b.b_len - 1 - i) <- v) b.b_values;
      { job = b.b_job; name = b.b_name; labels = b.b_labels; times; values })
    !order

let load path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content

let filter t ~name = List.filter (fun s -> s.name = name) t

let flow_id s =
  match
    ( List.assoc_opt "flow" s.labels,
      List.assoc_opt "scenario" s.labels,
      List.assoc_opt "sim" s.labels )
  with
  | Some f, _, _ -> f
  | None, Some sc, _ -> sc
  | None, None, Some sim -> "sim " ^ sim
  | None, None, None -> s.name

(* --- change-point analysis (fig2's detector, offline) ------------------- *)

type changepoint_row = {
  cp_series : series;
  change_points : int list;
  largest_shift : float;
  mean : float;
  contention_consistent : bool;
}

(* Mirrors [Mlab_analysis.analyze_record]'s Candidate branch exactly:
   PELT over the per-interval throughput, contention-consistent when the
   largest level shift is at least [shift_threshold] of the mean. *)
let changepoint_of ?(shift_threshold = 0.2) s =
  let changes = Changepoint.pelt s.values in
  let shift = Changepoint.largest_shift s.values changes in
  let mean = if Array.length s.values = 0 then 0.0 else U.Stats.mean s.values in
  {
    cp_series = s;
    change_points = changes;
    largest_shift = shift;
    mean;
    contention_consistent = changes <> [] && shift /. Float.max 1e-9 mean >= shift_threshold;
  }

(* --- elasticity classification (fig3's rule, offline) ------------------- *)

type elasticity_row = {
  el_series : series;
  samples : int;
  mean_elasticity : float;
  p90_elasticity : float;
  classified_elastic : bool;
}

(* Mirrors fig3: p90 of the steady-state elasticity samples (inclusive
   [warmup, hi] window, matching [Timeseries.between]) against the
   elastic threshold. *)
let elasticity_of ?(warmup = 0.0) ?(hi = infinity) ?(threshold = 0.5) s =
  let values =
    Array.to_list (Array.mapi (fun i t -> (t, s.values.(i))) s.times)
    |> List.filter (fun (t, _) -> t >= warmup && t <= hi)
    |> List.map snd |> Array.of_list
  in
  let samples = Array.length values in
  let mean_e = if samples = 0 then 0.0 else U.Stats.mean values in
  let p90 = if samples = 0 then 0.0 else U.Stats.percentile values 90.0 in
  {
    el_series = s;
    samples;
    mean_elasticity = mean_e;
    p90_elasticity = p90;
    classified_elastic = p90 > threshold;
  }

(* --- report ------------------------------------------------------------- *)

let ndt_series_name = "ndt_throughput_mbps"
let elasticity_series_name = "nimbus_elasticity"

let render ?(warmup = 0.0) ?(hi = infinity) ?(threshold = 0.5) ?shift_threshold t =
  let buf = Buffer.create 1024 in
  let points = List.fold_left (fun acc s -> acc + Array.length s.times) 0 t in
  Printf.bprintf buf "offline analysis: %d series, %d points\n" (List.length t) points;
  (match filter t ~name:elasticity_series_name with
  | [] -> ()
  | rows ->
      Buffer.add_string buf "\nelasticity (nimbus_elasticity series, fig3 rule):\n";
      let table =
        U.Table.create
          ~columns:
            [
              ("series", U.Table.Left);
              ("samples", U.Table.Right);
              ("mean", U.Table.Right);
              ("p90", U.Table.Right);
              ("classified", U.Table.Left);
            ]
      in
      List.iter
        (fun s ->
          let r = elasticity_of ~warmup ~hi ~threshold s in
          U.Table.add_row table
            [
              flow_id s;
              string_of_int r.samples;
              U.Table.cell_f r.mean_elasticity;
              U.Table.cell_f r.p90_elasticity;
              (if r.classified_elastic then "elastic" else "inelastic");
            ])
        rows;
      Buffer.add_string buf (U.Table.render table));
  (match filter t ~name:ndt_series_name with
  | [] -> ()
  | rows ->
      let verdicts = List.map (changepoint_of ?shift_threshold) rows in
      let consistent =
        List.length (List.filter (fun v -> v.contention_consistent) verdicts)
      in
      Printf.bprintf buf
        "\nchange points (%s series, fig2 rule): %d candidate flows, %d contention-consistent\n"
        ndt_series_name (List.length verdicts) consistent;
      let table =
        U.Table.create
          ~columns:
            [
              ("flow", U.Table.Left);
              ("points", U.Table.Right);
              ("changes", U.Table.Right);
              ("shift/mean", U.Table.Right);
              ("verdict", U.Table.Left);
            ]
      in
      List.iter
        (fun v ->
          U.Table.add_row table
            [
              flow_id v.cp_series;
              string_of_int (Array.length v.cp_series.values);
              string_of_int (List.length v.change_points);
              U.Table.cell_f (v.largest_shift /. Float.max 1e-9 v.mean);
              (if v.contention_consistent then "contention-consistent" else "stable");
            ])
        verdicts;
      Buffer.add_string buf (U.Table.render table));
  let other =
    List.filter (fun s -> s.name <> ndt_series_name && s.name <> elasticity_series_name) t
  in
  (match other with
  | [] -> ()
  | rows ->
      Printf.bprintf buf "\nother series:\n";
      let table =
        U.Table.create
          ~columns:
            [
              ("series", U.Table.Left);
              ("points", U.Table.Right);
              ("mean", U.Table.Right);
              ("min", U.Table.Right);
              ("max", U.Table.Right);
            ]
      in
      List.iter
        (fun s ->
          let n = Array.length s.values in
          let mean = if n = 0 then 0.0 else U.Stats.mean s.values in
          let mn = Array.fold_left Float.min infinity s.values in
          let mx = Array.fold_left Float.max neg_infinity s.values in
          let label_cell =
            String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) s.labels)
          in
          let id = if label_cell = "" then s.name else s.name ^ "{" ^ label_cell ^ "}" in
          U.Table.add_row table
            [
              id;
              string_of_int n;
              U.Table.cell_f mean;
              U.Table.cell_f (if n = 0 then 0.0 else mn);
              U.Table.cell_f (if n = 0 then 0.0 else mx);
            ])
        rows;
      Buffer.add_string buf (U.Table.render table));
  Buffer.contents buf
