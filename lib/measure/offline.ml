module U = Ccsim_util

(* Offline analysis over exported timeline files: parse `--series`
   NDJSON back into series and rerun the lib/measure detectors over
   them. Floats are exported with round-trip precision, so the offline
   verdicts reproduce the in-simulation ones bit-for-bit. *)

type series = {
  job : string option;
  name : string;
  labels : (string * string) list;
  times : float array;
  values : float array;
}

(* --- a minimal JSON reader (objects, strings, numbers, the rest) ------- *)

exception Parse_error of string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Obj of (string * json) list
  | Arr of json list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.equal (String.sub s !pos l) lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let code = int_of_string ("0x" ^ String.sub s !pos 4) in
               pos := !pos + 4;
               (* UTF-8 encode the basic-plane code point. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if (match peek () with Some '}' -> true | _ -> false) then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let json_of_string = parse_json

(* --- NDJSON ingestion --------------------------------------------------- *)

type builder = {
  b_job : string option;
  b_name : string;
  b_labels : (string * string) list;
  mutable b_times : float list;  (* newest first *)
  mutable b_values : float list;
  mutable b_len : int;
}

let of_string content =
  let table : (string, builder) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let line_no = ref 0 in
  String.split_on_char '\n' content
  |> List.iter (fun line ->
         incr line_no;
         if not (String.equal (String.trim line) "") then begin
           let fields =
             match parse_json line with
             | Obj fields -> fields
             | _ -> raise (Parse_error (Printf.sprintf "line %d: not a JSON object" !line_no))
             | exception Parse_error msg ->
                 raise (Parse_error (Printf.sprintf "line %d: %s" !line_no msg))
           in
           let str_field k =
             match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None
           in
           let num_field k =
             match List.assoc_opt k fields with Some (Num v) -> Some v | _ -> None
           in
           match (str_field "series", num_field "t", num_field "v") with
           | None, _, _ | _, None, _ ->
               raise
                 (Parse_error
                    (Printf.sprintf "line %d: missing \"series\" or \"t\" field" !line_no))
           | Some _, Some _, None -> ()  (* null/non-numeric value: skip the point *)
           | Some name, Some t, Some v ->
               let job = str_field "job" in
               let labels =
                 match List.assoc_opt "labels" fields with
                 | Some (Obj pairs) ->
                     List.filter_map
                       (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None)
                       pairs
                 | _ -> []
               in
               let key =
                 String.concat "\x00"
                   ((match job with Some j -> j | None -> "")
                   :: name
                   :: List.concat_map (fun (k, v) -> [ k; v ]) labels)
               in
               let b =
                 match Hashtbl.find_opt table key with
                 | Some b -> b
                 | None ->
                     let b =
                       {
                         b_job = job;
                         b_name = name;
                         b_labels = labels;
                         b_times = [];
                         b_values = [];
                         b_len = 0;
                       }
                     in
                     Hashtbl.add table key b;
                     order := b :: !order;
                     b
               in
               b.b_times <- t :: b.b_times;
               b.b_values <- v :: b.b_values;
               b.b_len <- b.b_len + 1
         end);
  List.rev_map
    (fun b ->
      let times = Array.make b.b_len 0.0 and values = Array.make b.b_len 0.0 in
      List.iteri (fun i t -> times.(b.b_len - 1 - i) <- t) b.b_times;
      List.iteri (fun i v -> values.(b.b_len - 1 - i) <- v) b.b_values;
      { job = b.b_job; name = b.b_name; labels = b.b_labels; times; values })
    !order

let load path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content

let filter t ~name = List.filter (fun s -> String.equal s.name name) t

let flow_id s =
  match
    ( List.assoc_opt "flow" s.labels,
      List.assoc_opt "scenario" s.labels,
      List.assoc_opt "sim" s.labels )
  with
  | Some f, _, _ -> f
  | None, Some sc, _ -> sc
  | None, None, Some sim -> "sim " ^ sim
  | None, None, None -> s.name

(* --- change-point analysis (fig2's detector, offline) ------------------- *)

type changepoint_row = {
  cp_series : series;
  change_points : int list;
  largest_shift : float;
  mean : float;
  contention_consistent : bool;
}

(* Mirrors [Mlab_analysis.analyze_record]'s Candidate branch exactly:
   PELT over the per-interval throughput, contention-consistent when the
   largest level shift is at least [shift_threshold] of the mean. *)
let changepoint_of ?(shift_threshold = 0.2) s =
  let changes = Changepoint.pelt s.values in
  let shift = Changepoint.largest_shift s.values changes in
  let mean = if Array.length s.values = 0 then 0.0 else U.Stats.mean s.values in
  {
    cp_series = s;
    change_points = changes;
    largest_shift = shift;
    mean;
    contention_consistent = (match changes with [] -> false | _ :: _ -> true) && shift /. Float.max 1e-9 mean >= shift_threshold;
  }

(* --- elasticity classification (fig3's rule, offline) ------------------- *)

type elasticity_row = {
  el_series : series;
  samples : int;
  mean_elasticity : float;
  p90_elasticity : float;
  classified_elastic : bool;
}

(* Mirrors fig3: p90 of the steady-state elasticity samples (inclusive
   [warmup, hi] window, matching [Timeseries.between]) against the
   elastic threshold. *)
let elasticity_of ?(warmup = 0.0) ?(hi = infinity) ?(threshold = 0.5) s =
  let values =
    Array.to_list (Array.mapi (fun i t -> (t, s.values.(i))) s.times)
    |> List.filter (fun (t, _) -> t >= warmup && t <= hi)
    |> List.map snd |> Array.of_list
  in
  let samples = Array.length values in
  let mean_e = if samples = 0 then 0.0 else U.Stats.mean values in
  let p90 = if samples = 0 then 0.0 else U.Stats.percentile values 90.0 in
  {
    el_series = s;
    samples;
    mean_elasticity = mean_e;
    p90_elasticity = p90;
    classified_elastic = p90 > threshold;
  }

(* --- report ------------------------------------------------------------- *)

let ndt_series_name = "ndt_throughput_mbps"
let elasticity_series_name = "nimbus_elasticity"

(* --- flow-level contention diagnosis (`ccsim explain`) ------------------ *)

type explain_row = {
  ex_job : string option;
  ex_scenario : string;
  ex_flow : string;
  ex_goodput_bps : float;
  ex_limits : (string * float) list;
  ex_dominant : string;
  ex_dominant_s : float;
  ex_queue_delay_share : float;
  ex_occupancy_share : float;
  ex_drop_share : float;
  ex_contended_s : float;
  ex_verdict : string option;
}

let limit_order = [ "app"; "rwnd"; "cwnd"; "pacing"; "recovery" ]

(* Last sample at or before [hi]; attribution series are cumulative, so
   this is "the counter's value at the end of the analysis window". *)
let last_value_in ~hi s =
  let v = ref None in
  Array.iteri (fun i t -> if t <= hi then v := Some s.values.(i)) s.times;
  !v

let mean_in ~lo ~hi s =
  let sum = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun i t ->
      if t >= lo && t <= hi then begin
        sum := !sum +. s.values.(i);
        incr n
      end)
    s.times;
  if !n = 0 then None else Some (!sum /. float_of_int !n)

type flow_acc = {
  fa_flow : string;
  mutable fa_goodput : series option;
  mutable fa_srtt : series option;
  mutable fa_min_rtt : series option;
  mutable fa_limits : (string * series) list;  (* newest first *)
  mutable fa_busy : series option;
  mutable fa_drops : series option;
}

type group_acc = {
  ga_job : string option;
  ga_scenario : string;
  mutable ga_flows : flow_acc list;  (* newest first *)
  mutable ga_elasticity : series option;
}

let explain ?(warmup = 0.0) ?(hi = infinity) ?(threshold = 0.5) t =
  (* Group attribution series per (job, scenario), then per flow label.
     The scenario's Nimbus elasticity verdict describes the cross
     traffic the probe contends with, so it attaches to every flow row
     of that scenario. *)
  let groups : (string, group_acc) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let group_of job scenario =
    let key = (match job with Some j -> j | None -> "") ^ "\x00" ^ scenario in
    match Hashtbl.find_opt groups key with
    | Some g -> g
    | None ->
        let g =
          { ga_job = job; ga_scenario = scenario; ga_flows = []; ga_elasticity = None }
        in
        Hashtbl.add groups key g;
        order := g :: !order;
        g
  in
  let flow_of g name =
    match List.find_opt (fun f -> String.equal f.fa_flow name) g.ga_flows with
    | Some f -> f
    | None ->
        let f =
          {
            fa_flow = name;
            fa_goodput = None;
            fa_srtt = None;
            fa_min_rtt = None;
            fa_limits = [];
            fa_busy = None;
            fa_drops = None;
          }
        in
        g.ga_flows <- f :: g.ga_flows;
        f
  in
  List.iter
    (fun s ->
      let scenario =
        match List.assoc_opt "scenario" s.labels with Some sc -> sc | None -> ""
      in
      if String.equal s.name elasticity_series_name then begin
        let g = group_of s.job scenario in
        match g.ga_elasticity with
        | Some _ -> ()
        | None -> g.ga_elasticity <- Some s
      end
      else
        match List.assoc_opt "flow" s.labels with
        | None -> ()
        | Some flow -> (
            let f () = flow_of (group_of s.job scenario) flow in
            match s.name with
            | "flow_goodput_bps" -> (f ()).fa_goodput <- Some s
            | "flow_srtt_s" -> (f ()).fa_srtt <- Some s
            | "flow_min_rtt_s" -> (f ()).fa_min_rtt <- Some s
            | "flow_bneck_busy_s" -> (f ()).fa_busy <- Some s
            | "flow_bneck_drops" -> (f ()).fa_drops <- Some s
            | "flow_limited_s" -> (
                match List.assoc_opt "limit" s.labels with
                | Some limit ->
                    let f = f () in
                    f.fa_limits <- (limit, s) :: f.fa_limits
                | None -> ())
            | _ -> ()))
    t;
  let final s = match last_value_in ~hi s with Some v -> v | None -> 0.0 in
  let final_opt o = match o with Some s -> final s | None -> 0.0 in
  List.rev !order
  |> List.concat_map (fun g ->
         let verdict =
           match g.ga_elasticity with
           | None -> None
           | Some s ->
               let r = elasticity_of ~warmup ~hi ~threshold s in
               Some (if r.classified_elastic then "elastic" else "inelastic")
         in
         let flows = List.rev g.ga_flows in
         let busy_total = List.fold_left (fun acc f -> acc +. final_opt f.fa_busy) 0.0 flows in
         let drops_total =
           List.fold_left (fun acc f -> acc +. final_opt f.fa_drops) 0.0 flows
         in
         List.map
           (fun f ->
             let limits =
               List.map
                 (fun limit ->
                   ( limit,
                     match List.assoc_opt limit f.fa_limits with
                     | Some s -> final s
                     | None -> 0.0 ))
                 limit_order
             in
             let has_limits = match f.fa_limits with [] -> false | _ -> true in
             let dominant, dominant_s =
               if not has_limits then ("-", 0.0)
               else
                 List.fold_left
                   (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
                   ("-", neg_infinity) limits
             in
             (* Contended time: connection age minus the self-inflicted
                limits (app/rwnd) — the span during which the flow had
                unmet demand and the network set its rate. *)
             let elapsed =
               List.fold_left
                 (fun acc (_, s) ->
                   Array.fold_left
                     (fun a tm -> if tm <= hi then Float.max a tm else a)
                     acc s.times)
                 0.0 f.fa_limits
             in
             let contended =
               if has_limits then
                 Float.max 0.0
                   (elapsed -. List.assoc "app" limits -. List.assoc "rwnd" limits)
               else 0.0
             in
             let goodput =
               match f.fa_goodput with
               | Some s -> (
                   match mean_in ~lo:warmup ~hi s with Some m -> m | None -> 0.0)
               | None -> 0.0
             in
             let qdelay =
               match (f.fa_srtt, f.fa_min_rtt) with
               | Some srtt_s, Some min_s -> (
                   match (mean_in ~lo:warmup ~hi srtt_s, last_value_in ~hi min_s) with
                   | Some srtt, Some base when srtt > 0.0 ->
                       Float.max 0.0 (Float.min 1.0 ((srtt -. base) /. srtt))
                   | _ -> 0.0)
               | _ -> 0.0
             in
             let share v total = if total > 0.0 then v /. total else 0.0 in
             {
               ex_job = g.ga_job;
               ex_scenario = g.ga_scenario;
               ex_flow = f.fa_flow;
               ex_goodput_bps = goodput;
               ex_limits = limits;
               ex_dominant = dominant;
               ex_dominant_s = (if has_limits then dominant_s else 0.0);
               ex_queue_delay_share = qdelay;
               ex_occupancy_share = share (final_opt f.fa_busy) busy_total;
               ex_drop_share = share (final_opt f.fa_drops) drops_total;
               ex_contended_s = contended;
               ex_verdict = verdict;
             })
           flows)

let render_explain ?warmup ?hi ?threshold t =
  let rows = explain ?warmup ?hi ?threshold t in
  let buf = Buffer.create 1024 in
  (match rows with
  | [] ->
      Buffer.add_string buf
        "no per-flow attribution series found (export with --series from a run \
         recording a timeline)\n"
  | rows ->
      Printf.bprintf buf "flow-level contention diagnosis (%d flows):\n"
        (List.length rows);
      let table =
        U.Table.create
          ~columns:
            [
              ("scenario", U.Table.Left);
              ("flow", U.Table.Left);
              ("goodput Mbit/s", U.Table.Right);
              ("dominant limit", U.Table.Left);
              ("limited s", U.Table.Right);
              ("qdelay share", U.Table.Right);
              ("bneck share", U.Table.Right);
              ("drop share", U.Table.Right);
              ("contended s", U.Table.Right);
              ("cross-traffic", U.Table.Left);
            ]
      in
      List.iter
        (fun r ->
          let scenario =
            if not (String.equal r.ex_scenario "") then r.ex_scenario
            else match r.ex_job with Some j -> j | None -> "-"
          in
          U.Table.add_row table
            [
              scenario;
              r.ex_flow;
              U.Table.cell_f (r.ex_goodput_bps /. 1e6);
              r.ex_dominant;
              U.Table.cell_f r.ex_dominant_s;
              U.Table.cell_pct r.ex_queue_delay_share;
              U.Table.cell_pct r.ex_occupancy_share;
              U.Table.cell_pct r.ex_drop_share;
              U.Table.cell_f r.ex_contended_s;
              (match r.ex_verdict with Some v -> v | None -> "-");
            ])
        rows;
      Buffer.add_string buf (U.Table.render table));
  Buffer.contents buf

let render ?(warmup = 0.0) ?(hi = infinity) ?(threshold = 0.5) ?shift_threshold t =
  let buf = Buffer.create 1024 in
  let points = List.fold_left (fun acc s -> acc + Array.length s.times) 0 t in
  Printf.bprintf buf "offline analysis: %d series, %d points\n" (List.length t) points;
  (match filter t ~name:elasticity_series_name with
  | [] -> ()
  | rows ->
      Buffer.add_string buf "\nelasticity (nimbus_elasticity series, fig3 rule):\n";
      let table =
        U.Table.create
          ~columns:
            [
              ("series", U.Table.Left);
              ("samples", U.Table.Right);
              ("mean", U.Table.Right);
              ("p90", U.Table.Right);
              ("classified", U.Table.Left);
            ]
      in
      List.iter
        (fun s ->
          let r = elasticity_of ~warmup ~hi ~threshold s in
          U.Table.add_row table
            [
              flow_id s;
              string_of_int r.samples;
              U.Table.cell_f r.mean_elasticity;
              U.Table.cell_f r.p90_elasticity;
              (if r.classified_elastic then "elastic" else "inelastic");
            ])
        rows;
      Buffer.add_string buf (U.Table.render table));
  (match filter t ~name:ndt_series_name with
  | [] -> ()
  | rows ->
      let verdicts = List.map (changepoint_of ?shift_threshold) rows in
      let consistent =
        List.length (List.filter (fun v -> v.contention_consistent) verdicts)
      in
      Printf.bprintf buf
        "\nchange points (%s series, fig2 rule): %d candidate flows, %d contention-consistent\n"
        ndt_series_name (List.length verdicts) consistent;
      let table =
        U.Table.create
          ~columns:
            [
              ("flow", U.Table.Left);
              ("points", U.Table.Right);
              ("changes", U.Table.Right);
              ("shift/mean", U.Table.Right);
              ("verdict", U.Table.Left);
            ]
      in
      List.iter
        (fun v ->
          U.Table.add_row table
            [
              flow_id v.cp_series;
              string_of_int (Array.length v.cp_series.values);
              string_of_int (List.length v.change_points);
              U.Table.cell_f (v.largest_shift /. Float.max 1e-9 v.mean);
              (if v.contention_consistent then "contention-consistent" else "stable");
            ])
        verdicts;
      Buffer.add_string buf (U.Table.render table));
  let other =
    List.filter (fun s -> not (String.equal s.name ndt_series_name) && not (String.equal s.name elasticity_series_name)) t
  in
  (match other with
  | [] -> ()
  | rows ->
      Printf.bprintf buf "\nother series:\n";
      let table =
        U.Table.create
          ~columns:
            [
              ("series", U.Table.Left);
              ("points", U.Table.Right);
              ("mean", U.Table.Right);
              ("min", U.Table.Right);
              ("max", U.Table.Right);
            ]
      in
      List.iter
        (fun s ->
          let n = Array.length s.values in
          let mean = if n = 0 then 0.0 else U.Stats.mean s.values in
          let mn = Array.fold_left Float.min infinity s.values in
          let mx = Array.fold_left Float.max neg_infinity s.values in
          let label_cell =
            String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) s.labels)
          in
          let id = if String.equal label_cell "" then s.name else s.name ^ "{" ^ label_cell ^ "}" in
          U.Table.add_row table
            [
              id;
              string_of_int n;
              U.Table.cell_f mean;
              U.Table.cell_f (if n = 0 then 0.0 else mn);
              U.Table.cell_f (if n = 0 then 0.0 else mx);
            ])
        rows;
      Buffer.add_string buf (U.Table.render table));
  Buffer.contents buf
