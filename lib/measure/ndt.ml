module U = Ccsim_util

type access = Fixed | Cellular

let access_equal a b =
  match (a, b) with Fixed, Fixed | Cellular, Cellular -> true | _ -> false

type ground_truth =
  | Gt_app_limited
  | Gt_rwnd_limited
  | Gt_cellular_variation
  | Gt_contended of int
  | Gt_clean_bulk

type record = {
  id : int;
  access : access;
  duration_s : float;
  interval_s : float;
  throughput_mbps : float array;
  mean_throughput_mbps : float;
  min_rtt_s : float;
  app_limited_frac : float;
  rwnd_limited_frac : float;
  ground_truth : ground_truth option;
}

type mixture = {
  app_limited : float;
  rwnd_limited : float;
  cellular : float;
  contended : float;
  clean_bulk : float;
}

let default_mixture =
  { app_limited = 0.45; rwnd_limited = 0.15; cellular = 0.20; contended = 0.05; clean_bulk = 0.15 }

let duration = 10.0
let interval = 0.1
let trace_len = int_of_float (duration /. interval)

let noisy rng base frac =
  Float.max 0.05 (base *. (1.0 +. U.Rng.normal rng ~mean:0.0 ~stddev:frac))

(* Per-interval goodput noise around a level: lognormal-ish multiplicative. *)
let trace_of_levels rng levels =
  Array.map (fun level -> noisy rng level 0.08) levels

let make rng id access gt trace app_frac rwnd_frac =
  let mean = U.Stats.mean trace in
  {
    id;
    access;
    duration_s = duration;
    interval_s = interval;
    throughput_mbps = trace;
    mean_throughput_mbps = mean;
    min_rtt_s = U.Rng.uniform rng ~lo:0.005 ~hi:0.15;
    app_limited_frac = app_frac;
    rwnd_limited_frac = rwnd_frac;
    ground_truth = Some gt;
  }

let gen_app_limited rng id =
  (* Demand below capacity: flat at the application's offered rate. *)
  let demand = U.Rng.uniform rng ~lo:0.5 ~hi:25.0 in
  let levels = Array.make trace_len demand in
  make rng id Fixed Gt_app_limited (trace_of_levels rng levels)
    (U.Rng.uniform rng ~lo:0.2 ~hi:0.95)
    (U.Rng.uniform rng ~lo:0.0 ~hi:0.05)

let gen_rwnd_limited rng id =
  (* Throughput pinned at rwnd / RTT. *)
  let cap = U.Rng.uniform rng ~lo:1.0 ~hi:40.0 in
  let levels = Array.make trace_len cap in
  make rng id Fixed Gt_rwnd_limited (trace_of_levels rng levels) 0.0
    (U.Rng.uniform rng ~lo:0.3 ~hi:0.95)

let gen_cellular rng id =
  (* Smooth capacity wander (AR(1) around a mean), no discrete shifts. *)
  let mean_rate = U.Rng.uniform rng ~lo:2.0 ~hi:60.0 in
  let levels = Array.make trace_len mean_rate in
  let x = ref mean_rate in
  for i = 0 to trace_len - 1 do
    x := mean_rate +. (0.9 *. (!x -. mean_rate)) +. U.Rng.normal rng ~mean:0.0 ~stddev:(0.05 *. mean_rate);
    levels.(i) <- Float.max 0.2 !x
  done;
  make rng id Cellular Gt_cellular_variation (trace_of_levels rng levels) 0.0 0.0

let gen_contended rng id =
  (* Competing backlogged flows join/leave: capacity / k level shifts. *)
  let capacity = U.Rng.uniform rng ~lo:10.0 ~hi:100.0 in
  let n_events = 1 + U.Rng.int rng 3 in
  let levels = Array.make trace_len 0.0 in
  let competitors = ref (U.Rng.int rng 2) in
  let change_at =
    Array.init n_events (fun _ -> 5 + U.Rng.int rng (trace_len - 10)) |> Array.to_list
    |> List.sort_uniq compare
  in
  let remaining = ref change_at in
  let max_seen = ref 1 in
  for i = 0 to trace_len - 1 do
    (match !remaining with
    | c :: rest when i >= c ->
        remaining := rest;
        (* A competitor arrives or (if any) departs. *)
        if !competitors > 0 && U.Rng.bool rng then decr competitors else incr competitors;
        if !competitors + 1 > !max_seen then max_seen := !competitors + 1
    | _ :: _ | [] -> ());
    levels.(i) <- capacity /. float_of_int (!competitors + 1)
  done;
  make rng id Fixed (Gt_contended !max_seen) (trace_of_levels rng levels) 0.0 0.0

let gen_clean_bulk rng id =
  let capacity = U.Rng.uniform rng ~lo:5.0 ~hi:200.0 in
  let levels = Array.make trace_len capacity in
  make rng id Fixed Gt_clean_bulk (trace_of_levels rng levels) 0.0 0.0

let generate ~rng ~n ?(mixture = default_mixture) () =
  let total =
    mixture.app_limited +. mixture.rwnd_limited +. mixture.cellular +. mixture.contended
    +. mixture.clean_bulk
  in
  if total <= 0.0 then invalid_arg "Ndt.generate: mixture weights must sum to a positive value";
  List.init n (fun id ->
      let u = U.Rng.float rng total in
      if u < mixture.app_limited then gen_app_limited rng id
      else if u < mixture.app_limited +. mixture.rwnd_limited then gen_rwnd_limited rng id
      else if u < mixture.app_limited +. mixture.rwnd_limited +. mixture.cellular then
        gen_cellular rng id
      else if
        u < mixture.app_limited +. mixture.rwnd_limited +. mixture.cellular +. mixture.contended
      then gen_contended rng id
      else gen_clean_bulk rng id)

let of_speedtest ~id ~access ?(skip_s = 2.0) snapshots =
  let snapshots =
    match Array.length snapshots with
    | 0 -> snapshots
    | _ ->
        let t0 = snapshots.(0).Ccsim_tcp.Tcp_info.at in
        let kept =
          Array.to_list snapshots
          |> List.filter (fun (s : Ccsim_tcp.Tcp_info.t) -> s.at -. t0 >= skip_s)
        in
        Array.of_list kept
  in
  let n = Array.length snapshots in
  if n < 2 then None
  else begin
    let first = snapshots.(0) and last = snapshots.(n - 1) in
    let duration_s = last.Ccsim_tcp.Tcp_info.at -. first.Ccsim_tcp.Tcp_info.at in
    let interval_s = duration_s /. float_of_int (n - 1) in
    let throughput =
      Array.init (n - 1) (fun i ->
          Ccsim_tcp.Tcp_info.throughput_bps ~prev:snapshots.(i) ~cur:snapshots.(i + 1) /. 1e6)
    in
    let elapsed = Float.max 1e-9 last.elapsed_s in
    Some
      {
        id;
        access;
        duration_s;
        interval_s;
        throughput_mbps = throughput;
        mean_throughput_mbps = U.Stats.mean throughput;
        min_rtt_s = (if Float.is_finite last.min_rtt then last.min_rtt else 0.0);
        app_limited_frac = last.app_limited_s /. elapsed;
        rwnd_limited_frac = last.rwnd_limited_s /. elapsed;
        ground_truth = None;
      }
  end

let with_ground_truth record gt = { record with ground_truth = Some gt }
