module U = Ccsim_util

type category = App_limited | Rwnd_limited | Cellular | Candidate

let category_equal a b =
  match (a, b) with
  | App_limited, App_limited | Rwnd_limited, Rwnd_limited -> true
  | Cellular, Cellular | Candidate, Candidate -> true
  | _ -> false

type verdict = {
  record : Ndt.record;
  category : category;
  change_points : int list;
  largest_shift_mbps : float;
  contention_consistent : bool;
}

type report = {
  total : int;
  n_app_limited : int;
  n_rwnd_limited : int;
  n_cellular : int;
  n_candidates : int;
  n_contention_consistent : int;
  candidate_fraction : float;
  consistent_fraction_of_total : float;
  change_count_cdf : U.Cdf.t option;
  shift_cdf : U.Cdf.t option;
  verdicts : verdict list;
}

let categorize ?(limited_threshold = 0.0) (r : Ndt.record) =
  if r.app_limited_frac > limited_threshold then App_limited
  else if r.rwnd_limited_frac > limited_threshold then Rwnd_limited
  else if Ndt.access_equal r.access Ndt.Cellular then Cellular
  else Candidate

let analyze_record ?(shift_threshold = 0.2) ?limited_threshold ?penalty_scale (r : Ndt.record)
    =
  let category = categorize ?limited_threshold r in
  match category with
  | App_limited | Rwnd_limited | Cellular ->
      {
        record = r;
        category;
        change_points = [];
        largest_shift_mbps = 0.0;
        contention_consistent = false;
      }
  | Candidate ->
      let penalty =
        Option.map
          (fun scale -> scale *. Changepoint.default_penalty r.throughput_mbps)
          penalty_scale
      in
      let changes = Changepoint.pelt ?penalty r.throughput_mbps in
      let shift = Changepoint.largest_shift r.throughput_mbps changes in
      let mean = Float.max 1e-9 r.mean_throughput_mbps in
      {
        record = r;
        category;
        change_points = changes;
        largest_shift_mbps = shift;
        contention_consistent = (match changes with [] -> false | _ :: _ -> true) && shift /. mean >= shift_threshold;
      }

let analyze ?shift_threshold ?limited_threshold ?penalty_scale records =
  let verdicts =
    List.map (analyze_record ?shift_threshold ?limited_threshold ?penalty_scale) records
  in
  let count p = List.length (List.filter p verdicts) in
  let total = List.length verdicts in
  let n_candidates = count (fun v -> category_equal v.category Candidate) in
  let n_consistent = count (fun v -> v.contention_consistent) in
  let candidates = List.filter (fun v -> category_equal v.category Candidate) verdicts in
  let cdf_of f =
    match candidates with
    | [] -> None
    | _ -> Some (U.Cdf.of_samples (Array.of_list (List.map f candidates)))
  in
  {
    total;
    n_app_limited = count (fun v -> category_equal v.category App_limited);
    n_rwnd_limited = count (fun v -> category_equal v.category Rwnd_limited);
    n_cellular = count (fun v -> category_equal v.category Cellular);
    n_candidates;
    n_contention_consistent = n_consistent;
    candidate_fraction = (if total = 0 then 0.0 else float_of_int n_candidates /. float_of_int total);
    consistent_fraction_of_total =
      (if total = 0 then 0.0 else float_of_int n_consistent /. float_of_int total);
    change_count_cdf = cdf_of (fun v -> float_of_int (List.length v.change_points));
    shift_cdf =
      cdf_of (fun v -> v.largest_shift_mbps /. Float.max 1e-9 v.record.mean_throughput_mbps);
    verdicts;
  }

type accuracy = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  true_negatives : int;
  precision : float;
  recall : float;
}

let score_against_ground_truth report =
  let labelled =
    List.filter_map
      (fun v ->
        match v.record.Ndt.ground_truth with
        | Some gt -> Some (v, gt)
        | None -> None)
      report.verdicts
  in
  match labelled with
  | [] -> None
  | _ ->
      let is_positive = function Ndt.Gt_contended _ -> true | _ -> false in
      let tally (tp, fp, fn, tn) (v, gt) =
        match (v.contention_consistent, is_positive gt) with
        | true, true -> (tp + 1, fp, fn, tn)
        | true, false -> (tp, fp + 1, fn, tn)
        | false, true -> (tp, fp, fn + 1, tn)
        | false, false -> (tp, fp, fn, tn + 1)
      in
      let tp, fp, fn, tn = List.fold_left tally (0, 0, 0, 0) labelled in
      let ratio a b = if a + b = 0 then 0.0 else float_of_int a /. float_of_int (a + b) in
      Some
        {
          true_positives = tp;
          false_positives = fp;
          false_negatives = fn;
          true_negatives = tn;
          precision = ratio tp fp;
          recall = ratio tp fn;
        }

let pp_report ppf r =
  Format.fprintf ppf
    "flows=%d app-limited=%d (%.1f%%) rwnd-limited=%d (%.1f%%) cellular=%d (%.1f%%)@ \
     candidates=%d (%.1f%%) contention-consistent=%d (%.1f%% of all)"
    r.total r.n_app_limited
    (100.0 *. float_of_int r.n_app_limited /. float_of_int (max 1 r.total))
    r.n_rwnd_limited
    (100.0 *. float_of_int r.n_rwnd_limited /. float_of_int (max 1 r.total))
    r.n_cellular
    (100.0 *. float_of_int r.n_cellular /. float_of_int (max 1 r.total))
    r.n_candidates
    (100.0 *. r.candidate_fraction)
    r.n_contention_consistent
    (100.0 *. r.consistent_fraction_of_total)
