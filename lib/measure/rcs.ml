type t =
  | Leaf of { name : string; weight : float; demand : float }
  | Node of { name : string; weight : float; children : t list }

let leaf ~name ~demand_bps =
  if demand_bps < 0.0 then invalid_arg "Rcs.leaf: demand must be non-negative";
  Leaf { name; weight = 1.0; demand = demand_bps }

let weighted weight t =
  if weight <= 0.0 then invalid_arg "Rcs.weighted: weight must be positive";
  match t with
  | Leaf l -> Leaf { l with weight }
  | Node n -> Node { n with weight }

let node ~name ?(weight = 1.0) children =
  if weight <= 0.0 then invalid_arg "Rcs.node: weight must be positive";
  if (match children with [] -> true | _ :: _ -> false) then invalid_arg "Rcs.node: needs at least one child";
  Node { name; weight; children }

let name = function Leaf { name; _ } | Node { name; _ } -> name
let weight = function Leaf { weight; _ } | Node { weight; _ } -> weight

let rec total_demand = function
  | Leaf { demand; _ } -> demand
  | Node { children; _ } ->
      List.fold_left (fun acc child -> acc +. total_demand child) 0.0 children

let rec collect_names acc = function
  | Leaf { name; _ } -> name :: acc
  | Node { children; _ } -> List.fold_left collect_names acc children

let allocate ~capacity_bps tree =
  if capacity_bps < 0.0 then invalid_arg "Rcs.allocate: negative capacity";
  let names = collect_names [] tree in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Rcs.allocate: duplicate leaf names";
  let rec go grant tree acc =
    match tree with
    | Leaf { name; demand; _ } -> (name, Float.min grant demand) :: acc
    | Node { children; _ } ->
        let demands = Array.of_list (List.map total_demand children) in
        let weights = Array.of_list (List.map weight children) in
        let grants =
          Ccsim_util.Fairness.max_min_with_weights ~capacity:grant ~demands ~weights
        in
        List.fold_left
          (fun (acc, i) child -> (go grants.(i) child acc, i + 1))
          (acc, 0) children
        |> fst
  in
  List.rev (go capacity_bps tree [])

let allocation_for allocations name = List.assoc name allocations
