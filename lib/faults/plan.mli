(** Declarative fault plans.

    A plan is an ordered list of impairment events against the
    bottleneck path, written in a compact clause language:

    {v
    outage at=20 dur=2; burst-loss at=30 dur=20 p-enter=0.02 p-exit=0.3
    v}

    Clauses are separated by [;] (or newlines); each clause is a fault
    kind followed by [key=value] fields. Supported kinds (times in
    seconds, probabilities in [0, 1]):

    - [outage at dur] — link down for [dur]
    - [capacity at factor ?dur] — step the link rate to
      [factor × base]; restore after [dur] when given
    - [ramp at dur factor] — renegotiate the rate linearly from base to
      [factor × base] over [dur] (20 steps), then stay
    - [loss at dur p] — i.i.d. wire loss
    - [burst-loss at dur ?p-enter ?p-exit ?loss-good ?loss-bad] —
      Gilbert–Elliott burst loss (defaults 0.01 / 0.25 / 0 / 0.3)
    - [corrupt at dur p] — bit corruption (checksum-discard at receiver)
    - [duplicate at dur p] — wire duplication
    - [reorder at dur p ?delay] — reordering via stretched propagation
      (default extra delay 0.01)
    - [delay-spike at dur extra] — added propagation delay
    - [qdisc-reset at] — flush the bottleneck queue
    - [flap from until ?mean-up ?mean-down] — stochastic up/down cycling
      with exponential holding times (defaults 5 / 0.5)

    Plans are inert data; {!Injector.attach} compiles one onto a
    simulation. The ambient {e armed plan} ({!with_armed}/{!armed}) is
    how the CLI's [--faults] flag reaches [Ccsim_core.Scenario] without
    threading a parameter through every experiment: it is domain-local,
    so parallel runner jobs arm independently. *)

type event =
  | Outage of { at_s : float; dur_s : float }
  | Capacity of { at_s : float; factor : float; dur_s : float option }
  | Ramp of { at_s : float; dur_s : float; factor : float }
  | Loss of { at_s : float; dur_s : float; p : float }
  | Burst_loss of {
      at_s : float;
      dur_s : float;
      p_enter : float;
      p_exit : float;
      loss_good : float;
      loss_bad : float;
    }
  | Corrupt of { at_s : float; dur_s : float; p : float }
  | Duplicate of { at_s : float; dur_s : float; p : float }
  | Reorder of { at_s : float; dur_s : float; p : float; extra_s : float }
  | Delay_spike of { at_s : float; dur_s : float; extra_s : float }
  | Qdisc_reset of { at_s : float }
  | Flap of { from_s : float; until_s : float; mean_up_s : float; mean_down_s : float }

type t = event list

val kind_of : event -> string
(** The clause keyword, e.g. ["burst-loss"]. *)

val windows : t -> (float * float) list
(** Per-event [(start_s, stop_s)] activity windows, plan order. Point
    events (qdisc-reset) have zero width; an unbounded capacity step
    extends to infinity. Used to mask fault-active intervals out of
    verdict computations (e.g. the C1 elasticity window). *)

val parse : string -> (t, string) result
(** Parse the clause language; the error names the offending clause.
    Empty plans are an error. *)

val parse_exn : string -> t
(** Raises [Invalid_argument]. *)

val event_to_string : event -> string

val to_string : t -> string
(** Canonical rendering: [parse] ∘ [to_string] is the identity, and the
    string is stable for use in runner job digests. *)

(** {1 Ambient arming} *)

type armed = { plan : t; seed : int }

val armed : unit -> armed option
(** The current domain's armed plan, if inside {!with_armed}. *)

val with_armed : armed option -> (unit -> 'a) -> 'a
(** Run [f] with the given plan armed (or explicitly disarmed with
    [None]); restores the previous arming on exit, including on
    exceptions. Nestable. *)
