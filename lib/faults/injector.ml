(* Compiles a fault plan onto one simulation: every plan event becomes
   Sim events that drive the Link/Qdisc fault hooks, with the full
   armed/fired/cleared lifecycle journaled through the ambient flight
   recorder and mirrored as timeline span series (1 while live, 0
   otherwise — rendered as fault spans by the Perfetto exporter). *)

module Sim = Ccsim_engine.Sim
module Link = Ccsim_net.Link
module Qdisc = Ccsim_net.Qdisc
module Rng = Ccsim_util.Rng

type t = {
  sim : Sim.t;
  link : Link.t;
  plan : Plan.t;
  seed : int;
  base_rate_bps : float;
  flap_rng : Rng.t;
  recorder : Ccsim_obs.Recorder.t option;
  fired_counter : Ccsim_obs.Metrics.counter option;
  mutable fired : int;
  mutable cleared : int;
  mutable qdisc_flushed : int;
}

type summary = {
  armed : int;
  fired : int;
  cleared : int;
  wire_lost : int;
  wire_corrupted : int;
  wire_duplicated : int;
  wire_reordered : int;
  qdisc_flushed : int;
}

let journal (t : t) ~severity ~detail ~idx event extra =
  match t.recorder with
  | None -> ()
  | Some r ->
      Ccsim_obs.Recorder.record r ~at:(Sim.now t.sim) ~severity ~kind:"fault" ~point:"injector"
        ~fields:
          (("idx", string_of_int idx)
          :: ("fault", Plan.kind_of event)
          :: ("event", Plan.event_to_string event)
          :: extra)
        detail

let span t ~idx event =
  Sim.timeline_series t.sim
    ~labels:[ ("fault", Plan.kind_of event); ("idx", string_of_int idx) ]
    "fault_span"

let record_span series ~t ~value =
  match series with
  | None -> ()
  | Some s -> Ccsim_obs.Timeline.record s ~time:(Sim.now t.sim) ~value

let fire (t : t) ~idx event extra =
  t.fired <- t.fired + 1;
  (match t.fired_counter with None -> () | Some c -> Ccsim_obs.Metrics.inc c);
  journal t ~severity:Ccsim_obs.Recorder.Warn ~detail:"fired" ~idx event extra

let clear (t : t) ~idx event extra =
  t.cleared <- t.cleared + 1;
  journal t ~severity:Ccsim_obs.Recorder.Info ~detail:"cleared" ~idx event extra

(* Every plan event schedules a [fire] action at its start and, for
   bounded events, a [clear] action restoring the un-faulted state. The
   restore is scheduled up front (not from inside the fire callback) so
   an event landing exactly at the run horizon still restores within
   the same run when its window fits. *)
let arm_event (t : t) ~idx event =
  let sp = span t ~idx event in
  let at time f =
    ignore
      (Sim.schedule_at t.sim ~time (fun () ->
           Sim.set_component t.sim "faults";
           f ()))
  in
  let fire_clear ~at_s ~dur_s ~(on_fire : unit -> unit) ~(on_clear : unit -> unit) extra =
    at at_s (fun () ->
        on_fire ();
        fire t ~idx event (extra ());
        record_span sp ~t ~value:1.0);
    at (at_s +. dur_s) (fun () ->
        on_clear ();
        clear t ~idx event [];
        record_span sp ~t ~value:0.0)
  in
  let nothing () = [] in
  match event with
  | Plan.Outage { at_s; dur_s } ->
      fire_clear ~at_s ~dur_s
        ~on_fire:(fun () -> Link.set_outage t.link true)
        ~on_clear:(fun () -> Link.set_outage t.link false)
        nothing
  | Plan.Capacity { at_s; factor; dur_s } -> (
      let faulted_bps = t.base_rate_bps *. factor in
      let set_fault () = Link.set_rate t.link faulted_bps in
      let restore () = Link.set_rate t.link t.base_rate_bps in
      let extra () = [ ("rate_bps", Printf.sprintf "%g" faulted_bps) ] in
      match dur_s with
      | Some dur_s -> fire_clear ~at_s ~dur_s ~on_fire:set_fault ~on_clear:restore extra
      | None ->
          at at_s (fun () ->
              set_fault ();
              fire t ~idx event (extra ());
              record_span sp ~t ~value:1.0))
  | Plan.Ramp { at_s; dur_s; factor } ->
      let steps = 20 in
      at at_s (fun () ->
          fire t ~idx event [ ("target_bps", Printf.sprintf "%g" (t.base_rate_bps *. factor)) ];
          record_span sp ~t ~value:1.0);
      for k = 1 to steps do
        let frac = float_of_int k /. float_of_int steps in
        at
          (at_s +. (dur_s *. frac))
          (fun () ->
            Link.set_rate t.link (t.base_rate_bps *. (1.0 +. ((factor -. 1.0) *. frac)));
            if k = steps then begin
              clear t ~idx event [ ("rate_bps", Printf.sprintf "%g" (Link.rate_bps t.link)) ];
              record_span sp ~t ~value:0.0
            end)
      done
  | Plan.Loss { at_s; dur_s; p } ->
      fire_clear ~at_s ~dur_s
        ~on_fire:(fun () -> Link.set_loss_model t.link (Some (Link.Uniform { p })))
        ~on_clear:(fun () -> Link.set_loss_model t.link None)
        nothing
  | Plan.Burst_loss { at_s; dur_s; p_enter; p_exit; loss_good; loss_bad } ->
      fire_clear ~at_s ~dur_s
        ~on_fire:(fun () ->
          Link.set_loss_model t.link
            (Some (Link.Gilbert_elliott { p_enter; p_exit; loss_good; loss_bad })))
        ~on_clear:(fun () -> Link.set_loss_model t.link None)
        nothing
  | Plan.Corrupt { at_s; dur_s; p } ->
      fire_clear ~at_s ~dur_s
        ~on_fire:(fun () -> Link.set_corrupt_p t.link p)
        ~on_clear:(fun () -> Link.set_corrupt_p t.link 0.0)
        nothing
  | Plan.Duplicate { at_s; dur_s; p } ->
      fire_clear ~at_s ~dur_s
        ~on_fire:(fun () -> Link.set_duplicate_p t.link p)
        ~on_clear:(fun () -> Link.set_duplicate_p t.link 0.0)
        nothing
  | Plan.Reorder { at_s; dur_s; p; extra_s } ->
      fire_clear ~at_s ~dur_s
        ~on_fire:(fun () -> Link.set_reorder t.link (Some (p, extra_s)))
        ~on_clear:(fun () -> Link.set_reorder t.link None)
        nothing
  | Plan.Delay_spike { at_s; dur_s; extra_s } ->
      fire_clear ~at_s ~dur_s
        ~on_fire:(fun () -> Link.set_spike_delay t.link extra_s)
        ~on_clear:(fun () -> Link.set_spike_delay t.link 0.0)
        nothing
  | Plan.Qdisc_reset { at_s } ->
      at at_s (fun () ->
          let flushed = Qdisc.flush (Link.qdisc t.link) in
          t.qdisc_flushed <- t.qdisc_flushed + flushed;
          fire t ~idx event [ ("flushed_pkts", string_of_int flushed) ];
          record_span sp ~t ~value:1.0;
          record_span sp ~t ~value:0.0)
  | Plan.Flap { from_s; until_s; mean_up_s; mean_down_s } ->
      (* Exponential holding times drawn lazily as the cycle unfolds;
         the draws come from the injector's own split stream, so they
         never perturb per-packet impairment draws. *)
      let rec schedule_down ~after_s =
        let t_down = after_s +. Rng.exponential t.flap_rng ~mean:mean_up_s in
        if t_down < until_s then
          at t_down (fun () ->
              Link.set_outage t.link true;
              fire t ~idx event [];
              record_span sp ~t ~value:1.0;
              let t_up =
                Float.min until_s (Sim.now t.sim +. Rng.exponential t.flap_rng ~mean:mean_down_s)
              in
              at t_up (fun () ->
                  Link.set_outage t.link false;
                  clear t ~idx event [];
                  record_span sp ~t ~value:0.0;
                  schedule_down ~after_s:(Sim.now t.sim)))
      in
      schedule_down ~after_s:from_s

let attach sim ~link ~plan ~seed () =
  let rng = Rng.create seed in
  let link_rng = Rng.split rng in
  let flap_rng = Rng.split rng in
  Link.set_fault_rng link link_rng;
  let scope = Ccsim_obs.Scope.ambient () in
  let fired_counter =
    match scope.metrics with
    | None -> None
    | Some m -> Some (Ccsim_obs.Metrics.counter m "faults_fired_total")
  in
  let t =
    {
      sim;
      link;
      plan;
      seed;
      base_rate_bps = Link.rate_bps link;
      flap_rng;
      recorder = scope.recorder;
      fired_counter;
      fired = 0;
      cleared = 0;
      qdisc_flushed = 0;
    }
  in
  List.iteri
    (fun idx event ->
      journal t ~severity:Ccsim_obs.Recorder.Info ~detail:"armed" ~idx event [];
      arm_event t ~idx event)
    plan;
  t

let summary t =
  {
    armed = List.length t.plan;
    fired = t.fired;
    cleared = t.cleared;
    wire_lost = Link.wire_lost_packets t.link;
    wire_corrupted = Link.wire_corrupted_packets t.link;
    wire_duplicated = Link.wire_duplicated_packets t.link;
    wire_reordered = Link.wire_reordered_packets t.link;
    qdisc_flushed = t.qdisc_flushed;
  }

let seed t = t.seed
