(* Declarative fault plans: a list of scheduled / stochastic
   non-congestive impairment events, parsed from a compact textual
   schema (README "Fault injection & chaos"). The canonical rendering
   [to_string] feeds runner job digests, so two runs with the same
   (plan, seed) share a cache entry and different plans never collide. *)

type event =
  | Outage of { at_s : float; dur_s : float }
  | Capacity of { at_s : float; factor : float; dur_s : float option }
  | Ramp of { at_s : float; dur_s : float; factor : float }
  | Loss of { at_s : float; dur_s : float; p : float }
  | Burst_loss of {
      at_s : float;
      dur_s : float;
      p_enter : float;
      p_exit : float;
      loss_good : float;
      loss_bad : float;
    }
  | Corrupt of { at_s : float; dur_s : float; p : float }
  | Duplicate of { at_s : float; dur_s : float; p : float }
  | Reorder of { at_s : float; dur_s : float; p : float; extra_s : float }
  | Delay_spike of { at_s : float; dur_s : float; extra_s : float }
  | Qdisc_reset of { at_s : float }
  | Flap of { from_s : float; until_s : float; mean_up_s : float; mean_down_s : float }

type t = event list

let kind_of = function
  | Outage _ -> "outage"
  | Capacity _ -> "capacity"
  | Ramp _ -> "ramp"
  | Loss _ -> "loss"
  | Burst_loss _ -> "burst-loss"
  | Corrupt _ -> "corrupt"
  | Duplicate _ -> "duplicate"
  | Reorder _ -> "reorder"
  | Delay_spike _ -> "delay-spike"
  | Qdisc_reset _ -> "qdisc-reset"
  | Flap _ -> "flap"

let event_window = function
  | Outage { at_s; dur_s }
  | Ramp { at_s; dur_s; _ }
  | Loss { at_s; dur_s; _ }
  | Burst_loss { at_s; dur_s; _ }
  | Corrupt { at_s; dur_s; _ }
  | Duplicate { at_s; dur_s; _ }
  | Reorder { at_s; dur_s; _ }
  | Delay_spike { at_s; dur_s; _ } ->
      (at_s, at_s +. dur_s)
  | Capacity { at_s; dur_s = Some d; _ } -> (at_s, at_s +. d)
  | Capacity { at_s; dur_s = None; _ } -> (at_s, Float.infinity)
  | Qdisc_reset { at_s } -> (at_s, at_s)
  | Flap { from_s; until_s; _ } -> (from_s, until_s)

let windows t = List.map event_window t

let event_to_string e =
  match e with
  | Outage { at_s; dur_s } -> Printf.sprintf "outage at=%g dur=%g" at_s dur_s
  | Capacity { at_s; factor; dur_s = None } ->
      Printf.sprintf "capacity at=%g factor=%g" at_s factor
  | Capacity { at_s; factor; dur_s = Some d } ->
      Printf.sprintf "capacity at=%g factor=%g dur=%g" at_s factor d
  | Ramp { at_s; dur_s; factor } -> Printf.sprintf "ramp at=%g dur=%g factor=%g" at_s dur_s factor
  | Loss { at_s; dur_s; p } -> Printf.sprintf "loss at=%g dur=%g p=%g" at_s dur_s p
  | Burst_loss { at_s; dur_s; p_enter; p_exit; loss_good; loss_bad } ->
      Printf.sprintf "burst-loss at=%g dur=%g p-enter=%g p-exit=%g loss-good=%g loss-bad=%g"
        at_s dur_s p_enter p_exit loss_good loss_bad
  | Corrupt { at_s; dur_s; p } -> Printf.sprintf "corrupt at=%g dur=%g p=%g" at_s dur_s p
  | Duplicate { at_s; dur_s; p } -> Printf.sprintf "duplicate at=%g dur=%g p=%g" at_s dur_s p
  | Reorder { at_s; dur_s; p; extra_s } ->
      Printf.sprintf "reorder at=%g dur=%g p=%g delay=%g" at_s dur_s p extra_s
  | Delay_spike { at_s; dur_s; extra_s } ->
      Printf.sprintf "delay-spike at=%g dur=%g extra=%g" at_s dur_s extra_s
  | Qdisc_reset { at_s } -> Printf.sprintf "qdisc-reset at=%g" at_s
  | Flap { from_s; until_s; mean_up_s; mean_down_s } ->
      Printf.sprintf "flap from=%g until=%g mean-up=%g mean-down=%g" from_s until_s mean_up_s
        mean_down_s

let to_string t = String.concat "; " (List.map event_to_string t)

(* --- parsing ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let split_on_any ~seps s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if List.mem c seps then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !out

let parse_kv clause token =
  match String.index_opt token '=' with
  | None -> Error (Printf.sprintf "%S: expected key=value, got %S" clause token)
  | Some i ->
      let k = String.sub token 0 i in
      let v = String.sub token (i + 1) (String.length token - i - 1) in
      (match float_of_string_opt v with
      | Some f when Float.is_finite f -> Ok (k, f)
      | Some _ | None -> Error (Printf.sprintf "%S: %s is not a finite number: %S" clause k v))

let parse_fields clause tokens =
  List.fold_left
    (fun acc token ->
      let* fields = acc in
      let* kv = parse_kv clause token in
      Ok (kv :: fields))
    (Ok []) tokens

let lookup fields k = List.assoc_opt k fields

let required clause fields k =
  match lookup fields k with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%S: missing %s=" clause k)

let optional fields k ~default = match lookup fields k with Some v -> v | None -> default

let check clause cond msg = if cond then Ok () else Error (Printf.sprintf "%S: %s" clause msg)

let check_time clause name v = check clause (v >= 0.0) (name ^ " must be non-negative")
let check_dur clause v = check clause (v > 0.0) "dur must be positive"
let check_p clause name v = check clause (v >= 0.0 && v <= 1.0) (name ^ " outside [0, 1]")

let known_keys clause fields keys =
  List.fold_left
    (fun acc (k, _) ->
      let* () = acc in
      check clause (List.mem k keys) (Printf.sprintf "unknown key %s=" k))
    (Ok ()) fields

let parse_clause clause =
  match split_on_any ~seps:[ ' '; '\t' ] clause with
  | [] -> Ok None
  | kind :: rest -> (
      let* fields = parse_fields clause rest in
      let keys ks = known_keys clause fields ks in
      match kind with
      | "outage" ->
          let* () = keys [ "at"; "dur" ] in
          let* at_s = required clause fields "at" in
          let* dur_s = required clause fields "dur" in
          let* () = check_time clause "at" at_s in
          let* () = check_dur clause dur_s in
          Ok (Some (Outage { at_s; dur_s }))
      | "capacity" ->
          let* () = keys [ "at"; "factor"; "dur" ] in
          let* at_s = required clause fields "at" in
          let* factor = required clause fields "factor" in
          let* () = check_time clause "at" at_s in
          let* () = check clause (factor > 0.0) "factor must be positive" in
          let dur_s = lookup fields "dur" in
          let* () =
            match dur_s with Some d -> check_dur clause d | None -> Ok ()
          in
          Ok (Some (Capacity { at_s; factor; dur_s }))
      | "ramp" ->
          let* () = keys [ "at"; "dur"; "factor" ] in
          let* at_s = required clause fields "at" in
          let* dur_s = required clause fields "dur" in
          let* factor = required clause fields "factor" in
          let* () = check_time clause "at" at_s in
          let* () = check_dur clause dur_s in
          let* () = check clause (factor > 0.0) "factor must be positive" in
          Ok (Some (Ramp { at_s; dur_s; factor }))
      | "loss" ->
          let* () = keys [ "at"; "dur"; "p" ] in
          let* at_s = required clause fields "at" in
          let* dur_s = required clause fields "dur" in
          let* p = required clause fields "p" in
          let* () = check_time clause "at" at_s in
          let* () = check_dur clause dur_s in
          let* () = check_p clause "p" p in
          Ok (Some (Loss { at_s; dur_s; p }))
      | "burst-loss" ->
          let* () = keys [ "at"; "dur"; "p-enter"; "p-exit"; "loss-good"; "loss-bad" ] in
          let* at_s = required clause fields "at" in
          let* dur_s = required clause fields "dur" in
          let p_enter = optional fields "p-enter" ~default:0.01 in
          let p_exit = optional fields "p-exit" ~default:0.25 in
          let loss_good = optional fields "loss-good" ~default:0.0 in
          let loss_bad = optional fields "loss-bad" ~default:0.3 in
          let* () = check_time clause "at" at_s in
          let* () = check_dur clause dur_s in
          let* () = check_p clause "p-enter" p_enter in
          let* () = check_p clause "p-exit" p_exit in
          let* () = check_p clause "loss-good" loss_good in
          let* () = check_p clause "loss-bad" loss_bad in
          Ok (Some (Burst_loss { at_s; dur_s; p_enter; p_exit; loss_good; loss_bad }))
      | "corrupt" | "duplicate" ->
          let* () = keys [ "at"; "dur"; "p" ] in
          let* at_s = required clause fields "at" in
          let* dur_s = required clause fields "dur" in
          let* p = required clause fields "p" in
          let* () = check_time clause "at" at_s in
          let* () = check_dur clause dur_s in
          let* () = check_p clause "p" p in
          if String.equal kind "corrupt" then Ok (Some (Corrupt { at_s; dur_s; p }))
          else Ok (Some (Duplicate { at_s; dur_s; p }))
      | "reorder" ->
          let* () = keys [ "at"; "dur"; "p"; "delay" ] in
          let* at_s = required clause fields "at" in
          let* dur_s = required clause fields "dur" in
          let* p = required clause fields "p" in
          let extra_s = optional fields "delay" ~default:0.01 in
          let* () = check_time clause "at" at_s in
          let* () = check_dur clause dur_s in
          let* () = check_p clause "p" p in
          let* () = check clause (extra_s > 0.0) "delay must be positive" in
          Ok (Some (Reorder { at_s; dur_s; p; extra_s }))
      | "delay-spike" ->
          let* () = keys [ "at"; "dur"; "extra" ] in
          let* at_s = required clause fields "at" in
          let* dur_s = required clause fields "dur" in
          let* extra_s = required clause fields "extra" in
          let* () = check_time clause "at" at_s in
          let* () = check_dur clause dur_s in
          let* () = check clause (extra_s > 0.0) "extra must be positive" in
          Ok (Some (Delay_spike { at_s; dur_s; extra_s }))
      | "qdisc-reset" ->
          let* () = keys [ "at" ] in
          let* at_s = required clause fields "at" in
          let* () = check_time clause "at" at_s in
          Ok (Some (Qdisc_reset { at_s }))
      | "flap" ->
          let* () = keys [ "from"; "until"; "mean-up"; "mean-down" ] in
          let* from_s = required clause fields "from" in
          let* until_s = required clause fields "until" in
          let mean_up_s = optional fields "mean-up" ~default:5.0 in
          let mean_down_s = optional fields "mean-down" ~default:0.5 in
          let* () = check_time clause "from" from_s in
          let* () = check clause (until_s > from_s) "until must exceed from" in
          let* () = check clause (mean_up_s > 0.0) "mean-up must be positive" in
          let* () = check clause (mean_down_s > 0.0) "mean-down must be positive" in
          Ok (Some (Flap { from_s; until_s; mean_up_s; mean_down_s }))
      | other -> Error (Printf.sprintf "%S: unknown fault kind %S" clause other))

let parse s =
  let clauses = split_on_any ~seps:[ ';'; '\n' ] s in
  let* events =
    List.fold_left
      (fun acc clause ->
        let* events = acc in
        let* event = parse_clause (String.trim clause) in
        match event with None -> Ok events | Some e -> Ok (e :: events))
      (Ok []) clauses
  in
  match List.rev events with
  | [] -> Error "empty fault plan"
  | events -> Ok events

let parse_exn s =
  match parse s with Ok t -> t | Error msg -> invalid_arg ("fault plan: " ^ msg)

(* --- ambient arming ---------------------------------------------------- *)

type armed = { plan : t; seed : int }

(* Domain-local like Scope: a pool worker arms only its own job's plan. *)
let key = Domain.DLS.new_key (fun () -> None)

let armed () : armed option = Domain.DLS.get key

let with_armed a f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key a;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
