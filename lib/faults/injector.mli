(** Fault injector: compiles a {!Plan.t} onto one simulation.

    {!attach} schedules every plan event as ordinary [Sim] events
    driving the {!Ccsim_net.Link} / {!Ccsim_net.Qdisc} fault hooks, so
    faults execute in virtual time, interleaved deterministically with
    the workload. The full lifecycle is observable:

    - each event is journaled through the ambient flight recorder
      (class ["fault"], point ["injector"]) at arm time (Info), fire
      time (Warn) and clear time (Info), with the canonical clause in
      the fields;
    - each event registers a [fault_span] timeline series (labels
      [fault], [idx]) recording 1 while the fault is live and 0
      otherwise, which the Perfetto exporter renders as spans;
    - a [faults_fired_total] counter is maintained when the ambient
      scope carries metrics.

    All randomness (per-packet impairment draws, flap holding times)
    comes from SplitMix64 streams split from the injector seed, so a
    [(plan, seed)] pair reproduces byte-identically regardless of
    runner parallelism. Under the empty scope the injector journals
    nothing but still drives the faults. *)

type t

type summary = {
  armed : int;  (** plan events scheduled *)
  fired : int;  (** fire actions that ran before the horizon *)
  cleared : int;  (** restore actions that ran *)
  wire_lost : int;  (** packets lost to the armed loss models *)
  wire_corrupted : int;  (** packets checksum-discarded *)
  wire_duplicated : int;  (** ghost copies delivered *)
  wire_reordered : int;  (** deliveries stretched for reordering *)
  qdisc_flushed : int;  (** packets dropped by qdisc-reset events *)
}

val attach :
  Ccsim_engine.Sim.t -> link:Ccsim_net.Link.t -> plan:Plan.t -> seed:int -> unit -> t
(** Arm [plan] against [link]. Installs the link's fault RNG (a stream
    split from [seed]) and schedules all fire/clear events; events
    beyond the run horizon simply never fire. The link's rate at attach
    time is the base for capacity/ramp events. *)

val summary : t -> summary
(** Read after [Sim.run]; counters are cumulative for the run. *)

val seed : t -> int
