module Table = Ccsim_util.Table

type t = {
  pool_jobs : int;
  total_wall_s : float;
  results : Job.result array;
}

let make ~pool_jobs ~total_wall_s results = { pool_jobs; total_wall_s; results }

(* The sanctioned wall-clock read for run timing. ccsim-lint (R2) bans
   Unix.gettimeofday outside lib/runner and lib/obs; anything that
   measures real elapsed time (bin, bench) must come through here. *)
let now_s = Unix.gettimeofday

(* Sanctioned date read for report stamping (same R2 rationale as
   [now_s]): simulated results never depend on it, only artifacts. *)
let date_utc () =
  let tm = Unix.gmtime (now_s ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let host_cores () = Domain.recommended_domain_count ()

let count p t = Array.fold_left (fun n r -> if p r then n + 1 else n) 0 t.results
let cache_hits = count (fun (r : Job.result) -> r.cache_hit)
let failures = count (fun (r : Job.result) -> not r.ok)
let degraded = count (fun (r : Job.result) -> r.degraded)
let timeouts = count (fun (r : Job.result) -> r.timed_out)

(* Unified CLI exit codes (documented in README): 0 all jobs ok,
   1 verdict/job failure, 124 timeout (including degraded deadline
   hits). Usage errors exit 2 via cmdliner; unsupported backends exit
   124 before any pool run. *)
let exit_code t =
  if timeouts t > 0 then 124 else if failures t > 0 then 1 else 0

(* More worker domains than host cores means the workers time-share: the
   suite still completes, but wall-clock speedup is bounded by the cores,
   so comparing it against the worker count is misleading. The flag is
   surfaced in both the summary line and the JSON report so BENCH
   numbers from small CI hosts read honestly. *)
let oversubscribed t = t.pool_jobs > host_cores ()

let summary t =
  let table =
    Table.create
      ~columns:
        [
          ("job", Table.Left);
          ("status", Table.Left);
          ("cache", Table.Left);
          ("attempts", Table.Right);
          ("queue s", Table.Right);
          ("wall s", Table.Right);
        ]
  in
  Array.iter
    (fun (r : Job.result) ->
      Table.add_row table
        [
          r.name;
          (if r.degraded then "degraded"
           else if r.ok then "ok"
           else if r.timed_out then "timeout"
           else "error");
          (if r.cache_hit then "hit" else "miss");
          string_of_int r.attempts;
          Table.cell_f ~decimals:3 r.queue_wait_s;
          Table.cell_f ~decimals:3 r.wall_s;
        ])
    t.results;
  let busy = Array.fold_left (fun s (r : Job.result) -> s +. r.wall_s) 0.0 t.results in
  let oversub =
    if oversubscribed t then
      Printf.sprintf " [oversubscribed: %d worker(s) on %d core(s)]" t.pool_jobs
        (host_cores ())
    else ""
  in
  Printf.sprintf
    "run telemetry: %d jobs on %d worker(s)%s, %.3fs wall (%.3fs cumulative job time), %d cache hit(s), %d failure(s), %d degraded\n%s"
    (Array.length t.results) t.pool_jobs oversub t.total_wall_s busy (cache_hits t)
    (failures t) (degraded t) (Table.render table)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(profiles = []) t =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\n  \"schema\": \"ccsim-runner/1\",\n  \"pool_jobs\": %d,\n  \"host_cores\": %d,\n  \"oversubscribed\": %b,\n  \"total_wall_s\": %.6f,\n  \"cache_hits\": %d,\n  \"failures\": %d,\n  \"degraded\": %d,\n  \"jobs\": [\n"
    t.pool_jobs (host_cores ()) (oversubscribed t) t.total_wall_s (cache_hits t)
    (failures t) (degraded t);
  Array.iteri
    (fun i (r : Job.result) ->
      let profile_field =
        match List.assoc_opt r.name profiles with
        | Some json -> Printf.sprintf ", \"profile\": %s" json
        | None -> ""
      in
      Printf.bprintf buf
        "    {\"name\": \"%s\", \"digest\": \"%s\", \"ok\": %b, \"cache_hit\": %b, \"attempts\": %d, \"queue_wait_s\": %.6f, \"wall_s\": %.6f, \"timed_out\": %b, \"degraded\": %b, \"error\": %s%s}%s\n"
        (json_escape r.name) (json_escape r.digest) r.ok r.cache_hit r.attempts
        r.queue_wait_s r.wall_s r.timed_out r.degraded
        (match r.error with
        | None -> "null"
        | Some e -> Printf.sprintf "\"%s\"" (json_escape e))
        profile_field
        (if i = Array.length t.results - 1 then "" else ","))
    t.results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let rec mkdir_p dir =
  if not (String.equal dir "") && not (String.equal dir ".") && not (String.equal dir "/") && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_json ?(profiles = []) t ~path =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json ~profiles t));
  Sys.rename tmp path
