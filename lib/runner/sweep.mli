(** Cross-product sweeps over named parameter axes.

    A sweep point is an association list of [(axis, value)] strings —
    ready to label a job, feed {!Job.digest_of_params}, or parse back
    into typed parameters. *)

type axis

val axis : string -> string list -> axis
val ints : string -> int list -> axis
val floats : string -> float list -> axis

type point = (string * string) list

val points : axis list -> point list
(** Cross product in row-major order: the first axis varies slowest.
    With no axes, one empty point. Raises [Invalid_argument] on an
    empty axis (its cross product would silently be empty). *)

val label : point -> string
(** ["exp=fig1 seed=43 duration=10"]-style display label. *)

val get : point -> string -> string option
