type t = { name : string; digest : string; run : unit -> string }

let make ~name ~digest run = { name; digest; run }

(* Bump when renderer output changes incompatibly: stale cache entries
   keyed under the old salt are then never consulted. *)
let salt = "ccsim-runner/1"

let digest_of_params ~name params =
  let params = List.sort (fun (a, _) (b, _) -> String.compare a b) params in
  let buf = Buffer.create 64 in
  Buffer.add_string buf salt;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v)
    params;
  Digest.to_hex (Digest.string (Buffer.contents buf))

type result = {
  name : string;
  digest : string;
  output : string;
  ok : bool;
  error : string option;
  attempts : int;
  cache_hit : bool;
  queue_wait_s : float;
  wall_s : float;
  timed_out : bool;
  degraded : bool;
}

let error_row ~name msg = Printf.sprintf "%s: ERROR %s\n" name msg
