(** Run telemetry: per-job wall-clock, queue wait, cache hits, errors.

    Collected over a pool run and emitted two ways: a human-readable
    summary table, and a machine-readable JSON report for the perf
    trajectory (BENCH files, CI artifacts). *)

type t = {
  pool_jobs : int;  (** worker-domain count the run used *)
  total_wall_s : float;  (** whole-suite wall-clock *)
  results : Job.result array;
}

val make : pool_jobs:int -> total_wall_s:float -> Job.result array -> t

val now_s : unit -> float
(** The sanctioned wall-clock read ([Unix.gettimeofday]) for run timing.
    ccsim-lint rule R2 bans direct wall-clock calls outside [lib/runner]
    and [lib/obs] so simulated results can never depend on the host
    clock; elapsed-time measurement elsewhere must route through this. *)

val date_utc : unit -> string
(** Today's UTC date as ["YYYY-MM-DD"], via {!now_s}. For stamping
    reports and BENCH artifacts only — never simulation inputs. *)

val host_cores : unit -> int
(** [Domain.recommended_domain_count ()]: how many worker domains the
    host can actually run in parallel. *)

val oversubscribed : t -> bool
(** Whether the run used more worker domains than {!host_cores} — its
    wall-clock speedup is then bounded by the cores, not the workers,
    and comparing against [pool_jobs] would be misleading. Flagged in
    {!summary} and {!to_json}. *)

val cache_hits : t -> int
val failures : t -> int

val degraded : t -> int
(** Jobs whose cooperative deadline fired but whose partial output was
    salvaged ([ok] true, kept out of the cache). *)

val timeouts : t -> int
(** Jobs with [timed_out] set (degraded deadline hits included). *)

val exit_code : t -> int
(** The unified CLI exit code for this run: 124 if any job timed out
    (hard or degraded), else 1 if any job failed, else 0. Usage errors
    (2) and unsupported backends (124) are decided before a pool run
    exists. *)

val summary : t -> string
(** Rendered per-job table plus a totals line. *)

val to_json : ?profiles:(string * string) list -> t -> string
(** Machine-readable report: schema ["ccsim-runner/1"], pool size, host
    cores, the {!oversubscribed} flag, total wall-clock, aggregate
    counters, and one record per job. [profiles]
    maps job names to pre-rendered JSON objects (engine-profiler output,
    see {!Ccsim_obs.Profile.to_json}); a matching job record gains a
    ["profile"] field. The strings are embedded verbatim and must be
    valid JSON. *)

val write_json : ?profiles:(string * string) list -> t -> path:string -> unit
(** [to_json] written atomically; parent directories are created. *)
