type config = {
  jobs : int;
  retries : int;
  timeout_s : float option;
  cache : Cache.t option;
}

let config ?(jobs = 1) ?(retries = 0) ?timeout_s ?cache () =
  { jobs; retries; timeout_s; cache }

let exec_one config ~queue_wait_s (job : Job.t) : Job.result =
  let cached =
    match config.cache with None -> None | Some c -> Cache.find c job.digest
  in
  match cached with
  | Some output ->
      {
        Job.name = job.name;
        digest = job.digest;
        output;
        ok = true;
        error = None;
        attempts = 0;
        cache_hit = true;
        queue_wait_s;
        wall_s = 0.0;
        timed_out = false;
      }
  | None ->
      let started = Unix.gettimeofday () in
      let rec attempt k =
        match job.run () with
        | output -> (Ok output, k)
        | exception e ->
            if k <= config.retries then attempt (k + 1)
            else (Error (Printexc.to_string e), k)
      in
      let outcome, attempts = attempt 1 in
      let wall_s = Unix.gettimeofday () -. started in
      let timed_out =
        match config.timeout_s with Some t -> wall_s > t | None -> false
      in
      let base ~output ~ok ~error =
        {
          Job.name = job.name;
          digest = job.digest;
          output;
          ok;
          error;
          attempts;
          cache_hit = false;
          queue_wait_s;
          wall_s;
          timed_out;
        }
      in
      (match (outcome, timed_out) with
      | Ok output, false ->
          (match config.cache with
          | Some c -> Cache.store c ~digest:job.digest output
          | None -> ());
          base ~output ~ok:true ~error:None
      | Ok _, true ->
          let msg =
            Printf.sprintf "exceeded %gs timeout (ran %.1fs)"
              (Option.get config.timeout_s) wall_s
          in
          base ~output:(Job.error_row ~name:job.name msg) ~ok:false ~error:(Some msg)
      | Error msg, _ ->
          let msg =
            if attempts > 1 then Printf.sprintf "%s (after %d attempts)" msg attempts
            else msg
          in
          base ~output:(Job.error_row ~name:job.name msg) ~ok:false ~error:(Some msg))

let run config jobs_list =
  let jobs = Array.of_list jobs_list in
  let n = Array.length jobs in
  let results = Array.make n None in
  let submitted = Unix.gettimeofday () in
  let work i =
    let queue_wait_s = Unix.gettimeofday () -. submitted in
    results.(i) <- Some (exec_one config ~queue_wait_s jobs.(i))
  in
  if config.jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          work i;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min config.jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  Array.map (function Some r -> r | None -> assert false) results
