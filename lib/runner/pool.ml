type config = {
  jobs : int;
  retries : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  timeout_s : float option;
  cache : Cache.t option;
}

let config ?(jobs = 1) ?(retries = 0) ?(backoff_base_s = 0.05) ?(backoff_cap_s = 1.0) ?timeout_s
    ?cache () =
  if backoff_base_s < 0.0 then invalid_arg "Pool.config: backoff_base_s must be non-negative";
  if backoff_cap_s < backoff_base_s then
    invalid_arg "Pool.config: backoff_cap_s must be >= backoff_base_s";
  { jobs; retries; backoff_base_s; backoff_cap_s; timeout_s; cache }

(* Capped exponential backoff before retry [attempt + 1]: base doubles
   per failed attempt up to the cap, then a jitter factor in [0.5, 1)
   decorrelates workers. The jitter stream is seeded from the job
   digest and attempt number, never a global PRNG, so the schedule is a
   pure function of the job — deterministic under ccsim-lint R2 (sleep
   durations are timing, not simulated results). *)
let backoff_delay_s config ~digest ~attempt =
  if config.backoff_base_s <= 0.0 then 0.0
  else begin
    let doublings = min (attempt - 1) 30 in
    let raw = config.backoff_base_s *. (2.0 ** float_of_int doublings) in
    let capped = Float.min config.backoff_cap_s raw in
    (* Value-hashing the (digest, attempt) pair is deliberate: the jitter
       seed must be a stable function of both, and this path runs once per
       retry, not per event. *)
    let rng = Ccsim_util.Rng.create ((Hashtbl.hash (digest, attempt)) [@lint.allow R6]) in
    capped *. (0.5 +. Ccsim_util.Rng.float rng 0.5)
  end

let exec_one config ~queue_wait_s (job : Job.t) : Job.result =
  let cached =
    match config.cache with None -> None | Some c -> Cache.find c job.digest
  in
  match cached with
  | Some output ->
      {
        Job.name = job.name;
        digest = job.digest;
        output;
        ok = true;
        error = None;
        attempts = 0;
        cache_hit = true;
        queue_wait_s;
        wall_s = 0.0;
        timed_out = false;
        degraded = false;
      }
  | None ->
      let deadline =
        match config.timeout_s with
        | Some timeout_s -> Some (Ccsim_obs.Deadline.create ~timeout_s)
        | None -> None
      in
      let deadline_hit () =
        match deadline with Some d -> Ccsim_obs.Deadline.hit d | None -> false
      in
      let started = Unix.gettimeofday () in
      let rec attempt k =
        match job.run () with
        | output -> (Ok output, k)
        | exception e ->
            (* A job cut short by its deadline may surface the stop as
               an exception; retrying it would just time out again. *)
            if k <= config.retries && not (deadline_hit ()) then begin
              Unix.sleepf (backoff_delay_s config ~digest:job.digest ~attempt:k);
              attempt (k + 1)
            end
            else (Error (Printexc.to_string e), k)
      in
      let outcome, attempts =
        match deadline with
        | None -> attempt 1
        | Some d -> Ccsim_obs.Deadline.with_deadline d (fun () -> attempt 1)
      in
      let wall_s = Unix.gettimeofday () -. started in
      let hit = deadline_hit () in
      let timed_out =
        hit || (match config.timeout_s with Some t -> wall_s > t | None -> false)
      in
      let base ~output ~ok ~error ~degraded =
        {
          Job.name = job.name;
          digest = job.digest;
          output;
          ok;
          error;
          attempts;
          cache_hit = false;
          queue_wait_s;
          wall_s;
          timed_out;
          degraded;
        }
      in
      (match (outcome, timed_out) with
      | Ok output, false ->
          (match config.cache with
          | Some c -> Cache.store c ~digest:job.digest output
          | None -> ());
          base ~output ~ok:true ~error:None ~degraded:false
      | Ok output, true when hit ->
          (* The cooperative deadline fired and the job still returned:
             its sims stopped at event boundaries and the partial
             metrics/series were collected. Salvage the output (never
             cached — it does not correspond to the digest's params)
             and mark the row degraded. *)
          let msg =
            Printf.sprintf "deadline %gs hit; partial results salvaged (ran %.1fs)"
              (Option.get config.timeout_s) wall_s
          in
          base ~output ~ok:true ~error:(Some msg) ~degraded:true
      | Ok _, true ->
          let msg =
            Printf.sprintf "exceeded %gs timeout (ran %.1fs)"
              (Option.get config.timeout_s) wall_s
          in
          base ~output:(Job.error_row ~name:job.name msg) ~ok:false ~error:(Some msg)
            ~degraded:false
      | Error msg, _ ->
          let msg =
            if attempts > 1 then Printf.sprintf "%s (after %d attempts)" msg attempts
            else msg
          in
          base ~output:(Job.error_row ~name:job.name msg) ~ok:false ~error:(Some msg)
            ~degraded:false)

let run config jobs_list =
  let jobs = Array.of_list jobs_list in
  let n = Array.length jobs in
  let results = Array.make n None in
  let submitted = Unix.gettimeofday () in
  let work i =
    let queue_wait_s = Unix.gettimeofday () -. submitted in
    results.(i) <- Some (exec_one config ~queue_wait_s jobs.(i))
  in
  if config.jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          work i;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min config.jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  Array.map (function Some r -> r | None -> assert false) results
