type t = { dir : string }

let default_dir () =
  match Sys.getenv_opt "CCSIM_CACHE_DIR" with
  | Some d when not (String.equal d "") -> d
  | _ -> "_ccsim_cache"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  mkdir_p dir;
  { dir }

let dir t = t.dir
let path t digest = Filename.concat t.dir (digest ^ ".out")

let find t digest =
  let file = path t digest in
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let store t ~digest output =
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp.%s.%d.%d" digest (Unix.getpid ())
         (Domain.self () :> int))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc output);
  Sys.rename tmp (path t digest)

let clear t =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())
    (Sys.readdir t.dir)
