(** Schedulable experiment jobs.

    A job is a named thunk that runs one experiment and returns its
    rendered result rows as a string, plus a stable digest derived from
    the experiment's canonical parameters (and seed). The digest keys
    the on-disk result cache: two jobs with equal digests are assumed to
    produce byte-identical output, which holds because every scenario
    owns its seeded {!Ccsim_util.Rng}. *)

type t = private { name : string; digest : string; run : unit -> string }

val make : name:string -> digest:string -> (unit -> string) -> t

val digest_of_params : name:string -> (string * string) list -> string
(** Stable hex digest of the job name and its [(key, value)] parameters
    (sorted by key, so caller order is irrelevant). The digest is salted
    with a cache-format version; bump the salt when renderers change
    incompatibly. *)

type result = {
  name : string;
  digest : string;
  output : string;  (** rendered rows; an error row if the job failed *)
  ok : bool;
  error : string option;  (** exception text / timeout notice *)
  attempts : int;  (** executions performed; 0 on a cache hit *)
  cache_hit : bool;
  queue_wait_s : float;  (** submission-to-start latency *)
  wall_s : float;  (** execution wall-clock (0 on a cache hit) *)
  timed_out : bool;
  degraded : bool;
      (** The job hit its cooperative deadline (or tripped a
          quarantine-policy watchdog) but still produced salvageable
          partial output: [ok] stays true, the output is kept out of
          the cache, and reports mark the row degraded. *)
}

val error_row : name:string -> string -> string
(** The one-line report block substituted for a failed job's output. *)
