(** Domain pool: shard jobs across OCaml 5 domains.

    [run] executes every job and returns results in submission order.
    With [jobs = 1] everything runs inline on the calling domain, in
    order — serial runs are therefore bit-identical to calling the
    experiments directly. With [jobs > 1], that many worker domains
    drain a shared queue (each scenario owns its seeded Rng, so results
    stay row-for-row identical; only wall-clock changes).

    Crash isolation: a job that raises is retried up to [retries] times,
    then yields an error-row result instead of killing the pool.

    Timeouts are cooperative: OCaml domains cannot be interrupted, so a
    job that outlives [timeout_s] still runs to completion, but its
    result is reported as failed (error row) and is kept out of the
    cache. *)

type config = {
  jobs : int;  (** worker domains; <= 1 means inline serial *)
  retries : int;  (** re-executions after a raise (default 0) *)
  timeout_s : float option;
  cache : Cache.t option;
}

val config : ?jobs:int -> ?retries:int -> ?timeout_s:float -> ?cache:Cache.t -> unit -> config

val run : config -> Job.t list -> Job.result array
(** Results in submission order. *)
