(** Domain pool: shard jobs across OCaml 5 domains.

    [run] executes every job and returns results in submission order.
    With [jobs = 1] everything runs inline on the calling domain, in
    order — serial runs are therefore bit-identical to calling the
    experiments directly. With [jobs > 1], that many worker domains
    drain a shared queue (each scenario owns its seeded Rng, so results
    stay row-for-row identical; only wall-clock changes).

    Crash isolation: a job that raises is retried up to [retries]
    times, with capped exponential backoff between attempts
    ([backoff_base_s] doubling up to [backoff_cap_s], jittered by a
    factor in [0.5, 1) drawn from a SplitMix64 stream seeded by the job
    digest and attempt number — fully deterministic, no global PRNG).
    After the retries are exhausted the job yields an error-row result
    instead of killing the pool.

    Timeouts are cooperative: OCaml domains cannot be interrupted, so
    the pool arms a {!Ccsim_obs.Deadline} around each job. Simulations
    inside poll it at event boundaries and stop cleanly, letting the
    job salvage partial metrics/series; such a result keeps [ok = true]
    but is marked [degraded] (and [timed_out]) and stays out of the
    cache. A job that ignores the deadline still runs to completion and
    is reported as a plain timeout failure. *)

type config = {
  jobs : int;  (** worker domains; <= 1 means inline serial *)
  retries : int;  (** re-executions after a raise (default 0) *)
  backoff_base_s : float;  (** first retry delay (default 0.05; 0 disables) *)
  backoff_cap_s : float;  (** backoff ceiling (default 1.0) *)
  timeout_s : float option;
  cache : Cache.t option;
}

val config :
  ?jobs:int ->
  ?retries:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  ?timeout_s:float ->
  ?cache:Cache.t ->
  unit ->
  config
(** Raises [Invalid_argument] if [backoff_base_s] is negative or
    [backoff_cap_s < backoff_base_s]. *)

val backoff_delay_s : config -> digest:string -> attempt:int -> float
(** The jittered delay slept before retry [attempt + 1] (attempts are
    1-based); exposed for tests. Deterministic in [(digest, attempt)]. *)

val run : config -> Job.t list -> Job.result array
(** Results in submission order. *)
