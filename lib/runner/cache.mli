(** Content-addressed on-disk result cache.

    Each entry is one job's rendered output stored under its digest, so
    re-running a suite only recomputes jobs whose parameters (and hence
    digests) changed. The directory defaults to [_ccsim_cache/] in the
    working directory; set [CCSIM_CACHE_DIR] to relocate it. Stores are
    atomic (temp file + rename), so concurrent pool workers and even
    concurrent ccsim processes can share a cache safely. *)

type t

val default_dir : unit -> string
(** [$CCSIM_CACHE_DIR] if set, else ["_ccsim_cache"]. *)

val create : ?dir:string -> unit -> t
(** Open (creating if needed) the cache directory. *)

val dir : t -> string

val find : t -> string -> string option
(** Cached output for a digest, if present. *)

val store : t -> digest:string -> string -> unit
(** Persist a job's output under its digest. *)

val clear : t -> unit
(** Remove every entry (the directory itself stays). *)
