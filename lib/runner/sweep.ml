type axis = string * string list

let axis name values =
  if (match values with [] -> true | _ :: _ -> false) then invalid_arg (Printf.sprintf "Sweep.axis %s: no values" name);
  (name, values)

let ints name values = axis name (List.map string_of_int values)
let floats name values = axis name (List.map (Printf.sprintf "%g") values)

type point = (string * string) list

let points axes =
  List.fold_right
    (fun (name, values) tails ->
      List.concat_map (fun v -> List.map (fun tail -> (name, v) :: tail) tails) values)
    axes [ [] ]

let label point = String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) point)
let get point name = List.assoc_opt name point
