(** Chrome trace-event exporter (Perfetto / chrome://tracing).

    Merges timelines and flight recorders from one or more jobs into a
    single JSON-array trace: one process per job (named via a metadata
    event), one counter track per timeline series, one instant event per
    recorder event, and a duration event spanning each job's run.
    Virtual-time seconds are exported as microsecond [ts] values. *)

val to_string : (string * Timeline.t option * Recorder.t option) list -> string
(** [to_string [(job, timeline, recorder); ...]] renders the full trace
    document (a JSON array, trailing newline). Per-track timestamps are
    monotone because series points and recorder events are stored in
    time order. *)
