(** Chrome trace-event exporter (Perfetto / chrome://tracing).

    Merges timelines, flight recorders, and packet lifecycle spans from
    one or more jobs into a single JSON-array trace: one process per job
    (named via a metadata event), one counter track per timeline series,
    one instant event per recorder event, per-phase duration events
    (queue / serialize / propagate) on one named thread per hop for each
    completed span record, and a duration event spanning each job's run.
    Virtual-time seconds are exported as microsecond [ts] values. *)

val to_string :
  (string * Timeline.t option * Recorder.t option * Span.t option) list -> string
(** [to_string [(job, timeline, recorder, spans); ...]] renders the full
    trace document (a JSON array, trailing newline). Metadata events
    come first in job order; all other events are stable-sorted on
    [(ts, pid, tid)], so the document is globally time-ordered and
    per-track timestamps stay monotone. *)
