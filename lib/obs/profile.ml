type comp = { mutable events : int; mutable seconds : float }

type t = {
  comps : (string, comp) Hashtbl.t;
  mutable comp_names : string list;  (* registration order, newest first *)
  mutable events_executed : int;
  mutable busy_s : float;
  mutable max_heap_depth : int;
  mutable sim_s : float;  (* furthest simulated clock seen *)
}

(* The sanctioned wall-clock read for profiling. ccsim-lint (R2)
   forbids Unix.gettimeofday outside lib/runner and lib/obs so no
   simulated quantity can depend on the host clock; callers that time
   real work (the engine's event loop) go through this choke point. *)
let wall_now = Unix.gettimeofday

let create () =
  {
    comps = Hashtbl.create 16;
    comp_names = [];
    events_executed = 0;
    busy_s = 0.0;
    max_heap_depth = 0;
    sim_s = 0.0;
  }

let record t ~comp ~seconds =
  t.events_executed <- t.events_executed + 1;
  t.busy_s <- t.busy_s +. seconds;
  let c =
    match Hashtbl.find_opt t.comps comp with
    | Some c -> c
    | None ->
        let c = { events = 0; seconds = 0.0 } in
        Hashtbl.add t.comps comp c;
        t.comp_names <- comp :: t.comp_names;
        c
  in
  c.events <- c.events + 1;
  c.seconds <- c.seconds +. seconds

let note_heap_depth t depth = if depth > t.max_heap_depth then t.max_heap_depth <- depth
let note_sim_time t clock = if clock > t.sim_s then t.sim_s <- clock

let events_executed t = t.events_executed
let busy_s t = t.busy_s
let max_heap_depth t = t.max_heap_depth
let sim_s t = t.sim_s

let events_per_sec t =
  if t.busy_s > 0.0 then float_of_int t.events_executed /. t.busy_s else 0.0

let sim_speedup t = if t.busy_s > 0.0 then t.sim_s /. t.busy_s else 0.0

let components t =
  (* Walk the registration-order name list, not the table, so row order
     never depends on hash state (ccsim-lint R2); the sort below then
     makes it independent of registration order too. *)
  let rows =
    List.fold_left
      (fun acc name ->
        let c = Hashtbl.find t.comps name in
        (name, c.events, c.seconds) :: acc)
      [] t.comp_names
  in
  List.sort
    (fun (na, _, sa) (nb, _, sb) ->
      match compare sb sa with 0 -> compare na nb | c -> c)
    rows

let to_json t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "{\"events_executed\": %d, \"busy_s\": %.6f, \"events_per_sec\": %.1f, \"sim_s\": %.6f, \
     \"sim_speedup\": %.1f, \"max_heap_depth\": %d, \"components\": ["
    t.events_executed t.busy_s (events_per_sec t) t.sim_s (sim_speedup t) t.max_heap_depth;
  List.iteri
    (fun i (name, events, seconds) ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf "{\"component\": %s, \"events\": %d, \"seconds\": %.6f}" (Json.str name)
        events seconds)
    (components t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let summary t =
  let top =
    match components t with
    | [] -> "no components"
    | rows ->
        String.concat ", "
          (List.filteri (fun i _ -> i < 4) rows
          |> List.map (fun (name, events, seconds) ->
                 Printf.sprintf "%s %.3fs/%d" name seconds events))
  in
  Printf.sprintf
    "%d events in %.3fs busy (%.0f ev/s), %.2f sim-s (%.0fx real time), heap depth <= %d; %s"
    t.events_executed t.busy_s (events_per_sec t) t.sim_s (sim_speedup t) t.max_heap_depth
    top
