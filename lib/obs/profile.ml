type comp = {
  mutable events : int;
  mutable seconds : float;
  mutable scheduled : int;
  mutable cancelled : int;
  mutable minor_words : float;  (* sampled attribution, see gc notes below *)
}

type gc_sample = {
  gc_minor_words : float;
  gc_promoted_words : float;
  gc_major_words : float;
  gc_compactions : int;
}

type t = {
  comps : (string, comp) Hashtbl.t;
  mutable comp_names : string list;  (* registration order, newest first *)
  mutable last_comp_name : string;
  mutable last_comp : comp option;
      (* one-entry memo: consecutive charges usually hit the same
         component, so the per-event Hashtbl lookup is skipped *)
  mutable events_executed : int;
  mutable events_scheduled : int;
  mutable events_cancelled : int;
  mutable busy_s : float;
  mutable max_heap_depth : int;
  mutable sim_s : float;  (* furthest simulated clock seen *)
  (* simulated-packet hot-path counters, fed by lib/net *)
  mutable pkts_enqueued : int;
  mutable pkts_dequeued : int;
  mutable pkts_delivered : int;
  mutable pkts_dropped : int;
  (* sampled allocation accounting: a Gc delta every [gc_sample_every]
     charged events, charged to the component that happened to execute
     the sampling event — per-component words are therefore a sampled
     attribution, while the totals cover every event between the first
     charge and the last flush *)
  mutable gc_last : gc_sample option;
  mutable gc_countdown : int;
  mutable gc_samples : int;
  mutable gc_events_covered : int;
  mutable gc_minor_words : float;
  mutable gc_promoted_words : float;
  mutable gc_major_words : float;
  mutable gc_compactions : int;
}

(* The sanctioned wall-clock read for profiling. ccsim-lint (R2)
   forbids Unix.gettimeofday outside lib/runner and lib/obs so no
   simulated quantity can depend on the host clock; callers that time
   real work (the engine's event loop) go through this choke point. *)
let wall_now = Unix.gettimeofday

(* The sanctioned host-GC read, the allocation-profiling analogue of
   [wall_now]: ccsim-lint (R2) bans Gc.stat/quick_stat/counters reads
   outside lib/runner and lib/obs, so no simulated quantity can depend
   on allocator state. Gc.quick_stat is O(1) (no heap traversal). *)
let gc_sample () =
  let s = Gc.quick_stat () in
  {
    (* quick_stat's minor_words only refreshes at minor collections
       (native code); Gc.minor_words reads the live young-pointer, so
       small windows still see their allocations. Both are O(1). *)
    gc_minor_words = Gc.minor_words ();
    gc_promoted_words = s.Gc.promoted_words;
    gc_major_words = s.Gc.major_words;
    gc_compactions = s.Gc.compactions;
  }

(* One Gc delta per this many charged events: cheap enough to leave on
   (one O(1) read per window) while covering every allocation between
   the first charge and the final flush. *)
let gc_sample_every = 64

let create () =
  {
    comps = Hashtbl.create 16;
    comp_names = [];
    last_comp_name = "";
    last_comp = None;
    events_executed = 0;
    events_scheduled = 0;
    events_cancelled = 0;
    busy_s = 0.0;
    max_heap_depth = 0;
    sim_s = 0.0;
    pkts_enqueued = 0;
    pkts_dequeued = 0;
    pkts_delivered = 0;
    pkts_dropped = 0;
    gc_last = None;
    gc_countdown = gc_sample_every;
    gc_samples = 0;
    gc_events_covered = 0;
    gc_minor_words = 0.0;
    gc_promoted_words = 0.0;
    gc_major_words = 0.0;
    gc_compactions = 0;
  }

let comp_of t comp =
  match t.last_comp with
  | Some c when String.equal t.last_comp_name comp -> c
  | Some _ | None ->
      let c =
        match Hashtbl.find_opt t.comps comp with
        | Some c -> c
        | None ->
            let c =
              { events = 0; seconds = 0.0; scheduled = 0; cancelled = 0; minor_words = 0.0 }
            in
            Hashtbl.add t.comps comp c;
            t.comp_names <- comp :: t.comp_names;
            c
      in
      t.last_comp_name <- comp;
      t.last_comp <- Some c;
      c

let gc_accumulate t (now : gc_sample) (last : gc_sample) =
  t.gc_minor_words <- t.gc_minor_words +. (now.gc_minor_words -. last.gc_minor_words);
  t.gc_promoted_words <-
    t.gc_promoted_words +. (now.gc_promoted_words -. last.gc_promoted_words);
  t.gc_major_words <- t.gc_major_words +. (now.gc_major_words -. last.gc_major_words);
  t.gc_compactions <- t.gc_compactions + (now.gc_compactions - last.gc_compactions)

let record t ~comp ~seconds =
  t.events_executed <- t.events_executed + 1;
  t.busy_s <- t.busy_s +. seconds;
  let c = comp_of t comp in
  c.events <- c.events + 1;
  c.seconds <- c.seconds +. seconds;
  (* allocation sampling rides the charge stream *)
  match t.gc_last with
  | None -> t.gc_last <- Some (gc_sample ())
  | Some last ->
      t.gc_countdown <- t.gc_countdown - 1;
      if t.gc_countdown <= 0 then begin
        let now = gc_sample () in
        gc_accumulate t now last;
        c.minor_words <- c.minor_words +. (now.gc_minor_words -. last.gc_minor_words);
        t.gc_last <- Some now;
        t.gc_samples <- t.gc_samples + 1;
        t.gc_events_covered <- t.gc_events_covered + gc_sample_every;
        t.gc_countdown <- gc_sample_every
      end

let gc_flush t =
  match t.gc_last with
  | None -> ()
  | Some _ when t.gc_countdown = gc_sample_every ->
      (* nothing charged since the last sample: no window to close, and
         skipping keeps repeated flushes from inflating the count *)
      ()
  | Some last ->
      let now = gc_sample () in
      gc_accumulate t now last;
      t.gc_last <- Some now;
      t.gc_samples <- t.gc_samples + 1;
      t.gc_events_covered <- t.gc_events_covered + (gc_sample_every - t.gc_countdown);
      t.gc_countdown <- gc_sample_every

let note_scheduled t ~comp =
  t.events_scheduled <- t.events_scheduled + 1;
  let c = comp_of t comp in
  c.scheduled <- c.scheduled + 1

let note_cancelled t ~comp =
  t.events_cancelled <- t.events_cancelled + 1;
  let c = comp_of t comp in
  c.cancelled <- c.cancelled + 1

let note_heap_depth t depth = if depth > t.max_heap_depth then t.max_heap_depth <- depth
let note_sim_time t clock = if clock > t.sim_s then t.sim_s <- clock

let note_pkt_enqueued t = t.pkts_enqueued <- t.pkts_enqueued + 1
let note_pkt_dequeued t = t.pkts_dequeued <- t.pkts_dequeued + 1
let note_pkt_delivered t = t.pkts_delivered <- t.pkts_delivered + 1
let note_pkt_dropped t = t.pkts_dropped <- t.pkts_dropped + 1

let events_executed t = t.events_executed
let events_scheduled t = t.events_scheduled
let events_cancelled t = t.events_cancelled
let busy_s t = t.busy_s
let max_heap_depth t = t.max_heap_depth
let sim_s t = t.sim_s

let packets_enqueued t = t.pkts_enqueued
let packets_dequeued t = t.pkts_dequeued
let packets_delivered t = t.pkts_delivered
let packets_dropped t = t.pkts_dropped

let events_per_sec t =
  if t.busy_s > 0.0 then float_of_int t.events_executed /. t.busy_s else 0.0

let sim_speedup t = if t.busy_s > 0.0 then t.sim_s /. t.busy_s else 0.0

let packets_per_sec t =
  if t.busy_s > 0.0 then float_of_int t.pkts_delivered /. t.busy_s else 0.0

let minor_words t = t.gc_minor_words
let promoted_words t = t.gc_promoted_words
let major_words t = t.gc_major_words
let compactions t = t.gc_compactions
let gc_samples t = t.gc_samples

let minor_words_per_event t =
  if t.gc_events_covered > 0 then t.gc_minor_words /. float_of_int t.gc_events_covered
  else 0.0

let minor_words_per_packet t =
  if t.pkts_delivered > 0 && t.gc_events_covered > 0 then
    t.gc_minor_words /. float_of_int t.pkts_delivered
  else 0.0

let components t =
  (* Walk the registration-order name list, not the table, so row order
     never depends on hash state (ccsim-lint R2); the sort below then
     makes it independent of registration order too. *)
  let rows =
    List.fold_left
      (fun acc name ->
        let c = Hashtbl.find t.comps name in
        (name, c.events, c.seconds) :: acc)
      [] t.comp_names
  in
  List.sort
    (fun (na, _, sa) (nb, _, sb) ->
      match Float.compare sb sa with 0 -> String.compare na nb | c -> c)
    rows

let component_stats t =
  let rows =
    List.fold_left
      (fun acc name -> (name, Hashtbl.find t.comps name) :: acc)
      [] t.comp_names
  in
  List.sort
    (fun (na, (ca : comp)) (nb, cb) ->
      match Float.compare cb.seconds ca.seconds with 0 -> String.compare na nb | c -> c)
    rows

let to_json t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "{\"events_executed\": %d, \"events_scheduled\": %d, \"events_cancelled\": %d, \
     \"busy_s\": %.6f, \"events_per_sec\": %.1f, \"sim_s\": %.6f, \"sim_speedup\": %.1f, \
     \"max_heap_depth\": %d, \"pkts_enqueued\": %d, \"pkts_dequeued\": %d, \
     \"pkts_delivered\": %d, \"pkts_dropped\": %d, \"pkts_per_sec\": %.1f, \
     \"gc\": {\"samples\": %d, \"minor_words\": %.0f, \"promoted_words\": %.0f, \
     \"major_words\": %.0f, \"compactions\": %d, \"minor_words_per_event\": %.2f, \
     \"minor_words_per_packet\": %.2f}, \"components\": ["
    t.events_executed t.events_scheduled t.events_cancelled t.busy_s (events_per_sec t)
    t.sim_s (sim_speedup t) t.max_heap_depth t.pkts_enqueued t.pkts_dequeued
    t.pkts_delivered t.pkts_dropped (packets_per_sec t) t.gc_samples t.gc_minor_words
    t.gc_promoted_words t.gc_major_words t.gc_compactions (minor_words_per_event t)
    (minor_words_per_packet t);
  List.iteri
    (fun i (name, (c : comp)) ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf
        "{\"component\": %s, \"events\": %d, \"seconds\": %.6f, \"scheduled\": %d, \
         \"cancelled\": %d, \"minor_words\": %.0f}"
        (Json.str name) c.events c.seconds c.scheduled c.cancelled c.minor_words)
    (component_stats t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let summary t =
  let top =
    match components t with
    | [] -> "no components"
    | rows ->
        String.concat ", "
          (List.filteri (fun i _ -> i < 4) rows
          |> List.map (fun (name, events, seconds) ->
                 Printf.sprintf "%s %.3fs/%d" name seconds events))
  in
  Printf.sprintf
    "%d events in %.3fs busy (%.0f ev/s), %.2f sim-s (%.0fx real time), heap depth <= %d, \
     %d pkts delivered (%.0f pkts/s), %.1f minor words/event; %s"
    t.events_executed t.busy_s (events_per_sec t) t.sim_s (sim_speedup t) t.max_heap_depth
    t.pkts_delivered (packets_per_sec t) (minor_words_per_event t) top
