let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let obj_of_strings kvs =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (str v))
    kvs;
  Buffer.add_char buf '}';
  Buffer.contents buf
