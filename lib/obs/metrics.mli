(** Metrics registry: named counters, gauges, and log-scale histograms
    with labels.

    Instruments are registered (or re-fetched) by [(name, labels)]; two
    registrations with the same name and label set share one instrument,
    so independently created components naturally aggregate (e.g. every
    FIFO qdisc increments the same ["qdisc_enqueued_total"]
    [{qdisc=fifo}] counter). Label order is irrelevant.

    Mutation is allocation-free: a counter increment is a single field
    store. Registries are not thread-safe — use one registry per
    concurrently running job (as the CLI does) rather than sharing one
    across pool domains. *)

type t
(** A registry. *)

type labels = (string * string) list

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Get or register. Raises [Invalid_argument] if [(name, labels)] is
    already registered as a different instrument kind. *)

val gauge : t -> ?labels:labels -> string -> gauge
val histogram : t -> ?labels:labels -> string -> histogram
(** Log-scale histogram with power-of-two buckets covering roughly
    [2^-41, 2^23) — nanoseconds to megaseconds when observing seconds.
    Non-positive observations are tallied in a separate zero bucket. *)

val inc : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val observations : histogram -> int
val sum : histogram -> float

val bucket_lower_bound : int -> float
(** Inclusive lower bound of bucket [i]. *)

val bucket_upper_bound : int -> float
(** Exclusive upper bound of bucket [i] (for export consumers). *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([q] within [[0,1]],
    raises [Invalid_argument] otherwise) by linear interpolation within
    the power-of-two bucket covering continuous rank [q * count]; the
    zero bucket contributes rank mass at value 0. Returns 0 for an empty
    histogram. Accurate to within one bucket width (a factor of two). *)

val size : t -> int
(** Number of registered instruments. *)

val find_counter : t -> ?labels:labels -> string -> counter option
val find_gauge : t -> ?labels:labels -> string -> gauge option
val find_histogram : t -> ?labels:labels -> string -> histogram option

val to_ndjson : ?extra:(string * string) list -> t -> string
(** One JSON object per line, in registration order. [extra] key/value
    pairs (e.g. [("job", "fig1")]) are prepended to every line.
    Counter/gauge lines carry ["value"]; histogram lines carry
    ["count"], ["sum"], ["zero"], derived ["p50"]/["p95"]/["p99"]
    quantile estimates (see {!quantile}), and the non-empty ["buckets"]
    as [{"le", "count"}] pairs. *)
