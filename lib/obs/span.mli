(** Sampled packet lifecycle spans.

    A span store records, for a deterministic 1-in-N sample of packets
    (by uid — no RNG is consumed, so arming spans never perturbs
    simulation results), the per-hop lifecycle timestamps
    enqueue → dequeue → serialization-complete → delivery (or drop).
    Each completed record decomposes the hop delay into queueing,
    serialization, and propagation phases; {!Chrome_trace} exports them
    as true Perfetto duration spans.

    Memory is bounded like the flight recorder: the newest [capacity]
    completed records are retained, evictions are counted, and records
    for packets still in flight are finalized as {!Incomplete} when the
    owning [Sim] calls {!seal} at the end of the run. *)

type outcome = Delivered | Dropped | Incomplete

type record = {
  uid : int;
  flow : int;
  seq : int;
  bytes : int;
  kind : string;
  hop : string;  (** link name the packet was crossing *)
  t_enq : float;
  mutable t_deq : float;  (** nan until the packet leaves the queue *)
  mutable t_tx : float;  (** nan until serialization completes *)
  mutable t_rx : float;  (** nan unless delivered *)
  mutable outcome : outcome;
}

type t

val default_capacity : int
(** 65,536 completed records. *)

val create : ?capacity:int -> ?recorder:Recorder.t -> sample:int -> unit -> t
(** [create ~sample ()] records one in [sample] packets ([sample >= 1];
    [1] records every packet). When [recorder] is given, every completed
    span is also journaled as a class-["span"] flight-recorder event
    carrying the phase delays. *)

val sample : t -> int

val hit : t -> uid:int -> bool
(** Whether the packet with [uid] is in the sample ([uid mod sample = 0]). *)

val note_enqueue :
  t -> hop:string -> at:float -> uid:int -> flow:int -> seq:int -> bytes:int ->
  kind:string -> unit
(** Open a record: the sampled packet was accepted into [hop]'s queue. *)

val note_dequeue : t -> hop:string -> at:float -> uid:int -> unit
val note_tx : t -> hop:string -> at:float -> uid:int -> unit
(** Serialization onto the wire finished; propagation begins. *)

val note_delivered : t -> hop:string -> at:float -> uid:int -> unit
(** Close the record as {!Delivered}. Duplicate deliveries (fault
    injection) of an already-closed span are ignored. *)

val note_dropped :
  t -> hop:string -> at:float -> uid:int -> flow:int -> seq:int -> bytes:int ->
  kind:string -> unit
(** Close the open record as {!Dropped}; for tail drops (no open
    record — the packet never entered the queue) a zero-length dropped
    span is synthesized. *)

val seal : t -> now:float -> unit
(** Finalize all still-open records as {!Incomplete} (deterministic
    order). [Sim.run] calls this once at the end of the run. *)

val queue_delay : record -> float option
val serialize_delay : record -> float option
val propagate_delay : record -> float option
(** Phase durations; [None] when the phase boundary was never reached. *)

val complete : record -> bool
(** Delivered with all four timestamps present. *)

val outcome_to_string : outcome -> string

val completed : t -> record list
(** Completion order, oldest first, within the retained window. *)

val completed_count : t -> int
val open_count : t -> int
val started : t -> int
val evicted : t -> int
