(** Minimal JSON rendering helpers shared by the observability exporters.

    Only what NDJSON emission needs: string escaping and flat
    string-to-string objects. Not a JSON library. *)

val escape : string -> string
(** Escape for inclusion inside a double-quoted JSON string. *)

val str : string -> string
(** Quoted, escaped JSON string literal. *)

val obj_of_strings : (string * string) list -> string
(** [{"k":"v",...}] with both keys and values escaped. *)
