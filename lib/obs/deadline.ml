(* Cooperative wall-clock deadline, propagated ambiently (Domain.DLS)
   from the runner pool into any Sim the job creates. The engine polls
   [exceeded] at event boundaries; the wall-clock read goes through
   [Profile.wall_now], the sanctioned choke point, and never feeds any
   simulated quantity — it only decides when to stop early. *)

type t = { wall_deadline_s : float; mutable hit : bool }

let create ~timeout_s =
  if timeout_s <= 0.0 then invalid_arg "Deadline.create: timeout must be positive";
  { wall_deadline_s = Profile.wall_now () +. timeout_s; hit = false }

let exceeded t =
  t.hit
  ||
  if Profile.wall_now () > t.wall_deadline_s then begin
    t.hit <- true;
    true
  end
  else false

let hit t = t.hit

(* Domain-local so pool workers (sibling domains) each see only their
   own job's deadline, mirroring Scope. *)
let key = Domain.DLS.new_key (fun () -> None)

let ambient () : t option = Domain.DLS.get key

let with_deadline d f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some d);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
