(** Ambient observability scope.

    A scope bundles the observability facilities — metrics registry,
    flight recorder, engine profile, timeline, invariant watchdog —
    that instrumented components consult at creation time. The scope is ambient
    (domain-local): wrap a simulation build-and-run in {!with_scope} and
    every [Sim], [Link], qdisc, sender, and CCA created inside picks up
    the instruments automatically, with no constructor plumbing.

    The default scope is {!none}. Components created under it store no
    instruments and their hot paths reduce to a single [match] on
    [None] — the zero-instrumentation path allocates nothing and
    produces byte-identical simulation results.

    Scopes are per-domain ({!Domain.DLS}), so runner pool jobs that each
    set their own scope never observe one another. *)

type t = {
  metrics : Metrics.t option;
  recorder : Recorder.t option;
  profile : Profile.t option;
  timeline : Timeline.t option;
  watchdog : Watchdog.t option;
  span : Span.t option;
}

val none : t

val v :
  ?metrics:Metrics.t ->
  ?recorder:Recorder.t ->
  ?profile:Profile.t ->
  ?timeline:Timeline.t ->
  ?watchdog:Watchdog.t ->
  ?span:Span.t ->
  unit ->
  t
val is_none : t -> bool

val ambient : unit -> t
(** The current domain's scope ({!none} unless inside {!with_scope}). *)

val with_scope : t -> (unit -> 'a) -> 'a
(** Run [f] with [scope] ambient; restores the previous scope on exit,
    including on exceptions. Nestable. *)
