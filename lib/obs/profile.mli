(** Engine profile: event-execution time attributed to components.

    Filled in by {!Ccsim_engine.Sim} when a profile is attached to a
    simulation: each executed event's wall-clock cost is charged to the
    component label the event's callback declared (via
    [Sim.set_component]), or ["other"]. Also tracks the peak event-heap
    depth and the events-per-second throughput of the engine itself. *)

type t

val wall_now : unit -> float
(** The sanctioned wall-clock read ([Unix.gettimeofday]) for profiling
    real work. ccsim-lint rule R2 bans direct wall-clock calls outside
    [lib/runner] and [lib/obs] so simulated results can never depend on
    the host clock; timing code elsewhere must route through this. *)

val create : unit -> t

val record : t -> comp:string -> seconds:float -> unit
(** Charge one executed event to [comp]. *)

val note_heap_depth : t -> int -> unit
(** Update the peak heap depth. *)

val note_sim_time : t -> float -> unit
(** Update the furthest simulated clock reached. *)

val events_executed : t -> int
val busy_s : t -> float
(** Cumulative wall-clock spent executing event callbacks. *)

val max_heap_depth : t -> int
val events_per_sec : t -> float
(** [events_executed / busy_s]; 0 before any event ran. *)

val sim_s : t -> float
(** Furthest simulated clock reached. *)

val sim_speedup : t -> float
(** Simulated seconds per wall-clock second of event execution
    ([sim_s / busy_s]); 0 before any event ran. *)

val components : t -> (string * int * float) list
(** [(component, events, seconds)], most expensive first. *)

val to_json : t -> string
(** A JSON object (no trailing newline) — embedded per job in
    {!Ccsim_runner.Telemetry} reports. *)

val summary : t -> string
(** One-line human-readable digest. *)
