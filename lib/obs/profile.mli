(** Engine profile: event-execution time, simulated-packet throughput,
    and sampled allocation attributed to components.

    Filled in by {!Ccsim_engine.Sim} when a profile is attached to a
    simulation: each executed event's wall-clock cost is charged to the
    component label the event's callback declared (via
    [Sim.set_component]), or ["other"]. Also tracks scheduled/cancelled
    event counts, the peak event-heap depth, simulated packets moved by
    the network layer (fed by [Ccsim_net.Link]), and sampled [Gc]
    deltas so allocation per event and per packet is a first-class
    number. The engine-throughput metrics here (events/s, packets per
    wall-second, minor words per packet) are the probes ROADMAP item 1's
    hot-path work optimizes against; [ccsim perf] snapshots them into
    BENCH_engine.json. *)

type t

type gc_sample = {
  gc_minor_words : float;
  gc_promoted_words : float;
  gc_major_words : float;
  gc_compactions : int;
}

val wall_now : unit -> float
(** The sanctioned wall-clock read ([Unix.gettimeofday]) for profiling
    real work. ccsim-lint rule R2 bans direct wall-clock calls outside
    [lib/runner] and [lib/obs] so simulated results can never depend on
    the host clock; timing code elsewhere must route through this. *)

val gc_sample : unit -> gc_sample
(** The sanctioned host-GC read ([Gc.quick_stat] plus the precise
    [Gc.minor_words], both O(1)) — the
    allocation analogue of {!wall_now}. ccsim-lint rule R2 bans direct
    [Gc] state reads outside [lib/runner] and [lib/obs]; allocation
    measurement elsewhere must route through this. *)

val create : unit -> t

val record : t -> comp:string -> seconds:float -> unit
(** Charge one executed event to [comp]. Every {!gc_sample_every}-th
    charge also takes a [Gc] delta, accumulated into the totals and
    attributed to [comp] (sampled attribution: the charging component
    stands in for the whole window). *)

val gc_sample_every : int
(** Charges between consecutive [Gc] delta samples. *)

val gc_flush : t -> unit
(** Close the current sampling window so the totals cover every event
    up to now. Called by [Sim.run] and [Fluid_engine.run] when they
    return; idempotent (an empty window is not sampled). *)

val note_scheduled : t -> comp:string -> unit
(** Count one scheduled event, attributed to the component whose
    callback (or setup code, ["other"]) scheduled it. *)

val note_cancelled : t -> comp:string -> unit
(** Count one cancelled event, attributed to the cancelling component.
    Only live cancellations count; cancelling twice counts once. *)

val note_heap_depth : t -> int -> unit
(** Update the peak heap depth. *)

val note_sim_time : t -> float -> unit
(** Update the furthest simulated clock reached. *)

val note_pkt_enqueued : t -> unit
(** One packet accepted by a link's qdisc. Single field store. *)

val note_pkt_dequeued : t -> unit
(** One packet dequeued for serialization. *)

val note_pkt_delivered : t -> unit
(** One packet delivered across a link. *)

val note_pkt_dropped : t -> unit
(** One packet tail-dropped at link entry. Internal qdisc head drops
    (CoDel/RED) are visible in qdisc stats and metrics, not here. *)

val events_executed : t -> int
val events_scheduled : t -> int
val events_cancelled : t -> int

val busy_s : t -> float
(** Cumulative wall-clock spent executing event callbacks. *)

val max_heap_depth : t -> int

val events_per_sec : t -> float
(** [events_executed / busy_s]; 0 before any event ran. *)

val sim_s : t -> float
(** Furthest simulated clock reached. *)

val sim_speedup : t -> float
(** Simulated seconds per wall-clock second of event execution
    ([sim_s / busy_s]); 0 before any event ran. *)

val packets_enqueued : t -> int
val packets_dequeued : t -> int
val packets_delivered : t -> int
val packets_dropped : t -> int

val packets_per_sec : t -> float
(** Simulated packets delivered per wall-second of event execution
    ([pkts_delivered / busy_s]); 0 before any event ran. *)

val minor_words : t -> float
(** Minor-heap words allocated across the sampled windows. *)

val promoted_words : t -> float
val major_words : t -> float
val compactions : t -> int
val gc_samples : t -> int

val minor_words_per_event : t -> float
(** Minor words per charged event over the sampled windows; 0 before
    the first window closes. *)

val minor_words_per_packet : t -> float
(** Minor words per delivered packet; 0 when no packet was delivered or
    no window closed. *)

val components : t -> (string * int * float) list
(** [(component, events, seconds)], most expensive first. *)

type comp = {
  mutable events : int;
  mutable seconds : float;
  mutable scheduled : int;
  mutable cancelled : int;
  mutable minor_words : float;
}

val component_stats : t -> (string * comp) list
(** Full per-component rows, most expensive first. [minor_words] is a
    sampled attribution (see {!record}); the rows' sum can undercount
    the profile totals by up to one sampling window. *)

val to_json : t -> string
(** A JSON object (no trailing newline) — embedded per job in
    {!Ccsim_runner.Telemetry} reports. Field order is pinned by a
    golden test; exporters downstream of BENCH_engine.json rely on it. *)

val summary : t -> string
(** One-line human-readable digest. *)
