(** Sampled time series: the trajectory-native counterpart to the
    end-of-run {!Metrics} registry.

    A timeline holds named, labelled series of (virtual-time, value)
    points. Producers either [record] points directly (exact mirrors of
    in-simulation series, e.g. Nimbus elasticity estimates) or register
    probe closures with the engine, which samples them on a periodic
    sim-clock driver at the timeline's [interval].

    Memory is bounded per series: past [capacity] points a series is
    decimated — every other retained point is dropped and the acceptance
    stride doubles — so a series always spans the whole run with
    gracefully degrading resolution. Series shorter than [capacity]
    (e.g. elasticity estimates at one point per 0.5 s) are kept exactly,
    which is what lets [ccsim analyze] reproduce in-simulation
    classifications bit-for-bit from an exported file.

    Out-of-order points are dropped and latched as an ordering
    violation, which {!Watchdog.watch_timeline} turns into a failing
    invariant. *)

type t

type series

type labels = (string * string) list

val default_interval : float
(** 0.1 s. *)

val default_capacity : int
(** 4096 points per series before decimation. *)

val create : ?interval:float -> ?capacity:int -> unit -> t
(** Raises [Invalid_argument] if [interval <= 0] or [capacity < 2]. *)

val interval : t -> float
(** The sampling interval engine drivers should use. *)

val series : t -> ?labels:labels -> string -> series
(** Get or register the series [(name, labels)]. Label order is
    irrelevant. *)

val record : series -> time:float -> value:float -> unit
(** Append a point. Points must arrive in non-decreasing time order per
    series; an out-of-order point is dropped and latches the timeline's
    {!ordering_violation}. *)

val name : series -> string
val labels : series -> labels

val points : series -> (float * float) array
(** Retained points, oldest first (a copy). *)

val length : series -> int
val stride : series -> int
(** Current decimation stride: 1 while under capacity, doubling on each
    compaction. *)

val all_series : t -> series list
(** Registration order. *)

val next_sim_id : t -> int
(** Fresh 1-based id for tagging the series of one simulation instance;
    a job that builds several sims (e.g. fig3's five scenarios) keeps
    their series distinct. *)

val ordering_violation : t -> (string * float * float) option
(** [(series, last_time, offending_time)] of the first out-of-order
    point offered to any series, if one ever was. *)

val to_ndjson : ?extra:(string * string) list -> t -> string
(** One JSON object per point:
    [{"series":s,"labels":{...},"t":time,"v":value}], series in
    registration order, points oldest first. [extra] pairs (e.g.
    [("job", "fig3")]) are prepended to every line. Floats are printed
    with round-trip precision. *)

val to_csv : ?header:bool -> ?extra:(string * string) list -> t -> string
(** Columns: any [extra] keys, then [series,labels,t,v]; [labels] is
    rendered as [k=v;k=v]. *)
