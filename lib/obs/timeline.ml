type labels = (string * string) list

(* A series stores (time, value) pairs in a pair of parallel arrays.
   Memory is bounded: when a series reaches [capacity] points it is
   compacted by keeping every other point and doubling the acceptance
   stride, so a series always covers the whole run at a resolution that
   degrades gracefully (classic streaming decimation). The stride gates
   on the count of points *offered*, which keeps the retained points
   aligned on a regular sub-grid of the sampling grid. *)
type series = {
  s_name : string;
  s_labels : labels;
  capacity : int;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
  mutable stride : int;  (* keep 1 of every [stride] offered points *)
  mutable offered : int;
  mutable last_time : float;
  violation : (string * float * float) option ref;
      (* shared with the owning timeline: (series, last_time, offending_time) *)
}

type key = { k_name : string; k_labels : labels }

type t = {
  interval : float;
  capacity : int;
  table : (key, series) Hashtbl.t;
  mutable order : series list;  (* registration order, newest first *)
  mutable sim_ids : int;
  violation : (string * float * float) option ref;
}

let default_interval = 0.1
let default_capacity = 4096

let create ?(interval = default_interval) ?(capacity = default_capacity) () =
  if interval <= 0.0 then invalid_arg "Timeline.create: interval must be positive";
  if capacity < 2 then invalid_arg "Timeline.create: capacity must be at least 2";
  {
    interval;
    capacity;
    table = Hashtbl.create 64;
    order = [];
    sim_ids = 0;
    violation = ref None;
  }

let interval t = t.interval

let next_sim_id t =
  t.sim_ids <- t.sim_ids + 1;
  t.sim_ids

let normalize_labels labels = List.sort (fun ((a : string), _) (b, _) -> String.compare a b) labels

let series t ?(labels = []) name =
  let key = { k_name = name; k_labels = normalize_labels labels } in
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
      let s =
        {
          s_name = name;
          s_labels = key.k_labels;
          capacity = t.capacity;
          times = Array.make 16 0.0;
          values = Array.make 16 0.0;
          len = 0;
          stride = 1;
          offered = 0;
          last_time = neg_infinity;
          violation = t.violation;
        }
      in
      Hashtbl.add t.table key s;
      t.order <- s :: t.order;
      s

let compact s =
  (* Keep points at even offered-offsets: they sit on the doubled
     stride's sub-grid, so future acceptances stay aligned. *)
  let kept = (s.len + 1) / 2 in
  for i = 0 to kept - 1 do
    s.times.(i) <- s.times.(2 * i);
    s.values.(i) <- s.values.(2 * i)
  done;
  s.len <- kept;
  s.stride <- s.stride * 2

let push s ~time ~value =
  if s.len = s.capacity then compact s;
  if s.len = Array.length s.times then begin
    let n = min s.capacity (2 * Array.length s.times) in
    let times = Array.make n 0.0 and values = Array.make n 0.0 in
    Array.blit s.times 0 times 0 s.len;
    Array.blit s.values 0 values 0 s.len;
    s.times <- times;
    s.values <- values
  end;
  s.times.(s.len) <- time;
  s.values.(s.len) <- value;
  s.len <- s.len + 1

let record s ~time ~value =
  if time < s.last_time then begin
    (* Out-of-order samples are dropped but remembered: the watchdog's
       telemetry-ordering invariant reads this flag. *)
    if Option.is_none !(s.violation) then s.violation := Some (s.s_name, s.last_time, time)
  end
  else begin
    s.last_time <- time;
    if s.offered mod s.stride = 0 then push s ~time ~value;
    s.offered <- s.offered + 1
  end

let name s = s.s_name
let labels s = s.s_labels
let length s = s.len
let stride s = s.stride
let points s = Array.init s.len (fun i -> (s.times.(i), s.values.(i)))
let all_series t = List.rev t.order
let ordering_violation t = !(t.violation)

(* Floats are printed with the shortest of %.12g/%.17g that parses back
   to the same bits, so offline analysis over an exported series sees
   exactly the values the simulation produced. *)
let float_rt v =
  if not (Float.is_finite v) then "null"
  else
    let s = Printf.sprintf "%.12g" v in
    if Float.equal (float_of_string s) v then s else Printf.sprintf "%.17g" v

let line_to buf ?(extra = []) s i =
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Json.str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Json.str v);
      Buffer.add_char buf ',')
    extra;
  Printf.bprintf buf "\"series\":%s,\"labels\":%s,\"t\":%s,\"v\":%s" (Json.str s.s_name)
    (Json.obj_of_strings s.s_labels)
    (float_rt s.times.(i))
    (float_rt s.values.(i));
  Buffer.add_string buf "}\n"

let to_ndjson ?extra t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      for i = 0 to s.len - 1 do
        line_to buf ?extra s i
      done)
    (all_series t);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv ?(header = true) ?(extra = []) t =
  let buf = Buffer.create 4096 in
  if header then begin
    List.iter (fun (k, _) -> Printf.bprintf buf "%s," (csv_escape k)) extra;
    Buffer.add_string buf "series,labels,t,v\n"
  end;
  List.iter
    (fun s ->
      let label_cell =
        String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) s.s_labels)
      in
      for i = 0 to s.len - 1 do
        List.iter (fun (_, v) -> Printf.bprintf buf "%s," (csv_escape v)) extra;
        Printf.bprintf buf "%s,%s,%s,%s\n" (csv_escape s.s_name) (csv_escape label_cell)
          (float_rt s.times.(i))
          (float_rt s.values.(i))
      done)
    (all_series t);
  Buffer.contents buf
