type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type event = {
  at : float;
  severity : severity;
  kind : string;
  point : string;
  detail : string;
  fields : (string * string) list;
}

type t = {
  capacity : int;
  level : severity;
  buffer : event Queue.t;
  mutable total : int;
}

let default_capacity = 200_000

let create ?(capacity = default_capacity) ?(level = Debug) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  { capacity; level; buffer = Queue.create (); total = 0 }

let record t ~at ?(severity = Info) ~kind ~point ?(fields = []) detail =
  if severity_rank severity >= severity_rank t.level then begin
    Queue.push { at; severity; kind; point; detail; fields } t.buffer;
    t.total <- t.total + 1;
    if Queue.length t.buffer > t.capacity then ignore (Queue.pop t.buffer)
  end

let events t = List.of_seq (Queue.to_seq t.buffer)
let count t = t.total
let retained t = Queue.length t.buffer
let evicted t = t.total - Queue.length t.buffer
let filter t ~f = List.filter f (events t)
let by_kind t kind = filter t ~f:(fun e -> String.equal e.kind kind)

let event_to_ndjson buf ?(extra = []) e =
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Json.str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Json.str v);
      Buffer.add_char buf ',')
    extra;
  Printf.bprintf buf "\"at\":%.9f,\"severity\":%s,\"class\":%s,\"point\":%s,\"detail\":%s" e.at
    (Json.str (severity_to_string e.severity))
    (Json.str e.kind) (Json.str e.point) (Json.str e.detail);
  if (match e.fields with [] -> false | _ :: _ -> true) then
    Printf.bprintf buf ",\"fields\":%s" (Json.obj_of_strings e.fields);
  Buffer.add_string buf "}\n"

let to_ndjson ?extra t =
  let buf = Buffer.create 4096 in
  Queue.iter (fun e -> event_to_ndjson buf ?extra e) t.buffer;
  Buffer.contents buf

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_header ?(extra = []) () =
  String.concat "," (List.map fst extra @ [ "at"; "severity"; "class"; "point"; "detail"; "fields" ])
  ^ "\n"

let to_csv ?(header = true) ?(extra = []) t =
  let buf = Buffer.create 4096 in
  if header then Buffer.add_string buf (csv_header ~extra ());
  Queue.iter
    (fun e ->
      let fields = String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) e.fields) in
      let cells =
        List.map snd extra
        @ [
            Printf.sprintf "%.9f" e.at;
            severity_to_string e.severity;
            e.kind;
            e.point;
            e.detail;
            fields;
          ]
      in
      Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
      Buffer.add_char buf '\n')
    t.buffer;
  Buffer.contents buf
