(** Online invariant watchdog.

    Components register named invariant checks — closures returning
    [None] while the invariant holds, or [Some detail] when it is
    broken. The engine runs every check on a periodic sim-clock driver
    (and once more at the end of a run); what happens on a failure is
    the watchdog's {!policy}:

    - [Abort] (default): the first failure raises {!Violation} with a
      structured record, aborting the run — the historical behaviour.
    - [Quarantine]: the run continues; violations are collected
      ({!violations}) and the run is flagged {!degraded}, which the
      runner report surfaces instead of killing the job.
    - [Warn]: the run continues and violations are collected, but the
      run is not marked degraded — observe-only mode.

    Checks are written against physically conserved quantities (packet
    and byte conservation per link, queue backlog within capacity,
    cwnd positivity, simulation-time monotonicity, telemetry sample
    ordering), so a watchdog pass is evidence the simulation stayed
    mechanically sane — not just that it produced plausible numbers. *)

type violation = {
  at : float;  (** virtual time of the failed check *)
  component : string;  (** who registered the invariant, e.g. ["link/qdisc:fifo"] *)
  invariant : string;  (** e.g. ["packet_conservation"] *)
  message : string;  (** detail from the check *)
}

exception Violation of violation
(** Registered with [Printexc] so runner job errors carry the one-line
    report. *)

type policy = Warn | Quarantine | Abort

val policy_to_string : policy -> string
val policy_of_string : string -> policy option
(** ["warn"] / ["quarantine"] / ["abort"]; [None] otherwise. *)

type t

val default_interval : float
(** 0.25 s between check sweeps. *)

val create : ?interval:float -> ?policy:policy -> unit -> t
(** Default policy [Abort]. Raises [Invalid_argument] if
    [interval <= 0]. *)

val interval : t -> float
val policy : t -> policy

val register : t -> component:string -> invariant:string -> (unit -> string option) -> unit
(** Add a check. The closure runs on every sweep; return [Some detail]
    to fail the run (under [Abort]) or flag it (otherwise). *)

val check_now : t -> now:float -> unit
(** Run every registered check (registration order). Under [Abort]:
    raises {!Violation} on the first failure — and on every subsequent
    call once tripped, so a violation cannot be outrun. Under [Warn] /
    [Quarantine]: records failures (deduplicated by component and
    invariant, capped) and returns. *)

val violate : t -> now:float -> component:string -> invariant:string -> string -> unit
(** Fail immediately from inline code (e.g. the engine's monotonicity
    check) without registering a closure; raises under [Abort],
    records otherwise. *)

val watch_timeline : t -> Timeline.t -> unit
(** Register the telemetry-ordering invariant over a timeline's
    {!Timeline.ordering_violation} latch. *)

val violation : t -> violation option
(** The first violation, if the watchdog tripped. *)

val violations : t -> violation list
(** Every recorded violation, oldest first — at most one per
    (component, invariant) pair, capped. Under [Abort] this holds at
    most the violation that raised. *)

val degraded : t -> bool
(** Tripped under the [Quarantine] policy: the run completed but its
    results must be treated as degraded. *)

val checks : t -> int
(** Number of registered checks. *)

val checks_run : t -> int
(** Total individual check executions so far. *)

val one_line : violation -> string
val report : violation -> string
(** Multi-line structured report for stderr. *)
