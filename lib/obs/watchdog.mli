(** Online invariant watchdog.

    Components register named invariant checks — closures returning
    [None] while the invariant holds, or [Some detail] when it is
    broken. The engine runs every check on a periodic sim-clock driver
    (and once more at the end of a run); the first failure raises
    {!Violation} with a structured record, aborting the run.

    Checks are written against physically conserved quantities (packet
    and byte conservation per link, queue backlog within capacity,
    cwnd positivity, simulation-time monotonicity, telemetry sample
    ordering), so a watchdog pass is evidence the simulation stayed
    mechanically sane — not just that it produced plausible numbers. *)

type violation = {
  at : float;  (** virtual time of the failed check *)
  component : string;  (** who registered the invariant, e.g. ["link/qdisc:fifo"] *)
  invariant : string;  (** e.g. ["packet_conservation"] *)
  message : string;  (** detail from the check *)
}

exception Violation of violation
(** Registered with [Printexc] so runner job errors carry the one-line
    report. *)

type t

val default_interval : float
(** 0.25 s between check sweeps. *)

val create : ?interval:float -> unit -> t
(** Raises [Invalid_argument] if [interval <= 0]. *)

val interval : t -> float

val register : t -> component:string -> invariant:string -> (unit -> string option) -> unit
(** Add a check. The closure runs on every sweep; return [Some detail]
    to fail the run. *)

val check_now : t -> now:float -> unit
(** Run every registered check (registration order); raises
    {!Violation} on the first failure — and on every subsequent call
    once tripped, so a violation cannot be outrun. *)

val violate : t -> now:float -> component:string -> invariant:string -> string -> 'a
(** Fail immediately from inline code (e.g. the engine's monotonicity
    check) without registering a closure. *)

val watch_timeline : t -> Timeline.t -> unit
(** Register the telemetry-ordering invariant over a timeline's
    {!Timeline.ordering_violation} latch. *)

val violation : t -> violation option
(** The first violation, if the watchdog tripped. *)

val checks : t -> int
(** Number of registered checks. *)

val checks_run : t -> int
(** Total individual check executions so far. *)

val one_line : violation -> string
val report : violation -> string
(** Multi-line structured report for stderr. *)
