(* Sampled packet lifecycle spans.

   A span follows one sampled packet across one hop (a named link and
   its queue), recording the four lifecycle timestamps — enqueue,
   dequeue, serialization complete, delivery — so the per-hop delay
   decomposes into queueing, serialization, and propagation phases.
   Sampling is deterministic 1-in-N by packet uid (uid mod N = 0): no
   RNG is consumed, so arming spans never perturbs simulation results,
   and the same uid is sampled at every hop it crosses, giving
   end-to-end coverage for the sampled packets.

   Memory is bounded like the flight recorder: the newest [capacity]
   completed spans are retained and evictions are counted. Records for
   packets still in flight live in [open_tbl] until the owning [Sim]
   seals the span store at the end of the run. *)

type outcome = Delivered | Dropped | Incomplete

type record = {
  uid : int;
  flow : int;
  seq : int;
  bytes : int;
  kind : string;
  hop : string;
  t_enq : float;
  mutable t_deq : float;  (* nan until the phase boundary is reached *)
  mutable t_tx : float;
  mutable t_rx : float;
  mutable outcome : outcome;
}

type t = {
  sample : int;  (* record 1-in-[sample] packets by uid *)
  capacity : int;
  recorder : Recorder.t option;
  open_tbl : ((int * string), record) Hashtbl.t;  (* (uid, hop) -> open record *)
  completed : record Queue.t;
  mutable completed_n : int;
  mutable started_n : int;
  mutable evicted_n : int;
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) ?recorder ~sample () =
  if sample < 1 then invalid_arg "Span.create: sample must be >= 1";
  if capacity < 1 then invalid_arg "Span.create: capacity must be >= 1";
  {
    sample;
    capacity;
    recorder;
    open_tbl = Hashtbl.create 256;
    completed = Queue.create ();
    completed_n = 0;
    started_n = 0;
    evicted_n = 0;
  }

let sample t = t.sample
let hit t ~uid = uid mod t.sample = 0

let outcome_to_string = function
  | Delivered -> "delivered"
  | Dropped -> "dropped"
  | Incomplete -> "incomplete"

(* Phase delays; [None] while the phase boundary was never reached
   (dropped or in-flight packets have partial lifecycles). *)
let phase lo hi =
  if Float.is_nan lo || Float.is_nan hi then None else Some (hi -. lo)

let queue_delay r = phase r.t_enq r.t_deq
let serialize_delay r = phase r.t_deq r.t_tx
let propagate_delay r = phase r.t_tx r.t_rx

let complete r = (not (Float.is_nan r.t_rx)) && (match r.outcome with Delivered -> true | _ -> false)

let journal t (r : record) ~at =
  match t.recorder with
  | None -> ()
  | Some rec_ ->
      let fs = Printf.sprintf "%.9f" in
      let fields =
        [
          ("hop", r.hop);
          ("uid", string_of_int r.uid);
          ("flow", string_of_int r.flow);
          ("seq", string_of_int r.seq);
        ]
        @ (match queue_delay r with Some d -> [ ("queue_s", fs d) ] | None -> [])
        @ (match serialize_delay r with Some d -> [ ("serialize_s", fs d) ] | None -> [])
        @ match propagate_delay r with Some d -> [ ("propagate_s", fs d) ] | None -> []
      in
      Recorder.record rec_ ~at ~severity:Recorder.Debug ~kind:"span" ~point:r.hop
        ~fields
        (outcome_to_string r.outcome)

let finish t (r : record) ~at outcome =
  r.outcome <- outcome;
  Hashtbl.remove t.open_tbl (r.uid, r.hop);
  Queue.push r t.completed;
  t.completed_n <- t.completed_n + 1;
  if t.completed_n > t.capacity then begin
    ignore (Queue.pop t.completed);
    t.completed_n <- t.completed_n - 1;
    t.evicted_n <- t.evicted_n + 1
  end;
  journal t r ~at

let note_enqueue t ~hop ~at ~uid ~flow ~seq ~bytes ~kind =
  let key = (uid, hop) in
  if not (Hashtbl.mem t.open_tbl key) then begin
    let r =
      {
        uid;
        flow;
        seq;
        bytes;
        kind;
        hop;
        t_enq = at;
        t_deq = Float.nan;
        t_tx = Float.nan;
        t_rx = Float.nan;
        outcome = Incomplete;
      }
    in
    Hashtbl.add t.open_tbl key r;
    t.started_n <- t.started_n + 1
  end

let note_dequeue t ~hop ~at ~uid =
  match Hashtbl.find_opt t.open_tbl (uid, hop) with
  | Some r when Float.is_nan r.t_deq -> r.t_deq <- at
  | Some _ | None -> ()

let note_tx t ~hop ~at ~uid =
  match Hashtbl.find_opt t.open_tbl (uid, hop) with
  | Some r when Float.is_nan r.t_tx -> r.t_tx <- at
  | Some _ | None -> ()

let note_delivered t ~hop ~at ~uid =
  match Hashtbl.find_opt t.open_tbl (uid, hop) with
  | Some r ->
      if Float.is_nan r.t_rx then r.t_rx <- at;
      finish t r ~at Delivered
  | None -> ()  (* duplicate delivery of an already-closed span *)

let note_dropped t ~hop ~at ~uid ~flow ~seq ~bytes ~kind =
  match Hashtbl.find_opt t.open_tbl (uid, hop) with
  | Some r -> finish t r ~at Dropped
  | None ->
      (* Tail drop: the packet never entered the queue, so there is no
         open record — synthesize a zero-length dropped span. *)
      let r =
        {
          uid;
          flow;
          seq;
          bytes;
          kind;
          hop;
          t_enq = at;
          t_deq = Float.nan;
          t_tx = Float.nan;
          t_rx = Float.nan;
          outcome = Dropped;
        }
      in
      t.started_n <- t.started_n + 1;
      finish t r ~at Dropped

(* End-of-run flush ("seal"): packets still queued or in flight when the
   simulation stops become [Incomplete] completed spans, so exporters
   see every started span exactly once. Driven by [Sim.run]. *)
let seal t ~now =
  (* lint: allow R2 — collected in hash order, sorted on (uid, hop) below *)
  let opens = Hashtbl.fold (fun _ r acc -> r :: acc) t.open_tbl [] in
  let opens =
    List.sort
      (fun (a : record) b ->
        match compare a.uid b.uid with 0 -> String.compare a.hop b.hop | c -> c)
      opens
  in
  List.iter (fun r -> finish t r ~at:now Incomplete) opens

let completed t = List.of_seq (Queue.to_seq t.completed)
let completed_count t = t.completed_n
let open_count t = Hashtbl.length t.open_tbl
let started t = t.started_n
let evicted t = t.evicted_n
