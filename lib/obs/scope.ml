type t = {
  metrics : Metrics.t option;
  recorder : Recorder.t option;
  profile : Profile.t option;
  timeline : Timeline.t option;
  watchdog : Watchdog.t option;
  span : Span.t option;
}

let none =
  {
    metrics = None;
    recorder = None;
    profile = None;
    timeline = None;
    watchdog = None;
    span = None;
  }

let v ?metrics ?recorder ?profile ?timeline ?watchdog ?span () =
  { metrics; recorder; profile; timeline; watchdog; span }

let is_none t =
  match t with
  | {
   metrics = None;
   recorder = None;
   profile = None;
   timeline = None;
   watchdog = None;
   span = None;
  } ->
      true
  | _ -> false

(* Domain-local so runner pool workers (sibling domains) each see their
   own scope: a job thunk wrapping itself in [with_scope] instruments
   only the components it creates, never a concurrently running job's. *)
let key = Domain.DLS.new_key (fun () -> none)

let ambient () = Domain.DLS.get key

let with_scope scope f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key scope;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
