(** Cooperative wall-clock deadline for runner jobs.

    OCaml domains cannot be interrupted, so job timeouts are
    cooperative: the pool arms a deadline around the job thunk
    ({!with_deadline}), and every {!Ccsim_engine.Sim.run} inside polls
    {!exceeded} at event boundaries. When the deadline passes, the sim
    stops cleanly between events, the job's collection code still runs,
    and its partial metrics/series are salvaged instead of discarded —
    the result is reported as degraded rather than lost.

    The wall-clock read goes through {!Profile.wall_now} (the
    ccsim-lint-sanctioned helper) and never influences any simulated
    quantity: a run that finishes before its deadline is byte-identical
    to an undeadlined run. *)

type t

val create : timeout_s:float -> t
(** Deadline [timeout_s] seconds of wall-clock time from now. Raises
    [Invalid_argument] if the timeout is not positive. *)

val exceeded : t -> bool
(** Has the deadline passed? Latches: once true, always true (and
    {!hit} reports it without further clock reads). *)

val hit : t -> bool
(** Whether {!exceeded} ever returned true — i.e. whether some run was
    (or should have been) cut short. Never reads the clock. *)

val ambient : unit -> t option
(** The calling domain's armed deadline, if any. *)

val with_deadline : t -> (unit -> 'a) -> 'a
(** Run [f] with the deadline armed for this domain; restores the
    previous deadline on exit, including on exceptions. *)
