(** Flight recorder: a bounded, structured, severity-leveled event
    journal.

    Generalizes packet tracing: packet events are one event class
    alongside CCA decisions, qdisc drops, and application state changes.
    Each event carries a virtual timestamp, a severity, a class (e.g.
    ["packet"], ["qdisc"], ["cca"], ["app"]), a [point] naming where in
    the system it was observed, a free-form detail string, and optional
    structured key/value fields.

    Memory is bounded: the journal keeps the most recent [capacity]
    events and counts evictions, exactly like {!Ccsim_net.Trace}. *)

type severity = Debug | Info | Warn | Error

type event = {
  at : float;  (** virtual time of the event *)
  severity : severity;
  kind : string;  (** event class; exported as ["class"] *)
  point : string;  (** component/location that recorded it *)
  detail : string;
  fields : (string * string) list;
}

type t

val default_capacity : int
(** 200,000 events. *)

val create : ?capacity:int -> ?level:severity -> unit -> t
(** Keeps the most recent [capacity] events (default
    {!default_capacity}); events below [level] (default [Debug], i.e.
    keep everything) are discarded at record time without counting. *)

val record :
  t -> at:float -> ?severity:severity -> kind:string -> point:string ->
  ?fields:(string * string) list -> string -> unit
(** Default severity [Info]. *)

val events : t -> event list
(** Oldest first, within the retained window. *)

val count : t -> int
(** Total events accepted (including evicted ones). *)

val retained : t -> int
val evicted : t -> int
val filter : t -> f:(event -> bool) -> event list
val by_kind : t -> string -> event list

val severity_to_string : severity -> string

val to_ndjson : ?extra:(string * string) list -> t -> string
(** One JSON object per line, oldest first. [extra] pairs (e.g.
    [("job", "fig1")]) are prepended to every line. The class is
    exported under the key ["class"]. *)

val to_csv : ?header:bool -> ?extra:(string * string) list -> t -> string
(** Columns: any [extra] keys, then
    [at,severity,class,point,detail,fields]; [fields] is rendered as
    [k=v;k=v]. [header] (default true) controls the header row. *)
