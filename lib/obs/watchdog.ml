type violation = {
  at : float;
  component : string;
  invariant : string;
  message : string;
}

exception Violation of violation

type check = { c_component : string; c_invariant : string; run : unit -> string option }

type t = {
  interval : float;
  mutable checks : check list;  (* registration order, newest first *)
  mutable tripped : violation option;
  mutable checks_run : int;
}

let default_interval = 0.25

let create ?(interval = default_interval) () =
  if interval <= 0.0 then invalid_arg "Watchdog.create: interval must be positive";
  { interval; checks = []; tripped = None; checks_run = 0 }

let interval t = t.interval
let checks t = List.length t.checks
let checks_run t = t.checks_run
let violation t = t.tripped

let register t ~component ~invariant run =
  t.checks <- { c_component = component; c_invariant = invariant; run } :: t.checks

let violate t ~now ~component ~invariant message =
  let v = { at = now; component; invariant; message } in
  if t.tripped = None then t.tripped <- Some v;
  raise (Violation v)

let check_now t ~now =
  match t.tripped with
  | Some v -> raise (Violation v)
  | None ->
      List.iter
        (fun c ->
          t.checks_run <- t.checks_run + 1;
          match c.run () with
          | None -> ()
          | Some msg -> violate t ~now ~component:c.c_component ~invariant:c.c_invariant msg)
        (List.rev t.checks)

let watch_timeline t tl =
  register t ~component:"timeline" ~invariant:"sample_ordering" (fun () ->
      match Timeline.ordering_violation tl with
      | None -> None
      | Some (series, last, offending) ->
          Some
            (Printf.sprintf "series %S went backwards: %.9f after %.9f" series offending
               last))

let one_line v =
  Printf.sprintf "watchdog violation [component=%s invariant=%s at=%.6f]: %s" v.component
    v.invariant v.at v.message

let report v =
  Printf.sprintf
    "watchdog: invariant violated at t=%.6f\n  component: %s\n  invariant: %s\n  detail: %s\n"
    v.at v.component v.invariant v.message

(* Failed runner jobs carry [Printexc.to_string] of the exception, so a
   watchdog abort surfaces its structured report in job errors, the
   telemetry table, and the JSON run report. *)
let () =
  Printexc.register_printer (function Violation v -> Some (one_line v) | _ -> None)
