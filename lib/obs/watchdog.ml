type violation = {
  at : float;
  component : string;
  invariant : string;
  message : string;
}

exception Violation of violation

type policy = Warn | Quarantine | Abort

let policy_to_string = function
  | Warn -> "warn"
  | Quarantine -> "quarantine"
  | Abort -> "abort"

let policy_of_string = function
  | "warn" -> Some Warn
  | "quarantine" -> Some Quarantine
  | "abort" -> Some Abort
  | _ -> None

type check = { c_component : string; c_invariant : string; run : unit -> string option }

(* Under [Warn]/[Quarantine] a broken invariant keeps failing on every
   sweep; violations are deduplicated by (component, invariant) and the
   list is capped so a long run cannot accumulate unbounded reports. *)
let max_violations = 64

type t = {
  interval : float;
  policy : policy;
  mutable checks : check list;  (* registration order, newest first *)
  mutable tripped : violation option;
  mutable noted : violation list;  (* newest first, deduped, capped *)
  mutable checks_run : int;
}

let default_interval = 0.25

let create ?(interval = default_interval) ?(policy = Abort) () =
  if interval <= 0.0 then invalid_arg "Watchdog.create: interval must be positive";
  { interval; policy; checks = []; tripped = None; noted = []; checks_run = 0 }

let interval t = t.interval
let policy t = t.policy
let checks t = List.length t.checks
let checks_run t = t.checks_run
let violation t = t.tripped
let violations t = List.rev t.noted
let degraded t = (match t.policy with Quarantine -> Option.is_some t.tripped | Warn | Abort -> false)

let note t v =
  if Option.is_none t.tripped then t.tripped <- Some v;
  let dup =
    List.exists
      (fun n -> String.equal n.component v.component && String.equal n.invariant v.invariant)
      t.noted
  in
  if (not dup) && List.length t.noted < max_violations then t.noted <- v :: t.noted

let violate t ~now ~component ~invariant message =
  let v = { at = now; component; invariant; message } in
  note t v;
  match t.policy with Abort -> raise (Violation v) | Warn | Quarantine -> ()

let check_now t ~now =
  match (t.tripped, t.policy) with
  | Some v, Abort -> raise (Violation v)
  | _, _ ->
      List.iter
        (fun c ->
          t.checks_run <- t.checks_run + 1;
          match c.run () with
          | None -> ()
          | Some msg -> violate t ~now ~component:c.c_component ~invariant:c.c_invariant msg)
        (List.rev t.checks)

let register t ~component ~invariant run =
  t.checks <- { c_component = component; c_invariant = invariant; run } :: t.checks

let watch_timeline t tl =
  register t ~component:"timeline" ~invariant:"sample_ordering" (fun () ->
      match Timeline.ordering_violation tl with
      | None -> None
      | Some (series, last, offending) ->
          Some
            (Printf.sprintf "series %S went backwards: %.9f after %.9f" series offending
               last))

let one_line v =
  Printf.sprintf "watchdog violation [component=%s invariant=%s at=%.6f]: %s" v.component
    v.invariant v.at v.message

let report v =
  Printf.sprintf
    "watchdog: invariant violated at t=%.6f\n  component: %s\n  invariant: %s\n  detail: %s\n"
    v.at v.component v.invariant v.message

(* Failed runner jobs carry [Printexc.to_string] of the exception, so a
   watchdog abort surfaces its structured report in job errors, the
   telemetry table, and the JSON run report. *)
let () =
  Printexc.register_printer (function Violation v -> Some (one_line v) | _ -> None)
