(* Chrome trace-event ("JSON array") exporter, loadable in Perfetto and
   chrome://tracing. Each job becomes one process: its timeline series
   become counter tracks (ph "C"), its flight-recorder events become
   instant events (ph "i"), and one duration event (ph "X") spans the
   whole run so the process row has visible extent. Timestamps are
   virtual seconds scaled to microseconds, the format's native unit. *)

let ts_of seconds = seconds *. 1e6

let num v =
  if not (Float.is_finite v) then "0"
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let track_name s =
  match Timeline.labels s with
  | [] -> Timeline.name s
  | labels ->
      Printf.sprintf "%s{%s}" (Timeline.name s)
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let severity_arg = function
  | Recorder.Debug -> "debug"
  | Recorder.Info -> "info"
  | Recorder.Warn -> "warn"
  | Recorder.Error -> "error"

let to_string jobs =
  let buf = Buffer.create 8192 in
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (job_name, timeline, recorder) ->
      let pid = i + 1 in
      event "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}"
        pid (Json.str job_name);
      (* Span of the whole job, for a visible process row. *)
      let t_min = ref infinity and t_max = ref neg_infinity in
      let see t =
        if t < !t_min then t_min := t;
        if t > !t_max then t_max := t
      in
      Option.iter
        (fun tl ->
          List.iter
            (fun s -> Array.iter (fun (t, _) -> see t) (Timeline.points s))
            (Timeline.all_series tl))
        timeline;
      Option.iter
        (fun r -> List.iter (fun (e : Recorder.event) -> see e.at) (Recorder.events r))
        recorder;
      if !t_max >= !t_min then
        event "{\"name\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":0}"
          (Json.str job_name) (ts_of !t_min)
          (ts_of (!t_max -. !t_min))
          pid;
      Option.iter
        (fun tl ->
          List.iter
            (fun s ->
              let name = Json.str (track_name s) in
              Array.iter
                (fun (t, v) ->
                  event "{\"name\":%s,\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"args\":{\"value\":%s}}"
                    name (ts_of t) pid (num v))
                (Timeline.points s))
            (Timeline.all_series tl))
        timeline;
      Option.iter
        (fun r ->
          List.iter
            (fun (e : Recorder.event) ->
              let args =
                (("point", e.point) :: ("severity", severity_arg e.severity) :: e.fields)
                |> List.map (fun (k, v) -> Printf.sprintf "%s:%s" (Json.str k) (Json.str v))
                |> String.concat ","
              in
              event "{\"name\":%s,\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,\"tid\":1,\"s\":\"p\",\"args\":{%s}}"
                (Json.str (e.kind ^ ":" ^ e.detail))
                (ts_of e.at) pid args)
            (Recorder.events r))
        recorder)
    jobs;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
