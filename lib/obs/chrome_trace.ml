(* Chrome trace-event ("JSON array") exporter, loadable in Perfetto and
   chrome://tracing. Each job becomes one process: its timeline series
   become counter tracks (ph "C"), its flight-recorder events become
   instant events (ph "i"), its packet lifecycle spans become duration
   events (ph "X") on one thread per hop, and one duration event spans
   the whole run so the process row has visible extent. Timestamps are
   virtual seconds scaled to microseconds, the format's native unit.

   Metadata events ("M") come first, in job order; every other event is
   stable-sorted on (ts, pid, tid) so the document is globally
   time-ordered while same-timestamp events keep their emission order. *)

let ts_of seconds = seconds *. 1e6

let num v =
  if not (Float.is_finite v) then "0"
  else
    let s = Printf.sprintf "%.12g" v in
    if Float.equal (float_of_string s) v then s else Printf.sprintf "%.17g" v

let track_name s =
  match Timeline.labels s with
  | [] -> Timeline.name s
  | labels ->
      Printf.sprintf "%s{%s}" (Timeline.name s)
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let severity_arg = function
  | Recorder.Debug -> "debug"
  | Recorder.Info -> "info"
  | Recorder.Warn -> "warn"
  | Recorder.Error -> "error"

(* Span threads start here; tid 0 is the process track, tid 1 the
   flight-recorder instants. *)
let span_tid_base = 2

type ev = { ev_ts : float; ev_pid : int; ev_tid : int; ev_json : string }

let to_string jobs =
  let meta = Buffer.create 512 in
  let meta_first = ref true in
  let metadata fmt =
    Printf.ksprintf
      (fun s ->
        if !meta_first then meta_first := false else Buffer.add_string meta ",\n";
        Buffer.add_string meta s)
      fmt
  in
  let events = ref [] in
  let event ~ts ~pid ~tid fmt =
    Printf.ksprintf
      (fun s -> events := { ev_ts = ts; ev_pid = pid; ev_tid = tid; ev_json = s } :: !events)
      fmt
  in
  List.iteri
    (fun i (job_name, timeline, recorder, span) ->
      let pid = i + 1 in
      metadata "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}"
        pid (Json.str job_name);
      (* Span of the whole job, for a visible process row. *)
      let t_min = ref infinity and t_max = ref neg_infinity in
      let see t =
        if t < !t_min then t_min := t;
        if t > !t_max then t_max := t
      in
      Option.iter
        (fun tl ->
          List.iter
            (fun s -> Array.iter (fun (t, _) -> see t) (Timeline.points s))
            (Timeline.all_series tl))
        timeline;
      Option.iter
        (fun r -> List.iter (fun (e : Recorder.event) -> see e.at) (Recorder.events r))
        recorder;
      Option.iter
        (fun sp ->
          List.iter
            (fun (r : Span.record) ->
              see r.Span.t_enq;
              if Float.is_finite r.Span.t_rx then see r.Span.t_rx)
            (Span.completed sp))
        span;
      if !t_max >= !t_min then
        event ~ts:!t_min ~pid ~tid:0
          "{\"name\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":0}"
          (Json.str job_name) (ts_of !t_min)
          (ts_of (!t_max -. !t_min))
          pid;
      Option.iter
        (fun tl ->
          List.iter
            (fun s ->
              let name = Json.str (track_name s) in
              Array.iter
                (fun (t, v) ->
                  event ~ts:t ~pid ~tid:0
                    "{\"name\":%s,\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"args\":{\"value\":%s}}"
                    name (ts_of t) pid (num v))
                (Timeline.points s))
            (Timeline.all_series tl))
        timeline;
      Option.iter
        (fun r ->
          List.iter
            (fun (e : Recorder.event) ->
              let args =
                (("point", e.point) :: ("severity", severity_arg e.severity) :: e.fields)
                |> List.map (fun (k, v) -> Printf.sprintf "%s:%s" (Json.str k) (Json.str v))
                |> String.concat ","
              in
              event ~ts:e.at ~pid ~tid:1
                "{\"name\":%s,\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,\"tid\":1,\"s\":\"p\",\"args\":{%s}}"
                (Json.str (e.kind ^ ":" ^ e.detail))
                (ts_of e.at) pid args)
            (Recorder.events r))
        recorder;
      Option.iter
        (fun sp ->
          (* One thread per hop, numbered in first-appearance order so
             the assignment is deterministic. *)
          let hop_tids : (string, int) Hashtbl.t = Hashtbl.create 8 in
          let next_tid = ref span_tid_base in
          let tid_of hop =
            match Hashtbl.find_opt hop_tids hop with
            | Some tid -> tid
            | None ->
                let tid = !next_tid in
                incr next_tid;
                Hashtbl.add hop_tids hop tid;
                metadata
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}"
                  pid tid
                  (Json.str ("hop: " ^ hop));
                tid
          in
          List.iter
            (fun (r : Span.record) ->
              let tid = tid_of r.Span.hop in
              let phase name lo delay =
                match delay with
                | Some d when d >= 0.0 ->
                    event ~ts:lo ~pid ~tid
                      "{\"name\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"hop\":%s,\"uid\":%d,\"flow\":%d,\"seq\":%d,\"kind\":%s,\"outcome\":%s}}"
                      (Json.str name) (ts_of lo) (ts_of d) pid tid
                      (Json.str r.Span.hop) r.Span.uid r.Span.flow r.Span.seq
                      (Json.str r.Span.kind)
                      (Json.str (Span.outcome_to_string r.Span.outcome))
                | Some _ | None -> ()
              in
              phase "queue" r.Span.t_enq (Span.queue_delay r);
              phase "serialize" r.Span.t_deq (Span.serialize_delay r);
              phase "propagate" r.Span.t_tx (Span.propagate_delay r))
            (Span.completed sp))
        span)
    jobs;
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = Float.compare a.ev_ts b.ev_ts in
        if c <> 0 then c
        else
          let c = compare a.ev_pid b.ev_pid in
          if c <> 0 then c else compare a.ev_tid b.ev_tid)
      (List.rev !events)
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "[\n";
  Buffer.add_buffer buf meta;
  List.iter
    (fun e ->
      if Buffer.length buf > 2 then Buffer.add_string buf ",\n";
      Buffer.add_string buf e.ev_json)
    sorted;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
