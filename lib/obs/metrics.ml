type labels = (string * string) list

type counter = { mutable count : int }
type gauge = { mutable value : float }

(* Log-scale histogram: power-of-two buckets. A positive value [x] with
   [frexp x = (_, e)] (i.e. x in [2^(e-1), 2^e)) lands in bucket
   [clamp (e + exponent_offset)], so the covered range spans roughly
   2^-41 .. 2^23 — nanoseconds to megaseconds, or single bytes to
   terabytes. Non-positive values are counted separately. *)
type histogram = {
  buckets : int array;
  mutable zero : int;  (* observations <= 0 *)
  mutable observations : int;
  mutable sum : float;
}

let bucket_count = 64
let exponent_offset = 41

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type key = { name : string; labels : labels }

(* Concurrency/determinism audit (ccsim-lint): a registry is
   per-instance (one per job/scope, never shared across domains), and
   every rendering path walks [order] — not the table — so output never
   depends on hash order. *)
type t = {
  table : (key, instrument) Hashtbl.t;
  mutable order : key list;  (* registration order, newest first *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let normalize_labels labels = List.sort (fun ((a : string), _) (b, _) -> String.compare a b) labels

let register t key instr =
  Hashtbl.add t.table key instr;
  t.order <- key :: t.order

let counter t ?(labels = []) name =
  let key = { name; labels = normalize_labels labels } in
  match Hashtbl.find_opt t.table key with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is registered as another kind" name)
  | None ->
      let c = { count = 0 } in
      register t key (Counter c);
      c

let gauge t ?(labels = []) name =
  let key = { name; labels = normalize_labels labels } in
  match Hashtbl.find_opt t.table key with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is registered as another kind" name)
  | None ->
      let g = { value = 0.0 } in
      register t key (Gauge g);
      g

let histogram t ?(labels = []) name =
  let key = { name; labels = normalize_labels labels } in
  match Hashtbl.find_opt t.table key with
  | Some (Histogram h) -> h
  | Some _ ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is registered as another kind" name)
  | None ->
      let h = { buckets = Array.make bucket_count 0; zero = 0; observations = 0; sum = 0.0 } in
      register t key (Histogram h);
      h

let inc c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count
let set g v = g.value <- v
let gauge_value g = g.value

let bucket_index x =
  let _, e = Float.frexp x in
  let i = e + exponent_offset in
  if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i

let observe h x =
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. x;
  if x <= 0.0 then h.zero <- h.zero + 1
  else begin
    let i = bucket_index x in
    h.buckets.(i) <- h.buckets.(i) + 1
  end

let observations h = h.observations
let sum h = h.sum

(* Bucket [i] holds values in [2^(i - offset - 1), 2^(i - offset)): the
   inverse of [bucket_index], where frexp maps [2^(e-1), 2^e) to e. *)
let bucket_lower_bound i = Float.ldexp 1.0 (i - exponent_offset - 1)
let bucket_upper_bound i = Float.ldexp 1.0 (i - exponent_offset)

(* Quantile estimate by linear interpolation within the covering bucket
   (continuous rank k = q * n; the zero bucket contributes rank mass at
   value 0). Bucket bounds are powers of two, so the estimate is within
   a factor of two of the true order statistic. *)
let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Metrics.quantile: q must be within [0,1]";
  if h.observations = 0 then 0.0
  else begin
    let k = q *. float_of_int h.observations in
    if h.zero > 0 && k <= float_of_int h.zero then 0.0
    else begin
      let cum = ref (float_of_int h.zero) in
      let answer = ref 0.0 in
      (try
         for i = 0 to bucket_count - 1 do
           let n = h.buckets.(i) in
           if n > 0 then begin
             let lo = bucket_lower_bound i and hi = bucket_upper_bound i in
             let fn = float_of_int n in
             if k <= !cum +. fn then begin
               answer := lo +. ((k -. !cum) /. fn *. (hi -. lo));
               raise Exit
             end;
             cum := !cum +. fn;
             answer := hi
           end
         done
       with Exit -> ());
      !answer
    end
  end

let size t = Hashtbl.length t.table

let find_counter t ?(labels = []) name =
  match Hashtbl.find_opt t.table { name; labels = normalize_labels labels } with
  | Some (Counter c) -> Some c
  | Some _ | None -> None

let find_gauge t ?(labels = []) name =
  match Hashtbl.find_opt t.table { name; labels = normalize_labels labels } with
  | Some (Gauge g) -> Some g
  | Some _ | None -> None

let find_histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.table { name; labels = normalize_labels labels } with
  | Some (Histogram h) -> Some h
  | Some _ | None -> None

let float_lit v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let line_to buf ?(extra = []) key instr =
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Json.str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Json.str v);
      Buffer.add_char buf ',')
    extra;
  let kind =
    match instr with Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"
  in
  Printf.bprintf buf "\"type\":%s,\"name\":%s,\"labels\":%s" (Json.str kind) (Json.str key.name)
    (Json.obj_of_strings key.labels);
  (match instr with
  | Counter c -> Printf.bprintf buf ",\"value\":%d" c.count
  | Gauge g -> Printf.bprintf buf ",\"value\":%s" (float_lit g.value)
  | Histogram h ->
      Printf.bprintf buf ",\"count\":%d,\"sum\":%s,\"zero\":%d" h.observations
        (float_lit h.sum) h.zero;
      Printf.bprintf buf ",\"p50\":%s,\"p95\":%s,\"p99\":%s"
        (float_lit (quantile h 0.50))
        (float_lit (quantile h 0.95))
        (float_lit (quantile h 0.99));
      Buffer.add_string buf ",\"buckets\":[";
      let first = ref true in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            Printf.bprintf buf "{\"le\":%.9g,\"count\":%d}" (bucket_upper_bound i) n
          end)
        h.buckets;
      Buffer.add_char buf ']');
  Buffer.add_string buf "}\n"

let to_ndjson ?extra t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun key -> line_to buf ?extra key (Hashtbl.find t.table key))
    (List.rev t.order);
  Buffer.contents buf
