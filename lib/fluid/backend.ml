type t = Packet | Fluid | Hybrid

let name = function Packet -> "packet" | Fluid -> "fluid" | Hybrid -> "hybrid"

let of_name = function
  | "packet" -> Some Packet
  | "fluid" -> Some Fluid
  | "hybrid" -> Some Hybrid
  | _ -> None

let all = [ Packet; Fluid; Hybrid ]
let names = List.map name all
