(** Hybrid coupling: the fluid population stepped on the DES clock.

    [attach] installs a periodic driver on the sim (via
    {!Ccsim_engine.Sim.periodic_driver}) that, every fluid step:

    + feeds each coupled packet {!Ccsim_net.Link}'s delivered rate
      (EWMA-smoothed) and queue backlog into the fluid engine's link
      signals, so fluid flows see the packet share as cross traffic;
    + advances the fluid population one step;
    + applies the fluid served rate back to the packet link as a
      cross-traffic term ({!Ccsim_net.Link.set_cross_rate_bps}) and the
      fluid queue as a shared-buffer share
      ([Qdisc.set_cross_backlog]).

    Per-coupling byte-conservation invariants are registered on the
    sim's watchdog, and per-coupling timeline probes
    ([fluid_cross_bps], [fluid_cross_queue_bytes], [packet_cross_bps])
    on its timeline. Like all drivers, the stepper only stays alive
    while packet events remain; call {!catch_up} after [Sim.run] if
    fluid time must reach the horizon regardless. *)

type t

val attach :
  Ccsim_engine.Sim.t ->
  Fluid_engine.t ->
  couplings:(Fluid_engine.link_id * Ccsim_net.Link.t) list ->
  t
(** Couple fluid links to packet links and start the stepper. The
    fluid engine must not have been stepped yet (raises
    [Invalid_argument]). Fluid links not listed evolve packet-free. *)

val engine : t -> Fluid_engine.t

val catch_up : t -> until_s:float -> unit
(** Step the coupled system until fluid time reaches [until_s] (packet
    signals frozen at their last values — the DES is drained), then
    sweep the sim's watchdog once. *)
