(** Simulation backend selector.

    [Packet] is the discrete-event engine; [Fluid] integrates every
    flow as a rate ODE ({!Fluid_engine}); [Hybrid] runs packet-level
    foreground flows against fluid background aggregates coupled
    through the links ({!Fluid_driver}). Experiments declare which
    backends they support ([Ccsim_core.Experiments]); the CLI parses
    [--backend] with {!of_name}. *)

type t = Packet | Fluid | Hybrid

val name : t -> string
val of_name : string -> t option
val all : t list
val names : string list
