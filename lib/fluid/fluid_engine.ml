module U = Ccsim_util
module Obs = Ccsim_obs

(* Struct-of-arrays fluid population. Flow state is one scalar per flow
   (window in packets, or pacing rate for BBR — see Fluid_model),
   integrated by Ccsim_util.Ode on a fixed step. Links hold a fluid
   queue updated explicitly (operator splitting: the queue is advanced
   from the step's arrival/service balance, not by the integrator) so
   byte conservation  offered = dropped + served + Δqueue  holds exactly
   by construction each step — that identity is what the watchdog
   checks, and what the corruption-injection test breaks.

   Hot-path layout: flat [float array]/[int array] only (unboxed loads,
   no per-flow records), no allocation per step beyond the integrator's
   preallocated workspace. A step is four passes over flows plus one
   over links, which is what makes 10^6-flow scenarios run in seconds
   (see BENCH_fluid.json). *)

type link_id = int
type flow_id = int

(* Drop-tail fluid loss: a ramp from [theta * buffer] to the full
   buffer, reaching [p_max]. Flows respond to the ramp well before the
   queue pegs; residual overflow past the buffer is dropped and
   accounted but (like real tail drops under a ramp AQM) is a corner
   case. *)
(* slots of [totals_b] *)
let ti_offered = 0
let ti_served = 1
let ti_dropped = 2
let ti_q = 3

let loss_theta = 0.80
let loss_p_max = 0.25

type totals = {
  offered_bytes : float;
  served_bytes : float;
  dropped_bytes : float;
  queued_bytes : float;
}

type t = {
  dt_s : float;
  warmup_s : float;
  method_ : [ `Euler | `Rk4 ];
  payload_frac : float;
  rng : U.Rng.t;
  mutable now_s : float;
  mutable built : bool;
  (* links (SoA, sized at seal) *)
  mutable nl : int;
  mutable l_cap : float array;  (* capacity, bit/s *)
  mutable l_buf : float array;  (* buffer, bytes *)
  mutable l_q : float array;  (* fluid queue, bytes *)
  mutable l_pkt_rate : float array;  (* packet cross traffic, bit/s (hybrid) *)
  mutable l_pkt_backlog : float array;  (* packet queue share, bytes (hybrid) *)
  mutable l_arr : float array;  (* last fluid arrival, bit/s *)
  mutable l_loss : float array;  (* last loss probability *)
  mutable l_sr : float array;  (* last service ratio *)
  mutable l_served : float array;  (* last served rate, bit/s *)
  mutable l_active : int array;  (* active flows *)
  mutable l_contended_s : float array;
  mutable l_offered_b : float array;  (* cumulative byte accounting *)
  mutable l_served_b : float array;
  mutable l_dropped_b : float array;
  (* flows (SoA) *)
  mutable n : int;
  mutable f_model : int array;
  mutable f_link : int array;
  mutable f_y : float array;  (* ODE state *)
  mutable f_rtt_base : float array;
  mutable f_cap : float array;  (* demand cap, bit/s; infinity = bulk *)
  mutable f_on : float array;  (* mean on-period, s; infinity = always on *)
  mutable f_off : float array;
  mutable f_active : bool array;
  mutable f_toggle : float array;  (* next toggle time, s *)
  mutable f_good_b : float array;  (* delivered payload bytes after warmup *)
  mutable xs : float array;  (* scratch: per-flow instantaneous rate *)
  mutable ws : U.Ode.workspace option;
  (* running totals (kept incrementally so invariant checks are O(1)) *)
  totals_b : float array;
      (* engine-wide byte totals in unboxed slots (offered, served,
         dropped, queued — see the ti_ indices): mutable float fields here would
         box on every per-link, per-step accumulation *)
  (* observability *)
  profile : Obs.Profile.t option;
      (* standalone [run] charges each ODE step to component "fluid";
         when the engine is instead driven from a Sim (hybrid coupling),
         the Sim's own profiler does the charging and this stays unused *)
  watchdog : Obs.Watchdog.t option;
  tl_arrival : Obs.Timeline.series option;
  tl_served : Obs.Timeline.series option;
  tl_queue : Obs.Timeline.series option;
  tl_active : Obs.Timeline.series option;
  tl_contended : Obs.Timeline.series option;
  sample_interval_s : float;
  mutable next_sample_s : float;
  mutable next_check_s : float;
}

let default_dt_s = 0.01

let create ?(dt_s = default_dt_s) ?(method_ = `Euler) ?(warmup_s = 0.0)
    ?(payload_frac =
      float_of_int U.Units.mss /. float_of_int (U.Units.mss + U.Units.header_bytes))
    ~seed () =
  if dt_s <= 0.0 then invalid_arg "Fluid_engine.create: dt must be positive";
  if warmup_s < 0.0 then invalid_arg "Fluid_engine.create: negative warmup";
  let scope = Obs.Scope.ambient () in
  let series name =
    Option.map
      (fun tl -> Obs.Timeline.series tl ~labels:[ ("engine", "fluid") ] name)
      scope.Obs.Scope.timeline
  in
  let sample_interval_s =
    match scope.Obs.Scope.timeline with
    | Some tl -> Float.max dt_s (Obs.Timeline.interval tl)
    | None -> Float.max dt_s 0.1
  in
  let t =
    {
      dt_s;
      warmup_s;
      method_;
      payload_frac;
      rng = U.Rng.create seed;
      now_s = 0.0;
      built = false;
      nl = 0;
      l_cap = [||];
      l_buf = [||];
      l_q = [||];
      l_pkt_rate = [||];
      l_pkt_backlog = [||];
      l_arr = [||];
      l_loss = [||];
      l_sr = [||];
      l_served = [||];
      l_active = [||];
      l_contended_s = [||];
      l_offered_b = [||];
      l_served_b = [||];
      l_dropped_b = [||];
      n = 0;
      f_model = [||];
      f_link = [||];
      f_y = [||];
      f_rtt_base = [||];
      f_cap = [||];
      f_on = [||];
      f_off = [||];
      f_active = [||];
      f_toggle = [||];
      f_good_b = [||];
      xs = [||];
      ws = None;
      totals_b = Array.make 4 0.0;
      profile = scope.Obs.Scope.profile;
      watchdog = scope.Obs.Scope.watchdog;
      tl_arrival = series "fluid_arrival_bps";
      tl_served = series "fluid_served_bps";
      tl_queue = series "fluid_queue_bytes";
      tl_active = series "fluid_active_flows";
      tl_contended = series "fluid_contended_links";
      sample_interval_s;
      next_sample_s = 0.0;
      next_check_s = 0.0;
    }
  in
  (match t.watchdog with
  | Some w ->
      (* Engine-wide byte conservation: what the flows offered must be
         exactly the losses plus the served bytes plus what still sits
         in the fluid queues. The tolerance covers float summation
         noise across millions of link-steps, nothing more. *)
      Obs.Watchdog.register w ~component:"fluid" ~invariant:"byte_conservation" (fun () ->
          let residue =
            t.totals_b.(ti_offered) -. t.totals_b.(ti_dropped)
            -. t.totals_b.(ti_served) -. t.totals_b.(ti_q)
          in
          let tol = Float.max 1024.0 (1e-6 *. t.totals_b.(ti_offered)) in
          if Float.abs residue > tol then
            Some
              (Printf.sprintf
                 "offered=%.0f dropped=%.0f served=%.0f queued=%.0f: residue %.1f bytes \
                  exceeds %.1f"
                 t.totals_b.(ti_offered) t.totals_b.(ti_dropped) t.totals_b.(ti_served)
                 t.totals_b.(ti_q) residue tol)
          else None)
  | None -> ());
  t

let dt_s t = t.dt_s
let now_s t = t.now_s
let flows t = t.n
let links t = t.nl

(* --- build phase ---------------------------------------------------------- *)

let grow_f arr n default = if Array.length arr > n then arr else
  let next = Array.make (Int.max 16 (2 * Int.max n (Array.length arr))) default in
  Array.blit arr 0 next 0 (Array.length arr);
  next

let ensure_open t name = if t.built then invalid_arg (name ^ ": population is sealed (already stepped)")

let add_link t ~capacity_bps ~buffer_bytes =
  ensure_open t "Fluid_engine.add_link";
  if capacity_bps <= 0.0 then invalid_arg "Fluid_engine.add_link: capacity must be positive";
  if buffer_bytes <= 0 then invalid_arg "Fluid_engine.add_link: buffer must be positive";
  let l = t.nl in
  t.l_cap <- grow_f t.l_cap l 0.0;
  t.l_buf <- grow_f t.l_buf l 0.0;
  t.l_cap.(l) <- capacity_bps;
  t.l_buf.(l) <- float_of_int buffer_bytes;
  t.nl <- l + 1;
  l

let add_flow t ~link ~model ~rtt_base_s ?(cap_bps = infinity) ?on_off_s
    ?(start_active = true) () =
  ensure_open t "Fluid_engine.add_flow";
  if link < 0 || link >= t.nl then invalid_arg "Fluid_engine.add_flow: unknown link";
  if rtt_base_s <= 0.0 then invalid_arg "Fluid_engine.add_flow: rtt must be positive";
  let i = t.n in
  t.f_model <- (if Array.length t.f_model > i then t.f_model else begin
    let next = Array.make (Int.max 16 (2 * Int.max i (Array.length t.f_model))) 0 in
    Array.blit t.f_model 0 next 0 (Array.length t.f_model); next end);
  t.f_link <- (if Array.length t.f_link > i then t.f_link else begin
    let next = Array.make (Int.max 16 (2 * Int.max i (Array.length t.f_link))) 0 in
    Array.blit t.f_link 0 next 0 (Array.length t.f_link); next end);
  t.f_y <- grow_f t.f_y i 0.0;
  t.f_rtt_base <- grow_f t.f_rtt_base i 0.0;
  t.f_cap <- grow_f t.f_cap i 0.0;
  t.f_on <- grow_f t.f_on i 0.0;
  t.f_off <- grow_f t.f_off i 0.0;
  t.f_toggle <- grow_f t.f_toggle i 0.0;
  t.f_good_b <- grow_f t.f_good_b i 0.0;
  t.f_active <- (if Array.length t.f_active > i then t.f_active else begin
    let next = Array.make (Int.max 16 (2 * Int.max i (Array.length t.f_active))) false in
    Array.blit t.f_active 0 next 0 (Array.length t.f_active); next end);
  let tag = Fluid_model.index model in
  t.f_model.(i) <- tag;
  t.f_link.(i) <- link;
  t.f_rtt_base.(i) <- rtt_base_s;
  t.f_cap.(i) <- cap_bps;
  (match on_off_s with
  | None ->
      t.f_on.(i) <- infinity;
      t.f_off.(i) <- infinity;
      t.f_toggle.(i) <- infinity;
      t.f_active.(i) <- true
  | Some (on_s, off_s) ->
      if on_s <= 0.0 || off_s <= 0.0 then
        invalid_arg "Fluid_engine.add_flow: on/off means must be positive";
      t.f_on.(i) <- on_s;
      t.f_off.(i) <- off_s;
      t.f_active.(i) <- start_active;
      let mean = if start_active then on_s else off_s in
      t.f_toggle.(i) <- U.Rng.exponential t.rng ~mean);
  t.f_y.(i) <- (if t.f_active.(i) then Fluid_model.initial_state ~tag ~rtt_s:rtt_base_s else 0.0);
  t.f_good_b.(i) <- 0.0;
  t.n <- i + 1;
  i

(* Arrays are always at least length 1 so an empty population still
   matches the ODE workspace dimension. *)
let trim arr n default =
  let len = Int.max 1 n in
  if Array.length arr = len then arr
  else begin
    let next = Array.make len default in
    Array.blit arr 0 next 0 (Int.min n (Array.length arr));
    next
  end

let seal t =
  if not t.built then begin
    t.built <- true;
    t.f_model <- trim t.f_model t.n 0;
    t.f_link <- trim t.f_link t.n 0;
    t.f_y <- trim t.f_y t.n 0.0;
    t.f_rtt_base <- trim t.f_rtt_base t.n 0.0;
    t.f_cap <- trim t.f_cap t.n 0.0;
    t.f_on <- trim t.f_on t.n 0.0;
    t.f_off <- trim t.f_off t.n 0.0;
    t.f_toggle <- trim t.f_toggle t.n 0.0;
    t.f_good_b <- trim t.f_good_b t.n 0.0;
    t.f_active <- trim t.f_active t.n false;
    t.xs <- Array.make (Int.max 1 t.n) 0.0;
    t.l_cap <- trim t.l_cap t.nl 0.0;
    t.l_buf <- trim t.l_buf t.nl 0.0;
    let zeros () = Array.make (Int.max 1 t.nl) 0.0 in
    t.l_q <- zeros ();
    t.l_pkt_rate <- zeros ();
    t.l_pkt_backlog <- zeros ();
    t.l_arr <- zeros ();
    t.l_loss <- zeros ();
    t.l_sr <- zeros ();
    t.l_served <- zeros ();
    t.l_contended_s <- zeros ();
    t.l_offered_b <- zeros ();
    t.l_served_b <- zeros ();
    t.l_dropped_b <- zeros ();
    t.l_active <- Array.make (Int.max 1 t.nl) 0;
    for i = 0 to t.n - 1 do
      if t.f_active.(i) then begin
        let l = t.f_link.(i) in
        t.l_active.(l) <- t.l_active.(l) + 1
      end
    done;
    t.ws <- Some (U.Ode.workspace (Int.max 1 t.n))
  end

(* --- hybrid coupling inputs ----------------------------------------------- *)

let set_packet_signals t ~link ~rate_bps ~backlog_bytes =
  seal t;
  if link < 0 || link >= t.nl then invalid_arg "Fluid_engine.set_packet_signals: unknown link";
  t.l_pkt_rate.(link) <- Float.max 0.0 rate_bps;
  t.l_pkt_backlog.(link) <- float_of_int (Int.max 0 backlog_bytes)

(* --- stepping ------------------------------------------------------------- *)

let loss_of ~q ~buf =
  if buf <= 0.0 then 0.0
  else begin
    let frac = q /. buf in
    if frac <= loss_theta then 0.0
    else begin
      let z = Float.min 1.0 ((frac -. loss_theta) /. (1.0 -. loss_theta)) in
      loss_p_max *. z *. z
    end
  end

let queue_delay_s t l =
  (t.l_q.(l) +. t.l_pkt_backlog.(l)) *. 8.0 /. t.l_cap.(l)

let process_toggles t =
  for i = 0 to t.n - 1 do
    if t.f_toggle.(i) <= t.now_s then begin
      let l = t.f_link.(i) in
      if t.f_active.(i) then begin
        t.f_active.(i) <- false;
        t.f_y.(i) <- 0.0;
        t.l_active.(l) <- t.l_active.(l) - 1;
        t.f_toggle.(i) <- t.now_s +. U.Rng.exponential t.rng ~mean:t.f_off.(i)
      end
      else begin
        t.f_active.(i) <- true;
        t.f_y.(i) <-
          Fluid_model.initial_state ~tag:t.f_model.(i) ~rtt_s:t.f_rtt_base.(i);
        t.l_active.(l) <- t.l_active.(l) + 1;
        t.f_toggle.(i) <- t.now_s +. U.Rng.exponential t.rng ~mean:t.f_on.(i)
      end
    end
  done

(* Derivative of the flow-state vector: two flow passes around one link
   pass. The fluid queues are frozen during the step (operator
   splitting); their balance is applied in [settle]. *)
let[@ccsim.hot] deriv t ~t_s:_ ~y ~dy =
  for l = 0 to t.nl - 1 do
    t.l_arr.(l) <- 0.0
  done;
  for i = 0 to t.n - 1 do
    if t.f_active.(i) then begin
      let l = t.f_link.(i) in
      let rtt_s = t.f_rtt_base.(i) +. queue_delay_s t l in
      let x =
        Float.min (Fluid_model.rate_bps ~tag:t.f_model.(i) ~w:y.(i) ~rtt_s) t.f_cap.(i)
      in
      t.xs.(i) <- x;
      t.l_arr.(l) <- t.l_arr.(l) +. x
    end
    else begin
      t.xs.(i) <- 0.0;
      dy.(i) <- 0.0
    end
  done;
  for l = 0 to t.nl - 1 do
    t.l_loss.(l) <- loss_of ~q:t.l_q.(l) ~buf:t.l_buf.(l);
    let s = Float.max 0.0 (t.l_cap.(l) -. t.l_pkt_rate.(l)) in
    let a = t.l_arr.(l) in
    t.l_sr.(l) <- (if a <= s || a <= 0.0 then 1.0 else s /. a)
  done;
  for i = 0 to t.n - 1 do
    if t.f_active.(i) then begin
      let l = t.f_link.(i) in
      let rtt_s = t.f_rtt_base.(i) +. queue_delay_s t l in
      dy.(i) <-
        Fluid_model.deriv ~tag:t.f_model.(i) ~w:y.(i) ~rtt_s
          ~rtt_min_s:t.f_rtt_base.(i) ~loss_frac:t.l_loss.(l)
          ~service_ratio:t.l_sr.(l)
    end
  done

(* After the integrator: clamp states, advance the fluid queues from the
   step's arrival/service balance, and account bytes exactly. *)
let[@ccsim.hot] settle t =
  let dt = t.dt_s in
  let bbr = Fluid_model.index Fluid_model.Bbr in
  (* clamp + recompute rates and per-link arrival from the final state *)
  for l = 0 to t.nl - 1 do
    t.l_arr.(l) <- 0.0
  done;
  for i = 0 to t.n - 1 do
    if t.f_active.(i) then begin
      let l = t.f_link.(i) in
      let rtt_s = t.f_rtt_base.(i) +. queue_delay_s t l in
      (if t.f_model.(i) = bbr then begin
         let hi = Float.min (1.3 *. t.f_cap.(i)) (2.0 *. t.l_cap.(l)) in
         t.f_y.(i) <- Float.min (Float.max 1e3 t.f_y.(i)) hi
       end
       else begin
         let bdp_pkts = t.l_cap.(l) *. rtt_s /. Fluid_model.pkt_bits in
         let buf_pkts = t.l_buf.(l) /. float_of_int Fluid_model.pkt_bytes in
         let hi = Float.max 64.0 (2.0 *. (bdp_pkts +. buf_pkts)) in
         t.f_y.(i) <- Float.min (Float.max 0.1 t.f_y.(i)) hi
       end);
      let x =
        Float.min (Fluid_model.rate_bps ~tag:t.f_model.(i) ~w:t.f_y.(i) ~rtt_s) t.f_cap.(i)
      in
      t.xs.(i) <- x;
      t.l_arr.(l) <- t.l_arr.(l) +. x
    end
    else t.xs.(i) <- 0.0
  done;
  (* queue balance + exact byte accounting per link *)
  for l = 0 to t.nl - 1 do
    let q = t.l_q.(l) in
    let buf = t.l_buf.(l) in
    let a = t.l_arr.(l) in
    let p = loss_of ~q ~buf in
    let inq = a *. (1.0 -. p) in
    let s = Float.max 0.0 (t.l_cap.(l) -. t.l_pkt_rate.(l)) in
    let avail = inq +. (q *. 8.0 /. dt) in
    let served = Float.min s avail in
    let q1 = q +. ((inq -. served) *. dt /. 8.0) in
    let overflow = Float.max 0.0 (q1 -. buf) in
    let q1 = q1 -. overflow in
    t.l_q.(l) <- q1;
    t.l_loss.(l) <- p;
    t.l_served.(l) <- served;
    t.l_sr.(l) <- (if a <= 0.0 then 1.0 else Float.min 1.0 (served /. a));
    let offered_b = a *. dt /. 8.0 in
    let dropped_b = (p *. a *. dt /. 8.0) +. overflow in
    let served_b = served *. dt /. 8.0 in
    t.l_offered_b.(l) <- t.l_offered_b.(l) +. offered_b;
    t.l_dropped_b.(l) <- t.l_dropped_b.(l) +. dropped_b;
    t.l_served_b.(l) <- t.l_served_b.(l) +. served_b;
    t.totals_b.(ti_offered) <- t.totals_b.(ti_offered) +. offered_b;
    t.totals_b.(ti_dropped) <- t.totals_b.(ti_dropped) +. dropped_b;
    t.totals_b.(ti_served) <- t.totals_b.(ti_served) +. served_b;
    t.totals_b.(ti_q) <- t.totals_b.(ti_q) +. (q1 -. q);
    (* contention: a busy link with at least two active flows where the
       queue signal (loss or >=5 ms of queueing) is doing the
       allocating — the paper's prerequisites, in fluid terms. *)
    if
      s > 0.0
      && a >= 0.95 *. s
      && t.l_active.(l) >= 2
      && (p > 0.0 || queue_delay_s t l >= 0.005)
    then t.l_contended_s.(l) <- t.l_contended_s.(l) +. dt
  done;
  (* per-flow delivered payload over the measurement window *)
  if t.now_s +. dt > t.warmup_s then
    for i = 0 to t.n - 1 do
      if t.f_active.(i) then begin
        let l = t.f_link.(i) in
        let a = t.l_arr.(l) in
        if a > 0.0 then
          t.f_good_b.(i) <-
            t.f_good_b.(i)
            +. (t.xs.(i) /. a *. t.l_served.(l) *. t.payload_frac *. dt /. 8.0)
      end
    done

let[@ccsim.hot] step t =
  seal t;
  process_toggles t;
  let ws = Option.get t.ws in
  let f = (deriv t [@ccsim.alloc_ok "one integrator-callback closure per fluid step (dt, default 10 ms), not per event"]) in
  (match t.method_ with
  | `Euler -> U.Ode.euler_step ws f ~t_s:t.now_s ~dt_s:t.dt_s t.f_y
  | `Rk4 -> U.Ode.rk4_step ws f ~t_s:t.now_s ~dt_s:t.dt_s t.f_y);
  settle t;
  ((t.now_s <- t.now_s +. t.dt_s)
  [@ccsim.alloc_ok "one boxed clock store per fluid step, amortized over every flow it advances"])

(* --- standalone run loop --------------------------------------------------- *)

let record_samples t =
  let record series value =
    match series with
    | Some s -> Obs.Timeline.record s ~time:t.now_s ~value
    | None -> ()
  in
  if Option.is_some t.tl_arrival || Option.is_some t.tl_served || Option.is_some t.tl_queue
     || Option.is_some t.tl_active || Option.is_some t.tl_contended
  then begin
    let arr = ref 0.0 and served = ref 0.0 and q = ref 0.0 and contended = ref 0 in
    for l = 0 to t.nl - 1 do
      arr := !arr +. t.l_arr.(l);
      served := !served +. t.l_served.(l);
      q := !q +. t.l_q.(l);
      if t.l_contended_s.(l) > 0.0 then incr contended
    done;
    let active = ref 0 in
    for i = 0 to t.n - 1 do
      if t.f_active.(i) then incr active
    done;
    record t.tl_arrival !arr;
    record t.tl_served !served;
    record t.tl_queue !q;
    record t.tl_active (float_of_int !active);
    record t.tl_contended (float_of_int !contended)
  end

let run t ~until_s =
  seal t;
  while t.now_s < until_s -. (0.5 *. t.dt_s) do
    (match t.profile with
    | None -> step t
    | Some p ->
        let t0 = Obs.Profile.wall_now () in
        step t;
        Obs.Profile.record p ~comp:"fluid" ~seconds:(Obs.Profile.wall_now () -. t0));
    if t.now_s >= t.next_sample_s then begin
      record_samples t;
      t.next_sample_s <- t.now_s +. t.sample_interval_s
    end;
    match t.watchdog with
    | Some w when t.now_s >= t.next_check_s ->
        Obs.Watchdog.check_now w ~now:t.now_s;
        t.next_check_s <- t.now_s +. Obs.Watchdog.interval w
    | Some _ | None -> ()
  done;
  (match t.profile with
  | Some p ->
      Obs.Profile.note_sim_time p t.now_s;
      Obs.Profile.gc_flush p
  | None -> ());
  match t.watchdog with
  | Some w -> Obs.Watchdog.check_now w ~now:t.now_s
  | None -> ()

(* --- outputs --------------------------------------------------------------- *)

let check_link t l name = if l < 0 || l >= t.nl then invalid_arg (name ^ ": unknown link")
let check_flow t i name = if i < 0 || i >= t.n then invalid_arg (name ^ ": unknown flow")

let link_capacity_bps t l = check_link t l "Fluid_engine.link_capacity_bps"; t.l_cap.(l)
let link_arrival_bps t l = check_link t l "Fluid_engine.link_arrival_bps"; t.l_arr.(l)
let link_served_bps t l = check_link t l "Fluid_engine.link_served_bps"; t.l_served.(l)
let link_queue_bytes t l = check_link t l "Fluid_engine.link_queue_bytes"; t.l_q.(l)
let link_loss_frac t l = check_link t l "Fluid_engine.link_loss_frac"; t.l_loss.(l)

let link_contended_s t l =
  check_link t l "Fluid_engine.link_contended_s";
  t.l_contended_s.(l)

let link_active_flows t l = check_link t l "Fluid_engine.link_active_flows"; t.l_active.(l)
let link_served_bytes t l = check_link t l "Fluid_engine.link_served_bytes"; t.l_served_b.(l)

let link_residual_bytes t l =
  check_link t l "Fluid_engine.link_residual_bytes";
  t.l_offered_b.(l) -. t.l_dropped_b.(l) -. t.l_served_b.(l) -. t.l_q.(l)

let flow_rate_bps t i = check_flow t i "Fluid_engine.flow_rate_bps"; t.xs.(i)

let flow_goodput_bps t i =
  check_flow t i "Fluid_engine.flow_goodput_bps";
  let window_s = t.now_s -. t.warmup_s in
  if window_s <= 0.0 then 0.0 else t.f_good_b.(i) *. 8.0 /. window_s

let totals t =
  {
    offered_bytes = t.totals_b.(ti_offered);
    served_bytes = t.totals_b.(ti_served);
    dropped_bytes = t.totals_b.(ti_dropped);
    queued_bytes = t.totals_b.(ti_q);
  }

let residual_bytes t =
  t.totals_b.(ti_offered) -. t.totals_b.(ti_dropped) -. t.totals_b.(ti_served)
  -. t.totals_b.(ti_q)

let register_link_invariant t ~component w l =
  check_link t l "Fluid_engine.register_link_invariant";
  Obs.Watchdog.register w ~component ~invariant:"fluid_byte_conservation" (fun () ->
      let residue = link_residual_bytes t l in
      let tol = Float.max 64.0 (1e-6 *. t.l_offered_b.(l)) in
      if Float.abs residue > tol then
        Some
          (Printf.sprintf
             "link %d: offered=%.0f dropped=%.0f served=%.0f queued=%.0f: residue %.1f \
              bytes exceeds %.1f"
             l t.l_offered_b.(l) t.l_dropped_b.(l) t.l_served_b.(l) t.l_q.(l) residue tol)
      else None)

let inject_accounting_skew t ~link ~bytes =
  check_link t link "Fluid_engine.inject_accounting_skew";
  t.l_served_b.(link) <- t.l_served_b.(link) +. bytes;
  t.totals_b.(ti_served) <- t.totals_b.(ti_served) +. bytes
