(** Struct-of-arrays fluid population engine.

    Holds a population of fluid flows ({!Fluid_model} rate ODEs) sharing
    fluid links, integrated on a fixed step by {!Ccsim_util.Ode}. Flow
    state lives in flat [float array]s (one scalar per flow), so a step
    is a handful of array passes and million-flow populations run in
    seconds — see [BENCH_fluid.json].

    Queues are advanced explicitly from each step's arrival/service
    balance (operator splitting), which makes byte conservation
    [offered = dropped + served + Δqueue] exact by construction; the
    engine registers that identity with the ambient
    {!Ccsim_obs.Watchdog} at creation. Aggregate series are recorded
    into the ambient {!Ccsim_obs.Timeline} by the standalone {!run}
    loop.

    Build-then-seal: add links and flows, then step. The first {!step}
    (or {!run}, or {!set_packet_signals}) seals the population;
    [add_*] afterwards raise [Invalid_argument].

    Hybrid operation: {!set_packet_signals} feeds a link's packet-level
    cross traffic (delivered rate, queue backlog) into the fluid loss
    and RTT signals, and {!link_served_bps} is what the DES side applies
    as a cross-traffic rate — see [Fluid_driver]. *)

type link_id = int
type flow_id = int

type totals = {
  offered_bytes : float;
  served_bytes : float;
  dropped_bytes : float;
  queued_bytes : float;
}

type t

val loss_theta : float
(** Queue fill fraction where the fluid loss ramp starts (0.80). *)

val loss_p_max : float
(** Loss probability at a full buffer (0.25, quadratic ramp). *)

val default_dt_s : float
(** 10 ms. *)

val create :
  ?dt_s:float ->
  ?method_:[ `Euler | `Rk4 ] ->
  ?warmup_s:float ->
  ?payload_frac:float ->
  seed:int ->
  unit ->
  t
(** Instruments (timeline, watchdog) are taken from the ambient
    {!Ccsim_obs.Scope} at creation, mirroring [Sim.create]. [warmup_s]
    excludes the start of the run from goodput accounting.
    [payload_frac] converts wire bytes to payload bytes (default
    MSS/(MSS+headers), matching the packet engine's framing). *)

val add_link : t -> capacity_bps:float -> buffer_bytes:int -> link_id
val add_flow :
  t ->
  link:link_id ->
  model:Fluid_model.t ->
  rtt_base_s:float ->
  ?cap_bps:float ->
  ?on_off_s:float * float ->
  ?start_active:bool ->
  unit ->
  flow_id
(** [cap_bps] caps the flow's sending rate (application demand / access
    shaper); default unbounded (bulk). [on_off_s = (on_mean, off_mean)]
    makes the flow toggle with exponentially distributed periods drawn
    from the engine's seeded stream; window state resets on each
    activation. *)

val step : t -> unit
(** Advance one [dt_s]: process on/off toggles, integrate the flow
    ODEs, settle queues and byte accounting. Seals the population on
    first call. *)

val run : t -> until_s:float -> unit
(** Step until [until_s], sampling aggregate timeline series and
    sweeping the ambient watchdog at its interval (plus a final sweep).
    Use {!step} instead when an outer clock drives the engine (hybrid
    mode) — [run]'s sampling and sweeping are then the DES drivers'
    job. *)

val dt_s : t -> float
val now_s : t -> float
val flows : t -> int
val links : t -> int

val set_packet_signals : t -> link:link_id -> rate_bps:float -> backlog_bytes:int -> unit
(** Current packet-level cross traffic on a fluid link: delivered rate
    (subtracted from the capacity the fluid share can use) and queue
    backlog (added to the fluid queueing delay). *)

val link_capacity_bps : t -> link_id -> float

val link_arrival_bps : t -> link_id -> float
(** Fluid offered load at the last step. *)

val link_served_bps : t -> link_id -> float
(** Fluid load actually delivered at the last step — the cross-traffic
    rate the packet engine should see in hybrid mode. *)

val link_queue_bytes : t -> link_id -> float
val link_loss_frac : t -> link_id -> float
val link_active_flows : t -> link_id -> int

val link_contended_s : t -> link_id -> float
(** Cumulative time the link was contended: busy (arrival ≥ 95% of
    available capacity), at least two active flows, and a queue signal
    (loss, or ≥ 5 ms queueing delay) present. *)

val link_served_bytes : t -> link_id -> float

val link_residual_bytes : t -> link_id -> float
(** [offered - dropped - served - queued] for one link; zero up to float
    noise unless accounting is corrupted. *)

val flow_rate_bps : t -> flow_id -> float
(** Instantaneous wire sending rate at the last step. *)

val flow_goodput_bps : t -> flow_id -> float
(** Mean payload goodput over the post-warmup window so far. *)

val totals : t -> totals
val residual_bytes : t -> float
(** Engine-wide [offered - dropped - served - queued]. *)

val register_link_invariant : t -> component:string -> Ccsim_obs.Watchdog.t -> link_id -> unit
(** Register the per-link byte-conservation check on [w] — used by
    [Fluid_driver] so each hybrid coupling is individually watched. *)

val inject_accounting_skew : t -> link:link_id -> bytes:float -> unit
(** Test hook: corrupt one link's served-byte counter (and the engine
    total) so conservation checks must trip. Never called outside
    tests. *)
