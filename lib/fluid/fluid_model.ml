(* Per-flow fluid (rate-ODE) models of the simulator's main CCAs,
   following the control-theoretic competition model of Scherrer et al.
   (arXiv:2510.22773) in the Misra–Gong–Towsley window-ODE tradition:

   - Loss-based flows (Reno, CUBIC) evolve a window [w] in packets:
       dw/dt = alpha / R  -  (1 - beta) * w * lambda
     where [R] is the instantaneous RTT, [lambda = p * w / R] the loss
     event rate seen by the flow (loss probability [p] times packet
     rate), and (alpha, beta) the additive-increase / multiplicative-
     decrease pair. Reno is AIMD(1, 1/2); CUBIC is represented by its
     TCP-friendly AIMD equivalent (alpha = 0.53, beta = 0.7), which
     matches its steady-state throughput on the paths we model.

   - BBR evolves its sending rate [x] (bit/s) directly: it paces toward
     a probe gain times its delivered rate, capped by the inflight
     limit of two estimated BDPs, converging on one RTT timescale:
       target = deliv * min(probe_gain, cwnd_gain * R_min / R)
       dx/dt  = (target - x) / max(R, 1 ms)
     where [deliv = x * service_ratio] is the share the link actually
     delivered. The min reproduces BBR's two regimes: probing while the
     queue is short, inflight-capped (standing queue ~1 BDP) once RTT
     inflation makes the cap bind.

   All models are deterministic given the link signals; every
   stochastic input (demand, on/off activity) lives in the engine and
   draws from a seeded SplitMix64 stream. *)

type t = Reno | Cubic | Bbr

let index = function Reno -> 0 | Cubic -> 1 | Bbr -> 2

let of_index = function
  | 0 -> Reno
  | 1 -> Cubic
  | 2 -> Bbr
  | i -> invalid_arg (Printf.sprintf "Fluid_model.of_index: %d" i)

let name = function Reno -> "reno" | Cubic -> "cubic" | Bbr -> "bbr"

let of_name = function
  | "reno" -> Some Reno
  | "cubic" -> Some Cubic
  | "bbr" -> Some Bbr
  | _ -> None

(* Wire size of a full segment: fluid rates are wire rates, like the
   packet engine's link occupancy; payload goodput is scaled by the
   engine's payload fraction. *)
let pkt_bytes = Ccsim_util.Units.mss + Ccsim_util.Units.header_bytes
let pkt_bits = Ccsim_util.Units.bits_of_bytes pkt_bytes

(* CUBIC's TCP-friendly AIMD equivalent: beta 0.7 and the matching
   additive increase 3*(1-b)/(1+b). *)
let cubic_beta = 0.7
let cubic_alpha = 3.0 *. (1.0 -. cubic_beta) /. (1.0 +. cubic_beta)
let bbr_probe_gain = 1.25
let bbr_cwnd_gain = 2.0

(* Initial state on (re)activation: IW10 for the window models, ten
   packets per base RTT for BBR's pacing rate. *)
let initial_state ~tag ~rtt_s =
  if tag = index Bbr then 10.0 *. pkt_bits /. Float.max 1e-4 rtt_s else 10.0

(* Instantaneous wire sending rate in bit/s. *)
let rate_bps ~tag ~w ~rtt_s =
  if tag = index Bbr then w else w *. pkt_bits /. Float.max 1e-4 rtt_s

(* dw/dt (window models: packets/s; BBR: bit/s per second). *)
let deriv ~tag ~w ~rtt_s ~rtt_min_s ~loss_frac ~service_ratio =
  let r = Float.max 1e-3 rtt_s in
  if tag = index Bbr then begin
    let deliv = w *. service_ratio in
    let gain = Float.min bbr_probe_gain (bbr_cwnd_gain *. rtt_min_s /. r) in
    ((gain *. deliv) -. w) /. r
  end
  else begin
    let alpha, beta =
      if tag = index Cubic then (cubic_alpha, cubic_beta) else (1.0, 0.5)
    in
    (alpha -. ((1.0 -. beta) *. loss_frac *. w *. w)) /. r
  end
