module Obs = Ccsim_obs
module Sim = Ccsim_engine.Sim
module Link = Ccsim_net.Link

(* EWMA weight for the packet delivered-rate signal fed to the fluid
   side: ~3 steps of memory smooths packet burstiness without hiding
   rate shifts from the fluid flows. *)
let rate_ewma_alpha = 0.3

type coupling = {
  fluid_link : Fluid_engine.link_id;
  link : Link.t;
  mutable last_bytes : int;  (* Link.bytes_delivered at the previous tick *)
  mutable ewma_bps : float;
}

type t = {
  sim : Sim.t;
  engine : Fluid_engine.t;
  couplings : coupling list;
}

let step_couplings t =
  let dt = Fluid_engine.dt_s t.engine in
  (* 1. packet -> fluid: current packet cross traffic per coupled link *)
  List.iter
    (fun c ->
      let bytes = Link.bytes_delivered c.link in
      let inst = float_of_int (bytes - c.last_bytes) *. 8.0 /. dt in
      c.last_bytes <- bytes;
      c.ewma_bps <-
        ((1.0 -. rate_ewma_alpha) *. c.ewma_bps) +. (rate_ewma_alpha *. inst);
      Fluid_engine.set_packet_signals t.engine ~link:c.fluid_link
        ~rate_bps:c.ewma_bps
        ~backlog_bytes:((Link.qdisc c.link).Ccsim_net.Qdisc.backlog_bytes ()))
    t.couplings;
  (* 2. advance the fluid population one step *)
  Fluid_engine.step t.engine;
  (* 3. fluid -> packet: served aggregate becomes the cross-traffic rate
     and buffer share the packet side must live with *)
  List.iter
    (fun c ->
      Link.set_cross_rate_bps c.link
        (Fluid_engine.link_served_bps t.engine c.fluid_link);
      (Link.qdisc c.link).Ccsim_net.Qdisc.set_cross_backlog
        (int_of_float (Fluid_engine.link_queue_bytes t.engine c.fluid_link)))
    t.couplings

let attach sim engine ~couplings =
  if Fluid_engine.now_s engine > 0.0 then
    invalid_arg "Fluid_driver.attach: fluid engine already stepped";
  let couplings =
    List.map
      (fun (fluid_link, link) ->
        { fluid_link; link; last_bytes = Link.bytes_delivered link; ewma_bps = 0.0 })
      couplings
  in
  let t = { sim; engine; couplings } in
  (* The fluid stepper is a periodic driver like the timeline/watchdog
     drivers: it ticks every engine step while packet events remain, so
     a drained run is not kept alive by fluid time alone (catch_up
     covers the remainder). *)
  Sim.periodic_driver sim ~interval:(Fluid_engine.dt_s engine) ~comp:"fluid" (fun () ->
      step_couplings t);
  (match Sim.watchdog sim with
  | Some w ->
      List.iter
        (fun c ->
          Fluid_engine.register_link_invariant engine
            ~component:(Printf.sprintf "fluid/coupling:%d" c.fluid_link) w c.fluid_link)
        t.couplings
  | None -> ());
  List.iter
    (fun c ->
      let l = c.fluid_link in
      let labels = [ ("fluid_link", string_of_int l) ] in
      Sim.add_timeline_probe sim ~labels "fluid_cross_bps" (fun () ->
          Fluid_engine.link_served_bps engine l);
      Sim.add_timeline_probe sim ~labels "fluid_cross_queue_bytes" (fun () ->
          Fluid_engine.link_queue_bytes engine l);
      Sim.add_timeline_probe sim ~labels "packet_cross_bps" (fun () -> c.ewma_bps))
    t.couplings;
  t

let engine t = t.engine

let catch_up t ~until_s =
  let dt = Fluid_engine.dt_s t.engine in
  while Fluid_engine.now_s t.engine < until_s -. (0.5 *. dt) do
    step_couplings t
  done;
  match Sim.watchdog t.sim with
  | Some w -> Obs.Watchdog.check_now w ~now:(Fluid_engine.now_s t.engine)
  | None -> ()
