(** Per-flow fluid (rate-ODE) CCA models.

    Each model maps a scalar state — a congestion window in packets for
    the loss-based CCAs, a pacing rate in bit/s for BBR — plus the link
    signals (RTT, fluid loss probability, delivered service ratio) to a
    time derivative. The engine integrates one such scalar per flow;
    everything here is branch-light arithmetic on unboxed floats so a
    million-flow population steps in a few flow-passes per tick.

    Model fidelity targets steady-state throughput shares (the quantity
    the cross-validation test compares against the packet engine), not
    packet-timescale dynamics: Reno is the Misra–Gong–Towsley AIMD
    fluid, CUBIC its TCP-friendly AIMD equivalent, and BBR a
    rate-convergence model with probe-gain and inflight-cap regimes. *)

type t = Reno | Cubic | Bbr

val index : t -> int
(** Dense tag (0, 1, 2) for struct-of-arrays storage. *)

val of_index : int -> t
(** Inverse of {!index}; raises [Invalid_argument] on other ints. *)

val name : t -> string

val of_name : string -> t option
(** Parses ["reno"], ["cubic"], ["bbr"]. *)

val pkt_bytes : int
(** Wire size of a full segment (MSS + headers); fluid rates are wire
    rates. *)

val pkt_bits : float

val initial_state : tag:int -> rtt_s:float -> float
(** State on activation: IW10 for window models, 10 packets per base
    RTT (as a rate) for BBR. *)

val rate_bps : tag:int -> w:float -> rtt_s:float -> float
(** Instantaneous wire sending rate of a flow with state [w]. *)

val deriv :
  tag:int ->
  w:float ->
  rtt_s:float ->
  rtt_min_s:float ->
  loss_frac:float ->
  service_ratio:float ->
  float
(** State derivative given the flow's current RTT, its base (minimum)
    RTT, the link's fluid loss probability, and the fraction of offered
    load the link is currently delivering. *)
