type kind =
  | Timed of float
  | Sized of int

type t = {
  id : string;
  title : string;
  kind : kind;
  render : ?duration:float -> ?n:int -> seed:int -> unit -> string;
}

let timed id title default render = { id; title; kind = Timed default; render }
let sized id title default render = { id; title; kind = Sized default; render }

let all =
  [
    timed "fig1" "Contention-prerequisite taxonomy behind Figure 1" 60.0
      (fun ?duration ?n:_ ~seed () -> Fig1_taxonomy.(render (run ?duration ~seed ())));
    sized "fig2" "M-Lab NDT categorization + change-point analysis (Figure 2)" 9984
      (fun ?duration:_ ?n ~seed () -> Fig2.(render (run ?n ~seed ())));
    timed "fig3" "Nimbus elasticity vs five cross-traffic types (Figure 3)" 45.0
      (fun ?duration ?n:_ ~seed () -> Fig3.(render (run ?duration ~seed ())));
    timed "e1" "FIFO vs DRR fair queueing across CCA pairings" 60.0
      (fun ?duration ?n:_ ~seed () -> E1_fq.(render (run ?duration ~seed ())));
    timed "e2" "Token-bucket shaping and policing pin the allocation" 30.0
      (fun ?duration ?n:_ ~seed () -> E2_throttle.(render (run ?duration ~seed ())));
    timed "e3" "Short flows fit in the initial window" 60.0
      (fun ?duration ?n:_ ~seed () -> E3_short_flows.(render (run ?duration ~seed ())));
    timed "e4" "App-limited flows receive exactly their demand" 30.0
      (fun ?duration ?n:_ ~seed () -> E4_app_limited.(render (run ?duration ~seed ())));
    timed "e5" "ABR video bounds its own demand" 60.0
      (fun ?duration ?n:_ ~seed () -> E5_video.(render (run ?duration ~seed ())));
    timed "e6" "Sub-packet BDP starvation (Chen et al.)" 120.0
      (fun ?duration ?n:_ ~seed () -> E6_subpacket.(render (run ?duration ~seed ())));
    timed "e7" "Token-bucket bursts cause jitter under fair queueing" 30.0
      (fun ?duration ?n:_ ~seed () -> E7_jitter.(render (run ?duration ~seed ())));
    timed "x1" "Utilization/delay trade-off on a wandering cellular-like link" 60.0
      (fun ?duration ?n:_ ~seed () -> X1_cellular.(render (run ?duration ~seed ())));
    timed "x2" "Ware et al. harm matrix across CCA pairings" 40.0
      (fun ?duration ?n:_ ~seed () -> X2_harm.(render (run ?duration ~seed ())));
    timed "x3" "Per-flow vs per-user FQ vs the RCS share model" 40.0
      (fun ?duration ?n:_ ~seed () -> X3_rcs.(render (run ?duration ~seed ())));
    timed "x4" "Scavenger (LEDBAT) software updates do not contend" 90.0
      (fun ?duration ?n:_ ~seed () -> X4_scavenger.(render (run ?duration ~seed ())));
    timed "a1" "Ablation: Nimbus pulse amplitude vs separation" 45.0
      (fun ?duration ?n:_ ~seed () -> A1_pulse_ablation.(render (run ?duration ~seed ())));
    sized "a2" "Ablation: change-point penalty vs detector accuracy" 3000
      (fun ?duration:_ ?n ~seed () -> A2_penalty_ablation.(render (run ?n ~seed ())));
    timed "a3" "Ablation: DRR quantum vs isolation quality" 40.0
      (fun ?duration ?n:_ ~seed () -> A3_quantum_ablation.(render (run ?duration ~seed ())));
    timed "a4" "Ablation: buffer depth vs BBR/Reno share" 60.0
      (fun ?duration ?n:_ ~seed () -> A4_buffer_ablation.(render (run ?duration ~seed ())));
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let effective_params e ?duration ?n ~seed () =
  let main =
    match e.kind with
    | Timed default ->
        ("duration", Printf.sprintf "%g" (Option.value duration ~default))
    | Sized default -> ("n", string_of_int (Option.value n ~default))
  in
  [ main; ("seed", string_of_int seed) ]
