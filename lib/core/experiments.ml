type kind =
  | Timed of float
  | Sized of int

type t = {
  id : string;
  title : string;
  kind : kind;
  backends : string list;
  supports_faults : bool;
  render : ?backend:string -> ?duration:float -> ?n:int -> seed:int -> unit -> string;
}

(* Timed experiments all run through Scenario.run, which consults the
   ambient fault-plan arming; the sized ones (fig2's synthetic M-Lab
   population, the a2 detector ablation, p1's fluid/hybrid population)
   never build a packet topology a plan could act on. *)
let timed id title default render =
  {
    id;
    title;
    kind = Timed default;
    backends = [ "packet" ];
    supports_faults = true;
    render = (fun ?backend:_ ?duration ?n ~seed () -> render ?duration ?n ~seed ());
  }

let sized id title default render =
  {
    id;
    title;
    kind = Sized default;
    backends = [ "packet" ];
    supports_faults = false;
    render = (fun ?backend:_ ?duration ?n ~seed () -> render ?duration ?n ~seed ());
  }

(* Experiments that run on more than one backend list them explicitly
   (first = default) and receive the validated [backend] string. *)
let sized_multi id title default backends render =
  { id; title; kind = Sized default; backends; supports_faults = false; render }

let all =
  [
    timed "fig1" "Contention-prerequisite taxonomy behind Figure 1" 60.0
      (fun ?duration ?n:_ ~seed () -> Fig1_taxonomy.(render (run ?duration ~seed ())));
    sized "fig2" "M-Lab NDT categorization + change-point analysis (Figure 2)" 9984
      (fun ?duration:_ ?n ~seed () -> Fig2.(render (run ?n ~seed ())));
    timed "fig3" "Nimbus elasticity vs five cross-traffic types (Figure 3)" 45.0
      (fun ?duration ?n:_ ~seed () -> Fig3.(render (run ?duration ~seed ())));
    timed "e1" "FIFO vs DRR fair queueing across CCA pairings" 60.0
      (fun ?duration ?n:_ ~seed () -> E1_fq.(render (run ?duration ~seed ())));
    timed "e2" "Token-bucket shaping and policing pin the allocation" 30.0
      (fun ?duration ?n:_ ~seed () -> E2_throttle.(render (run ?duration ~seed ())));
    timed "e3" "Short flows fit in the initial window" 60.0
      (fun ?duration ?n:_ ~seed () -> E3_short_flows.(render (run ?duration ~seed ())));
    timed "e4" "App-limited flows receive exactly their demand" 30.0
      (fun ?duration ?n:_ ~seed () -> E4_app_limited.(render (run ?duration ~seed ())));
    timed "e5" "ABR video bounds its own demand" 60.0
      (fun ?duration ?n:_ ~seed () -> E5_video.(render (run ?duration ~seed ())));
    timed "e6" "Sub-packet BDP starvation (Chen et al.)" 120.0
      (fun ?duration ?n:_ ~seed () -> E6_subpacket.(render (run ?duration ~seed ())));
    timed "e7" "Token-bucket bursts cause jitter under fair queueing" 30.0
      (fun ?duration ?n:_ ~seed () -> E7_jitter.(render (run ?duration ~seed ())));
    timed "x1" "Utilization/delay trade-off on a wandering cellular-like link" 60.0
      (fun ?duration ?n:_ ~seed () -> X1_cellular.(render (run ?duration ~seed ())));
    timed "x2" "Ware et al. harm matrix across CCA pairings" 40.0
      (fun ?duration ?n:_ ~seed () -> X2_harm.(render (run ?duration ~seed ())));
    timed "x3" "Per-flow vs per-user FQ vs the RCS share model" 40.0
      (fun ?duration ?n:_ ~seed () -> X3_rcs.(render (run ?duration ~seed ())));
    timed "x4" "Scavenger (LEDBAT) software updates do not contend" 90.0
      (fun ?duration ?n:_ ~seed () -> X4_scavenger.(render (run ?duration ~seed ())));
    timed "a1" "Ablation: Nimbus pulse amplitude vs separation" 45.0
      (fun ?duration ?n:_ ~seed () -> A1_pulse_ablation.(render (run ?duration ~seed ())));
    sized "a2" "Ablation: change-point penalty vs detector accuracy" 3000
      (fun ?duration:_ ?n ~seed () -> A2_penalty_ablation.(render (run ?n ~seed ())));
    timed "a3" "Ablation: DRR quantum vs isolation quality" 40.0
      (fun ?duration ?n:_ ~seed () -> A3_quantum_ablation.(render (run ?duration ~seed ())));
    timed "a4" "Ablation: buffer depth vs BBR/Reno share" 60.0
      (fun ?duration ?n:_ ~seed () -> A4_buffer_ablation.(render (run ?duration ~seed ())));
    timed "c1" "Chaos: elasticity-verdict stability under canonical fault plans" 45.0
      (fun ?duration ?n:_ ~seed () -> C1_chaos.(render (run ?duration ~seed ())));
    sized_multi "p1" "Contention prevalence across a fluid/hybrid user population" 2000
      [ "fluid"; "hybrid" ]
      (fun ?backend ?duration:_ ?n ~seed () ->
        let backend =
          match backend with
          | None -> P1_prevalence.Fluid
          | Some s -> (
              match P1_prevalence.backend_of_string s with
              | Some b -> b
              | None -> invalid_arg (Printf.sprintf "p1: unsupported backend %S" s))
        in
        P1_prevalence.(render (run ?n ~seed ~backend ())));
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let effective_params e ?backend ?duration ?n ~seed () =
  let main =
    match e.kind with
    | Timed default ->
        ("duration", Printf.sprintf "%g" (Option.value duration ~default))
    | Sized default -> ("n", string_of_int (Option.value n ~default))
  in
  let base = [ main; ("seed", string_of_int seed) ] in
  (* Single-backend experiments keep their historical parameter set, so
     cached results from before the backend axis stay valid. *)
  match e.backends with
  | [] | [ _ ] -> base
  | default :: _ -> base @ [ ("backend", Option.value backend ~default) ]
