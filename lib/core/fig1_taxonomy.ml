module U = Ccsim_util

type row = {
  condition : string;
  shares_segment : bool;
  saturated : bool;
  same_queue : bool;
  aggressive_mbps : float;
  reno_mbps : float;
  ratio : float;
  cca_determined : bool;
}

let capacity = U.Units.mbps 40.0

let run ?(duration = 60.0) ?(seed = 42) () =
  let mk ~name ~qdisc ~ingress_a ~ingress_reno ~apps =
    let app_a, app_reno = apps in
    Scenario.make ~name ~rate_bps:capacity ~delay_s:0.02 ~qdisc ~duration ~warmup:10.0 ~seed
      [
        Scenario.flow "aggressive" ~cca:Scenario.Cubic ~app:app_a ~ingress:ingress_a;
        Scenario.flow "reno" ~cca:Scenario.Reno ~app:app_reno ~ingress:ingress_reno;
      ]
  in
  let fifo = Scenario.Fifo { limit_bytes = None } in
  let drr = Scenario.Drr { quantum_bytes = None; limit_bytes = None } in
  let bulk = (Scenario.Bulk, Scenario.Bulk) in
  let shape r =
    Ccsim_net.Topology.Shape
      { rate_bps = r; burst_bytes = 50 * (U.Units.mss + U.Units.header_bytes) }
  in
  let cases =
    [
      (* (i) violated: per-user shaping below half the link means the
         shared segment never binds — each flow's bottleneck is its own
         ingress. *)
      ( "isolated ingress bottlenecks",
        false,
        true,
        true,
        mk ~name:"fig1/isolated" ~qdisc:fifo
          ~ingress_a:(shape (U.Units.mbps 15.0))
          ~ingress_reno:(shape (U.Units.mbps 15.0))
          ~apps:bulk );
      (* (ii) violated: both flows app-limited well below capacity. *)
      ( "shared but unsaturated",
        true,
        false,
        true,
        mk ~name:"fig1/unsaturated" ~qdisc:fifo ~ingress_a:Ccsim_net.Topology.No_ingress
          ~ingress_reno:Ccsim_net.Topology.No_ingress
          ~apps:
            ( Scenario.Cbr_tcp { rate_bps = U.Units.mbps 12.0 },
              Scenario.Cbr_tcp { rate_bps = U.Units.mbps 12.0 } ) );
      (* (iii) violated: saturated shared segment, but per-flow queues. *)
      ( "saturated, fair-queued",
        true,
        true,
        false,
        mk ~name:"fig1/fq" ~qdisc:drr ~ingress_a:Ccsim_net.Topology.No_ingress
          ~ingress_reno:Ccsim_net.Topology.No_ingress ~apps:bulk );
      (* All three hold: the only case where CCA dynamics can rule. *)
      ( "saturated, shared FIFO queue",
        true,
        true,
        true,
        mk ~name:"fig1/contended" ~qdisc:fifo ~ingress_a:Ccsim_net.Topology.No_ingress
          ~ingress_reno:Ccsim_net.Topology.No_ingress ~apps:bulk );
    ]
  in
  List.map
    (fun (condition, shares_segment, saturated, same_queue, scenario) ->
      let result = Scenario.run scenario in
      let aggressive = Results.find result "aggressive" and reno = Results.find result "reno" in
      let ratio = aggressive.goodput_bps /. Float.max 1.0 reno.goodput_bps in
      {
        condition;
        shares_segment;
        saturated;
        same_queue;
        aggressive_mbps = U.Units.to_mbps aggressive.goodput_bps;
        reno_mbps = U.Units.to_mbps reno.goodput_bps;
        ratio;
        cca_determined = ratio > 1.5 || ratio < 2.0 /. 3.0;
      })
    cases

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "Figure 1 (backing data): CCA dynamics rule only when all three contention prerequisites hold";
  let table =
    U.Table.create
      ~columns:
        [
          ("condition", U.Table.Left);
          ("cubic Mbit/s", U.Table.Right);
          ("reno Mbit/s", U.Table.Right);
          ("ratio", U.Table.Right);
          ("allocation set by", U.Table.Left);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.condition;
          U.Table.cell_f r.aggressive_mbps;
          U.Table.cell_f r.reno_mbps;
          U.Table.cell_f r.ratio;
          (if r.cca_determined then "CCA dynamics" else "policy/demand");
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
