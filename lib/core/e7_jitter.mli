(** E7 — contention on alternate metrics: token-bucket bursts cause
    jitter, and the operator's queueing mechanism decides how much
    (§5.2).

    A smooth CBR UDP flow (a stand-in for live video) shares an access
    link with a bursty on/off flow shaped by an upstream token bucket —
    tokens can be spent arbitrarily fast once accrued, so larger bucket
    bursts mean burstier arrivals. Under FIFO, the CBR flow's
    inter-arrival jitter grows with the cross flow's burst size; DRR
    fair queueing caps the inflation at one round of interleaving but
    cannot remove it. Bandwidth isolation is not latency isolation,
    and "the precise mechanism the operator uses ... affects the way
    flows contend for low jitter". *)

type row = {
  qdisc : string;
  burst_packets : int;  (** token-bucket burst of the cross flow; 0 = none *)
  cbr_jitter_ms : float;
  cbr_goodput_mbps : float;
  cross_goodput_mbps : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
