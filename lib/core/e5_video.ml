module U = Ccsim_util

type row = {
  capacity_mbps : float;
  with_bulk : bool;
  video_bitrate_mbps : float;
  video_goodput_mbps : float;
  rebuffer_s : float;
  bulk_goodput_mbps : float;
  utilization : float;
}

let run ?(duration = 60.0) ?(seed = 42) () =
  let capacities = [ 10.0; 20.0; 40.0; 80.0 ] in
  List.concat_map
    (fun capacity ->
      List.map
        (fun with_bulk ->
          let flows =
            Scenario.flow "video" ~cca:Scenario.Cubic ~app:(Scenario.Video { ladder_bps = None })
            ::
            (if with_bulk then
               [ Scenario.flow "bulk" ~cca:Scenario.Cubic ~app:Scenario.Bulk ~start:10.0 ]
             else [])
          in
          let scenario =
            Scenario.make
              ~name:(Printf.sprintf "e5/%gM%s" capacity (if with_bulk then "+bulk" else ""))
              ~rate_bps:(U.Units.mbps capacity) ~delay_s:0.02 ~duration ~warmup:15.0 ~seed flows
          in
          let result = Scenario.run scenario in
          let video = Results.find result "video" in
          let stats =
            match video.video with
            | Some s -> s
            | None -> invalid_arg "E5: video flow carries no ABR stats"
          in
          {
            capacity_mbps = capacity;
            with_bulk;
            video_bitrate_mbps = U.Units.to_mbps stats.mean_bitrate_bps;
            video_goodput_mbps = U.Units.to_mbps video.goodput_bps;
            rebuffer_s = stats.rebuffer_s;
            bulk_goodput_mbps =
              (if with_bulk then U.Units.to_mbps (Results.find result "bulk").goodput_bps
               else 0.0);
            utilization = result.utilization;
          })
        [ false; true ])
    capacities

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "E5: ABR video bounds its own demand (ladder top 25 Mbit/s)";
  let table =
    U.Table.create
      ~columns:
        [
          ("capacity", U.Table.Right);
          ("bulk?", U.Table.Left);
          ("chosen bitrate", U.Table.Right);
          ("video Mbit/s", U.Table.Right);
          ("rebuffer s", U.Table.Right);
          ("bulk Mbit/s", U.Table.Right);
          ("util", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          Printf.sprintf "%.0f M" r.capacity_mbps;
          (if r.with_bulk then "yes" else "no");
          U.Table.cell_f r.video_bitrate_mbps;
          U.Table.cell_f r.video_goodput_mbps;
          U.Table.cell_f r.rebuffer_s;
          U.Table.cell_f r.bulk_goodput_mbps;
          U.Table.cell_f r.utilization;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
