(** Figure 2 reproduction: the §3.1 M-Lab NDT analysis.

    The paper queried one month of M-Lab NDT data (9,984 flows),
    categorized flows that could not have experienced CCA contention
    (application-limited, receiver-limited, cellular), and searched the
    remainder's throughput traces for contention-consistent level
    shifts. We run the same pipeline over a synthetic labelled dataset
    of the same size (see {!Ccsim_measure.Ndt} for the population
    model), which additionally lets us score the detector against
    ground truth. *)

type output = {
  report : Ccsim_measure.Mlab_analysis.report;
  accuracy : Ccsim_measure.Mlab_analysis.accuracy option;
}

val run : ?n:int -> ?seed:int -> unit -> output
(** Default [n] = 9,984 flows, as in the paper. *)

val render : output -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : output -> unit
