(** E4 — application-limited flows get exactly their offered load (§2.2).

    Two CBR-over-TCP flows with different CCAs share an access link
    while their combined demand sweeps from well below to above the
    link capacity. Below capacity, each flow's allocation equals its
    demand, regardless of the CCA pairing; the CCA matters only once
    the demand sum crosses capacity. *)

type row = {
  offered_each_mbps : float;
  offered_sum_mbps : float;
  goodput_a_mbps : float;
  goodput_b_mbps : float;
  demand_satisfied_a : float;  (** goodput / offered *)
  demand_satisfied_b : float;
  jain : float;
}

val capacity_bps : float
val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
