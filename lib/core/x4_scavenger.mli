(** X4 (extension) — scavenger transport removes the residual
    access-link contention case (§2.3).

    §2.3 concedes that persistently backlogged transfers (software
    updates) on access links are the one place CCA contention can still
    occur, and answers that endhost shaping/isolation is cheap. A third
    answer already deployed in practice: run the update over a
    scavenger CCA (LEDBAT, RFC 6817). An ABR video stream shares a home
    access link with a software update running over Cubic vs over
    LEDBAT: the scavenger keeps the update moving while the video (and
    its latency) stays effectively uncontended. *)

type row = {
  update_cca : string;
  video_bitrate_mbps : float;
  video_rebuffer_s : float;
  update_mbps : float;
  mean_srtt_ms : float;  (** the video flow's smoothed RTT *)
  utilization : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
