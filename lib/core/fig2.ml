module U = Ccsim_util
module M = Ccsim_measure

type output = {
  report : M.Mlab_analysis.report;
  accuracy : M.Mlab_analysis.accuracy option;
}

let run ?(n = 9984) ?(seed = 42) () =
  let rng = U.Rng.create seed in
  let records = M.Ndt.generate ~rng ~n () in
  (* Mirror each contention candidate's throughput trace into the
     ambient timeline (exact values, one series per flow), so `ccsim
     analyze` can rerun the change-point detector offline over a
     `--series` export and reproduce this run's verdicts. *)
  (match (Ccsim_obs.Scope.ambient ()).Ccsim_obs.Scope.timeline with
  | Some tl ->
      List.iter
        (fun (r : M.Ndt.record) ->
          if M.Mlab_analysis.category_equal (M.Mlab_analysis.categorize r) M.Mlab_analysis.Candidate then begin
            let s =
              Ccsim_obs.Timeline.series tl
                ~labels:[ ("flow", string_of_int r.id) ]
                "ndt_throughput_mbps"
            in
            Array.iteri
              (fun i v ->
                Ccsim_obs.Timeline.record s ~time:(float_of_int i *. r.interval_s) ~value:v)
              r.throughput_mbps
          end)
        records
  | None -> ());
  let report = M.Mlab_analysis.analyze records in
  { report; accuracy = M.Mlab_analysis.score_against_ground_truth report }

let render { report; accuracy } =
  Report.with_buf @@ fun b ->
  Report.line b "Figure 2: M-Lab NDT categorization and throughput change analysis";
  Printf.bprintf b "(synthetic NDT population of %d flows; see DESIGN.md for the substitution)\n"
    report.total;
  let table =
    U.Table.create
      ~columns:[ ("category", U.Table.Left); ("flows", U.Table.Right); ("share", U.Table.Right) ]
  in
  let pct k = U.Table.cell_pct (float_of_int k /. float_of_int (max 1 report.total)) in
  U.Table.add_row table [ "application-limited"; string_of_int report.n_app_limited; pct report.n_app_limited ];
  U.Table.add_row table [ "receiver-limited"; string_of_int report.n_rwnd_limited; pct report.n_rwnd_limited ];
  U.Table.add_row table [ "cellular"; string_of_int report.n_cellular; pct report.n_cellular ];
  U.Table.add_row table [ "contention candidates"; string_of_int report.n_candidates; pct report.n_candidates ];
  U.Table.add_rule table;
  U.Table.add_row table
    [
      "with contention-consistent shifts";
      string_of_int report.n_contention_consistent;
      pct report.n_contention_consistent;
    ];
  Report.table b table;
  (match report.change_count_cdf with
  | Some cdf ->
      Printf.bprintf b "(b) change points per candidate flow: p50=%.0f p90=%.0f max=%.0f\n"
        (U.Cdf.quantile cdf 0.5) (U.Cdf.quantile cdf 0.9) (U.Cdf.max_value cdf)
  | None -> ());
  (match report.shift_cdf with
  | Some cdf ->
      Printf.bprintf b
        "(c) largest level shift / mean throughput among candidates: p50=%.2f p90=%.2f\n"
        (U.Cdf.quantile cdf 0.5) (U.Cdf.quantile cdf 0.9)
  | None -> ());
  (match accuracy with
  | Some a ->
      Printf.bprintf b
        "detector vs ground truth (positives = genuinely contended): precision=%.2f recall=%.2f (tp=%d fp=%d fn=%d tn=%d)\n"
        a.precision a.recall a.true_positives a.false_positives a.false_negatives
        a.true_negatives
  | None -> ())

let print output = print_string (render output)
