(** E3 — most flows fit in the initial window (§2.2).

    A Poisson short-flow workload with heavy-tailed (bounded-Pareto)
    sizes runs alone on an access link. For each mean flow size we
    report what fraction of flows complete without ever leaving the
    ten-segment initial window — flows whose bandwidth allocation no
    congestion-avoidance dynamics could have influenced — plus the flow
    completion time distribution. *)

type row = {
  mean_size_bytes : float;
  spawned : int;
  completed : int;
  fraction_in_iw : float;
  fct_p50_s : float;
  fct_p99_s : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
