module U = Ccsim_util

type row = {
  offered_each_mbps : float;
  offered_sum_mbps : float;
  goodput_a_mbps : float;
  goodput_b_mbps : float;
  demand_satisfied_a : float;
  demand_satisfied_b : float;
  jain : float;
}

let capacity_bps = U.Units.mbps 50.0

let run ?(duration = 30.0) ?(seed = 42) () =
  let rates_mbps = [ 5.0; 10.0; 15.0; 20.0; 25.0; 30.0; 35.0 ] in
  List.map
    (fun rate ->
      let rate_bps = U.Units.mbps rate in
      let scenario =
        Scenario.make
          ~name:(Printf.sprintf "e4/%gMbps-each" rate)
          ~rate_bps:capacity_bps ~delay_s:0.02 ~duration ~warmup:5.0 ~seed
          [
            Scenario.flow "a" ~cca:Scenario.Cubic ~app:(Scenario.Cbr_tcp { rate_bps });
            Scenario.flow "b" ~cca:Scenario.Bbr ~app:(Scenario.Cbr_tcp { rate_bps });
          ]
      in
      let result = Scenario.run scenario in
      let a = Results.find result "a" and b = Results.find result "b" in
      let satisfied (f : Results.flow_result) =
        if f.offered_bps <= 0.0 then 1.0 else Float.min 1.0 (f.goodput_bps /. f.offered_bps)
      in
      {
        offered_each_mbps = rate;
        offered_sum_mbps = 2.0 *. rate;
        goodput_a_mbps = U.Units.to_mbps a.goodput_bps;
        goodput_b_mbps = U.Units.to_mbps b.goodput_bps;
        demand_satisfied_a = satisfied a;
        demand_satisfied_b = satisfied b;
        jain = result.jain_index;
      })
    rates_mbps

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "E4: app-limited allocation = demand until the demand sum crosses capacity (50 Mbit/s)";
  let table =
    U.Table.create
      ~columns:
        [
          ("offered each", U.Table.Right);
          ("sum", U.Table.Right);
          ("cubic got", U.Table.Right);
          ("bbr got", U.Table.Right);
          ("satisfied A", U.Table.Right);
          ("satisfied B", U.Table.Right);
          ("jain", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          Printf.sprintf "%.0f M" r.offered_each_mbps;
          Printf.sprintf "%.0f M" r.offered_sum_mbps;
          U.Table.cell_f r.goodput_a_mbps;
          U.Table.cell_f r.goodput_b_mbps;
          U.Table.cell_pct r.demand_satisfied_a;
          U.Table.cell_pct r.demand_satisfied_b;
          U.Table.cell_f ~decimals:3 r.jain;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
