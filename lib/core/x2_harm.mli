(** X2 (extension) — Ware et al.'s harm metric across CCA pairings [68].

    The related-work section points at "Beyond Jain's Fairness Index":
    judge a CCA pairing by how much the contender *hurts* a victim
    relative to the victim's solo performance, on both throughput
    (more-is-better) and delay (less-is-better). For every ordered
    (victim, contender) pair we run the victim alone and then against
    the contender on the same FIFO bottleneck, and report both harms —
    the matrix a deployment-gatekeeping analysis would use. *)

type row = {
  victim : string;
  contender : string;
  solo_mbps : float;
  contended_mbps : float;
  throughput_harm : float;  (** (solo − contended) / solo, clamped to [0,1] *)
  solo_srtt_ms : float;
  contended_srtt_ms : float;
  latency_harm : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
