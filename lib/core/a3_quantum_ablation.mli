(** A3 (ablation) — DRR quantum vs isolation quality.

    DRR approximates max-min fairness to within one quantum per round;
    large quanta degrade short-timescale isolation (and therefore
    delay), tiny quanta cost scheduler work. The sweep runs the E1
    worst-case pairing (BBR vs Reno) under quanta from 1/4 to 16
    packets and reports fairness and the victim's queueing delay. *)

type row = {
  quantum_packets : float;
  jain : float;  (** between the two bulk flows *)
  reno_mbps : float;
  bbr_mbps : float;
  reno_srtt_ms : float;
  cbr_jitter_ms : float;
      (** inter-arrival jitter of a thin CBR flow sharing the scheduler —
          the metric the quantum actually moves *)
  utilization : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
