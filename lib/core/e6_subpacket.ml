module U = Ccsim_util

type row = {
  n_flows : int;
  qdisc : string;
  bdp_packets : float;
  jain_long : float;
  jain_short_p10 : float;
  starved_windows : float;
  min_flow_mbps : float;
  max_flow_mbps : float;
}

(* 400 kbit/s at 80 ms RTT: BDP = 4 kB, under 3 full packets; with N
   flows the per-flow share is a fraction of a packet per RTT. *)
let rate_bps = U.Units.kbps 400.0
let rtt_s = 0.08

let window_s = 2.0

let run ?(duration = 120.0) ?(seed = 42) () =
  let warmup = 20.0 in
  let qdiscs =
    [
      ("fifo", Scenario.Fifo { limit_bytes = Some (8 * (U.Units.mss + U.Units.header_bytes)) });
      ( "drr-fq",
        Scenario.Drr
          { quantum_bytes = Some 256; limit_bytes = Some (8 * (U.Units.mss + U.Units.header_bytes)) } );
    ]
  in
  List.concat_map
    (fun n_flows ->
      List.map
        (fun (qdisc_name, qdisc) ->
          let flows =
            List.init n_flows (fun i ->
                Scenario.flow (Printf.sprintf "f%d" i) ~cca:Scenario.Reno ~app:Scenario.Bulk)
          in
          let scenario =
            Scenario.make
              ~name:(Printf.sprintf "e6/n=%d/%s" n_flows qdisc_name)
              ~rate_bps ~delay_s:(rtt_s /. 2.0) ~qdisc ~duration ~warmup ~seed
              ~monitor_interval:0.5 flows
          in
          let result = Scenario.run scenario in
          let goodputs = Results.goodputs result in
          let fair_share = rate_bps /. float_of_int n_flows in
          (* Windowed throughput per flow over the measurement period. *)
          let windows = int_of_float ((duration -. warmup) /. window_s) in
          let per_window =
            List.map
              (fun (f : Results.flow_result) ->
                Array.init windows (fun w ->
                    let lo = warmup +. (float_of_int w *. window_s) in
                    let hi = lo +. window_s in
                    let ts = U.Timeseries.between f.throughput ~lo ~hi in
                    if U.Timeseries.is_empty ts then 0.0 else U.Timeseries.mean_value ts))
              result.flows
          in
          let jains =
            Array.init windows (fun w ->
                U.Fairness.jain_index
                  (Array.of_list (List.map (fun a -> a.(w)) per_window)))
          in
          let starved = ref 0 and total = ref 0 in
          List.iter
            (fun a ->
              Array.iter
                (fun v ->
                  incr total;
                  if v < 0.1 *. fair_share then incr starved)
                a)
            per_window;
          {
            n_flows;
            qdisc = qdisc_name;
            bdp_packets =
              U.Units.bdp_packets ~rate_bps ~rtt_s ~mss:(U.Units.mss + U.Units.header_bytes);
            jain_long = result.jain_index;
            jain_short_p10 = U.Stats.percentile jains 10.0;
            starved_windows =
              (if !total = 0 then 0.0 else float_of_int !starved /. float_of_int !total);
            min_flow_mbps = U.Units.to_mbps (Array.fold_left Float.min infinity goodputs);
            max_flow_mbps = U.Units.to_mbps (Array.fold_left Float.max 0.0 goodputs);
          })
        qdiscs)
    [ 2; 4; 8 ]

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "E6: sub-packet BDP regime (400 kbit/s, 80 ms RTT; BDP < 3 packets total)";
  let table =
    U.Table.create
      ~columns:
        [
          ("flows", U.Table.Right);
          ("qdisc", U.Table.Left);
          ("jain (long)", U.Table.Right);
          ("jain 2s-window p10", U.Table.Right);
          ("starved windows", U.Table.Right);
          ("min Mbit/s", U.Table.Right);
          ("max Mbit/s", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          string_of_int r.n_flows;
          r.qdisc;
          U.Table.cell_f ~decimals:3 r.jain_long;
          U.Table.cell_f ~decimals:3 r.jain_short_p10;
          U.Table.cell_pct r.starved_windows;
          U.Table.cell_f ~decimals:3 r.min_flow_mbps;
          U.Table.cell_f ~decimals:3 r.max_flow_mbps;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
