(** P1: contention prevalence across a user population (fluid/hybrid).

    Every user is a fluid access link with a service-plan capacity
    carrying 1–3 flows with heavy-tailed demand caps, exponential
    on/off activity, and a content-provider CCA mix; the experiment
    reports the fraction of users whose link ever spent meaningful time
    contended — the paper's prevalence question at population scale.
    The hybrid backend adds one packet-level "household" (CUBIC + Reno
    bulk foreground) coupled to a fluid background aggregate. *)

type backend = Fluid | Hybrid

val backend_of_string : string -> backend option

val contended_threshold_s : float
(** Contended seconds past which a user counts as "in contention". *)

type tier_row = {
  tier : string;
  plan_mbps : float;
  users : int;
  flows : int;
  contended : int;
  util : float;
}

type hybrid_stats = {
  fg_cubic_mbps : float;
  fg_reno_mbps : float;
  bg_served_mbps : float;
  coupled_link_mbps : float;
  coupled_contended_s : float;
}

type result = {
  backend : backend;
  n : int;
  seed : int;
  tier_rows : tier_row list;
  prevalence : float;
  mean_contended_frac : float;
  drop_frac : float;
  hybrid : hybrid_stats option;
}

val run : ?n:int -> ?seed:int -> ?backend:backend -> unit -> result
(** [n] is the population size (default 2000). *)

val render : result -> string
val print : result -> unit
