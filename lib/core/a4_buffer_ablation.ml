module U = Ccsim_util

type row = {
  buffer_bdp : float;
  bbr_mbps : float;
  reno_mbps : float;
  bbr_share : float;
  loss_rate : float;
}

let rate_bps = U.Units.mbps 48.0
let rtt_s = 0.05

let run ?(duration = 60.0) ?(seed = 42) () =
  let bdp = U.Units.bdp_bytes ~rate_bps ~rtt_s in
  List.map
    (fun buffer_bdp ->
      let limit = max (4 * (U.Units.mss + U.Units.header_bytes))
          (int_of_float (buffer_bdp *. float_of_int bdp))
      in
      let scenario =
        Scenario.make
          ~name:(Printf.sprintf "a4/buf=%gbdp" buffer_bdp)
          ~rate_bps ~delay_s:(rtt_s /. 2.0)
          ~qdisc:(Scenario.Fifo { limit_bytes = Some limit })
          ~duration ~warmup:15.0 ~seed
          [
            Scenario.flow "bbr" ~cca:Scenario.Bbr ~app:Scenario.Bulk;
            Scenario.flow "reno" ~cca:Scenario.Reno ~app:Scenario.Bulk;
          ]
      in
      let result = Scenario.run scenario in
      let bbr = Results.find result "bbr" and reno = Results.find result "reno" in
      let total = bbr.goodput_bps +. reno.goodput_bps in
      {
        buffer_bdp;
        bbr_mbps = U.Units.to_mbps bbr.goodput_bps;
        reno_mbps = U.Units.to_mbps reno.goodput_bps;
        bbr_share = (if total > 0.0 then bbr.goodput_bps /. total else 0.0);
        loss_rate = result.bottleneck_loss_rate;
      })
    [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "A4: buffer depth vs BBR/Reno share on a FIFO bottleneck (Ware et al. shape)";
  let table =
    U.Table.create
      ~columns:
        [
          ("buffer (BDP)", U.Table.Right);
          ("bbr Mbit/s", U.Table.Right);
          ("reno Mbit/s", U.Table.Right);
          ("bbr share", U.Table.Right);
          ("loss rate", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          U.Table.cell_f r.buffer_bdp;
          U.Table.cell_f r.bbr_mbps;
          U.Table.cell_f r.reno_mbps;
          U.Table.cell_pct r.bbr_share;
          U.Table.cell_pct r.loss_rate;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
