(** E5 — ABR video bounds its own demand (§2.2).

    An ABR video stream shares an access link with (optionally) a bulk
    flow, across access capacities spanning below and above the ladder
    top. With ample capacity the stream pins itself at the top rung and
    leaves the rest idle — no contention despite a "greedy" transport
    underneath; under tighter capacity the ABR steps down rather than
    fight, and the bulk flow absorbs the residual. *)

type row = {
  capacity_mbps : float;
  with_bulk : bool;
  video_bitrate_mbps : float;  (** mean chosen ladder rate *)
  video_goodput_mbps : float;
  rebuffer_s : float;
  bulk_goodput_mbps : float;
  utilization : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
