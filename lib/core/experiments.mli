(** Registry of every figure, experiment, and ablation in DESIGN.md
    order.

    Each entry packages the experiment's identifier, its one-line title,
    its default parameterization, and a closure running the experiment
    and rendering its paper-style rows to a string. The CLI, the bench
    harness, and the runner subsystem all enumerate experiments through
    this table instead of hard-coding the experiment modules. *)

type kind =
  | Timed of float  (** default simulated seconds per scenario *)
  | Sized of int  (** default synthetic population size (fig2, a2) *)

type t = {
  id : string;  (** CLI subcommand name, e.g. ["fig1"] *)
  title : string;  (** one-line description (CLI doc string) *)
  kind : kind;
  backends : string list;
      (** Supported simulation backends, first = default. [["packet"]]
          for the classic DES experiments; population experiments list
          ["fluid"]/["hybrid"]. The CLI validates [--backend] against
          this list. *)
  supports_faults : bool;
      (** Whether a [--faults] plan can act on this experiment: true for
          the Scenario-backed (timed) experiments, false for the
          synthetic-population ones (fig2, a2, p1). *)
  render : ?backend:string -> ?duration:float -> ?n:int -> seed:int -> unit -> string;
      (** Run the experiment and render its report. [Timed] experiments
          read [duration] and ignore [n]; [Sized] ones the reverse.
          Omitted parameters fall back to the experiment's defaults.
          [backend] must be one of [backends] (single-backend
          experiments ignore it). *)
}

val all : t list
(** Every experiment, in DESIGN.md order (figures, e-series, x-series,
    ablations). *)

val find : string -> t option
(** Look up an experiment by [id]. *)

val effective_params :
  t -> ?backend:string -> ?duration:float -> ?n:int -> seed:int -> unit -> (string * string) list
(** Canonical [(key, value)] parameters for a run — the actually
    effective duration/size (defaults applied) plus the seed, plus the
    backend for multi-backend experiments (single-backend experiments
    omit it, keeping their historical digests). Runner job digests are
    derived from these, so a parameter change invalidates the cached
    result. *)
