(** Buffer-backed rendering helpers for the experiments' [render]
    functions.

    Experiments render their paper-style rows to a string so the runner
    subsystem can cache, diff, and reorder whole outputs; each module's
    [print] is just its [render] written to stdout. The helpers mirror
    the printing primitives the modules used before ([print_endline],
    [Printf.printf], {!Ccsim_util.Table.print}) byte for byte. *)

val with_buf : (Buffer.t -> unit) -> string
(** Run the emitter against a fresh buffer and return its contents. *)

val line : Buffer.t -> string -> unit
(** Append [s] followed by a newline. *)

val table : Buffer.t -> Ccsim_util.Table.t -> unit
(** Append the rendered table. *)
