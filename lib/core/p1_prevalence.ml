(* P1: how prevalent is CCA contention across a user population?

   The paper's core claim is that the prerequisites for CCA contention —
   a saturated shared bottleneck, at least two demanding flows, and a
   queue signal doing the allocating — rarely line up for real users.
   This experiment instantiates that question at population scale with
   the fluid backend: every user is an access link with a service-plan
   capacity, carrying a handful of flows with heavy-tailed demand caps
   and exponential on/off activity, drawn from a content-provider-like
   CCA mix. We integrate the whole population and report the fraction
   of users whose access link ever spent meaningful time contended.

   The hybrid backend additionally runs one "observed household":
   packet-level foreground transfers (CUBIC and Reno bulk) through a
   shared packet link coupled to a fluid aggregate of background flows
   drawn from the same demand model — the fluid share presents as cross
   traffic to the packet flows and vice versa (Fluid_driver). *)

module U = Ccsim_util
module Fl = Ccsim_fluid
module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Tcp = Ccsim_tcp
module App = Ccsim_app

type backend = Fluid | Hybrid

let backend_of_string = function
  | "fluid" -> Some Fluid
  | "hybrid" -> Some Hybrid
  | _ -> None

(* Service-plan mix: weights loosely follow access-speed distributions
   in M-Lab-style datasets — most users on mid-tier plans, a tail on
   slow DSL-like and fast FTTH-like plans. *)
let tiers =
  [ ("25M", 25.0, 0.25); ("100M", 100.0, 0.45); ("300M", 300.0, 0.20); ("1G", 1000.0, 0.10) ]

(* Content-provider CCA mix (rough Internet shares: CUBIC default,
   BBR at the large providers, legacy Reno). *)
let cca_mix = [ (Fl.Fluid_model.Cubic, 0.55); (Fl.Fluid_model.Bbr, 0.30); (Fl.Fluid_model.Reno, 0.15) ]

let duration_s = 30.0
let warmup_s = 5.0
let dt_s = 0.02

(* A user counts as having experienced contention when its access link
   accumulated at least this much contended time over the run. *)
let contended_threshold_s = 0.5

type tier_row = {
  tier : string;
  plan_mbps : float;
  users : int;
  flows : int;
  contended : int;  (** users past {!contended_threshold_s} *)
  util : float;  (** mean served utilization of the tier's links *)
}

type hybrid_stats = {
  fg_cubic_mbps : float;
  fg_reno_mbps : float;
  bg_served_mbps : float;
  coupled_link_mbps : float;
  coupled_contended_s : float;
}

type result = {
  backend : backend;
  n : int;
  seed : int;
  tier_rows : tier_row list;
  prevalence : float;  (** fraction of users in contention, overall *)
  mean_contended_frac : float;  (** mean fraction of run time contended *)
  drop_frac : float;  (** population-wide dropped/offered bytes *)
  hybrid : hybrid_stats option;
}

let pick_weighted rng choices =
  let u = U.Rng.float rng 1.0 in
  let rec go acc = function
    | [] -> invalid_arg "P1_prevalence.pick_weighted: empty"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if u < acc +. w then v else go (acc +. w) rest
  in
  go 0.0 choices

(* Build the population; returns the per-user (link, tier index) and the
   per-tier flow counts. *)
let build_population engine rng ~n =
  let tier_arr = Array.of_list tiers in
  let tier_choices = List.mapi (fun i (_, _, w) -> (i, w)) tiers in
  let users =
    Array.init n (fun _ ->
        let ti = pick_weighted rng tier_choices in
        let _, plan_mbps, _ = tier_arr.(ti) in
        let plan = U.Units.mbps plan_mbps in
        (* ~50 ms worth of buffer at the plan rate *)
        let buffer_bytes = Int.max 9000 (int_of_float (0.05 *. plan /. 8.0)) in
        let link = Fl.Fluid_engine.add_link engine ~capacity_bps:plan ~buffer_bytes in
        let nflows = 1 + U.Rng.int rng 3 in
        for _ = 1 to nflows do
          let model = pick_weighted rng cca_mix in
          let rtt_base_s = U.Rng.uniform rng ~lo:0.015 ~hi:0.08 in
          (* Heavy-tailed per-flow demand: Pareto(1.2) from 2 Mbit/s,
             capped at 1.5 plans so aggregate demand sometimes — but
             not usually — saturates the access link. *)
          let cap_bps =
            U.Rng.bounded_pareto rng ~shape:1.2 ~scale:(U.Units.mbps 2.0)
              ~cap:(1.5 *. plan)
          in
          let on_s = U.Rng.uniform rng ~lo:2.0 ~hi:8.0 in
          let off_s = U.Rng.uniform rng ~lo:4.0 ~hi:24.0 in
          let start_active = U.Rng.bernoulli rng ~p:(on_s /. (on_s +. off_s)) in
          ignore
            (Fl.Fluid_engine.add_flow engine ~link ~model ~rtt_base_s ~cap_bps
               ~on_off_s:(on_s, off_s) ~start_active ())
        done;
        (link, ti, nflows))
  in
  users

let summarize backend ~n ~seed engine users hybrid =
  let ntier = List.length tiers in
  let t_users = Array.make ntier 0 in
  let t_flows = Array.make ntier 0 in
  let t_contended = Array.make ntier 0 in
  let t_util = Array.make ntier 0.0 in
  let contended_total = ref 0 in
  let contended_time = ref 0.0 in
  let horizon = Fl.Fluid_engine.now_s engine in
  Array.iter
    (fun (link, ti, nflows) ->
      let contended_s = Fl.Fluid_engine.link_contended_s engine link in
      let served = Fl.Fluid_engine.link_served_bytes engine link in
      t_users.(ti) <- t_users.(ti) + 1;
      t_flows.(ti) <- t_flows.(ti) + nflows;
      t_util.(ti) <-
        t_util.(ti)
        +. (served *. 8.0 /. (horizon *. Fl.Fluid_engine.link_capacity_bps engine link));
      contended_time := !contended_time +. (contended_s /. horizon);
      if contended_s >= contended_threshold_s then begin
        t_contended.(ti) <- t_contended.(ti) + 1;
        incr contended_total
      end)
    users;
  let totals = Fl.Fluid_engine.totals engine in
  let tier_rows =
    List.mapi
      (fun ti (tier, plan_mbps, _) ->
        {
          tier;
          plan_mbps;
          users = t_users.(ti);
          flows = t_flows.(ti);
          contended = t_contended.(ti);
          util = (if t_users.(ti) = 0 then 0.0 else t_util.(ti) /. float_of_int t_users.(ti));
        })
      tiers
  in
  {
    backend;
    n;
    seed;
    tier_rows;
    prevalence = float_of_int !contended_total /. float_of_int (Int.max 1 n);
    mean_contended_frac = !contended_time /. float_of_int (Int.max 1 n);
    drop_frac =
      (if totals.Fl.Fluid_engine.offered_bytes <= 0.0 then 0.0
       else totals.Fl.Fluid_engine.dropped_bytes /. totals.Fl.Fluid_engine.offered_bytes);
    hybrid;
  }

(* The observed household (hybrid backend): two packet-level bulk flows
   against a fluid aggregate of background flows on one shared link. *)
let run_household ~seed =
  let sim = Sim.create () in
  Sim.add_timeline_tags sim [ ("scenario", "p1/household") ];
  let rate = U.Units.mbps 100.0 in
  let limit_bytes = 4 * U.Units.bdp_bytes ~rate_bps:rate ~rtt_s:0.04 in
  let qdisc = Net.Fifo.create ~limit_bytes () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:rate ~delay_s:0.02 ~qdisc () in
  let engine = Fl.Fluid_engine.create ~dt_s ~warmup_s ~seed:(seed + 1) () in
  let fl = Fl.Fluid_engine.add_link engine ~capacity_bps:rate ~buffer_bytes:limit_bytes in
  let rng = U.Rng.create (seed + 2) in
  for _ = 1 to 16 do
    let model = pick_weighted rng cca_mix in
    let rtt_base_s = U.Rng.uniform rng ~lo:0.02 ~hi:0.06 in
    let cap_bps = U.Rng.bounded_pareto rng ~shape:1.2 ~scale:(U.Units.mbps 2.0) ~cap:(0.5 *. rate) in
    let on_s = U.Rng.uniform rng ~lo:2.0 ~hi:8.0 in
    let off_s = U.Rng.uniform rng ~lo:4.0 ~hi:24.0 in
    let start_active = U.Rng.bernoulli rng ~p:(on_s /. (on_s +. off_s)) in
    ignore
      (Fl.Fluid_engine.add_flow engine ~link:fl ~model ~rtt_base_s ~cap_bps
         ~on_off_s:(on_s, off_s) ~start_active ())
  done;
  let driver = Fl.Fluid_driver.attach sim engine ~couplings:[ (fl, topo.Net.Topology.bottleneck) ] in
  let conn_cubic =
    Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) ()
  in
  let conn_reno = Tcp.Connection.establish topo ~flow:1 ~cca:(Ccsim_cca.Reno.create ()) () in
  ignore (App.Bulk.start sim ~sender:conn_cubic.Tcp.Connection.sender ());
  ignore (App.Bulk.start sim ~sender:conn_reno.Tcp.Connection.sender ());
  let cubic_at_warmup = ref 0 and reno_at_warmup = ref 0 in
  ignore
    (Sim.schedule_at sim ~time:warmup_s (fun () ->
         cubic_at_warmup := Tcp.Receiver.bytes_received conn_cubic.Tcp.Connection.receiver;
         reno_at_warmup := Tcp.Receiver.bytes_received conn_reno.Tcp.Connection.receiver));
  Sim.run ~until:duration_s sim;
  Fl.Fluid_driver.catch_up driver ~until_s:duration_s;
  let window = duration_s -. warmup_s in
  let goodput conn at_warmup =
    float_of_int (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver - at_warmup)
    *. 8.0 /. window
  in
  {
    fg_cubic_mbps = U.Units.to_mbps (goodput conn_cubic !cubic_at_warmup);
    fg_reno_mbps = U.Units.to_mbps (goodput conn_reno !reno_at_warmup);
    bg_served_mbps =
      U.Units.to_mbps (Fl.Fluid_engine.link_served_bytes engine fl *. 8.0 /. duration_s);
    coupled_link_mbps = U.Units.to_mbps rate;
    coupled_contended_s = Fl.Fluid_engine.link_contended_s engine fl;
  }

let run ?(n = 2000) ?(seed = 42) ?(backend = Fluid) () =
  if n < 1 then invalid_arg "P1_prevalence.run: population must be positive";
  let engine = Fl.Fluid_engine.create ~dt_s ~warmup_s ~seed () in
  let rng = U.Rng.create (seed lxor 0x9E37) in
  let users = build_population engine rng ~n in
  Fl.Fluid_engine.run engine ~until_s:duration_s;
  let hybrid = match backend with Fluid -> None | Hybrid -> Some (run_household ~seed) in
  summarize backend ~n ~seed engine users hybrid

let render r =
  Report.with_buf @@ fun b ->
  Report.line b
    (Printf.sprintf
       "P1: contention prevalence across %d users (%s backend, %gs horizon, seed %d)" r.n
       (match r.backend with Fluid -> "fluid" | Hybrid -> "hybrid")
       duration_s r.seed);
  let table =
    U.Table.create
      ~columns:
        [
          ("plan", U.Table.Left);
          ("users", U.Table.Right);
          ("flows", U.Table.Right);
          ("contended", U.Table.Right);
          ("prevalence", U.Table.Right);
          ("mean util", U.Table.Right);
        ]
  in
  List.iter
    (fun t ->
      U.Table.add_row table
        [
          t.tier;
          string_of_int t.users;
          string_of_int t.flows;
          string_of_int t.contended;
          U.Table.cell_f ~decimals:3
            (if t.users = 0 then 0.0 else float_of_int t.contended /. float_of_int t.users);
          U.Table.cell_f ~decimals:3 t.util;
        ])
    r.tier_rows;
  Report.table b table;
  Report.line b
    (Printf.sprintf
       "overall: %.1f%% of users in contention (>= %.1fs contended); mean contended time \
        fraction %.4f; population drop fraction %.5f"
       (100.0 *. r.prevalence) contended_threshold_s r.mean_contended_frac r.drop_frac);
  match r.hybrid with
  | None -> ()
  | Some h ->
      Report.line b "";
      Report.line b
        (Printf.sprintf
           "household (hybrid, %.0f Mbit/s shared link): cubic %.1f Mbit/s + reno %.1f \
            Mbit/s foreground vs %.1f Mbit/s fluid background; link contended %.1fs"
           h.coupled_link_mbps h.fg_cubic_mbps h.fg_reno_mbps h.bg_served_mbps
           h.coupled_contended_s)

let print r = print_string (render r)
