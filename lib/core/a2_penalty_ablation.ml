module M = Ccsim_measure
module U = Ccsim_util

type row = {
  penalty_scale : float;
  precision : float;
  recall : float;
  candidates_flagged : int;
  mean_changes_per_candidate : float;
}

let run ?(n = 3000) ?(seed = 42) () =
  let rng = U.Rng.create seed in
  let records = M.Ndt.generate ~rng ~n () in
  List.map
    (fun penalty_scale ->
      let report = M.Mlab_analysis.analyze ~penalty_scale records in
      let accuracy =
        match M.Mlab_analysis.score_against_ground_truth report with
        | Some a -> a
        | None -> invalid_arg "A2: synthetic records must carry ground truth"
      in
      let candidate_changes =
        List.filter_map
          (fun (v : M.Mlab_analysis.verdict) ->
            if M.Mlab_analysis.category_equal v.category M.Mlab_analysis.Candidate then
              Some (float_of_int (List.length v.change_points))
            else None)
          report.verdicts
      in
      {
        penalty_scale;
        precision = accuracy.precision;
        recall = accuracy.recall;
        candidates_flagged = report.n_contention_consistent;
        mean_changes_per_candidate =
          (match candidate_changes with
          | [] -> 0.0
          | _ -> U.Stats.mean (Array.of_list candidate_changes));
      })
    [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "A2: PELT penalty scale vs Figure 2 detector accuracy (synthetic ground truth)";
  let table =
    U.Table.create
      ~columns:
        [
          ("penalty x", U.Table.Right);
          ("precision", U.Table.Right);
          ("recall", U.Table.Right);
          ("flagged", U.Table.Right);
          ("changes/candidate", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          U.Table.cell_f r.penalty_scale;
          U.Table.cell_f r.precision;
          U.Table.cell_f r.recall;
          string_of_int r.candidates_flagged;
          U.Table.cell_f r.mean_changes_per_candidate;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
