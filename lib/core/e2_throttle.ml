module U = Ccsim_util

type row = {
  cca : string;
  management : string;
  goodput_mbps : float;
  retransmits : int;
  mean_srtt_ms : float;
}

let plan_rate_bps = U.Units.mbps 20.0

let run ?(duration = 30.0) ?(seed = 42) () =
  let burst = 50 * (U.Units.mss + U.Units.header_bytes) in
  let managements =
    [
      ("none", Ccsim_net.Topology.No_ingress);
      ("shaper", Ccsim_net.Topology.Shape { rate_bps = plan_rate_bps; burst_bytes = burst });
      ("policer", Ccsim_net.Topology.Police { rate_bps = plan_rate_bps; burst_bytes = burst });
    ]
  in
  let ccas = [ ("reno", Scenario.Reno); ("cubic", Scenario.Cubic); ("bbr", Scenario.Bbr) ] in
  List.concat_map
    (fun (cca_name, cca) ->
      List.map
        (fun (mgmt_name, ingress) ->
          let scenario =
            Scenario.make
              ~name:(Printf.sprintf "e2/%s/%s" cca_name mgmt_name)
              ~rate_bps:(U.Units.mbps 100.0) ~delay_s:0.02 ~duration ~warmup:5.0 ~seed
              [ Scenario.flow "flow" ~cca ~app:Scenario.Bulk ~ingress ]
          in
          let result = Scenario.run scenario in
          let f = Results.find result "flow" in
          {
            cca = cca_name;
            management = mgmt_name;
            goodput_mbps = U.Units.to_mbps f.goodput_bps;
            retransmits = f.retransmits;
            mean_srtt_ms = 1e3 *. f.mean_srtt_s;
          })
        managements)
    ccas

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "E2: token-bucket shaping/policing to a 20 Mbit/s plan on a 100 Mbit/s path";
  let table =
    U.Table.create
      ~columns:
        [
          ("cca", U.Table.Left);
          ("management", U.Table.Left);
          ("goodput Mbit/s", U.Table.Right);
          ("retransmits", U.Table.Right);
          ("srtt ms", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.cca;
          r.management;
          U.Table.cell_f r.goodput_mbps;
          string_of_int r.retransmits;
          U.Table.cell_f r.mean_srtt_ms;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
