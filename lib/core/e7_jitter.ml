module U = Ccsim_util

type row = {
  qdisc : string;
  burst_packets : int;
  cbr_jitter_ms : float;
  cbr_goodput_mbps : float;
  cross_goodput_mbps : float;
}

let pkt = U.Units.mss + U.Units.header_bytes

let run ?(duration = 30.0) ?(seed = 42) () =
  let capacity = U.Units.mbps 20.0 in
  let qdiscs =
    [
      ("fifo", Scenario.Fifo { limit_bytes = None });
      ("drr-fq", Scenario.Drr { quantum_bytes = None; limit_bytes = None });
    ]
  in
  let bursts = [ None; Some 10; Some 100; Some 400 ] in
  List.concat_map
    (fun (qdisc_name, qdisc) ->
      List.map
        (fun burst ->
          let flows =
            Scenario.flow "cbr" ~app:(Scenario.Cbr_udp { rate_bps = U.Units.mbps 2.0 })
            ::
            (match burst with
            | None -> []
            | Some b ->
                [
                  Scenario.flow "bursty" ~cca:Scenario.Cubic
                    ~app:
                      (Scenario.Onoff
                         { rate_bps = U.Units.mbps 40.0; mean_on = 0.2; mean_off = 0.3 })
                    ~ingress:
                      (Ccsim_net.Topology.Shape
                         { rate_bps = U.Units.mbps 10.0; burst_bytes = b * pkt });
                ])
          in
          let scenario =
            Scenario.make
              ~name:(Printf.sprintf "e7/%s/burst=%d" qdisc_name
                       (match burst with None -> 0 | Some b -> b))
              ~rate_bps:capacity ~delay_s:0.01 ~qdisc ~duration ~warmup:5.0 ~seed flows
          in
          let result = Scenario.run scenario in
          let cbr = Results.find result "cbr" in
          {
            qdisc = qdisc_name;
            burst_packets = (match burst with None -> 0 | Some b -> b);
            cbr_jitter_ms = 1e3 *. cbr.jitter_s;
            cbr_goodput_mbps = U.Units.to_mbps cbr.goodput_bps;
            cross_goodput_mbps =
              (match burst with
              | None -> 0.0
              | Some _ -> U.Units.to_mbps (Results.find result "bursty").goodput_bps);
          })
        bursts)
    qdiscs

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "E7: token-bucket bursts inflate a CBR flow's jitter; FQ caps but cannot remove it (20 Mbit/s)";
  let table =
    U.Table.create
      ~columns:
        [
          ("qdisc", U.Table.Left);
          ("burst pkts", U.Table.Right);
          ("CBR jitter ms", U.Table.Right);
          ("CBR Mbit/s", U.Table.Right);
          ("cross Mbit/s", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.qdisc;
          string_of_int r.burst_packets;
          U.Table.cell_f ~decimals:3 r.cbr_jitter_ms;
          U.Table.cell_f r.cbr_goodput_mbps;
          U.Table.cell_f r.cross_goodput_mbps;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
