module U = Ccsim_util

type row = {
  mean_size_bytes : float;
  spawned : int;
  completed : int;
  fraction_in_iw : float;
  fct_p50_s : float;
  fct_p99_s : float;
}

let run ?(duration = 60.0) ?(seed = 42) () =
  let sizes = [ 10_000.0; 30_000.0; 100_000.0; 300_000.0; 1_000_000.0 ] in
  List.map
    (fun mean_size_bytes ->
      let scenario =
        Scenario.make
          ~name:(Printf.sprintf "e3/mean=%.0fkB" (mean_size_bytes /. 1e3))
          ~rate_bps:(U.Units.mbps 50.0) ~delay_s:0.02 ~duration ~warmup:5.0 ~seed
          ~short_flows:{ Scenario.arrival_rate = 10.0; mean_size_bytes; sf_stop = Some (duration -. 5.0) }
          []
      in
      let result = Scenario.run scenario in
      match result.short_flow_stats with
      | None -> invalid_arg "E3: scenario has no short-flow stats"
      | Some s ->
          let q p =
            match s.completion_times with
            | Some cdf -> U.Cdf.quantile cdf p
            | None -> 0.0
          in
          {
            mean_size_bytes;
            spawned = s.spawned;
            completed = s.completed;
            fraction_in_iw = s.fraction_in_initial_window;
            fct_p50_s = q 0.5;
            fct_p99_s = q 0.99;
          })
    sizes

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "E3: short flows vs the initial congestion window (50 Mbit/s access link)";
  let table =
    U.Table.create
      ~columns:
        [
          ("mean size", U.Table.Right);
          ("flows", U.Table.Right);
          ("completed", U.Table.Right);
          ("fit in IW10", U.Table.Right);
          ("FCT p50 s", U.Table.Right);
          ("FCT p99 s", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          Printf.sprintf "%.0f kB" (r.mean_size_bytes /. 1e3);
          string_of_int r.spawned;
          string_of_int r.completed;
          U.Table.cell_pct r.fraction_in_iw;
          U.Table.cell_f ~decimals:3 r.fct_p50_s;
          U.Table.cell_f ~decimals:3 r.fct_p99_s;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
