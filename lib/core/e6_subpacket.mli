(** E6 — sub-packet BDP regimes starve flows over short timescales
    (§2.3, Chen et al.).

    N Reno flows share a link whose bandwidth-delay product is below one
    packet. Timeout-driven dynamics hand the link to an arbitrary
    subset of flows for seconds at a time: short-window Jain indices
    collapse and some flows see near-zero throughput over multi-second
    windows even though long-run shares look tolerable. Per-flow fair
    queueing removes the starvation — the same isolation argument at
    the other end of the bandwidth spectrum. *)

type row = {
  n_flows : int;
  qdisc : string;
  bdp_packets : float;
  jain_long : float;  (** over the whole measurement window *)
  jain_short_p10 : float;  (** 10th percentile of per-2s-window Jain *)
  starved_windows : float;
      (** fraction of (flow x 2s-window) samples below 10% of fair share *)
  min_flow_mbps : float;
  max_flow_mbps : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
