module U = Ccsim_util

type row = {
  traffic : string;
  expected_elastic : bool;
  mean_elasticity : float;
  p90_elasticity : float;
  classified_elastic : bool;
  probe_goodput_mbps : float;
  cross_goodput_mbps : float;
  elasticity_series : U.Timeseries.t;
}

let rate_bps = U.Units.mbps 48.0
let rtt_s = 0.1

let probe_spec =
  Scenario.flow "probe"
    ~cca:(Scenario.Nimbus { mode_switching = false; known_capacity_bps = Some rate_bps })
    ~app:Scenario.Bulk

let cross_cases ~seed :
    (string * bool * Scenario.flow_spec list * Scenario.short_flows_spec option) list =
  ignore seed;
  [
    ("reno bulk", true, [ Scenario.flow "cross" ~cca:Scenario.Reno ~app:Scenario.Bulk ], None);
    ("bbr bulk", true, [ Scenario.flow "cross" ~cca:Scenario.Bbr ~app:Scenario.Bulk ], None);
    ( "video (ABR)",
      false,
      [ Scenario.flow "cross" ~cca:Scenario.Cubic ~app:(Scenario.Video { ladder_bps = None }) ],
      None );
    ( "poisson short flows",
      false,
      [],
      Some { Scenario.arrival_rate = 25.0; mean_size_bytes = 40_000.0; sf_stop = None } );
    ( "CBR UDP",
      false,
      [ Scenario.flow "cross" ~app:(Scenario.Cbr_udp { rate_bps = U.Units.mbps 12.0 }) ],
      None );
  ]

let run ?(duration = 45.0) ?(seed = 42) () =
  List.map
    (fun (traffic, expected_elastic, cross_flows, short_flows) ->
      let bdp = U.Units.bdp_bytes ~rate_bps ~rtt_s in
      let scenario =
        Scenario.make ~name:("fig3/" ^ traffic) ~rate_bps ~delay_s:(rtt_s /. 2.0) ~duration
          ~warmup:10.0 ~seed ?short_flows
          ~qdisc:(Scenario.Fifo { limit_bytes = Some (2 * bdp) })
          (probe_spec :: cross_flows)
      in
      let result = Scenario.run scenario in
      let probe = Results.find result "probe" in
      let handle =
        match probe.nimbus with
        | Some h -> h
        | None -> invalid_arg "Fig3: probe flow has no nimbus handle"
      in
      (* Steady-state elasticity: skip the warmup (filter ramp + slow start). *)
      let steady =
        U.Timeseries.between handle.elasticity ~lo:scenario.warmup ~hi:duration
      in
      let values = U.Timeseries.values steady in
      let mean_e = if Array.length values = 0 then 0.0 else U.Stats.mean values in
      let p90 = if Array.length values = 0 then 0.0 else U.Stats.percentile values 90.0 in
      let cross_goodput =
        List.fold_left
          (fun acc (f : Results.flow_result) ->
            if String.equal f.label "probe" then acc else acc +. f.goodput_bps)
          0.0 result.flows
      in
      {
        traffic;
        expected_elastic;
        mean_elasticity = mean_e;
        p90_elasticity = p90;
        (* Contention is intermittent (loss-based cross traffic responds
           hardest around its backoff episodes), so classification keys
           on the upper tail of the elasticity series. *)
        classified_elastic = p90 > 0.5;
        probe_goodput_mbps = U.Units.to_mbps probe.goodput_bps;
        cross_goodput_mbps = U.Units.to_mbps cross_goodput;
        elasticity_series = handle.elasticity;
      })
    (cross_cases ~seed)

let render rows =
  Report.with_buf @@ fun b ->
  let table =
    U.Table.create
      ~columns:
        [
          ("cross traffic", U.Table.Left);
          ("elasticity (mean)", U.Table.Right);
          ("p90", U.Table.Right);
          ("classified", U.Table.Left);
          ("expected", U.Table.Left);
          ("probe Mbit/s", U.Table.Right);
          ("cross Mbit/s", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.traffic;
          U.Table.cell_f r.mean_elasticity;
          U.Table.cell_f r.p90_elasticity;
          (if r.classified_elastic then "elastic" else "inelastic");
          (if r.expected_elastic then "elastic" else "inelastic");
          U.Table.cell_f r.probe_goodput_mbps;
          U.Table.cell_f r.cross_goodput_mbps;
        ])
    rows;
  Report.line b "Figure 3: elasticity of a Nimbus probe vs five cross-traffic types";
  Printf.bprintf b "(48 Mbit/s bottleneck, 100 ms RTT; elasticity > 0.5 => contending)\n";
  Report.table b table

let print rows = print_string (render rows)
