module U = Ccsim_util
module Rcs = Ccsim_measure.Rcs

type row = {
  scheme : string;
  flow : string;
  simulated_mbps : float;
  model_mbps : float;
  relative_error : float;
}

let rate_bps = U.Units.mbps 50.0

(* User A: flows 0-3; user B: flow 4. *)
let user_of flow = if flow <= 3 then `A else `B
let labels = [ "a0"; "a1"; "a2"; "a3"; "b0" ]

let model ~per_user =
  let leaf name = Rcs.leaf ~name ~demand_bps:Float.infinity in
  let tree =
    if per_user then
      Rcs.node ~name:"link"
        [
          Rcs.node ~name:"userA" (List.map leaf [ "a0"; "a1"; "a2"; "a3" ]);
          Rcs.node ~name:"userB" [ leaf "b0" ];
        ]
    else Rcs.node ~name:"link" (List.map leaf labels)
  in
  Rcs.allocate ~capacity_bps:rate_bps tree

let run ?(duration = 40.0) ?(seed = 42) () =
  let schemes =
    [
      ("per-flow FQ", (fun _flow -> 1.0), false);
      (* Per-user FQ approximated by weighting each of user A's four
         flows at 1/4 — what a per-user scheduler enforces. *)
      ("per-user FQ", (fun flow -> match user_of flow with `A -> 0.25 | `B -> 1.0), true);
    ]
  in
  List.concat_map
    (fun (scheme, _weight_fn, per_user) ->
      let qdisc =
        let bdp = U.Units.bdp_bytes ~rate_bps ~rtt_s:0.05 in
        match per_user with
        | false -> Ccsim_net.Drr.create ~limit_bytes:(4 * bdp) ()
        | true ->
            Ccsim_net.Drr.create ~limit_bytes:(4 * bdp)
              ~weight_of_flow:(fun flow -> match user_of flow with `A -> 0.25 | `B -> 1.0)
              ()
      in
      let sim = Ccsim_engine.Sim.create () in
      ignore seed;
      let topo = Ccsim_net.Topology.dumbbell sim ~rate_bps ~delay_s:0.025 ~qdisc () in
      let conns =
        List.mapi
          (fun flow label ->
            let conn =
              Ccsim_tcp.Connection.establish topo ~flow ~cca:(Ccsim_cca.Cubic.create ()) ()
            in
            Ccsim_tcp.Sender.set_unlimited conn.sender;
            (label, conn))
          labels
      in
      Ccsim_engine.Sim.run ~until:duration sim;
      let predictions = model ~per_user in
      List.map
        (fun (label, conn) ->
          let simulated =
            float_of_int (Ccsim_tcp.Receiver.bytes_received conn.Ccsim_tcp.Connection.receiver)
            *. 8.0 /. duration
          in
          let predicted = Rcs.allocation_for predictions label in
          {
            scheme;
            flow = label;
            simulated_mbps = U.Units.to_mbps simulated;
            model_mbps = U.Units.to_mbps predicted;
            relative_error = Float.abs (simulated -. predicted) /. predicted;
          })
        conns)
    schemes

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "X3: per-flow vs per-user fair queueing, vs the Recursive Congestion Shares model";
  let table =
    U.Table.create
      ~columns:
        [
          ("scheme", U.Table.Left);
          ("flow", U.Table.Left);
          ("simulated Mbit/s", U.Table.Right);
          ("RCS model", U.Table.Right);
          ("rel. error", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.scheme;
          r.flow;
          U.Table.cell_f r.simulated_mbps;
          U.Table.cell_f r.model_mbps;
          U.Table.cell_pct r.relative_error;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
