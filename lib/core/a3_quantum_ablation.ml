module U = Ccsim_util

type row = {
  quantum_packets : float;
  jain : float;
  reno_mbps : float;
  bbr_mbps : float;
  reno_srtt_ms : float;
  cbr_jitter_ms : float;
  utilization : float;
}

let rate_bps = U.Units.mbps 48.0
let pkt = U.Units.mss + U.Units.header_bytes

let run ?(duration = 40.0) ?(seed = 42) () =
  let bdp = U.Units.bdp_bytes ~rate_bps ~rtt_s:0.05 in
  List.map
    (fun quantum_packets ->
      let quantum_bytes = max 64 (int_of_float (quantum_packets *. float_of_int pkt)) in
      let scenario =
        Scenario.make
          ~name:(Printf.sprintf "a3/q=%g" quantum_packets)
          ~rate_bps ~delay_s:0.025
          ~qdisc:
            (Scenario.Drr { quantum_bytes = Some quantum_bytes; limit_bytes = Some (4 * bdp) })
          ~duration ~warmup:10.0 ~seed
          [
            Scenario.flow "bbr" ~cca:Scenario.Bbr ~app:Scenario.Bulk;
            Scenario.flow "reno" ~cca:Scenario.Reno ~app:Scenario.Bulk;
            Scenario.flow "cbr" ~app:(Scenario.Cbr_udp { rate_bps = U.Units.mbps 1.0 });
          ]
      in
      let result = Scenario.run scenario in
      let reno = Results.find result "reno" and bbr = Results.find result "bbr" in
      let cbr = Results.find result "cbr" in
      {
        quantum_packets;
        jain = U.Fairness.jain_index [| reno.goodput_bps; bbr.goodput_bps |];
        reno_mbps = U.Units.to_mbps reno.goodput_bps;
        bbr_mbps = U.Units.to_mbps bbr.goodput_bps;
        reno_srtt_ms = 1e3 *. reno.mean_srtt_s;
        cbr_jitter_ms = 1e3 *. cbr.jitter_s;
        utilization = result.utilization;
      })
    [ 0.25; 1.0; 4.0; 16.0 ]

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "A3: DRR quantum vs isolation quality (BBR vs Reno)";
  let table =
    U.Table.create
      ~columns:
        [
          ("quantum (pkts)", U.Table.Right);
          ("jain", U.Table.Right);
          ("reno Mbit/s", U.Table.Right);
          ("bbr Mbit/s", U.Table.Right);
          ("reno srtt ms", U.Table.Right);
          ("cbr jitter ms", U.Table.Right);
          ("util", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          U.Table.cell_f r.quantum_packets;
          U.Table.cell_f ~decimals:3 r.jain;
          U.Table.cell_f r.reno_mbps;
          U.Table.cell_f r.bbr_mbps;
          U.Table.cell_f r.reno_srtt_ms;
          U.Table.cell_f ~decimals:3 r.cbr_jitter_ms;
          U.Table.cell_f r.utilization;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
