(** Results of a scenario run. *)

type flow_result = {
  label : string;
  flow : int;
  kind : [ `Tcp | `Udp ];
  goodput_bps : float;
      (** receiver-side goodput over the measurement window (after
          warmup, from the flow's start) *)
  offered_bps : float;
      (** application offered load over the same window when known
          (CBR/on-off); equals goodput for bulk *)
  bytes_acked : int;
  retransmits : int;
  mean_srtt_s : float;  (** mean of sampled srtt; 0 for UDP *)
  min_rtt_s : float;
  throughput : Ccsim_util.Timeseries.t;  (** per-interval goodput, bit/s *)
  info : Ccsim_tcp.Tcp_info.t option;  (** final TCPInfo (TCP only) *)
  nimbus : Ccsim_cca.Nimbus.handle option;
  video : Ccsim_app.Video.stats option;
  speedtest : Ccsim_app.Speedtest.result option;
  jitter_s : float;  (** inter-arrival jitter at the receiver *)
}

type t = {
  scenario_name : string;
  duration : float;
  warmup : float;
  flows : flow_result list;
  jain_index : float;  (** over the TCP+UDP goodputs of labelled flows *)
  utilization : float;  (** bottleneck, whole run *)
  bottleneck_drops : int;
  bottleneck_loss_rate : float;
  mean_queue_bytes : float;
  max_queue_bytes : float;
  short_flow_stats : short_flow_stats option;
  faults : Ccsim_faults.Injector.summary option;
      (** Injector lifecycle/wire counters when a fault plan was armed
          (ambient {!Ccsim_faults.Plan.armed} or experiment-supplied);
          [None] on a fault-free run. *)
}

and short_flow_stats = {
  spawned : int;
  completed : int;
  fraction_in_initial_window : float;
  completion_times : Ccsim_util.Cdf.t option;
}

val find : t -> string -> flow_result
(** Look up a flow by label. Raises [Not_found]. *)

val goodputs : t -> float array
(** Goodputs of all labelled flows, scenario order. *)

val pp_summary : Format.formatter -> t -> unit
