let with_buf f =
  let b = Buffer.create 1024 in
  f b;
  Buffer.contents b

let line b s =
  Buffer.add_string b s;
  Buffer.add_char b '\n'

let table b t = Buffer.add_string b (Ccsim_util.Table.render t)
