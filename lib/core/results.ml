type flow_result = {
  label : string;
  flow : int;
  kind : [ `Tcp | `Udp ];
  goodput_bps : float;
  offered_bps : float;
  bytes_acked : int;
  retransmits : int;
  mean_srtt_s : float;
  min_rtt_s : float;
  throughput : Ccsim_util.Timeseries.t;
  info : Ccsim_tcp.Tcp_info.t option;
  nimbus : Ccsim_cca.Nimbus.handle option;
  video : Ccsim_app.Video.stats option;
  speedtest : Ccsim_app.Speedtest.result option;
  jitter_s : float;
}

type t = {
  scenario_name : string;
  duration : float;
  warmup : float;
  flows : flow_result list;
  jain_index : float;
  utilization : float;
  bottleneck_drops : int;
  bottleneck_loss_rate : float;
  mean_queue_bytes : float;
  max_queue_bytes : float;
  short_flow_stats : short_flow_stats option;
  faults : Ccsim_faults.Injector.summary option;
}

and short_flow_stats = {
  spawned : int;
  completed : int;
  fraction_in_initial_window : float;
  completion_times : Ccsim_util.Cdf.t option;
}

let find t label =
  match List.find_opt (fun f -> String.equal f.label label) t.flows with
  | Some f -> f
  | None -> raise Not_found

let goodputs t = Array.of_list (List.map (fun f -> f.goodput_bps) t.flows)

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>%s (%.0fs):@," t.scenario_name t.duration;
  List.iter
    (fun f ->
      Format.fprintf ppf "  %-16s %8.2f Mbit/s  retx=%-5d srtt=%.1fms@," f.label
        (f.goodput_bps /. 1e6) f.retransmits (1e3 *. f.mean_srtt_s))
    t.flows;
  Format.fprintf ppf "  jain=%.3f util=%.2f drops=%d q_mean=%.0fB" t.jain_index t.utilization
    t.bottleneck_drops t.mean_queue_bytes;
  (match t.faults with
  | None -> ()
  | Some f ->
      Format.fprintf ppf "@,  faults fired=%d cleared=%d wire_lost=%d corrupted=%d flushed=%d"
        f.fired f.cleared f.wire_lost f.wire_corrupted f.qdisc_flushed);
  Format.fprintf ppf "@]"
