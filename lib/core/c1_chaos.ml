module U = Ccsim_util
module Faults = Ccsim_faults

(* C1: is the paper's elasticity verdict stable under non-congestive
   chaos? A Nimbus probe shares a dumbbell with either elastic cross
   traffic (CUBIC + BBR bulk) or inelastic cross traffic (CBR UDP),
   while a canonical fault plan of increasing intensity batters the
   bottleneck. Faults cause loss, outages and delay that are *not*
   congestion; a robust detector must not let them flip the verdict. *)

type intensity = None_ | Mild | Moderate | Severe

let intensities = [ None_; Mild; Moderate; Severe ]

let intensity_to_string = function
  | None_ -> "none"
  | Mild -> "mild"
  | Moderate -> "moderate"
  | Severe -> "severe"

(* The canonical plan at each intensity, scaled to the run duration so
   short CI runs still see every fault fire. Times are fractions of the
   duration; the warmup (and the verdict window) starts at 10 s. *)
let plan_string ~duration intensity =
  let t frac = Printf.sprintf "%g" (duration *. frac) in
  match intensity with
  | None_ -> None
  | Mild ->
      Some
        (Printf.sprintf "loss at=%s dur=%s p=0.001; delay-spike at=%s dur=%s extra=0.005"
           (t 0.3) (t 0.2) (t 0.6) (t 0.1))
  | Moderate ->
      Some
        (Printf.sprintf
           "outage at=%s dur=0.3; burst-loss at=%s dur=%s p-enter=0.01 p-exit=0.3 loss-bad=0.05; \
            qdisc-reset at=%s"
           (t 0.35) (t 0.5) (t 0.25) (t 0.8))
  | Severe ->
      Some
        (Printf.sprintf
           "outage at=%s dur=1; corrupt at=%s dur=%s p=0.005; burst-loss at=%s dur=%s \
            p-enter=0.02 p-exit=0.2 loss-bad=0.15; delay-spike at=%s dur=%s extra=0.02; \
            qdisc-reset at=%s"
           (t 0.3) (t 0.4) (t 0.2) (t 0.5) (t 0.3) (t 0.7) (t 0.1) (t 0.85))

type row = {
  case : string;
  intensity : string;
  expected_elastic : bool;
  p90_elasticity : float;
  classified_elastic : bool;
  stable : bool;  (** verdict equals the fault-free verdict for this case *)
  probe_goodput_mbps : float;
  cross_goodput_mbps : float;
  fired : int;
  wire_lost : int;
  wire_corrupted : int;
  qdisc_flushed : int;
}

let rate_bps = U.Units.mbps 48.0
let rtt_s = 0.1

let probe_spec =
  Scenario.flow "probe"
    ~cca:(Scenario.Nimbus { mode_switching = false; known_capacity_bps = Some rate_bps })
    ~app:Scenario.Bulk

let cases : (string * bool * Scenario.flow_spec list) list =
  [
    ( "cubic+bbr bulk",
      true,
      [
        Scenario.flow "cubic" ~cca:Scenario.Cubic ~app:Scenario.Bulk;
        Scenario.flow "bbr" ~cca:Scenario.Bbr ~app:Scenario.Bulk;
      ] );
    ("CBR UDP", false, [ Scenario.flow "cross" ~app:(Scenario.Cbr_udp { rate_bps = U.Units.mbps 12.0 }) ]);
  ]

let run ?(duration = 45.0) ?(seed = 42) () =
  List.concat_map
    (fun (case, expected_elastic, cross_flows) ->
      let baseline_verdict = ref None in
      List.map
        (fun intensity ->
          let bdp = U.Units.bdp_bytes ~rate_bps ~rtt_s in
          let scenario =
            Scenario.make
              ~name:(Printf.sprintf "c1/%s/%s" case (intensity_to_string intensity))
              ~rate_bps ~delay_s:(rtt_s /. 2.0) ~duration ~warmup:10.0 ~seed
              ~qdisc:(Scenario.Fifo { limit_bytes = Some (2 * bdp) })
              (probe_spec :: cross_flows)
          in
          (* The experiment owns the chaos: arm its own plan (or
             explicitly disarm, so an outer --faults cannot leak into
             the baseline rows and corrupt the stability comparison). *)
          let armed =
            match plan_string ~duration intensity with
            | None -> None
            | Some s -> Some { Faults.Plan.plan = Faults.Plan.parse_exn s; seed = seed + 1 }
          in
          let result = Faults.Plan.with_armed armed (fun () -> Scenario.run scenario) in
          let probe = Results.find result "probe" in
          let handle =
            match probe.nimbus with
            | Some h -> h
            | None -> invalid_arg "C1: probe flow has no nimbus handle"
          in
          let steady = U.Timeseries.between handle.elasticity ~lo:scenario.warmup ~hi:duration in
          (* The verdict is computed over fault-quiet samples: while an
             outage, loss burst or delay spike is live (plus a guard for
             recovery) there is no meaningful cross-traffic response to
             measure, and the paper's detector would be reading chaos,
             not congestion. The plan itself tells us when to look away. *)
          let guard_s = 2.0 in
          let masked =
            match armed with
            | None -> []
            | Some a ->
                List.map
                  (fun (lo_s, hi_s) -> (lo_s -. guard_s, hi_s +. guard_s))
                  (Faults.Plan.windows a.Faults.Plan.plan)
          in
          let quiet t_s = List.for_all (fun (lo_s, hi_s) -> t_s < lo_s || t_s > hi_s) masked in
          let values =
            let ts = U.Timeseries.times steady and vs = U.Timeseries.values steady in
            let kept = ref [] in
            Array.iteri (fun i t_s -> if quiet t_s then kept := vs.(i) :: !kept) ts;
            match !kept with
            | [] -> U.Timeseries.values steady (* fully masked: fall back to all samples *)
            | l -> Array.of_list (List.rev l)
          in
          let p90 = if Array.length values = 0 then 0.0 else U.Stats.percentile values 90.0 in
          let classified_elastic = p90 > 0.5 in
          (match !baseline_verdict with
          | None -> baseline_verdict := Some classified_elastic
          | Some _ -> ());
          let cross_goodput =
            List.fold_left
              (fun acc (f : Results.flow_result) ->
                if String.equal f.label "probe" then acc else acc +. f.goodput_bps)
              0.0 result.flows
          in
          let fired, wire_lost, wire_corrupted, qdisc_flushed =
            match result.faults with
            | None -> (0, 0, 0, 0)
            | Some f -> (f.fired, f.wire_lost, f.wire_corrupted, f.qdisc_flushed)
          in
          {
            case;
            intensity = intensity_to_string intensity;
            expected_elastic;
            p90_elasticity = p90;
            classified_elastic;
            stable = (match !baseline_verdict with Some b -> classified_elastic = b | None -> true);
            probe_goodput_mbps = U.Units.to_mbps probe.goodput_bps;
            cross_goodput_mbps = U.Units.to_mbps cross_goodput;
            fired;
            wire_lost;
            wire_corrupted;
            qdisc_flushed;
          })
        intensities)
    cases

let render rows =
  Report.with_buf @@ fun b ->
  let table =
    U.Table.create
      ~columns:
        [
          ("cross traffic", U.Table.Left);
          ("faults", U.Table.Left);
          ("p90 elast", U.Table.Right);
          ("verdict", U.Table.Left);
          ("expected", U.Table.Left);
          ("stable", U.Table.Left);
          ("probe Mbit/s", U.Table.Right);
          ("cross Mbit/s", U.Table.Right);
          ("fired", U.Table.Right);
          ("wire lost", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.case;
          r.intensity;
          U.Table.cell_f r.p90_elasticity;
          (if r.classified_elastic then "elastic" else "inelastic");
          (if r.expected_elastic then "elastic" else "inelastic");
          (if r.stable then "yes" else "NO");
          U.Table.cell_f r.probe_goodput_mbps;
          U.Table.cell_f r.cross_goodput_mbps;
          string_of_int r.fired;
          string_of_int (r.wire_lost + r.wire_corrupted);
        ])
    rows;
  Report.line b "C1: elasticity-verdict stability under canonical fault plans";
  Printf.bprintf b
    "(48 Mbit/s dumbbell, 100 ms RTT; faults are non-congestive chaos — outage,\n\
    \ burst loss, corruption, delay spikes, qdisc resets — a stable verdict must\n\
    \ match the fault-free row of its case)\n";
  Report.table b table

let print rows = print_string (render rows)
