(** C1: elasticity-verdict stability under fault injection.

    A Nimbus probe shares the canonical dumbbell with elastic
    (CUBIC + BBR bulk) or inelastic (CBR UDP) cross traffic while a
    canonical {!Ccsim_faults} plan of increasing intensity (none, mild,
    moderate, severe) batters the bottleneck with outages, burst loss,
    corruption, delay spikes and qdisc resets. The faults are
    non-congestive by construction, so the paper's contention verdict
    (p90 elasticity over the post-warmup window, threshold 0.5) should
    match the fault-free verdict of the same case — the [stable]
    column. The verdict is computed over {e fault-quiet} samples: while
    a plan window (plus a 2 s recovery guard) is live there is no
    cross-traffic response to measure, so those samples are masked via
    {!Ccsim_faults.Plan.windows}. Fault plans scale with the run
    duration so short CI runs still fire every event, but the verdict
    needs roughly 35 s of post-warmup samples to be stable — use the
    default duration for meaningful [stable] columns. *)

type intensity = None_ | Mild | Moderate | Severe

val intensities : intensity list
val intensity_to_string : intensity -> string

val plan_string : duration:float -> intensity -> string option
(** The canonical plan armed at the given intensity ([None] for
    [None_]), with event times scaled to [duration]. *)

type row = {
  case : string;
  intensity : string;
  expected_elastic : bool;
  p90_elasticity : float;
  classified_elastic : bool;
  stable : bool;  (** verdict equals the fault-free verdict for this case *)
  probe_goodput_mbps : float;
  cross_goodput_mbps : float;
  fired : int;
  wire_lost : int;
  wire_corrupted : int;
  qdisc_flushed : int;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
val print : row list -> unit
