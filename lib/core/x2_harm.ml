module U = Ccsim_util

type row = {
  victim : string;
  contender : string;
  solo_mbps : float;
  contended_mbps : float;
  throughput_harm : float;
  solo_srtt_ms : float;
  contended_srtt_ms : float;
  latency_harm : float;
}

let rate_bps = U.Units.mbps 48.0

let ccas =
  [ ("reno", Scenario.Reno); ("cubic", Scenario.Cubic); ("bbr", Scenario.Bbr) ]

let run ?(duration = 40.0) ?(seed = 42) () =
  let solo_result (name, cca) =
    let scenario =
      Scenario.make ~name:("x2/solo/" ^ name) ~rate_bps ~delay_s:0.025 ~duration ~warmup:10.0
        ~seed
        [ Scenario.flow "victim" ~cca ~app:Scenario.Bulk ]
    in
    let r = Scenario.run scenario in
    Results.find r "victim"
  in
  let solos = List.map (fun c -> (fst c, solo_result c)) ccas in
  List.concat_map
    (fun (victim_name, victim_cca) ->
      let solo = List.assoc victim_name solos in
      List.filter_map
        (fun (contender_name, contender_cca) ->
          if String.equal contender_name victim_name then None
          else begin
            let scenario =
              Scenario.make
                ~name:(Printf.sprintf "x2/%s-vs-%s" victim_name contender_name)
                ~rate_bps ~delay_s:0.025 ~duration ~warmup:10.0 ~seed
                [
                  Scenario.flow "victim" ~cca:victim_cca ~app:Scenario.Bulk;
                  Scenario.flow "contender" ~cca:contender_cca ~app:Scenario.Bulk;
                ]
            in
            let r = Scenario.run scenario in
            let contended = Results.find r "victim" in
            (* The fair benchmark for a contended victim is half the
               link, so cap "solo" at the fair share as Ware et al. do
               for the bandwidth metric. *)
            let solo_tput = Float.min solo.Results.goodput_bps (rate_bps /. 2.0) in
            Some
              {
                victim = victim_name;
                contender = contender_name;
                solo_mbps = U.Units.to_mbps solo_tput;
                contended_mbps = U.Units.to_mbps contended.goodput_bps;
                throughput_harm =
                  U.Fairness.harm ~solo:solo_tput ~contended:contended.goodput_bps;
                solo_srtt_ms = 1e3 *. solo.mean_srtt_s;
                contended_srtt_ms = 1e3 *. contended.mean_srtt_s;
                latency_harm =
                  (if contended.mean_srtt_s > 0.0 then
                     U.Fairness.harm_lower_is_better ~solo:solo.mean_srtt_s
                       ~contended:contended.mean_srtt_s
                   else 0.0);
              }
          end)
        ccas)
    ccas

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "X2: Ware et al. harm across CCA pairings (48 Mbit/s FIFO bottleneck)";
  let table =
    U.Table.create
      ~columns:
        [
          ("victim", U.Table.Left);
          ("contender", U.Table.Left);
          ("solo Mbit/s", U.Table.Right);
          ("contended", U.Table.Right);
          ("tput harm", U.Table.Right);
          ("solo srtt", U.Table.Right);
          ("contended srtt", U.Table.Right);
          ("delay harm", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.victim;
          r.contender;
          U.Table.cell_f r.solo_mbps;
          U.Table.cell_f r.contended_mbps;
          U.Table.cell_pct r.throughput_harm;
          U.Table.cell_f r.solo_srtt_ms;
          U.Table.cell_f r.contended_srtt_ms;
          U.Table.cell_pct r.latency_harm;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
