(** A1 (ablation) — Nimbus pulse amplitude vs elasticity separation.

    DESIGN.md stars the elasticity estimator's construction; this
    ablation sweeps the probe's pulse amplitude and measures the
    separation between an elastic case (Reno bulk cross traffic) and an
    inelastic one (CBR UDP). Too-small pulses don't move elastic cross
    traffic enough to register; very large pulses disturb the path and
    the probe's own throughput. The default (0.25 x capacity) sits on
    the plateau. *)

type row = {
  amplitude : float;  (** fraction of link capacity *)
  elastic_p90 : float;  (** p90 elasticity vs Reno bulk *)
  inelastic_p90 : float;  (** p90 elasticity vs CBR UDP *)
  separation : float;  (** elastic − inelastic *)
  both_classified_correctly : bool;
  probe_goodput_mbps : float;  (** vs the Reno cross traffic *)
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
