(** X1 (extension) — congestion control under capacity variability
    (§2.3, §5.1).

    If isolation makes fairness moot, the paper argues CCAs should be
    judged on how they "cope with bandwidth variability while navigating
    the trade-off between self-inflicted delay and link
    underutilization". Each CCA runs *alone* (per-user isolation, as on
    cellular links) on a link whose capacity wanders
    (Ornstein–Uhlenbeck, cellular-style fading); we report exactly that
    trade-off: fraction of the available capacity used vs the
    self-inflicted queueing delay. *)

type row = {
  cca : string;
  goodput_mbps : float;
  mean_capacity_mbps : float;
  capacity_used : float;  (** goodput / time-averaged capacity *)
  mean_srtt_ms : float;
  queueing_ms : float;  (** mean srtt − propagation RTT *)
  retransmits : int;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
