module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Cca = Ccsim_cca
module Tcp = Ccsim_tcp
module App = Ccsim_app
module Measure = Ccsim_measure
module U = Ccsim_util

type cca_spec =
  | Reno
  | Cubic
  | Bbr
  | Vegas
  | Copa
  | Tfrc
  | Ledbat
  | Aimd of { a : float; b : float }
  | Nimbus of { mode_switching : bool; known_capacity_bps : float option }
  | Custom of (Sim.t -> Cca.Cca.t)

type app_spec =
  | Bulk
  | Cbr_tcp of { rate_bps : float }
  | Cbr_udp of { rate_bps : float }
  | Onoff of { rate_bps : float; mean_on : float; mean_off : float }
  | Video of { ladder_bps : float array option }
  | Speedtest of { duration : float }

type flow_spec = {
  label : string;
  cca : cca_spec;
  app : app_spec;
  start : float;
  stop : float option;
  extra_delay_s : float;
  rcv_buffer_bytes : int option;
  consume_rate_bps : float option;
  ingress : Net.Topology.ingress;
}

let flow ?(cca = Reno) ?(app = Bulk) ?(start = 0.0) ?stop ?(extra_delay_s = 0.001)
    ?rcv_buffer_bytes ?consume_rate_bps ?(ingress = Net.Topology.No_ingress) label =
  {
    label;
    cca;
    app;
    start;
    stop;
    extra_delay_s;
    rcv_buffer_bytes;
    consume_rate_bps;
    ingress;
  }

type qdisc_spec =
  | Fifo of { limit_bytes : int option }
  | Drr of { quantum_bytes : int option; limit_bytes : int option }
  | Red
  | Codel
  | Prio of { bands : int }

type short_flows_spec = {
  arrival_rate : float;
  mean_size_bytes : float;
  sf_stop : float option;
}

type rate_variation =
  | Steady
  | Markov_states of float array
  | Ou_wander of { volatility : float }

type t = {
  name : string;
  rate_bps : float;
  delay_s : float;
  qdisc : qdisc_spec;
  flows : flow_spec list;
  short_flows : short_flows_spec option;
  rate_variation : rate_variation;
  duration : float;
  warmup : float;
  seed : int;
  monitor_interval : float;
}

let make ?(qdisc = Fifo { limit_bytes = None }) ?short_flows ?(rate_variation = Steady)
    ?(duration = 30.0) ?(warmup = 5.0) ?(seed = 42) ?(monitor_interval = 0.1) ~name ~rate_bps
    ~delay_s flows =
  if duration <= warmup then invalid_arg "Scenario.make: duration must exceed warmup";
  {
    name;
    rate_bps;
    delay_s;
    qdisc;
    flows;
    short_flows;
    rate_variation;
    duration;
    warmup;
    seed;
    monitor_interval;
  }

let build_qdisc sim = function
  | Fifo { limit_bytes } -> Net.Fifo.create ?limit_bytes ()
  | Drr { quantum_bytes; limit_bytes } -> Net.Drr.create ?quantum_bytes ?limit_bytes ()
  | Red -> Net.Red.create ()
  | Codel -> Net.Codel.create ~now:(fun () -> Sim.now sim) ()
  | Prio { bands } -> Net.Prio.create ~bands ()

let build_cca sim t spec =
  match spec with
  | Reno -> (Cca.Reno.create (), None)
  | Cubic -> (Cca.Cubic.create (), None)
  | Bbr -> (Cca.Bbr.create (), None)
  | Vegas -> (Cca.Vegas.create (), None)
  | Copa -> (Cca.Copa.create (), None)
  | Tfrc -> (Cca.Tfrc.create (), None)
  | Ledbat -> (Cca.Ledbat.create (), None)
  | Aimd { a; b } -> (Cca.Aimd.create ~a ~b (), None)
  | Nimbus { mode_switching; known_capacity_bps } ->
      let cca, handle =
        Cca.Nimbus.create sim ~mode_switching ?known_capacity_bps ()
      in
      ignore t;
      (cca, Some handle)
  | Custom f -> (f sim, None)

(* Per-flow runtime state gathered while the simulation runs. *)
type live = {
  spec : flow_spec;
  flow_id : int;
  kind : [ `Tcp | `Udp ];
  sender : Tcp.Sender.t option;
  receiver : Tcp.Receiver.t option;
  udp_sink : Tcp.Udp.Sink.t option;
  monitor : Measure.Telemetry.Flow_monitor.t option;
  nimbus : Cca.Nimbus.handle option;
  mutable video : App.Video.t option;
  mutable speedtest : App.Speedtest.t option;
  mutable acked_at_window_start : int;
  mutable received_at_window_start : int;
  mutable offered_at_window_start : int;
  mutable cbr : App.Cbr.t option;
  mutable onoff : App.Onoff.t option;
}

let run t =
  let sim = Sim.create () in
  (* Every timeline series this scenario's components register carries
     the scenario name, so multi-scenario jobs (fig3) stay separable. *)
  Sim.add_timeline_tags sim [ ("scenario", t.name) ];
  let rng = U.Rng.create t.seed in
  let qdisc = build_qdisc sim t.qdisc in
  let specs = Array.of_list t.flows in
  let ingress_of flow =
    if flow < Array.length specs then specs.(flow).ingress else Net.Topology.No_ingress
  in
  let edge_delay flow =
    if flow < Array.length specs then specs.(flow).extra_delay_s else 0.001
  in
  let topo =
    Net.Topology.dumbbell sim ~rate_bps:t.rate_bps ~delay_s:t.delay_s ~qdisc ~edge_delay
      ~ingress:ingress_of ()
  in
  let queue_monitor = Measure.Telemetry.Queue_monitor.create sim ~qdisc () in
  (match t.rate_variation with
  | Steady -> ()
  | Markov_states states_bps ->
      ignore
        (Net.Rate_process.markov sim ~link:topo.bottleneck ~rng:(U.Rng.split rng) ~states_bps ())
  | Ou_wander { volatility } ->
      ignore
        (Net.Rate_process.ornstein_uhlenbeck sim ~link:topo.bottleneck ~rng:(U.Rng.split rng)
           ~mean_bps:t.rate_bps ~volatility ()));
  (* An ambient armed fault plan (the CLI's --faults flag, or an
     experiment like c1) attaches an injector to the bottleneck. The
     injector seed is the plan's own, independent of the scenario seed,
     so the workload's draws are untouched by arming faults. *)
  let injector =
    match Ccsim_faults.Plan.armed () with
    | None -> None
    | Some { Ccsim_faults.Plan.plan; seed } ->
        Some (Ccsim_faults.Injector.attach sim ~link:topo.bottleneck ~plan ~seed ())
  in
  (* --- per-flow setup --- *)
  let setup_flow idx (spec : flow_spec) =
    let flow_id = idx in
    match spec.app with
    | Cbr_udp { rate_bps } ->
        let source = Tcp.Udp.Source.create sim ~flow:flow_id ~path:(topo.fwd_entry ~flow:flow_id) () in
        let sink = Tcp.Udp.Sink.create sim () in
        Net.Dispatch.register topo.fwd_dispatch ~flow:flow_id (Tcp.Udp.Sink.handle sink);
        let live =
          {
            spec;
            flow_id;
            kind = `Udp;
            sender = None;
            receiver = None;
            udp_sink = Some sink;
            monitor = None;
            nimbus = None;
            video = None;
            speedtest = None;
            acked_at_window_start = 0;
            received_at_window_start = 0;
            offered_at_window_start = 0;
            cbr = None;
            onoff = None;
          }
        in
        ignore
          (Sim.schedule_at sim ~time:spec.start (fun () ->
               live.cbr <-
                 Some
                   (App.Cbr.over_udp sim ~source ~rate_bps
                      ?stop:(match spec.stop with Some s -> Some s | None -> None)
                      ())));
        live
    | Bulk | Cbr_tcp _ | Onoff _ | Video _ | Speedtest _ ->
        let cca, nimbus = build_cca sim t spec.cca in
        let conn =
          Tcp.Connection.establish topo ~flow:flow_id ~cca
            ?rcv_buffer_bytes:spec.rcv_buffer_bytes ?consume_rate_bps:spec.consume_rate_bps ()
        in
        let monitor =
          Measure.Telemetry.Flow_monitor.create sim ~sender:conn.sender ~label:spec.label
            ~interval:t.monitor_interval ()
        in
        let live =
          {
            spec;
            flow_id;
            kind = `Tcp;
            sender = Some conn.sender;
            receiver = Some conn.receiver;
            udp_sink = None;
            monitor = Some monitor;
            nimbus;
            video = None;
            speedtest = None;
            acked_at_window_start = 0;
            received_at_window_start = 0;
            offered_at_window_start = 0;
            cbr = None;
            onoff = None;
          }
        in
        ignore
          (Sim.schedule_at sim ~time:spec.start (fun () ->
               match spec.app with
               | Bulk ->
                   ignore (App.Bulk.start sim ~sender:conn.sender ?stop_at:spec.stop ())
               | Cbr_tcp { rate_bps } ->
                   live.cbr <-
                     Some (App.Cbr.over_tcp sim ~sender:conn.sender ~rate_bps ?stop:spec.stop ())
               | Onoff { rate_bps; mean_on; mean_off } ->
                   live.onoff <-
                     Some
                       (App.Onoff.start sim ~sender:conn.sender ~rng:(U.Rng.split rng) ~rate_bps
                          ~mean_on ~mean_off
                          ?stop:(match spec.stop with Some s -> Some s | None -> None)
                          ())
               | Video { ladder_bps } ->
                   live.video <-
                     Some
                       (App.Video.start sim ~sender:conn.sender ?ladder_bps:ladder_bps
                          ?stop:spec.stop ())
               | Speedtest { duration } ->
                   live.speedtest <- Some (App.Speedtest.start sim ~sender:conn.sender ~duration ())
               | Cbr_udp _ -> assert false));
        live
  in
  let lives = List.mapi setup_flow t.flows in
  (* Per-flow bottleneck attribution: occupancy (serialization seconds)
     and drop shares, labeled like the Flow_monitor series so `ccsim
     explain` groups them per flow. No-ops without a timeline in scope. *)
  List.iter
    (fun live ->
      let labels = [ ("flow", live.spec.label) ] in
      let flow = live.flow_id in
      Sim.add_timeline_probe sim ~labels "flow_bneck_busy_s" (fun () ->
          Net.Link.flow_busy_seconds topo.bottleneck ~flow);
      Sim.add_timeline_probe sim ~labels "flow_bneck_drops" (fun () ->
          float_of_int (Net.Link.flow_drops topo.bottleneck ~flow)))
    lives;
  (* --- background short flows (ids from 1000) --- *)
  let short =
    match t.short_flows with
    | None -> None
    | Some s ->
        Some
          (App.Poisson_flows.start sim topo ~rng:(U.Rng.split rng) ~arrival_rate:s.arrival_rate
             ~mean_size_bytes:s.mean_size_bytes
             ?stop:s.sf_stop ())
  in
  (* --- measurement window bookkeeping --- *)
  List.iter
    (fun live ->
      let window_start = Float.max t.warmup live.spec.start in
      ignore
        (Sim.schedule_at sim ~time:window_start (fun () ->
             (match live.sender with
             | Some s -> live.acked_at_window_start <- Tcp.Sender.bytes_acked s
             | None -> ());
             (match live.receiver with
             | Some r -> live.received_at_window_start <- Tcp.Receiver.bytes_received r
             | None -> ());
             (match live.udp_sink with
             | Some sink -> live.received_at_window_start <- Tcp.Udp.Sink.bytes_received sink
             | None -> ());
             let offered =
               match (live.cbr, live.onoff) with
               | Some c, _ -> App.Cbr.bytes_offered c
               | None, Some o -> App.Onoff.bytes_offered o
               | None, None -> 0
             in
             live.offered_at_window_start <- offered)))
    lives;
  Sim.run ~until:t.duration sim;
  (* Final per-flow attribution gauges for the metrics export (the
     timeline probes above carry the trajectories). *)
  (match (Ccsim_obs.Scope.ambient ()).Ccsim_obs.Scope.metrics with
  | Some m ->
      List.iter
        (fun live ->
          let labels = [ ("flow", live.spec.label) ] in
          Ccsim_obs.Metrics.set
            (Ccsim_obs.Metrics.gauge m ~labels "link_flow_busy_seconds")
            (Net.Link.flow_busy_seconds topo.bottleneck ~flow:live.flow_id);
          Ccsim_obs.Metrics.set
            (Ccsim_obs.Metrics.gauge m ~labels "qdisc_flow_dropped_total")
            (float_of_int (Net.Link.flow_drops topo.bottleneck ~flow:live.flow_id)))
        lives
  | None -> ());
  (* --- collect results --- *)
  let window_of live =
    let start = Float.max t.warmup live.spec.start in
    let stop = match live.spec.stop with Some s -> Float.min s t.duration | None -> t.duration in
    Float.max 1e-9 (stop -. start)
  in
  let flow_results =
    List.map
      (fun live ->
        let window = window_of live in
        let received =
          match (live.receiver, live.udp_sink) with
          | Some r, _ -> Tcp.Receiver.bytes_received r
          | None, Some sink -> Tcp.Udp.Sink.bytes_received sink
          | None, None -> 0
        in
        let goodput =
          float_of_int (received - live.received_at_window_start) *. 8.0 /. window
        in
        let offered_now =
          match (live.cbr, live.onoff) with
          | Some c, _ -> App.Cbr.bytes_offered c
          | None, Some o -> App.Onoff.bytes_offered o
          | None, None -> 0
        in
        let offered =
          if offered_now = 0 then goodput
          else float_of_int (offered_now - live.offered_at_window_start) *. 8.0 /. window
        in
        let info = Option.map Tcp.Sender.info live.sender in
        let throughput =
          match live.monitor with
          | Some m -> Measure.Telemetry.Flow_monitor.throughput m
          | None -> (
              match live.udp_sink with
              | Some sink ->
                  U.Timeseries.rate_of_cumulative
                    (let arr = Tcp.Udp.Sink.arrivals sink in
                     let cum = U.Timeseries.create () in
                     let total = ref 0.0 in
                     List.iter
                       (fun (time, v) ->
                         total := !total +. v;
                         U.Timeseries.add cum ~time ~value:(!total *. 8.0))
                       (U.Timeseries.to_list arr);
                     cum)
                    ~interval:t.monitor_interval
              | None -> U.Timeseries.create ())
        in
        let mean_srtt =
          match live.monitor with
          | Some m ->
              let s = Measure.Telemetry.Flow_monitor.srtt m in
              if U.Timeseries.is_empty s then 0.0 else U.Timeseries.mean_value s
          | None -> 0.0
        in
        {
          Results.label = live.spec.label;
          flow = live.flow_id;
          kind = live.kind;
          goodput_bps = goodput;
          offered_bps = offered;
          bytes_acked =
            (match live.sender with Some s -> Tcp.Sender.bytes_acked s | None -> received);
          retransmits = (match live.sender with Some s -> Tcp.Sender.segs_retrans s | None -> 0);
          mean_srtt_s = mean_srtt;
          min_rtt_s =
            (match live.sender with
            | Some s ->
                let m = Tcp.Sender.min_rtt s in
                if Float.is_finite m then m else 0.0
            | None -> 0.0);
          throughput;
          info;
          nimbus = live.nimbus;
          video = Option.map App.Video.stats live.video;
          speedtest = Option.bind live.speedtest App.Speedtest.result;
          jitter_s =
            (match live.udp_sink with
            | Some sink -> Tcp.Udp.Sink.interarrival_jitter sink
            | None -> 0.0);
        })
      lives
  in
  let short_flow_stats =
    Option.map
      (fun sf ->
        let completed = App.Poisson_flows.completed sf in
        let times =
          List.filter_map
            (fun (r : App.Poisson_flows.flow_record) ->
              Option.map (fun f -> f -. r.started) r.finished)
            completed
        in
        {
          Results.spawned = App.Poisson_flows.spawn_count sf;
          completed = List.length completed;
          fraction_in_initial_window = App.Poisson_flows.fraction_within_initial_window sf;
          completion_times =
            (match times with [] -> None | _ -> Some (U.Cdf.of_samples (Array.of_list times)));
        })
      short
  in
  let goodputs = Array.of_list (List.map (fun (f : Results.flow_result) -> f.goodput_bps) flow_results) in
  {
    Results.scenario_name = t.name;
    duration = t.duration;
    warmup = t.warmup;
    flows = flow_results;
    jain_index = (if Array.length goodputs = 0 then 1.0 else U.Fairness.jain_index goodputs);
    utilization = Net.Link.utilization topo.bottleneck ~now:t.duration;
    bottleneck_drops = qdisc.Net.Qdisc.stats.dropped;
    bottleneck_loss_rate = Net.Qdisc.loss_rate qdisc;
    mean_queue_bytes = Measure.Telemetry.Queue_monitor.mean_backlog_bytes queue_monitor;
    max_queue_bytes = Measure.Telemetry.Queue_monitor.max_backlog_bytes queue_monitor;
    short_flow_stats;
    faults = Option.map Ccsim_faults.Injector.summary injector;
  }
