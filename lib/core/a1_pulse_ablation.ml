module Sim = Ccsim_engine.Sim
module U = Ccsim_util

type row = {
  amplitude : float;
  elastic_p90 : float;
  inelastic_p90 : float;
  separation : float;
  both_classified_correctly : bool;
  probe_goodput_mbps : float;
}

let rate_bps = U.Units.mbps 48.0
let rtt_s = 0.1

(* This ablation drives Nimbus below the Scenario API so the pulse
   amplitude can vary. *)
let probe_run ~amplitude ~duration ~cross =
  let sim = Sim.create () in
  let bdp = U.Units.bdp_bytes ~rate_bps ~rtt_s in
  let topo =
    Ccsim_net.Topology.dumbbell sim ~rate_bps ~delay_s:(rtt_s /. 2.0)
      ~qdisc:(Ccsim_net.Fifo.create ~limit_bytes:(2 * bdp) ())
      ()
  in
  let probe_cca, handle =
    Ccsim_cca.Nimbus.create sim ~mode_switching:false ~known_capacity_bps:rate_bps
      ~pulse_amplitude:amplitude ()
  in
  let probe = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:probe_cca () in
  Ccsim_tcp.Sender.set_unlimited probe.sender;
  (match cross with
  | `Reno_bulk ->
      let conn = Ccsim_tcp.Connection.establish topo ~flow:1 ~cca:(Ccsim_cca.Reno.create ()) () in
      Ccsim_tcp.Sender.set_unlimited conn.sender
  | `Cbr_udp ->
      let source = Ccsim_tcp.Udp.Source.create sim ~flow:1 ~path:(topo.fwd_entry ~flow:1) () in
      let sink = Ccsim_tcp.Udp.Sink.create sim () in
      Ccsim_net.Dispatch.register topo.fwd_dispatch ~flow:1 (Ccsim_tcp.Udp.Sink.handle sink);
      ignore (Ccsim_app.Cbr.over_udp sim ~source ~rate_bps:(U.Units.mbps 12.0) ()));
  Sim.run ~until:duration sim;
  let steady = U.Timeseries.between handle.elasticity ~lo:10.0 ~hi:duration in
  let values = U.Timeseries.values steady in
  let p90 = if Array.length values = 0 then 0.0 else U.Stats.percentile values 90.0 in
  let goodput =
    float_of_int (Ccsim_tcp.Receiver.bytes_received probe.receiver) *. 8.0 /. duration
  in
  (p90, goodput)

let run ?(duration = 45.0) ?seed () =
  ignore seed;
  List.map
    (fun amplitude ->
      let elastic_p90, probe_goodput = probe_run ~amplitude ~duration ~cross:`Reno_bulk in
      let inelastic_p90, _ = probe_run ~amplitude ~duration ~cross:`Cbr_udp in
      {
        amplitude;
        elastic_p90;
        inelastic_p90;
        separation = elastic_p90 -. inelastic_p90;
        both_classified_correctly = elastic_p90 > 0.5 && inelastic_p90 <= 0.5;
        probe_goodput_mbps = U.Units.to_mbps probe_goodput;
      })
    [ 0.0625; 0.125; 0.25; 0.375 ]

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "A1: Nimbus pulse amplitude vs elastic/inelastic separation";
  let table =
    U.Table.create
      ~columns:
        [
          ("amplitude", U.Table.Right);
          ("elastic p90", U.Table.Right);
          ("inelastic p90", U.Table.Right);
          ("separation", U.Table.Right);
          ("classified", U.Table.Left);
          ("probe Mbit/s", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          U.Table.cell_f r.amplitude;
          U.Table.cell_f r.elastic_p90;
          U.Table.cell_f r.inelastic_p90;
          U.Table.cell_f r.separation;
          (if r.both_classified_correctly then "both correct" else "confused");
          U.Table.cell_f r.probe_goodput_mbps;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
