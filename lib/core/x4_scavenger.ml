module U = Ccsim_util

type row = {
  update_cca : string;
  video_bitrate_mbps : float;
  video_rebuffer_s : float;
  update_mbps : float;
  mean_srtt_ms : float;
  utilization : float;
}

let rate_bps = U.Units.mbps 30.0

let run ?(duration = 90.0) ?(seed = 42) () =
  let cases =
    [ ("none", None); ("cubic", Some Scenario.Cubic); ("ledbat", Some Scenario.Ledbat) ]
  in
  List.map
    (fun (name, update_cca) ->
      let flows =
        Scenario.flow "video" ~cca:Scenario.Cubic ~app:(Scenario.Video { ladder_bps = None })
        ::
        (match update_cca with
        | None -> []
        | Some cca -> [ Scenario.flow "update" ~cca ~app:Scenario.Bulk ~start:20.0 ])
      in
      let scenario =
        Scenario.make ~name:("x4/" ^ name) ~rate_bps ~delay_s:0.015 ~duration ~warmup:25.0
          ~seed flows
      in
      let result = Scenario.run scenario in
      let video = Results.find result "video" in
      let stats =
        match video.video with
        | Some s -> s
        | None -> invalid_arg "X4: video flow carries no ABR stats"
      in
      {
        update_cca = name;
        video_bitrate_mbps = U.Units.to_mbps stats.mean_bitrate_bps;
        video_rebuffer_s = stats.rebuffer_s;
        update_mbps =
          (match update_cca with
          | None -> 0.0
          | Some _ -> U.Units.to_mbps (Results.find result "update").goodput_bps);
        mean_srtt_ms = 1e3 *. video.mean_srtt_s;
        utilization = result.utilization;
      })
    cases

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "X4: a software update over a scavenger CCA stops contending with video (30 Mbit/s access link)";
  let table =
    U.Table.create
      ~columns:
        [
          ("update via", U.Table.Left);
          ("video bitrate", U.Table.Right);
          ("rebuffer s", U.Table.Right);
          ("update Mbit/s", U.Table.Right);
          ("video srtt ms", U.Table.Right);
          ("util", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.update_cca;
          U.Table.cell_f r.video_bitrate_mbps;
          U.Table.cell_f r.video_rebuffer_s;
          U.Table.cell_f r.update_mbps;
          U.Table.cell_f r.mean_srtt_ms;
          U.Table.cell_f r.utilization;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
