(** Figure 3 reproduction: actively measuring elasticity.

    A Nimbus probe flow (mode switching disabled, pulses kept, capacity
    pinned to the emulated link) runs for 45 s on a 48 Mbit/s, 100 ms-RTT
    bottleneck against five kinds of cross traffic, as in the paper:
    persistently backlogged Reno, persistently backlogged BBR, an ABR
    video stream, Poisson-arrival short flows, and constant-bit-rate
    UDP. Elastic (backlogged) cross traffic mirrors the probe's
    bandwidth oscillations and yields a clearly higher elasticity
    metric. *)

type row = {
  traffic : string;
  expected_elastic : bool;
  mean_elasticity : float;  (** over the steady-state window *)
  p90_elasticity : float;
  classified_elastic : bool;  (** p90 > 0.5 *)
  probe_goodput_mbps : float;
  cross_goodput_mbps : float;
  elasticity_series : Ccsim_util.Timeseries.t;
}

val rate_bps : float
(** 48 Mbit/s, as in the paper. *)

val rtt_s : float
(** 100 ms. *)

val run : ?duration:float -> ?seed:int -> unit -> row list
(** One scenario per cross-traffic type (default 45 s each). *)

val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
