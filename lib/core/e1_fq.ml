module U = Ccsim_util

type row = {
  pair : string;
  qdisc : string;
  goodput_a_mbps : float;
  goodput_b_mbps : float;
  jain : float;
  utilization : float;
}

let pairs =
  [
    ("reno/reno", Scenario.Reno, Scenario.Reno);
    ("cubic/reno", Scenario.Cubic, Scenario.Reno);
    ("bbr/reno", Scenario.Bbr, Scenario.Reno);
    ("bbr/cubic", Scenario.Bbr, Scenario.Cubic);
    ("vegas/reno", Scenario.Vegas, Scenario.Reno);
    ("aimd(4,.7)/reno", Scenario.Aimd { a = 4.0; b = 0.7 }, Scenario.Reno);
  ]

(* The DRR buffer gets two BDPs so rate-based probing (BBR) has room in
   its own queue; with the stock shallow buffer BBR declines its fair
   share rather than being denied it. *)
let qdiscs =
  let bdp = Ccsim_util.Units.bdp_bytes ~rate_bps:(U.Units.mbps 48.0) ~rtt_s:0.05 in
  [
    ("fifo", Scenario.Fifo { limit_bytes = None });
    ("drr-fq", Scenario.Drr { quantum_bytes = None; limit_bytes = Some (4 * bdp) });
  ]

let run ?(duration = 60.0) ?(seed = 42) () =
  List.concat_map
    (fun (pair, cca_a, cca_b) ->
      List.map
        (fun (qdisc_name, qdisc) ->
          let scenario =
            Scenario.make
              ~name:(Printf.sprintf "e1/%s/%s" pair qdisc_name)
              ~rate_bps:(U.Units.mbps 48.0) ~delay_s:0.025 ~qdisc ~duration ~warmup:10.0 ~seed
              [
                Scenario.flow "a" ~cca:cca_a ~app:Scenario.Bulk;
                Scenario.flow "b" ~cca:cca_b ~app:Scenario.Bulk;
              ]
          in
          let result = Scenario.run scenario in
          let a = Results.find result "a" and b = Results.find result "b" in
          {
            pair;
            qdisc = qdisc_name;
            goodput_a_mbps = U.Units.to_mbps a.goodput_bps;
            goodput_b_mbps = U.Units.to_mbps b.goodput_bps;
            jain = result.jain_index;
            utilization = result.utilization;
          })
        qdiscs)
    pairs

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b "E1: CCA pairings under FIFO vs DRR fair queueing (48 Mbit/s, 50 ms RTT)";
  let table =
    U.Table.create
      ~columns:
        [
          ("pair", U.Table.Left);
          ("qdisc", U.Table.Left);
          ("A Mbit/s", U.Table.Right);
          ("B Mbit/s", U.Table.Right);
          ("jain", U.Table.Right);
          ("util", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.pair;
          r.qdisc;
          U.Table.cell_f r.goodput_a_mbps;
          U.Table.cell_f r.goodput_b_mbps;
          U.Table.cell_f ~decimals:3 r.jain;
          U.Table.cell_f r.utilization;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
