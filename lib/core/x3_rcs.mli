(** X3 (extension) — per-flow vs per-user isolation, validated against
    the Recursive Congestion Shares model (§2.1, §5.3).

    §2.1 notes that "most isolation mechanisms operate on a per-user,
    not per-flow, basis". Two users share an access aggregate: user A
    runs four bulk flows, user B runs one. Per-flow fair queueing hands
    A 4/5 of the link (flow-splitting pays); weighted per-user fair
    queueing (each user's flows weighted 1/n_user) restores the 50/50
    economic split. Both enforced outcomes are compared against the
    pure {!Ccsim_measure.Rcs} share-tree prediction. *)

type row = {
  scheme : string;  (** per-flow FQ / per-user FQ *)
  flow : string;
  simulated_mbps : float;
  model_mbps : float;  (** RCS prediction for the matching tree *)
  relative_error : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
