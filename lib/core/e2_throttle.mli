(** E2 — ISP throttling pins the allocation, not the CCA (§2.1).

    A bulk flow crosses an otherwise-idle 100 Mbit/s bottleneck behind a
    per-user token-bucket element configured for a 20 Mbit/s plan:
    shaping (queue the excess) and policing (drop the excess, as Flach
    et al. observed on 7% of paths). Whatever the CCA — Reno, Cubic, or
    BBR — the achieved rate is the plan rate; the CCA only changes how
    much loss/queueing is suffered on the way there. *)

type row = {
  cca : string;
  management : string;  (** none / shaper / policer *)
  goodput_mbps : float;
  retransmits : int;
  mean_srtt_ms : float;
}

val plan_rate_bps : float
val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
