(** Figure 1 backing experiment — when do CCA dynamics determine the
    allocation?

    Figure 1 in the paper is a conceptual diagram; this experiment puts
    numbers behind it by sweeping the three prerequisites for
    contention (§2): (i) flows share a path segment, (ii) that segment
    is a bottleneck, (iii) they use the same queue. A Cubic flow and a
    Reno flow — a representative aggressive/conservative pairing — run
    under each condition; the allocation ratio tells us whether CCA
    aggressiveness mattered. *)

type row = {
  condition : string;
  shares_segment : bool;
  saturated : bool;
  same_queue : bool;
  aggressive_mbps : float;
  reno_mbps : float;
  ratio : float;  (** aggressive / reno *)
  cca_determined : bool;  (** ratio outside [2/3, 3/2] *)
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
