(** A4 (ablation) — bottleneck buffer depth vs BBR/Reno coexistence.

    Ware et al. [2] model how BBR's share against loss-based flows
    depends on the buffer: in shallow buffers BBR's inflight cap
    dominates and Reno starves; as the buffer deepens toward multiple
    BDPs, loss-based flows regain share. The sweep reproduces that
    shape on a FIFO bottleneck. *)

type row = {
  buffer_bdp : float;  (** buffer size in bandwidth-delay products *)
  bbr_mbps : float;
  reno_mbps : float;
  bbr_share : float;  (** of the two flows' combined goodput *)
  loss_rate : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
