(** E1 — fair queueing eliminates CCA dynamics (§2.1).

    Heterogeneous CCA pairs share a bottleneck under drop-tail FIFO and
    under DRR fair queueing. Under FIFO the allocation is whatever the
    CCA dynamics produce (BBR dominates Reno, Cubic beats Reno, Vegas
    starves); under per-flow FQ every pairing converges to the max-min
    share regardless of CCA — "a universal deployment of fair queueing
    would entirely eliminate the role of CCA dynamics in determining
    bandwidth allocations". *)

type row = {
  pair : string;
  qdisc : string;
  goodput_a_mbps : float;
  goodput_b_mbps : float;
  jain : float;
  utilization : float;
}

val run : ?duration:float -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
