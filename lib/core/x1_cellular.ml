module U = Ccsim_util

type row = {
  cca : string;
  goodput_mbps : float;
  mean_capacity_mbps : float;
  capacity_used : float;
  mean_srtt_ms : float;
  queueing_ms : float;
  retransmits : int;
}

let mean_rate_bps = U.Units.mbps 20.0
let rtt_s = 0.06

let run ?(duration = 60.0) ?(seed = 42) () =
  let ccas =
    [
      ("reno", Scenario.Reno);
      ("cubic", Scenario.Cubic);
      ("bbr", Scenario.Bbr);
      ("vegas", Scenario.Vegas);
      ("copa", Scenario.Copa);
    ]
  in
  List.map
    (fun (name, cca) ->
      let scenario =
        Scenario.make
          ~name:("x1/" ^ name)
          ~rate_bps:mean_rate_bps ~delay_s:(rtt_s /. 2.0)
          ~rate_variation:(Scenario.Ou_wander { volatility = 0.2 })
          ~duration ~warmup:10.0 ~seed
          [ Scenario.flow "flow" ~cca ~app:Scenario.Bulk ]
      in
      let result = Scenario.run scenario in
      let f = Results.find result "flow" in
      (* The OU process is mean-reverting around the configured rate; use
         the configured mean as the capacity reference (the exact
         trajectory is seed-deterministic and identical across CCAs). *)
      let mean_capacity = mean_rate_bps in
      {
        cca = name;
        goodput_mbps = U.Units.to_mbps f.goodput_bps;
        mean_capacity_mbps = U.Units.to_mbps mean_capacity;
        capacity_used = f.goodput_bps /. mean_capacity;
        mean_srtt_ms = 1e3 *. f.mean_srtt_s;
        queueing_ms = 1e3 *. Float.max 0.0 (f.mean_srtt_s -. (rtt_s +. 0.002));
        retransmits = f.retransmits;
      })
    ccas

let render rows =
  Report.with_buf @@ fun b ->
  Report.line b
    "X1: utilization vs self-inflicted delay on a wandering-capacity (cellular-like) link";
  let table =
    U.Table.create
      ~columns:
        [
          ("cca", U.Table.Left);
          ("goodput Mbit/s", U.Table.Right);
          ("capacity used", U.Table.Right);
          ("srtt ms", U.Table.Right);
          ("queueing ms", U.Table.Right);
          ("retransmits", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      U.Table.add_row table
        [
          r.cca;
          U.Table.cell_f r.goodput_mbps;
          U.Table.cell_pct r.capacity_used;
          U.Table.cell_f r.mean_srtt_ms;
          U.Table.cell_f r.queueing_ms;
          string_of_int r.retransmits;
        ])
    rows;
  Report.table b table

let print rows = print_string (render rows)
