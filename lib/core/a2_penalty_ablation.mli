(** A2 (ablation) — change-point penalty vs Figure 2 detector accuracy.

    The §3.1 pipeline's verdicts hinge on the penalized-segmentation
    penalty: too small over-segments noise into spurious "contention",
    too large misses genuine competitor arrivals. This sweep scales
    PELT's BIC-style default penalty and scores the detector against
    the synthetic population's ground truth. *)

type row = {
  penalty_scale : float;  (** x the BIC default *)
  precision : float;
  recall : float;
  candidates_flagged : int;
  mean_changes_per_candidate : float;
}

val run : ?n:int -> ?seed:int -> unit -> row list
val render : row list -> string
(** Paper-style report rows rendered to a string (what {!print}
    writes to stdout); the runner caches and reorders these. *)

val print : row list -> unit
