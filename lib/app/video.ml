module Sim = Ccsim_engine.Sim

let default_ladder_bps =
  [| 1.0e6; 2.5e6; 5.0e6; 8.0e6; 16.0e6; 25.0e6 |]

type state = Downloading of { target_bytes : int; started : float; rate : float } | Waiting

type t = {
  sim : Sim.t;
  sender : Ccsim_tcp.Sender.t;
  ladder : float array;
  chunk_duration : float;
  max_buffer_s : float;
  low_buffer_s : float;
  safety : float;
  stop : float;
  mutable state : state;
  mutable buffer_s : float;  (* seconds of video buffered *)
  mutable playing : bool;
  mutable last_tick : float;
  mutable tput_estimate : float;  (* EWMA of per-chunk throughput, bit/s *)
  mutable chunks : int;
  mutable switches : int;
  mutable last_rate : float;
  mutable rebuffer_s : float;
  mutable bitrate_sum : float;
  bitrate_series : Ccsim_util.Timeseries.t;
}

type stats = {
  chunks_downloaded : int;
  mean_bitrate_bps : float;
  rebuffer_s : float;
  switches : int;
  bitrate_series : Ccsim_util.Timeseries.t;
}

let choose_rate t =
  if t.buffer_s < t.low_buffer_s then t.ladder.(0)
  else begin
    let cap = t.safety *. t.tput_estimate in
    let best = ref t.ladder.(0) in
    Array.iter (fun r -> if r <= cap && r > !best then best := r) t.ladder;
    !best
  end

let request_chunk t =
  let now = Sim.now t.sim in
  if now < t.stop then begin
    let rate = choose_rate t in
    if t.chunks > 0 && not (Float.equal rate t.last_rate) then t.switches <- t.switches + 1;
    t.last_rate <- rate;
    t.bitrate_sum <- t.bitrate_sum +. rate;
    Ccsim_util.Timeseries.add t.bitrate_series ~time:now ~value:rate;
    let bytes = int_of_float (rate *. t.chunk_duration /. 8.0) in
    let target = Ccsim_tcp.Sender.bytes_acked t.sender + bytes in
    t.state <- Downloading { target_bytes = target; started = now; rate };
    Ccsim_tcp.Sender.write t.sender bytes
  end

let tick t =
  let now = Sim.now t.sim in
  let dt = now -. t.last_tick in
  t.last_tick <- now;
  (* Playback drains the buffer; an empty buffer is a rebuffer stall. *)
  if t.playing then begin
    if t.buffer_s > 0.0 then t.buffer_s <- Float.max 0.0 (t.buffer_s -. dt)
    else t.rebuffer_s <- t.rebuffer_s +. dt
  end;
  match t.state with
  | Downloading { target_bytes; started; rate } ->
      if Ccsim_tcp.Sender.bytes_acked t.sender >= target_bytes then begin
        t.chunks <- t.chunks + 1;
        t.buffer_s <- t.buffer_s +. t.chunk_duration;
        let elapsed = Float.max 1e-3 (now -. started) in
        let chunk_tput = rate *. t.chunk_duration /. elapsed in
        t.tput_estimate <-
          (if t.tput_estimate <= 0.0 then chunk_tput
           else (0.3 *. chunk_tput) +. (0.7 *. t.tput_estimate));
        if (not t.playing) && t.buffer_s >= 2.0 *. t.chunk_duration then t.playing <- true;
        t.state <- Waiting
      end
  | Waiting -> if t.buffer_s +. t.chunk_duration <= t.max_buffer_s then request_chunk t

let start sim ~sender ?(ladder_bps = default_ladder_bps) ?(chunk_duration = 2.0)
    ?(max_buffer_s = 30.0) ?(low_buffer_s = 5.0) ?(safety = 0.8) ?(stop = infinity) () =
  if Array.length ladder_bps = 0 then invalid_arg "Video.start: empty ladder";
  let ladder = Array.copy ladder_bps in
  Array.sort Float.compare ladder;
  let t =
    {
      sim;
      sender;
      ladder;
      chunk_duration;
      max_buffer_s;
      low_buffer_s;
      safety;
      stop;
      state = Waiting;
      buffer_s = 0.0;
      playing = false;
      last_tick = Sim.now sim;
      tput_estimate = 0.0;
      chunks = 0;
      switches = 0;
      last_rate = 0.0;
      rebuffer_s = 0.0;
      bitrate_sum = 0.0;
      bitrate_series = Ccsim_util.Timeseries.create ();
    }
  in
  request_chunk t;
  Sim.every sim ~interval:0.01 ~stop_after:stop (fun () -> tick t);
  t

let stats t =
  {
    chunks_downloaded = t.chunks;
    mean_bitrate_bps = (if t.chunks = 0 then 0.0 else t.bitrate_sum /. float_of_int (max 1 t.chunks));
    rebuffer_s = t.rebuffer_s;
    switches = t.switches;
    bitrate_series = t.bitrate_series;
  }
