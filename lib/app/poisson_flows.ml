module Sim = Ccsim_engine.Sim

type flow_record = {
  id : int;
  size_bytes : int;
  started : float;
  mutable finished : float option;
  mutable retransmits : int;
  mutable fit_in_initial_window : bool;
}

type t = {
  sim : Sim.t;
  mutable flows : flow_record list; (* newest first *)
  mutable spawned : int;
}

let start sim topo ~rng ~arrival_rate ?(mean_size_bytes = 30_000.0) ?(pareto_shape = 1.2)
    ?(max_size_bytes = 10_000_000) ?(first_flow_id = 1000)
    ?(cca = fun () -> Ccsim_cca.Reno.create ()) ?(stop = infinity) () =
  if arrival_rate <= 0.0 then invalid_arg "Poisson_flows.start: arrival rate must be positive";
  let t = { sim; flows = []; spawned = 0 } in
  let next_id = ref first_flow_id in
  (* Choose the Pareto scale so that the (truncated) mean is roughly the
     requested mean: for shape a > 1, mean = scale * a / (a - 1). *)
  let scale = mean_size_bytes *. (pareto_shape -. 1.0) /. pareto_shape in
  let scale = Float.max 1000.0 scale in
  let spawn () =
    let id = !next_id in
    incr next_id;
    t.spawned <- t.spawned + 1;
    let size =
      int_of_float
        (Ccsim_util.Rng.bounded_pareto rng ~shape:pareto_shape ~scale
           ~cap:(float_of_int max_size_bytes))
    in
    let size = max 100 size in
    let record =
      {
        id;
        size_bytes = size;
        started = Sim.now sim;
        finished = None;
        retransmits = 0;
        fit_in_initial_window = false;
      }
    in
    t.flows <- record :: t.flows;
    let conn = ref None in
    let on_complete sender =
      record.finished <- Some (Sim.now sim);
      record.retransmits <- Ccsim_tcp.Sender.segs_retrans sender;
      record.fit_in_initial_window <-
        record.retransmits = 0
        && float_of_int size <= Ccsim_cca.Cca.initial_window ~mss:Ccsim_util.Units.mss;
      (* Tear down lazily so the completion ack path stays registered
         while this callback runs. *)
      ignore
        (Sim.schedule sim ~delay:0.0 (fun () ->
             match !conn with
             | Some c -> Ccsim_tcp.Connection.teardown topo c
             | None -> ()))
    in
    let c = Ccsim_tcp.Connection.establish topo ~flow:id ~cca:(cca ()) ~on_complete () in
    conn := Some c;
    Ccsim_tcp.Sender.write c.sender size;
    Ccsim_tcp.Sender.close c.sender
  in
  let rec arrival () =
    if Sim.now sim < stop then begin
      spawn ();
      ignore
        (Sim.schedule sim ~delay:(Ccsim_util.Rng.exponential rng ~mean:(1.0 /. arrival_rate))
           arrival)
    end
  in
  ignore
    (Sim.schedule sim ~delay:(Ccsim_util.Rng.exponential rng ~mean:(1.0 /. arrival_rate)) arrival);
  t

let flows t = List.rev t.flows
let completed t = List.filter (fun r -> Option.is_some r.finished) (flows t)
let spawn_count t = t.spawned

let fraction_within_initial_window t =
  let done_ = completed t in
  match done_ with
  | [] -> 0.0
  | _ ->
      let fit = List.length (List.filter (fun r -> r.fit_in_initial_window) done_) in
      float_of_int fit /. float_of_int (List.length done_)
