(* Fixture: R3 violations — structural equality on floats. Not
   compiled; only scanned by test_lint.ml through Lint_core. *)

let is_idle rate_bps = rate_bps = 0.0

let changed ~prev_s ~next_s = prev_s <> next_s
