(* Fixture: R1 violations — top-level mutable state. Not compiled; only
   scanned by test_lint.ml through Lint_core. *)

let hit_count = ref 0
let cache = Hashtbl.create 16
let scratch = Array.make 8 0.0

let bump () =
  incr hit_count;
  Hashtbl.replace cache !hit_count "seen";
  scratch.(0) <- 1.0
