(* Fixture: R4 violations — mixing unit suffixes across a binary
   operator. Not compiled; only scanned by test_lint.ml through
   Lint_core. *)

let budget delay_s rate_bps = delay_s +. rate_bps

let over queued_bytes window_pkts = queued_bytes > window_pkts
