(* Fixture: violations silenced by inline annotations — the linter must
   report nothing here. Not compiled; only scanned by test_lint.ml. *)

(* lint: domain-local *)
let per_domain_scratch = ref 0

let seed_jitter () = Random.bits () (* lint: allow R2 *)

(* lint: allow R3 *)
let is_zero x = x = 0.0
