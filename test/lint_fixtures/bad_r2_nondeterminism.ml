(* Fixture: R2 violations — nondeterminism sources. Not compiled; only
   scanned by test_lint.ml through Lint_core. *)

let jitter () = Random.float 0.010

let stamp () = Unix.gettimeofday ()

let dump table = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) table

let allocated () = (Gc.quick_stat ()).Gc.minor_words
