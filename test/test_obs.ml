(* Observability subsystem: metrics registry, flight recorder, ambient
   scope, engine profiler, and their end-to-end integration with
   scenario runs. *)

module Obs = Ccsim_obs
module Metrics = Obs.Metrics
module Recorder = Obs.Recorder
module Profile = Obs.Profile
module Scope = Obs.Scope
module Sim = Ccsim_engine.Sim
module Scenario = Ccsim_core.Scenario
module Results = Ccsim_core.Results

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_float0 = Alcotest.(check (float 0.0))

(* --- metrics registry ---------------------------------------------------- *)

let test_counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "events_total" in
  Metrics.inc c;
  Metrics.add c 4;
  Alcotest.(check int) "count" 5 (Metrics.value c);
  (* Re-registration returns the same instrument. *)
  let c' = Metrics.counter m "events_total" in
  Metrics.inc c';
  Alcotest.(check int) "shared" 6 (Metrics.value c);
  Alcotest.(check int) "one instrument" 1 (Metrics.size m)

let test_labels_distinguish () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("qdisc", "fifo") ] "drops" in
  let b = Metrics.counter m ~labels:[ ("qdisc", "codel") ] "drops" in
  Metrics.inc a;
  Alcotest.(check int) "b untouched" 0 (Metrics.value b);
  (* Label order is irrelevant. *)
  let a' =
    Metrics.counter m ~labels:[ ("x", "1"); ("qdisc", "fifo") ] "multi"
  in
  let a'' =
    Metrics.counter m ~labels:[ ("qdisc", "fifo"); ("x", "1") ] "multi"
  in
  Metrics.inc a';
  Metrics.inc a'';
  Alcotest.(check int) "order-insensitive" 2 (Metrics.value a')

let test_kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics.gauge: \"x\" is registered as another kind") (fun () ->
      ignore (Metrics.gauge m "x"))

let test_gauge_and_histogram () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "gauge" 3.5 (Metrics.gauge_value g);
  let h = Metrics.histogram m "sojourn" in
  Metrics.observe h 0.001;
  Metrics.observe h 0.002;
  Metrics.observe h 0.0;
  (* zero bucket *)
  Alcotest.(check int) "observations" 3 (Metrics.observations h);
  Alcotest.(check (float 1e-9)) "sum" 0.003 (Metrics.sum h)

let test_histogram_buckets_monotone () =
  (* Upper bounds must be strictly increasing powers of two. *)
  let prev = ref 0.0 in
  for i = 0 to 63 do
    let ub = Metrics.bucket_upper_bound i in
    Alcotest.(check bool) "monotone" true (ub > !prev);
    prev := ub
  done

let test_metrics_ndjson () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("qdisc", "fifo") ] "drops_total" in
  Metrics.add c 7;
  let h = Metrics.histogram m "sojourn_seconds" in
  Metrics.observe h 0.01;
  let out = Metrics.to_ndjson ~extra:[ ("job", "t1") ] m in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  let first = List.nth lines 0 in
  Alcotest.(check bool) "job tag" true
    (contains ~sub:"\"job\":\"t1\"" first);
  Alcotest.(check bool) "value" true
    (contains ~sub:"\"value\":7" first);
  Alcotest.(check bool) "labels" true
    (contains ~sub:"\"qdisc\":\"fifo\"" first);
  let second = List.nth lines 1 in
  Alcotest.(check bool) "histogram count" true
    (contains ~sub:"\"count\":1" second)

(* The histogram NDJSON shape is load-bearing: fluid-vs-packet
   agreement can be checked from exported metrics alone, so the line
   must carry count/sum/zero and the p50/p95/p99 quantiles in a stable
   shape. Guard the exact field sequence and the internal consistency
   (count = zero + bucket counts, quantiles monotone). *)
let test_histogram_ndjson_shape () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~labels:[ ("engine", "fluid") ] "rate_err" in
  Metrics.observe h 0.0;
  (* zero bucket *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 2.0; 4.0; 4.0; 8.0 ];
  let line = String.trim (Metrics.to_ndjson m) in
  (* Field sequence: histogram lines always carry these keys in this
     order, so downstream jq/awk pipelines can rely on them. *)
  let order =
    [
      "\"type\":\"histogram\"";
      "\"name\":\"rate_err\"";
      "\"labels\":";
      "\"count\":";
      "\"sum\":";
      "\"zero\":";
      "\"p50\":";
      "\"p95\":";
      "\"p99\":";
      "\"buckets\":[";
    ]
  in
  let idx_in s sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length s then Alcotest.failf "missing %s in %s" sub s
      else if String.sub s i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  let idx sub = idx_in line sub in
  ignore
    (List.fold_left
       (fun prev sub ->
         let i = idx sub in
         Alcotest.(check bool) (sub ^ " in order") true (i > prev);
         i)
       (-1) order);
  (* Numeric consistency, parsed back out of the line. *)
  let number_after key =
    let i = idx (Printf.sprintf "\"%s\":" key) + String.length key + 3 in
    let j = ref i in
    while
      !j < String.length line
      && (match line.[!j] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string (String.sub line i (!j - i))
  in
  Alcotest.(check (float 1e-9)) "count" 7.0 (number_after "count");
  Alcotest.(check (float 1e-9)) "sum" 19.5 (number_after "sum");
  Alcotest.(check (float 1e-9)) "zero" 1.0 (number_after "zero");
  let p50 = number_after "p50" and p95 = number_after "p95" and p99 = number_after "p99" in
  Alcotest.(check bool) "quantiles monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "p50 within observed range" true (p50 >= 0.0 && p50 <= 8.0);
  (* count = zero + sum of bucket counts: parse the buckets array. *)
  let bstart = idx "\"buckets\":[" + String.length "\"buckets\":[" in
  let bend = String.index_from line bstart ']' in
  let buckets = String.sub line bstart (bend - bstart) in
  let bucket_total =
    String.split_on_char '{' buckets
    |> List.filter (fun entry -> contains ~sub:"\"count\":" entry)
    |> List.fold_left
         (fun acc entry ->
           let k = idx_in entry "\"count\":" + String.length "\"count\":" in
           let j = ref k in
           while
             !j < String.length entry
             && (match entry.[!j] with '0' .. '9' -> true | _ -> false)
           do
             incr j
           done;
           acc + int_of_string (String.sub entry k (!j - k)))
         0
  in
  Alcotest.(check bool) "several buckets populated" true (bucket_total >= 1);
  Alcotest.(check int) "count = zero + bucket counts" 7 (1 + bucket_total)

(* --- flight recorder ------------------------------------------------------ *)

let test_recorder_bounded () =
  let r = Recorder.create ~capacity:10 () in
  for i = 1 to 25 do
    Recorder.record r ~at:(float_of_int i) ~kind:"packet" ~point:"link" "delivered"
  done;
  Alcotest.(check int) "count" 25 (Recorder.count r);
  Alcotest.(check int) "retained" 10 (Recorder.retained r);
  Alcotest.(check int) "evicted" 15 (Recorder.evicted r);
  match Recorder.events r with
  | first :: _ -> Alcotest.(check (float 1e-9)) "oldest retained is #16" 16.0 first.Recorder.at
  | [] -> Alcotest.fail "no events retained"

let test_recorder_severity_threshold () =
  let r = Recorder.create ~level:Recorder.Warn () in
  Recorder.record r ~at:0.0 ~severity:Recorder.Debug ~kind:"packet" ~point:"x" "d";
  Recorder.record r ~at:1.0 ~severity:Recorder.Warn ~kind:"qdisc" ~point:"x" "w";
  Recorder.record r ~at:2.0 ~severity:Recorder.Error ~kind:"app" ~point:"x" "e";
  Alcotest.(check int) "below level discarded" 2 (Recorder.count r);
  Alcotest.(check int) "by_kind" 1 (List.length (Recorder.by_kind r "qdisc"))

let test_recorder_exports () =
  let r = Recorder.create () in
  Recorder.record r ~at:1.5 ~severity:Recorder.Warn ~kind:"qdisc" ~point:"fifo"
    ~fields:[ ("flow", "3"); ("bytes", "1500") ]
    "drop";
  let nd = Recorder.to_ndjson ~extra:[ ("job", "j") ] r in
  Alcotest.(check bool) "class key" true
    (contains ~sub:"\"class\":\"qdisc\"" nd);
  Alcotest.(check bool) "fields" true
    (contains ~sub:"\"flow\":\"3\"" nd);
  let csv = Recorder.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + row" 2 (List.length lines);
  Alcotest.(check string) "header" "at,severity,class,point,detail,fields" (List.hd lines);
  Alcotest.(check bool) "row fields" true
    (contains ~sub:"flow=3;bytes=1500" (List.nth lines 1))

(* --- scope ---------------------------------------------------------------- *)

let test_scope_ambient_restored () =
  Alcotest.(check bool) "default none" true (Scope.is_none (Scope.ambient ()));
  let m = Metrics.create () in
  let scope = Scope.v ~metrics:m () in
  Scope.with_scope scope (fun () ->
      Alcotest.(check bool) "inside" false (Scope.is_none (Scope.ambient ())));
  Alcotest.(check bool) "restored" true (Scope.is_none (Scope.ambient ()));
  (* Restored even when the body raises. *)
  (try Scope.with_scope scope (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true (Scope.is_none (Scope.ambient ()))

(* --- engine profiler ------------------------------------------------------ *)

let test_profiler_attribution () =
  let p = Profile.create () in
  let sim = Sim.create ~profile:p () in
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> Sim.set_component sim "link"));
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> Sim.set_component sim "tcp"));
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> ()));
  Sim.run sim;
  Alcotest.(check int) "events" 3 (Profile.events_executed p);
  Alcotest.(check bool) "heap depth" true (Profile.max_heap_depth p >= 3);
  let comps = List.map (fun (c, _, _) -> c) (Profile.components p) in
  List.iter
    (fun c -> Alcotest.(check bool) ("component " ^ c) true (List.mem c comps))
    [ "link"; "tcp"; "other" ];
  let json = Profile.to_json p in
  Alcotest.(check bool) "json events" true
    (contains ~sub:"\"events_executed\": 3" json)

(* Rate accessors must be total: a fresh (or packet-free) profile
   reports 0, never a division by zero. *)
let test_profiler_zero_division_guards () =
  let p = Profile.create () in
  check_float0 "events_per_sec" 0.0 (Profile.events_per_sec p);
  check_float0 "sim_speedup" 0.0 (Profile.sim_speedup p);
  check_float0 "packets_per_sec" 0.0 (Profile.packets_per_sec p);
  check_float0 "minor_words_per_event" 0.0 (Profile.minor_words_per_event p);
  check_float0 "minor_words_per_packet" 0.0 (Profile.minor_words_per_packet p);
  (* Events with zero recorded seconds still divide safely. *)
  Profile.record p ~comp:"x" ~seconds:0.0;
  Profile.note_sim_time p 5.0;
  check_float0 "events_per_sec, zero busy" 0.0 (Profile.events_per_sec p);
  check_float0 "sim_speedup, zero busy" 0.0 (Profile.sim_speedup p)

let test_profiler_heap_depth_monotone () =
  let p = Profile.create () in
  Profile.note_heap_depth p 7;
  Profile.note_heap_depth p 3;
  Alcotest.(check int) "peak kept" 7 (Profile.max_heap_depth p);
  Profile.note_heap_depth p 11;
  Alcotest.(check int) "peak raised" 11 (Profile.max_heap_depth p)

let test_profiler_scheduled_cancelled () =
  let p = Profile.create () in
  Profile.note_scheduled p ~comp:"tcp";
  Profile.note_scheduled p ~comp:"tcp";
  Profile.note_scheduled p ~comp:"link";
  Profile.note_cancelled p ~comp:"tcp";
  Alcotest.(check int) "scheduled" 3 (Profile.events_scheduled p);
  Alcotest.(check int) "cancelled" 1 (Profile.events_cancelled p);
  let tcp = List.assoc "tcp" (Profile.component_stats p) in
  Alcotest.(check int) "tcp scheduled" 2 tcp.Profile.scheduled;
  Alcotest.(check int) "tcp cancelled" 1 tcp.Profile.cancelled

let test_profiler_packet_counters () =
  let p = Profile.create () in
  Profile.note_pkt_enqueued p;
  Profile.note_pkt_enqueued p;
  Profile.note_pkt_dequeued p;
  Profile.note_pkt_delivered p;
  Profile.note_pkt_dropped p;
  Alcotest.(check int) "enqueued" 2 (Profile.packets_enqueued p);
  Alcotest.(check int) "dequeued" 1 (Profile.packets_dequeued p);
  Alcotest.(check int) "delivered" 1 (Profile.packets_delivered p);
  Alcotest.(check int) "dropped" 1 (Profile.packets_dropped p);
  Profile.record p ~comp:"link" ~seconds:0.5;
  check_float0 "packets_per_sec" 2.0 (Profile.packets_per_sec p)

(* The sampling countdown takes a Gc delta every [gc_sample_every]
   charges; gc_flush closes the tail window so the totals cover every
   event. Allocation numbers are host-dependent, so only structure is
   asserted (window accounting, non-negative totals). *)
let test_profiler_gc_sampling () =
  let p = Profile.create () in
  let n = (3 * Profile.gc_sample_every) + 5 in
  for _ = 1 to n do
    (* Allocate a little so the windows have something to see. *)
    ignore (Sys.opaque_identity (Array.make 64 0.0));
    Profile.record p ~comp:"alloc" ~seconds:0.0
  done;
  Alcotest.(check int) "windows sampled" 3 (Profile.gc_samples p);
  Profile.gc_flush p;
  Alcotest.(check int) "flush closes the tail" 4 (Profile.gc_samples p);
  Profile.gc_flush p;
  Alcotest.(check int) "flush idempotent" 4 (Profile.gc_samples p);
  Alcotest.(check bool) "minor words seen" true (Profile.minor_words p > 0.0);
  Alcotest.(check bool) "per-event rate positive" true
    (Profile.minor_words_per_event p > 0.0);
  let alloc = List.assoc "alloc" (Profile.component_stats p) in
  Alcotest.(check bool) "attributed to the charging component" true
    (alloc.Profile.minor_words > 0.0)

(* Field order in the profile JSON is pinned: BENCH_engine.json and the
   runner-report consumers key on it (mirror of the histogram NDJSON
   shape test). *)
let test_profile_json_shape () =
  let p = Profile.create () in
  Profile.record p ~comp:"tcp" ~seconds:0.001;
  Profile.note_pkt_delivered p;
  Profile.gc_flush p;
  let json = Profile.to_json p in
  let order =
    [
      "\"events_executed\":";
      "\"events_scheduled\":";
      "\"events_cancelled\":";
      "\"busy_s\":";
      "\"events_per_sec\":";
      "\"sim_s\":";
      "\"sim_speedup\":";
      "\"max_heap_depth\":";
      "\"pkts_enqueued\":";
      "\"pkts_dequeued\":";
      "\"pkts_delivered\":";
      "\"pkts_dropped\":";
      "\"pkts_per_sec\":";
      "\"gc\": {";
      "\"samples\":";
      "\"minor_words\":";
      "\"promoted_words\":";
      "\"major_words\":";
      "\"compactions\":";
      "\"minor_words_per_event\":";
      "\"minor_words_per_packet\":";
      "\"components\": [";
      "\"component\": \"tcp\"";
      "\"events\":";
      "\"seconds\":";
      "\"scheduled\":";
      "\"cancelled\":";
    ]
  in
  let idx_in sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length json then Alcotest.failf "missing %s in %s" sub json
      else if String.sub json i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  let positions = List.map idx_in order in
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        if a >= b then Alcotest.fail "profile json fields out of order";
        ascending rest
    | _ -> ()
  in
  ascending positions

let test_profiler_from_ambient_scope () =
  let p = Profile.create () in
  Scope.with_scope
    (Scope.v ~profile:p ())
    (fun () ->
      let sim = Sim.create () in
      ignore (Sim.schedule sim ~delay:0.5 (fun () -> ()));
      Sim.run sim);
  Alcotest.(check int) "picked up ambient profile" 1 (Profile.events_executed p)

(* --- end-to-end: instrumented scenario run -------------------------------- *)

(* A congested bottleneck with a tiny FIFO, guaranteeing drops (and
   thus loss responses) within a short run. *)
let congested_scenario seed =
  Scenario.make ~name:"obs-e2e" ~rate_bps:(Ccsim_util.Units.mbps 5.0) ~delay_s:0.01
    ~qdisc:(Scenario.Fifo { limit_bytes = Some 15_000 })
    ~duration:8.0 ~warmup:1.0 ~seed
    [ Scenario.flow ~cca:Scenario.Cubic "a"; Scenario.flow ~cca:Scenario.Cubic "b" ]

let test_instrumented_scenario () =
  let m = Metrics.create () in
  let r = Recorder.create () in
  let p = Profile.create () in
  let results =
    Scope.with_scope
      (Scope.v ~metrics:m ~recorder:r ~profile:p ())
      (fun () -> Scenario.run (congested_scenario 42))
  in
  Alcotest.(check bool) "scenario saw drops" true (results.Results.bottleneck_drops > 0);
  (* Metrics: the qdisc drop counter matches reality. *)
  (match Metrics.find_counter m ~labels:[ ("qdisc", "fifo") ] "qdisc_dropped_total" with
  | Some c -> Alcotest.(check bool) "drop counter positive" true (Metrics.value c > 0)
  | None -> Alcotest.fail "qdisc_dropped_total not registered");
  (match Metrics.find_counter m ~labels:[ ("qdisc", "fifo") ] "qdisc_enqueued_total" with
  | Some c -> Alcotest.(check bool) "enqueue counter positive" true (Metrics.value c > 0)
  | None -> Alcotest.fail "qdisc_enqueued_total not registered");
  (match Metrics.find_counter m "link_tx_packets_total" with
  | Some c -> Alcotest.(check bool) "link tx positive" true (Metrics.value c > 0)
  | None -> Alcotest.fail "link_tx_packets_total not registered");
  Alcotest.(check bool) "ndjson non-empty" true (String.length (Metrics.to_ndjson m) > 0);
  (* Flight journal: the three headline classes are all present. *)
  Alcotest.(check bool) "packet events" true (Recorder.by_kind r "packet" <> []);
  Alcotest.(check bool) "qdisc drop events" true (Recorder.by_kind r "qdisc" <> []);
  Alcotest.(check bool) "cca decision events" true (Recorder.by_kind r "cca" <> []);
  (* Profiler: events executed, attributed beyond "other". *)
  Alcotest.(check bool) "events executed" true (Profile.events_executed p > 0);
  Alcotest.(check bool) "heap depth seen" true (Profile.max_heap_depth p > 0);
  let comps = List.map (fun (c, _, _) -> c) (Profile.components p) in
  Alcotest.(check bool) "tcp attributed" true (List.mem "tcp" comps);
  Alcotest.(check bool) "link attributed" true (List.mem "link" comps);
  (* Packet hot-path counters: a congested run delivers and drops. *)
  Alcotest.(check bool) "pkts delivered" true (Profile.packets_delivered p > 0);
  Alcotest.(check bool) "pkts dropped" true (Profile.packets_dropped p > 0);
  Alcotest.(check bool) "enqueued >= delivered" true
    (Profile.packets_enqueued p >= Profile.packets_delivered p);
  Alcotest.(check bool) "pkts/s positive" true (Profile.packets_per_sec p > 0.0);
  (* Scheduled events at least cover the executed ones. *)
  Alcotest.(check bool) "scheduled >= executed" true
    (Profile.events_scheduled p >= Profile.events_executed p);
  (* Allocation sampling closed its windows during Sim.run. *)
  Alcotest.(check bool) "gc windows sampled" true (Profile.gc_samples p > 0);
  Alcotest.(check bool) "minor words/event" true (Profile.minor_words_per_event p > 0.0);
  (* Heap-depth histogram: shared instrument in the ambient registry. *)
  (match Metrics.find_histogram m "engine_heap_depth" with
  | Some h -> Alcotest.(check bool) "heap histogram populated" true (Metrics.quantile h 0.99 > 0.0)
  | None -> Alcotest.fail "engine_heap_depth not registered")

let test_instrumentation_does_not_change_results () =
  let plain = Scenario.run (congested_scenario 7) in
  let instrumented =
    Scope.with_scope
      (Scope.v ~metrics:(Metrics.create ()) ~recorder:(Recorder.create ())
         ~profile:(Profile.create ()) ())
      (fun () -> Scenario.run (congested_scenario 7))
  in
  Alcotest.(check int) "drops identical" plain.Results.bottleneck_drops
    instrumented.Results.bottleneck_drops;
  Alcotest.(check (float 1e-9)) "jain identical" plain.Results.jain_index
    instrumented.Results.jain_index;
  List.iter2
    (fun (a : Results.flow_result) (b : Results.flow_result) ->
      Alcotest.(check (float 1e-6)) ("goodput " ^ a.label) a.goodput_bps b.goodput_bps;
      Alcotest.(check int) ("acked " ^ a.label) a.bytes_acked b.bytes_acked)
    plain.Results.flows instrumented.Results.flows

(* --- runner report embedding ---------------------------------------------- *)

let test_report_embeds_profile () =
  let job =
    Ccsim_runner.Job.make ~name:"j1" ~digest:"d1" (fun () -> "out\n")
  in
  let results = Ccsim_runner.Pool.run (Ccsim_runner.Pool.config ~jobs:1 ()) [ job ] in
  let tele = Ccsim_runner.Telemetry.make ~pool_jobs:1 ~total_wall_s:0.1 results in
  let p = Profile.create () in
  Profile.record p ~comp:"link" ~seconds:0.001;
  let json =
    Ccsim_runner.Telemetry.to_json ~profiles:[ ("j1", Profile.to_json p) ] tele
  in
  Alcotest.(check bool) "profile embedded" true
    (contains ~sub:"\"profile\": {" json);
  Alcotest.(check bool) "component embedded" true
    (contains ~sub:"\"component\": \"link\"" json);
  (* Unmatched job names embed nothing. *)
  let json' = Ccsim_runner.Telemetry.to_json ~profiles:[ ("other", "{}") ] tele in
  Alcotest.(check bool) "no stray profile" false
    (contains ~sub:"\"profile\"" json')

(* --- packet lifecycle spans ----------------------------------------------- *)

module Span = Obs.Span

let test_span_sampling () =
  let sp = Span.create ~sample:3 () in
  Alcotest.(check int) "sample" 3 (Span.sample sp);
  Alcotest.(check bool) "uid 0 sampled" true (Span.hit sp ~uid:0);
  Alcotest.(check bool) "uid 3 sampled" true (Span.hit sp ~uid:3);
  Alcotest.(check bool) "uid 1 not sampled" false (Span.hit sp ~uid:1);
  Alcotest.(check bool) "uid 2 not sampled" false (Span.hit sp ~uid:2);
  Alcotest.check_raises "sample must be >= 1"
    (Invalid_argument "Span.create: sample must be >= 1") (fun () ->
      ignore (Span.create ~sample:0 ()))

let test_span_lifecycle () =
  let sp = Span.create ~sample:1 () in
  Span.note_enqueue sp ~hop:"bottleneck" ~at:1.0 ~uid:0 ~flow:7 ~seq:3 ~bytes:1500
    ~kind:"data";
  Span.note_dequeue sp ~hop:"bottleneck" ~at:1.25 ~uid:0;
  Span.note_tx sp ~hop:"bottleneck" ~at:1.5 ~uid:0;
  Span.note_delivered sp ~hop:"bottleneck" ~at:2.0 ~uid:0;
  Alcotest.(check int) "one completed" 1 (Span.completed_count sp);
  Alcotest.(check int) "none open" 0 (Span.open_count sp);
  (match Span.completed sp with
  | [ r ] ->
      Alcotest.(check bool) "complete" true (Span.complete r);
      Alcotest.(check string) "outcome" "delivered" (Span.outcome_to_string r.Span.outcome);
      check_float0 "queue delay" 0.25 (Option.get (Span.queue_delay r));
      check_float0 "serialize delay" 0.25 (Option.get (Span.serialize_delay r));
      check_float0 "propagate delay" 0.5 (Option.get (Span.propagate_delay r));
      Alcotest.(check int) "flow" 7 r.Span.flow;
      Alcotest.(check string) "hop" "bottleneck" r.Span.hop
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length rs)));
  (* A duplicate delivery (fault-injected ghost) of a closed span is ignored. *)
  Span.note_delivered sp ~hop:"bottleneck" ~at:2.5 ~uid:0;
  Alcotest.(check int) "duplicate ignored" 1 (Span.completed_count sp)

let test_span_drops () =
  let sp = Span.create ~sample:1 () in
  (* Wire drop of an open record closes it as Dropped. *)
  Span.note_enqueue sp ~hop:"l" ~at:1.0 ~uid:0 ~flow:1 ~seq:0 ~bytes:100 ~kind:"data";
  Span.note_dropped sp ~hop:"l" ~at:1.5 ~uid:0 ~flow:1 ~seq:0 ~bytes:100 ~kind:"data";
  (* Tail drop with no open record synthesizes a zero-length span. *)
  Span.note_dropped sp ~hop:"l" ~at:2.0 ~uid:1 ~flow:1 ~seq:1 ~bytes:100 ~kind:"data";
  Alcotest.(check int) "both completed" 2 (Span.completed_count sp);
  Alcotest.(check int) "both started" 2 (Span.started sp);
  List.iter
    (fun (r : Span.record) ->
      Alcotest.(check string) "dropped" "dropped" (Span.outcome_to_string r.Span.outcome);
      Alcotest.(check bool) "not complete" false (Span.complete r);
      Alcotest.(check bool) "no propagate phase" true (Span.propagate_delay r = None))
    (Span.completed sp)

let test_span_seal_and_eviction () =
  let sp = Span.create ~capacity:2 ~sample:1 () in
  (* Two still-open records seal as Incomplete in (uid, hop) order. *)
  Span.note_enqueue sp ~hop:"b" ~at:1.0 ~uid:2 ~flow:1 ~seq:0 ~bytes:10 ~kind:"data";
  Span.note_enqueue sp ~hop:"a" ~at:1.0 ~uid:1 ~flow:1 ~seq:1 ~bytes:10 ~kind:"ack";
  Span.seal sp ~now:5.0;
  Alcotest.(check int) "sealed to completed" 2 (Span.completed_count sp);
  (match Span.completed sp with
  | [ r1; r2 ] ->
      Alcotest.(check int) "uid order" 1 r1.Span.uid;
      Alcotest.(check int) "uid order" 2 r2.Span.uid;
      Alcotest.(check string) "incomplete" "incomplete"
        (Span.outcome_to_string r1.Span.outcome)
  | _ -> Alcotest.fail "expected 2 sealed records");
  (* Capacity 2: a third completion evicts the oldest. *)
  Span.note_enqueue sp ~hop:"c" ~at:6.0 ~uid:3 ~flow:2 ~seq:0 ~bytes:10 ~kind:"data";
  Span.note_delivered sp ~hop:"c" ~at:6.5 ~uid:3;
  Alcotest.(check int) "capacity bound" 2 (Span.completed_count sp);
  Alcotest.(check int) "eviction counted" 1 (Span.evicted sp);
  Alcotest.(check int) "started counts everything" 3 (Span.started sp)

let test_span_journal () =
  let r = Recorder.create () in
  let sp = Span.create ~recorder:r ~sample:1 () in
  Span.note_enqueue sp ~hop:"bottleneck" ~at:1.0 ~uid:0 ~flow:4 ~seq:9 ~bytes:1500
    ~kind:"data";
  Span.note_dequeue sp ~hop:"bottleneck" ~at:1.25 ~uid:0;
  Span.note_tx sp ~hop:"bottleneck" ~at:1.5 ~uid:0;
  Span.note_delivered sp ~hop:"bottleneck" ~at:2.0 ~uid:0;
  match Recorder.by_kind r "span" with
  | [ e ] ->
      Alcotest.(check string) "point is hop" "bottleneck" e.Recorder.point;
      Alcotest.(check string) "detail is outcome" "delivered" e.Recorder.detail;
      Alcotest.(check (option string)) "uid field" (Some "0")
        (List.assoc_opt "uid" e.Recorder.fields);
      Alcotest.(check (option string)) "queue_s field" (Some "0.250000000")
        (List.assoc_opt "queue_s" e.Recorder.fields)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 span event, got %d" (List.length es))

let suite =
  [
    Alcotest.test_case "metrics: counter basics" `Quick test_counter_basics;
    Alcotest.test_case "metrics: labels distinguish" `Quick test_labels_distinguish;
    Alcotest.test_case "metrics: kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "metrics: gauge and histogram" `Quick test_gauge_and_histogram;
    Alcotest.test_case "metrics: histogram buckets monotone" `Quick
      test_histogram_buckets_monotone;
    Alcotest.test_case "metrics: ndjson export" `Quick test_metrics_ndjson;
    Alcotest.test_case "metrics: histogram ndjson shape stable" `Quick
      test_histogram_ndjson_shape;
    Alcotest.test_case "recorder: bounded memory" `Quick test_recorder_bounded;
    Alcotest.test_case "recorder: severity threshold" `Quick test_recorder_severity_threshold;
    Alcotest.test_case "recorder: ndjson and csv" `Quick test_recorder_exports;
    Alcotest.test_case "scope: ambient set and restored" `Quick test_scope_ambient_restored;
    Alcotest.test_case "profiler: per-component attribution" `Quick test_profiler_attribution;
    Alcotest.test_case "profiler: rate accessors guard zero division" `Quick
      test_profiler_zero_division_guards;
    Alcotest.test_case "profiler: heap depth is a monotone peak" `Quick
      test_profiler_heap_depth_monotone;
    Alcotest.test_case "profiler: scheduled/cancelled per component" `Quick
      test_profiler_scheduled_cancelled;
    Alcotest.test_case "profiler: packet counters" `Quick test_profiler_packet_counters;
    Alcotest.test_case "profiler: gc sampling windows" `Quick test_profiler_gc_sampling;
    Alcotest.test_case "profiler: json field order pinned" `Quick test_profile_json_shape;
    Alcotest.test_case "profiler: picked up from ambient scope" `Quick
      test_profiler_from_ambient_scope;
    Alcotest.test_case "e2e: instrumented scenario populates all three" `Slow
      test_instrumented_scenario;
    Alcotest.test_case "e2e: instrumentation does not change results" `Slow
      test_instrumentation_does_not_change_results;
    Alcotest.test_case "runner: report embeds profiles" `Quick test_report_embeds_profile;
    Alcotest.test_case "span: deterministic uid sampling" `Quick test_span_sampling;
    Alcotest.test_case "span: lifecycle phases decompose" `Quick test_span_lifecycle;
    Alcotest.test_case "span: wire and tail drops" `Quick test_span_drops;
    Alcotest.test_case "span: seal order and capacity eviction" `Quick
      test_span_seal_and_eviction;
    Alcotest.test_case "span: journals to the flight recorder" `Quick test_span_journal;
  ]
