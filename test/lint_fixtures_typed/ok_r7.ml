(* R7 twin: the same cross-unit sum, silent under the comment-form
   annotation (recovered from the source text, covers lines L/L+1). *)

let scaled (dur_s : float) (rate_bps : float) =
  (* lint: allow R4 R7 -- fixture: deliberate cross-unit sum *)
  dur_s +. rate_bps
