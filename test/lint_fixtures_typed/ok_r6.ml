(* R6 twin: the same polymorphic comparisons, silent under the
   attribute-based suppression [@lint.allow R6]. *)

type point = { x : float; y : float }

let same_point (a : point) (b : point) = (a = b) [@lint.allow R6]

let biggest (a : string) (b : string) = (max a b) [@lint.allow R6]
