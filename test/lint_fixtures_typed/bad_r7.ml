(* R7 fixture: unit-mismatched arithmetic the dimensional analysis must
   catch -- an additive mix, a cross-dimension comparison, and a
   declared-vs-inferred let binding. *)

let bad_sum (dur_s : float) (rate_bps : float) = dur_s +. rate_bps

let bad_cmp (win_bytes : float) (budget_pkts : float) = win_bytes < budget_pkts

let bad_decl (size_bytes : float) (dur_s : float) =
  let speed_s = size_bytes /. dur_s in
  speed_s
