(* R5 fixture: allocations inside [@ccsim.hot] functions. Each hot
   function's own curried spine is exempt; everything it builds per
   call is not. *)

type acc = { mutable total : int }

let[@ccsim.hot] sum_pairs acc xs =
  List.iter (fun (a, b) -> acc.total <- acc.total + a + b) xs

let[@ccsim.hot] make_pair a b = (a, b)

let[@ccsim.hot] wrap x = Some x
