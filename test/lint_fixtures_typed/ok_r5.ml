(* R5 twin: the same allocations, silent because each is reviewed via
   [@ccsim.alloc_ok "why"] -- once on an expression, once on the whole
   binding. *)

type acc = { mutable total : int }

let[@ccsim.hot] sum_pairs acc xs =
  (List.iter (fun (a, b) -> acc.total <- acc.total + a + b) xs
  [@ccsim.alloc_ok "fixture: iteration closure is setup, not steady-state"])

let[@ccsim.hot] [@ccsim.alloc_ok "fixture: tuple return is the documented API"] make_pair a b =
  (a, b)
