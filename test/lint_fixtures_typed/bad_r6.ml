(* R6 fixture: polymorphic comparison instantiated at non-immediate
   types -- a record, a float (nan-wrong), and max over strings. *)

type point = { x : float; y : float }

let same_point (a : point) (b : point) = a = b

let float_eq (u : float) (v : float) = u = v

let biggest (a : string) (b : string) = max a b
