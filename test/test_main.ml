let () =
  Alcotest.run "ccsim"
    [
      ("util", Test_util.suite);
      ("engine", Test_engine.suite);
      ("net", Test_net.suite);
      ("cca", Test_cca.suite);
      ("tcp", Test_tcp.suite);
      ("app", Test_app.suite);
      ("measure", Test_measure.suite);
      ("scenarios", Test_scenarios.suite);
      ("extensions", Test_extensions.suite);
      ("models", Test_models.suite);
      ("features", Test_features.suite);
      ("parking lot", Test_parking_lot.suite);
      ("runner", Test_runner.suite);
      ("faults", Test_faults.suite);
      ("cli", Test_cli.suite);
      ("fluid", Test_fluid.suite);
      ("obs", Test_obs.suite);
      ("timeline", Test_timeline.suite);
      ("lint", Test_lint.suite);
      ("determinism", Test_determinism.suite);
    ]
