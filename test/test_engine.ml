(* Tests for the discrete-event engine. *)

module Sim = Ccsim_engine.Sim
module Event_heap = Ccsim_engine.Event_heap

let check_float = Alcotest.(check (float 1e-9))

(* --- Event_heap ------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  ignore (Event_heap.add h ~time:3.0 "c");
  ignore (Event_heap.add h ~time:1.0 "a");
  ignore (Event_heap.add h ~time:2.0 "b");
  let pop () = match Event_heap.pop h with Some (_, x) -> x | None -> "?" in
  (* Bind sequentially: list literals evaluate right-to-left. *)
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  ignore (Event_heap.add h ~time:1.0 "first");
  ignore (Event_heap.add h ~time:1.0 "second");
  ignore (Event_heap.add h ~time:1.0 "third");
  let pop () = match Event_heap.pop h with Some (_, x) -> x | None -> "?" in
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list string)) "insertion order at equal time" [ "first"; "second"; "third" ]
    [ a; b; c ]

let test_heap_cancel () =
  let h = Event_heap.create () in
  ignore (Event_heap.add h ~time:1.0 "keep1");
  let id = Event_heap.add h ~time:2.0 "drop" in
  ignore (Event_heap.add h ~time:3.0 "keep2");
  Event_heap.cancel h id;
  Alcotest.(check int) "live size" 2 (Event_heap.size h);
  let pop () = match Event_heap.pop h with Some (_, x) -> x | None -> "?" in
  let a = pop () in
  let b = pop () in
  Alcotest.(check (list string)) "cancelled skipped" [ "keep1"; "keep2" ] [ a; b ];
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_cancel_idempotent () =
  let h = Event_heap.create () in
  let id = Event_heap.add h ~time:1.0 () in
  Event_heap.cancel h id;
  Event_heap.cancel h id;
  Alcotest.(check int) "size not negative" 0 (Event_heap.size h)

let test_heap_peek_skips_cancelled () =
  let h = Event_heap.create () in
  let id = Event_heap.add h ~time:1.0 () in
  ignore (Event_heap.add h ~time:5.0 ());
  Event_heap.cancel h id;
  Alcotest.(check (option (float 1e-9))) "peek" (Some 5.0) (Event_heap.peek_time h)

let test_heap_many_random () =
  let rng = Ccsim_util.Rng.create 77 in
  let h = Event_heap.create () in
  let times = Array.init 1000 (fun _ -> Ccsim_util.Rng.float rng 100.0) in
  Array.iter (fun time -> ignore (Event_heap.add h ~time time)) times;
  let out = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (time, _) ->
        out := time :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  let popped = Array.of_list (List.rev !out) in
  let sorted = Array.copy times in
  Array.sort compare sorted;
  Alcotest.(check (array (float 1e-12))) "heap sorts" sorted popped

(* --- Sim ---------------------------------------------------------------------- *)

let test_sim_clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> seen := (Sim.now sim, "b") :: !seen));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> seen := (Sim.now sim, "a") :: !seen));
  Sim.run sim;
  Alcotest.(check (list (pair (float 1e-9) string)))
    "events in order with clock" [ (1.0, "a"); (2.0, "b") ] (List.rev !seen)

let test_sim_until_sets_clock () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> ()));
  Sim.run ~until:10.0 sim;
  check_float "clock at horizon" 10.0 (Sim.now sim)

let test_sim_until_excludes_later_events () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule sim ~delay:5.0 (fun () -> fired := true));
  Sim.run ~until:4.0 sim;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "still pending" 1 (Sim.pending sim);
  Sim.run ~until:6.0 sim;
  Alcotest.(check bool) "fired later" true !fired

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let id = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel sim id;
  Sim.run sim;
  Alcotest.(check bool) "cancelled event silent" false !fired

let test_sim_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> ignore (Sim.schedule sim ~delay:(-1.0) (fun () -> ())))

let test_sim_schedule_during_run () =
  let sim = Sim.create () in
  let order = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         order := "outer" :: !order;
         ignore (Sim.schedule sim ~delay:0.5 (fun () -> order := "inner" :: !order))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested scheduling" [ "outer"; "inner" ] (List.rev !order);
  check_float "clock" 1.5 (Sim.now sim)

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Sim.schedule sim ~delay:1.0 (fun () ->
           incr count;
           if !count = 3 then Sim.stop sim))
  done;
  Sim.run sim;
  Alcotest.(check int) "stopped after third" 3 !count;
  Alcotest.(check int) "rest pending" 7 (Sim.pending sim)

let test_sim_every () =
  let sim = Sim.create () in
  let ticks = ref [] in
  Sim.every sim ~interval:1.0 ~stop_after:5.0 (fun () -> ticks := Sim.now sim :: !ticks);
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "periodic ticks" [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    (List.rev !ticks)

let test_sim_every_with_start () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  Sim.every sim ~interval:2.0 ~start:1.0 ~stop_after:7.0 (fun () -> incr ticks);
  Sim.run sim;
  Alcotest.(check int) "ticks at 1,3,5,7" 4 !ticks

let test_sim_after_n () =
  let sim = Sim.create () in
  let seen = ref [] in
  Sim.after_n sim ~n:3 ~interval:0.5 (fun i -> seen := (i, Sim.now sim) :: !seen);
  Sim.run sim;
  Alcotest.(check (list (pair int (float 1e-9))))
    "indexed ticks" [ (0, 0.5); (1, 1.0); (2, 1.5) ] (List.rev !seen)

let test_sim_determinism () =
  (* Two identical simulations must produce identical event interleavings. *)
  let run () =
    let sim = Sim.create () in
    let log = ref [] in
    let rng = Ccsim_util.Rng.create 3 in
    for i = 1 to 50 do
      ignore
        (Sim.schedule sim ~delay:(Ccsim_util.Rng.float rng 10.0) (fun () ->
             log := (i, Sim.now sim) :: !log))
    done;
    Sim.run sim;
    !log
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "identical runs" (run ()) (run ())

let test_sim_schedule_cancel_accounting () =
  let p = Ccsim_obs.Profile.create () in
  let sim = Sim.create ~profile:p () in
  let id = Sim.schedule sim ~delay:1.0 (fun () -> ()) in
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> ()));
  Sim.cancel sim id;
  (* A second cancel of the same event must not count again. *)
  Sim.cancel sim id;
  Sim.run sim;
  Alcotest.(check int) "scheduled" 2 (Ccsim_obs.Profile.events_scheduled p);
  Alcotest.(check int) "cancelled once" 1 (Ccsim_obs.Profile.events_cancelled p);
  Alcotest.(check int) "executed" 1 (Ccsim_obs.Profile.events_executed p);
  (* Cancelling an already-fired event is a no-op, not a cancellation. *)
  let fired = Sim.schedule sim ~delay:0.5 (fun () -> ()) in
  Sim.run sim;
  Sim.cancel sim fired;
  Alcotest.(check int) "fired event not counted" 1
    (Ccsim_obs.Profile.events_cancelled p)

let test_sim_heap_depth_histogram () =
  let m = Ccsim_obs.Metrics.create () in
  Ccsim_obs.Scope.with_scope
    (Ccsim_obs.Scope.v ~metrics:m ())
    (fun () ->
      let sim = Sim.create () in
      for i = 1 to 10 do
        ignore (Sim.schedule sim ~delay:(float_of_int i) (fun () -> ()))
      done;
      Sim.run sim);
  match Ccsim_obs.Metrics.find_histogram m "engine_heap_depth" with
  | Some h ->
      (* The first executed event observes all 10 pending events. *)
      Alcotest.(check bool) "max depth seen" true
        (Ccsim_obs.Metrics.quantile h 1.0 >= 10.0)
  | None -> Alcotest.fail "engine_heap_depth not registered"

let suite =
  [
    ("heap: ordering", `Quick, test_heap_ordering);
    ("heap: FIFO tie-break", `Quick, test_heap_fifo_ties);
    ("heap: cancellation", `Quick, test_heap_cancel);
    ("heap: cancel idempotent", `Quick, test_heap_cancel_idempotent);
    ("heap: peek skips cancelled", `Quick, test_heap_peek_skips_cancelled);
    ("heap: sorts random load", `Quick, test_heap_many_random);
    ("sim: clock advances", `Quick, test_sim_clock_advances);
    ("sim: run until sets clock", `Quick, test_sim_until_sets_clock);
    ("sim: horizon excludes later events", `Quick, test_sim_until_excludes_later_events);
    ("sim: cancel", `Quick, test_sim_cancel);
    ("sim: negative delay rejected", `Quick, test_sim_negative_delay_rejected);
    ("sim: nested scheduling", `Quick, test_sim_schedule_during_run);
    ("sim: stop", `Quick, test_sim_stop);
    ("sim: every", `Quick, test_sim_every);
    ("sim: every with start", `Quick, test_sim_every_with_start);
    ("sim: after_n", `Quick, test_sim_after_n);
    ("sim: deterministic", `Quick, test_sim_determinism);
    ("sim: schedule/cancel accounting", `Quick, test_sim_schedule_cancel_accounting);
    ("sim: heap-depth histogram from ambient metrics", `Quick, test_sim_heap_depth_histogram);
  ]
