(* Ccsim_fluid: the fluid population engine and the hybrid coupling.

   The load-bearing tests are the ISSUE-6 acceptance checks: a 4-flow
   dumbbell run agrees between the packet and fluid backends within the
   documented tolerance (EXPERIMENTS.md), and the byte-conservation
   watchdog invariant trips when accounting is corrupted — in both the
   standalone and the hybrid (DES-coupled) configuration. *)

module U = Ccsim_util
module Fl = Ccsim_fluid
module Obs = Ccsim_obs
module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Tcp = Ccsim_tcp
module App = Ccsim_app
module Core = Ccsim_core

let feq = U.Feq.feq

(* ---- model table ---- *)

let test_model_names () =
  List.iter
    (fun m ->
      let name = Fl.Fluid_model.name m in
      Alcotest.(check bool)
        (Printf.sprintf "of_name %s roundtrips" name)
        true
        (Fl.Fluid_model.of_name name = Some m);
      Alcotest.(check bool)
        (Printf.sprintf "of_index %s roundtrips" name)
        true
        (Fl.Fluid_model.of_index (Fl.Fluid_model.index m) = m))
    [ Fl.Fluid_model.Reno; Fl.Fluid_model.Cubic; Fl.Fluid_model.Bbr ];
  Alcotest.(check (option bool)) "unknown name" None
    (Option.map (fun _ -> true) (Fl.Fluid_model.of_name "dctcp"))

(* ---- engine basics ---- *)

let simple_engine ?(models = [ Fl.Fluid_model.Reno ]) ?dt_s ?method_ ~capacity_mbps ~seed ()
    =
  let engine = Fl.Fluid_engine.create ?dt_s ?method_ ~warmup_s:2.0 ~seed () in
  let capacity_bps = U.Units.mbps capacity_mbps in
  let buffer_bytes = 2 * U.Units.bdp_bytes ~rate_bps:capacity_bps ~rtt_s:0.04 in
  let link = Fl.Fluid_engine.add_link engine ~capacity_bps ~buffer_bytes in
  let flows =
    List.map
      (fun model -> Fl.Fluid_engine.add_flow engine ~link ~model ~rtt_base_s:0.04 ())
      models
  in
  (engine, link, flows)

let test_single_flow_fills_link () =
  let engine, link, _ = simple_engine ~capacity_mbps:10.0 ~seed:1 () in
  Fl.Fluid_engine.run engine ~until_s:20.0;
  let cap = Fl.Fluid_engine.link_capacity_bps engine link in
  let served = Fl.Fluid_engine.link_served_bytes engine link *. 8.0 /. 20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "one Reno flow keeps the link busy (%.2f of capacity)" (served /. cap))
    true
    (served >= 0.8 *. cap);
  Alcotest.(check bool) "served never exceeds capacity" true (served <= cap *. 1.0001)

let test_conservation_exact () =
  let engine = Fl.Fluid_engine.create ~dt_s:0.02 ~seed:5 () in
  let rng = U.Rng.create 6 in
  let links =
    Array.init 50 (fun _ ->
        Fl.Fluid_engine.add_link engine ~capacity_bps:(U.Units.mbps 50.0)
          ~buffer_bytes:100_000)
  in
  for i = 0 to 199 do
    let link = links.(i mod Array.length links) in
    let model = Fl.Fluid_model.of_index (i mod 3) in
    let rtt_base_s = U.Rng.uniform rng ~lo:0.015 ~hi:0.08 in
    ignore
      (Fl.Fluid_engine.add_flow engine ~link ~model ~rtt_base_s
         ~cap_bps:(U.Units.mbps 30.0)
         ~on_off_s:(3.0, 5.0) ())
  done;
  Fl.Fluid_engine.run engine ~until_s:10.0;
  let totals = Fl.Fluid_engine.totals engine in
  Alcotest.(check bool) "population moved bytes" true (totals.Fl.Fluid_engine.offered_bytes > 0.0);
  let tol = Float.max 1024.0 (1e-6 *. totals.Fl.Fluid_engine.offered_bytes) in
  Alcotest.(check bool)
    (Printf.sprintf "engine residual %.3g within %.3g"
       (Fl.Fluid_engine.residual_bytes engine) tol)
    true
    (Float.abs (Fl.Fluid_engine.residual_bytes engine) <= tol);
  Array.iter
    (fun l ->
      Alcotest.(check bool) "per-link residual tiny" true
        (Float.abs (Fl.Fluid_engine.link_residual_bytes engine l) <= tol))
    links

let test_determinism_same_seed () =
  let run () =
    let engine, link, flows =
      simple_engine
        ~models:[ Fl.Fluid_model.Cubic; Fl.Fluid_model.Bbr; Fl.Fluid_model.Reno ]
        ~capacity_mbps:40.0 ~seed:11 ()
    in
    Fl.Fluid_engine.run engine ~until_s:8.0;
    ( Fl.Fluid_engine.link_served_bytes engine link,
      List.map (Fl.Fluid_engine.flow_goodput_bps engine) flows )
  in
  let served_a, goodputs_a = run () in
  let served_b, goodputs_b = run () in
  Alcotest.(check bool) "served bytes bit-identical" true (feq ~eps:0.0 served_a served_b);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "per-flow goodput bit-identical" true (feq ~eps:0.0 a b))
    goodputs_a goodputs_b

let test_rk4_method_runs () =
  let engine, link, _ =
    simple_engine ~method_:`Rk4
      ~models:[ Fl.Fluid_model.Reno; Fl.Fluid_model.Cubic ]
      ~capacity_mbps:20.0 ~seed:3 ()
  in
  Fl.Fluid_engine.run engine ~until_s:5.0;
  let cap = Fl.Fluid_engine.link_capacity_bps engine link in
  let served = Fl.Fluid_engine.link_served_bytes engine link *. 8.0 /. 5.0 in
  Alcotest.(check bool) "RK4 integration keeps the link busy" true (served >= 0.5 *. cap);
  Alcotest.(check bool) "RK4 conserves bytes" true
    (Float.abs (Fl.Fluid_engine.residual_bytes engine) <= 1024.0)

let test_sealed_after_step () =
  let engine, link, _ = simple_engine ~capacity_mbps:10.0 ~seed:2 () in
  Fl.Fluid_engine.step engine;
  Alcotest.(check bool) "add_flow after seal raises" true
    (try
       ignore
         (Fl.Fluid_engine.add_flow engine ~link ~model:Fl.Fluid_model.Reno
            ~rtt_base_s:0.04 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "add_link after seal raises" true
    (try
       ignore (Fl.Fluid_engine.add_link engine ~capacity_bps:1e6 ~buffer_bytes:10_000);
       false
     with Invalid_argument _ -> true)

(* ---- fluid vs packet cross-validation (ISSUE-6 acceptance) ----

   Four identical Reno bulk flows on a 40 Mbit/s dumbbell, both
   backends. Tolerance (documented in EXPERIMENTS.md): each per-flow
   goodput within 15% of the fair share, and the aggregates within 10%
   of each other. *)

let xval_rate = U.Units.mbps 40.0
let xval_rtt = 2.0 *. (0.02 +. 0.001) (* bottleneck + default edge delay, both ways *)
let xval_buffer = 2 * U.Units.bdp_bytes ~rate_bps:xval_rate ~rtt_s:xval_rtt
let xval_duration = 20.0
let xval_warmup = 5.0

let test_cross_validation_4flow () =
  (* Packet backend. *)
  let scenario =
    Core.Scenario.make ~name:"xval4"
      ~qdisc:(Core.Scenario.Fifo { limit_bytes = Some xval_buffer })
      ~duration:xval_duration ~warmup:xval_warmup ~seed:7 ~rate_bps:xval_rate
      ~delay_s:0.02
      (List.init 4 (fun i ->
           Core.Scenario.flow ~cca:Core.Scenario.Reno (Printf.sprintf "f%d" i)))
  in
  let packet = Core.Scenario.run scenario in
  (* Fluid backend: same capacity, buffer, RTT, CCA, horizon. *)
  let engine = Fl.Fluid_engine.create ~warmup_s:xval_warmup ~seed:7 () in
  let link = Fl.Fluid_engine.add_link engine ~capacity_bps:xval_rate ~buffer_bytes:xval_buffer in
  let fluid_flows =
    List.init 4 (fun _ ->
        Fl.Fluid_engine.add_flow engine ~link ~model:Fl.Fluid_model.Reno
          ~rtt_base_s:xval_rtt ())
  in
  Fl.Fluid_engine.run engine ~until_s:xval_duration;
  let payload_frac = float_of_int U.Units.mss /. float_of_int (U.Units.mss + U.Units.header_bytes) in
  let fair = xval_rate /. 4.0 *. payload_frac in
  let tol = 0.15 *. fair in
  let fluid_goodputs = List.map (Fl.Fluid_engine.flow_goodput_bps engine) fluid_flows in
  let packet_goodputs =
    List.init 4 (fun i ->
        (Core.Results.find packet (Printf.sprintf "f%d" i)).Core.Results.goodput_bps)
  in
  List.iteri
    (fun i g ->
      Alcotest.(check bool)
        (Printf.sprintf "fluid flow %d near fair share (%.2f vs %.2f Mbit/s)" i
           (U.Units.to_mbps g) (U.Units.to_mbps fair))
        true (feq ~eps:tol g fair))
    fluid_goodputs;
  List.iteri
    (fun i g ->
      Alcotest.(check bool)
        (Printf.sprintf "packet flow %d near fair share (%.2f vs %.2f Mbit/s)" i
           (U.Units.to_mbps g) (U.Units.to_mbps fair))
        true (feq ~eps:tol g fair))
    packet_goodputs;
  List.iteri
    (fun i (g_fluid, g_packet) ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d: fluid %.2f vs packet %.2f Mbit/s" i
           (U.Units.to_mbps g_fluid) (U.Units.to_mbps g_packet))
        true
        (feq ~eps:tol g_fluid g_packet))
    (List.combine fluid_goodputs packet_goodputs);
  let sum = List.fold_left ( +. ) 0.0 in
  Alcotest.(check bool) "aggregates within 10%" true
    (feq ~eps:(0.10 *. 4.0 *. fair) (sum fluid_goodputs) (sum packet_goodputs))

(* ---- watchdog: byte-conservation trips under injected corruption ---- *)

let test_watchdog_trips_on_skew () =
  let w = Obs.Watchdog.create () in
  let scope = Obs.Scope.v ~watchdog:w () in
  Obs.Scope.with_scope scope @@ fun () ->
  let engine, link, _ = simple_engine ~capacity_mbps:10.0 ~seed:4 () in
  Fl.Fluid_engine.run engine ~until_s:1.0;
  (* Clean run: the final sweep inside [run] already passed. *)
  Alcotest.(check bool) "no violation on clean run" true (Obs.Watchdog.violation w = None);
  Fl.Fluid_engine.inject_accounting_skew engine ~link ~bytes:1e6;
  let tripped =
    try
      Obs.Watchdog.check_now w ~now:(Fl.Fluid_engine.now_s engine);
      None
    with Obs.Watchdog.Violation v -> Some v
  in
  match tripped with
  | None -> Alcotest.fail "corrupted accounting did not trip the watchdog"
  | Some v ->
      Alcotest.(check string) "component" "fluid" v.Obs.Watchdog.component;
      Alcotest.(check string) "invariant" "byte_conservation" v.Obs.Watchdog.invariant

(* ---- hybrid coupling ---- *)

let build_hybrid ?watchdog ~rate_mbps ~bg_flows ~seed () =
  let scope =
    match watchdog with None -> Obs.Scope.none | Some w -> Obs.Scope.v ~watchdog:w ()
  in
  Obs.Scope.with_scope scope @@ fun () ->
  let sim = Sim.create () in
  let rate = U.Units.mbps rate_mbps in
  let limit_bytes = 4 * U.Units.bdp_bytes ~rate_bps:rate ~rtt_s:0.04 in
  let qdisc = Net.Fifo.create ~limit_bytes () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:rate ~delay_s:0.02 ~qdisc () in
  let engine = Fl.Fluid_engine.create ~seed:(seed + 1) () in
  let fl = Fl.Fluid_engine.add_link engine ~capacity_bps:rate ~buffer_bytes:limit_bytes in
  for _ = 1 to bg_flows do
    ignore
      (Fl.Fluid_engine.add_flow engine ~link:fl ~model:Fl.Fluid_model.Reno
         ~rtt_base_s:0.04 ())
  done;
  let driver = Fl.Fluid_driver.attach sim engine ~couplings:[ (fl, topo.Net.Topology.bottleneck) ] in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  ignore (App.Bulk.start sim ~sender:conn.Tcp.Connection.sender ());
  (sim, engine, fl, driver, conn)

let foreground_goodput ~bg_flows =
  let sim, _, _, driver, conn = build_hybrid ~rate_mbps:20.0 ~bg_flows ~seed:21 () in
  Sim.run ~until:10.0 sim;
  Fl.Fluid_driver.catch_up driver ~until_s:10.0;
  float_of_int (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver) *. 8.0 /. 10.0

let test_hybrid_background_throttles_foreground () =
  let alone = foreground_goodput ~bg_flows:0 in
  let contended = foreground_goodput ~bg_flows:4 in
  Alcotest.(check bool)
    (Printf.sprintf "foreground alone saturates (%.1f Mbit/s)" (U.Units.to_mbps alone))
    true
    (alone >= 0.7 *. U.Units.mbps 20.0);
  Alcotest.(check bool)
    (Printf.sprintf "fluid background takes a share (%.1f vs %.1f Mbit/s)"
       (U.Units.to_mbps contended) (U.Units.to_mbps alone))
    true
    (contended <= 0.6 *. alone)

let test_hybrid_fluid_sees_packet_share () =
  let sim, engine, fl, driver, _ = build_hybrid ~rate_mbps:20.0 ~bg_flows:4 ~seed:22 () in
  Sim.run ~until:10.0 sim;
  Fl.Fluid_driver.catch_up driver ~until_s:10.0;
  Alcotest.(check bool) "fluid clock reached the horizon" true
    (feq ~eps:(2.0 *. Fl.Fluid_engine.dt_s engine) (Fl.Fluid_engine.now_s engine) 10.0);
  let bg = Fl.Fluid_engine.link_served_bytes engine fl *. 8.0 /. 10.0 in
  Alcotest.(check bool) "background moved traffic" true (bg > U.Units.mbps 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "background yielded to the packet flow (%.1f Mbit/s)"
       (U.Units.to_mbps bg))
    true
    (bg <= 0.9 *. U.Units.mbps 20.0)

let test_hybrid_watchdog_trips () =
  let w = Obs.Watchdog.create () in
  let sim, engine, fl, driver, _ =
    build_hybrid ~watchdog:w ~rate_mbps:20.0 ~bg_flows:4 ~seed:23 ()
  in
  Sim.run ~until:2.0 sim;
  Fl.Fluid_engine.inject_accounting_skew engine ~link:fl ~bytes:5e6;
  let tripped =
    try
      Fl.Fluid_driver.catch_up driver ~until_s:2.5;
      None
    with Obs.Watchdog.Violation v -> Some v
  in
  match tripped with
  | None -> Alcotest.fail "hybrid byte-conservation corruption did not trip the watchdog"
  | Some v ->
      (* Whichever conservation check sweeps first — the engine-wide one
         or the per-coupling one — must catch the skew. *)
      Alcotest.(check bool)
        (Printf.sprintf "fluid component tripped (%s)" v.Obs.Watchdog.component)
        true
        (v.Obs.Watchdog.component = "fluid" || v.Obs.Watchdog.component = "fluid/coupling:0");
      Alcotest.(check bool)
        (Printf.sprintf "conservation invariant (%s)" v.Obs.Watchdog.invariant)
        true
        (List.mem v.Obs.Watchdog.invariant [ "byte_conservation"; "fluid_byte_conservation" ])

(* ---- cross-traffic plumbing in lib/net ---- *)

let test_link_cross_rate_validation () =
  let sim = Sim.create () in
  let link = Net.Link.create sim ~rate_bps:1e6 ~delay_s:0.01 ~sink:(fun _ -> ()) () in
  Alcotest.(check (float 0.0)) "cross rate starts at zero" 0.0 (Net.Link.cross_rate_bps link);
  Net.Link.set_cross_rate_bps link 5e5;
  Alcotest.(check (float 0.0)) "cross rate stored" 5e5 (Net.Link.cross_rate_bps link);
  Alcotest.check_raises "negative cross rate rejected"
    (Invalid_argument "Link.set_cross_rate_bps: negative rate") (fun () ->
      Net.Link.set_cross_rate_bps link (-1.0))

let test_fifo_cross_backlog () =
  let q = Net.Fifo.create ~limit_bytes:10_000 () in
  let data seq = Net.Packet.data ~flow:0 ~seq ~payload_bytes:1448 ~sent_at:0.0 () in
  q.Net.Qdisc.set_cross_backlog 9_000;
  Alcotest.(check bool) "cross backlog counts against the limit" false
    (q.Net.Qdisc.enqueue (data 0));
  q.Net.Qdisc.set_cross_backlog 0;
  Alcotest.(check bool) "admission restored when cross traffic drains" true
    (q.Net.Qdisc.enqueue (data 1));
  Alcotest.(check int) "real backlog counts real packets only" 1
    (q.Net.Qdisc.backlog_packets ())

(* ---- the p1 prevalence experiment ---- *)

let test_p1_fluid_small () =
  let r = Core.P1_prevalence.run ~n:60 ~seed:9 () in
  Alcotest.(check bool) "prevalence is a fraction" true
    (r.Core.P1_prevalence.prevalence >= 0.0 && r.Core.P1_prevalence.prevalence <= 1.0);
  Alcotest.(check int) "population accounted" 60
    (List.fold_left
       (fun acc (t : Core.P1_prevalence.tier_row) -> acc + t.Core.P1_prevalence.users)
       0 r.Core.P1_prevalence.tier_rows);
  let rendered = Core.P1_prevalence.render r in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions prevalence" true
    (contains ~sub:"in contention" rendered)

let suite =
  [
    Alcotest.test_case "model: name/index roundtrips" `Quick test_model_names;
    Alcotest.test_case "engine: one flow fills a link" `Quick test_single_flow_fills_link;
    Alcotest.test_case "engine: byte conservation is exact" `Quick test_conservation_exact;
    Alcotest.test_case "engine: same seed, identical results" `Quick test_determinism_same_seed;
    Alcotest.test_case "engine: RK4 integration works" `Quick test_rk4_method_runs;
    Alcotest.test_case "engine: population seals on first step" `Quick test_sealed_after_step;
    Alcotest.test_case "xval: 4-flow dumbbell fluid vs packet" `Slow test_cross_validation_4flow;
    Alcotest.test_case "watchdog: injected skew trips conservation" `Quick
      test_watchdog_trips_on_skew;
    Alcotest.test_case "hybrid: background throttles foreground" `Slow
      test_hybrid_background_throttles_foreground;
    Alcotest.test_case "hybrid: fluid share yields to packet flow" `Slow
      test_hybrid_fluid_sees_packet_share;
    Alcotest.test_case "hybrid: coupling watchdog trips on skew" `Quick
      test_hybrid_watchdog_trips;
    Alcotest.test_case "net: link cross-rate term validated" `Quick
      test_link_cross_rate_validation;
    Alcotest.test_case "net: fifo admission sees cross backlog" `Quick test_fifo_cross_backlog;
    Alcotest.test_case "p1: small fluid population runs" `Quick test_p1_fluid_small;
  ]
