(* Tests for the measurement layer: change-point detection, elasticity
   scoring, telemetry, the NDT model, and the M-Lab pipeline. *)

module M = Ccsim_measure
module U = Ccsim_util
module Sim = Ccsim_engine.Sim

(* --- Changepoint --------------------------------------------------------------- *)

let step_signal ?(noise = 0.0) ?(seed = 5) levels =
  let rng = U.Rng.create seed in
  Array.concat
    (List.map
       (fun (level, len) ->
         Array.init len (fun _ -> level +. U.Rng.normal rng ~mean:0.0 ~stddev:noise))
       levels)

let test_pelt_single_step () =
  let signal = step_signal [ (1.0, 50); (5.0, 50) ] in
  Alcotest.(check (list int)) "finds the step" [ 50 ] (M.Changepoint.pelt signal)

let test_pelt_noisy_step () =
  let signal = step_signal ~noise:0.3 [ (1.0, 60); (5.0, 60) ] in
  match M.Changepoint.pelt signal with
  | [ c ] -> Alcotest.(check bool) "near the true step" true (abs (c - 60) <= 2)
  | other -> Alcotest.failf "expected one change, got %d" (List.length other)

let test_pelt_constant_signal () =
  let signal = step_signal ~noise:0.1 [ (3.0, 100) ] in
  Alcotest.(check (list int)) "no changes in a constant signal" [] (M.Changepoint.pelt signal)

let test_pelt_multiple_steps () =
  let signal = step_signal ~noise:0.2 [ (1.0, 40); (6.0, 40); (3.0, 40) ] in
  let changes = M.Changepoint.pelt signal in
  Alcotest.(check int) "two changes" 2 (List.length changes);
  List.iter2
    (fun c expected -> Alcotest.(check bool) "position" true (abs (c - expected) <= 2))
    changes [ 40; 80 ]

let test_pelt_short_signals () =
  Alcotest.(check (list int)) "empty" [] (M.Changepoint.pelt [||]);
  Alcotest.(check (list int)) "singleton" [] (M.Changepoint.pelt [| 1.0 |])

let test_binseg_agrees_on_clean_step () =
  let signal = step_signal [ (1.0, 50); (5.0, 50) ] in
  Alcotest.(check (list int)) "binseg finds the step" [ 50 ]
    (M.Changepoint.binary_segmentation signal)

let test_binseg_max_changes () =
  let signal = step_signal ~noise:0.1 [ (1.0, 30); (5.0, 30); (1.0, 30); (5.0, 30) ] in
  let changes = M.Changepoint.binary_segmentation ~max_changes:1 signal in
  Alcotest.(check int) "budget respected" 1 (List.length changes)

let test_segment_means () =
  let signal = step_signal [ (2.0, 10); (8.0, 10) ] in
  match M.Changepoint.segment_means signal [ 10 ] with
  | [ (0, 10, m1); (10, 20, m2) ] ->
      Alcotest.(check (float 1e-9)) "first mean" 2.0 m1;
      Alcotest.(check (float 1e-9)) "second mean" 8.0 m2
  | _ -> Alcotest.fail "expected two segments"

let test_largest_shift () =
  let signal = step_signal [ (2.0, 10); (8.0, 10); (5.0, 10) ] in
  Alcotest.(check (float 1e-9)) "largest jump" 6.0
    (M.Changepoint.largest_shift signal [ 10; 20 ]);
  Alcotest.(check (float 1e-9)) "no changes -> 0" 0.0 (M.Changepoint.largest_shift signal [])

let test_cost_function () =
  let prefix, prefix_sq = M.Changepoint.prefix_sums [| 1.0; 2.0; 3.0 |] in
  (* Cost of the whole segment: sum sq dev from mean 2 = 2. *)
  Alcotest.(check (float 1e-9)) "L2 cost" 2.0
    (M.Changepoint.segment_cost ~prefix ~prefix_sq 0 3);
  Alcotest.(check (float 1e-9)) "singleton cost 0" 0.0
    (M.Changepoint.segment_cost ~prefix ~prefix_sq 1 2)

(* --- Elasticity ---------------------------------------------------------------------- *)

let tone ~n ~sample_rate ~freq ~amp ~phase =
  Array.init n (fun i ->
      amp *. sin ((2.0 *. Float.pi *. freq *. float_of_int i /. sample_rate) +. phase))

let test_elasticity_responsive_cross_traffic () =
  let n = 512 and sample_rate = 100.0 and freq = 5.0 in
  let own = tone ~n ~sample_rate ~freq ~amp:5e6 ~phase:0.0 in
  (* Cross traffic mirrors the pulse (opposite phase): elastic. *)
  let cross =
    Array.map (fun x -> 20e6 -. x) (tone ~n ~sample_rate ~freq ~amp:4e6 ~phase:0.3)
  in
  let e = M.Elasticity.score ~sample_rate ~pulse_freq:freq ~cross ~own in
  Alcotest.(check bool) "elastic cross scores high" true (e > 0.5);
  Alcotest.(check bool) "classified elastic" true (M.Elasticity.classify e = `Elastic)

let test_elasticity_flat_cross_traffic () =
  let n = 512 and sample_rate = 100.0 and freq = 5.0 in
  let rng = U.Rng.create 6 in
  let own = tone ~n ~sample_rate ~freq ~amp:5e6 ~phase:0.0 in
  let cross = Array.init n (fun _ -> 12e6 +. U.Rng.normal rng ~mean:0.0 ~stddev:1e5) in
  let e = M.Elasticity.score ~sample_rate ~pulse_freq:freq ~cross ~own in
  Alcotest.(check bool) "inelastic cross scores low" true (e < 0.2);
  Alcotest.(check bool) "classified inelastic" true (M.Elasticity.classify e = `Inelastic)

let test_elasticity_length_checks () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Elasticity.score: signal length mismatch") (fun () ->
      ignore
        (M.Elasticity.score ~sample_rate:100.0 ~pulse_freq:5.0 ~cross:(Array.make 512 0.0)
           ~own:(Array.make 256 0.0)))

let test_elasticity_windowed () =
  let sample_rate = 100.0 and freq = 5.0 in
  let mk n f =
    let ts = U.Timeseries.create () in
    for i = 0 to n - 1 do
      U.Timeseries.add ts ~time:(float_of_int i /. sample_rate) ~value:(f i)
    done;
    ts
  in
  let n = 2048 in
  let own = mk n (fun i -> 5e6 *. sin (2.0 *. Float.pi *. freq *. float_of_int i /. sample_rate)) in
  (* First half: flat cross; second half: mirroring cross. *)
  let cross =
    mk n (fun i ->
        if i < n / 2 then 10e6
        else 10e6 +. (4e6 *. sin (2.0 *. Float.pi *. freq *. float_of_int i /. sample_rate)))
  in
  let series = M.Elasticity.windowed ~sample_rate ~pulse_freq:freq ~window:512 ~cross ~own in
  Alcotest.(check bool) "several windows" true (U.Timeseries.length series >= 4);
  let values = U.Timeseries.values series in
  Alcotest.(check bool) "elasticity rises in the second half" true
    (values.(Array.length values - 1) > values.(0) +. 0.3)

(* --- Telemetry ------------------------------------------------------------------------ *)

let test_flow_monitor_throughput () =
  let sim = Sim.create () in
  let topo = Ccsim_net.Topology.dumbbell sim ~rate_bps:10e6 ~delay_s:0.01 () in
  let conn = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  let monitor = M.Telemetry.Flow_monitor.create sim ~sender:conn.sender ~interval:0.1 () in
  Ccsim_tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:10.0 sim;
  let tput = M.Telemetry.Flow_monitor.throughput monitor in
  Alcotest.(check bool) "samples collected" true (U.Timeseries.length tput > 80);
  (* Steady-state samples near link rate. *)
  let steady = U.Timeseries.between tput ~lo:5.0 ~hi:10.0 in
  Alcotest.(check bool) "throughput near capacity" true
    (U.Timeseries.mean_value steady > 8e6)

let test_queue_monitor () =
  let sim = Sim.create () in
  let qdisc = Ccsim_net.Fifo.create () in
  let topo = Ccsim_net.Topology.dumbbell sim ~rate_bps:5e6 ~delay_s:0.02 ~qdisc () in
  let monitor = M.Telemetry.Queue_monitor.create sim ~qdisc () in
  let conn = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  Ccsim_tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:10.0 sim;
  Alcotest.(check bool) "bulk flow builds queue" true
    (M.Telemetry.Queue_monitor.max_backlog_bytes monitor > 10_000.0);
  Alcotest.(check bool) "mean <= max" true
    (M.Telemetry.Queue_monitor.mean_backlog_bytes monitor
    <= M.Telemetry.Queue_monitor.max_backlog_bytes monitor)

(* Non-positive sampling intervals would silently hang Sim.every or
   divide by zero; all three monitors must reject them up front. *)
let test_monitor_interval_validation () =
  let sim = Sim.create () in
  let topo = Ccsim_net.Topology.dumbbell sim ~rate_bps:10e6 ~delay_s:0.01 () in
  let conn = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  let qdisc = Ccsim_net.Fifo.create () in
  let link = Ccsim_net.Link.create sim ~rate_bps:1e6 ~delay_s:0.0 ~sink:(fun _ -> ()) () in
  Alcotest.check_raises "flow monitor, zero"
    (Invalid_argument "Telemetry.Flow_monitor.create: interval must be positive") (fun () ->
      ignore (M.Telemetry.Flow_monitor.create sim ~sender:conn.sender ~interval:0.0 ()));
  Alcotest.check_raises "flow monitor, negative"
    (Invalid_argument "Telemetry.Flow_monitor.create: interval must be positive") (fun () ->
      ignore (M.Telemetry.Flow_monitor.create sim ~sender:conn.sender ~interval:(-0.1) ()));
  Alcotest.check_raises "queue monitor, zero"
    (Invalid_argument "Telemetry.Queue_monitor.create: interval must be positive") (fun () ->
      ignore (M.Telemetry.Queue_monitor.create sim ~qdisc ~interval:0.0 ()));
  Alcotest.check_raises "link monitor, negative"
    (Invalid_argument "Telemetry.Link_monitor.create: interval must be positive") (fun () ->
      ignore (M.Telemetry.Link_monitor.create sim ~link ~interval:(-1.0) ()))

(* --- Ndt ------------------------------------------------------------------------------- *)

let test_ndt_generate_count_and_mixture () =
  let rng = U.Rng.create 9 in
  let records = M.Ndt.generate ~rng ~n:2000 () in
  Alcotest.(check int) "count" 2000 (List.length records);
  let count p = List.length (List.filter p records) in
  let app =
    count (fun (r : M.Ndt.record) -> r.ground_truth = Some M.Ndt.Gt_app_limited)
  in
  let cellular = count (fun r -> r.access = M.Ndt.Cellular) in
  (* Mixture ~45% app-limited, ~20% cellular. *)
  Alcotest.(check bool) "app-limited share" true (app > 700 && app < 1100);
  Alcotest.(check bool) "cellular share" true (cellular > 250 && cellular < 550)

let test_ndt_traces_well_formed () =
  let rng = U.Rng.create 10 in
  let records = M.Ndt.generate ~rng ~n:200 () in
  List.iter
    (fun (r : M.Ndt.record) ->
      Alcotest.(check int) "100 samples" 100 (Array.length r.throughput_mbps);
      Array.iter
        (fun v -> Alcotest.(check bool) "positive throughput" true (v > 0.0))
        r.throughput_mbps;
      Alcotest.(check bool) "fractions in range" true
        (r.app_limited_frac >= 0.0 && r.app_limited_frac <= 1.0
        && r.rwnd_limited_frac >= 0.0
        && r.rwnd_limited_frac <= 1.0))
    records

let test_ndt_contended_have_shifts () =
  let rng = U.Rng.create 11 in
  let records = M.Ndt.generate ~rng ~n:2000 () in
  let contended =
    List.filter
      (fun (r : M.Ndt.record) ->
        match r.ground_truth with Some (M.Ndt.Gt_contended _) -> true | _ -> false)
      records
  in
  Alcotest.(check bool) "some contended flows" true (List.length contended > 20);
  let detected =
    List.filter
      (fun (r : M.Ndt.record) -> M.Changepoint.pelt r.throughput_mbps <> [])
      contended
  in
  (* PELT should see level shifts in nearly all genuinely contended flows. *)
  Alcotest.(check bool) "shifts detectable" true
    (float_of_int (List.length detected) > 0.8 *. float_of_int (List.length contended))

let test_ndt_of_speedtest () =
  let sim = Sim.create () in
  let topo = Ccsim_net.Topology.dumbbell sim ~rate_bps:20e6 ~delay_s:0.02 () in
  let conn = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  let result = ref None in
  ignore
    (Ccsim_app.Speedtest.start sim ~sender:conn.sender ~duration:5.0
       ~on_finish:(fun r -> result := Some r)
       ());
  Sim.run ~until:6.0 sim;
  match !result with
  | None -> Alcotest.fail "no speedtest result"
  | Some r -> (
      match M.Ndt.of_speedtest ~id:7 ~access:M.Ndt.Fixed r.snapshots with
      | None -> Alcotest.fail "conversion failed"
      | Some record ->
          Alcotest.(check int) "id" 7 record.id;
          Alcotest.(check bool) "throughput trace present" true
            (Array.length record.throughput_mbps > 10);
          Alcotest.(check bool) "mean near link rate" true
            (record.mean_throughput_mbps > 12.0 && record.mean_throughput_mbps < 20.0))

let test_ndt_of_speedtest_too_short () =
  Alcotest.(check bool) "needs two snapshots" true
    (M.Ndt.of_speedtest ~id:0 ~access:M.Ndt.Fixed [||] = None)

(* --- Mlab_analysis ------------------------------------------------------------------------ *)

let test_mlab_categorize () =
  let rng = U.Rng.create 12 in
  let records = M.Ndt.generate ~rng ~n:500 () in
  List.iter
    (fun (r : M.Ndt.record) ->
      let category = M.Mlab_analysis.categorize r in
      match (r.ground_truth, category) with
      | Some M.Ndt.Gt_app_limited, M.Mlab_analysis.App_limited -> ()
      | Some M.Ndt.Gt_rwnd_limited, M.Mlab_analysis.Rwnd_limited -> ()
      | Some M.Ndt.Gt_cellular_variation, M.Mlab_analysis.Cellular -> ()
      | Some (M.Ndt.Gt_contended _), M.Mlab_analysis.Candidate -> ()
      | Some M.Ndt.Gt_clean_bulk, M.Mlab_analysis.Candidate -> ()
      | gt, _ ->
          Alcotest.failf "misrouted category for %s"
            (match gt with
            | Some M.Ndt.Gt_app_limited -> "app-limited"
            | Some M.Ndt.Gt_rwnd_limited -> "rwnd-limited"
            | Some M.Ndt.Gt_cellular_variation -> "cellular"
            | Some (M.Ndt.Gt_contended _) -> "contended"
            | Some M.Ndt.Gt_clean_bulk -> "clean"
            | None -> "unlabelled"))
    records

let test_mlab_report_sums () =
  let rng = U.Rng.create 13 in
  let records = M.Ndt.generate ~rng ~n:1000 () in
  let report = M.Mlab_analysis.analyze records in
  Alcotest.(check int) "categories partition the population" report.total
    (report.n_app_limited + report.n_rwnd_limited + report.n_cellular + report.n_candidates);
  Alcotest.(check bool) "consistent below candidates" true
    (report.n_contention_consistent <= report.n_candidates)

let test_mlab_detector_accuracy () =
  let rng = U.Rng.create 14 in
  let records = M.Ndt.generate ~rng ~n:3000 () in
  let report = M.Mlab_analysis.analyze records in
  match M.Mlab_analysis.score_against_ground_truth report with
  | None -> Alcotest.fail "labelled data must yield accuracy"
  | Some a ->
      Alcotest.(check bool) "high recall" true (a.recall > 0.8);
      Alcotest.(check bool) "high precision" true (a.precision > 0.8)

let test_mlab_unlabelled_accuracy_none () =
  let record =
    {
      M.Ndt.id = 0;
      access = M.Ndt.Fixed;
      duration_s = 10.0;
      interval_s = 0.1;
      throughput_mbps = Array.make 100 5.0;
      mean_throughput_mbps = 5.0;
      min_rtt_s = 0.02;
      app_limited_frac = 0.0;
      rwnd_limited_frac = 0.0;
      ground_truth = None;
    }
  in
  let report = M.Mlab_analysis.analyze [ record ] in
  Alcotest.(check bool) "no ground truth, no accuracy" true
    (M.Mlab_analysis.score_against_ground_truth report = None)

let suite =
  [
    ("pelt: single step", `Quick, test_pelt_single_step);
    ("pelt: noisy step", `Quick, test_pelt_noisy_step);
    ("pelt: constant signal", `Quick, test_pelt_constant_signal);
    ("pelt: multiple steps", `Quick, test_pelt_multiple_steps);
    ("pelt: degenerate inputs", `Quick, test_pelt_short_signals);
    ("binseg: clean step", `Quick, test_binseg_agrees_on_clean_step);
    ("binseg: change budget", `Quick, test_binseg_max_changes);
    ("changepoint: segment means", `Quick, test_segment_means);
    ("changepoint: largest shift", `Quick, test_largest_shift);
    ("changepoint: L2 cost", `Quick, test_cost_function);
    ("elasticity: responsive cross traffic", `Quick, test_elasticity_responsive_cross_traffic);
    ("elasticity: flat cross traffic", `Quick, test_elasticity_flat_cross_traffic);
    ("elasticity: validation", `Quick, test_elasticity_length_checks);
    ("elasticity: windowed series", `Quick, test_elasticity_windowed);
    ("telemetry: flow monitor", `Quick, test_flow_monitor_throughput);
    ("telemetry: queue monitor", `Quick, test_queue_monitor);
    ("telemetry: monitors reject non-positive intervals", `Quick,
     test_monitor_interval_validation);
    ("ndt: count and mixture", `Quick, test_ndt_generate_count_and_mixture);
    ("ndt: traces well-formed", `Quick, test_ndt_traces_well_formed);
    ("ndt: contended flows carry shifts", `Quick, test_ndt_contended_have_shifts);
    ("ndt: from simulated speedtest", `Quick, test_ndt_of_speedtest);
    ("ndt: too-short conversion", `Quick, test_ndt_of_speedtest_too_short);
    ("mlab: categorization matches ground truth", `Quick, test_mlab_categorize);
    ("mlab: report partitions", `Quick, test_mlab_report_sums);
    ("mlab: detector accuracy", `Quick, test_mlab_detector_accuracy);
    ("mlab: unlabelled data", `Quick, test_mlab_unlabelled_accuracy_none);
  ]
