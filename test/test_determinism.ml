(* End-to-end determinism: the property ccsim-lint exists to protect.
   Two fast experiments run twice each — serial (-j 1) and on a domain
   pool (-j 2) — must agree on both the parameter digests (the cache
   keys) and a digest of the rendered output, run to run and across
   parallelism levels. A violation here means hidden shared state,
   hash-order dependence, or a wall-clock leak made it past the lint. *)

module R = Ccsim_runner
module E = Ccsim_core.Experiments

let exp id = Option.get (E.find id)

let job_of ~seed (e : E.t) =
  let params = E.effective_params e ~duration:12.0 ~seed () in
  R.Job.make ~name:e.id
    ~digest:(R.Job.digest_of_params ~name:e.id params)
    (fun () -> e.render ~duration:12.0 ~seed ())

(* (param digest, output digest) per job: everything a run can vary. *)
let run_digests ~jobs =
  let js = [ job_of ~seed:11 (exp "fig1"); job_of ~seed:11 (exp "e1") ] in
  R.Pool.run (R.Pool.config ~jobs ()) js
  |> Array.map (fun (r : R.Job.result) ->
         Alcotest.(check bool) (r.name ^ " ok") true r.ok;
         (r.digest, Digest.to_hex (Digest.string r.output)))
  |> Array.to_list

let digest_pair = Alcotest.(pair string string)

let test_serial_rerun_identical () =
  let a = run_digests ~jobs:1 and b = run_digests ~jobs:1 in
  Alcotest.(check (list digest_pair)) "-j 1 twice: identical digests" a b

let test_parallel_rerun_identical () =
  let a = run_digests ~jobs:2 and b = run_digests ~jobs:2 in
  Alcotest.(check (list digest_pair)) "-j 2 twice: identical digests" a b

let test_parallelism_invisible () =
  let serial = run_digests ~jobs:1 and parallel = run_digests ~jobs:2 in
  Alcotest.(check (list digest_pair)) "-j 1 vs -j 2: identical digests" serial parallel

let suite =
  [
    Alcotest.test_case "serial reruns agree (fig1, e1)" `Slow test_serial_rerun_identical;
    Alcotest.test_case "parallel reruns agree (fig1, e1)" `Slow test_parallel_rerun_identical;
    Alcotest.test_case "parallelism leaves no trace (fig1, e1)" `Slow test_parallelism_invisible;
  ]
