(* Tests for the extension modules: CSV export, packet tracing,
   variable-rate links, Nimbus specifics, and failure injection. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module U = Ccsim_util

(* --- Csv ----------------------------------------------------------------------- *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (U.Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (U.Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (U.Csv.escape_field "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (U.Csv.escape_field "a\nb")

let test_csv_roundtrip () =
  let row = [ "plain"; "with,comma"; "with\"quote"; "" ] in
  Alcotest.(check (list string)) "roundtrip" row (U.Csv.parse_line (U.Csv.row_to_string row))

let test_csv_document () =
  let doc = U.Csv.to_string ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  Alcotest.(check string) "document" "a,b\n1,2\n3,4\n" doc;
  Alcotest.check_raises "arity" (Invalid_argument "Csv.to_string: row 0 arity mismatch")
    (fun () -> ignore (U.Csv.to_string ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_csv_of_timeseries () =
  let ts = U.Timeseries.create () in
  U.Timeseries.add ts ~time:0.0 ~value:1.0;
  U.Timeseries.add ts ~time:1.0 ~value:2.0;
  let csv = U.Csv.of_timeseries ts ~names:("t", "v") in
  Alcotest.(check bool) "has header and rows" true
    (String.length csv > 10 && String.sub csv 0 3 = "t,v")

let test_csv_of_cdf () =
  let cdf = U.Cdf.of_samples [| 1.0; 2.0 |] in
  let csv = U.Csv.of_cdf cdf in
  Alcotest.(check bool) "cdf export" true
    (String.length csv > 10)

(* --- Trace --------------------------------------------------------------------- *)

let test_trace_tap_records () =
  let sim = Sim.create () in
  let trace = Net.Trace.create sim in
  let delivered = ref 0 in
  let sink = Net.Trace.tap trace ~point:"rx" (fun _ -> incr delivered) in
  let pkt = Net.Packet.data ~flow:3 ~seq:0 ~payload_bytes:100 ~sent_at:0.0 () in
  sink pkt;
  Alcotest.(check int) "forwarded" 1 !delivered;
  match Net.Trace.deliveries_for trace ~flow:3 with
  | [ e ] ->
      Alcotest.(check string) "point" "rx" e.point;
      Alcotest.(check bool) "data not ack" false e.is_ack
  | _ -> Alcotest.fail "expected one delivery event"

let test_trace_capacity_bound () =
  let sim = Sim.create () in
  let trace = Net.Trace.create ~capacity:10 sim in
  for i = 0 to 99 do
    Net.Trace.record trace ~kind:Net.Trace.Sent ~point:"tx"
      (Net.Packet.data ~flow:0 ~seq:i ~payload_bytes:10 ~sent_at:0.0 ())
  done;
  Alcotest.(check int) "total observed" 100 (Net.Trace.count trace);
  Alcotest.(check int) "window bounded" 10 (List.length (Net.Trace.events trace));
  (* Retained events are the newest. *)
  (match Net.Trace.events trace with
  | first :: _ -> Alcotest.(check int) "oldest retained is seq 90" 90 first.seq
  | [] -> Alcotest.fail "no events");
  match List.rev (Net.Trace.events trace) with
  | newest :: _ -> Alcotest.(check int) "newest retained is seq 99" 99 newest.seq
  | [] -> Alcotest.fail "no events"

(* Regression for the count/eviction window boundary: [count] keeps
   growing after the buffer fills, and recording event [capacity + k]
   evicts exactly the k oldest — the window spans observations
   [(count - capacity + 1) .. count], nothing off by one. *)
let test_trace_count_vs_eviction_boundary () =
  let sim = Sim.create () in
  let capacity = 5 in
  let trace = Net.Trace.create ~capacity sim in
  let record seq =
    Net.Trace.record trace ~kind:Net.Trace.Sent ~point:"tx"
      (Net.Packet.data ~flow:0 ~seq ~payload_bytes:10 ~sent_at:0.0 ())
  in
  (* Exactly at capacity: nothing evicted yet. *)
  for i = 0 to capacity - 1 do record i done;
  Alcotest.(check int) "count at capacity" capacity (Net.Trace.count trace);
  Alcotest.(check int) "full window retained" capacity
    (List.length (Net.Trace.events trace));
  (match Net.Trace.events trace with
  | first :: _ -> Alcotest.(check int) "seq 0 still retained" 0 first.seq
  | [] -> Alcotest.fail "no events");
  (* One past capacity: the single oldest event is evicted. *)
  record capacity;
  Alcotest.(check int) "count keeps growing" (capacity + 1) (Net.Trace.count trace);
  Alcotest.(check int) "window still bounded" capacity
    (List.length (Net.Trace.events trace));
  (match Net.Trace.events trace with
  | first :: _ -> Alcotest.(check int) "seq 0 evicted, window starts at 1" 1 first.seq
  | [] -> Alcotest.fail "no events");
  (* count - List.length (events) is exactly the evicted tally. *)
  Alcotest.(check int) "evicted = count - retained" 1
    (Net.Trace.count trace - List.length (Net.Trace.events trace))

(* --- Rate_process --------------------------------------------------------------- *)

let test_markov_rate_changes () =
  let sim = Sim.create () in
  let link = Net.Link.create sim ~rate_bps:1e6 ~delay_s:0.0 ~sink:(fun _ -> ()) () in
  let rng = U.Rng.create 5 in
  let process =
    Net.Rate_process.markov sim ~link ~rng ~states_bps:[| 1e6; 5e6; 20e6 |] ~mean_dwell_s:0.5 ()
  in
  Sim.run ~until:20.0 sim;
  let series = Net.Rate_process.rate_series process in
  Alcotest.(check bool) "many transitions" true (U.Timeseries.length series > 10);
  Array.iter
    (fun r -> Alcotest.(check bool) "rate from state set" true (List.mem r [ 1e6; 5e6; 20e6 ]))
    (U.Timeseries.values series);
  Alcotest.(check bool) "link got a state rate" true
    (List.mem (Net.Link.rate_bps link) [ 1e6; 5e6; 20e6 ])

let test_ou_mean_reversion () =
  let sim = Sim.create () in
  let link = Net.Link.create sim ~rate_bps:20e6 ~delay_s:0.0 ~sink:(fun _ -> ()) () in
  let rng = U.Rng.create 6 in
  let process =
    Net.Rate_process.ornstein_uhlenbeck sim ~link ~rng ~mean_bps:20e6 ~volatility:0.15 ()
  in
  Sim.run ~until:120.0 sim;
  let mean = Net.Rate_process.mean_rate process in
  Alcotest.(check bool) "time-avg near configured mean" true
    (mean > 15e6 && mean < 25e6);
  Array.iter
    (fun r -> Alcotest.(check bool) "floored" true (r >= 1e6 -. 1.0))
    (U.Timeseries.values (Net.Rate_process.rate_series process))

let test_variable_link_carries_traffic () =
  (* A bulk flow over a Markov-varying link still delivers data and the
     simulator stays consistent. *)
  let scenario =
    Ccsim_core.Scenario.make ~name:"varlink" ~rate_bps:20e6 ~delay_s:0.02
      ~rate_variation:(Ccsim_core.Scenario.Markov_states [| 5e6; 20e6; 40e6 |])
      ~duration:20.0 ~warmup:5.0
      [ Ccsim_core.Scenario.flow "bulk" ~cca:Ccsim_core.Scenario.Cubic ~app:Ccsim_core.Scenario.Bulk ]
  in
  let result = Ccsim_core.Scenario.run scenario in
  let f = Ccsim_core.Results.find result "bulk" in
  Alcotest.(check bool) "delivers across rate changes" true (f.goodput_bps > 2e6)

(* --- Nimbus specifics -------------------------------------------------------------- *)

let test_nimbus_parameter_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "fft size" (Invalid_argument "Nimbus.create: fft_size must be a power of two")
    (fun () -> ignore (Ccsim_cca.Nimbus.create sim ~fft_size:100 ()));
  Alcotest.check_raises "amplitude"
    (Invalid_argument "Nimbus.create: pulse_amplitude must be in (0,1)") (fun () ->
      ignore (Ccsim_cca.Nimbus.create sim ~pulse_amplitude:1.5 ()))

let test_nimbus_mode_switches_against_elastic_cross () =
  let sim = Sim.create () in
  let rate = U.Units.mbps 48.0 in
  let bdp = U.Units.bdp_bytes ~rate_bps:rate ~rtt_s:0.1 in
  let topo =
    Net.Topology.dumbbell sim ~rate_bps:rate ~delay_s:0.05
      ~qdisc:(Net.Fifo.create ~limit_bytes:(2 * bdp) ())
      ()
  in
  let cca, handle =
    Ccsim_cca.Nimbus.create sim ~mode_switching:true ~known_capacity_bps:rate ()
  in
  let probe = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca () in
  Ccsim_tcp.Sender.set_unlimited probe.sender;
  Alcotest.(check bool) "starts in delay mode" true (handle.mode () = `Delay);
  let cross = Ccsim_tcp.Connection.establish topo ~flow:1 ~cca:(Ccsim_cca.Reno.create ()) () in
  Ccsim_tcp.Sender.set_unlimited cross.sender;
  Sim.run ~until:40.0 sim;
  Alcotest.(check bool) "switched to competitive against Reno" true
    (handle.mode () = `Competitive)

let test_nimbus_capacity_estimate_without_hint () =
  let sim = Sim.create () in
  let rate = U.Units.mbps 24.0 in
  let topo = Net.Topology.dumbbell sim ~rate_bps:rate ~delay_s:0.02 () in
  let cca, handle = Ccsim_cca.Nimbus.create sim ~mode_switching:false () in
  let probe = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca () in
  Ccsim_tcp.Sender.set_unlimited probe.sender;
  Sim.run ~until:20.0 sim;
  let mu = handle.capacity_estimate () in
  Alcotest.(check bool) "estimates near the true capacity" true
    (mu > 0.6 *. rate && mu < 1.3 *. rate)

(* --- failure injection ---------------------------------------------------------------- *)

(* Wrap a topology's forward entry with a deterministic random dropper
   and check TCP still completes transfers at various loss rates. *)
let test_transfer_under_injected_loss () =
  List.iter
    (fun loss_p ->
      let sim = Sim.create () in
      let topo = Net.Topology.dumbbell sim ~rate_bps:20e6 ~delay_s:0.01 () in
      let rng = U.Rng.create 99 in
      let lossy ~flow pkt =
        if Net.Packet.is_data pkt && U.Rng.bernoulli rng ~p:loss_p then ()
        else (topo.fwd_entry ~flow) pkt
      in
      let topo = { topo with Net.Topology.fwd_entry = lossy } in
      let completed = ref false in
      let conn =
        Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ())
          ~on_complete:(fun _ -> completed := true)
          ()
      in
      Ccsim_tcp.Sender.write conn.sender 300_000;
      Ccsim_tcp.Sender.close conn.sender;
      Sim.run ~until:120.0 sim;
      Alcotest.(check bool)
        (Printf.sprintf "completes at %.0f%% loss" (100.0 *. loss_p))
        true !completed;
      Alcotest.(check int)
        (Printf.sprintf "no bytes lost at %.0f%% loss" (100.0 *. loss_p))
        300_000
        (Ccsim_tcp.Receiver.bytes_received conn.receiver))
    [ 0.01; 0.05; 0.15 ]

let test_ack_loss_tolerated () =
  let sim = Sim.create () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:20e6 ~delay_s:0.01 () in
  let rng = U.Rng.create 7 in
  let lossy ~flow pkt =
    if U.Rng.bernoulli rng ~p:0.2 then () else (topo.rev_entry ~flow) pkt
  in
  let topo = { topo with Net.Topology.rev_entry = lossy } in
  let completed = ref false in
  let conn =
    Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ())
      ~on_complete:(fun _ -> completed := true)
      ()
  in
  Ccsim_tcp.Sender.write conn.sender 200_000;
  Ccsim_tcp.Sender.close conn.sender;
  Sim.run ~until:60.0 sim;
  Alcotest.(check bool) "completes with 20% ack loss" true !completed

(* --- determinism across the whole experiment surface ----------------------------------- *)

let test_experiment_determinism () =
  let a = Ccsim_core.E4_app_limited.run ~duration:10.0 ~seed:7 () in
  let b = Ccsim_core.E4_app_limited.run ~duration:10.0 ~seed:7 () in
  List.iter2
    (fun (x : Ccsim_core.E4_app_limited.row) (y : Ccsim_core.E4_app_limited.row) ->
      Alcotest.(check (float 1e-12)) "goodput identical" x.goodput_a_mbps y.goodput_a_mbps)
    a b

let suite =
  [
    ("csv: escaping", `Quick, test_csv_escaping);
    ("csv: roundtrip", `Quick, test_csv_roundtrip);
    ("csv: document", `Quick, test_csv_document);
    ("csv: timeseries export", `Quick, test_csv_of_timeseries);
    ("csv: cdf export", `Quick, test_csv_of_cdf);
    ("trace: tap records and forwards", `Quick, test_trace_tap_records);
    ("trace: bounded window", `Quick, test_trace_capacity_bound);
    ("trace: count vs eviction boundary", `Quick, test_trace_count_vs_eviction_boundary);
    ("rate: markov transitions", `Quick, test_markov_rate_changes);
    ("rate: OU mean reversion", `Quick, test_ou_mean_reversion);
    ("rate: traffic over variable link", `Quick, test_variable_link_carries_traffic);
    ("nimbus: parameter validation", `Quick, test_nimbus_parameter_validation);
    ("nimbus: mode switch vs elastic cross", `Slow, test_nimbus_mode_switches_against_elastic_cross);
    ("nimbus: capacity estimate", `Quick, test_nimbus_capacity_estimate_without_hint);
    ("loss injection: transfers complete", `Slow, test_transfer_under_injected_loss);
    ("loss injection: ack loss tolerated", `Quick, test_ack_loss_tolerated);
    ("experiments: deterministic", `Quick, test_experiment_determinism);
  ]
