(* Ccsim_faults: plan parsing, injector execution, determinism,
   observability, and watchdog behaviour under each fault type.

   The load-bearing properties are the PR's acceptance criteria: a
   (plan, seed) pair reproduces byte-identically; faults preserve the
   conservation invariants (they re-account, never leak); and the
   watchdog still catches real corruption while chaos is live, honoring
   its violation policy. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Packet = Ccsim_net.Packet
module Obs = Ccsim_obs
module Scope = Obs.Scope
module Watchdog = Obs.Watchdog
module Faults = Ccsim_faults
module Plan = Faults.Plan
module Injector = Faults.Injector
module Scenario = Ccsim_core.Scenario
module Results = Ccsim_core.Results
module U = Ccsim_util

(* --- plan parsing ----------------------------------------------------- *)

let canonical =
  "outage at=20 dur=2; capacity at=5 factor=0.5 dur=3; ramp at=10 dur=4 factor=2; loss at=1 \
   dur=2 p=0.01; burst-loss at=30 dur=20 p-enter=0.01 p-exit=0.25 loss-good=0 loss-bad=0.3; \
   corrupt at=2 dur=3 p=0.001; duplicate at=2 dur=3 p=0.002; reorder at=4 dur=2 p=0.1 \
   delay=0.01; delay-spike at=6 dur=1 extra=0.05; qdisc-reset at=40; flap from=10 until=50 \
   mean-up=5 mean-down=0.5"

let test_plan_roundtrip () =
  match Plan.parse canonical with
  | Error msg -> Alcotest.fail msg
  | Ok plan ->
      Alcotest.(check int) "eleven events" 11 (List.length plan);
      Alcotest.(check string) "canonical fixed point" canonical (Plan.to_string plan);
      (* parse . to_string is the identity on any parsed plan *)
      (match Plan.parse (Plan.to_string plan) with
      | Ok again -> Alcotest.(check bool) "structural round-trip" true (plan = again)
      | Error msg -> Alcotest.fail msg)

let test_plan_defaults () =
  match Plan.parse "burst-loss at=1 dur=2" with
  | Ok [ Plan.Burst_loss { p_enter; p_exit; loss_good; loss_bad; _ } ] ->
      Alcotest.(check (float 0.0)) "p-enter default" 0.01 p_enter;
      Alcotest.(check (float 0.0)) "p-exit default" 0.25 p_exit;
      Alcotest.(check (float 0.0)) "loss-good default" 0.0 loss_good;
      Alcotest.(check (float 0.0)) "loss-bad default" 0.3 loss_bad
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error msg -> Alcotest.fail msg

let expect_error s =
  match Plan.parse s with
  | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
  | Error msg -> Alcotest.(check bool) "error is descriptive" true (String.length msg > 0)

let test_plan_errors () =
  expect_error "";
  expect_error "meteor at=1 dur=2";
  expect_error "outage at=1";
  expect_error "outage at=1 dur=0";
  expect_error "outage at=-1 dur=2";
  expect_error "loss at=1 dur=2 p=1.5";
  expect_error "loss at=1 dur=2 p=abc";
  expect_error "outage at=1 dur=2 bogus=3";
  expect_error "flap from=10 until=5";
  expect_error "capacity at=1 factor=0"

let test_ambient_arming () =
  let plan = Plan.parse_exn "outage at=1 dur=1" in
  Alcotest.(check bool) "disarmed by default" true (Plan.armed () = None);
  Plan.with_armed
    (Some { Plan.plan; seed = 5 })
    (fun () ->
      (match Plan.armed () with
      | Some a ->
          Alcotest.(check int) "seed visible" 5 a.Plan.seed;
          Alcotest.(check string) "plan visible" "outage at=1 dur=1" (Plan.to_string a.Plan.plan)
      | None -> Alcotest.fail "plan not armed");
      Plan.with_armed None (fun () ->
          Alcotest.(check bool) "nested disarm" true (Plan.armed () = None)));
  Alcotest.(check bool) "restored after" true (Plan.armed () = None)

(* --- link impairment primitives --------------------------------------- *)

let data ?(flow = 1) ?(size = 1000) ?(seq = 0) () =
  Packet.data ~flow ~seq ~payload_bytes:size ~header_bytes:0 ~sent_at:0.0 ()

(* 1000 B/s link: one 1000 B packet per second of serialization. *)
let mk_link ?(rate_bps = 8_000.0) ?(delay_s = 0.001) sim ~sink =
  Net.Link.create sim ~rate_bps ~delay_s ~sink ()

let test_outage_pauses_delivery () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let link = mk_link sim ~sink:(fun p -> arrivals := (Sim.now sim, p.Packet.seq) :: !arrivals) in
  Net.Link.send link (data ~seq:1 ());
  ignore
    (Sim.schedule sim ~delay:1.5 (fun () ->
         Net.Link.set_outage link true;
         Net.Link.send link (data ~seq:2 ());
         Net.Link.send link (data ~seq:3 ())));
  ignore (Sim.schedule sim ~delay:10.0 (fun () -> Net.Link.set_outage link false));
  Sim.run sim;
  let arrivals = List.rev !arrivals in
  Alcotest.(check int) "all delivered eventually" 3 (List.length arrivals);
  (match arrivals with
  | (t1, s1) :: (t2, _) :: (t3, _) :: _ ->
      Alcotest.(check int) "first packet unaffected" 1 s1;
      Alcotest.(check bool) "first before outage" true (t1 < 1.5);
      Alcotest.(check bool) "second held until restore" true (t2 >= 11.0);
      Alcotest.(check bool) "third after second" true (t3 > t2)
  | _ -> Alcotest.fail "missing arrivals")

let test_loss_model_requires_rng () =
  let sim = Sim.create () in
  let link = mk_link sim ~sink:(fun _ -> ()) in
  Alcotest.(check bool) "raises without rng" true
    (match Net.Link.set_loss_model link (Some (Net.Link.Uniform { p = 0.5 })) with
    | () -> false
    | exception Invalid_argument _ -> true)

let run_impaired ~arm ~n =
  let sim = Sim.create () in
  let delivered = ref 0 in
  let link = mk_link sim ~sink:(fun _ -> incr delivered) in
  Net.Link.set_fault_rng link (U.Rng.create 11);
  arm link;
  for i = 1 to n do
    ignore
      (Sim.schedule sim ~delay:(float_of_int i) (fun () -> Net.Link.send link (data ~seq:i ())))
  done;
  Sim.run sim;
  (link, !delivered)

let test_uniform_loss () =
  let link, delivered =
    run_impaired ~n:20 ~arm:(fun l -> Net.Link.set_loss_model l (Some (Net.Link.Uniform { p = 1.0 })))
  in
  Alcotest.(check int) "nothing delivered at p=1" 0 delivered;
  Alcotest.(check int) "all counted lost" 20 (Net.Link.wire_lost_packets link)

let test_corruption_discard () =
  let link, delivered = run_impaired ~n:20 ~arm:(fun l -> Net.Link.set_corrupt_p l 1.0) in
  Alcotest.(check int) "nothing survives p=1 corruption" 0 delivered;
  Alcotest.(check int) "all counted corrupted" 20 (Net.Link.wire_corrupted_packets link);
  Alcotest.(check int) "corruption is not wire loss" 0 (Net.Link.wire_lost_packets link)

let test_duplication () =
  let link, delivered = run_impaired ~n:10 ~arm:(fun l -> Net.Link.set_duplicate_p l 1.0) in
  Alcotest.(check int) "every packet delivered twice" 20 delivered;
  Alcotest.(check int) "all counted duplicated" 10 (Net.Link.wire_duplicated_packets link)

let test_reorder_stretches_delivery () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let link =
    Net.Link.create sim ~rate_bps:8_000_000.0 ~delay_s:0.001
      ~sink:(fun p -> arrivals := p.Packet.seq :: !arrivals)
      ()
  in
  Net.Link.set_fault_rng link (U.Rng.create 11);
  (* Stretch the first packet's propagation by 50 ms (the reorder draw
     happens when its serialization completes at t=1ms), then disable:
     the second packet overtakes it. *)
  Net.Link.set_reorder link (Some (1.0, 0.05));
  Net.Link.send link (data ~seq:1 ());
  ignore
    (Sim.schedule sim ~delay:0.0015 (fun () ->
         Net.Link.set_reorder link None;
         Net.Link.send link (data ~seq:2 ())));
  Sim.run sim;
  Alcotest.(check (list int)) "second overtakes first" [ 2; 1 ] (List.rev !arrivals);
  Alcotest.(check int) "reorder counted" 1 (Net.Link.wire_reordered_packets link)

let test_qdisc_flush () =
  let sim = Sim.create () in
  let link = mk_link sim ~sink:(fun _ -> ()) in
  for i = 1 to 5 do
    Net.Link.send link (data ~seq:i ())
  done;
  (* One packet is in flight; the rest sit in the queue. *)
  let q = Net.Link.qdisc link in
  let backlog = q.Net.Qdisc.backlog_packets () in
  Alcotest.(check int) "backlog before flush" 4 backlog;
  let flushed = Net.Qdisc.flush q in
  Alcotest.(check int) "flush drains the backlog" 4 flushed;
  Alcotest.(check int) "backlog empty" 0 (q.Net.Qdisc.backlog_packets ());
  Alcotest.(check int) "flushed packets counted dropped" 4 q.Net.Qdisc.stats.Net.Qdisc.dropped;
  Sim.run sim

(* --- injector against a raw link -------------------------------------- *)

(* Drive [n] packets through a link with [plan] attached; returns the
   watchdog (caller-created, ambient) and the injector summary. *)
let injector_run ?(policy = Watchdog.Abort) ?(corrupt_at = None) ~plan ~n () =
  let w = Watchdog.create ~policy () in
  let summary =
    Scope.with_scope
      (Scope.v ~watchdog:w ())
      (fun () ->
        let sim = Sim.create () in
        let link = mk_link sim ~sink:(fun _ -> ()) in
        let inj = Injector.attach sim ~link ~plan:(Plan.parse_exn plan) ~seed:3 () in
        for i = 0 to n - 1 do
          ignore
            (Sim.schedule sim ~delay:(0.05 *. float_of_int i) (fun () ->
                 Net.Link.send link (data ~seq:i ())))
        done;
        (match corrupt_at with
        | None -> ()
        | Some t ->
            ignore
              (Sim.schedule sim ~delay:t (fun () ->
                   let st = (Net.Link.qdisc link).Net.Qdisc.stats in
                   st.Net.Qdisc.enqueued <- st.Net.Qdisc.enqueued + 7)));
        Sim.run sim;
        Injector.summary inj)
  in
  (w, summary)

let fault_type_plans =
  [
    ("outage", "outage at=0.5 dur=0.3");
    ("burst loss", "burst-loss at=0.2 dur=2 p-enter=0.5 p-exit=0.1 loss-bad=0.5");
    ("corruption", "corrupt at=0.2 dur=2 p=0.5");
    ("qdisc reset", "qdisc-reset at=0.5");
    ("loss", "loss at=0.2 dur=2 p=0.3");
    ("duplicate", "duplicate at=0.2 dur=2 p=0.5");
    ("reorder", "reorder at=0.2 dur=2 p=0.5 delay=0.02");
    ("delay spike", "delay-spike at=0.2 dur=2 extra=0.05");
    ("capacity", "capacity at=0.2 factor=0.5 dur=1");
    ("ramp", "ramp at=0.2 dur=1 factor=0.5");
    ("flap", "flap from=0.1 until=2 mean-up=0.3 mean-down=0.1");
  ]

let test_faults_preserve_conservation () =
  (* Every fault type runs under an aborting watchdog: the impairments
     must re-account packets (lost/flushed), never leak them. *)
  List.iter
    (fun (label, plan) ->
      match injector_run ~plan ~n:40 () with
      | _, summary ->
          Alcotest.(check bool)
            (label ^ ": armed") true
            (summary.Injector.armed >= 1)
      | exception Watchdog.Violation v ->
          Alcotest.fail
            (Printf.sprintf "%s broke conservation: %s" label (Watchdog.one_line v)))
    fault_type_plans

let test_watchdog_catches_corruption_under_faults () =
  (* Satellite: under each fault type, a real invariant violation must
     still be detected and must name the faulted component. *)
  List.iter
    (fun (label, plan) ->
      match injector_run ~plan ~n:40 ~corrupt_at:(Some 0.8) () with
      | _ -> Alcotest.fail (label ^ ": corruption went undetected")
      | exception Watchdog.Violation v ->
          Alcotest.(check string) (label ^ ": names component") "link/qdisc:fifo"
            v.Watchdog.component;
          Alcotest.(check string)
            (label ^ ": conservation invariant")
            "packet_conservation" v.Watchdog.invariant)
    [
      ("outage", "outage at=0.5 dur=0.3");
      ("burst loss", "burst-loss at=0.2 dur=2 p-enter=0.5 p-exit=0.1 loss-bad=0.5");
      ("corruption", "corrupt at=0.2 dur=2 p=0.5");
      ("qdisc reset", "qdisc-reset at=0.5");
    ]

let test_watchdog_policy_honored () =
  let plan = "burst-loss at=0.2 dur=2 p-enter=0.5 p-exit=0.1 loss-bad=0.5" in
  (* Abort: raises (covered above). Warn: completes, reports, not
     degraded. Quarantine: completes, reports, degraded. *)
  (match injector_run ~policy:Watchdog.Warn ~plan ~n:40 ~corrupt_at:(Some 0.8) () with
  | w, _ ->
      Alcotest.(check bool) "warn: violation recorded" true (Watchdog.violations w <> []);
      Alcotest.(check bool) "warn: not degraded" false (Watchdog.degraded w)
  | exception Watchdog.Violation _ -> Alcotest.fail "warn policy must not raise");
  match injector_run ~policy:Watchdog.Quarantine ~plan ~n:40 ~corrupt_at:(Some 0.8) () with
  | w, _ ->
      Alcotest.(check bool) "quarantine: violation recorded" true (Watchdog.violations w <> []);
      Alcotest.(check bool) "quarantine: degraded" true (Watchdog.degraded w);
      (match Watchdog.violation w with
      | Some v -> Alcotest.(check string) "names component" "link/qdisc:fifo" v.Watchdog.component
      | None -> Alcotest.fail "missing first violation")
  | exception Watchdog.Violation _ -> Alcotest.fail "quarantine policy must not raise"

let test_flap_restores_link () =
  let sim = Sim.create () in
  let link = mk_link sim ~sink:(fun _ -> ()) in
  let inj =
    Injector.attach sim ~link
      ~plan:(Plan.parse_exn "flap from=0 until=5 mean-up=0.5 mean-down=0.2")
      ~seed:3 ()
  in
  for i = 0 to 99 do
    ignore
      (Sim.schedule sim ~delay:(0.1 *. float_of_int i) (fun () -> Net.Link.send link (data ~seq:i ())))
  done;
  Sim.run sim;
  let s = Injector.summary inj in
  Alcotest.(check bool) "flapped at least once" true (s.Injector.fired >= 1);
  Alcotest.(check int) "every down has an up" s.Injector.fired s.Injector.cleared;
  Alcotest.(check bool) "link up at the end" false (Net.Link.is_down link)

let test_capacity_and_ramp_rates () =
  let sim = Sim.create () in
  let link = mk_link sim ~rate_bps:8_000.0 ~sink:(fun _ -> ()) in
  ignore
    (Injector.attach sim ~link ~plan:(Plan.parse_exn "capacity at=1 factor=0.5 dur=2") ~seed:3 ());
  ignore (Sim.schedule sim ~delay:1.5 (fun () ->
      Alcotest.(check (float 1e-6)) "capacity step live" 4_000.0 (Net.Link.rate_bps link)));
  Sim.run sim;
  Alcotest.(check (float 1e-6)) "capacity restored" 8_000.0 (Net.Link.rate_bps link);
  let sim2 = Sim.create () in
  let link2 = mk_link sim2 ~rate_bps:8_000.0 ~sink:(fun _ -> ()) in
  ignore (Injector.attach sim2 ~link:link2 ~plan:(Plan.parse_exn "ramp at=1 dur=2 factor=0.25") ~seed:3 ());
  Sim.run sim2;
  Alcotest.(check (float 1e-6)) "ramp lands on target" 2_000.0 (Net.Link.rate_bps link2)

(* --- end-to-end through Scenario --------------------------------------- *)

let chaos_scenario seed =
  Scenario.make ~name:"chaos-test" ~rate_bps:(U.Units.mbps 20.0) ~delay_s:0.02 ~duration:12.0
    ~warmup:2.0 ~seed
    [
      Scenario.flow "a" ~cca:Scenario.Cubic ~app:Scenario.Bulk;
      Scenario.flow "b" ~cca:Scenario.Reno ~app:Scenario.Bulk;
    ]

let run_chaos ?plan ?(fault_seed = 9) seed =
  let armed =
    Option.map (fun p -> { Plan.plan = Plan.parse_exn p; seed = fault_seed }) plan
  in
  Plan.with_armed armed (fun () -> Scenario.run (chaos_scenario seed))

let goodputs (r : Results.t) = Array.to_list (Results.goodputs r)

let test_scenario_fault_free_untouched () =
  let r = run_chaos 7 in
  Alcotest.(check bool) "no fault summary without a plan" true (r.Results.faults = None)

let test_scenario_chaos_deterministic () =
  let plan = "outage at=4 dur=1; burst-loss at=6 dur=4 p-enter=0.05 p-exit=0.2 loss-bad=0.2" in
  let r1 = run_chaos ~plan 7 and r2 = run_chaos ~plan 7 in
  Alcotest.(check (list (float 0.0))) "goodputs byte-identical" (goodputs r1) (goodputs r2);
  (match (r1.Results.faults, r2.Results.faults) with
  | Some s1, Some s2 ->
      Alcotest.(check bool) "summaries identical" true (s1 = s2);
      Alcotest.(check int) "both faults fired" 2 s1.Injector.fired;
      Alcotest.(check int) "both faults cleared" 2 s1.Injector.cleared;
      Alcotest.(check bool) "burst loss lost packets" true (s1.Injector.wire_lost > 0)
  | _ -> Alcotest.fail "missing fault summaries");
  (* The same workload under different chaos is a different run. *)
  let r3 = run_chaos ~plan ~fault_seed:10 7 in
  match r3.Results.faults with
  | Some s3 ->
      Alcotest.(check bool) "fault seed changes the loss pattern" true
        (s3.Injector.wire_lost <> (Option.get r1.Results.faults).Injector.wire_lost
        || goodputs r3 <> goodputs r1)
  | None -> Alcotest.fail "missing fault summary"

let test_scenario_outage_hurts_goodput () =
  let baseline = run_chaos 7 in
  let faulted = run_chaos ~plan:"outage at=4 dur=3" 7 in
  let total r =
    List.fold_left (fun acc (f : Results.flow_result) -> acc +. f.Results.goodput_bps) 0.0
      r.Results.flows
  in
  Alcotest.(check bool) "3s outage in a 12s run costs goodput" true
    (total faulted < 0.9 *. total baseline)

let test_scenario_observability () =
  (* Recorder journal + fault_span series + metrics counter, end to end. *)
  let recorder = Obs.Recorder.create () in
  let timeline = Obs.Timeline.create () in
  let metrics = Obs.Metrics.create () in
  let plan = "outage at=4 dur=1; qdisc-reset at=6" in
  let result =
    Scope.with_scope
      (Scope.v ~metrics ~recorder ~timeline ())
      (fun () -> run_chaos ~plan 7)
  in
  let fault_events = Obs.Recorder.by_kind recorder "fault" in
  let details = List.map (fun (e : Obs.Recorder.event) -> e.detail) fault_events in
  Alcotest.(check bool) "armed journaled" true (List.mem "armed" details);
  Alcotest.(check bool) "fired journaled" true (List.mem "fired" details);
  Alcotest.(check bool) "cleared journaled" true (List.mem "cleared" details);
  let spans =
    List.filter
      (fun s -> Obs.Timeline.name s = "fault_span")
      (Obs.Timeline.all_series timeline)
  in
  Alcotest.(check int) "one span series per plan event" 2 (List.length spans);
  Alcotest.(check bool) "spans carry points" true
    (List.for_all (fun s -> Obs.Timeline.length s > 0) spans);
  (match Obs.Metrics.find_counter metrics "faults_fired_total" with
  | Some c -> Alcotest.(check int) "fired counter" 2 (Obs.Metrics.value c)
  | None -> Alcotest.fail "faults_fired_total not registered");
  match result.Results.faults with
  | Some s -> Alcotest.(check int) "summary agrees" 2 s.Injector.fired
  | None -> Alcotest.fail "missing fault summary"

let test_instrumented_chaos_identical () =
  (* Observability must not change faulted results either. *)
  let plan = "burst-loss at=4 dur=4 p-enter=0.05 p-exit=0.2 loss-bad=0.2" in
  let plain = run_chaos ~plan 7 in
  let instrumented =
    Scope.with_scope
      (Scope.v ~recorder:(Obs.Recorder.create ()) ~timeline:(Obs.Timeline.create ())
         ~watchdog:(Watchdog.create ()) ())
      (fun () -> run_chaos ~plan 7)
  in
  Alcotest.(check (list (float 0.0))) "goodputs identical under instruments" (goodputs plain)
    (goodputs instrumented)

let test_c1_plans_parse () =
  List.iter
    (fun intensity ->
      match Ccsim_core.C1_chaos.plan_string ~duration:45.0 intensity with
      | None -> ()
      | Some s -> ignore (Plan.parse_exn s))
    Ccsim_core.C1_chaos.intensities

let suite =
  [
    Alcotest.test_case "plan: canonical round-trip" `Quick test_plan_roundtrip;
    Alcotest.test_case "plan: burst-loss defaults" `Quick test_plan_defaults;
    Alcotest.test_case "plan: malformed clauses rejected" `Quick test_plan_errors;
    Alcotest.test_case "plan: ambient arming is scoped" `Quick test_ambient_arming;
    Alcotest.test_case "link: outage pauses and restore resumes" `Quick test_outage_pauses_delivery;
    Alcotest.test_case "link: stochastic impairments require an rng" `Quick
      test_loss_model_requires_rng;
    Alcotest.test_case "link: uniform loss consumes the wire" `Quick test_uniform_loss;
    Alcotest.test_case "link: corruption is checksum-discard" `Quick test_corruption_discard;
    Alcotest.test_case "link: duplication delivers ghosts" `Quick test_duplication;
    Alcotest.test_case "link: reorder lets packets overtake" `Quick test_reorder_stretches_delivery;
    Alcotest.test_case "qdisc: flush reclassifies backlog as drops" `Quick test_qdisc_flush;
    Alcotest.test_case "injector: every fault type preserves conservation" `Quick
      test_faults_preserve_conservation;
    Alcotest.test_case "watchdog: corruption caught under each fault type" `Quick
      test_watchdog_catches_corruption_under_faults;
    Alcotest.test_case "watchdog: warn/quarantine policies honored" `Quick
      test_watchdog_policy_honored;
    Alcotest.test_case "injector: flap always restores the link" `Quick test_flap_restores_link;
    Alcotest.test_case "injector: capacity step and ramp hit their rates" `Quick
      test_capacity_and_ramp_rates;
    Alcotest.test_case "scenario: fault-free run has no summary" `Slow
      test_scenario_fault_free_untouched;
    Alcotest.test_case "scenario: (plan, seed) reproduces exactly" `Slow
      test_scenario_chaos_deterministic;
    Alcotest.test_case "scenario: outage costs goodput" `Slow test_scenario_outage_hurts_goodput;
    Alcotest.test_case "scenario: journal, spans and counters" `Slow test_scenario_observability;
    Alcotest.test_case "scenario: instruments do not change chaos results" `Slow
      test_instrumented_chaos_identical;
    Alcotest.test_case "c1: canonical plans parse at every intensity" `Quick test_c1_plans_parse;
  ]
