(* The ccsim CLI's exit-code contract (README "Fault injection &
   chaos"): 0 ok, 1 job/verdict failure, 2 usage error, 124 deadline or
   unsupported backend. Regression-tested against the real binary —
   cmdliner 1.3.0 hard-codes 124 for option-converter failures, so the
   CLI maps codes itself and this suite pins the mapping. *)

(* The binary sits next to this test in the build tree
   (_build/default/{test,bin}); resolving via the running executable
   works under both `dune runtest` and `dune exec` from the root. *)
let binary =
  Filename.concat (Filename.dirname Sys.executable_name) (Filename.concat ".." "bin/ccsim.exe")

let ccsim args = Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote binary) args)

let check_code name args expected =
  Alcotest.(check int) (Printf.sprintf "%s: `ccsim %s`" name args) expected (ccsim args)

let test_ok () =
  check_code "listing runs clean" "list" 0;
  check_code "version runs clean" "--version" 0

let test_usage_errors () =
  check_code "unknown command" "no-such-command" 2;
  check_code "unknown flag" "e4 --bogus-flag" 2;
  check_code "malformed float" "e4 --duration abc" 2;
  check_code "malformed fault plan" "e4 --faults bogus" 2;
  check_code "fault plan with bad field" "e4 --faults \"outage at=1\"" 2;
  check_code "unknown sweep experiment" "sweep nope --seeds 1,2" 2

let test_job_failure () =
  (* duration <= warmup makes Scenario.make raise: the job fails, the
     run completes, and the CLI reports a job failure. *)
  check_code "invalid scenario" "fig1 --duration 2" 1

let test_unsupported_backend () =
  check_code "packet-only experiment on fluid backend" "e1 --backend fluid" 124

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_flight_rec_level () =
  (* --flight-rec-level raises the recorder's severity floor: a journal
     captured at `warn` must drop the debug/info event bulk (packet
     lifecycle, CCA decisions) a default capture keeps. *)
  let tmp = Filename.temp_file "ccsim_flight" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      check_code "flight journal at default level"
        (Printf.sprintf "e4 --duration 7 --flight-rec %s" (Filename.quote tmp))
        0;
      let full = read_file tmp in
      Alcotest.(check bool) "default keeps debug events" true
        (contains ~sub:"\"severity\":\"debug\"" full);
      check_code "flight journal at warn level"
        (Printf.sprintf "e4 --duration 7 --flight-rec %s --flight-rec-level warn"
           (Filename.quote tmp))
        0;
      let filtered = read_file tmp in
      Alcotest.(check bool) "warn floor drops debug" false
        (contains ~sub:"\"severity\":\"debug\"" filtered);
      Alcotest.(check bool) "warn floor drops info" false
        (contains ~sub:"\"severity\":\"info\"" filtered);
      Alcotest.(check bool) "filtered journal is smaller" true
        (String.length filtered < String.length full);
      check_code "bad level is a usage error" "e4 --flight-rec-level loud" 2)

let suite =
  [
    Alcotest.test_case "exit 0: success paths" `Quick test_ok;
    Alcotest.test_case "exit 2: usage errors (incl. fault plans)" `Quick test_usage_errors;
    Alcotest.test_case "exit 1: job failure" `Quick test_job_failure;
    Alcotest.test_case "exit 124: unsupported backend" `Quick test_unsupported_backend;
    Alcotest.test_case "flight recorder: severity floor flag" `Slow test_flight_rec_level;
  ]
