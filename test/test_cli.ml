(* The ccsim CLI's exit-code contract (README "Fault injection &
   chaos"): 0 ok, 1 job/verdict failure, 2 usage error, 124 deadline or
   unsupported backend. Regression-tested against the real binary —
   cmdliner 1.3.0 hard-codes 124 for option-converter failures, so the
   CLI maps codes itself and this suite pins the mapping. *)

(* The binary sits next to this test in the build tree
   (_build/default/{test,bin}); resolving via the running executable
   works under both `dune runtest` and `dune exec` from the root. *)
let binary =
  Filename.concat (Filename.dirname Sys.executable_name) (Filename.concat ".." "bin/ccsim.exe")

let ccsim args = Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote binary) args)

let check_code name args expected =
  Alcotest.(check int) (Printf.sprintf "%s: `ccsim %s`" name args) expected (ccsim args)

let test_ok () =
  check_code "listing runs clean" "list" 0;
  check_code "version runs clean" "--version" 0

let test_usage_errors () =
  check_code "unknown command" "no-such-command" 2;
  check_code "unknown flag" "e4 --bogus-flag" 2;
  check_code "malformed float" "e4 --duration abc" 2;
  check_code "malformed fault plan" "e4 --faults bogus" 2;
  check_code "fault plan with bad field" "e4 --faults \"outage at=1\"" 2;
  check_code "unknown sweep experiment" "sweep nope --seeds 1,2" 2

let test_job_failure () =
  (* duration <= warmup makes Scenario.make raise: the job fails, the
     run completes, and the CLI reports a job failure. *)
  check_code "invalid scenario" "fig1 --duration 2" 1

let test_unsupported_backend () =
  check_code "packet-only experiment on fluid backend" "e1 --backend fluid" 124

let suite =
  [
    Alcotest.test_case "exit 0: success paths" `Quick test_ok;
    Alcotest.test_case "exit 2: usage errors (incl. fault plans)" `Quick test_usage_errors;
    Alcotest.test_case "exit 1: job failure" `Quick test_job_failure;
    Alcotest.test_case "exit 124: unsupported backend" `Quick test_unsupported_backend;
  ]
