(* Ccsim_runner: domain pool, result cache, digests, sweeps.

   The load-bearing property is the acceptance criterion: a parallel
   pool produces row-for-row identical output to a serial one, because
   every scenario owns its seeded Rng and jobs render to strings. *)

module R = Ccsim_runner
module E = Ccsim_core.Experiments

let job_of ?duration ?n ~seed (e : E.t) =
  let params = E.effective_params e ?duration ?n ~seed () in
  R.Job.make ~name:e.id
    ~digest:(R.Job.digest_of_params ~name:e.id params)
    (fun () -> e.render ?duration ?n ~seed ())

let exp id = Option.get (E.find id)

let outputs results = Array.to_list (Array.map (fun (r : R.Job.result) -> r.output) results)

let test_parallel_matches_serial () =
  (* Both experiments warm up for 10 simulated seconds, so durations
     must exceed that. *)
  let mk () = [ job_of ~duration:12.0 ~seed:7 (exp "fig1"); job_of ~duration:12.0 ~seed:7 (exp "e1") ] in
  let serial = R.Pool.run (R.Pool.config ~jobs:1 ()) (mk ()) in
  let parallel = R.Pool.run (R.Pool.config ~jobs:4 ()) (mk ()) in
  Alcotest.(check (list string))
    "fig1+e1 rows identical across -j 1 / -j 4" (outputs serial) (outputs parallel);
  Array.iter (fun (r : R.Job.result) -> Alcotest.(check bool) "ok" true r.ok) parallel

let test_raising_job_isolated () =
  let boom = R.Job.make ~name:"boom" ~digest:"deadbeef" (fun () -> failwith "kaboom") in
  let fine = R.Job.make ~name:"fine" ~digest:"cafe" (fun () -> "fine rows\n") in
  let results = R.Pool.run (R.Pool.config ~jobs:2 ()) [ boom; fine ] in
  Alcotest.(check int) "both jobs reported" 2 (Array.length results);
  let b = results.(0) and f = results.(1) in
  Alcotest.(check bool) "raising job failed" false b.ok;
  Alcotest.(check bool)
    "error text kept" true
    (match b.error with Some e -> e <> "" | None -> false);
  Alcotest.(check string) "error row substituted" (R.Job.error_row ~name:"boom" (Option.get b.error)) b.output;
  Alcotest.(check bool) "sibling job unaffected" true f.ok;
  Alcotest.(check string) "sibling output intact" "fine rows\n" f.output

let test_retries () =
  let tries = ref 0 in
  let flaky =
    R.Job.make ~name:"flaky" ~digest:"f1aky" (fun () ->
        incr tries;
        if !tries = 1 then failwith "transient" else "recovered\n")
  in
  let results = R.Pool.run (R.Pool.config ~jobs:1 ~retries:1 ()) [ flaky ] in
  Alcotest.(check bool) "succeeded on retry" true results.(0).ok;
  Alcotest.(check int) "two attempts" 2 results.(0).attempts;
  Alcotest.(check string) "retried output" "recovered\n" results.(0).output

let with_tmp_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccsim_cache_test_%d_%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  let cache = R.Cache.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      R.Cache.clear cache;
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f cache)

let test_cache_hit_skips_execution () =
  with_tmp_cache @@ fun cache ->
  let executions = ref 0 in
  let mk () =
    R.Job.make ~name:"counted" ~digest:"0123abcd" (fun () ->
        incr executions;
        "expensive rows\n")
  in
  let config = R.Pool.config ~jobs:1 ~cache () in
  let first = R.Pool.run config [ mk () ] in
  let second = R.Pool.run config [ mk () ] in
  Alcotest.(check bool) "first run misses" false first.(0).cache_hit;
  Alcotest.(check bool) "second run hits" true second.(0).cache_hit;
  Alcotest.(check int) "thunk ran once" 1 !executions;
  Alcotest.(check string) "identical rows from cache" first.(0).output second.(0).output;
  Alcotest.(check int) "hit reports zero attempts" 0 second.(0).attempts

let test_failures_not_cached () =
  with_tmp_cache @@ fun cache ->
  let attempts = ref 0 in
  let mk () =
    R.Job.make ~name:"sometimes" ~digest:"feedface" (fun () ->
        incr attempts;
        if !attempts = 1 then failwith "first run breaks" else "good rows\n")
  in
  let config = R.Pool.config ~jobs:1 ~cache () in
  let first = R.Pool.run config [ mk () ] in
  let second = R.Pool.run config [ mk () ] in
  Alcotest.(check bool) "first failed" false first.(0).ok;
  Alcotest.(check bool) "failure was not served from cache" false second.(0).cache_hit;
  Alcotest.(check bool) "second succeeded" true second.(0).ok

let test_digest_stability () =
  let d1 = R.Job.digest_of_params ~name:"e1" [ ("duration", "60"); ("seed", "42") ] in
  let d2 = R.Job.digest_of_params ~name:"e1" [ ("seed", "42"); ("duration", "60") ] in
  let d3 = R.Job.digest_of_params ~name:"e1" [ ("duration", "60"); ("seed", "43") ] in
  let d4 = R.Job.digest_of_params ~name:"e2" [ ("duration", "60"); ("seed", "42") ] in
  Alcotest.(check string) "parameter order canonicalized" d1 d2;
  Alcotest.(check bool) "seed changes digest" true (d1 <> d3);
  Alcotest.(check bool) "name changes digest" true (d1 <> d4)

let test_sweep_points () =
  let points =
    R.Sweep.points [ R.Sweep.axis "exp" [ "e1"; "e2" ]; R.Sweep.ints "seed" [ 1; 2; 3 ] ]
  in
  Alcotest.(check int) "cross product size" 6 (List.length points);
  Alcotest.(check string) "first axis varies slowest" "exp=e1 seed=1"
    (R.Sweep.label (List.hd points));
  Alcotest.(check (option string)) "lookup" (Some "e2")
    (R.Sweep.get (List.nth points 5) "exp");
  Alcotest.(check int) "no axes -> one empty point" 1 (List.length (R.Sweep.points []));
  Alcotest.check_raises "empty axis rejected"
    (Invalid_argument "Sweep.axis bad: no values") (fun () ->
      ignore (R.Sweep.axis "bad" []))

let test_backoff_deterministic () =
  let config = R.Pool.config ~jobs:1 ~retries:3 () in
  let d1 = R.Pool.backoff_delay_s config ~digest:"abc" ~attempt:1 in
  let d2 = R.Pool.backoff_delay_s config ~digest:"abc" ~attempt:1 in
  Alcotest.(check (float 0.0)) "same (digest, attempt) -> same delay" d1 d2;
  Alcotest.(check bool) "jittered around base" true (d1 >= 0.025 && d1 < 0.05);
  let far = R.Pool.backoff_delay_s config ~digest:"abc" ~attempt:12 in
  Alcotest.(check bool) "capped" true (far <= 1.0);
  Alcotest.(check bool) "still jittered below cap" true (far >= 0.5);
  let other = R.Pool.backoff_delay_s config ~digest:"xyz" ~attempt:1 in
  Alcotest.(check bool) "digest decorrelates jitter" true (d1 <> other);
  let off = R.Pool.config ~jobs:1 ~backoff_base_s:0.0 () in
  Alcotest.(check (float 0.0)) "base 0 disables backoff" 0.0
    (R.Pool.backoff_delay_s off ~digest:"abc" ~attempt:5);
  Alcotest.check_raises "negative base rejected"
    (Invalid_argument "Pool.config: backoff_base_s must be non-negative") (fun () ->
      ignore (R.Pool.config ~backoff_base_s:(-0.1) ()));
  Alcotest.check_raises "cap below base rejected"
    (Invalid_argument "Pool.config: backoff_cap_s must be >= backoff_base_s") (fun () ->
      ignore (R.Pool.config ~backoff_base_s:0.5 ~backoff_cap_s:0.1 ()))

let test_deadline_salvages_partial () =
  (* A cooperative job checks the ambient deadline at event boundaries:
     when the wall-clock budget runs out mid-run, the sim stops cleanly
     and the partial output is salvaged as a degraded success. *)
  let module Sim = Ccsim_engine.Sim in
  let cooperative =
    R.Job.make ~name:"slowpoke" ~digest:"s10wp0ke" (fun () ->
        let sim = Sim.create () in
        let events = ref 0 in
        let rec tick () =
          incr events;
          (* Burn real time so the wall-clock deadline can fire. *)
          let t0 = Unix.gettimeofday () in
          while Unix.gettimeofday () -. t0 < 2e-4 do () done;
          if Sim.now sim < 3600.0 then ignore (Sim.schedule sim ~delay:0.001 tick)
        in
        ignore (Sim.schedule sim ~delay:0.0 tick);
        Sim.run sim;
        if Sim.deadline_hit sim then Printf.sprintf "partial after %d events\n" !events
        else "complete\n")
  in
  let config = R.Pool.config ~jobs:1 ~timeout_s:0.3 () in
  let r = (R.Pool.run config [ cooperative ]).(0) in
  Alcotest.(check bool) "salvaged as ok" true r.ok;
  Alcotest.(check bool) "flagged timed out" true r.timed_out;
  Alcotest.(check bool) "flagged degraded" true r.degraded;
  Alcotest.(check bool) "partial output kept" true
    (String.length r.output >= 13 && String.sub r.output 0 13 = "partial after");
  Alcotest.(check bool) "deadline note in error" true
    (match r.error with Some e -> e <> "" | None -> false);
  Alcotest.(check bool) "stopped well before sim horizon" true (r.wall_s < 60.0)

let test_degraded_not_cached () =
  with_tmp_cache @@ fun cache ->
  let module Sim = Ccsim_engine.Sim in
  let runs = ref 0 in
  let mk () =
    R.Job.make ~name:"slow2" ~digest:"s10w0002" (fun () ->
        incr runs;
        let sim = Sim.create () in
        let rec tick () =
          let t0 = Unix.gettimeofday () in
          while Unix.gettimeofday () -. t0 < 2e-4 do () done;
          if Sim.now sim < 3600.0 then ignore (Sim.schedule sim ~delay:0.001 tick)
        in
        ignore (Sim.schedule sim ~delay:0.0 tick);
        Sim.run sim;
        if Sim.deadline_hit sim then "partial\n" else "complete\n")
  in
  let config = R.Pool.config ~jobs:1 ~cache ~timeout_s:0.2 () in
  let first = (R.Pool.run config [ mk () ]).(0) in
  let second = (R.Pool.run config [ mk () ]).(0) in
  Alcotest.(check bool) "first degraded" true first.degraded;
  Alcotest.(check bool) "degraded result not served from cache" false second.cache_hit;
  Alcotest.(check int) "thunk re-ran" 2 !runs

let test_telemetry_exit_codes () =
  let ok = R.Job.make ~name:"a" ~digest:"aa" (fun () -> "fine\n") in
  let results = R.Pool.run (R.Pool.config ~jobs:1 ()) [ ok ] in
  let tele = R.Telemetry.make ~pool_jobs:1 ~total_wall_s:0.1 results in
  Alcotest.(check int) "all ok -> 0" 0 (R.Telemetry.exit_code tele);
  let boom = R.Job.make ~name:"b" ~digest:"bb" (fun () -> failwith "x") in
  let results = R.Pool.run (R.Pool.config ~jobs:1 ()) [ ok; boom ] in
  let tele = R.Telemetry.make ~pool_jobs:1 ~total_wall_s:0.1 results in
  Alcotest.(check int) "failure -> 1" 1 (R.Telemetry.exit_code tele);
  let stuck =
    R.Job.make ~name:"c" ~digest:"cc" (fun () ->
        Unix.sleepf 0.3;
        "late\n")
  in
  let results = R.Pool.run (R.Pool.config ~jobs:1 ~timeout_s:0.05 ()) [ stuck ] in
  let tele = R.Telemetry.make ~pool_jobs:1 ~total_wall_s:0.1 results in
  Alcotest.(check bool) "non-cooperative job times out" true results.(0).timed_out;
  Alcotest.(check bool) "hard timeout is not degraded" false results.(0).degraded;
  Alcotest.(check int) "timeout -> 124" 124 (R.Telemetry.exit_code tele)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* More workers than host cores: the speedup claim in BENCH/telemetry
   output would otherwise mislead, so the report must say so. *)
let test_telemetry_oversubscription () =
  let ok = R.Job.make ~name:"a" ~digest:"aa" (fun () -> "fine\n") in
  let results = R.Pool.run (R.Pool.config ~jobs:1 ()) [ ok ] in
  let cores = R.Telemetry.host_cores () in
  Alcotest.(check bool) "cores positive" true (cores > 0);
  let over = R.Telemetry.make ~pool_jobs:(cores + 1) ~total_wall_s:0.1 results in
  Alcotest.(check bool) "flagged" true (R.Telemetry.oversubscribed over);
  Alcotest.(check bool) "summary annotated" true
    (contains ~sub:"[oversubscribed:" (R.Telemetry.summary over));
  Alcotest.(check bool) "json flagged" true
    (contains ~sub:"\"oversubscribed\": true" (R.Telemetry.to_json over));
  let fits = R.Telemetry.make ~pool_jobs:1 ~total_wall_s:0.1 results in
  Alcotest.(check bool) "one worker never oversubscribes" false
    (R.Telemetry.oversubscribed fits);
  Alcotest.(check bool) "summary clean" false
    (contains ~sub:"[oversubscribed:" (R.Telemetry.summary fits));
  Alcotest.(check bool) "json carries host_cores" true
    (contains ~sub:"\"host_cores\":" (R.Telemetry.to_json fits))

let test_registry_complete () =
  Alcotest.(check int) "twenty experiments" 20 (List.length E.all);
  Alcotest.(check bool) "find p1" true (E.find "p1" <> None);
  (match E.find "p1" with
  | Some p1 ->
      Alcotest.(check (list string)) "p1 backends" [ "fluid"; "hybrid" ] p1.E.backends;
      let params = E.effective_params p1 ~seed:7 () in
      Alcotest.(check (option string)) "backend default in params" (Some "fluid")
        (List.assoc_opt "backend" params)
  | None -> ());
  Alcotest.(check bool) "find fig1" true (E.find "fig1" <> None);
  Alcotest.(check bool) "find unknown" true (E.find "nope" = None);
  let params = E.effective_params (exp "fig2") ~seed:7 () in
  Alcotest.(check (option string)) "sized default applied" (Some "9984")
    (List.assoc_opt "n" params)

let suite =
  [
    ("pool: -j 4 rows identical to -j 1 (fig1, e1)", `Slow, test_parallel_matches_serial);
    ("pool: raising job yields error row, pool survives", `Quick, test_raising_job_isolated);
    ("pool: retry recovers a flaky job", `Quick, test_retries);
    ("cache: second run hits without re-executing", `Quick, test_cache_hit_skips_execution);
    ("cache: failures are not cached", `Quick, test_failures_not_cached);
    ("job: digest is canonical and parameter-sensitive", `Quick, test_digest_stability);
    ("sweep: cross product order and labels", `Quick, test_sweep_points);
    ("pool: backoff is deterministic, capped, seeded by digest", `Quick, test_backoff_deterministic);
    ("pool: deadline salvages partial output as degraded", `Quick, test_deadline_salvages_partial);
    ("pool: degraded results are never cached", `Quick, test_degraded_not_cached);
    ("telemetry: exit codes 0/1/124", `Quick, test_telemetry_exit_codes);
    ("telemetry: oversubscription flagged", `Quick, test_telemetry_oversubscription);
    ("registry: DESIGN.md index is complete", `Quick, test_registry_complete);
  ]
