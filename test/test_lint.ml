(* ccsim-lint: each fixture under lint_fixtures/ must produce exactly
   the findings its name promises — one file per rule, plus an
   annotated file the linter must stay silent on — and the allowlist
   machinery must suppress, report stale entries, and reject entries
   without a justification. *)

module L = Lint_core

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let drop_prefix ~prefix s =
  let n = String.length prefix in
  if String.length s >= n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

(* Under `dune runtest` the cwd is the test directory; under
   `dune exec test/test_main.exe` it is wherever the caller stood.
   Resolve both the fixture dir and the repo root by probing. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_dir name

let repo_root = if Sys.file_exists "lint.allow" then "." else "../../.."

let summarize findings =
  List.map (fun (f : L.finding) -> (f.rule, f.line, f.col)) findings

let check_fixture ~name ~expected () =
  let found = summarize (L.scan_file (fixture name)) in
  Alcotest.(check (list (triple string int int))) name expected found

let test_r1 =
  check_fixture ~name:"bad_r1_global_mutable.ml"
    ~expected:[ ("R1", 4, 4); ("R1", 5, 4); ("R1", 6, 4) ]

let test_r2 =
  check_fixture ~name:"bad_r2_nondeterminism.ml"
    ~expected:[ ("R2", 4, 16); ("R2", 6, 15); ("R2", 8, 17); ("R2", 10, 20) ]

let test_r3 =
  check_fixture ~name:"bad_r3_float_eq.ml" ~expected:[ ("R3", 4, 32); ("R3", 6, 37) ]

let test_r4 =
  check_fixture ~name:"bad_r4_unit_mixing.ml" ~expected:[ ("R4", 5, 38); ("R4", 7, 49) ]

let test_annotations_silence = check_fixture ~name:"ok_annotated.ml" ~expected:[]

let test_r2_exemption () =
  (* The same wall-clock read is a finding in engine code and exempt in
     telemetry/profiling code. *)
  let source = "let t0 = Unix.gettimeofday ()\n" in
  let in_engine = L.scan_source ~file:"lib/engine/x.ml" source in
  let in_runner = L.scan_source ~file:"lib/runner/x.ml" ~wall_clock_exempt:true source in
  Alcotest.(check int) "flagged in lib/engine" 1 (List.length in_engine);
  Alcotest.(check int) "exempt in lib/runner" 0 (List.length in_runner)

let test_messages_name_the_problem () =
  let msgs_of name = List.map (fun (f : L.finding) -> f.message) (L.scan_file (fixture name)) in
  (match msgs_of "bad_r1_global_mutable.ml" with
  | m :: _ ->
      Alcotest.(check bool) "R1 names the binding" true (contains ~affix:"\"hit_count\"" m)
  | [] -> Alcotest.fail "no R1 findings");
  match msgs_of "bad_r4_unit_mixing.ml" with
  | m :: _ ->
      Alcotest.(check bool) "R4 names both suffixes" true (contains ~affix:"_s vs _bps" m)
  | [] -> Alcotest.fail "no R4 findings"

let test_json_shape () =
  let findings = L.scan_file (fixture "bad_r3_float_eq.ml") in
  let json = L.render_json findings in
  let has affix = contains ~affix json in
  Alcotest.(check bool) "is an array" true
    (String.length json > 1 && json.[0] = '[');
  List.iter
    (fun field -> Alcotest.(check bool) ("has " ^ field) true (has ("\"" ^ field ^ "\": ")))
    [ "file"; "line"; "col"; "rule"; "stage"; "message" ];
  Alcotest.(check bool) "parse findings say so" true (has "\"stage\": \"parse\"");
  Alcotest.(check bool) "carries the path" true (has (fixture "bad_r3_float_eq.ml"));
  Alcotest.(check bool) "carries the rule" true (has "\"rule\": \"R3\"")

let test_json_empty () = Alcotest.(check string) "empty array" "[]\n" (L.render_json [])

let test_allowlist_suppresses () =
  let entry =
    {
      L.a_rule = "R1";
      a_path = fixture "bad_r1_global_mutable.ml";
      a_justification = "fixture";
      a_line = 1;
    }
  in
  let findings = L.scan_file (fixture "bad_r1_global_mutable.ml") in
  let kept, stale = L.apply_allowlist [ entry ] findings in
  Alcotest.(check int) "all R1 findings suppressed" 0 (List.length kept);
  Alcotest.(check int) "entry is live" 0 (List.length stale);
  (* The same entry against another rule's findings is stale. *)
  let other = L.scan_file (fixture "bad_r3_float_eq.ml") in
  let kept, stale = L.apply_allowlist [ entry ] other in
  Alcotest.(check int) "R3 findings survive" 2 (List.length kept);
  Alcotest.(check int) "entry reported stale" 1 (List.length stale)

let with_temp_allow contents f =
  let path = Filename.temp_file "lint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_allowlist_parses () =
  with_temp_allow
    "# comment\n\nR1 lib/app/video.ml constant ladder, never mutated\n"
    (fun path ->
      match L.load_allowlist path with
      | [ e ] ->
          Alcotest.(check string) "rule" "R1" e.L.a_rule;
          Alcotest.(check string) "path" "lib/app/video.ml" e.L.a_path;
          Alcotest.(check string) "justification" "constant ladder, never mutated"
            e.L.a_justification
      | es -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length es)))

let test_allowlist_requires_justification () =
  with_temp_allow "R1 lib/app/video.ml\n" (fun path ->
      Alcotest.check_raises "bare entry rejected"
        (L.Malformed_allow
           "line 1: expected `RULE PATH JUSTIFICATION...`, got \"R1 lib/app/video.ml\"")
        (fun () -> ignore (L.load_allowlist path)))

let test_repo_tree_is_clean () =
  (* The committed allowlist must cover the whole tree with no stale
     entries — the same invariant `dune build @lint` gates CI on. *)
  let in_root p = if repo_root = "." then p else Filename.concat repo_root p in
  let findings =
    L.scan_paths [ in_root "lib"; in_root "bin"; in_root "bench" ]
    |> List.map (fun (f : L.finding) ->
           match drop_prefix ~prefix:(repo_root ^ "/") f.file with
           | Some rest -> { f with L.file = rest }
           | None -> f)
  in
  let allow = L.load_allowlist (in_root "lint.allow") in
  let kept, stale = L.apply_allowlist allow findings in
  Alcotest.(check (list string)) "no findings"
    [] (List.map L.render_finding kept);
  Alcotest.(check (list string)) "no stale allow entries"
    [] (List.map (fun e -> e.L.a_path) stale);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s entry for %s is justified" e.L.a_rule e.L.a_path)
        true
        (String.length e.L.a_justification > 10))
    allow

(* Typed-stage fixtures (R5-R7): lint_fixtures_typed/ is a compiled
   library, so its .cmt files sit next to the copied sources in the
   build tree. Resolve the cmt root and the source root (for
   comment-form suppression recovery) from either cwd, as above. *)
let typed_cmt_root, typed_source_root =
  if Sys.file_exists "lint_fixtures_typed" then ("lint_fixtures_typed", "..")
  else ("_build/default/test/lint_fixtures_typed", ".")

let typed_findings =
  lazy
    (Lint_typed.scan
       ~source_roots:[ typed_source_root ]
       ~cmt_roots:[ typed_cmt_root ]
       ~paths:[ "test/lint_fixtures_typed" ] ())

let typed_for name =
  List.filter
    (fun (f : L.finding) ->
      String.equal f.L.file ("test/lint_fixtures_typed/" ^ name))
    (Lazy.force typed_findings)

let check_typed ~name ~expected () =
  Alcotest.(check (list (triple string int int))) name expected (summarize (typed_for name))

let test_r5_typed =
  check_typed ~name:"bad_r5.ml"
    ~expected:[ ("R5", 8, 12); ("R5", 10, 32); ("R5", 12, 25) ]

let test_r6_typed =
  check_typed ~name:"bad_r6.ml"
    ~expected:[ ("R6", 6, 43); ("R6", 8, 41); ("R6", 10, 40) ]

let test_r7_typed =
  check_typed ~name:"bad_r7.ml"
    ~expected:[ ("R7", 5, 55); ("R7", 7, 66); ("R7", 10, 6) ]

let test_typed_twins_silent () =
  (* Each bad fixture has an ok twin carrying the documented escape
     hatch — [@ccsim.alloc_ok "why"], [@lint.allow R6], and the
     comment-form annotation respectively. All must be silent. *)
  List.iter
    (fun name ->
      Alcotest.(check (list (triple string int int))) name [] (summarize (typed_for name)))
    [ "ok_r5.ml"; "ok_r6.ml"; "ok_r7.ml" ]

let test_typed_stage_field () =
  let fs = Lazy.force typed_findings in
  Alcotest.(check bool) "typed fixtures produced findings" true (fs <> []);
  List.iter
    (fun (f : L.finding) ->
      Alcotest.(check string)
        (Printf.sprintf "%s:%d stage" f.L.file f.L.line)
        "typed" f.L.stage)
    fs

let test_r7_and_r4_overlap () =
  (* The suffix heuristic (parse-stage R4) and the dimensional analysis
     (typed R7) both catch bad_r7's direct mixes at the same sites; only
     R7 sees through the let binding at 10:6, where the mismatched unit
     arrives via a propagated inferred dimension rather than a suffix
     pair. *)
  let src =
    if Sys.file_exists "lint_fixtures_typed" then "lint_fixtures_typed/bad_r7.ml"
    else "test/lint_fixtures_typed/bad_r7.ml"
  in
  let parse = summarize (L.scan_file src) in
  Alcotest.(check (list (triple string int int)))
    "parse stage sees the suffix mixes" [ ("R4", 5, 55); ("R4", 7, 66) ] parse

let test_sarif_shape () =
  let findings = L.scan_file (fixture "bad_r3_float_eq.ml") @ typed_for "bad_r5.ml" in
  let sarif = L.render_sarif findings in
  let has affix = contains ~affix sarif in
  Alcotest.(check bool) "declares 2.1.0" true (has "\"version\": \"2.1.0\"");
  Alcotest.(check bool) "points at the 2.1.0 schema" true (has "sarif-schema-2.1.0.json");
  Alcotest.(check bool) "driver is ccsim-lint" true (has "\"name\": \"ccsim-lint\"");
  (* All seven rules are described, findings or not... *)
  List.iter
    (fun r ->
      Alcotest.(check bool) ("descriptor for " ^ r) true (has ("{\"id\": \"" ^ r ^ "\"")))
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7" ];
  (* ...and each finding becomes a result with a physical location. *)
  Alcotest.(check bool) "R3 result" true (has "\"ruleId\": \"R3\"");
  Alcotest.(check bool) "R5 result" true (has "\"ruleId\": \"R5\"");
  Alcotest.(check bool) "carries the fixture uri" true
    (has "lint_fixtures_typed/bad_r5.ml");
  Alcotest.(check bool) "locations are physical" true (has "\"physicalLocation\"");
  let empty = L.render_sarif [] in
  Alcotest.(check bool) "clean tree still declares 2.1.0" true
    (contains ~affix:"\"version\": \"2.1.0\"" empty);
  Alcotest.(check bool) "clean tree has an empty results array" true
    (contains ~affix:"\"results\": []" empty)

let test_repo_tree_typed_clean () =
  (* The typed rules must hold over the whole tree with only in-source
     escape hatches — there are no typed entries in lint.allow, so the
     scan itself must come back empty. Mirrors `dune build @lint`. *)
  (* The .cmt files live in the build context, not the source tree:
     resolve its root the same way as the fixture cmt root above. *)
  let build_root =
    if Sys.file_exists "lint_fixtures_typed" then ".." else "_build/default"
  in
  let roots =
    List.map (Filename.concat build_root) [ "lib"; "bin"; "bench"; "tools" ]
  in
  let findings =
    Lint_typed.scan ~source_roots:[ build_root ] ~cmt_roots:roots
      ~paths:[ "lib"; "bin"; "bench"; "tools" ] ()
  in
  Alcotest.(check (list string)) "typed stage: no findings"
    [] (List.map L.render_finding findings)

let suite =
  [
    Alcotest.test_case "R1 fixture: exact findings" `Quick test_r1;
    Alcotest.test_case "R2 fixture: exact findings" `Quick test_r2;
    Alcotest.test_case "R3 fixture: exact findings" `Quick test_r3;
    Alcotest.test_case "R4 fixture: exact findings" `Quick test_r4;
    Alcotest.test_case "annotated fixture: silent" `Quick test_annotations_silence;
    Alcotest.test_case "R2: lib/runner is wall-clock exempt" `Quick test_r2_exemption;
    Alcotest.test_case "messages name the problem" `Quick test_messages_name_the_problem;
    Alcotest.test_case "json: shape and fields" `Quick test_json_shape;
    Alcotest.test_case "json: empty input" `Quick test_json_empty;
    Alcotest.test_case "allowlist: suppresses and reports stale" `Quick test_allowlist_suppresses;
    Alcotest.test_case "allowlist: parses rule/path/justification" `Quick test_allowlist_parses;
    Alcotest.test_case "allowlist: justification mandatory" `Quick
      test_allowlist_requires_justification;
    Alcotest.test_case "repo tree: lint-clean under lint.allow" `Quick test_repo_tree_is_clean;
    Alcotest.test_case "R5 fixture: exact findings" `Quick test_r5_typed;
    Alcotest.test_case "R6 fixture: exact findings" `Quick test_r6_typed;
    Alcotest.test_case "R7 fixture: exact findings" `Quick test_r7_typed;
    Alcotest.test_case "typed twins: silent under escape hatches" `Quick
      test_typed_twins_silent;
    Alcotest.test_case "typed findings carry stage = typed" `Quick test_typed_stage_field;
    Alcotest.test_case "R4/R7 overlap on suffix-visible mixes" `Quick test_r7_and_r4_overlap;
    Alcotest.test_case "sarif: shape, descriptors, results" `Quick test_sarif_shape;
    Alcotest.test_case "repo tree: typed stage clean" `Quick test_repo_tree_typed_clean;
  ]
