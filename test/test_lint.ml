(* ccsim-lint: each fixture under lint_fixtures/ must produce exactly
   the findings its name promises — one file per rule, plus an
   annotated file the linter must stay silent on — and the allowlist
   machinery must suppress, report stale entries, and reject entries
   without a justification. *)

module L = Lint_core

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let drop_prefix ~prefix s =
  let n = String.length prefix in
  if String.length s >= n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

(* Under `dune runtest` the cwd is the test directory; under
   `dune exec test/test_main.exe` it is wherever the caller stood.
   Resolve both the fixture dir and the repo root by probing. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_dir name

let repo_root = if Sys.file_exists "lint.allow" then "." else "../../.."

let summarize findings =
  List.map (fun (f : L.finding) -> (f.rule, f.line, f.col)) findings

let check_fixture ~name ~expected () =
  let found = summarize (L.scan_file (fixture name)) in
  Alcotest.(check (list (triple string int int))) name expected found

let test_r1 =
  check_fixture ~name:"bad_r1_global_mutable.ml"
    ~expected:[ ("R1", 4, 4); ("R1", 5, 4); ("R1", 6, 4) ]

let test_r2 =
  check_fixture ~name:"bad_r2_nondeterminism.ml"
    ~expected:[ ("R2", 4, 16); ("R2", 6, 15); ("R2", 8, 17); ("R2", 10, 20) ]

let test_r3 =
  check_fixture ~name:"bad_r3_float_eq.ml" ~expected:[ ("R3", 4, 32); ("R3", 6, 37) ]

let test_r4 =
  check_fixture ~name:"bad_r4_unit_mixing.ml" ~expected:[ ("R4", 5, 38); ("R4", 7, 49) ]

let test_annotations_silence = check_fixture ~name:"ok_annotated.ml" ~expected:[]

let test_r2_exemption () =
  (* The same wall-clock read is a finding in engine code and exempt in
     telemetry/profiling code. *)
  let source = "let t0 = Unix.gettimeofday ()\n" in
  let in_engine = L.scan_source ~file:"lib/engine/x.ml" source in
  let in_runner = L.scan_source ~file:"lib/runner/x.ml" ~wall_clock_exempt:true source in
  Alcotest.(check int) "flagged in lib/engine" 1 (List.length in_engine);
  Alcotest.(check int) "exempt in lib/runner" 0 (List.length in_runner)

let test_messages_name_the_problem () =
  let msgs_of name = List.map (fun (f : L.finding) -> f.message) (L.scan_file (fixture name)) in
  (match msgs_of "bad_r1_global_mutable.ml" with
  | m :: _ ->
      Alcotest.(check bool) "R1 names the binding" true (contains ~affix:"\"hit_count\"" m)
  | [] -> Alcotest.fail "no R1 findings");
  match msgs_of "bad_r4_unit_mixing.ml" with
  | m :: _ ->
      Alcotest.(check bool) "R4 names both suffixes" true (contains ~affix:"_s vs _bps" m)
  | [] -> Alcotest.fail "no R4 findings"

let test_json_shape () =
  let findings = L.scan_file (fixture "bad_r3_float_eq.ml") in
  let json = L.render_json findings in
  let has affix = contains ~affix json in
  Alcotest.(check bool) "is an array" true
    (String.length json > 1 && json.[0] = '[');
  List.iter
    (fun field -> Alcotest.(check bool) ("has " ^ field) true (has ("\"" ^ field ^ "\": ")))
    [ "file"; "line"; "col"; "rule"; "message" ];
  Alcotest.(check bool) "carries the path" true (has (fixture "bad_r3_float_eq.ml"));
  Alcotest.(check bool) "carries the rule" true (has "\"rule\": \"R3\"")

let test_json_empty () = Alcotest.(check string) "empty array" "[]\n" (L.render_json [])

let test_allowlist_suppresses () =
  let entry =
    {
      L.a_rule = "R1";
      a_path = fixture "bad_r1_global_mutable.ml";
      a_justification = "fixture";
      a_line = 1;
    }
  in
  let findings = L.scan_file (fixture "bad_r1_global_mutable.ml") in
  let kept, stale = L.apply_allowlist [ entry ] findings in
  Alcotest.(check int) "all R1 findings suppressed" 0 (List.length kept);
  Alcotest.(check int) "entry is live" 0 (List.length stale);
  (* The same entry against another rule's findings is stale. *)
  let other = L.scan_file (fixture "bad_r3_float_eq.ml") in
  let kept, stale = L.apply_allowlist [ entry ] other in
  Alcotest.(check int) "R3 findings survive" 2 (List.length kept);
  Alcotest.(check int) "entry reported stale" 1 (List.length stale)

let with_temp_allow contents f =
  let path = Filename.temp_file "lint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_allowlist_parses () =
  with_temp_allow
    "# comment\n\nR1 lib/app/video.ml constant ladder, never mutated\n"
    (fun path ->
      match L.load_allowlist path with
      | [ e ] ->
          Alcotest.(check string) "rule" "R1" e.L.a_rule;
          Alcotest.(check string) "path" "lib/app/video.ml" e.L.a_path;
          Alcotest.(check string) "justification" "constant ladder, never mutated"
            e.L.a_justification
      | es -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length es)))

let test_allowlist_requires_justification () =
  with_temp_allow "R1 lib/app/video.ml\n" (fun path ->
      Alcotest.check_raises "bare entry rejected"
        (L.Malformed_allow
           "line 1: expected `RULE PATH JUSTIFICATION...`, got \"R1 lib/app/video.ml\"")
        (fun () -> ignore (L.load_allowlist path)))

let test_repo_tree_is_clean () =
  (* The committed allowlist must cover the whole tree with no stale
     entries — the same invariant `dune build @lint` gates CI on. *)
  let in_root p = if repo_root = "." then p else Filename.concat repo_root p in
  let findings =
    L.scan_paths [ in_root "lib"; in_root "bin"; in_root "bench" ]
    |> List.map (fun (f : L.finding) ->
           match drop_prefix ~prefix:(repo_root ^ "/") f.file with
           | Some rest -> { f with L.file = rest }
           | None -> f)
  in
  let allow = L.load_allowlist (in_root "lint.allow") in
  let kept, stale = L.apply_allowlist allow findings in
  Alcotest.(check (list string)) "no findings"
    [] (List.map L.render_finding kept);
  Alcotest.(check (list string)) "no stale allow entries"
    [] (List.map (fun e -> e.L.a_path) stale);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s entry for %s is justified" e.L.a_rule e.L.a_path)
        true
        (String.length e.L.a_justification > 10))
    allow

let suite =
  [
    Alcotest.test_case "R1 fixture: exact findings" `Quick test_r1;
    Alcotest.test_case "R2 fixture: exact findings" `Quick test_r2;
    Alcotest.test_case "R3 fixture: exact findings" `Quick test_r3;
    Alcotest.test_case "R4 fixture: exact findings" `Quick test_r4;
    Alcotest.test_case "annotated fixture: silent" `Quick test_annotations_silence;
    Alcotest.test_case "R2: lib/runner is wall-clock exempt" `Quick test_r2_exemption;
    Alcotest.test_case "messages name the problem" `Quick test_messages_name_the_problem;
    Alcotest.test_case "json: shape and fields" `Quick test_json_shape;
    Alcotest.test_case "json: empty input" `Quick test_json_empty;
    Alcotest.test_case "allowlist: suppresses and reports stale" `Quick test_allowlist_suppresses;
    Alcotest.test_case "allowlist: parses rule/path/justification" `Quick test_allowlist_parses;
    Alcotest.test_case "allowlist: justification mandatory" `Quick
      test_allowlist_requires_justification;
    Alcotest.test_case "repo tree: lint-clean under lint.allow" `Quick test_repo_tree_is_clean;
  ]
