(* Timeline subsystem: sampled series with bounded decimation, the
   invariant watchdog, Chrome trace export, and offline reproduction of
   the in-simulation detectors from an exported series file. *)

module Obs = Ccsim_obs
module Timeline = Obs.Timeline
module Watchdog = Obs.Watchdog
module Metrics = Obs.Metrics
module Profile = Obs.Profile
module Recorder = Obs.Recorder
module Scope = Obs.Scope
module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module M = Ccsim_measure
module Offline = M.Offline
module Scenario = Ccsim_core.Scenario
module Results = Ccsim_core.Results
module E = Ccsim_core.Experiments

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- timeline series ------------------------------------------------------ *)

let test_timeline_record_points () =
  let tl = Timeline.create () in
  let s = Timeline.series tl ~labels:[ ("flow", "a") ] "goodput" in
  Timeline.record s ~time:0.0 ~value:1.0;
  Timeline.record s ~time:0.5 ~value:2.0;
  Timeline.record s ~time:1.0 ~value:3.0;
  Alcotest.(check string) "name" "goodput" (Timeline.name s);
  Alcotest.(check int) "length" 3 (Timeline.length s);
  Alcotest.(check int) "stride" 1 (Timeline.stride s);
  (match Timeline.points s with
  | [| (0.0, 1.0); (0.5, 2.0); (1.0, 3.0) |] -> ()
  | _ -> Alcotest.fail "unexpected points");
  (* Same (name, labels) resolves to the same series, labels order-insensitively. *)
  let s' = Timeline.series tl ~labels:[ ("flow", "a") ] "goodput" in
  Timeline.record s' ~time:1.5 ~value:4.0;
  Alcotest.(check int) "shared" 4 (Timeline.length s);
  Alcotest.(check int) "one series" 1 (List.length (Timeline.all_series tl))

let test_timeline_invalid_args () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Timeline.create: interval must be positive") (fun () ->
      ignore (Timeline.create ~interval:0.0 ()));
  Alcotest.check_raises "capacity too small"
    (Invalid_argument "Timeline.create: capacity must be at least 2") (fun () ->
      ignore (Timeline.create ~capacity:1 ()))

let test_timeline_decimation () =
  let tl = Timeline.create ~capacity:8 () in
  let s = Timeline.series tl "x" in
  for i = 0 to 99 do
    Timeline.record s ~time:(0.1 *. float_of_int i) ~value:(float_of_int i)
  done;
  Alcotest.(check bool) "bounded" true (Timeline.length s <= 8);
  let stride = Timeline.stride s in
  Alcotest.(check bool) "stride grew" true (stride > 1);
  (* Power-of-two stride, and the retained points align with it. *)
  Alcotest.(check bool) "power of two" true (stride land (stride - 1) = 0);
  Array.iteri
    (fun i (_, v) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "point %d aligned" i)
        (float_of_int (i * stride))
        v)
    (Timeline.points s);
  (* The series still spans the whole run: the last retained point is
     within one stride of the final offered point. *)
  let pts = Timeline.points s in
  let last_t, _ = pts.(Array.length pts - 1) in
  Alcotest.(check bool) "spans the run" true (last_t >= 0.1 *. float_of_int (99 - stride))

let test_timeline_ordering_latch () =
  let tl = Timeline.create () in
  let s = Timeline.series tl "x" in
  Timeline.record s ~time:1.0 ~value:1.0;
  Timeline.record s ~time:0.5 ~value:2.0;
  (* dropped, not appended *)
  Alcotest.(check int) "dropped" 1 (Timeline.length s);
  match Timeline.ordering_violation tl with
  | Some ("x", 1.0, 0.5) -> ()
  | _ -> Alcotest.fail "ordering violation not latched"

let test_timeline_ndjson_roundtrip () =
  let tl = Timeline.create () in
  let s = Timeline.series tl ~labels:[ ("flow", "a"); ("scenario", "s,1") ] "goodput" in
  let awkward = [| 0.1 +. 0.2; 1e-17; -3.75; 123456789.123456789; 0.0 |] in
  Array.iteri (fun i v -> Timeline.record s ~time:(float_of_int i *. 0.1) ~value:v) awkward;
  let nd = Timeline.to_ndjson ~extra:[ ("job", "j1") ] tl in
  match Offline.of_string nd with
  | [ p ] ->
      Alcotest.(check (option string)) "job" (Some "j1") p.Offline.job;
      Alcotest.(check string) "name" "goodput" p.Offline.name;
      Alcotest.(check (list (pair string string)))
        "labels"
        [ ("flow", "a"); ("scenario", "s,1") ]
        p.Offline.labels;
      Alcotest.(check int) "points" 5 (Array.length p.Offline.values);
      (* Round-trip precision: bit-for-bit equal after parse. *)
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "value %d exact" i)
            true
            (Float.equal v awkward.(i)))
        p.Offline.values
  | l -> Alcotest.fail (Printf.sprintf "expected 1 series, got %d" (List.length l))

let test_timeline_csv () =
  let tl = Timeline.create () in
  let s = Timeline.series tl ~labels:[ ("q", "fifo") ] "backlog" in
  Timeline.record s ~time:0.25 ~value:1500.0;
  let csv = Timeline.to_csv ~header:true ~extra:[ ("job", "j") ] tl in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + row" 2 (List.length lines);
  Alcotest.(check string) "header" "job,series,labels,t,v" (List.hd lines);
  Alcotest.(check string) "row" "j,backlog,q=fifo,0.25,1500" (List.nth lines 1)

(* --- watchdog ------------------------------------------------------------- *)

let test_watchdog_invalid_interval () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Watchdog.create: interval must be positive") (fun () ->
      ignore (Watchdog.create ~interval:0.0 ()))

let test_watchdog_check_and_latch () =
  let w = Watchdog.create () in
  let broken = ref false in
  Watchdog.register w ~component:"test" ~invariant:"flag_clear" (fun () ->
      if !broken then Some "flag was set" else None);
  Watchdog.check_now w ~now:1.0;
  Alcotest.(check int) "one check ran" 1 (Watchdog.checks_run w);
  Alcotest.(check (option reject)) "no violation" None (Watchdog.violation w);
  broken := true;
  (match Watchdog.check_now w ~now:2.0 with
  | () -> Alcotest.fail "expected Violation"
  | exception Watchdog.Violation v ->
      Alcotest.(check string) "component" "test" v.Watchdog.component;
      Alcotest.(check string) "invariant" "flag_clear" v.Watchdog.invariant;
      Alcotest.(check (float 1e-9)) "at" 2.0 v.Watchdog.at;
      Alcotest.(check string) "message" "flag was set" v.Watchdog.message);
  (* Tripped watchdogs re-raise: a violation cannot be outrun. *)
  broken := false;
  (match Watchdog.check_now w ~now:3.0 with
  | () -> Alcotest.fail "expected re-raise"
  | exception Watchdog.Violation v ->
      Alcotest.(check (float 1e-9)) "original time kept" 2.0 v.Watchdog.at);
  match Watchdog.violation w with
  | Some v ->
      Alcotest.(check bool) "one_line has component" true
        (contains ~sub:"component=test" (Watchdog.one_line v));
      Alcotest.(check bool) "report has invariant" true
        (contains ~sub:"flag_clear" (Watchdog.report v))
  | None -> Alcotest.fail "violation not recorded"

let test_watchdog_watch_timeline () =
  let w = Watchdog.create () in
  let tl = Timeline.create () in
  Watchdog.watch_timeline w tl;
  let s = Timeline.series tl "x" in
  Timeline.record s ~time:2.0 ~value:1.0;
  Watchdog.check_now w ~now:2.0;
  Timeline.record s ~time:1.0 ~value:1.0;
  match Watchdog.check_now w ~now:3.0 with
  | () -> Alcotest.fail "expected Violation"
  | exception Watchdog.Violation v ->
      Alcotest.(check string) "component" "timeline" v.Watchdog.component;
      Alcotest.(check string) "invariant" "sample_ordering" v.Watchdog.invariant

(* --- flight recorder capacity (--flight-rec-cap) -------------------------- *)

let test_recorder_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Recorder.create: capacity must be positive") (fun () ->
      ignore (Recorder.create ~capacity:0 ()));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Recorder.create: capacity must be positive") (fun () ->
      ignore (Recorder.create ~capacity:(-5) ()));
  (* A custom capacity bounds retention exactly. *)
  let r = Recorder.create ~capacity:3 () in
  for i = 1 to 10 do
    Recorder.record r ~at:(float_of_int i) ~kind:"packet" ~point:"x" "d"
  done;
  Alcotest.(check int) "retained" 3 (Recorder.retained r);
  Alcotest.(check int) "evicted" 7 (Recorder.evicted r)

(* --- histogram quantiles (log-scale buckets) ------------------------------ *)

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "x" in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Metrics.quantile h 0.5);
  (* A single observation of 1.0 lands in the [1, 2) bucket: the median
     interpolates to the bucket midpoint, q=0/q=1 to its edges. *)
  Metrics.observe h 1.0;
  Alcotest.(check (float 1e-9)) "q0 at lower edge" 1.0 (Metrics.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "median at midpoint" 1.5 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "q1 at upper edge" 2.0 (Metrics.quantile h 1.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.quantile: q must be within [0,1]") (fun () ->
      ignore (Metrics.quantile h 1.5))

let test_histogram_quantile_bucket_boundaries () =
  (* Exact powers of two sit on bucket boundaries; each must fall in
     [2^k, 2^(k+1)), never the bucket below. *)
  List.iter
    (fun v ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "x" in
      Metrics.observe h v;
      let p50 = Metrics.quantile h 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "p50 of {%g} in [%g, %g)" v v (2.0 *. v))
        true
        (p50 >= v && p50 < 2.0 *. v))
    [ 0.25; 0.5; 1.0; 2.0; 4.0; 1024.0 ];
  (* Zero observations carry their mass at 0. *)
  let m = Metrics.create () in
  let h = Metrics.histogram m "x" in
  Metrics.observe h 0.0;
  Metrics.observe h 0.0;
  Metrics.observe h 0.0;
  Metrics.observe h 8.0;
  Alcotest.(check (float 1e-9)) "p50 dominated by zeros" 0.0 (Metrics.quantile h 0.5);
  Alcotest.(check bool) "p99 in the populated bucket" true (Metrics.quantile h 0.99 >= 8.0)

let test_histogram_ndjson_has_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "sojourn_seconds" in
  Metrics.observe h 1.0;
  let out = Metrics.to_ndjson m in
  Alcotest.(check bool) "p50" true (contains ~sub:"\"p50\":1.5" out);
  Alcotest.(check bool) "p95" true (contains ~sub:"\"p95\":" out);
  Alcotest.(check bool) "p99" true (contains ~sub:"\"p99\":" out)

(* --- profiler speedup ----------------------------------------------------- *)

let test_profiler_sim_speedup () =
  (* Unit-level: 5 simulated seconds over 0.5 busy seconds is a 10x
     speedup. *)
  let p = Profile.create () in
  Profile.record p ~comp:"link" ~seconds:0.5;
  Profile.note_sim_time p 5.0;
  Profile.note_sim_time p 3.0;
  (* non-monotone input ignored *)
  Alcotest.(check (float 1e-9)) "sim seconds" 5.0 (Profile.sim_s p);
  Alcotest.(check (float 1e-9)) "speedup" 10.0 (Profile.sim_speedup p);
  Alcotest.(check bool) "json sim_s" true (contains ~sub:"\"sim_s\": 5.0" (Profile.to_json p));
  Alcotest.(check bool) "json speedup" true
    (contains ~sub:"\"sim_speedup\": 10.0" (Profile.to_json p));
  Alcotest.(check bool) "summary speedup" true
    (contains ~sub:"sim-s" (Profile.summary p));
  (* And via the engine: a run advances the profile's sim clock. *)
  let p2 = Profile.create () in
  let sim = Sim.create ~profile:p2 () in
  ignore (Sim.schedule sim ~delay:5.0 (fun () -> ()));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "engine-fed sim seconds" 5.0 (Profile.sim_s p2)

(* --- engine drivers ------------------------------------------------------- *)

let test_engine_samples_probes () =
  let tl = Timeline.create ~interval:0.5 () in
  Scope.with_scope
    (Scope.v ~timeline:tl ())
    (fun () ->
      let sim = Sim.create () in
      let n = ref 0 in
      Sim.add_timeline_probe sim "counter" (fun () ->
          incr n;
          float_of_int !n);
      ignore (Sim.schedule sim ~delay:3.0 (fun () -> ()));
      Sim.run sim);
  match Timeline.all_series tl with
  | [ s ] ->
      Alcotest.(check string) "name" "counter" (Timeline.name s);
      Alcotest.(check bool) "sim tag" true
        (List.mem_assoc "sim" (Timeline.labels s));
      (* Samples at 0.5, 1.0, ..., 3.0 (the driver stops once only
         driver events remain in the heap). *)
      Alcotest.(check int) "six samples" 6 (Timeline.length s);
      let t0, _ = (Timeline.points s).(0) in
      Alcotest.(check (float 1e-9)) "first at interval" 0.5 t0
  | l -> Alcotest.fail (Printf.sprintf "expected 1 series, got %d" (List.length l))

let test_engine_drivers_terminate () =
  (* Timeline + watchdog drivers must not keep each other (or an
     otherwise-finished run) alive. *)
  let tl = Timeline.create ~interval:0.1 () in
  let w = Watchdog.create () in
  Scope.with_scope
    (Scope.v ~timeline:tl ~watchdog:w ())
    (fun () ->
      let sim = Sim.create () in
      ignore (Sim.schedule sim ~delay:1.0 (fun () -> ()));
      Sim.run sim;
      Alcotest.(check bool) "clock near the last real event" true (Sim.now sim <= 1.5));
  Alcotest.(check bool) "watchdog swept" true (Watchdog.checks_run w >= 0)

(* --- end-to-end: instrumented scenario ------------------------------------ *)

let congested_scenario seed =
  Scenario.make ~name:"tl-e2e" ~rate_bps:(Ccsim_util.Units.mbps 5.0) ~delay_s:0.01
    ~qdisc:(Scenario.Fifo { limit_bytes = Some 15_000 })
    ~duration:8.0 ~warmup:1.0 ~seed
    [ Scenario.flow ~cca:Scenario.Cubic "a"; Scenario.flow ~cca:Scenario.Cubic "b" ]

let test_e2e_timeline_series () =
  let tl = Timeline.create () in
  let results =
    Scope.with_scope
      (Scope.v ~timeline:tl ())
      (fun () -> Scenario.run (congested_scenario 42))
  in
  Alcotest.(check bool) "scenario saw drops" true (results.Results.bottleneck_drops > 0);
  let names = List.map Timeline.name (Timeline.all_series tl) in
  List.iter
    (fun n -> Alcotest.(check bool) ("series " ^ n) true (List.mem n names))
    [
      "flow_goodput_bps";
      "flow_cwnd_bytes";
      "flow_srtt_s";
      "flow_inflight_bytes";
      "queue_backlog_bytes";
      "queue_drops_total";
    ];
  (* Every series is tagged with the scenario and carries samples. *)
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        ("scenario tag on " ^ Timeline.name s)
        (Some "tl-e2e")
        (List.assoc_opt "scenario" (Timeline.labels s));
      Alcotest.(check bool) "sampled" true (Timeline.length s > 0))
    (Timeline.all_series tl)

let test_e2e_watchdog_passes () =
  let w = Watchdog.create () in
  let tl = Timeline.create () in
  Watchdog.watch_timeline w tl;
  let results =
    Scope.with_scope
      (Scope.v ~timeline:tl ~watchdog:w ())
      (fun () -> Scenario.run (congested_scenario 42))
  in
  (* A congested run (drops, retransmits) passes every conservation
     invariant, and the checks demonstrably ran. *)
  Alcotest.(check bool) "drops" true (results.Results.bottleneck_drops > 0);
  Alcotest.(check bool) "checks registered" true (Watchdog.checks w >= 5);
  Alcotest.(check bool) "sweeps happened" true (Watchdog.checks_run w > Watchdog.checks w);
  Alcotest.(check (option reject)) "no violation" None (Watchdog.violation w)

let test_e2e_fault_injection () =
  (* Corrupt a link's qdisc counter mid-run: the conservation check must
     trip and name the qdisc. *)
  let w = Watchdog.create () in
  let run () =
    Scope.with_scope
      (Scope.v ~watchdog:w ())
      (fun () ->
        let sim = Sim.create () in
        let link =
          Net.Link.create sim ~rate_bps:80_000.0 ~delay_s:0.001 ~sink:(fun _ -> ()) ()
        in
        for i = 0 to 19 do
          ignore
            (Sim.schedule sim ~delay:(0.1 *. float_of_int i) (fun () ->
                 Net.Link.send link
                   (Net.Packet.data ~flow:1 ~seq:i ~payload_bytes:1000
                      ~sent_at:(Sim.now sim) ())))
        done;
        ignore
          (Sim.schedule sim ~delay:1.0 (fun () ->
               let st = (Net.Link.qdisc link).Net.Qdisc.stats in
               st.Net.Qdisc.enqueued <- st.Net.Qdisc.enqueued + 7));
        Sim.run sim)
  in
  match run () with
  | () -> Alcotest.fail "corruption went undetected"
  | exception Watchdog.Violation v ->
      Alcotest.(check string) "component" "link/qdisc:fifo" v.Watchdog.component;
      Alcotest.(check string) "invariant" "packet_conservation" v.Watchdog.invariant;
      Alcotest.(check bool) "after the corruption" true (v.Watchdog.at >= 1.0)

let test_e2e_instrumentation_identical () =
  (* PR 2's guarantee extended: timeline + watchdog instrumentation must
     not change any result. *)
  let plain = Scenario.run (congested_scenario 7) in
  let w = Watchdog.create () in
  let tl = Timeline.create () in
  Watchdog.watch_timeline w tl;
  let instrumented =
    Scope.with_scope
      (Scope.v ~timeline:tl ~watchdog:w ())
      (fun () -> Scenario.run (congested_scenario 7))
  in
  Alcotest.(check int) "drops identical" plain.Results.bottleneck_drops
    instrumented.Results.bottleneck_drops;
  Alcotest.(check (float 1e-9)) "jain identical" plain.Results.jain_index
    instrumented.Results.jain_index;
  List.iter2
    (fun (a : Results.flow_result) (b : Results.flow_result) ->
      Alcotest.(check (float 1e-6)) ("goodput " ^ a.label) a.goodput_bps b.goodput_bps;
      Alcotest.(check int) ("acked " ^ a.label) a.bytes_acked b.bytes_acked)
    plain.Results.flows instrumented.Results.flows

(* --- chrome trace export -------------------------------------------------- *)

let test_chrome_trace_structure () =
  let tl = Timeline.create () in
  let r = Recorder.create () in
  ignore
    (Scope.with_scope
       (Scope.v ~timeline:tl ~recorder:r ())
       (fun () -> Scenario.run (congested_scenario 42)));
  let trace = Obs.Chrome_trace.to_string [ ("tl-e2e", Some tl, Some r, None) ] in
  match Offline.json_of_string trace with
  | Offline.Arr events ->
      Alcotest.(check bool) "non-empty" true (events <> []);
      let last_ts : (string, float) Hashtbl.t = Hashtbl.create 64 in
      let counters = ref 0 and instants = ref 0 in
      List.iter
        (fun ev ->
          match ev with
          | Offline.Obj fields ->
              let str k =
                match List.assoc_opt k fields with Some (Offline.Str s) -> Some s | _ -> None
              in
              let num k =
                match List.assoc_opt k fields with Some (Offline.Num v) -> Some v | _ -> None
              in
              let ph =
                match str "ph" with Some p -> p | None -> Alcotest.fail "event without ph"
              in
              Alcotest.(check bool) "pid present" true (num "pid" <> None);
              if ph <> "M" then
                Alcotest.(check bool) "ts present" true (num "ts" <> None);
              if ph = "C" then begin
                incr counters;
                let name = Option.get (str "name") in
                let ts = Option.get (num "ts") in
                (match Hashtbl.find_opt last_ts name with
                | Some prev ->
                    Alcotest.(check bool)
                      (Printf.sprintf "monotone ts on %s" name)
                      true (ts >= prev)
                | None -> ());
                Hashtbl.replace last_ts name ts
              end
              else if ph = "i" then incr instants
          | _ -> Alcotest.fail "event is not an object")
        events;
      Alcotest.(check bool) "counter events" true (!counters > 0);
      Alcotest.(check bool) "instant events" true (!instants > 0)
  | _ -> Alcotest.fail "trace is not a JSON array"

(* Golden trace over hand-built instruments: pins the exact field order
   of every event class (counter, instant, span phases, process span,
   metadata) and the global stable sort on (ts, pid, tid). Any exporter
   change that reshapes the document must update this string. *)
let test_chrome_trace_golden () =
  let tl = Timeline.create () in
  let s = Timeline.series tl ~labels:[ ("flow", "a") ] "goodput" in
  Timeline.record s ~time:1.0 ~value:2.0;
  Timeline.record s ~time:3.0 ~value:4.0;
  let r = Recorder.create () in
  Recorder.record r ~at:2.0 ~kind:"qdisc" ~point:"bottleneck" ~fields:[ ("uid", "5") ]
    "drop";
  let sp = Obs.Span.create ~sample:1 () in
  Obs.Span.note_enqueue sp ~hop:"bottleneck" ~at:1.5 ~uid:0 ~flow:1 ~seq:2 ~bytes:1500
    ~kind:"data";
  Obs.Span.note_dequeue sp ~hop:"bottleneck" ~at:1.75 ~uid:0;
  Obs.Span.note_tx sp ~hop:"bottleneck" ~at:2.0 ~uid:0;
  Obs.Span.note_delivered sp ~hop:"bottleneck" ~at:2.5 ~uid:0;
  let trace = Obs.Chrome_trace.to_string [ ("job", Some tl, Some r, Some sp) ] in
  let expected =
    String.concat ",\n"
      [
        "[\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"job\"}}";
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"hop: bottleneck\"}}";
        "{\"name\":\"job\",\"ph\":\"X\",\"ts\":1000000.000,\"dur\":2000000.000,\"pid\":1,\"tid\":0}";
        "{\"name\":\"goodput{flow=a}\",\"ph\":\"C\",\"ts\":1000000.000,\"pid\":1,\"args\":{\"value\":2}}";
        "{\"name\":\"queue\",\"ph\":\"X\",\"ts\":1500000.000,\"dur\":250000.000,\"pid\":1,\"tid\":2,\"args\":{\"hop\":\"bottleneck\",\"uid\":0,\"flow\":1,\"seq\":2,\"kind\":\"data\",\"outcome\":\"delivered\"}}";
        "{\"name\":\"serialize\",\"ph\":\"X\",\"ts\":1750000.000,\"dur\":250000.000,\"pid\":1,\"tid\":2,\"args\":{\"hop\":\"bottleneck\",\"uid\":0,\"flow\":1,\"seq\":2,\"kind\":\"data\",\"outcome\":\"delivered\"}}";
        "{\"name\":\"qdisc:drop\",\"ph\":\"i\",\"ts\":2000000.000,\"pid\":1,\"tid\":1,\"s\":\"p\",\"args\":{\"point\":\"bottleneck\",\"severity\":\"info\",\"uid\":\"5\"}}";
        "{\"name\":\"propagate\",\"ph\":\"X\",\"ts\":2000000.000,\"dur\":500000.000,\"pid\":1,\"tid\":2,\"args\":{\"hop\":\"bottleneck\",\"uid\":0,\"flow\":1,\"seq\":2,\"kind\":\"data\",\"outcome\":\"delivered\"}}";
        "{\"name\":\"goodput{flow=a}\",\"ph\":\"C\",\"ts\":3000000.000,\"pid\":1,\"args\":{\"value\":4}}\n]\n";
      ]
  in
  Alcotest.(check string) "golden trace" expected trace

let test_spans_e2e () =
  (* A congested scenario with every packet sampled: spans cover every
     hop, completed spans decompose, and arming spans does not change
     the scenario's results. *)
  let plain = Scenario.run (congested_scenario 11) in
  let sp = Obs.Span.create ~sample:1 () in
  let instrumented =
    Scope.with_scope
      (Scope.v ~span:sp ())
      (fun () -> Scenario.run (congested_scenario 11))
  in
  Alcotest.(check int) "drops identical" plain.Results.bottleneck_drops
    instrumented.Results.bottleneck_drops;
  Alcotest.(check (float 1e-9)) "jain identical" plain.Results.jain_index
    instrumented.Results.jain_index;
  Alcotest.(check bool) "spans recorded" true (Obs.Span.completed_count sp > 0);
  Alcotest.(check int) "all records closed" 0 (Obs.Span.open_count sp);
  let records = Obs.Span.completed sp in
  let hops =
    List.sort_uniq compare (List.map (fun (r : Obs.Span.record) -> r.Obs.Span.hop) records)
  in
  Alcotest.(check bool) "bottleneck hop covered" true (List.mem "bottleneck" hops);
  Alcotest.(check bool) "edge hops covered" true (List.mem "edge:0" hops);
  (* The scenario dropped packets, so some spans must be Dropped; and
     complete spans must have non-negative phases. *)
  let dropped =
    List.exists
      (fun (r : Obs.Span.record) ->
        Obs.Span.outcome_to_string r.Obs.Span.outcome = "dropped")
      records
  in
  Alcotest.(check bool) "drop spans present" true dropped;
  List.iter
    (fun (r : Obs.Span.record) ->
      if Obs.Span.complete r then begin
        let nonneg = function Some d -> d >= 0.0 | None -> false in
        Alcotest.(check bool) "queue phase" true (nonneg (Obs.Span.queue_delay r));
        Alcotest.(check bool) "serialize phase" true
          (nonneg (Obs.Span.serialize_delay r));
        Alcotest.(check bool) "propagate phase" true
          (nonneg (Obs.Span.propagate_delay r))
      end)
    records

(* --- offline reproduction ------------------------------------------------- *)

let test_offline_reproduces_fig3 () =
  let duration = 20.0 in
  let tl = Timeline.create () in
  let rows =
    Scope.with_scope
      (Scope.v ~timeline:tl ())
      (fun () -> Ccsim_core.Fig3.run ~duration ~seed:42 ())
  in
  let series =
    Offline.filter (Offline.of_string (Timeline.to_ndjson tl)) ~name:Offline.elasticity_series_name
  in
  Alcotest.(check int) "five elasticity series" 5 (List.length series);
  List.iter
    (fun (row : Ccsim_core.Fig3.row) ->
      let s =
        List.find
          (fun (s : Offline.series) ->
            List.assoc_opt "scenario" s.Offline.labels = Some ("fig3/" ^ row.traffic))
          series
      in
      let off = Offline.elasticity_of ~warmup:10.0 ~hi:duration s in
      Alcotest.(check bool)
        ("p90 exact: " ^ row.traffic)
        true
        (Float.equal off.Offline.p90_elasticity row.p90_elasticity);
      Alcotest.(check bool)
        ("verdict: " ^ row.traffic)
        row.classified_elastic off.Offline.classified_elastic)
    rows

let test_explain_agrees_with_fig3 () =
  (* The `ccsim explain` path end to end: run fig3 under a timeline
     scope, round-trip the series through NDJSON, and check the offline
     per-flow diagnosis names the same cross-traffic verdict as the
     online Nimbus detector for every flow of every scenario. *)
  let duration = 20.0 in
  let tl = Timeline.create () in
  let rows =
    Scope.with_scope
      (Scope.v ~timeline:tl ())
      (fun () -> Ccsim_core.Fig3.run ~duration ~seed:42 ())
  in
  let series = Offline.of_string (Timeline.to_ndjson tl) in
  let explained = Offline.explain ~warmup:10.0 ~hi:duration series in
  Alcotest.(check bool) "non-empty diagnosis" true (explained <> []);
  List.iter
    (fun (row : Ccsim_core.Fig3.row) ->
      let scenario = "fig3/" ^ row.traffic in
      let flows =
        List.filter (fun (x : Offline.explain_row) -> x.Offline.ex_scenario = scenario)
          explained
      in
      Alcotest.(check bool) (scenario ^ " has flows") true (flows <> []);
      let expected =
        Some (if row.classified_elastic then "elastic" else "inelastic")
      in
      List.iter
        (fun (x : Offline.explain_row) ->
          Alcotest.(check (option string))
            (Printf.sprintf "%s/%s verdict" scenario x.Offline.ex_flow)
            expected x.Offline.ex_verdict)
        flows;
      (* The probe is a TCP flow: it must carry limit attribution and
         contended time over the whole connection. *)
      match
        List.find_opt (fun (x : Offline.explain_row) -> x.Offline.ex_flow = "probe") flows
      with
      | None -> Alcotest.fail (scenario ^ ": no probe flow in diagnosis")
      | Some probe ->
          Alcotest.(check bool) (scenario ^ " probe has a dominant limit") true
            (probe.Offline.ex_dominant <> "-");
          Alcotest.(check bool) (scenario ^ " probe contended") true
            (probe.Offline.ex_contended_s > 0.0))
    rows;
  (* The rendered table carries one row per flow. *)
  let rendered = Offline.render_explain ~warmup:10.0 ~hi:duration series in
  Alcotest.(check bool) "rendered table mentions the probe" true
    (contains ~sub:"| probe" rendered)

let test_offline_reproduces_fig2 () =
  let tl = Timeline.create () in
  let out =
    Scope.with_scope
      (Scope.v ~timeline:tl ())
      (fun () -> Ccsim_core.Fig2.run ~n:300 ~seed:42 ())
  in
  let report = out.Ccsim_core.Fig2.report in
  let series =
    Offline.filter (Offline.of_string (Timeline.to_ndjson tl)) ~name:Offline.ndt_series_name
  in
  Alcotest.(check int) "one series per candidate"
    report.M.Mlab_analysis.n_candidates (List.length series);
  let consistent =
    List.length
      (List.filter
         (fun s -> (Offline.changepoint_of s).Offline.contention_consistent)
         series)
  in
  Alcotest.(check int) "contention-consistent verdicts match"
    report.M.Mlab_analysis.n_contention_consistent consistent

(* --- watchdog coverage: every experiment ---------------------------------- *)

(* Reduced parameters: just past each experiment's warmup so steady-state
   windows are non-empty while the sweep stays fast. *)
let reduced_params (e : E.t) =
  match e.kind with
  | E.Sized _ -> (None, Some 200)
  | E.Timed _ ->
      let d =
        match e.id with
        | "e2" | "e3" | "e4" | "e7" -> 7.0
        | "e5" -> 17.0
        | "e6" -> 24.0
        | "x3" -> 8.0
        | "x4" -> 27.0
        | "a4" -> 17.0
        | _ -> 12.0
      in
      (Some d, None)

let test_watchdog_all_experiments () =
  List.iter
    (fun (e : E.t) ->
      let duration, n = reduced_params e in
      let w = Watchdog.create () in
      let tl = Timeline.create () in
      Watchdog.watch_timeline w tl;
      let out =
        Scope.with_scope
          (Scope.v ~timeline:tl ~watchdog:w ())
          (fun () -> e.render ?duration ?n ~seed:42 ())
      in
      Alcotest.(check bool) (e.id ^ " rendered") true (String.length out > 0);
      match Watchdog.violation w with
      | None -> ()
      | Some v -> Alcotest.fail (e.id ^ ": " ^ Watchdog.one_line v))
    E.all

let suite =
  [
    Alcotest.test_case "timeline: record and points" `Quick test_timeline_record_points;
    Alcotest.test_case "timeline: invalid arguments" `Quick test_timeline_invalid_args;
    Alcotest.test_case "timeline: decimation bounds memory" `Quick test_timeline_decimation;
    Alcotest.test_case "timeline: ordering violation latched" `Quick
      test_timeline_ordering_latch;
    Alcotest.test_case "timeline: ndjson round-trips exactly" `Quick
      test_timeline_ndjson_roundtrip;
    Alcotest.test_case "timeline: csv export" `Quick test_timeline_csv;
    Alcotest.test_case "watchdog: invalid interval" `Quick test_watchdog_invalid_interval;
    Alcotest.test_case "watchdog: check, violation, latch" `Quick
      test_watchdog_check_and_latch;
    Alcotest.test_case "watchdog: watches timeline ordering" `Quick
      test_watchdog_watch_timeline;
    Alcotest.test_case "recorder: capacity flag validation" `Quick
      test_recorder_capacity_validation;
    Alcotest.test_case "metrics: histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "metrics: quantiles at bucket boundaries" `Quick
      test_histogram_quantile_bucket_boundaries;
    Alcotest.test_case "metrics: ndjson carries p50/p95/p99" `Quick
      test_histogram_ndjson_has_quantiles;
    Alcotest.test_case "profiler: sim-seconds speedup" `Quick test_profiler_sim_speedup;
    Alcotest.test_case "engine: timeline driver samples probes" `Quick
      test_engine_samples_probes;
    Alcotest.test_case "engine: drivers terminate idle runs" `Quick
      test_engine_drivers_terminate;
    Alcotest.test_case "e2e: scenario populates timeline series" `Slow
      test_e2e_timeline_series;
    Alcotest.test_case "e2e: watchdog passes a congested run" `Slow test_e2e_watchdog_passes;
    Alcotest.test_case "e2e: corrupted counter trips conservation" `Quick
      test_e2e_fault_injection;
    Alcotest.test_case "e2e: timeline+watchdog do not change results" `Slow
      test_e2e_instrumentation_identical;
    Alcotest.test_case "chrome trace: structurally valid" `Slow test_chrome_trace_structure;
    Alcotest.test_case "chrome trace: golden field order and sort" `Quick
      test_chrome_trace_golden;
    Alcotest.test_case "spans: e2e coverage, results unchanged" `Slow test_spans_e2e;
    Alcotest.test_case "offline: reproduces fig3 verdicts" `Slow test_offline_reproduces_fig3;
    Alcotest.test_case "offline: explain agrees with fig3" `Slow
      test_explain_agrees_with_fig3;
    Alcotest.test_case "offline: reproduces fig2 verdicts" `Slow test_offline_reproduces_fig2;
    Alcotest.test_case "watchdog: all experiments pass --check" `Slow
      test_watchdog_all_experiments;
  ]
