(* Unit and property tests for ccsim_util. *)

module U = Ccsim_util

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual = Alcotest.(check (float tolerance)) msg expected actual

(* --- Units --------------------------------------------------------------- *)

let test_units_conversions () =
  check_float "bits of bytes" 8.0 (U.Units.bits_of_bytes 1);
  Alcotest.(check int) "bytes of bits" 125 (U.Units.bytes_of_bits 1000.0);
  check_float "mbps" 1e6 (U.Units.mbps 1.0);
  check_float "kbps" 1e3 (U.Units.kbps 1.0);
  check_float "gbps" 1e9 (U.Units.gbps 1.0);
  check_float "to_mbps" 42.0 (U.Units.to_mbps 42e6);
  check_float "ms" 0.005 (U.Units.ms 5.0);
  check_float "us" 5e-6 (U.Units.us 5.0);
  check_float "to_ms" 5.0 (U.Units.to_ms 0.005)

let test_units_transmit_time () =
  (* 1500 bytes at 12 Mbit/s = 1 ms. *)
  check_float "serialization" 0.001
    (U.Units.seconds_to_transmit ~size_bytes:1500 ~rate_bps:12e6);
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Units.seconds_to_transmit: rate must be positive") (fun () ->
      ignore (U.Units.seconds_to_transmit ~size_bytes:1500 ~rate_bps:0.0))

let test_units_bdp () =
  Alcotest.(check int) "bdp bytes" 125_000 (U.Units.bdp_bytes ~rate_bps:10e6 ~rtt_s:0.1);
  check_close "sub-packet bdp" 1e-6 0.5
    (U.Units.bdp_packets ~rate_bps:80e3 ~rtt_s:0.1 ~mss:2000)

(* --- Rng ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = U.Rng.create 1234 and b = U.Rng.create 1234 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (U.Rng.bits64 a) (U.Rng.bits64 b)
  done

let test_rng_split_independence () =
  let parent = U.Rng.create 99 in
  let child = U.Rng.split parent in
  (* The child must not replay the parent's stream. *)
  let p = U.Rng.bits64 parent and c = U.Rng.bits64 child in
  Alcotest.(check bool) "split produced distinct stream" true (p <> c)

let test_rng_float_range () =
  let rng = U.Rng.create 5 in
  for _ = 1 to 1000 do
    let x = U.Rng.float rng 3.0 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 3.0)
  done

let test_rng_int_uniformity () =
  let rng = U.Rng.create 6 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = U.Rng.int rng 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.08 && frac < 0.12))
    counts

let test_rng_exponential_mean () =
  let rng = U.Rng.create 7 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. U.Rng.exponential rng ~mean:2.5
  done;
  check_close "exponential mean" 0.1 2.5 (!sum /. float_of_int n)

let test_rng_normal_moments () =
  let rng = U.Rng.create 8 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> U.Rng.normal rng ~mean:10.0 ~stddev:3.0) in
  check_close "normal mean" 0.1 10.0 (U.Stats.mean samples);
  check_close "normal stddev" 0.1 3.0 (U.Stats.stddev samples)

let test_rng_bounded_pareto_support () =
  let rng = U.Rng.create 9 in
  for _ = 1 to 5000 do
    let x = U.Rng.bounded_pareto rng ~shape:1.2 ~scale:100.0 ~cap:10_000.0 in
    Alcotest.(check bool) "within bounds" true (x >= 100.0 && x <= 10_000.0)
  done

let test_rng_poisson_mean () =
  let rng = U.Rng.create 10 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + U.Rng.poisson rng ~mean:4.0
  done;
  check_close "poisson mean" 0.1 4.0 (float_of_int !sum /. float_of_int n)

let test_rng_zipf_rank1_most_common () =
  let rng = U.Rng.create 11 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let r = U.Rng.zipf rng ~n:10 ~s:1.2 in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "rank 2 beats rank 9" true (counts.(1) > counts.(8))

let test_rng_shuffle_permutation () =
  let rng = U.Rng.create 12 in
  let a = Array.init 50 Fun.id in
  U.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

(* --- Stats ----------------------------------------------------------------- *)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "mean" 3.0 (U.Stats.mean xs);
  check_float "variance" 2.5 (U.Stats.variance xs);
  check_float "median" 3.0 (U.Stats.median xs);
  check_float "min" 1.0 (U.Stats.minimum xs);
  check_float "max" 5.0 (U.Stats.maximum xs)

let test_stats_percentile_interpolation () =
  let xs = [| 10.0; 20.0 |] in
  check_float "p50 interpolates" 15.0 (U.Stats.percentile xs 50.0);
  check_float "p0 is min" 10.0 (U.Stats.percentile xs 0.0);
  check_float "p100 is max" 20.0 (U.Stats.percentile xs 100.0)

let test_stats_empty_rejected () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (U.Stats.mean [||]))

let test_stats_online_matches_batch () =
  let rng = U.Rng.create 20 in
  let xs = Array.init 1000 (fun _ -> U.Rng.normal rng ~mean:5.0 ~stddev:2.0) in
  let online = U.Stats.Online.create () in
  Array.iter (U.Stats.Online.add online) xs;
  check_close "online mean" 1e-9 (U.Stats.mean xs) (U.Stats.Online.mean online);
  check_close "online variance" 1e-6 (U.Stats.variance xs) (U.Stats.Online.variance online);
  check_float "online min" (U.Stats.minimum xs) (U.Stats.Online.min online);
  check_float "online max" (U.Stats.maximum xs) (U.Stats.Online.max online)

let test_stats_online_merge () =
  let a = U.Stats.Online.create () and b = U.Stats.Online.create () in
  let all = U.Stats.Online.create () in
  let rng = U.Rng.create 21 in
  for i = 1 to 500 do
    let x = U.Rng.float rng 10.0 in
    U.Stats.Online.add (if i mod 2 = 0 then a else b) x;
    U.Stats.Online.add all x
  done;
  let merged = U.Stats.Online.merge a b in
  check_close "merged mean" 1e-9 (U.Stats.Online.mean all) (U.Stats.Online.mean merged);
  check_close "merged var" 1e-6 (U.Stats.Online.variance all) (U.Stats.Online.variance merged)

(* --- Cdf -------------------------------------------------------------------- *)

let test_cdf_eval () =
  let cdf = U.Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "below all" 0.0 (U.Cdf.eval cdf 0.5);
  check_float "half" 0.5 (U.Cdf.eval cdf 2.0);
  check_float "all" 1.0 (U.Cdf.eval cdf 4.0);
  check_float "above all" 1.0 (U.Cdf.eval cdf 100.0)

let test_cdf_quantile () =
  let cdf = U.Cdf.of_samples [| 5.0; 1.0; 3.0 |] in
  check_float "q=0 smallest" 1.0 (U.Cdf.quantile cdf 0.0);
  check_float "q=1 largest" 5.0 (U.Cdf.quantile cdf 1.0);
  check_float "q=0.5 middle" 3.0 (U.Cdf.quantile cdf 0.5)

let test_cdf_points_monotone () =
  let rng = U.Rng.create 22 in
  let cdf = U.Cdf.of_samples (Array.init 100 (fun _ -> U.Rng.float rng 50.0)) in
  let points = U.Cdf.points cdf in
  let rec check = function
    | (x1, f1) :: ((x2, f2) :: _ as rest) ->
        Alcotest.(check bool) "x increasing" true (x1 < x2);
        Alcotest.(check bool) "F increasing" true (f1 < f2);
        check rest
    | [ (_, f) ] -> check_float "last point reaches 1" 1.0 f
    | [] -> ()
  in
  check points

(* --- Timeseries --------------------------------------------------------------- *)

let mk_series points =
  let ts = U.Timeseries.create () in
  List.iter (fun (time, value) -> U.Timeseries.add ts ~time ~value) points;
  ts

let test_timeseries_value_at () =
  let ts = mk_series [ (0.0, 1.0); (1.0, 2.0); (2.0, 3.0) ] in
  check_float "exact" 2.0 (U.Timeseries.value_at ts 1.0);
  check_float "hold" 2.0 (U.Timeseries.value_at ts 1.9);
  check_float "last" 3.0 (U.Timeseries.value_at ts 10.0)

let test_timeseries_monotone_rejected () =
  let ts = mk_series [ (1.0, 1.0) ] in
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Timeseries.add: times must be non-decreasing") (fun () ->
      U.Timeseries.add ts ~time:0.5 ~value:2.0)

let test_timeseries_rate_of_cumulative () =
  (* A counter rising 100 per second sampled at 0.5s -> rate 100. *)
  let ts = mk_series (List.init 21 (fun i -> (0.5 *. float_of_int i, 50.0 *. float_of_int i))) in
  let rate = U.Timeseries.rate_of_cumulative ts ~interval:1.0 in
  Array.iter (fun v -> check_close "rate" 1e-6 100.0 v) (U.Timeseries.values rate)

let test_timeseries_ewma_converges () =
  let ts = mk_series (List.init 100 (fun i -> (float_of_int i, 10.0))) in
  let smoothed = U.Timeseries.ewma ts ~alpha:0.3 in
  match U.Timeseries.last smoothed with
  | Some (_, v) -> check_close "ewma of constant" 1e-9 10.0 v
  | None -> Alcotest.fail "empty ewma"

let test_timeseries_between () =
  let ts = mk_series [ (0.0, 1.0); (1.0, 2.0); (2.0, 3.0); (3.0, 4.0) ] in
  let sub = U.Timeseries.between ts ~lo:1.0 ~hi:2.0 in
  Alcotest.(check int) "two points" 2 (U.Timeseries.length sub)

let test_timeseries_time_weighted_mean () =
  (* 1.0 for one second then 3.0 for one second -> mean 2. *)
  let ts = mk_series [ (0.0, 1.0); (1.0, 3.0) ] in
  check_close "time-weighted" 1e-9 2.0 (U.Timeseries.time_weighted_mean ts ~until:2.0)

(* --- Fft --------------------------------------------------------------------- *)

let test_fft_roundtrip () =
  let rng = U.Rng.create 30 in
  let signal = Array.init 64 (fun _ -> Complex.{ re = U.Rng.float rng 2.0 -. 1.0; im = 0.0 }) in
  let back = U.Fft.inverse (U.Fft.transform signal) in
  Array.iteri
    (fun i c ->
      check_close "roundtrip re" 1e-9 signal.(i).Complex.re c.Complex.re;
      check_close "roundtrip im" 1e-9 0.0 c.Complex.im)
    back

let test_fft_pure_tone () =
  let n = 256 and sample_rate = 100.0 and freq = 12.5 in
  let signal =
    Array.init n (fun i ->
        3.0 *. sin (2.0 *. Float.pi *. freq *. float_of_int i /. sample_rate))
  in
  let mag = U.Fft.magnitude_at signal ~sample_rate ~freq in
  check_close "tone amplitude recovered" 0.05 3.0 mag;
  let off = U.Fft.magnitude_at signal ~sample_rate ~freq:30.0 in
  Alcotest.(check bool) "off-tone magnitude small" true (off < 0.1)

let test_fft_parseval () =
  let rng = U.Rng.create 31 in
  let n = 128 in
  let signal = Array.init n (fun _ -> U.Rng.float rng 2.0 -. 1.0) in
  let spectrum = U.Fft.real_transform signal in
  let time_energy = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 signal in
  let freq_energy =
    Array.fold_left (fun acc c -> acc +. (Complex.norm2 c)) 0.0 spectrum /. float_of_int n
  in
  check_close "parseval" 1e-6 time_energy freq_energy

let test_fft_power_of_two () =
  Alcotest.(check bool) "1 is power" true (U.Fft.is_power_of_two 1);
  Alcotest.(check bool) "512 is power" true (U.Fft.is_power_of_two 512);
  Alcotest.(check bool) "100 is not" false (U.Fft.is_power_of_two 100);
  Alcotest.(check int) "next pow2" 128 (U.Fft.next_power_of_two 65)

let test_fft_mean_removed () =
  let signal = [| 5.0; 7.0; 9.0; 7.0 |] in
  let centered = U.Fft.mean_removed signal in
  check_close "zero mean" 1e-12 0.0 (U.Stats.mean centered)

(* --- Fairness ----------------------------------------------------------------- *)

let test_jain_extremes () =
  check_float "all equal" 1.0 (U.Fairness.jain_index [| 5.0; 5.0; 5.0; 5.0 |]);
  check_close "one hog" 1e-9 0.25 (U.Fairness.jain_index [| 8.0; 0.0; 0.0; 0.0 |]);
  check_float "all zero treated as fair" 1.0 (U.Fairness.jain_index [| 0.0; 0.0 |])

let test_max_min_basic () =
  let alloc = U.Fairness.max_min_allocation ~capacity:10.0 ~demands:[| infinity; infinity |] in
  check_close "even split a" 1e-9 5.0 alloc.(0);
  check_close "even split b" 1e-9 5.0 alloc.(1)

let test_max_min_demand_bound () =
  let alloc =
    U.Fairness.max_min_allocation ~capacity:10.0 ~demands:[| 2.0; infinity; infinity |]
  in
  check_close "small demand met" 1e-9 2.0 alloc.(0);
  check_close "rest split" 1e-9 4.0 alloc.(1);
  check_close "rest split 2" 1e-9 4.0 alloc.(2)

let test_max_min_underload () =
  let alloc = U.Fairness.max_min_allocation ~capacity:100.0 ~demands:[| 5.0; 10.0 |] in
  check_close "demand met a" 1e-9 5.0 alloc.(0);
  check_close "demand met b" 1e-9 10.0 alloc.(1)

let test_max_min_weighted () =
  let alloc =
    U.Fairness.max_min_with_weights ~capacity:30.0 ~demands:[| infinity; infinity |]
      ~weights:[| 1.0; 2.0 |]
  in
  check_close "weight 1" 1e-9 10.0 alloc.(0);
  check_close "weight 2" 1e-9 20.0 alloc.(1)

let test_harm () =
  check_float "no harm" 0.0 (U.Fairness.harm ~solo:10.0 ~contended:10.0);
  check_float "half harm" 0.5 (U.Fairness.harm ~solo:10.0 ~contended:5.0);
  check_float "clamped" 1.0 (U.Fairness.harm ~solo:10.0 ~contended:(-1.0));
  check_float "latency harm" 0.5 (U.Fairness.harm_lower_is_better ~solo:5.0 ~contended:10.0)

let test_starvation_count () =
  Alcotest.(check int) "two starved samples" 2
    (U.Fairness.starvation_episodes
       ~throughput:[| 0.0; 5.0; 0.4; 5.0 |]
       ~fair_share:5.0 ~threshold:0.1)

(* --- Histogram --------------------------------------------------------------- *)

let test_histogram_binning () =
  let h = U.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  U.Histogram.add_all h [| 0.5; 1.5; 1.6; 9.9; -1.0; 10.0 |];
  Alcotest.(check int) "bin 0" 1 (U.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (U.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (U.Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (U.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (U.Histogram.overflow h);
  Alcotest.(check int) "total" 6 (U.Histogram.count h);
  Alcotest.(check int) "mode" 1 (U.Histogram.mode_bin h)

let test_histogram_edges () =
  let h = U.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let lo, hi = U.Histogram.bin_edges h 2 in
  check_float "edge lo" 4.0 lo;
  check_float "edge hi" 6.0 hi

(* --- Ring buffer --------------------------------------------------------------- *)

let test_ring_buffer_wraparound () =
  let rb = U.Ring_buffer.create ~capacity:3 in
  List.iter (U.Ring_buffer.push rb) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "length capped" 3 (U.Ring_buffer.length rb);
  check_float "oldest" 3.0 (U.Ring_buffer.oldest rb);
  check_float "newest" 5.0 (U.Ring_buffer.newest rb);
  Alcotest.(check (array (float 1e-9))) "snapshot" [| 3.0; 4.0; 5.0 |] (U.Ring_buffer.to_array rb)

let test_ring_buffer_stats () =
  let rb = U.Ring_buffer.create ~capacity:4 in
  List.iter (U.Ring_buffer.push rb) [ 4.0; 1.0; 3.0 ];
  check_float "max" 4.0 (U.Ring_buffer.max_value rb);
  check_float "min" 1.0 (U.Ring_buffer.min_value rb);
  check_close "mean" 1e-9 (8.0 /. 3.0) (U.Ring_buffer.mean rb);
  U.Ring_buffer.clear rb;
  Alcotest.(check int) "cleared" 0 (U.Ring_buffer.length rb)

(* --- Table ----------------------------------------------------------------------- *)

let test_table_renders () =
  let t = U.Table.create ~columns:[ ("name", U.Table.Left); ("value", U.Table.Right) ] in
  U.Table.add_row t [ "alpha"; "1.00" ];
  U.Table.add_row t [ "b"; "42.50" ];
  let s = U.Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0
    &&
    let re_found = ref false in
    String.split_on_char '\n' s
    |> List.iter (fun line -> if String.length line > 0 && String.sub line 0 1 = "|" then re_found := true);
    !re_found)

let test_table_mismatch_rejected () =
  let t = U.Table.create ~columns:[ ("a", U.Table.Left) ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> U.Table.add_row t [ "x"; "y" ])

let test_feq_special_values () =
  let eq = U.Feq.feq ~eps:0.0 in
  Alcotest.(check bool) "inf = inf" true (eq infinity infinity);
  Alcotest.(check bool) "-inf = -inf" true (eq neg_infinity neg_infinity);
  Alcotest.(check bool) "inf <> -inf" false (eq infinity neg_infinity);
  Alcotest.(check bool) "nan <> nan (as with =)" false (eq nan nan);
  Alcotest.(check bool) "0. = -0. (as with =)" true (eq 0.0 (-0.0));
  Alcotest.(check bool) "inf <> max_float" false (eq infinity max_float)

let test_feq_tolerance () =
  Alcotest.(check bool) "within eps" true (U.Feq.feq ~eps:1e-9 1.0 (1.0 +. 1e-10));
  Alcotest.(check bool) "outside eps" false (U.Feq.feq ~eps:1e-12 1.0 (1.0 +. 1e-9));
  Alcotest.(check bool) "fne negates" true (U.Feq.fne ~eps:1e-12 1.0 (1.0 +. 1e-9));
  Alcotest.check_raises "negative eps rejected"
    (Invalid_argument "Feq.feq: eps must be non-negative") (fun () ->
      ignore (U.Feq.feq ~eps:(-1e-9) 1.0 1.0))

(* --- QCheck properties ------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    (* The refactor contract behind replacing every bare float [=]:
       at eps = 0 Feq.feq IS structural equality — over the full float
       range including nan and the infinities — so fig2/fig3 verdicts
       cannot move. *)
    Test.make ~name:"feq ~eps:0. coincides with structural =" ~count:2000
      (pair float float)
      (fun (a, b) -> U.Feq.feq ~eps:0.0 a b = (a = b));
    Test.make ~name:"feq ~eps:0. on equal floats matches = reflexivity" ~count:500
      float
      (fun a -> U.Feq.feq ~eps:0.0 a a = (a = a));
    Test.make ~name:"fne is the negation of feq" ~count:500
      (triple (float_range 0.0 1e-6) float float)
      (fun (eps, a, b) -> U.Feq.fne ~eps a b = not (U.Feq.feq ~eps a b));
    Test.make ~name:"jain index in [1/n, 1]" ~count:500
      (list_of_size (Gen.int_range 1 20) (float_range 0.0 1000.0))
      (fun xs ->
        let a = Array.of_list xs in
        let j = U.Fairness.jain_index a in
        j >= (1.0 /. float_of_int (Array.length a)) -. 1e-9 && j <= 1.0 +. 1e-9);
    Test.make ~name:"max-min conserves capacity under backlog" ~count:300
      (pair (float_range 1.0 1000.0) (int_range 1 10))
      (fun (capacity, n) ->
        let alloc =
          U.Fairness.max_min_allocation ~capacity ~demands:(Array.make n infinity)
        in
        Float.abs (Array.fold_left ( +. ) 0.0 alloc -. capacity) < 1e-6);
    Test.make ~name:"cdf eval is monotone" ~count:200
      (list_of_size (Gen.int_range 1 50) (float_range (-100.0) 100.0))
      (fun xs ->
        let cdf = U.Cdf.of_samples (Array.of_list xs) in
        let a = U.Cdf.eval cdf (-50.0) and b = U.Cdf.eval cdf 0.0 and c = U.Cdf.eval cdf 50.0 in
        a <= b && b <= c);
    Test.make ~name:"percentile bounded by min/max" ~count:300
      (pair (list_of_size (Gen.int_range 1 50) (float_range (-10.0) 10.0)) (float_range 0.0 100.0))
      (fun (xs, p) ->
        let a = Array.of_list xs in
        let v = U.Stats.percentile a p in
        v >= U.Stats.minimum a -. 1e-9 && v <= U.Stats.maximum a +. 1e-9);
    Test.make ~name:"ring buffer keeps the most recent values" ~count:200
      (list_of_size (Gen.int_range 1 100) (float_range 0.0 1.0))
      (fun xs ->
        let rb = U.Ring_buffer.create ~capacity:10 in
        List.iter (U.Ring_buffer.push rb) xs;
        let expected =
          let n = List.length xs in
          let skip = max 0 (n - 10) in
          List.filteri (fun i _ -> i >= skip) xs
        in
        U.Ring_buffer.to_array rb = Array.of_list expected);
    Test.make ~name:"fft roundtrip preserves real signals" ~count:50
      (list_of_size (Gen.return 32) (float_range (-5.0) 5.0))
      (fun xs ->
        let signal = Array.of_list xs in
        let back = U.Fft.inverse (U.Fft.real_transform signal) in
        Array.for_all2
          (fun x c -> Float.abs (x -. c.Complex.re) < 1e-9)
          signal back);
  ]

(* --- Ode ------------------------------------------------------------------ *)

(* dy/dt = -y from y0 = 1 has the closed form e^{-t}: Euler must land
   within its O(dt) global error, RK4 within O(dt^4). *)
let decay ~t_s:_ ~y ~dy =
  for i = 0 to Array.length y - 1 do
    dy.(i) <- -.y.(i)
  done

let test_ode_euler_decay () =
  let ws = U.Ode.workspace 2 in
  let y = [| 1.0; 2.0 |] in
  let dt_s = 0.001 in
  let reached = U.Ode.integrate ws `Euler decay ~t0_s:0.0 ~t1_s:1.0 ~dt_s y in
  Alcotest.(check bool) "reached horizon" true (reached >= 1.0);
  check_close "euler e^-1" 1e-3 (Float.exp (-1.0)) y.(0);
  check_close "euler scales linearly" 1e-3 (2.0 *. Float.exp (-1.0)) y.(1)

let test_ode_rk4_decay () =
  let ws = U.Ode.workspace 1 in
  let y = [| 1.0 |] in
  ignore (U.Ode.integrate ws `Rk4 decay ~t0_s:0.0 ~t1_s:1.0 ~dt_s:0.01 y);
  check_close "rk4 e^-1" 1e-9 (Float.exp (-1.0)) y.(0)

let test_ode_rk4_beats_euler () =
  let run method_ =
    let ws = U.Ode.workspace 1 in
    let y = [| 1.0 |] in
    ignore (U.Ode.integrate ws method_ decay ~t0_s:0.0 ~t1_s:2.0 ~dt_s:0.05 y);
    Float.abs (y.(0) -. Float.exp (-2.0))
  in
  Alcotest.(check bool) "rk4 error well under euler's" true (run `Rk4 < 0.001 *. run `Euler)

let test_ode_time_dependent () =
  (* dy/dt = 2t integrates to t^2: exercises the t_s argument (RK4's
     half-step evaluations hit t + dt/2). *)
  let f ~t_s ~y:_ ~dy = dy.(0) <- 2.0 *. t_s in
  let ws = U.Ode.workspace 1 in
  let y = [| 0.0 |] in
  ignore (U.Ode.integrate ws `Rk4 f ~t0_s:0.0 ~t1_s:3.0 ~dt_s:0.1 y);
  check_close "t^2 at 3" 1e-9 9.0 y.(0)

let test_ode_invalid_args () =
  let ws = U.Ode.workspace 2 in
  Alcotest.(check int) "dim" 2 (U.Ode.dim ws);
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Ode.euler_step: state dimension mismatch") (fun () ->
      U.Ode.euler_step ws decay ~t_s:0.0 ~dt_s:0.1 [| 1.0 |]);
  Alcotest.check_raises "non-positive dt"
    (Invalid_argument "Ode.rk4_step: dt must be positive") (fun () ->
      U.Ode.rk4_step ws decay ~t_s:0.0 ~dt_s:0.0 [| 1.0; 2.0 |]);
  Alcotest.check_raises "zero dimension"
    (Invalid_argument "Ode.workspace: dimension must be positive") (fun () ->
      ignore (U.Ode.workspace 0))

let suite =
  [
    ("units: conversions", `Quick, test_units_conversions);
    ("ode: euler matches exponential decay", `Quick, test_ode_euler_decay);
    ("ode: rk4 matches exponential decay", `Quick, test_ode_rk4_decay);
    ("ode: rk4 error well under euler", `Quick, test_ode_rk4_beats_euler);
    ("ode: time-dependent derivative", `Quick, test_ode_time_dependent);
    ("ode: invalid arguments rejected", `Quick, test_ode_invalid_args);
    ("units: serialization time", `Quick, test_units_transmit_time);
    ("units: bdp", `Quick, test_units_bdp);
    ("rng: determinism", `Quick, test_rng_determinism);
    ("rng: split independence", `Quick, test_rng_split_independence);
    ("rng: float range", `Quick, test_rng_float_range);
    ("rng: int uniformity", `Quick, test_rng_int_uniformity);
    ("rng: exponential mean", `Quick, test_rng_exponential_mean);
    ("rng: normal moments", `Quick, test_rng_normal_moments);
    ("rng: bounded pareto support", `Quick, test_rng_bounded_pareto_support);
    ("rng: poisson mean", `Quick, test_rng_poisson_mean);
    ("rng: zipf ranks", `Quick, test_rng_zipf_rank1_most_common);
    ("rng: shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("stats: basics", `Quick, test_stats_basics);
    ("stats: percentile interpolation", `Quick, test_stats_percentile_interpolation);
    ("stats: empty rejected", `Quick, test_stats_empty_rejected);
    ("stats: online matches batch", `Quick, test_stats_online_matches_batch);
    ("stats: online merge", `Quick, test_stats_online_merge);
    ("cdf: eval", `Quick, test_cdf_eval);
    ("cdf: quantile", `Quick, test_cdf_quantile);
    ("cdf: points monotone", `Quick, test_cdf_points_monotone);
    ("timeseries: value_at holds", `Quick, test_timeseries_value_at);
    ("timeseries: monotone times enforced", `Quick, test_timeseries_monotone_rejected);
    ("timeseries: rate of cumulative", `Quick, test_timeseries_rate_of_cumulative);
    ("timeseries: ewma of constant", `Quick, test_timeseries_ewma_converges);
    ("timeseries: between", `Quick, test_timeseries_between);
    ("timeseries: time-weighted mean", `Quick, test_timeseries_time_weighted_mean);
    ("fft: roundtrip", `Quick, test_fft_roundtrip);
    ("fft: pure tone recovery", `Quick, test_fft_pure_tone);
    ("fft: parseval", `Quick, test_fft_parseval);
    ("fft: power-of-two helpers", `Quick, test_fft_power_of_two);
    ("fft: mean removal", `Quick, test_fft_mean_removed);
    ("fairness: jain extremes", `Quick, test_jain_extremes);
    ("fairness: max-min even split", `Quick, test_max_min_basic);
    ("fairness: max-min demand bound", `Quick, test_max_min_demand_bound);
    ("fairness: max-min underload", `Quick, test_max_min_underload);
    ("fairness: weighted max-min", `Quick, test_max_min_weighted);
    ("fairness: harm", `Quick, test_harm);
    ("fairness: starvation episodes", `Quick, test_starvation_count);
    ("histogram: binning", `Quick, test_histogram_binning);
    ("histogram: edges", `Quick, test_histogram_edges);
    ("ring buffer: wraparound", `Quick, test_ring_buffer_wraparound);
    ("ring buffer: stats and clear", `Quick, test_ring_buffer_stats);
    ("table: renders", `Quick, test_table_renders);
    ("table: arity check", `Quick, test_table_mismatch_rejected);
    ("feq: special values behave like =", `Quick, test_feq_special_values);
    ("feq: tolerance and fne", `Quick, test_feq_tolerance);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
