(* Tests for the TCP layer: RTT estimation, sender/receiver behaviour on
   real simulated paths, loss recovery, flow control, TCPInfo accounting. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Tcp = Ccsim_tcp
module U = Ccsim_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rtt_estimator ------------------------------------------------------------ *)

let test_rtt_first_sample () =
  let e = Tcp.Rtt_estimator.create () in
  Tcp.Rtt_estimator.observe e 0.1;
  check_float "srtt is the sample" 0.1 (Tcp.Rtt_estimator.srtt e);
  check_float "rttvar is half" 0.05 (Tcp.Rtt_estimator.rttvar e);
  check_float "min" 0.1 (Tcp.Rtt_estimator.min_rtt e)

let test_rtt_smoothing () =
  let e = Tcp.Rtt_estimator.create () in
  Tcp.Rtt_estimator.observe e 0.1;
  Tcp.Rtt_estimator.observe e 0.2;
  (* srtt = 7/8*0.1 + 1/8*0.2 *)
  check_float "smoothed" 0.1125 (Tcp.Rtt_estimator.srtt e);
  check_float "min keeps smallest" 0.1 (Tcp.Rtt_estimator.min_rtt e)

let test_rtt_rto_floor_and_backoff () =
  let e = Tcp.Rtt_estimator.create ~min_rto:0.2 () in
  Tcp.Rtt_estimator.observe e 0.01;
  check_float "rto floored" 0.2 (Tcp.Rtt_estimator.rto e);
  Tcp.Rtt_estimator.backoff e;
  check_float "doubled" 0.4 (Tcp.Rtt_estimator.rto e);
  Tcp.Rtt_estimator.backoff e;
  check_float "doubled again" 0.8 (Tcp.Rtt_estimator.rto e);
  Tcp.Rtt_estimator.observe e 0.01;
  check_float "sample resets backoff" 0.2 (Tcp.Rtt_estimator.rto e)

let test_rtt_initial_rto () =
  let e = Tcp.Rtt_estimator.create () in
  check_float "1s before samples" 1.0 (Tcp.Rtt_estimator.rto e)

let test_rtt_rejects_nonpositive () =
  let e = Tcp.Rtt_estimator.create () in
  Alcotest.check_raises "bad sample"
    (Invalid_argument "Rtt_estimator.observe: RTT must be positive") (fun () ->
      Tcp.Rtt_estimator.observe e 0.0)

(* --- connection over an ideal path --------------------------------------------- *)

let make_topo ?(rate = 10e6) ?(delay = 0.01) ?qdisc ?loss_every sim =
  let topo = Net.Topology.dumbbell sim ~rate_bps:rate ~delay_s:delay ?qdisc () in
  match loss_every with
  | None -> topo
  | Some n ->
      (* Wrap the forward entry to drop every n-th data packet once. *)
      let count = ref 0 in
      let orig = topo.fwd_entry in
      let entry ~flow pkt =
        incr count;
        if !count mod n = 0 && Net.Packet.is_data pkt && not pkt.Net.Packet.retx then ()
        else (orig ~flow) pkt
      in
      { topo with fwd_entry = entry }

let test_transfer_completes () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let completed = ref None in
  let conn =
    Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ())
      ~on_complete:(fun _ -> completed := Some (Sim.now sim))
      ()
  in
  (* Small enough that the slow-start burst fits in the default buffer:
     nothing on the path ever drops. *)
  Tcp.Sender.write conn.sender 150_000;
  Tcp.Sender.close conn.sender;
  Sim.run ~until:30.0 sim;
  Alcotest.(check bool) "completed" true (!completed <> None);
  Alcotest.(check int) "receiver got everything" 150_000
    (Tcp.Receiver.bytes_received conn.receiver);
  Alcotest.(check int) "sender agrees" 150_000 (Tcp.Sender.bytes_acked conn.sender);
  Alcotest.(check int) "no retransmits on a clean path" 0 (Tcp.Sender.segs_retrans conn.sender)

let test_transfer_with_random_loss () =
  let sim = Sim.create () in
  let topo = make_topo ~loss_every:50 sim in
  let completed = ref false in
  let conn =
    Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ())
      ~on_complete:(fun _ -> completed := true)
      ()
  in
  Tcp.Sender.write conn.sender 500_000;
  Tcp.Sender.close conn.sender;
  Sim.run ~until:60.0 sim;
  Alcotest.(check bool) "completed despite loss" true !completed;
  Alcotest.(check int) "receiver got everything" 500_000
    (Tcp.Receiver.bytes_received conn.receiver);
  Alcotest.(check bool) "retransmissions happened" true (Tcp.Sender.segs_retrans conn.sender > 0)

let test_rtt_measured_matches_path () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 ~delay:0.04 sim in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ()) () in
  Tcp.Sender.write conn.sender 100_000;
  Tcp.Sender.close conn.sender;
  Sim.run ~until:10.0 sim;
  (* Base RTT = 2 * (0.04 + 0.001 edge) = 0.082 plus serialization. *)
  let srtt = Tcp.Sender.srtt conn.sender in
  Alcotest.(check bool) "srtt near base rtt" true (srtt > 0.08 && srtt < 0.1)

let test_min_rtt_no_queueing_bias () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:5e6 ~delay:0.02 sim in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ()) () in
  Tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:10.0 sim;
  let min_rtt = Tcp.Sender.min_rtt conn.sender in
  Alcotest.(check bool) "min rtt close to propagation" true
    (min_rtt > 0.04 && min_rtt < 0.06)

let test_goodput_matches_link () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:10e6 ~delay:0.01 sim in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  Tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:30.0 sim;
  let goodput = Tcp.Connection.goodput_bps conn ~over:30.0 in
  (* Payload share of the wire rate is mss/(mss+header) ~ 96.5%. *)
  Alcotest.(check bool) "goodput near capacity" true (goodput > 8.5e6 && goodput < 10e6)

let test_rwnd_limits_throughput () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 ~delay:0.02 sim in
  (* Receiver drains at most 2 Mbit/s with a small buffer: flow must be
     receiver-limited well below capacity. *)
  let conn =
    Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ())
      ~rcv_buffer_bytes:20_000 ~consume_rate_bps:2e6 ()
  in
  Tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:20.0 sim;
  let goodput = Tcp.Connection.goodput_bps conn ~over:20.0 in
  Alcotest.(check bool) "pinned near consume rate" true (goodput < 3e6);
  let info = Tcp.Sender.info conn.sender in
  Alcotest.(check bool) "rwnd-limited time dominates" true
    (info.rwnd_limited_s > 0.5 *. info.elapsed_s)

let test_app_limited_accounting () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 ~delay:0.01 sim in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  (* Trickle 10 kB every 100 ms over a 100 Mbit/s path: app-limited. *)
  Sim.every sim ~interval:0.1 ~stop_after:9.9 (fun () -> Tcp.Sender.write conn.sender 10_000);
  Sim.run ~until:10.0 sim;
  let info = Tcp.Sender.info conn.sender in
  Alcotest.(check bool) "app-limited dominates" true
    (info.app_limited_s > 0.8 *. info.elapsed_s);
  Alcotest.(check bool) "cwnd-limited negligible" true
    (info.cwnd_limited_s < 0.1 *. info.elapsed_s)

(* --- Tcp_info ------------------------------------------------------------------ *)

let info_at ?(bytes_acked = 0) ?(app_limited_s = 0.0) ?(elapsed_s = 0.0) at =
  {
    Tcp.Tcp_info.at;
    bytes_acked;
    bytes_sent = bytes_acked;
    bytes_retrans = 0;
    segs_retrans = 0;
    cwnd_bytes = 0.0;
    srtt = 0.0;
    min_rtt = 0.0;
    delivery_rate_bps = 0.0;
    app_limited_s;
    rwnd_limited_s = 0.0;
    cwnd_limited_s = 0.0;
    pacing_limited_s = 0.0;
    recovery_s = 0.0;
    elapsed_s;
  }

let test_tcp_info_throughput_rejects_non_monotonic () =
  let prev = info_at ~bytes_acked:1000 2.0 in
  let err = Invalid_argument "Tcp_info.throughput_bps: snapshots out of order" in
  (* Identical timestamps: a zero-width window has no defined rate. *)
  Alcotest.check_raises "equal timestamps" err (fun () ->
      ignore (Tcp.Tcp_info.throughput_bps ~prev ~cur:(info_at ~bytes_acked:2000 2.0)));
  (* Reversed order must not return a negative rate. *)
  Alcotest.check_raises "reversed order" err (fun () ->
      ignore (Tcp.Tcp_info.throughput_bps ~prev ~cur:(info_at ~bytes_acked:2000 1.0)));
  (* Sanity: a valid pair still computes. *)
  let cur = info_at ~bytes_acked:2250 3.0 in
  check_float "valid pair" 10_000.0 (Tcp.Tcp_info.throughput_bps ~prev ~cur)

let test_tcp_info_app_limited_fraction_zero_elapsed () =
  (* A snapshot taken at connection age zero must read 0, not NaN/inf. *)
  let snap = info_at ~app_limited_s:0.0 ~elapsed_s:0.0 0.0 in
  check_float "zero elapsed" 0.0 (Tcp.Tcp_info.app_limited_fraction snap);
  let weird = info_at ~app_limited_s:1.5 ~elapsed_s:0.0 0.0 in
  check_float "zero elapsed, nonzero numerator" 0.0
    (Tcp.Tcp_info.app_limited_fraction weird);
  check_float "rwnd fraction too" 0.0 (Tcp.Tcp_info.rwnd_limited_fraction weird);
  let normal = info_at ~app_limited_s:2.0 ~elapsed_s:8.0 8.0 in
  check_float "normal fraction" 0.25 (Tcp.Tcp_info.app_limited_fraction normal)

let test_cwnd_limited_accounting () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:5e6 ~delay:0.05 sim in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ()) () in
  Tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:10.0 sim;
  let info = Tcp.Sender.info conn.sender in
  Alcotest.(check bool) "bulk flow is mostly cwnd-limited or busy" true
    (info.app_limited_s < 0.1 *. info.elapsed_s)

let test_pacing_respected () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let topo = make_topo ~rate:100e6 ~delay:0.001 sim in
  Net.Dispatch.register topo.fwd_dispatch ~flow:5 (fun _ ->
      arrivals := Sim.now sim :: !arrivals);
  let cca = Ccsim_cca.Cca.fixed_rate ~rate_bps:1.2e6 (* ~10 ms per 1500B packet *) in
  let sender = Tcp.Sender.create sim ~flow:5 ~cca ~path:(topo.fwd_entry ~flow:5) () in
  Tcp.Sender.write sender 30_000;
  Tcp.Sender.close sender;
  Sim.run ~until:5.0 sim;
  let times = Array.of_list (List.rev !arrivals) in
  Alcotest.(check bool) "several packets" true (Array.length times > 10);
  (* Check inter-arrival gaps reflect pacing, not a burst. *)
  let gaps = Array.init (Array.length times - 1) (fun i -> times.(i + 1) -. times.(i)) in
  Alcotest.(check bool) "paced gaps ~10ms" true (U.Stats.median gaps > 0.008)

let test_teardown_unregisters () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ()) () in
  Tcp.Connection.teardown topo conn;
  (* A second connection can reuse the flow id. *)
  let conn2 = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ()) () in
  Tcp.Sender.write conn2.sender 10_000;
  Tcp.Sender.close conn2.sender;
  Sim.run ~until:5.0 sim;
  Alcotest.(check int) "second connection works" 10_000
    (Tcp.Receiver.bytes_received conn2.receiver)

let test_write_validation () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let conn = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ()) () in
  Alcotest.check_raises "zero write" (Invalid_argument "Sender.write: bytes must be positive")
    (fun () -> Tcp.Sender.write conn.sender 0);
  Tcp.Sender.close conn.sender;
  Alcotest.check_raises "write after close" (Invalid_argument "Sender.write: sender is closed")
    (fun () -> Tcp.Sender.write conn.sender 10)

(* --- receiver-side specifics ------------------------------------------------------ *)

let test_receiver_out_of_order_reassembly () =
  let sim = Sim.create () in
  let acks = ref [] in
  let receiver =
    Tcp.Receiver.create sim ~flow:0 ~ack_path:(fun pkt -> acks := pkt.Net.Packet.ack :: !acks) ()
  in
  let seg seq = Net.Packet.data ~flow:0 ~seq ~payload_bytes:1000 ~sent_at:0.0 () in
  Tcp.Receiver.handle_data receiver (seg 0);
  Tcp.Receiver.handle_data receiver (seg 2000);
  (* hole at 1000 *)
  Tcp.Receiver.handle_data receiver (seg 1000);
  Alcotest.(check (list int)) "cumulative acks" [ 1000; 1000; 3000 ] (List.rev !acks);
  Alcotest.(check int) "contiguous bytes" 3000 (Tcp.Receiver.bytes_received receiver)

let test_receiver_sack_blocks () =
  let sim = Sim.create () in
  let sacks = ref [] in
  let receiver =
    Tcp.Receiver.create sim ~flow:0
      ~ack_path:(fun pkt -> sacks := pkt.Net.Packet.sacks :: !sacks)
      ()
  in
  let seg seq = Net.Packet.data ~flow:0 ~seq ~payload_bytes:1000 ~sent_at:0.0 () in
  Tcp.Receiver.handle_data receiver (seg 2000);
  (match !sacks with
  | [ [ (2000, 3000) ] ] -> ()
  | _ -> Alcotest.fail "expected a single SACK block [2000,3000)");
  Tcp.Receiver.handle_data receiver (seg 4000);
  (match !sacks with
  | [ (2000, 3000); (4000, 5000) ] :: _ -> ()
  | _ -> Alcotest.fail "expected two SACK blocks")

let test_receiver_duplicate_data_idempotent () =
  let sim = Sim.create () in
  let receiver = Tcp.Receiver.create sim ~flow:0 ~ack_path:(fun _ -> ()) () in
  let seg = Net.Packet.data ~flow:0 ~seq:0 ~payload_bytes:1000 ~sent_at:0.0 () in
  Tcp.Receiver.handle_data receiver seg;
  Tcp.Receiver.handle_data receiver seg;
  Alcotest.(check int) "no double count" 1000 (Tcp.Receiver.bytes_received receiver)

let test_receiver_window_shrinks_with_backlog () =
  let sim = Sim.create () in
  let receiver =
    Tcp.Receiver.create sim ~flow:0 ~ack_path:(fun _ -> ()) ~buffer_bytes:10_000
      ~consume_rate_bps:8_000.0 ()
  in
  let seg seq = Net.Packet.data ~flow:0 ~seq ~payload_bytes:1000 ~sent_at:0.0 () in
  for i = 0 to 7 do
    Tcp.Receiver.handle_data receiver (seg (i * 1000))
  done;
  (* 8 kB arrived instantly; app drained ~0: window should be ~2 kB. *)
  Alcotest.(check bool) "window shrank" true (Tcp.Receiver.advertised_window receiver <= 2_100);
  Sim.run ~until:5.0 sim;
  ignore (Sim.now sim);
  (* After 5 s the app drained 5 kB more. *)
  Alcotest.(check bool) "window recovers as the app drains" true
    (Tcp.Receiver.advertised_window receiver > 6_000)

(* --- UDP ---------------------------------------------------------------------------- *)

let test_udp_source_sink () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let sink = Tcp.Udp.Sink.create sim () in
  Net.Dispatch.register topo.fwd_dispatch ~flow:9 (Tcp.Udp.Sink.handle sink);
  let source = Tcp.Udp.Source.create sim ~flow:9 ~path:(topo.fwd_entry ~flow:9) () in
  Tcp.Udp.Source.send source ~bytes:5000;
  Sim.run sim;
  Alcotest.(check int) "bytes arrive" 5000 (Tcp.Udp.Sink.bytes_received sink);
  Alcotest.(check int) "split into mss packets" 4 (Tcp.Udp.Sink.packets_received sink)

let test_udp_jitter_zero_for_cbr_on_idle_link () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 sim in
  let sink = Tcp.Udp.Sink.create sim () in
  Net.Dispatch.register topo.fwd_dispatch ~flow:9 (Tcp.Udp.Sink.handle sink);
  let source = Tcp.Udp.Source.create sim ~flow:9 ~path:(topo.fwd_entry ~flow:9) () in
  Sim.every sim ~interval:0.01 ~stop_after:1.0 (fun () ->
      Tcp.Udp.Source.send source ~bytes:1000);
  Sim.run sim;
  Alcotest.(check bool) "near-zero jitter" true (Tcp.Udp.Sink.interarrival_jitter sink < 1e-4)

let suite =
  [
    ("rtt: first sample", `Quick, test_rtt_first_sample);
    ("rtt: smoothing", `Quick, test_rtt_smoothing);
    ("rtt: rto floor and backoff", `Quick, test_rtt_rto_floor_and_backoff);
    ("rtt: initial rto", `Quick, test_rtt_initial_rto);
    ("rtt: rejects non-positive", `Quick, test_rtt_rejects_nonpositive);
    ("tcp: clean transfer completes", `Quick, test_transfer_completes);
    ("tcp: transfer completes under loss", `Quick, test_transfer_with_random_loss);
    ("tcp: srtt matches path", `Quick, test_rtt_measured_matches_path);
    ("tcp: min rtt near propagation", `Quick, test_min_rtt_no_queueing_bias);
    ("tcp: goodput fills the link", `Quick, test_goodput_matches_link);
    ("tcp: receiver window limits throughput", `Quick, test_rwnd_limits_throughput);
    ("tcp: app-limited accounting", `Quick, test_app_limited_accounting);
    ("tcp: cwnd-limited accounting", `Quick, test_cwnd_limited_accounting);
    ("tcp_info: throughput rejects non-monotonic snapshots", `Quick,
     test_tcp_info_throughput_rejects_non_monotonic);
    ("tcp_info: app-limited fraction at zero elapsed", `Quick,
     test_tcp_info_app_limited_fraction_zero_elapsed);
    ("tcp: pacing respected", `Quick, test_pacing_respected);
    ("tcp: teardown unregisters", `Quick, test_teardown_unregisters);
    ("tcp: write validation", `Quick, test_write_validation);
    ("receiver: out-of-order reassembly", `Quick, test_receiver_out_of_order_reassembly);
    ("receiver: sack blocks", `Quick, test_receiver_sack_blocks);
    ("receiver: duplicates idempotent", `Quick, test_receiver_duplicate_data_idempotent);
    ("receiver: window tracks backlog", `Quick, test_receiver_window_shrinks_with_backlog);
    ("udp: source to sink", `Quick, test_udp_source_sink);
    ("udp: cbr jitter near zero", `Quick, test_udp_jitter_zero_for_cbr_on_idle_link);
  ]
