type t = {
  data : float array;
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity must be positive";
  { data = Array.make capacity 0.0; head = 0; len = 0 }

let capacity t = Array.length t.data
let length t = t.len
let is_full t = t.len = capacity t

let push t x =
  let cap = capacity t in
  if t.len < cap then begin
    t.data.((t.head + t.len) mod cap) <- x;
    t.len <- t.len + 1
  end
  else begin
    t.data.(t.head) <- x;
    t.head <- (t.head + 1) mod cap
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring_buffer.get: index out of range";
  t.data.((t.head + i) mod capacity t)

let newest t =
  if t.len = 0 then invalid_arg "Ring_buffer.newest: empty buffer";
  get t (t.len - 1)

let oldest t =
  if t.len = 0 then invalid_arg "Ring_buffer.oldest: empty buffer";
  get t 0

let to_array t = Array.init t.len (get t)

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let nonempty name t = if t.len = 0 then invalid_arg (name ^ ": empty buffer")

let max_value t =
  nonempty "Ring_buffer.max_value" t;
  fold t ~init:neg_infinity ~f:Float.max

let min_value t =
  nonempty "Ring_buffer.min_value" t;
  fold t ~init:infinity ~f:Float.min

let mean t =
  nonempty "Ring_buffer.mean" t;
  fold t ~init:0.0 ~f:( +. ) /. float_of_int t.len

let clear t =
  t.head <- 0;
  t.len <- 0
