lib/util/fft.ml: Array Complex Float List
