lib/util/table.mli:
