lib/util/timeseries.ml: Array Float List
