lib/util/csv.mli: Cdf Timeseries
