lib/util/units.mli:
