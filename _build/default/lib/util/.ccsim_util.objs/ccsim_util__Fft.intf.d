lib/util/fft.mli: Complex
