lib/util/fairness.mli:
