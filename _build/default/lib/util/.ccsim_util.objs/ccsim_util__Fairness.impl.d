lib/util/fairness.ml: Array Float
