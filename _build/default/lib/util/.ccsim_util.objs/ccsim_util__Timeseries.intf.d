lib/util/timeseries.mli:
