lib/util/rng.mli:
