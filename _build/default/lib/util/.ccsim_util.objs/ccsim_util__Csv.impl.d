lib/util/csv.ml: Buffer Cdf Fun List Printf String Timeseries
