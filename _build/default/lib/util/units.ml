let bits_of_bytes b = 8.0 *. float_of_int b
let bytes_of_bits b = int_of_float (Float.round (b /. 8.0))
let mbps x = x *. 1e6
let kbps x = x *. 1e3
let gbps x = x *. 1e9
let to_mbps r = r /. 1e6
let ms x = x /. 1e3
let us x = x /. 1e6
let to_ms t = t *. 1e3

let seconds_to_transmit ~size_bytes ~rate_bps =
  if rate_bps <= 0.0 then invalid_arg "Units.seconds_to_transmit: rate must be positive";
  bits_of_bytes size_bytes /. rate_bps

let bdp_bytes ~rate_bps ~rtt_s = bytes_of_bits (rate_bps *. rtt_s)

let bdp_packets ~rate_bps ~rtt_s ~mss =
  if mss <= 0 then invalid_arg "Units.bdp_packets: mss must be positive";
  rate_bps *. rtt_s /. bits_of_bytes mss

let mss = 1448
let header_bytes = 52
