(** Fixed-bin histograms, for jitter/delay distributions (experiment E7)
    and quick terminal visualisation of any sample set. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with equal-width bins plus
    implicit underflow/overflow counters. Requires [lo < hi], [bins > 0]. *)

val add : t -> float -> unit
val add_all : t -> float array -> unit
val count : t -> int
(** Total number of samples added, including under/overflow. *)

val bin_count : t -> int -> int
(** Samples in bin [i] (0-based). Raises [Invalid_argument] if out of range. *)

val underflow : t -> int
val overflow : t -> int

val bin_edges : t -> int -> float * float
(** Lower and upper edge of bin [i]. *)

val fraction_in : t -> int -> float
(** Fraction of all samples falling in bin [i]; 0 if no samples. *)

val mode_bin : t -> int
(** Index of the fullest bin (smallest index on ties). Raises
    [Invalid_argument] when no samples have been added. *)

val pp : Format.formatter -> t -> unit
(** Horizontal-bar rendering. *)
