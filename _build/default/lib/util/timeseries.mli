(** Time-stamped float series.

    Telemetry from the simulator (per-flow throughput, queue occupancy,
    Nimbus cross-traffic estimates) is collected as append-only (time,
    value) series and post-processed with the helpers here: resampling to
    a fixed grid, converting cumulative byte counters into rates, EWMA
    smoothing, windowed aggregation. *)

type t

val create : unit -> t

val add : t -> time:float -> value:float -> unit
(** Append a point. Times must be non-decreasing; raises
    [Invalid_argument] otherwise. *)

val length : t -> int
val is_empty : t -> bool

val times : t -> float array
val values : t -> float array

val last : t -> (float * float) option
(** Most recent (time, value), if any. *)

val to_list : t -> (float * float) list

val value_at : t -> float -> float
(** [value_at ts time] is the value of the most recent point at or before
    [time] (zero-order hold). Raises [Invalid_argument] if [time] precedes
    the first point or the series is empty. *)

val resample : t -> interval:float -> t
(** Zero-order-hold resampling onto a fixed grid starting at the first
    point's time. *)

val rate_of_cumulative : t -> interval:float -> t
(** Interpret values as a cumulative counter (e.g. bytes acked) and
    produce a per-interval rate series: point at time [t_i] holds
    [(c(t_i) - c(t_i - interval)) / interval]. *)

val ewma : t -> alpha:float -> t
(** Exponentially weighted moving average with smoothing factor
    [alpha] in (0, 1]: y_i = alpha * x_i + (1 - alpha) * y_(i-1). *)

val window_mean : t -> half_width:float -> time:float -> float
(** Mean of values with timestamps within [time +- half_width]; 0 if the
    window is empty. *)

val between : t -> lo:float -> hi:float -> t
(** Sub-series with times in [\[lo, hi\]]. *)

val map_values : t -> f:(float -> float) -> t

val mean_value : t -> float
(** Mean of the values. Raises [Invalid_argument] when empty. *)

val time_weighted_mean : t -> until:float -> float
(** Mean weighted by holding time (zero-order hold), up to [until].
    Raises [Invalid_argument] when empty or [until] precedes the start. *)
