(** Descriptive statistics over float samples.

    Two flavours: batch functions over arrays, and an online accumulator
    (Welford's algorithm) for streaming telemetry where storing every
    sample would be wasteful. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton arrays.
    Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics (the "linear" / type-7 method). Does not modify [xs].
    Raises [Invalid_argument] on an empty array or out-of-range [p]. *)

val median : float array -> float

val coefficient_of_variation : float array -> float
(** stddev / mean; raises [Invalid_argument] if the mean is zero. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
(** Full summary in one pass over a sorted copy. *)

val pp_summary : Format.formatter -> summary -> unit

(** Online mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased; 0 with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** Raises [Invalid_argument] when empty. *)

  val max : t -> float
  (** Raises [Invalid_argument] when empty. *)

  val merge : t -> t -> t
  (** Combine two accumulators (parallel Welford merge). *)
end
