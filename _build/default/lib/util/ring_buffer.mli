(** Fixed-capacity sliding window of floats.

    Nimbus keeps the last N cross-traffic samples for its FFT; windowed
    max/min filters (BBR's bandwidth filter) also build on this. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if capacity is not positive. *)

val push : t -> float -> unit
(** Append, evicting the oldest element when full. *)

val length : t -> int
val capacity : t -> int
val is_full : t -> bool

val get : t -> int -> float
(** [get t i] is the i-th oldest retained element; raises
    [Invalid_argument] out of range. *)

val newest : t -> float
(** Raises [Invalid_argument] when empty. *)

val oldest : t -> float
(** Raises [Invalid_argument] when empty. *)

val to_array : t -> float array
(** Oldest-to-newest snapshot. *)

val fold : t -> init:'a -> f:('a -> float -> 'a) -> 'a
val max_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val min_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val mean : t -> float
(** Raises [Invalid_argument] when empty. *)

val clear : t -> unit
