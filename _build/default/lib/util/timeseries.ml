type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = Array.make 16 0.0; values = Array.make 16 0.0; len = 0 }

let ensure_capacity t =
  if t.len = Array.length t.times then begin
    let cap = 2 * Array.length t.times in
    let times = Array.make cap 0.0 and values = Array.make cap 0.0 in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.times <- times;
    t.values <- values
  end

let add t ~time ~value =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Timeseries.add: times must be non-decreasing";
  ensure_capacity t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len
let is_empty t = t.len = 0
let times t = Array.sub t.times 0 t.len
let values t = Array.sub t.values 0 t.len
let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let to_list t =
  List.init t.len (fun i -> (t.times.(i), t.values.(i)))

(* Index of the last point with time <= given time. *)
let index_at t time =
  let rec loop lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if t.times.(mid) <= time then loop (mid + 1) hi else loop lo mid
  in
  loop 0 t.len

let value_at t time =
  if t.len = 0 then invalid_arg "Timeseries.value_at: empty series";
  let i = index_at t time in
  if i < 0 then invalid_arg "Timeseries.value_at: time precedes first point";
  t.values.(i)

let resample t ~interval =
  if interval <= 0.0 then invalid_arg "Timeseries.resample: interval must be positive";
  let out = create () in
  if t.len > 0 then begin
    let t0 = t.times.(0) and t_end = t.times.(t.len - 1) in
    let n = int_of_float (Float.floor ((t_end -. t0) /. interval)) in
    for i = 0 to n do
      let time = t0 +. (float_of_int i *. interval) in
      add out ~time ~value:(value_at t time)
    done
  end;
  out

let rate_of_cumulative t ~interval =
  if interval <= 0.0 then invalid_arg "Timeseries.rate_of_cumulative: interval must be positive";
  let out = create () in
  if t.len > 0 then begin
    let t0 = t.times.(0) and t_end = t.times.(t.len - 1) in
    let n = int_of_float (Float.floor ((t_end -. t0) /. interval)) in
    for i = 1 to n do
      let time = t0 +. (float_of_int i *. interval) in
      (* Clamp against floating-point drift below the first point. *)
      let before_time = Float.max t0 (time -. interval) in
      let now = value_at t time and before = value_at t before_time in
      add out ~time ~value:((now -. before) /. interval)
    done
  end;
  out

let ewma t ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Timeseries.ewma: alpha must be in (0,1]";
  let out = create () in
  let acc = ref nan in
  for i = 0 to t.len - 1 do
    let x = t.values.(i) in
    acc := if Float.is_nan !acc then x else (alpha *. x) +. ((1.0 -. alpha) *. !acc);
    add out ~time:t.times.(i) ~value:!acc
  done;
  out

let window_mean t ~half_width ~time =
  let sum = ref 0.0 and n = ref 0 in
  for i = 0 to t.len - 1 do
    if Float.abs (t.times.(i) -. time) <= half_width then begin
      sum := !sum +. t.values.(i);
      incr n
    end
  done;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let between t ~lo ~hi =
  let out = create () in
  for i = 0 to t.len - 1 do
    if t.times.(i) >= lo && t.times.(i) <= hi then add out ~time:t.times.(i) ~value:t.values.(i)
  done;
  out

let map_values t ~f =
  let out = create () in
  for i = 0 to t.len - 1 do
    add out ~time:t.times.(i) ~value:(f t.values.(i))
  done;
  out

let mean_value t =
  if t.len = 0 then invalid_arg "Timeseries.mean_value: empty series";
  let sum = ref 0.0 in
  for i = 0 to t.len - 1 do
    sum := !sum +. t.values.(i)
  done;
  !sum /. float_of_int t.len

let time_weighted_mean t ~until =
  if t.len = 0 then invalid_arg "Timeseries.time_weighted_mean: empty series";
  if until < t.times.(0) then invalid_arg "Timeseries.time_weighted_mean: until precedes start";
  let acc = ref 0.0 in
  let span = until -. t.times.(0) in
  if span <= 0.0 then t.values.(0)
  else begin
    for i = 0 to t.len - 1 do
      let t_i = t.times.(i) in
      if t_i < until then begin
        let t_next = if i + 1 < t.len then Float.min t.times.(i + 1) until else until in
        acc := !acc +. (t.values.(i) *. (t_next -. t_i))
      end
    done;
    !acc /. span
  end
