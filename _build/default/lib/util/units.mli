(** Unit conversions used throughout the simulator.

    Conventions: time is in seconds (float), data rates are in bits per
    second (float), packet and buffer sizes are in bytes (int). These
    helpers exist so that scenario descriptions can be written in the
    units the paper uses (Mbit/s, milliseconds, MSS-sized packets). *)

val bits_of_bytes : int -> float
(** [bits_of_bytes b] is [8 * b] as a float. *)

val bytes_of_bits : float -> int
(** [bytes_of_bits b] rounds [b / 8] to the nearest byte. *)

val mbps : float -> float
(** [mbps x] is [x] megabits per second expressed in bit/s. *)

val kbps : float -> float
(** [kbps x] is [x] kilobits per second expressed in bit/s. *)

val gbps : float -> float
(** [gbps x] is [x] gigabits per second expressed in bit/s. *)

val to_mbps : float -> float
(** [to_mbps r] converts a rate in bit/s to Mbit/s. *)

val ms : float -> float
(** [ms x] is [x] milliseconds expressed in seconds. *)

val us : float -> float
(** [us x] is [x] microseconds expressed in seconds. *)

val to_ms : float -> float
(** [to_ms t] converts seconds to milliseconds. *)

val seconds_to_transmit : size_bytes:int -> rate_bps:float -> float
(** Serialization delay of a packet of [size_bytes] on a link of
    [rate_bps]. Raises [Invalid_argument] if the rate is not positive. *)

val bdp_bytes : rate_bps:float -> rtt_s:float -> int
(** Bandwidth-delay product in bytes. *)

val bdp_packets : rate_bps:float -> rtt_s:float -> mss:int -> float
(** Bandwidth-delay product expressed in MSS-sized packets (fractional:
    sub-packet regimes, as in Chen et al., yield values below 1). *)

val mss : int
(** Default maximum segment size in bytes (1448, i.e. 1500 MTU minus
    40 bytes of IP/TCP headers and 12 bytes of timestamps). *)

val header_bytes : int
(** Bytes of header overhead accounted per segment (52). *)
