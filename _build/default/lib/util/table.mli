(** Aligned textual tables for experiment reports.

    The bench harness prints the same rows/series the paper reports; this
    keeps that output legible without a plotting stack. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Header row; raises [Invalid_argument] if no columns. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the cell count differs from the column
    count. *)

val add_rule : t -> unit
(** Horizontal separator at this position. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float with fixed [decimals] (default 2). *)

val cell_pct : float -> string
(** Format a fraction as a percentage with one decimal ("42.0%"). *)

val render : t -> string
val print : t -> unit
(** [render] followed by [print_string] and a flush. *)
