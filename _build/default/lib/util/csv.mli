(** Minimal CSV writing/reading for exporting experiment results.

    Quoting follows RFC 4180: fields containing commas, quotes, or
    newlines are double-quoted with inner quotes doubled. *)

val escape_field : string -> string
(** Quote a field if needed. *)

val row_to_string : string list -> string
(** One CSV line, without the trailing newline. *)

val to_string : header:string list -> string list list -> string
(** Full document with header. Raises [Invalid_argument] if any row's
    arity differs from the header's. *)

val write_file : path:string -> header:string list -> string list list -> unit

val parse_line : string -> string list
(** Parse one line (handles quoted fields; raises [Invalid_argument] on
    an unterminated quote). *)

val of_timeseries : Timeseries.t -> names:string * string -> string
(** Two-column CSV ("time,value" by default naming) from a series. *)

val of_cdf : Cdf.t -> string
(** "value,cumulative_probability" rows from an ECDF's points. *)
