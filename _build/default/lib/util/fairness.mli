(** Fairness and harm metrics for bandwidth allocations.

    The paper's framing contrasts three lenses on "who got what":
    Jain's fairness index [4], max-min fair shares enforced by fair
    queueing [5], and Ware et al.'s harm metric [68] which compares an
    allocation against the solo (uncontended) performance. *)

val jain_index : float array -> float
(** Jain's fairness index: (Σx)² / (n · Σx²); 1 when all equal, 1/n when
    one flow takes everything. Raises [Invalid_argument] on an empty array
    or any negative allocation; returns 1.0 when all allocations are 0. *)

val max_min_allocation : capacity:float -> demands:float array -> float array
(** Progressive-filling max-min fair allocation of [capacity] among flows
    with the given demands (a demand of [infinity] means persistently
    backlogged). Raises [Invalid_argument] on negative capacity or
    demands. *)

val max_min_with_weights :
  capacity:float -> demands:float array -> weights:float array -> float array
(** Weighted max-min (what WFQ/DRR with per-flow quanta enforces). *)

val harm : solo:float -> contended:float -> float
(** Ware et al.'s harm for a "more is better" metric such as throughput:
    (solo − contended) / solo, clamped to [0, 1]. Zero when contention did
    not hurt. Raises [Invalid_argument] if [solo <= 0]. *)

val harm_lower_is_better : solo:float -> contended:float -> float
(** Harm for a "less is better" metric such as latency:
    (contended − solo) / contended, clamped to [0, 1]. Raises
    [Invalid_argument] if [contended <= 0]. *)

val throughput_shares : float array -> float array
(** Normalize allocations to fractions of their sum (uniform shares when
    the sum is zero). *)

val starvation_episodes :
  throughput:float array -> fair_share:float -> threshold:float -> int
(** Count of samples in which throughput fell below [threshold] *
    [fair_share]; the sub-packet-regime experiment (E6) uses this to count
    starvation à la Chen et al. *)
