(** Radix-2 Cooley–Tukey fast Fourier transform.

    The Nimbus elasticity detector needs the spectral magnitude of the
    cross-traffic estimate at the probe's pulse frequency; this module
    provides exactly that, with no external dependencies. *)

val transform : Complex.t array -> Complex.t array
(** In-order FFT of an array whose length must be a power of two (raises
    [Invalid_argument] otherwise). Input is not modified. *)

val inverse : Complex.t array -> Complex.t array
(** Inverse FFT (normalized by 1/n). *)

val real_transform : float array -> Complex.t array
(** FFT of a real-valued signal (zero imaginary parts). *)

val magnitude_spectrum : float array -> float array
(** [magnitude_spectrum signal] is the per-bin magnitude |X_k| for
    k in [0, n/2], i.e. the one-sided spectrum. Length must be a power of
    two. *)

val bin_frequency : n:int -> sample_rate:float -> int -> float
(** [bin_frequency ~n ~sample_rate k] is the physical frequency of bin
    [k] for an [n]-point transform. *)

val frequency_bin : n:int -> sample_rate:float -> float -> int
(** Nearest bin index for a physical frequency. *)

val magnitude_at : float array -> sample_rate:float -> freq:float -> float
(** One-sided magnitude near frequency [freq]: the maximum magnitude over
    the bin holding [freq] and its two neighbours (tolerates spectral
    leakage when the pulse frequency falls between bins), normalized by
    n/2 so a pure sinusoid of amplitude A reports ~A. *)

val is_power_of_two : int -> bool

val next_power_of_two : int -> int
(** Smallest power of two >= the argument (argument must be positive). *)

val hann_window : float array -> float array
(** Apply a Hann window (reduces leakage for non-bin-aligned tones). *)

val mean_removed : float array -> float array
(** Subtract the mean (removes the DC component before analysis). *)
