let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string fields = String.concat "," (List.map escape_field fields)

let to_string ~header rows =
  let width = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg (Printf.sprintf "Csv.to_string: row %d arity mismatch" i))
    rows;
  String.concat "\n" (row_to_string header :: List.map row_to_string rows) ^ "\n"

let write_file ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header rows))

let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then invalid_arg "Csv.parse_line: unterminated quote"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' ->
          (* end of quoted section; expect ',' or end *)
          if i + 1 >= n then flush_field ()
          else if line.[i + 1] = ',' then begin
            flush_field ();
            plain (i + 2)
          end
          else invalid_arg "Csv.parse_line: junk after closing quote"
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let of_timeseries series ~names =
  let a, b = names in
  let rows =
    List.map
      (fun (time, value) -> [ Printf.sprintf "%.6f" time; Printf.sprintf "%.6f" value ])
      (Timeseries.to_list series)
  in
  to_string ~header:[ a; b ] rows

let of_cdf cdf =
  let rows =
    List.map
      (fun (x, f) -> [ Printf.sprintf "%.6f" x; Printf.sprintf "%.6f" f ])
      (Cdf.points cdf)
  in
  to_string ~header:[ "value"; "cumulative_probability" ] rows
