(** Empirical cumulative distribution functions.

    Used to report the distributional results of Figure 2 (fractions of
    flows with throughput level shifts) and the various §2 sweeps. *)

type t

val of_samples : float array -> t
(** Build an ECDF from samples. Raises [Invalid_argument] if empty. *)

val eval : t -> float -> float
(** [eval cdf x] is P(X <= x) under the empirical distribution. *)

val quantile : t -> float -> float
(** [quantile cdf q] with [q] in [\[0,1\]]: smallest sample [x] with
    [eval cdf x >= q]. *)

val count : t -> int
val min_value : t -> float
val max_value : t -> float

val points : t -> (float * float) list
(** The ECDF's step points [(x, F(x))] in increasing [x] order, deduplicated;
    suitable for plotting or textual rendering. *)

val sample_points : t -> n:int -> (float * float) list
(** [n] evenly spaced quantile points [(quantile q, q)] for compact
    reporting; [n >= 2]. *)

val fraction_below : t -> float -> float
(** Alias of {!eval}, reads better at call sites that report fractions. *)

val pp_ascii : ?width:int -> ?height:int -> Format.formatter -> t -> unit
(** Crude ASCII rendering of the CDF curve, for terminal reports. *)
