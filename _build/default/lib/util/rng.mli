(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are reproducible bit-for-bit given a seed.
    The core generator is SplitMix64 (Steele, Lea & Flood 2014), which has
    a 64-bit state, passes BigCrush, and supports cheap stream splitting. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split rng] derives an independent generator from [rng], advancing
    [rng]. Use one split stream per stochastic component so that adding a
    component does not perturb the draws seen by others. *)

val copy : t -> t
(** [copy rng] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli rng ~p] is true with probability [p] (clamped to [0,1]). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. Requires [mean > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto distributed: scale is the minimum value, shape the tail index.
    Heavy-tailed flow sizes use shape ~1.2 (Internet-like mice/elephants). *)

val bounded_pareto : t -> shape:float -> scale:float -> cap:float -> float
(** Pareto truncated at [cap] by resampling the CDF (exact, not clipping). *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal with underlying normal parameters [mu], [sigma]. *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count (Knuth's method below mean 30, normal
    approximation above). Requires [mean >= 0]. *)

val geometric : t -> p:float -> int
(** Number of failures before first success, [p] in (0,1]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with exponent [s], by inverse
    transform on the precomputed CDF (O(log n) per draw after O(n) setup
    amortized per call — fine for our dataset-generation use). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
