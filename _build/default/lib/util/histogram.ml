type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: requires lo < hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let bins = Array.length t.counts in
    let i = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins) in
    let i = min (bins - 1) i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_all t xs = Array.iter (add t) xs
let count t = t.total

let bin_count t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_count: out of range";
  t.counts.(i)

let underflow t = t.underflow
let overflow t = t.overflow

let bin_edges t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_edges: out of range";
  let bins = float_of_int (Array.length t.counts) in
  let width = (t.hi -. t.lo) /. bins in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let fraction_in t i =
  if t.total = 0 then 0.0 else float_of_int (bin_count t i) /. float_of_int t.total

let mode_bin t =
  if t.total = 0 then invalid_arg "Histogram.mode_bin: empty histogram";
  let best = ref 0 in
  for i = 1 to Array.length t.counts - 1 do
    if t.counts.(i) > t.counts.(!best) then best := i
  done;
  !best

let pp ppf t =
  let max_count = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_edges t i in
      let width = 40 * c / max_count in
      Format.fprintf ppf "[%10.4g, %10.4g) %6d %s@." lo hi c (String.make width '#'))
    t.counts;
  if t.underflow > 0 then Format.fprintf ppf "underflow: %d@." t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow: %d@." t.overflow
