let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  if n <= 0 then invalid_arg "Fft.next_power_of_two: argument must be positive";
  let rec loop p = if p >= n then p else loop (2 * p) in
  loop 1

(* Iterative in-place Cooley-Tukey with bit-reversal permutation.
   [sign] is -1 for the forward transform and +1 for the inverse. *)
let fft_in_place a sign =
  let n = Array.length a in
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- tmp
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Butterfly passes. *)
  let len = ref 2 in
  while !len <= n do
    let ang = float_of_int sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wlen = Complex.{ re = cos ang; im = sin ang } in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = 0 to (!len / 2) - 1 do
        let u = a.(!i + k) in
        let v = Complex.mul a.(!i + k + (!len / 2)) !w in
        a.(!i + k) <- Complex.add u v;
        a.(!i + k + (!len / 2)) <- Complex.sub u v;
        w := Complex.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let transform input =
  let n = Array.length input in
  if not (is_power_of_two n) then invalid_arg "Fft.transform: length must be a power of two";
  let a = Array.copy input in
  fft_in_place a (-1);
  a

let inverse input =
  let n = Array.length input in
  if not (is_power_of_two n) then invalid_arg "Fft.inverse: length must be a power of two";
  let a = Array.copy input in
  fft_in_place a 1;
  let scale = 1.0 /. float_of_int n in
  Array.map (fun c -> Complex.{ re = c.re *. scale; im = c.im *. scale }) a

let real_transform signal =
  transform (Array.map (fun x -> Complex.{ re = x; im = 0.0 }) signal)

let magnitude_spectrum signal =
  let spectrum = real_transform signal in
  let n = Array.length spectrum in
  Array.init ((n / 2) + 1) (fun k -> Complex.norm spectrum.(k))

let bin_frequency ~n ~sample_rate k = float_of_int k *. sample_rate /. float_of_int n

let frequency_bin ~n ~sample_rate freq =
  int_of_float (Float.round (freq *. float_of_int n /. sample_rate))

let magnitude_at signal ~sample_rate ~freq =
  let n = Array.length signal in
  let mags = magnitude_spectrum signal in
  let k = frequency_bin ~n ~sample_rate freq in
  let k = max 0 (min (Array.length mags - 1) k) in
  let candidates =
    List.filter (fun i -> i >= 0 && i < Array.length mags) [ k - 1; k; k + 1 ]
  in
  let best = List.fold_left (fun acc i -> Float.max acc mags.(i)) 0.0 candidates in
  best /. (float_of_int n /. 2.0)

let hann_window signal =
  let n = Array.length signal in
  if n <= 1 then Array.copy signal
  else
    Array.mapi
      (fun i x ->
        let w = 0.5 *. (1.0 -. cos (2.0 *. Float.pi *. float_of_int i /. float_of_int (n - 1))) in
        x *. w)
      signal

let mean_removed signal =
  let n = Array.length signal in
  if n = 0 then [||]
  else begin
    let m = Array.fold_left ( +. ) 0.0 signal /. float_of_int n in
    Array.map (fun x -> x -. m) signal
  end
