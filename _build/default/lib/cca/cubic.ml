(* Internally CUBIC operates on windows in units of MSS, as in the RFC. *)
let create ?(mss = Ccsim_util.Units.mss) ?(c = 0.4) ?(beta = 0.7) ?initial_cwnd
    ?(hystart = false) () =
  if c <= 0.0 then invalid_arg "Cubic.create: c must be positive";
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Cubic.create: beta must be in (0,1)";
  let fmss = float_of_int mss in
  let initial = match initial_cwnd with Some w -> w | None -> Cca.initial_window ~mss in
  let cca = Cca.make ~name:"cubic" ~cwnd:initial () in
  let ssthresh = ref infinity in
  let w_max = ref 0.0 in
  let k = ref 0.0 in
  let epoch_start = ref None in
  let w_est = ref 0.0 in
  let enter_epoch now =
    epoch_start := Some now;
    let w_mss = cca.cwnd /. fmss in
    if w_mss < !w_max then k := Float.cbrt (!w_max *. (1.0 -. beta) /. c)
    else begin
      (* We are already above the last W_max: restart the cubic from here. *)
      w_max := w_mss;
      k := 0.0
    end;
    w_est := w_mss
  in
  let on_ack (info : Cca.ack_info) =
    let acked = float_of_int info.newly_acked in
    if cca.cwnd < !ssthresh then begin
      (match info.rtt_sample with
      | Some rtt when hystart && Cca.hystart_delay_exceeded ~min_rtt:info.min_rtt ~rtt ->
          ssthresh := cca.cwnd
      | Some _ | None -> ());
      if cca.cwnd < !ssthresh then cca.cwnd <- cca.cwnd +. acked
    end
    else begin
      (match !epoch_start with None -> enter_epoch info.now | Some _ -> ());
      match !epoch_start with
      | None -> assert false
      | Some t0 ->
          let rtt = if info.srtt > 0.0 then info.srtt else 0.1 in
          let t = info.now -. t0 +. rtt in
          let target = (c *. ((t -. !k) ** 3.0)) +. !w_max in
          (* TCP-friendly window estimate (RFC 8312 §4.2). *)
          let ack_frac = acked /. fmss in
          w_est :=
            !w_est +. (3.0 *. (1.0 -. beta) /. (1.0 +. beta) *. ack_frac /. (cca.cwnd /. fmss));
          let w_mss = cca.cwnd /. fmss in
          let next =
            if target > w_mss then w_mss +. ((target -. w_mss) /. w_mss *. ack_frac)
            else w_mss +. (0.01 *. ack_frac /. w_mss)
          in
          let next = Float.max next !w_est in
          cca.cwnd <- next *. fmss
    end
  in
  let on_loss (info : Cca.loss_info) =
    let w_mss = cca.cwnd /. fmss in
    (* Fast convergence (RFC 8312 §4.6). *)
    w_max := if w_mss < !w_max then w_mss *. (1.0 +. beta) /. 2.0 else w_mss;
    ssthresh := Float.max (cca.cwnd *. beta) (2.0 *. fmss);
    cca.cwnd <- !ssthresh;
    epoch_start := None;
    ignore info
  in
  let on_rto ~now:_ =
    let w_mss = cca.cwnd /. fmss in
    w_max := w_mss;
    ssthresh := Float.max (cca.cwnd *. beta) (2.0 *. fmss);
    cca.cwnd <- fmss;
    epoch_start := None
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
