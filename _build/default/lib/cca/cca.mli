(** Congestion-control algorithm interface.

    A CCA is a record of closures created per connection. The TCP sender
    reads [cwnd] (bytes) and [pacing_rate] (bit/s; [infinity] disables
    pacing) before each transmission and informs the CCA of acks, loss
    events (once per fast-recovery episode), retransmission timeouts, and
    transmissions. Implementations mutate their own [cwnd]/[pacing_rate]
    fields. *)

type ack_info = {
  now : float;
  rtt_sample : float option;
      (** RTT measured from this ack; [None] when the acked segment was a
          retransmission (Karn's rule). *)
  srtt : float;  (** smoothed RTT, 0 until the first sample *)
  min_rtt : float;  (** connection lifetime minimum RTT *)
  newly_acked : int;  (** bytes newly cumulatively acknowledged *)
  inflight : int;  (** bytes outstanding after this ack *)
  delivery_rate : float;
      (** delivery-rate sample in bit/s (BBR-style: delivered-bytes delta
          over the acked segment's flight time); 0 until measurable *)
  app_limited : bool;
      (** the sample was taken while the sender had no data to send, so
          rate samples underestimate capacity *)
  mss : int;
}

type loss_info = {
  now : float;
  inflight : int;  (** bytes outstanding when loss was detected *)
  mss : int;
}

type t = {
  name : string;
  mutable cwnd : float;  (** congestion window, bytes *)
  mutable pacing_rate : float;  (** bit/s; [infinity] = unpaced *)
  mutable on_ack : ack_info -> unit;
  mutable on_loss : loss_info -> unit;
      (** fast-retransmit loss detected; called once per recovery episode *)
  mutable on_rto : now:float -> unit;
  mutable on_send : now:float -> bytes:int -> unit;
      (** a segment was transmitted *)
}
(** Handler fields are mutable so an implementation can first allocate
    the record, then install closures that mutate that same record —
    avoiding a recursive-value definition. *)

val initial_window : mss:int -> float
(** RFC 6928 initial window: 10 MSS, in bytes. *)

val hystart_delay_exceeded : min_rtt:float -> rtt:float -> bool
(** HyStart's delay-increase heuristic: true when an RTT sample exceeds
    the minimum by max(4 ms, min_rtt / 8) — the cue for a slow-start
    exit before the queue overflows. False until a minimum exists. *)

val make :
  name:string ->
  ?cwnd:float ->
  ?pacing_rate:float ->
  ?on_ack:(ack_info -> unit) ->
  ?on_loss:(loss_info -> unit) ->
  ?on_rto:(now:float -> unit) ->
  ?on_send:(now:float -> bytes:int -> unit) ->
  unit ->
  t
(** Build a CCA record with no-op defaults — used by tests and by
    fixed-window pseudo-CCAs. Default cwnd is [initial_window ~mss:1448];
    default pacing is unpaced. *)

val fixed_window : cwnd_bytes:int -> t
(** Degenerate CCA that never changes its window; useful as an
    experimental control. *)

val fixed_rate : rate_bps:float -> t
(** Degenerate CCA with an effectively unlimited window and a fixed
    pacing rate; models naive CBR-over-reliable-transport. *)
