(** Nimbus (Goyal et al., SIGCOMM '22): rate-based congestion control
    with elasticity detection, the instrument behind the paper's §3.2
    active-measurement proposal.

    The sender superimposes small sinusoidal pulses (amplitude
    [pulse_amplitude] x its base rate, frequency [pulse_freq_hz]) on its
    pacing rate and estimates the cross-traffic rate

      z(t) = mu x r_in(t) / r_out(t) − r_in(t)

    from its own send rate [r_in], delivery rate [r_out], and a
    bottleneck-capacity estimate [mu]. If the cross traffic is *elastic*
    (buffer-filling CCAs such as Reno or BBR), it reacts to the pulses
    within an RTT and z(t) oscillates at the pulse frequency; inelastic
    traffic (CBR, application-limited video, short flows) does not. The
    elasticity metric is the FFT magnitude of z at the pulse frequency
    normalized by the FFT magnitude of the sender's own rate at that
    frequency, so a fully mirroring elastic response scores ~1 and
    unresponsive cross traffic scores ~0.

    With [mode_switching] on, the flow uses delay-based control when
    elasticity is low and switches to a TCP-competitive (virtual-Reno)
    rate when elasticity is high. The paper's measurement tool *disables*
    mode switching and keeps the pulses, using the reported elasticity
    purely as a contention signal — that is [`create ~mode_switching:false`]. *)

type handle = {
  elasticity : Ccsim_util.Timeseries.t;
      (** (time, elasticity) samples, one per estimation interval once the
          FFT window has filled *)
  cross_rate : Ccsim_util.Timeseries.t;  (** (time, z) samples in bit/s *)
  mode : unit -> [ `Delay | `Competitive ];
  capacity_estimate : unit -> float;  (** current mu, bit/s *)
}

val create :
  Ccsim_engine.Sim.t ->
  ?mss:int ->
  ?pulse_freq_hz:float ->
  ?pulse_amplitude:float ->
  ?sample_rate_hz:float ->
  ?fft_size:int ->
  ?mode_switching:bool ->
  ?known_capacity_bps:float ->
  ?elastic_threshold:float ->
  unit ->
  Cca.t * handle
(** Defaults: 5 Hz pulses at 0.25 amplitude, 100 Hz sampling, 512-point
    FFT (5.12 s window), mode switching on, elasticity threshold 0.5
    (with enter/exit hysteresis at 0.5/0.25). [known_capacity_bps] pins
    mu (as in a controlled emulation); otherwise mu is the windowed max
    of observed delivery rates. The sampling/pulse machinery runs on sim
    timers for the lifetime of the simulation. *)
