lib/cca/reno.ml: Cca Ccsim_util Float
