lib/cca/tfrc.ml: Array Cca Ccsim_util Float List
