lib/cca/vegas.ml: Cca Ccsim_util Float
