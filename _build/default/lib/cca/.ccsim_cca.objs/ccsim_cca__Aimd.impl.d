lib/cca/aimd.ml: Cca Ccsim_util Float Printf
