lib/cca/cca.ml: Ccsim_util Float
