lib/cca/ledbat.ml: Cca Ccsim_util Float
