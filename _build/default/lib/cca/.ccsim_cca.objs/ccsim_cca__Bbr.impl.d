lib/cca/bbr.ml: Array Cca Ccsim_util Float List
