lib/cca/cca.mli:
