lib/cca/aimd.mli: Cca
