lib/cca/reno.mli: Cca
