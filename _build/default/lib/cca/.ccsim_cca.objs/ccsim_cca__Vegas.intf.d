lib/cca/vegas.mli: Cca
