lib/cca/ledbat.mli: Cca
