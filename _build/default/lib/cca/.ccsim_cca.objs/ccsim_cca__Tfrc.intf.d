lib/cca/tfrc.mli: Cca
