lib/cca/nimbus.mli: Cca Ccsim_engine Ccsim_util
