lib/cca/bbr.mli: Cca
