lib/cca/copa.mli: Cca
