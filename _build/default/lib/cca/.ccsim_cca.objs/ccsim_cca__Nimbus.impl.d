lib/cca/nimbus.ml: Array Cca Ccsim_engine Ccsim_util Float
