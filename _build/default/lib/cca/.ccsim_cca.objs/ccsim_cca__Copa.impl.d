lib/cca/copa.ml: Cca Ccsim_util Float
