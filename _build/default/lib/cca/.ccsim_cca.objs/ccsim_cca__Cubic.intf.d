lib/cca/cubic.mli: Cca
