lib/cca/cubic.ml: Cca Ccsim_util Float
