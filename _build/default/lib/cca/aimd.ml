let create ?(mss = Ccsim_util.Units.mss) ?(a = 1.0) ?(b = 0.5) ?initial_cwnd () =
  if a <= 0.0 then invalid_arg "Aimd.create: a must be positive";
  if b <= 0.0 || b >= 1.0 then invalid_arg "Aimd.create: b must be in (0,1)";
  let fmss = float_of_int mss in
  let initial = match initial_cwnd with Some c -> c | None -> Cca.initial_window ~mss in
  let ssthresh = ref infinity in
  let cca = Cca.make ~name:(Printf.sprintf "aimd(%.2g,%.2g)" a b) ~cwnd:initial () in
  let on_ack (info : Cca.ack_info) =
    let acked = float_of_int info.newly_acked in
    if cca.cwnd < !ssthresh then cca.cwnd <- cca.cwnd +. acked
    else cca.cwnd <- cca.cwnd +. (a *. fmss *. acked /. cca.cwnd)
  in
  let on_loss (_ : Cca.loss_info) =
    ssthresh := Float.max (cca.cwnd *. b) (2.0 *. fmss);
    cca.cwnd <- !ssthresh
  in
  let on_rto ~now:_ =
    ssthresh := Float.max (cca.cwnd *. b) (2.0 *. fmss);
    cca.cwnd <- fmss
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
