(** LEDBAT (RFC 6817): low-extra-delay background transport.

    Targets a fixed amount of self-induced queueing delay (default
    100 ms in the RFC; BitTorrent uses ~25 ms) and yields to any other
    traffic: the window grows at most as fast as Reno when the queue is
    empty and decreases proportionally as the measured delay approaches
    the target.

    This is the transport §2.3's "persistently backlogged flows
    (software updates, etc)" would use in practice — a bulk transfer
    that scavenges capacity without contending, removing even the
    residual access-link contention case. *)

val create : ?mss:int -> ?target_delay:float -> ?gain:float -> ?initial_cwnd:float -> unit -> Cca.t
(** Defaults: [target_delay] 25 ms, [gain] 1.0 (at most one MSS per RTT
    of growth). *)
