(** TCP Vegas (Brakmo & Peterson 1995), the classic delay-based CCA.

    Once per RTT, compares expected throughput (cwnd / base RTT) with
    actual throughput (cwnd / current RTT); if the difference — the
    number of self-queued packets — is below [alpha] the window grows by
    one MSS, above [beta] it shrinks by one. Backs off like Reno on
    loss. Included as the delay-based baseline that loses to loss-based
    cross traffic, motivating mode-switching designs (Copa, Nimbus). *)

val create : ?mss:int -> ?alpha:float -> ?beta:float -> ?initial_cwnd:float -> unit -> Cca.t
(** Defaults: [alpha] = 2 packets, [beta] = 4 packets. Requires
    [alpha <= beta]. *)
