let create ?(mss = Ccsim_util.Units.mss) ?(target_delay = 0.025) ?(gain = 1.0) ?initial_cwnd ()
    =
  if target_delay <= 0.0 then invalid_arg "Ledbat.create: target delay must be positive";
  if gain <= 0.0 then invalid_arg "Ledbat.create: gain must be positive";
  let fmss = float_of_int mss in
  let initial = match initial_cwnd with Some c -> c | None -> Cca.initial_window ~mss in
  let cca = Cca.make ~name:"ledbat" ~cwnd:initial () in
  let on_ack (info : Cca.ack_info) =
    match info.rtt_sample with
    | Some rtt when Float.is_finite info.min_rtt && info.min_rtt > 0.0 ->
        let queuing_delay = Float.max 0.0 (rtt -. info.min_rtt) in
        (* off_target in [-inf, 1]: positive below the target delay. *)
        let off_target = (target_delay -. queuing_delay) /. target_delay in
        let acked = float_of_int info.newly_acked in
        let delta = gain *. off_target *. acked *. fmss /. cca.cwnd in
        cca.cwnd <- Float.max (2.0 *. fmss) (cca.cwnd +. delta)
    | Some _ | None -> ()
  in
  let on_loss (_ : Cca.loss_info) =
    cca.cwnd <- Float.max (2.0 *. fmss) (cca.cwnd /. 2.0)
  in
  let on_rto ~now:_ = cca.cwnd <- 2.0 *. fmss in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
