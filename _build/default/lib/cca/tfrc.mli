(** TFRC-style equation-based rate control (RFC 5348, simplified).

    Paces at the rate the TCP throughput equation predicts for the
    current loss-event rate and RTT, so that a non-window-based flow
    consumes the same long-term share as a Reno flow — the original
    "TCP-friendliness" contract the paper's introduction cites [1].
    Loss-event rate comes from the weighted average of the last eight
    loss intervals, as in the RFC. *)

val create : ?mss:int -> unit -> Cca.t
