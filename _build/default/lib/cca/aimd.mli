(** Generic AIMD(a, b) congestion control (Chiu & Jain [13]).

    Adds [a] MSS per RTT in congestion avoidance and multiplies the
    window by [b] on loss. AIMD(1, 0.5) is Reno's congestion-avoidance
    rule; more aggressive parameterizations model the proprietary
    "custom algorithms" trend §2.1 describes. *)

val create : ?mss:int -> ?a:float -> ?b:float -> ?initial_cwnd:float -> unit -> Cca.t
(** Defaults: [a] = 1.0, [b] = 0.5. Requires [a > 0] and [0 < b < 1]. *)
