let create ?(mss = Ccsim_util.Units.mss) ?initial_cwnd ?(hystart = false) () =
  let fmss = float_of_int mss in
  let initial =
    match initial_cwnd with Some c -> c | None -> Cca.initial_window ~mss
  in
  let ssthresh = ref infinity in
  let cca =
    Cca.make ~name:"reno" ~cwnd:initial ()
  in
  let on_ack (info : Cca.ack_info) =
    let acked = float_of_int info.newly_acked in
    if cca.cwnd < !ssthresh then begin
      (* Slow start: grow by the acked bytes (doubling per RTT), with an
         optional HyStart delay-increase exit. *)
      (match info.rtt_sample with
      | Some rtt when hystart && Cca.hystart_delay_exceeded ~min_rtt:info.min_rtt ~rtt ->
          ssthresh := cca.cwnd
      | Some _ | None -> ());
      if cca.cwnd < !ssthresh then cca.cwnd <- cca.cwnd +. acked
    end
    else
      (* Congestion avoidance: one MSS per window's worth of acks. *)
      cca.cwnd <- cca.cwnd +. (fmss *. acked /. cca.cwnd)
  in
  let on_loss (_ : Cca.loss_info) =
    ssthresh := Float.max (cca.cwnd /. 2.0) (2.0 *. fmss);
    cca.cwnd <- !ssthresh
  in
  let on_rto ~now:_ =
    ssthresh := Float.max (cca.cwnd /. 2.0) (2.0 *. fmss);
    cca.cwnd <- fmss
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
