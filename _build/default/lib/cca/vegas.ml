let create ?(mss = Ccsim_util.Units.mss) ?(alpha = 2.0) ?(beta = 4.0) ?initial_cwnd () =
  if alpha > beta then invalid_arg "Vegas.create: requires alpha <= beta";
  let fmss = float_of_int mss in
  let initial = match initial_cwnd with Some c -> c | None -> Cca.initial_window ~mss in
  let cca = Cca.make ~name:"vegas" ~cwnd:initial () in
  let ssthresh = ref infinity in
  (* Explicit phase flag: a delay-based decrease may push cwnd below
     ssthresh, which must not re-enter slow start. *)
  let slow_start = ref true in
  let next_adjust = ref 0.0 in
  let on_ack (info : Cca.ack_info) =
    let acked = float_of_int info.newly_acked in
    if !slow_start && cca.cwnd >= !ssthresh then slow_start := false;
    if !slow_start && info.srtt > 0.0 && info.min_rtt > 0.0 then begin
      (* Vegas leaves slow start once it detects queue build-up (the
         gamma rule), not only on loss. *)
      let cwnd_pkts = cca.cwnd /. fmss in
      let diff = cwnd_pkts *. (1.0 -. (info.min_rtt /. info.srtt)) in
      if diff > beta then slow_start := false
    end;
    if !slow_start then cca.cwnd <- cca.cwnd +. acked
    else if info.now >= !next_adjust && info.srtt > 0.0 && info.min_rtt > 0.0 then begin
      next_adjust := info.now +. info.srtt;
      let cwnd_pkts = cca.cwnd /. fmss in
      let diff = cwnd_pkts *. (1.0 -. (info.min_rtt /. info.srtt)) in
      if diff < alpha then cca.cwnd <- cca.cwnd +. fmss
      else if diff > beta then cca.cwnd <- Float.max (2.0 *. fmss) (cca.cwnd -. fmss)
    end
  in
  let on_loss (_ : Cca.loss_info) =
    ssthresh := Float.max (cca.cwnd /. 2.0) (2.0 *. fmss);
    cca.cwnd <- !ssthresh;
    slow_start := false
  in
  let on_rto ~now:_ =
    ssthresh := Float.max (cca.cwnd /. 2.0) (2.0 *. fmss);
    cca.cwnd <- fmss;
    slow_start := true
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
