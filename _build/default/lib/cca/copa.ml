let create ?(mss = Ccsim_util.Units.mss) ?(delta = 0.5) ?initial_cwnd () =
  if delta <= 0.0 then invalid_arg "Copa.create: delta must be positive";
  let fmss = float_of_int mss in
  let initial = match initial_cwnd with Some c -> c | None -> Cca.initial_window ~mss in
  let cca = Cca.make ~name:"copa" ~cwnd:initial () in
  let slow_start = ref true in
  let on_ack (info : Cca.ack_info) =
    let acked = float_of_int info.newly_acked in
    if info.srtt <= 0.0 || info.min_rtt <= 0.0 then ()
    else begin
      let dq = Float.max 1e-4 (info.srtt -. info.min_rtt) in
      (* Target rate in packets per second, per the Copa rule. *)
      let target_rate = 1.0 /. (delta *. dq) in
      let current_rate = cca.cwnd /. fmss /. info.srtt in
      if !slow_start then begin
        if current_rate < target_rate then cca.cwnd <- cca.cwnd +. acked
        else slow_start := false
      end;
      if not !slow_start then begin
        (* Move one MSS per RTT toward the target. *)
        let step = fmss *. acked /. (delta *. cca.cwnd) in
        if current_rate < target_rate then cca.cwnd <- cca.cwnd +. step
        else cca.cwnd <- Float.max (2.0 *. fmss) (cca.cwnd -. step)
      end
    end
  in
  let on_loss (_ : Cca.loss_info) =
    (* Copa reacts to loss only mildly (its window is delay-governed). *)
    cca.cwnd <- Float.max (2.0 *. fmss) (cca.cwnd /. 2.0);
    slow_start := false
  in
  let on_rto ~now:_ =
    cca.cwnd <- 2.0 *. fmss;
    slow_start := false
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
