(* Weights for the last eight loss intervals (RFC 5348 §5.4). *)
let interval_weights = [| 1.0; 1.0; 1.0; 1.0; 0.8; 0.6; 0.4; 0.2 |]

let create ?(mss = Ccsim_util.Units.mss) () =
  let fmss = float_of_int mss in
  let cca = Cca.make ~name:"tfrc" ~cwnd:1e12 ~pacing_rate:(Ccsim_util.Units.mbps 1.0) () in
  (* Completed loss intervals (packets between consecutive loss events),
     most recent first; [current] counts packets since the last event. *)
  let intervals : float list ref = ref [] in
  let current = ref 0.0 in
  let had_loss = ref false in
  let last_doubling = ref 0.0 in
  let loss_event_rate () =
    let considered = !current :: !intervals in
    let n = min (Array.length interval_weights) (List.length considered) in
    if n = 0 then 0.0
    else begin
      let num = ref 0.0 and den = ref 0.0 in
      List.iteri
        (fun i interval ->
          if i < n then begin
            num := !num +. (interval_weights.(i) *. interval);
            den := !den +. interval_weights.(i)
          end)
        considered;
      let avg = !num /. !den in
      if avg <= 0.0 then 1.0 else 1.0 /. avg
    end
  in
  let throughput_equation ~rtt ~p =
    (* X = s / (R*sqrt(2bp/3) + t_RTO * (3*sqrt(3bp/8)) * p * (1 + 32p^2)),
       b = 1, t_RTO = 4R; result in bytes/s, converted to bit/s. *)
    let b = 1.0 in
    let t_rto = 4.0 *. rtt in
    let denom =
      (rtt *. sqrt (2.0 *. b *. p /. 3.0))
      +. (t_rto *. 3.0 *. sqrt (3.0 *. b *. p /. 8.0) *. p *. (1.0 +. (32.0 *. p *. p)))
    in
    if denom <= 0.0 then infinity else fmss /. denom *. 8.0
  in
  let on_ack (info : Cca.ack_info) =
    current := !current +. (float_of_int info.newly_acked /. fmss);
    let rtt = if info.srtt > 0.0 then info.srtt else 0.1 in
    if not !had_loss then begin
      (* Initial slow-start phase: double the rate each RTT. *)
      if info.now -. !last_doubling >= rtt then begin
        last_doubling := info.now;
        cca.pacing_rate <- cca.pacing_rate *. 2.0
      end
    end
    else begin
      let p = loss_event_rate () in
      if p > 0.0 then begin
        let x = throughput_equation ~rtt ~p in
        (* Never pace below one packet per RTO-ish interval. *)
        cca.pacing_rate <- Float.max (fmss *. 8.0 /. (4.0 *. rtt)) x
      end
    end
  in
  let record_loss () =
    had_loss := true;
    intervals := !current :: !intervals;
    if List.length !intervals > Array.length interval_weights then
      intervals :=
        List.filteri (fun i _ -> i < Array.length interval_weights) !intervals;
    current := 0.0
  in
  let on_loss (_ : Cca.loss_info) = record_loss () in
  let on_rto ~now:_ =
    record_loss ();
    cca.pacing_rate <- Float.max (fmss *. 8.0) (cca.pacing_rate /. 2.0)
  in
  cca.Cca.on_ack <- on_ack;
  cca.Cca.on_loss <- on_loss;
  cca.Cca.on_rto <- on_rto;
  cca
