type ack_info = {
  now : float;
  rtt_sample : float option;
  srtt : float;
  min_rtt : float;
  newly_acked : int;
  inflight : int;
  delivery_rate : float;
  app_limited : bool;
  mss : int;
}

type loss_info = { now : float; inflight : int; mss : int }

type t = {
  name : string;
  mutable cwnd : float;
  mutable pacing_rate : float;
  mutable on_ack : ack_info -> unit;
  mutable on_loss : loss_info -> unit;
  mutable on_rto : now:float -> unit;
  mutable on_send : now:float -> bytes:int -> unit;
}

let initial_window ~mss = 10.0 *. float_of_int mss

let hystart_delay_exceeded ~min_rtt ~rtt =
  Float.is_finite min_rtt && min_rtt > 0.0 && rtt > min_rtt +. Float.max 0.004 (min_rtt /. 8.0)

let make ~name ?(cwnd = initial_window ~mss:Ccsim_util.Units.mss) ?(pacing_rate = infinity)
    ?(on_ack = fun _ -> ()) ?(on_loss = fun _ -> ()) ?(on_rto = fun ~now:_ -> ())
    ?(on_send = fun ~now:_ ~bytes:_ -> ()) () =
  { name; cwnd; pacing_rate; on_ack; on_loss; on_rto; on_send }

let fixed_window ~cwnd_bytes =
  if cwnd_bytes <= 0 then invalid_arg "Cca.fixed_window: cwnd must be positive";
  make ~name:"fixed-window" ~cwnd:(float_of_int cwnd_bytes) ()

let fixed_rate ~rate_bps =
  if rate_bps <= 0.0 then invalid_arg "Cca.fixed_rate: rate must be positive";
  make ~name:"fixed-rate" ~cwnd:1e12 ~pacing_rate:rate_bps ()
