(** CUBIC congestion control (RFC 8312).

    Window growth follows W(t) = C(t − K)³ + W_max between losses, with
    the TCP-friendly region as a floor; β = 0.7 multiplicative decrease.
    The dominant deployed loss-based CCA, and one of the two contenders
    in the paper's Figure 3 bulk-transfer cross traffic. *)

val create :
  ?mss:int -> ?c:float -> ?beta:float -> ?initial_cwnd:float -> ?hystart:bool -> unit -> Cca.t
(** Defaults per RFC 8312: [c] = 0.4, [beta] = 0.7. [hystart] (default
    false) enables the delay-increase slow-start exit. *)
