(** Copa congestion control (Arun & Balakrishnan, NSDI '18), simplified.

    Targets a sending rate of 1 / (delta x dq) where dq is the current
    queueing delay estimate (srtt − min RTT): the window moves toward the
    target by one MSS per RTT-worth of acks in the appropriate
    direction. This reproduces Copa's defining delay-targeting dynamics;
    we omit velocity doubling and TCP-competitive mode switching (noted
    in DESIGN.md), since the paper invokes Copa only as a mode-switching
    delay-based design. *)

val create : ?mss:int -> ?delta:float -> ?initial_cwnd:float -> unit -> Cca.t
(** [delta] defaults to 0.5 (steady state of ~2 packets queued). *)
