(** BBR congestion control (v1, simplified).

    Model-based: estimates the bottleneck bandwidth (windowed max of
    delivery-rate samples over ~10 RTTs) and the round-trip propagation
    delay (windowed min over 10 s), paces at [gain x btlbw], and caps
    inflight at [cwnd_gain x BDP]. State machine: STARTUP (gain 2.885)
    until bandwidth stops growing, DRAIN, then PROBE_BW cycling gains
    [1.25, 0.75, 1, 1, 1, 1, 1, 1], with periodic PROBE_RTT (cwnd of
    4 MSS for 200 ms) to refresh the min-RTT estimate.

    Faithful to v1's defining behaviour for the paper's purposes: it
    largely ignores individual losses, which is what makes it take more
    than its fair share against Reno/Cubic on FIFO bottlenecks [2]. *)

val create : ?mss:int -> ?initial_cwnd:float -> unit -> Cca.t
