(** TCP NewReno congestion control (RFC 5681/6582 dynamics).

    Slow start doubles the window per RTT until [ssthresh]; congestion
    avoidance adds one MSS per RTT; a fast-retransmit loss halves the
    window; an RTO collapses it to one MSS and re-enters slow start.
    This is the paper's canonical "loss-based, fair-target" CCA (the one
    TFRC was designed to coexist with, and the victim in BBR unfairness
    studies [2]). *)

val create : ?mss:int -> ?initial_cwnd:float -> ?hystart:bool -> unit -> Cca.t
(** [mss] defaults to {!Ccsim_util.Units.mss}; [initial_cwnd] (bytes) to
    the RFC 6928 ten-segment window. [hystart] (default false) enables
    the delay-increase slow-start exit, avoiding the classic overshoot
    loss burst at the cost of sometimes leaving slow start early. *)
