module Sim = Ccsim_engine.Sim

type result = {
  flow : int;
  started : float;
  duration : float;
  snapshots : Ccsim_tcp.Tcp_info.t array;
  mean_throughput_bps : float;
}

type t = { mutable result : result option }

let start sim ~sender ?(duration = 10.0) ?(interval = 0.1) ?(on_finish = fun _ -> ()) () =
  if duration <= 0.0 || interval <= 0.0 then
    invalid_arg "Speedtest.start: duration and interval must be positive";
  let t = { result = None } in
  let started = Sim.now sim in
  let snapshots = ref [] in
  Ccsim_tcp.Sender.set_unlimited sender;
  Sim.every sim ~interval ~stop_after:(started +. duration) (fun () ->
      snapshots := Ccsim_tcp.Sender.info sender :: !snapshots);
  ignore
    (Sim.schedule_at sim ~time:(started +. duration) (fun () ->
         Ccsim_tcp.Sender.close sender;
         let snaps = Array.of_list (List.rev !snapshots) in
         let acked = Ccsim_tcp.Sender.bytes_acked sender in
         let result =
           {
             flow = Ccsim_tcp.Sender.flow sender;
             started;
             duration;
             snapshots = snaps;
             mean_throughput_bps = float_of_int acked *. 8.0 /. duration;
           }
         in
         t.result <- Some result;
         on_finish result));
  t

let result t = t.result
