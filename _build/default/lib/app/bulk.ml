module Sim = Ccsim_engine.Sim

type t = { mutable started : bool }

let start sim ~sender ?at ?stop_at () =
  let t = { started = false } in
  let begin_at = match at with None -> Sim.now sim | Some a -> a in
  ignore
    (Sim.schedule_at sim ~time:begin_at (fun () ->
         t.started <- true;
         Ccsim_tcp.Sender.set_unlimited sender));
  (match stop_at with
  | Some time -> ignore (Sim.schedule_at sim ~time (fun () -> Ccsim_tcp.Sender.close sender))
  | None -> ());
  t

let started t = t.started
