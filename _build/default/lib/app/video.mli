(** Adaptive-bitrate (ABR) video streaming client/server.

    Downloads fixed-duration chunks over a TCP connection, choosing each
    chunk's bitrate from a ladder with a buffer-aware, throughput-capped
    policy (in the spirit of buffer-based ABR). Playback drains the
    buffer in real time; rebuffering pauses it.

    This is the paper's central example of *demand-bounded* traffic: even
    when the network could deliver more, the stream never requests more
    than its top ladder rung, and under congestion the ABR steps its
    demand down instead of fighting — so "adaptive bitrate algorithms
    would reduce video streams' throughput demand" (§2.2). *)

type stats = {
  chunks_downloaded : int;
  mean_bitrate_bps : float;  (** mean of the chosen ladder rates *)
  rebuffer_s : float;  (** total stall time after startup *)
  switches : int;  (** number of bitrate changes *)
  bitrate_series : Ccsim_util.Timeseries.t;  (** (request time, chosen bps) *)
}

type t

val default_ladder_bps : float array
(** 1, 2.5, 5, 8, 16 and 25 Mbit/s — topping out at the cloud-gaming-like
    rates §2.2 cites (20–30 Mbit/s). *)

val start :
  Ccsim_engine.Sim.t ->
  sender:Ccsim_tcp.Sender.t ->
  ?ladder_bps:float array ->
  ?chunk_duration:float ->
  ?max_buffer_s:float ->
  ?low_buffer_s:float ->
  ?safety:float ->
  ?stop:float ->
  unit ->
  t
(** Defaults: 2 s chunks, 30 s max buffer, 5 s panic threshold, safety
    factor 0.8 (pick the largest rung at most [safety] x estimated
    throughput). The client polls download completion at 10 ms
    granularity. *)

val stats : t -> stats
