module Sim = Ccsim_engine.Sim

type t = { mutable bytes_offered : int }

let over_tcp sim ~sender ~rate_bps ?(tick = 0.01) ?start ?stop () =
  if rate_bps <= 0.0 then invalid_arg "Cbr.over_tcp: rate must be positive";
  if tick <= 0.0 then invalid_arg "Cbr.over_tcp: tick must be positive";
  let t = { bytes_offered = 0 } in
  let begin_at = match start with None -> Sim.now sim +. tick | Some s -> s in
  let stop_at = match stop with None -> infinity | Some s -> s in
  (* Accumulate fractional bytes so the long-run rate is exact. *)
  let carry = ref 0.0 in
  Sim.every sim ~interval:tick ~start:begin_at ~stop_after:stop_at (fun () ->
      carry := !carry +. (rate_bps *. tick /. 8.0);
      let n = int_of_float !carry in
      if n > 0 then begin
        carry := !carry -. float_of_int n;
        t.bytes_offered <- t.bytes_offered + n;
        Ccsim_tcp.Sender.write sender n
      end);
  t

let over_udp sim ~source ~rate_bps ?(packet_bytes = Ccsim_util.Units.mss) ?start ?stop () =
  if rate_bps <= 0.0 then invalid_arg "Cbr.over_udp: rate must be positive";
  if packet_bytes <= 0 then invalid_arg "Cbr.over_udp: packet size must be positive";
  let t = { bytes_offered = 0 } in
  let interval = float_of_int packet_bytes *. 8.0 /. rate_bps in
  let begin_at = match start with None -> Sim.now sim +. interval | Some s -> s in
  let stop_at = match stop with None -> infinity | Some s -> s in
  Sim.every sim ~interval ~start:begin_at ~stop_after:stop_at (fun () ->
      t.bytes_offered <- t.bytes_offered + packet_bytes;
      Ccsim_tcp.Udp.Source.send source ~bytes:packet_bytes);
  t

let bytes_offered t = t.bytes_offered
