(** Poisson-arrival short-flow workload ("mice").

    Spawns TCP flows with exponential inter-arrival times and
    heavy-tailed (bounded-Pareto) sizes — the web-like traffic mix from
    which §2.2 argues that most flows fit in the initial window and
    never engage congestion avoidance. Each flow gets a fresh
    connection; statistics record size, duration, and whether it ever
    left the initial window. *)

type flow_record = {
  id : int;
  size_bytes : int;
  started : float;
  mutable finished : float option;
  mutable retransmits : int;
  mutable fit_in_initial_window : bool;
}

type t

val start :
  Ccsim_engine.Sim.t ->
  Ccsim_net.Topology.t ->
  rng:Ccsim_util.Rng.t ->
  arrival_rate:float ->
  ?mean_size_bytes:float ->
  ?pareto_shape:float ->
  ?max_size_bytes:int ->
  ?first_flow_id:int ->
  ?cca:(unit -> Ccsim_cca.Cca.t) ->
  ?stop:float ->
  unit ->
  t
(** [arrival_rate] in flows/second. Sizes are bounded-Pareto with the
    given mean-ish [scale] (default 30 kB mean target, shape 1.2, cap
    10 MB). Flow ids count up from [first_flow_id] (default 1000) — keep
    them disjoint from other flows on the topology. [cca] defaults to
    NewReno. *)

val flows : t -> flow_record list
(** All spawned flows, oldest first. *)

val completed : t -> flow_record list
val spawn_count : t -> int

val fraction_within_initial_window : t -> float
(** Fraction of completed flows whose size fit in IW10 (so their CCA
    never mattered). *)
