(** NDT-style speedtest flow: a bulk transfer of fixed duration with
    periodic TCPInfo snapshots — the measurement primitive behind the
    M-Lab dataset the paper analyses in §3.1, reproduced here so the
    analysis pipeline can also be run against *simulated* ground truth. *)

type result = {
  flow : int;
  started : float;
  duration : float;
  snapshots : Ccsim_tcp.Tcp_info.t array;  (** one per [interval] *)
  mean_throughput_bps : float;
}

type t

val start :
  Ccsim_engine.Sim.t ->
  sender:Ccsim_tcp.Sender.t ->
  ?duration:float ->
  ?interval:float ->
  ?on_finish:(result -> unit) ->
  unit ->
  t
(** Defaults: 10 s transfer (an NDT test's length), 100 ms snapshot
    interval. The sender is closed when the duration elapses. *)

val result : t -> result option
(** Available once the test has finished. *)
