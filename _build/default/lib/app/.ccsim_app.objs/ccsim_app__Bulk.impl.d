lib/app/bulk.ml: Ccsim_engine Ccsim_tcp
