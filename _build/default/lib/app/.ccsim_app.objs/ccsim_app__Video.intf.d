lib/app/video.mli: Ccsim_engine Ccsim_tcp Ccsim_util
