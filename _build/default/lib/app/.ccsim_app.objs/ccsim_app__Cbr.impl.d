lib/app/cbr.ml: Ccsim_engine Ccsim_tcp Ccsim_util
