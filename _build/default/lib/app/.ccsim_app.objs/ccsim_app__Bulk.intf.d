lib/app/bulk.mli: Ccsim_engine Ccsim_tcp
