lib/app/poisson_flows.ml: Ccsim_cca Ccsim_engine Ccsim_net Ccsim_tcp Ccsim_util Float List
