lib/app/onoff.mli: Ccsim_engine Ccsim_tcp Ccsim_util
