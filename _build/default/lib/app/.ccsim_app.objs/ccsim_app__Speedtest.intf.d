lib/app/speedtest.mli: Ccsim_engine Ccsim_tcp
