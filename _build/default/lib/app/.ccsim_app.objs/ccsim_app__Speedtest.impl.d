lib/app/speedtest.ml: Array Ccsim_engine Ccsim_tcp List
