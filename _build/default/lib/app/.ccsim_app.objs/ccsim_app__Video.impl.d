lib/app/video.ml: Array Ccsim_engine Ccsim_tcp Ccsim_util Float
