lib/app/onoff.ml: Ccsim_engine Ccsim_tcp Ccsim_util
