lib/app/poisson_flows.mli: Ccsim_cca Ccsim_engine Ccsim_net Ccsim_util
