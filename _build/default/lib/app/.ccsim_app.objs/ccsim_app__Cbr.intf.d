lib/app/cbr.mli: Ccsim_engine Ccsim_tcp
