module Sim = Ccsim_engine.Sim

type t = {
  mutable bytes_offered : int;
  mutable on : bool;
  mutable on_time : float;
  mutable last_transition : float;
  started_at : float;
}

let start sim ~sender ~rng ~rate_bps ?(mean_on = 0.5) ?(mean_off = 0.5) ?(tick = 0.01)
    ?(stop = infinity) () =
  if rate_bps <= 0.0 then invalid_arg "Onoff.start: rate must be positive";
  if mean_on <= 0.0 || mean_off <= 0.0 then invalid_arg "Onoff.start: means must be positive";
  let now = Sim.now sim in
  let t =
    { bytes_offered = 0; on = true; on_time = 0.0; last_transition = now; started_at = now }
  in
  let rec transition () =
    let now = Sim.now sim in
    if now < stop then begin
      if t.on then t.on_time <- t.on_time +. (now -. t.last_transition);
      t.on <- not t.on;
      t.last_transition <- now;
      let mean = if t.on then mean_on else mean_off in
      ignore (Sim.schedule sim ~delay:(Ccsim_util.Rng.exponential rng ~mean) transition)
    end
  in
  ignore
    (Sim.schedule sim ~delay:(Ccsim_util.Rng.exponential rng ~mean:mean_on) transition);
  let carry = ref 0.0 in
  Sim.every sim ~interval:tick ~stop_after:stop (fun () ->
      if t.on then begin
        carry := !carry +. (rate_bps *. tick /. 8.0);
        let n = int_of_float !carry in
        if n > 0 then begin
          carry := !carry -. float_of_int n;
          t.bytes_offered <- t.bytes_offered + n;
          Ccsim_tcp.Sender.write sender n
        end
      end);
  t

let bytes_offered t = t.bytes_offered

let on_fraction t =
  let elapsed = t.last_transition -. t.started_at in
  if elapsed <= 0.0 then if t.on then 1.0 else 0.0
  else begin
    let on_time = t.on_time in
    on_time /. elapsed
  end
