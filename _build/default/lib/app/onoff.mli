(** On/off (bursty) source over TCP: alternates exponentially-distributed
    ON periods, during which it offers a configured rate, with OFF
    periods of silence. Models interactive/bursty applications and the
    jitter-inducing traffic of §5.2. *)

type t

val start :
  Ccsim_engine.Sim.t ->
  sender:Ccsim_tcp.Sender.t ->
  rng:Ccsim_util.Rng.t ->
  rate_bps:float ->
  ?mean_on:float ->
  ?mean_off:float ->
  ?tick:float ->
  ?stop:float ->
  unit ->
  t
(** Defaults: mean ON 0.5 s, mean OFF 0.5 s, tick 10 ms. *)

val bytes_offered : t -> int
val on_fraction : t -> float
(** Fraction of elapsed time spent in the ON state so far. *)
