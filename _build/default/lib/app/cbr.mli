(** Constant-bit-rate sources, over TCP or UDP.

    The TCP variant writes [rate x tick] bytes to a sender's buffer each
    tick, producing an *application-limited* flow whenever the network
    can carry the rate (the common case the paper's §2.2 argues
    dominates). The UDP variant is fully open-loop — the "CBR UDP"
    cross traffic of Figure 3. *)

type t

val over_tcp :
  Ccsim_engine.Sim.t ->
  sender:Ccsim_tcp.Sender.t ->
  rate_bps:float ->
  ?tick:float ->
  ?start:float ->
  ?stop:float ->
  unit ->
  t
(** Default [tick] 10 ms. Writing begins at [start] (default now) and
    ends at [stop] (default: never). *)

val over_udp :
  Ccsim_engine.Sim.t ->
  source:Ccsim_tcp.Udp.Source.t ->
  rate_bps:float ->
  ?packet_bytes:int ->
  ?start:float ->
  ?stop:float ->
  unit ->
  t
(** Evenly spaced datagrams of [packet_bytes] (default MSS) payload. *)

val bytes_offered : t -> int
