(** Persistently backlogged sender — the classic "long-running flow" that
    can actually contend for bandwidth (software updates, large
    transfers; §2.3's canonical example). *)

type t

val start : Ccsim_engine.Sim.t -> sender:Ccsim_tcp.Sender.t -> ?at:float -> ?stop_at:float -> unit -> t
(** Marks the sender unlimited at time [at] (default: now). If [stop_at]
    is given, the sender is closed at that time (in-flight data still
    drains). *)

val started : t -> bool
