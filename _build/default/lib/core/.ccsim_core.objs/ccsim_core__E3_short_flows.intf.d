lib/core/e3_short_flows.mli:
