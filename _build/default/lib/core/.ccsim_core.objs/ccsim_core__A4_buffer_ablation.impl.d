lib/core/a4_buffer_ablation.ml: Ccsim_util List Printf Results Scenario
