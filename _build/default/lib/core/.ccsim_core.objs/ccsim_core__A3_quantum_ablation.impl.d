lib/core/a3_quantum_ablation.ml: Ccsim_util List Printf Results Scenario
