lib/core/scenario.mli: Ccsim_cca Ccsim_engine Ccsim_net Results
