lib/core/a2_penalty_ablation.mli:
