lib/core/x2_harm.mli:
