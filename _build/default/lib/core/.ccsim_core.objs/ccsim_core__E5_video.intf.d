lib/core/e5_video.mli:
