lib/core/e1_fq.mli:
