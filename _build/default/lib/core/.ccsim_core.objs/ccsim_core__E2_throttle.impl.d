lib/core/e2_throttle.ml: Ccsim_net Ccsim_util List Printf Results Scenario
