lib/core/a3_quantum_ablation.mli:
