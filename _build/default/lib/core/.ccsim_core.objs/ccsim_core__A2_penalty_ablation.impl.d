lib/core/a2_penalty_ablation.ml: Array Ccsim_measure Ccsim_util List
