lib/core/e7_jitter.mli:
