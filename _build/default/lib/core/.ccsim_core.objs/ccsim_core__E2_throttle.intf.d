lib/core/e2_throttle.mli:
