lib/core/x3_rcs.mli:
