lib/core/fig3.mli: Ccsim_util
