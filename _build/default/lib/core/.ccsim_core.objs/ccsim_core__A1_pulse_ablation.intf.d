lib/core/a1_pulse_ablation.mli:
