lib/core/results.ml: Array Ccsim_app Ccsim_cca Ccsim_tcp Ccsim_util Format List
