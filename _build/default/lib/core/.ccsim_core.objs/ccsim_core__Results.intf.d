lib/core/results.mli: Ccsim_app Ccsim_cca Ccsim_tcp Ccsim_util Format
