lib/core/fig1_taxonomy.mli:
