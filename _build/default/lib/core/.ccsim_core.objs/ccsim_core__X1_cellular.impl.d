lib/core/x1_cellular.ml: Ccsim_util Float List Results Scenario
