lib/core/x4_scavenger.ml: Ccsim_util List Results Scenario
