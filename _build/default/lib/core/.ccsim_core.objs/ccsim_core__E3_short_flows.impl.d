lib/core/e3_short_flows.ml: Ccsim_util List Printf Scenario
