lib/core/e6_subpacket.ml: Array Ccsim_util Float List Printf Results Scenario
