lib/core/fig2.mli: Ccsim_measure
