lib/core/e1_fq.ml: Ccsim_util List Printf Results Scenario
