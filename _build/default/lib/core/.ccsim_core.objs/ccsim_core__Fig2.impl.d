lib/core/fig2.ml: Ccsim_measure Ccsim_util Printf
