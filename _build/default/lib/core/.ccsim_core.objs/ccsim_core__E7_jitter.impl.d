lib/core/e7_jitter.ml: Ccsim_net Ccsim_util List Printf Results Scenario
