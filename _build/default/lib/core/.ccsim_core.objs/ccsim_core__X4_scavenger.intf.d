lib/core/x4_scavenger.mli:
