lib/core/x1_cellular.mli:
