lib/core/x2_harm.ml: Ccsim_util Float List Printf Results Scenario
