lib/core/x3_rcs.ml: Ccsim_cca Ccsim_engine Ccsim_measure Ccsim_net Ccsim_tcp Ccsim_util Float List
