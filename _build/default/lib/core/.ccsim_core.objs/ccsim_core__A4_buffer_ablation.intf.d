lib/core/a4_buffer_ablation.mli:
