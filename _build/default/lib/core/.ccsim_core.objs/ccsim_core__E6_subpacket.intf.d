lib/core/e6_subpacket.mli:
