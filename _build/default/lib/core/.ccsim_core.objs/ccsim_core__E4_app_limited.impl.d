lib/core/e4_app_limited.ml: Ccsim_util Float List Printf Results Scenario
