lib/core/e5_video.ml: Ccsim_util List Printf Results Scenario
