lib/core/fig1_taxonomy.ml: Ccsim_net Ccsim_util Float List Results Scenario
