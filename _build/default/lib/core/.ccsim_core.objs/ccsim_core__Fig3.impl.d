lib/core/fig3.ml: Array Ccsim_util List Printf Results Scenario
