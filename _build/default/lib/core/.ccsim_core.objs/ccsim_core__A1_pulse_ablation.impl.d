lib/core/a1_pulse_ablation.ml: Array Ccsim_app Ccsim_cca Ccsim_engine Ccsim_net Ccsim_tcp Ccsim_util List
