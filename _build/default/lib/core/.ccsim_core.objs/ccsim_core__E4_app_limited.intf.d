lib/core/e4_app_limited.mli:
