(** Declarative experiment scenarios.

    A scenario is a bottleneck (rate, delay, queue discipline), a set of
    flows (CCA x application x start time x optional per-flow shaping),
    optional background short-flow workload, and a duration. {!run}
    builds the simulation, executes it deterministically under the
    scenario's seed, and returns per-flow and aggregate results.

    This is the primary public API: every figure and experiment in the
    paper reduces to one or more scenarios. *)

type cca_spec =
  | Reno
  | Cubic
  | Bbr
  | Vegas
  | Copa
  | Tfrc
  | Ledbat  (** scavenger background transport (software updates) *)
  | Aimd of { a : float; b : float }
  | Nimbus of { mode_switching : bool; known_capacity_bps : float option }
  | Custom of (Ccsim_engine.Sim.t -> Ccsim_cca.Cca.t)

type app_spec =
  | Bulk  (** persistently backlogged from [start] to [stop] *)
  | Cbr_tcp of { rate_bps : float }
  | Cbr_udp of { rate_bps : float }  (** open loop; [cca] is ignored *)
  | Onoff of { rate_bps : float; mean_on : float; mean_off : float }
  | Video of { ladder_bps : float array option }
  | Speedtest of { duration : float }

type flow_spec = {
  label : string;
  cca : cca_spec;
  app : app_spec;
  start : float;
  stop : float option;  (** close the sender at this time *)
  extra_delay_s : float;  (** additional one-way edge propagation *)
  rcv_buffer_bytes : int option;
  consume_rate_bps : float option;  (** receiver-app drain rate *)
  ingress : Ccsim_net.Topology.ingress;  (** per-flow ISP shaping/policing *)
}

val flow :
  ?cca:cca_spec ->
  ?app:app_spec ->
  ?start:float ->
  ?stop:float ->
  ?extra_delay_s:float ->
  ?rcv_buffer_bytes:int ->
  ?consume_rate_bps:float ->
  ?ingress:Ccsim_net.Topology.ingress ->
  string ->
  flow_spec
(** Defaults: Reno bulk starting at 0, 1 ms extra delay, no shaping. *)

type qdisc_spec =
  | Fifo of { limit_bytes : int option }
  | Drr of { quantum_bytes : int option; limit_bytes : int option }
  | Red
  | Codel
  | Prio of { bands : int }

type short_flows_spec = {
  arrival_rate : float;  (** flows per second *)
  mean_size_bytes : float;
  sf_stop : float option;
}

type rate_variation =
  | Steady
  | Markov_states of float array  (** jump between capacities, ~2 s dwell *)
  | Ou_wander of { volatility : float }
      (** mean-reverting wander around [rate_bps] (cellular-style fading) *)

type t = {
  name : string;
  rate_bps : float;
  delay_s : float;  (** one-way bottleneck propagation *)
  qdisc : qdisc_spec;
  flows : flow_spec list;
  short_flows : short_flows_spec option;
  rate_variation : rate_variation;
  duration : float;
  warmup : float;  (** excluded from goodput/fairness metrics *)
  seed : int;
  monitor_interval : float;
}

val make :
  ?qdisc:qdisc_spec ->
  ?short_flows:short_flows_spec ->
  ?rate_variation:rate_variation ->
  ?duration:float ->
  ?warmup:float ->
  ?seed:int ->
  ?monitor_interval:float ->
  name:string ->
  rate_bps:float ->
  delay_s:float ->
  flow_spec list ->
  t
(** Defaults: drop-tail FIFO, steady rate, 30 s duration, 5 s warmup,
    seed 42, 100 ms monitoring. *)

val run : t -> Results.t
