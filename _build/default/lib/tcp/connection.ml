module Topology = Ccsim_net.Topology
module Dispatch = Ccsim_net.Dispatch

type t = { sender : Sender.t; receiver : Receiver.t; flow : int }

let establish (topo : Topology.t) ~flow ~cca ?mss ?rcv_buffer_bytes ?consume_rate_bps
    ?delayed_ack ?(on_complete = fun _ -> ()) () =
  let sender =
    Sender.create topo.sim ~flow ~cca ~path:(topo.fwd_entry ~flow) ?mss ~on_complete ()
  in
  let receiver =
    Receiver.create topo.sim ~flow ~ack_path:(topo.rev_entry ~flow)
      ?buffer_bytes:rcv_buffer_bytes ?consume_rate_bps ?delayed_ack ()
  in
  Dispatch.register topo.fwd_dispatch ~flow (Receiver.handle_data receiver);
  Dispatch.register topo.rev_dispatch ~flow (Sender.handle_ack sender);
  { sender; receiver; flow }

let teardown (topo : Topology.t) t =
  Sender.stop t.sender;
  Dispatch.unregister topo.fwd_dispatch ~flow:t.flow;
  Dispatch.unregister topo.rev_dispatch ~flow:t.flow

let goodput_bps t ~over =
  if over <= 0.0 then invalid_arg "Connection.goodput_bps: duration must be positive";
  float_of_int (Receiver.bytes_received t.receiver) *. 8.0 /. over
