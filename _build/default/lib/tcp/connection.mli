(** Convenience wiring of a sender/receiver pair onto a topology.

    Registers the receiver on the forward dispatch and the sender on the
    reverse dispatch, so a connection is one call to set up and tear
    down. *)

type t = { sender : Sender.t; receiver : Receiver.t; flow : int }

val establish :
  Ccsim_net.Topology.t ->
  flow:int ->
  cca:Ccsim_cca.Cca.t ->
  ?mss:int ->
  ?rcv_buffer_bytes:int ->
  ?consume_rate_bps:float ->
  ?delayed_ack:bool ->
  ?on_complete:(Sender.t -> unit) ->
  unit ->
  t
(** Raises [Invalid_argument] (via {!Ccsim_net.Dispatch.register}) if the
    flow id is already in use on the topology. *)

val teardown : Ccsim_net.Topology.t -> t -> unit
(** Stop the sender and unregister both handlers (in-flight packets for
    the flow are then counted as unmatched by the dispatches). *)

val goodput_bps : t -> over:float -> float
(** Contiguous bytes received divided by [over] seconds. *)
