(** TCP sender: segmentation, loss detection/recovery, pacing, and
    limited-state accounting.

    The model is NewReno-style: MSS-sized segments, cumulative acks,
    fast retransmit after three duplicate acks with one retransmission
    per partial ack during recovery, and an RFC 6298 retransmission
    timer with exponential backoff (no SACK — see DESIGN.md). The
    congestion window and optional pacing rate come from the attached
    {!Ccsim_cca.Cca.t}; BBR-style delivery-rate samples are fed back to
    it on every ack.

    Applications put bytes in the send buffer with {!write} (or declare
    the flow persistently backlogged with {!set_unlimited}); the sender
    tracks, with cumulative timers, whether the connection is limited by
    the application, the receiver window, or the congestion window —
    the TCPInfo fields the paper's M-Lab analysis keys on. *)

type t

val create :
  Ccsim_engine.Sim.t ->
  flow:int ->
  cca:Ccsim_cca.Cca.t ->
  path:(Ccsim_net.Packet.t -> unit) ->
  ?mss:int ->
  ?on_complete:(t -> unit) ->
  unit ->
  t
(** [path] is the flow's data injection point (e.g.
    [Topology.fwd_entry]). [on_complete] fires when {!close} was called
    and every written byte has been cumulatively acknowledged. *)

val flow : t -> int
val write : t -> int -> unit
(** Append bytes to the send buffer and try to transmit. *)

val set_unlimited : t -> unit
(** Mark the flow persistently backlogged (bulk transfer). *)

val close : t -> unit
(** No more application data will arrive; [on_complete] fires once
    outstanding data is acknowledged (immediately if none). *)

val handle_ack : t -> Ccsim_net.Packet.t -> unit
(** Deliver an ack packet (register this with the reverse dispatch). *)

val bytes_acked : t -> int
val ecn_responses : t -> int
(** Number of once-per-RTT congestion responses triggered by ECN echoes
    (requires an ECN-marking qdisc such as {!Ccsim_net.Red.create}
    [~ecn:true]). *)

val bytes_sent : t -> int
val bytes_retrans : t -> int
val segs_retrans : t -> int
val inflight : t -> int
val send_buffer : t -> int
(** Unsent application bytes currently buffered ([max_int]-ish when
    unlimited). *)

val cca : t -> Ccsim_cca.Cca.t
val srtt : t -> float
val min_rtt : t -> float
(** [infinity] before the first RTT sample. *)

val info : t -> Tcp_info.t
(** Current TCPInfo snapshot. *)

val stop : t -> unit
(** Halt transmission and cancel timers (used when tearing a flow down
    mid-simulation). *)
