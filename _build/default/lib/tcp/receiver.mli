(** TCP receiver: cumulative acknowledgments, out-of-order buffering, and
    receive-window (flow-control) modeling.

    Every data segment triggers an immediate ack carrying the cumulative
    next-expected byte and the advertised window. The receive window
    models a finite buffer drained by the receiving application at a
    configurable rate — the mechanism behind the "receiver-limited"
    flows that the paper's M-Lab analysis filters out. *)

type t

val create :
  Ccsim_engine.Sim.t ->
  flow:int ->
  ack_path:(Ccsim_net.Packet.t -> unit) ->
  ?buffer_bytes:int ->
  ?consume_rate_bps:float ->
  ?delayed_ack:bool ->
  unit ->
  t
(** [ack_path] is where acks are injected (e.g. [Topology.rev_entry]).
    [buffer_bytes] defaults to 4 MiB; [consume_rate_bps] to [infinity]
    (the application drains instantly, so the flow is never
    receiver-limited). With [delayed_ack] (default false, per-packet
    acking), in-order segments are acknowledged every second packet or
    after 40 ms, whichever first; out-of-order data is acked
    immediately (RFC 5681 requirements). *)

val handle_data : t -> Ccsim_net.Packet.t -> unit
(** Deliver a data packet (register this with the forward dispatch). *)

val bytes_received : t -> int
(** Contiguous bytes received (the current cumulative ack point). *)

val acks_sent : t -> int
val advertised_window : t -> int
(** Current rwnd in bytes. *)

val receive_times : t -> Ccsim_util.Timeseries.t
(** (arrival time, cumulative contiguous bytes) — one point per data
    packet, used for goodput and jitter analysis. *)
