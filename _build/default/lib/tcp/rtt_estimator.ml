type t = {
  min_rto : float;
  max_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable min_rtt : float;
  mutable backoff_factor : float;
  mutable samples : int;
}

let create ?(min_rto = 0.2) ?(max_rto = 60.0) () =
  if min_rto <= 0.0 || max_rto < min_rto then invalid_arg "Rtt_estimator.create: bad bounds";
  {
    min_rto;
    max_rto;
    srtt = 0.0;
    rttvar = 0.0;
    min_rtt = infinity;
    backoff_factor = 1.0;
    samples = 0;
  }

let observe t r =
  if r <= 0.0 then invalid_arg "Rtt_estimator.observe: RTT must be positive";
  if t.samples = 0 then begin
    t.srtt <- r;
    t.rttvar <- r /. 2.0
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. r));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. r)
  end;
  if r < t.min_rtt then t.min_rtt <- r;
  t.backoff_factor <- 1.0;
  t.samples <- t.samples + 1

let srtt t = t.srtt
let rttvar t = t.rttvar
let min_rtt t = t.min_rtt

let rto t =
  let base = if t.samples = 0 then 1.0 else t.srtt +. Float.max 0.001 (4.0 *. t.rttvar) in
  (* Backoff multiplies the floored RTO (as deployed stacks do), so each
     timeout genuinely doubles the wait even when the floor binds. *)
  Float.min t.max_rto (Float.max t.min_rto base *. t.backoff_factor)

let backoff t = t.backoff_factor <- Float.min (t.backoff_factor *. 2.0) 64.0
let samples t = t.samples
