(** RTT estimation and retransmission-timeout computation (RFC 6298,
    Jacobson/Karels). *)

type t

val create : ?min_rto:float -> ?max_rto:float -> unit -> t
(** Defaults: [min_rto] 0.2 s (Linux-like rather than RFC's 1 s, so
    short simulations aren't dominated by the floor), [max_rto] 60 s. *)

val observe : t -> float -> unit
(** Feed an RTT sample in seconds (must be positive). Resets any RTO
    backoff. *)

val srtt : t -> float
(** Smoothed RTT; 0 before the first sample. *)

val rttvar : t -> float
val min_rtt : t -> float
(** Lifetime minimum sample; [infinity] before the first sample. *)

val rto : t -> float
(** Current retransmission timeout, including backoff. Before any sample:
    1 s (RFC 6298 initial value), clamped to the configured bounds. *)

val backoff : t -> unit
(** Double the RTO (up to [max_rto]) after a timeout fires. *)

val samples : t -> int
