lib/tcp/sender.ml: Ccsim_cca Ccsim_engine Ccsim_net Ccsim_util Float List Queue Rtt_estimator Tcp_info
