lib/tcp/connection.mli: Ccsim_cca Ccsim_net Receiver Sender
