lib/tcp/connection.ml: Ccsim_net Receiver Sender
