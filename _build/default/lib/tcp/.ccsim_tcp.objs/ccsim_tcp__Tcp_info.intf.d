lib/tcp/tcp_info.mli: Format
