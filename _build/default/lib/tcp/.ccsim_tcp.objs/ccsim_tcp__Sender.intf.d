lib/tcp/sender.mli: Ccsim_cca Ccsim_engine Ccsim_net Tcp_info
