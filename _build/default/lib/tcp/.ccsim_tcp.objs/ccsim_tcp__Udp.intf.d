lib/tcp/udp.mli: Ccsim_engine Ccsim_net Ccsim_util
