lib/tcp/receiver.ml: Ccsim_engine Ccsim_net Ccsim_util Float List
