lib/tcp/udp.ml: Array Ccsim_engine Ccsim_net Ccsim_util Float
