lib/tcp/receiver.mli: Ccsim_engine Ccsim_net Ccsim_util
