lib/tcp/tcp_info.ml: Format
