lib/tcp/rtt_estimator.ml: Float
