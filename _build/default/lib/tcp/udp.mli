(** Unreliable datagram endpoints, for CBR and other open-loop traffic.

    A UDP source pushes packets onto the forward path without feedback;
    a sink records arrival times and inter-arrival jitter. *)

module Source : sig
  type t

  val create :
    Ccsim_engine.Sim.t -> flow:int -> path:(Ccsim_net.Packet.t -> unit) -> ?mss:int -> unit -> t

  val send : t -> bytes:int -> unit
  (** Emit one datagram of [bytes] payload (split into MSS-sized packets
      if larger). *)

  val bytes_sent : t -> int
end

module Sink : sig
  type t

  val create : Ccsim_engine.Sim.t -> unit -> t

  val handle : t -> Ccsim_net.Packet.t -> unit
  (** Register with the forward dispatch. *)

  val bytes_received : t -> int
  val packets_received : t -> int

  val arrivals : t -> Ccsim_util.Timeseries.t
  (** (arrival time, packet size) points. *)

  val interarrival_jitter : t -> float
  (** RFC 3550-style mean absolute deviation of inter-arrival gaps, in
      seconds; 0 with fewer than three packets. *)
end
