module Sim = Ccsim_engine.Sim
module Packet = Ccsim_net.Packet

module Source = struct
  type t = {
    sim : Sim.t;
    flow : int;
    path : Packet.t -> unit;
    mss : int;
    mutable next_seq : int;
    mutable bytes_sent : int;
  }

  let create sim ~flow ~path ?(mss = Ccsim_util.Units.mss) () =
    { sim; flow; path; mss; next_seq = 0; bytes_sent = 0 }

  let send t ~bytes =
    if bytes <= 0 then invalid_arg "Udp.Source.send: bytes must be positive";
    let remaining = ref bytes in
    while !remaining > 0 do
      let len = min t.mss !remaining in
      remaining := !remaining - len;
      t.bytes_sent <- t.bytes_sent + len;
      let pkt =
        Packet.data ~flow:t.flow ~seq:t.next_seq ~payload_bytes:len ~sent_at:(Sim.now t.sim) ()
      in
      t.next_seq <- t.next_seq + len;
      t.path pkt
    done

  let bytes_sent t = t.bytes_sent
end

module Sink = struct
  type t = {
    sim : Sim.t;
    mutable bytes : int;
    mutable packets : int;
    arrivals : Ccsim_util.Timeseries.t;
  }

  let create sim () =
    { sim; bytes = 0; packets = 0; arrivals = Ccsim_util.Timeseries.create () }

  let handle t (pkt : Packet.t) =
    t.bytes <- t.bytes + pkt.payload_bytes;
    t.packets <- t.packets + 1;
    Ccsim_util.Timeseries.add t.arrivals ~time:(Sim.now t.sim)
      ~value:(float_of_int pkt.size_bytes)

  let bytes_received t = t.bytes
  let packets_received t = t.packets
  let arrivals t = t.arrivals

  let interarrival_jitter t =
    let times = Ccsim_util.Timeseries.times t.arrivals in
    let n = Array.length times in
    if n < 3 then 0.0
    else begin
      let gaps = Array.init (n - 1) (fun i -> times.(i + 1) -. times.(i)) in
      let mean_gap = Ccsim_util.Stats.mean gaps in
      let dev = Array.map (fun g -> Float.abs (g -. mean_gap)) gaps in
      Ccsim_util.Stats.mean dev
    end
end
