lib/engine/sim.ml: Event_heap
