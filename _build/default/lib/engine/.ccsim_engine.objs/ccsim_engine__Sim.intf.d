lib/engine/sim.mli:
