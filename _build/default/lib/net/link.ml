type t = {
  sim : Ccsim_engine.Sim.t;
  mutable rate_bps : float;
  delay_s : float;
  qdisc : Qdisc.t;
  sink : Packet.t -> unit;
  mutable busy : bool;
  mutable busy_seconds : float;
  mutable bytes_delivered : int;
}

let create sim ~rate_bps ~delay_s ?qdisc ~sink () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be positive";
  if delay_s < 0.0 then invalid_arg "Link.create: negative delay";
  let qdisc = match qdisc with Some q -> q | None -> Fifo.create () in
  {
    sim;
    rate_bps;
    delay_s;
    qdisc;
    sink;
    busy = false;
    busy_seconds = 0.0;
    bytes_delivered = 0;
  }

let rec transmit_next t =
  match t.qdisc.Qdisc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let tx_time =
        Ccsim_util.Units.seconds_to_transmit ~size_bytes:pkt.Packet.size_bytes
          ~rate_bps:t.rate_bps
      in
      t.busy_seconds <- t.busy_seconds +. tx_time;
      ignore
        (Ccsim_engine.Sim.schedule t.sim ~delay:tx_time (fun () ->
             t.bytes_delivered <- t.bytes_delivered + pkt.size_bytes;
             ignore
               (Ccsim_engine.Sim.schedule t.sim ~delay:t.delay_s (fun () -> t.sink pkt));
             transmit_next t))

let send t pkt =
  if t.qdisc.Qdisc.enqueue pkt && not t.busy then transmit_next t

let as_sink t pkt = send t pkt
let rate_bps t = t.rate_bps

let set_rate t rate =
  if rate <= 0.0 then invalid_arg "Link.set_rate: rate must be positive";
  t.rate_bps <- rate

let delay_s t = t.delay_s
let qdisc t = t.qdisc
let busy_seconds t = t.busy_seconds
let utilization t ~now = if now <= 0.0 then 0.0 else t.busy_seconds /. now
let bytes_delivered t = t.bytes_delivered
