(** Strict priority queueing over a fixed number of bands.

    Packets carry a [prio] field (0 = highest); dequeue always serves the
    lowest-numbered non-empty band. Hyperscaler WANs use priority
    queueing to eliminate inter-application contention (§2.1, e.g.
    Azure's split-WAN work). *)

val create : ?bands:int -> ?limit_bytes_per_band:int -> unit -> Qdisc.t
(** Default 3 bands; packets with [prio >= bands] go to the last band. *)
