(** Parking-lot (multi-segment) topology.

    A chain of bottleneck links L0 .. L(k-1); each flow enters at one
    segment and exits after another, so long paths cross several
    potential bottlenecks while local flows load single segments — the
    classic setting for multi-hop fairness questions, and the
    quantitative backdrop for §2.2's observation that on today's short
    paths the access segment is usually the only contended one.

    Acks return on a per-flow uncongested reverse link spanning the
    traversed propagation delay, as in {!Topology}. *)

type t

val links : t -> Link.t array
(** The forward segments, in path order. *)

val fwd_dispatch : t -> Dispatch.t
(** Receivers register data handlers here. *)

val rev_dispatch : t -> Dispatch.t
(** Senders register ack handlers here. *)

val create :
  Ccsim_engine.Sim.t ->
  rates_bps:float array ->
  ?delay_s:float ->
  ?qdisc_of:(int -> Qdisc.t) ->
  ?rev_rate_bps:float ->
  unit ->
  t
(** [rates_bps] gives each segment's capacity (at least one segment).
    [delay_s] is the per-segment one-way propagation (default 10 ms);
    [qdisc_of i] builds segment [i]'s queue (default drop-tail FIFO).
    The reverse path runs at [rev_rate_bps] (default 100x the fastest
    segment). *)

val segment_count : t -> int

val attach :
  t -> flow:int -> enter:int -> exit_after:int -> (Packet.t -> unit) * (Packet.t -> unit)
(** [attach t ~flow ~enter ~exit_after] routes [flow] through segments
    [enter .. exit_after] (inclusive; [enter <= exit_after], both in
    range) and returns [(data_entry, ack_entry)] — the flow's injection
    points for the forward and reverse directions. Raises
    [Invalid_argument] on bad indices or an already-attached flow.

    Register the receiver on [fwd_dispatch] and the sender on
    [rev_dispatch], as with {!Topology}; or use
    {!Ccsim_tcp.Connection.establish} with a {!as_topology} view. *)

val as_topology : t -> flow_routes:(int -> int * int) -> Topology.t
(** View the parking lot through the {!Topology.t} record so existing
    helpers ({!Ccsim_tcp.Connection.establish}) work unchanged:
    [flow_routes flow] gives (enter, exit_after) for each flow; flows
    are attached lazily on first use. The [bottleneck] field is segment
    0. *)
