type t = {
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  mutable unmatched : int;
}

let create () = { handlers = Hashtbl.create 16; unmatched = 0 }

let register t ~flow handler =
  if Hashtbl.mem t.handlers flow then invalid_arg "Dispatch.register: flow already registered";
  Hashtbl.add t.handlers flow handler

let unregister t ~flow = Hashtbl.remove t.handlers flow

let deliver t (pkt : Packet.t) =
  match Hashtbl.find_opt t.handlers pkt.flow with
  | Some handler -> handler pkt
  | None -> t.unmatched <- t.unmatched + 1

let as_sink t pkt = deliver t pkt
let unmatched t = t.unmatched
