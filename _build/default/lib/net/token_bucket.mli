(** Token-bucket state machine: tokens (in bytes) accrue at a fixed rate
    up to a burst cap. Shared by {!Shaper} (queues excess) and
    {!Policer} (drops excess) — the two ISP traffic-management
    behaviours §2.1 discusses (Flach et al.). *)

type t

val create : rate_bps:float -> burst_bytes:int -> now:float -> t
(** Bucket starts full. [rate_bps] and [burst_bytes] must be positive. *)

val rate_bps : t -> float
val burst_bytes : t -> int

val refill : t -> now:float -> unit
(** Accrue tokens for the elapsed time. [now] must not move backwards. *)

val try_consume : t -> now:float -> bytes:int -> bool
(** Refill, then consume [bytes] tokens if available; [false] leaves the
    bucket unchanged (beyond the refill). *)

val tokens : t -> now:float -> float
(** Current token level in bytes after refilling. *)

val time_until_available : t -> now:float -> bytes:int -> float
(** Seconds until [bytes] tokens will be available (0 when already
    conforming). [bytes] may exceed the burst size, in which case the
    bucket can never cover it — raises [Invalid_argument]. *)
