(** CoDel AQM (Nichols & Jacobson 2012), simplified.

    Controls standing queue delay: when every packet dequeued over an
    [interval] has sojourned longer than [target], CoDel enters a
    dropping state and drops at increasing frequency
    (interval / sqrt(drop_count)) until sojourn falls below target.
    Needs the simulation clock to timestamp sojourn times. *)

val create :
  now:(unit -> float) ->
  ?target:float ->
  ?interval:float ->
  ?limit_bytes:int ->
  unit ->
  Qdisc.t
(** Defaults: [target] 5 ms, [interval] 100 ms. *)
