type t = {
  rate_bps : float;
  burst_bytes : int;
  mutable tokens : float; (* bytes *)
  mutable updated : float;
}

let create ~rate_bps ~burst_bytes ~now =
  if rate_bps <= 0.0 then invalid_arg "Token_bucket.create: rate must be positive";
  if burst_bytes <= 0 then invalid_arg "Token_bucket.create: burst must be positive";
  { rate_bps; burst_bytes; tokens = float_of_int burst_bytes; updated = now }

let rate_bps t = t.rate_bps
let burst_bytes t = t.burst_bytes

let refill t ~now =
  if now < t.updated then invalid_arg "Token_bucket.refill: time moved backwards";
  let accrued = t.rate_bps *. (now -. t.updated) /. 8.0 in
  t.tokens <- Float.min (float_of_int t.burst_bytes) (t.tokens +. accrued);
  t.updated <- now

let try_consume t ~now ~bytes =
  refill t ~now;
  let need = float_of_int bytes in
  (* Small tolerance so accumulated float rounding in refill cannot leave
     the bucket permanently a hair short of a whole packet. *)
  if t.tokens >= need -. 1e-6 then begin
    t.tokens <- Float.max 0.0 (t.tokens -. need);
    true
  end
  else false

let tokens t ~now =
  refill t ~now;
  t.tokens

let time_until_available t ~now ~bytes =
  if bytes > t.burst_bytes then
    invalid_arg "Token_bucket.time_until_available: request exceeds burst size";
  refill t ~now;
  let deficit = float_of_int bytes -. t.tokens in
  if deficit <= 0.0 then 0.0 else deficit *. 8.0 /. t.rate_bps
