(** Token-bucket traffic shaper.

    Queues packets that exceed the configured rate and releases them when
    tokens accrue — the "router queues the user's excess traffic" form of
    ISP bandwidth management (§2.1). Packets are released in FIFO order;
    arrivals beyond the queue limit are dropped. *)

type t

val create :
  Ccsim_engine.Sim.t ->
  rate_bps:float ->
  burst_bytes:int ->
  ?limit_bytes:int ->
  sink:(Packet.t -> unit) ->
  unit ->
  t
(** [limit_bytes] bounds the shaping queue (default as {!Fifo.create}). *)

val input : t -> Packet.t -> unit
(** Offer a packet to the shaper. *)

val backlog_bytes : t -> int
val dropped : t -> int
val forwarded : t -> int

val as_sink : t -> Packet.t -> unit
(** Convenience partial application of {!input} for path wiring. *)
