type t = {
  sim : Ccsim_engine.Sim.t;
  bucket : Token_bucket.t;
  sink : Packet.t -> unit;
  mutable dropped : int;
  mutable forwarded : int;
}

let create sim ~rate_bps ~burst_bytes ~sink () =
  {
    sim;
    bucket = Token_bucket.create ~rate_bps ~burst_bytes ~now:(Ccsim_engine.Sim.now sim);
    sink;
    dropped = 0;
    forwarded = 0;
  }

let input t (pkt : Packet.t) =
  let now = Ccsim_engine.Sim.now t.sim in
  if Token_bucket.try_consume t.bucket ~now ~bytes:pkt.size_bytes then begin
    t.forwarded <- t.forwarded + 1;
    t.sink pkt
  end
  else t.dropped <- t.dropped + 1

let dropped t = t.dropped
let forwarded t = t.forwarded
let as_sink t pkt = input t pkt
