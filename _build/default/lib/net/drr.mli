(** Deficit round-robin fair queueing (Shreedhar & Varghese).

    Per-flow queues served round-robin with a byte quantum, approximating
    max-min fair bandwidth sharing — the in-network isolation mechanism
    the paper argues "would entirely eliminate the role of CCA dynamics
    in determining bandwidth allocations" (§2.1). When the shared buffer
    is full, the packet at the tail of the currently longest queue is
    dropped (longest-queue-drop, as in fq_codel's memory pressure
    behaviour), which protects low-rate flows. *)

val create :
  ?quantum_bytes:int ->
  ?limit_bytes:int ->
  ?weight_of_flow:(int -> float) ->
  unit ->
  Qdisc.t
(** [quantum_bytes] defaults to one MSS-sized packet; [limit_bytes] to the
    same default as {!Fifo.create}. [weight_of_flow] scales each flow's
    quantum (default: uniform weights), giving weighted fair queueing. *)
