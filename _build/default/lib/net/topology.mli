(** Canonical experiment topologies.

    The paper's scenarios (access links, peering links, emulated Mahimahi
    paths) all reduce to a dumbbell: per-flow edge links feeding a shared
    bottleneck, with an uncongested reverse path for acks. Optional
    per-flow ingress elements model ISP shaping/policing. *)

type ingress =
  | No_ingress
  | Shape of { rate_bps : float; burst_bytes : int }  (** token-bucket shaper *)
  | Police of { rate_bps : float; burst_bytes : int }  (** token-bucket policer *)

type t = {
  sim : Ccsim_engine.Sim.t;
  bottleneck : Link.t;
  fwd_dispatch : Dispatch.t;  (** receivers register data handlers here *)
  rev_dispatch : Dispatch.t;  (** senders register ack handlers here *)
  fwd_entry : flow:int -> Packet.t -> unit;  (** data injection point for a flow *)
  rev_entry : flow:int -> Packet.t -> unit;  (** ack injection point for a flow *)
  one_way_delay : flow:int -> float;  (** base propagation delay, one way *)
}

val dumbbell :
  Ccsim_engine.Sim.t ->
  rate_bps:float ->
  delay_s:float ->
  ?qdisc:Qdisc.t ->
  ?edge_delay:(int -> float) ->
  ?edge_rate_bps:float ->
  ?ingress:(int -> ingress) ->
  ?rev_rate_bps:float ->
  unit ->
  t
(** [dumbbell sim ~rate_bps ~delay_s ()] builds a shared bottleneck of the
    given rate with one-way propagation [delay_s].

    - [qdisc]: bottleneck queue (default drop-tail FIFO).
    - [edge_delay flow]: extra one-way propagation on a flow's edge link
      (default 1 ms), providing RTT diversity.
    - [edge_rate_bps]: edge link speed (default 100x bottleneck, i.e.
      uncongested).
    - [ingress flow]: shaping/policing applied to the flow's traffic
      before the bottleneck.
    - [rev_rate_bps]: reverse-path speed for acks (default 100x
      bottleneck; the reverse path has its own links and never contends
      with forward data).

    Edge links and ingress elements are created lazily, one per flow id,
    on first use of [fwd_entry]/[rev_entry]. *)

val base_rtt : t -> flow:int -> float
(** Two-way propagation delay for a flow (excludes serialization and
    queueing). *)
