(** Random Early Detection (Floyd & Jacobson 1993).

    Probabilistically drops (or ECN-marks) arrivals as the EWMA of queue
    length grows between [min_th] and [max_th]; drops everything above
    [max_th]. Included as the classic AQM baseline for the isolation
    experiments. *)

val create :
  ?min_th_bytes:int ->
  ?max_th_bytes:int ->
  ?max_p:float ->
  ?weight:float ->
  ?limit_bytes:int ->
  ?ecn:bool ->
  unit ->
  Qdisc.t
(** Defaults: min 30 packets, max 90 packets (full-size), [max_p] 0.1,
    EWMA [weight] 0.002, hard limit as {!Fifo.create}, drop (not mark). *)
