(** Token-bucket traffic policer.

    Drops packets that exceed the configured rate instead of queueing
    them — the behaviour Flach et al. found on 7% of measured paths
    (§2.1). Conforming packets pass through with no added delay. *)

type t

val create :
  Ccsim_engine.Sim.t -> rate_bps:float -> burst_bytes:int -> sink:(Packet.t -> unit) -> unit -> t

val input : t -> Packet.t -> unit
val dropped : t -> int
val forwarded : t -> int
val as_sink : t -> Packet.t -> unit
