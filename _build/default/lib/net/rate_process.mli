(** Time-varying link capacity processes.

    §2.3/§5.1 of the paper argue that variable-rate links (cellular,
    satellite, even future fiber) are where congestion control work
    should focus once contention stops mattering. These processes drive
    {!Link.set_rate} on a timer to emulate such links.

    All processes are deterministic given their RNG stream. *)

type t

val markov :
  Ccsim_engine.Sim.t ->
  link:Link.t ->
  rng:Ccsim_util.Rng.t ->
  states_bps:float array ->
  ?mean_dwell_s:float ->
  unit ->
  t
(** Jump between the given capacity states, staying in each for an
    exponentially distributed dwell time (default mean 2 s) — the
    classic coarse cellular model. *)

val ornstein_uhlenbeck :
  Ccsim_engine.Sim.t ->
  link:Link.t ->
  rng:Ccsim_util.Rng.t ->
  mean_bps:float ->
  ?volatility:float ->
  ?reversion:float ->
  ?floor_bps:float ->
  ?tick:float ->
  unit ->
  t
(** Mean-reverting continuous wander: each [tick] (default 100 ms) the
    rate moves toward [mean_bps] with pull [reversion] (default 0.3/s)
    plus Gaussian noise of standard deviation [volatility] x mean per
    sqrt-second (default 0.15), floored at [floor_bps] (default 5% of
    the mean). Models fast fading on a cellular link. *)

val rate_series : t -> Ccsim_util.Timeseries.t
(** The (time, rate) trajectory applied so far. *)

val mean_rate : t -> float
(** Time-weighted mean of the applied trajectory (0 when empty). *)
