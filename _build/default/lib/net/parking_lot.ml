module Sim = Ccsim_engine.Sim

type t = {
  sim : Sim.t;
  links : Link.t array;
  fwd_dispatch : Dispatch.t;
  rev_dispatch : Dispatch.t;
  delay_s : float;
  rev_rate_bps : float;
  exits : (int, int) Hashtbl.t;  (* flow -> index of its last segment *)
  rev_entries : (int, Packet.t -> unit) Hashtbl.t;
}

let create sim ~rates_bps ?(delay_s = 0.01) ?qdisc_of ?rev_rate_bps () =
  let k = Array.length rates_bps in
  if k = 0 then invalid_arg "Parking_lot.create: need at least one segment";
  Array.iter
    (fun r -> if r <= 0.0 then invalid_arg "Parking_lot.create: rates must be positive")
    rates_bps;
  let fwd_dispatch = Dispatch.create () in
  let rev_dispatch = Dispatch.create () in
  let exits : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* Build back-to-front: each segment's sink routes a packet onward or
     delivers it, depending on where its flow exits. *)
  let links = Array.make k None in
  for i = k - 1 downto 0 do
    let sink (pkt : Packet.t) =
      let exit_after =
        match Hashtbl.find_opt exits pkt.flow with Some e -> e | None -> k - 1
      in
      if exit_after <= i || i = k - 1 then Dispatch.deliver fwd_dispatch pkt
      else
        match links.(i + 1) with
        | Some next -> Link.send next pkt
        | None -> assert false
    in
    let qdisc = Option.map (fun f -> f i) qdisc_of in
    links.(i) <- Some (Link.create sim ~rate_bps:rates_bps.(i) ~delay_s ?qdisc ~sink ())
  done;
  let links = Array.map (function Some l -> l | None -> assert false) links in
  let rev_rate =
    match rev_rate_bps with
    | Some r -> r
    | None -> 100.0 *. Array.fold_left Float.max 0.0 rates_bps
  in
  {
    sim;
    links;
    fwd_dispatch;
    rev_dispatch;
    delay_s;
    rev_rate_bps = rev_rate;
    exits;
    rev_entries = Hashtbl.create 16;
  }

let links t = t.links
let fwd_dispatch t = t.fwd_dispatch
let rev_dispatch t = t.rev_dispatch
let segment_count t = Array.length t.links

let attach t ~flow ~enter ~exit_after =
  let k = segment_count t in
  if enter < 0 || exit_after >= k || enter > exit_after then
    invalid_arg "Parking_lot.attach: bad segment range";
  if Hashtbl.mem t.exits flow then invalid_arg "Parking_lot.attach: flow already attached";
  Hashtbl.add t.exits flow exit_after;
  let data_entry = Link.as_sink t.links.(enter) in
  let hops = float_of_int (exit_after - enter + 1) in
  let rev_link =
    Link.create t.sim ~rate_bps:t.rev_rate_bps ~delay_s:(hops *. t.delay_s)
      ~qdisc:(Fifo.create ~limit_bytes:100_000_000 ())
      ~sink:(Dispatch.as_sink t.rev_dispatch) ()
  in
  let ack_entry = Link.as_sink rev_link in
  Hashtbl.add t.rev_entries flow ack_entry;
  (data_entry, ack_entry)

let as_topology t ~flow_routes =
  let fwd_cache : (int, Packet.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  let ensure flow =
    match Hashtbl.find_opt fwd_cache flow with
    | Some entries -> (entries, Hashtbl.find t.rev_entries flow)
    | None ->
        let enter, exit_after = flow_routes flow in
        let data_entry, ack_entry = attach t ~flow ~enter ~exit_after in
        Hashtbl.add fwd_cache flow data_entry;
        (data_entry, ack_entry)
  in
  {
    Topology.sim = t.sim;
    bottleneck = t.links.(0);
    fwd_dispatch = t.fwd_dispatch;
    rev_dispatch = t.rev_dispatch;
    fwd_entry = (fun ~flow pkt -> (fst (ensure flow)) pkt);
    rev_entry = (fun ~flow pkt -> (snd (ensure flow)) pkt);
    one_way_delay =
      (fun ~flow ->
        let enter, exit_after = flow_routes flow in
        float_of_int (exit_after - enter + 1) *. t.delay_s);
  }
