(** Packet event tracing.

    A bounded in-memory log of packet-level events (sends, deliveries,
    drops) for debugging scenarios and asserting fine-grained behaviour
    in tests. Wrap any sink with {!tap} to record deliveries at that
    point; qdisc/shaper drops are recorded by the caller via
    {!record}. *)

type event_kind = Sent | Delivered | Dropped

type event = {
  at : float;
  kind : event_kind;
  point : string;  (** where in the path the event was observed *)
  flow : int;
  seq : int;
  size_bytes : int;
  is_ack : bool;
  retx : bool;
}

type t

val create : ?capacity:int -> Ccsim_engine.Sim.t -> t
(** Keeps the most recent [capacity] events (default 100,000). *)

val record : t -> kind:event_kind -> point:string -> Packet.t -> unit

val tap : t -> point:string -> (Packet.t -> unit) -> Packet.t -> unit
(** [tap trace ~point sink] is a sink that records a [Delivered] event
    and forwards to [sink]. *)

val tap_send : t -> point:string -> (Packet.t -> unit) -> Packet.t -> unit
(** Like {!tap} but records [Sent] — wrap a flow's injection point. *)

val events : t -> event list
(** Oldest first, within the retained window. *)

val count : t -> int
(** Total events observed (including evicted ones). *)

val filter : t -> f:(event -> bool) -> event list

val deliveries_for : t -> flow:int -> event list
val drops_for : t -> flow:int -> event list

val pp_event : Format.formatter -> event -> unit
