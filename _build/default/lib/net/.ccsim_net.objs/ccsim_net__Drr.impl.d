lib/net/drr.ml: Ccsim_util Fifo Hashtbl Packet Qdisc Queue
