lib/net/policer.ml: Ccsim_engine Packet Token_bucket
