lib/net/codel.ml: Ccsim_util Fifo Packet Qdisc Queue
