lib/net/topology.mli: Ccsim_engine Dispatch Link Packet Qdisc
