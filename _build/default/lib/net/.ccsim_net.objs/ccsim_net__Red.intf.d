lib/net/red.mli: Qdisc
