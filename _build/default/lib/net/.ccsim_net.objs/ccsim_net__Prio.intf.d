lib/net/prio.mli: Qdisc
