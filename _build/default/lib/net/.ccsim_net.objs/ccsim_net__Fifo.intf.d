lib/net/fifo.mli: Qdisc
