lib/net/dispatch.ml: Hashtbl Packet
