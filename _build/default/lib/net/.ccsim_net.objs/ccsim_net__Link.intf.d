lib/net/link.mli: Ccsim_engine Packet Qdisc
