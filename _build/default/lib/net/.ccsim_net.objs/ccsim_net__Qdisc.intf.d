lib/net/qdisc.mli: Format Packet
