lib/net/link.ml: Ccsim_engine Ccsim_util Fifo Packet Qdisc
