lib/net/topology.ml: Ccsim_engine Dispatch Fifo Hashtbl Link Packet Policer Shaper
