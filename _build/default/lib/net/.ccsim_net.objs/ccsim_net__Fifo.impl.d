lib/net/fifo.ml: Ccsim_util Packet Qdisc Queue
