lib/net/rate_process.ml: Array Ccsim_engine Ccsim_util Float Link
