lib/net/shaper.mli: Ccsim_engine Packet
