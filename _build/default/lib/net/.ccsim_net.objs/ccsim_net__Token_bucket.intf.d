lib/net/token_bucket.mli:
