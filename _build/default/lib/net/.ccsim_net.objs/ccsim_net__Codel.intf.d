lib/net/codel.mli: Qdisc
