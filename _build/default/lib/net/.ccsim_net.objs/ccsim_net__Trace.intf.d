lib/net/trace.mli: Ccsim_engine Format Packet
