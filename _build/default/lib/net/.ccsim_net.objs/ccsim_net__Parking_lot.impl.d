lib/net/parking_lot.ml: Array Ccsim_engine Dispatch Fifo Float Hashtbl Link Option Packet Topology
