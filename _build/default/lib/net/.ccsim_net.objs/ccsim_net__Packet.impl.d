lib/net/packet.ml: Ccsim_util Format
