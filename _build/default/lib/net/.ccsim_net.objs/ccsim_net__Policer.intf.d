lib/net/policer.mli: Ccsim_engine Packet
