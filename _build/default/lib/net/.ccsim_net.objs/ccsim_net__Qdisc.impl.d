lib/net/qdisc.ml: Format Packet
