lib/net/token_bucket.ml: Float
