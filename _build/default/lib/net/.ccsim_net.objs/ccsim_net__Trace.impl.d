lib/net/trace.ml: Ccsim_engine Format List Packet Queue
