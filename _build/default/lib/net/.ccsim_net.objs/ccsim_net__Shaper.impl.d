lib/net/shaper.ml: Ccsim_engine Fifo Float Packet Queue Token_bucket
