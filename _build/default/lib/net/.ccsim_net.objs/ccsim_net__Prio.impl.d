lib/net/prio.ml: Array Fifo Packet Qdisc Queue
