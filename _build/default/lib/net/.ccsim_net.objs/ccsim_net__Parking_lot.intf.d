lib/net/parking_lot.mli: Ccsim_engine Dispatch Link Packet Qdisc Topology
