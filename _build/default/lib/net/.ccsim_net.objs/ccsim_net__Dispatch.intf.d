lib/net/dispatch.mli: Packet
