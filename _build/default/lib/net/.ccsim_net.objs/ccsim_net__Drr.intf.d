lib/net/drr.mli: Qdisc
