lib/net/rate_process.mli: Ccsim_engine Ccsim_util Link
