lib/net/red.ml: Ccsim_util Fifo Packet Qdisc Queue
