(** Per-flow demultiplexer at the end of a shared path.

    Connections register a handler for their flow id; packets for
    unregistered flows are counted and discarded (e.g. data still in
    flight after a short flow closes). *)

type t

val create : unit -> t
val register : t -> flow:int -> (Packet.t -> unit) -> unit
(** Raises [Invalid_argument] if the flow already has a handler. *)

val unregister : t -> flow:int -> unit
val deliver : t -> Packet.t -> unit
val as_sink : t -> Packet.t -> unit
val unmatched : t -> int
