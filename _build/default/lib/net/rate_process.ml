module Sim = Ccsim_engine.Sim
module U = Ccsim_util

type t = { series : U.Timeseries.t; sim : Sim.t }

let record t rate =
  U.Timeseries.add t.series ~time:(Sim.now t.sim) ~value:rate

let markov sim ~link ~rng ~states_bps ?(mean_dwell_s = 2.0) () =
  if Array.length states_bps = 0 then invalid_arg "Rate_process.markov: no states";
  Array.iter
    (fun r -> if r <= 0.0 then invalid_arg "Rate_process.markov: rates must be positive")
    states_bps;
  if mean_dwell_s <= 0.0 then invalid_arg "Rate_process.markov: dwell must be positive";
  let t = { series = U.Timeseries.create (); sim } in
  let rec jump () =
    let rate = U.Rng.choose rng states_bps in
    Link.set_rate link rate;
    record t rate;
    ignore (Sim.schedule sim ~delay:(U.Rng.exponential rng ~mean:mean_dwell_s) jump)
  in
  jump ();
  t

let ornstein_uhlenbeck sim ~link ~rng ~mean_bps ?(volatility = 0.15) ?(reversion = 0.3)
    ?floor_bps ?(tick = 0.1) () =
  if mean_bps <= 0.0 then invalid_arg "Rate_process.ou: mean must be positive";
  if tick <= 0.0 then invalid_arg "Rate_process.ou: tick must be positive";
  let floor = match floor_bps with Some f -> f | None -> 0.05 *. mean_bps in
  let t = { series = U.Timeseries.create (); sim } in
  let rate = ref mean_bps in
  Link.set_rate link !rate;
  record t !rate;
  Sim.every sim ~interval:tick (fun () ->
      let pull = reversion *. (mean_bps -. !rate) *. tick in
      let noise = U.Rng.normal rng ~mean:0.0 ~stddev:(volatility *. mean_bps *. sqrt tick) in
      rate := Float.max floor (!rate +. pull +. noise);
      Link.set_rate link !rate;
      record t !rate);
  t

let rate_series t = t.series

let mean_rate t =
  if U.Timeseries.is_empty t.series then 0.0
  else U.Timeseries.time_weighted_mean t.series ~until:(Sim.now t.sim)
