(** Drop-tail FIFO, the Internet's default queue.

    The buffer limit can be expressed in bytes or packets; arrivals that
    would exceed it are dropped at the tail. *)

val default_limit_bytes : int
(** 150 full-size packets, the default buffer for every qdisc here. *)

val create : ?limit_bytes:int -> ?limit_packets:int -> unit -> Qdisc.t
(** Defaults: no packet limit, byte limit of 150 full-size packets
    (roughly a BDP of buffering on the paper's 48 Mbit/s / 100 ms link).
    Limits must be positive when given. *)
