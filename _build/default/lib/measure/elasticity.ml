module U = Ccsim_util

let score ~sample_rate ~pulse_freq ~cross ~own =
  let n = Array.length cross in
  if Array.length own <> n then invalid_arg "Elasticity.score: signal length mismatch";
  if not (U.Fft.is_power_of_two n) then
    invalid_arg "Elasticity.score: length must be a power of two";
  let cross_mag =
    U.Fft.magnitude_at (U.Fft.mean_removed cross) ~sample_rate ~freq:pulse_freq
  in
  let own_mag = U.Fft.magnitude_at (U.Fft.mean_removed own) ~sample_rate ~freq:pulse_freq in
  cross_mag /. Float.max own_mag 1e-6

let windowed ~sample_rate ~pulse_freq ~window ~cross ~own =
  if not (U.Fft.is_power_of_two window) then
    invalid_arg "Elasticity.windowed: window must be a power of two";
  let interval = 1.0 /. sample_rate in
  let cross_r = U.Timeseries.resample cross ~interval in
  let own_r = U.Timeseries.resample own ~interval in
  let cross_v = U.Timeseries.values cross_r and own_v = U.Timeseries.values own_r in
  let times = U.Timeseries.times cross_r in
  let n = min (Array.length cross_v) (Array.length own_v) in
  let out = U.Timeseries.create () in
  let step = window / 2 in
  let pos = ref window in
  while !pos <= n do
    let lo = !pos - window in
    let c = Array.sub cross_v lo window and o = Array.sub own_v lo window in
    let e = score ~sample_rate ~pulse_freq ~cross:c ~own:o in
    U.Timeseries.add out ~time:times.(!pos - 1) ~value:e;
    pos := !pos + step
  done;
  out

let classify ?(threshold = 0.5) e = if e > threshold then `Elastic else `Inelastic
