(** Offline elasticity estimation (Nimbus, §3.2).

    Computes the elasticity metric of recorded cross-traffic-estimate
    and own-send-rate signals: the one-sided FFT magnitude of the
    (mean-removed) cross-traffic estimate at the probe's pulse
    frequency, normalised by the corresponding magnitude of the sender's
    own rate signal. Elastic (buffer-filling) cross traffic mirrors the
    pulses and scores near or above 1; inelastic traffic scores near 0.

    The online estimator embedded in {!Ccsim_cca.Nimbus} uses the same
    construction over a sliding window; this module exists to score
    recorded time series and to test the estimator against synthetic
    signals. *)

val score :
  sample_rate:float -> pulse_freq:float -> cross:float array -> own:float array -> float
(** Both signals must have the same power-of-two length. The [own]
    magnitude is floored at a small epsilon to avoid division blow-ups
    when the probe was quiescent. *)

val windowed :
  sample_rate:float ->
  pulse_freq:float ->
  window:int ->
  cross:Ccsim_util.Timeseries.t ->
  own:Ccsim_util.Timeseries.t ->
  Ccsim_util.Timeseries.t
(** Slide a [window]-sample (power of two) window over the two series
    (resampled to [sample_rate]) and emit one elasticity score per half
    window, timestamped at the window's end. *)

val classify : ?threshold:float -> float -> [ `Elastic | `Inelastic ]
(** Default threshold 0.5, as used for Nimbus's mode switch. *)
