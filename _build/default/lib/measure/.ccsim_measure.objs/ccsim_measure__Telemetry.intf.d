lib/measure/telemetry.mli: Ccsim_engine Ccsim_net Ccsim_tcp Ccsim_util
