lib/measure/telemetry.ml: Array Ccsim_engine Ccsim_net Ccsim_tcp Ccsim_util Float List
