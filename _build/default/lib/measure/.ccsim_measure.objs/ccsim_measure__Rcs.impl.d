lib/measure/rcs.ml: Array Ccsim_util Float List
