lib/measure/ndt.mli: Ccsim_tcp Ccsim_util
