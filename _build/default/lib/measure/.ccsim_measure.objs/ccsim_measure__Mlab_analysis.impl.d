lib/measure/mlab_analysis.ml: Array Ccsim_util Changepoint Float Format List Ndt Option
