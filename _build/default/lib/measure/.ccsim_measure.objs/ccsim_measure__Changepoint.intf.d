lib/measure/changepoint.mli:
