lib/measure/changepoint.ml: Array Ccsim_util Float List
