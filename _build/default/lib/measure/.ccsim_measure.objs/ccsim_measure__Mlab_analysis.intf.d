lib/measure/mlab_analysis.mli: Ccsim_util Format Ndt
