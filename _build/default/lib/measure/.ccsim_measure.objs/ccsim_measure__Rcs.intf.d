lib/measure/rcs.mli:
