lib/measure/elasticity.ml: Array Ccsim_util Float
