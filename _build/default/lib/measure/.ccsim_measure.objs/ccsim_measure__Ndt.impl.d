lib/measure/ndt.ml: Array Ccsim_tcp Ccsim_util Float List
