lib/measure/elasticity.mli: Ccsim_util
