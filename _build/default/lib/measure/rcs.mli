(** Recursive Congestion Shares — the §5.3 model sketch.

    The paper closes by asking how to model an Internet where
    allocations come from "an economic arrangement that determines a
    network's bandwidth-shaping policy" rather than flow dynamics, and
    points at Recursive Congestion Shares [77]: capacity divides among
    economic entities by weight, recursively, down to individual flows.

    This module implements that allocation model as a pure computation
    (weighted max-min at every tree level, demand-bounded), so
    simulated enforcement mechanisms (weighted DRR, shapers) can be
    validated against the model's prediction — experiment X3. *)

type t
(** A share-tree node: an ISP, a customer, an application, or a flow. *)

val leaf : name:string -> demand_bps:float -> t
(** A flow (or aggregate) with an offered load; [Float.infinity] means
    persistently backlogged. Weight 1. *)

val node : name:string -> ?weight:float -> t list -> t
(** An interior entity whose capacity divides among its children by
    weight. Must have at least one child. *)

val weighted : float -> t -> t
(** Override a node's or leaf's weight (must be positive). *)

val name : t -> string
val total_demand : t -> float

val allocate : capacity_bps:float -> t -> (string * float) list
(** Allocations for every leaf, in tree order. At each level, the
    children split the parent's grant by weighted max-min with each
    subtree's total demand as its cap (so unused share recursively
    redistributes). Raises [Invalid_argument] on duplicate leaf names
    or negative capacity. *)

val allocation_for : (string * float) list -> string -> float
(** Lookup helper; raises [Not_found]. *)
