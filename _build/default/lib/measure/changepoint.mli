(** Offline change-point detection for piecewise-constant signals.

    Implements the two standard exact/greedy methods from Truong et
    al.'s review [60], which the paper cites for its M-Lab throughput
    analysis: PELT (exact minimisation of penalised least-squares
    segmentation cost, Killick et al. 2012) and binary segmentation.
    The cost of a segment is its sum of squared deviations from the
    segment mean (the L2 / piecewise-constant-mean model). *)

val segment_cost : prefix:float array -> prefix_sq:float array -> int -> int -> float
(** [segment_cost ~prefix ~prefix_sq i j] is the L2 cost of the
    half-open segment [\[i, j)] given prefix sums of the signal and its
    squares ([prefix.(k)] = sum of the first [k] values). *)

val prefix_sums : float array -> float array * float array
(** Prefix sums of values and squared values, each of length n+1. *)

val pelt : ?penalty:float -> float array -> int list
(** Change-point indices (each the start of a new segment, strictly
    between 0 and n), in increasing order. [penalty] defaults to
    {!default_penalty}. Empty and singleton signals yield no change
    points. *)

val binary_segmentation : ?penalty:float -> ?max_changes:int -> float array -> int list
(** Greedy top-down splitting; stops when the best split improves the
    cost by less than [penalty] or when [max_changes] is reached. *)

val default_penalty : float array -> float
(** BIC-style penalty: 2 sigma^2 log n, with sigma^2 estimated robustly
    from the median absolute successive difference (so level shifts do
    not inflate it). Falls back to a small positive value for
    near-constant signals. *)

val segment_means : float array -> int list -> (int * int * float) list
(** [(start, stop, mean)] for each segment induced by the change points
    (stop exclusive). *)

val largest_shift : float array -> int list -> float
(** Largest absolute difference between adjacent segment means; 0 when
    there are no change points. *)
