(* ccsim — regenerate the paper's figures and experiments from the CLI.

   Each subcommand runs one experiment from DESIGN.md's index and prints
   the paper-style rows. `ccsim all` runs everything (the same set the
   bench harness regenerates). *)

open Cmdliner

let seed_arg =
  let doc = "Deterministic seed for the experiment." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let duration_arg default =
  let doc = "Simulated seconds per scenario." in
  Arg.(value & opt float default & info [ "duration" ] ~docv:"SECONDS" ~doc)

let fig1_cmd =
  let run duration seed = Ccsim_core.Fig1_taxonomy.(print (run ~duration ~seed ())) in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Contention-prerequisite taxonomy behind Figure 1")
    Term.(const run $ duration_arg 60.0 $ seed_arg)

let fig2_cmd =
  let n_arg =
    let doc = "Number of NDT flows to generate (the paper used 9,984)." in
    Arg.(value & opt int 9984 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let run n seed = Ccsim_core.Fig2.(print (run ~n ~seed ())) in
  Cmd.v
    (Cmd.info "fig2" ~doc:"M-Lab NDT categorization + change-point analysis (Figure 2)")
    Term.(const run $ n_arg $ seed_arg)

let fig3_cmd =
  let run duration seed = Ccsim_core.Fig3.(print (run ~duration ~seed ())) in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Nimbus elasticity vs five cross-traffic types (Figure 3)")
    Term.(const run $ duration_arg 45.0 $ seed_arg)

let experiment name doc default_duration run_fn =
  let run duration seed = run_fn ~duration ~seed in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ duration_arg default_duration $ seed_arg)

let e1_cmd =
  experiment "e1" "FIFO vs DRR fair queueing across CCA pairings" 60.0 (fun ~duration ~seed ->
      Ccsim_core.E1_fq.(print (run ~duration ~seed ())))

let e2_cmd =
  experiment "e2" "Token-bucket shaping and policing pin the allocation" 30.0
    (fun ~duration ~seed -> Ccsim_core.E2_throttle.(print (run ~duration ~seed ())))

let e3_cmd =
  experiment "e3" "Short flows fit in the initial window" 60.0 (fun ~duration ~seed ->
      Ccsim_core.E3_short_flows.(print (run ~duration ~seed ())))

let e4_cmd =
  experiment "e4" "App-limited flows receive exactly their demand" 30.0 (fun ~duration ~seed ->
      Ccsim_core.E4_app_limited.(print (run ~duration ~seed ())))

let e5_cmd =
  experiment "e5" "ABR video bounds its own demand" 60.0 (fun ~duration ~seed ->
      Ccsim_core.E5_video.(print (run ~duration ~seed ())))

let e6_cmd =
  experiment "e6" "Sub-packet BDP starvation (Chen et al.)" 120.0 (fun ~duration ~seed ->
      Ccsim_core.E6_subpacket.(print (run ~duration ~seed ())))

let e7_cmd =
  experiment "e7" "Token-bucket bursts cause jitter under fair queueing" 30.0
    (fun ~duration ~seed -> Ccsim_core.E7_jitter.(print (run ~duration ~seed ())))

let x1_cmd =
  experiment "x1" "Utilization/delay trade-off on a wandering cellular-like link" 60.0
    (fun ~duration ~seed -> Ccsim_core.X1_cellular.(print (run ~duration ~seed ())))

let x2_cmd =
  experiment "x2" "Ware et al. harm matrix across CCA pairings" 40.0 (fun ~duration ~seed ->
      Ccsim_core.X2_harm.(print (run ~duration ~seed ())))

let x3_cmd =
  experiment "x3" "Per-flow vs per-user FQ vs the RCS share model" 40.0
    (fun ~duration ~seed -> Ccsim_core.X3_rcs.(print (run ~duration ~seed ())))

let x4_cmd =
  experiment "x4" "Scavenger (LEDBAT) software updates do not contend" 90.0
    (fun ~duration ~seed -> Ccsim_core.X4_scavenger.(print (run ~duration ~seed ())))

let a1_cmd =
  experiment "a1" "Ablation: Nimbus pulse amplitude vs separation" 45.0
    (fun ~duration ~seed -> Ccsim_core.A1_pulse_ablation.(print (run ~duration ~seed ())))

let a2_cmd =
  let run seed = Ccsim_core.A2_penalty_ablation.(print (run ~seed ())) in
  Cmd.v
    (Cmd.info "a2" ~doc:"Ablation: change-point penalty vs detector accuracy")
    Term.(const run $ seed_arg)

let a3_cmd =
  experiment "a3" "Ablation: DRR quantum vs isolation quality" 40.0 (fun ~duration ~seed ->
      Ccsim_core.A3_quantum_ablation.(print (run ~duration ~seed ())))

let a4_cmd =
  experiment "a4" "Ablation: buffer depth vs BBR/Reno share" 60.0 (fun ~duration ~seed ->
      Ccsim_core.A4_buffer_ablation.(print (run ~duration ~seed ())))

let all_cmd =
  let run seed =
    Ccsim_core.Fig1_taxonomy.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.Fig2.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.Fig3.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.E1_fq.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.E2_throttle.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.E3_short_flows.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.E4_app_limited.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.E5_video.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.E6_subpacket.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.E7_jitter.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.X1_cellular.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.X2_harm.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.X3_rcs.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.X4_scavenger.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.A1_pulse_ablation.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.A2_penalty_ablation.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.A3_quantum_ablation.(print (run ~seed ()));
    print_newline ();
    Ccsim_core.A4_buffer_ablation.(print (run ~seed ()))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every figure and experiment in DESIGN.md order")
    Term.(const run $ seed_arg)

let main =
  let doc = "reproduce 'How I Learned to Stop Worrying About CCA Contention' (HotNets '23)" in
  Cmd.group
    (Cmd.info "ccsim" ~version:"1.0.0" ~doc)
    [
      fig1_cmd;
      fig2_cmd;
      fig3_cmd;
      e1_cmd;
      e2_cmd;
      e3_cmd;
      e4_cmd;
      e5_cmd;
      e6_cmd;
      e7_cmd;
      x1_cmd;
      x2_cmd;
      x3_cmd;
      x4_cmd;
      a1_cmd;
      a2_cmd;
      a3_cmd;
      a4_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main)
