(* Benchmark harness: regenerates every figure/experiment from DESIGN.md's
   index (printing the paper-style rows), then measures the cost of
   regenerating each with Bechamel.

   The regeneration pass uses the experiments' default parameters; the
   Bechamel pass uses shortened scenarios so each sample stays cheap --
   the benches measure harness cost, not paper numbers. *)

open Bechamel
open Toolkit

let line title =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline title;
  print_endline (String.make 78 '=')

let regenerate_all () =
  line "FIG1 -- contention-prerequisite taxonomy";
  Ccsim_core.Fig1_taxonomy.(print (run ()));
  line "FIG2 -- M-Lab NDT categorization + change-point analysis";
  Ccsim_core.Fig2.(print (run ()));
  line "FIG3 -- Nimbus elasticity vs five cross-traffic types";
  Ccsim_core.Fig3.(print (run ()));
  line "E1 -- FIFO vs DRR fair queueing across CCA pairings";
  Ccsim_core.E1_fq.(print (run ()));
  line "E2 -- shaping/policing pin the allocation";
  Ccsim_core.E2_throttle.(print (run ()));
  line "E3 -- short flows vs the initial window";
  Ccsim_core.E3_short_flows.(print (run ()));
  line "E4 -- app-limited flows get their demand";
  Ccsim_core.E4_app_limited.(print (run ()));
  line "E5 -- ABR video bounds its demand";
  Ccsim_core.E5_video.(print (run ()));
  line "E6 -- sub-packet BDP starvation";
  Ccsim_core.E6_subpacket.(print (run ()));
  line "E7 -- token-bucket bursts cause jitter; FQ caps but cannot remove it";
  Ccsim_core.E7_jitter.(print (run ()));
  line "X1 -- utilization/delay trade-off under capacity variability";
  Ccsim_core.X1_cellular.(print (run ()));
  line "X2 -- Ware et al. harm matrix";
  Ccsim_core.X2_harm.(print (run ()));
  line "X3 -- per-flow vs per-user FQ vs the RCS share model";
  Ccsim_core.X3_rcs.(print (run ()));
  line "X4 -- scavenger software updates do not contend";
  Ccsim_core.X4_scavenger.(print (run ()));
  line "A1 -- ablation: Nimbus pulse amplitude";
  Ccsim_core.A1_pulse_ablation.(print (run ()));
  line "A2 -- ablation: change-point penalty";
  Ccsim_core.A2_penalty_ablation.(print (run ()));
  line "A3 -- ablation: DRR quantum";
  Ccsim_core.A3_quantum_ablation.(print (run ()));
  line "A4 -- ablation: buffer depth vs BBR/Reno share";
  Ccsim_core.A4_buffer_ablation.(print (run ()))

(* --- Bechamel timing of scaled-down regenerations --------------------------- *)

let bench_tests =
  Test.make_grouped ~name:"ccsim"
    [
      Test.make ~name:"fig1_taxonomy"
        (Staged.stage (fun () -> ignore (Ccsim_core.Fig1_taxonomy.run ~duration:15.0 ())));
      Test.make ~name:"fig2_mlab"
        (Staged.stage (fun () -> ignore (Ccsim_core.Fig2.run ~n:1000 ())));
      Test.make ~name:"fig3_elasticity"
        (Staged.stage (fun () -> ignore (Ccsim_core.Fig3.run ~duration:12.0 ())));
      Test.make ~name:"e1_fq_isolation"
        (Staged.stage (fun () -> ignore (Ccsim_core.E1_fq.run ~duration:15.0 ())));
      Test.make ~name:"e2_throttling"
        (Staged.stage (fun () -> ignore (Ccsim_core.E2_throttle.run ~duration:8.0 ())));
      Test.make ~name:"e3_short_flows"
        (Staged.stage (fun () -> ignore (Ccsim_core.E3_short_flows.run ~duration:10.0 ())));
      Test.make ~name:"e4_app_limited"
        (Staged.stage (fun () -> ignore (Ccsim_core.E4_app_limited.run ~duration:8.0 ())));
      Test.make ~name:"e5_video_abr"
        (Staged.stage (fun () -> ignore (Ccsim_core.E5_video.run ~duration:25.0 ())));
      Test.make ~name:"e6_subpacket"
        (Staged.stage (fun () -> ignore (Ccsim_core.E6_subpacket.run ~duration:40.0 ())));
      Test.make ~name:"e7_jitter"
        (Staged.stage (fun () -> ignore (Ccsim_core.E7_jitter.run ~duration:8.0 ())));
      Test.make ~name:"x1_cellular"
        (Staged.stage (fun () -> ignore (Ccsim_core.X1_cellular.run ~duration:15.0 ())));
      Test.make ~name:"x2_harm"
        (Staged.stage (fun () -> ignore (Ccsim_core.X2_harm.run ~duration:12.0 ())));
      Test.make ~name:"x3_rcs"
        (Staged.stage (fun () -> ignore (Ccsim_core.X3_rcs.run ~duration:10.0 ())));
      Test.make ~name:"x4_scavenger"
        (Staged.stage (fun () -> ignore (Ccsim_core.X4_scavenger.run ~duration:40.0 ())));
      Test.make ~name:"a1_pulse_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A1_pulse_ablation.run ~duration:15.0 ())));
      Test.make ~name:"a2_penalty_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A2_penalty_ablation.run ~n:500 ())));
      Test.make ~name:"a3_quantum_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A3_quantum_ablation.run ~duration:15.0 ())));
      Test.make ~name:"a4_buffer_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A4_buffer_ablation.run ~duration:20.0 ())));
    ]

let run_benchmarks () =
  line "Bechamel: regeneration cost per experiment (scaled-down scenarios)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:10 ~stabilize:false ~quota:(Time.second 5.0) ~kde:None () in
  let raw = Benchmark.all cfg instances bench_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Ccsim_util.Table.create
      ~columns:[ ("bench", Ccsim_util.Table.Left); ("seconds/run", Ccsim_util.Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, Printf.sprintf "%.3f" (ns /. 1e9)) :: !rows
      | Some _ | None -> rows := (name, "n/a") :: !rows)
    results;
  List.iter (fun (name, cell) -> Ccsim_util.Table.add_row table [ name; cell ])
    (List.sort compare !rows);
  Ccsim_util.Table.print table

let () =
  let only_bench = Array.exists (( = ) "--bench-only") Sys.argv in
  let only_rows = Array.exists (( = ) "--rows-only") Sys.argv in
  if not only_bench then regenerate_all ();
  if not only_rows then run_benchmarks ()
