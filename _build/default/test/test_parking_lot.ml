(* Tests for the multi-segment (parking-lot) topology. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Tcp = Ccsim_tcp
module U = Ccsim_util

let test_single_segment_delivery () =
  let sim = Sim.create () in
  let pl = Net.Parking_lot.create sim ~rates_bps:[| 10e6 |] () in
  let got = ref 0 in
  Net.Dispatch.register (Net.Parking_lot.fwd_dispatch pl) ~flow:0 (fun _ -> incr got);
  let data_entry, _ = Net.Parking_lot.attach pl ~flow:0 ~enter:0 ~exit_after:0 in
  data_entry (Net.Packet.data ~flow:0 ~seq:0 ~payload_bytes:1000 ~sent_at:0.0 ());
  Sim.run sim;
  Alcotest.(check int) "delivered" 1 !got

let test_multi_segment_routing () =
  (* Three segments; a flow entering at 0 and exiting after 1 must cross
     exactly segments 0 and 1 (never 2); a local flow on segment 2 only
     loads segment 2. *)
  let sim = Sim.create () in
  let pl = Net.Parking_lot.create sim ~rates_bps:[| 10e6; 10e6; 10e6 |] () in
  let links = Net.Parking_lot.links pl in
  let got = ref [] in
  Net.Dispatch.register (Net.Parking_lot.fwd_dispatch pl) ~flow:0 (fun _ -> got := 0 :: !got);
  Net.Dispatch.register (Net.Parking_lot.fwd_dispatch pl) ~flow:1 (fun _ -> got := 1 :: !got);
  let entry0, _ = Net.Parking_lot.attach pl ~flow:0 ~enter:0 ~exit_after:1 in
  let entry1, _ = Net.Parking_lot.attach pl ~flow:1 ~enter:2 ~exit_after:2 in
  entry0 (Net.Packet.data ~flow:0 ~seq:0 ~payload_bytes:1000 ~sent_at:0.0 ());
  entry1 (Net.Packet.data ~flow:1 ~seq:0 ~payload_bytes:1000 ~sent_at:0.0 ());
  Sim.run sim;
  Alcotest.(check int) "both delivered" 2 (List.length !got);
  Alcotest.(check int) "segment 0 carried one packet" 1
    (Net.Link.bytes_delivered links.(0) / 1052);
  Alcotest.(check int) "segment 1 carried one packet" 1
    (Net.Link.bytes_delivered links.(1) / 1052);
  Alcotest.(check int) "segment 2 carried one packet" 1
    (Net.Link.bytes_delivered links.(2) / 1052)

let test_attach_validation () =
  let sim = Sim.create () in
  let pl = Net.Parking_lot.create sim ~rates_bps:[| 1e6; 1e6 |] () in
  Alcotest.check_raises "bad range" (Invalid_argument "Parking_lot.attach: bad segment range")
    (fun () -> ignore (Net.Parking_lot.attach pl ~flow:0 ~enter:1 ~exit_after:0));
  ignore (Net.Parking_lot.attach pl ~flow:0 ~enter:0 ~exit_after:1);
  Alcotest.check_raises "double attach"
    (Invalid_argument "Parking_lot.attach: flow already attached") (fun () ->
      ignore (Net.Parking_lot.attach pl ~flow:0 ~enter:0 ~exit_after:1))

let run_parking_lot_flows ~qdisc_of =
  (* The classic 2-segment parking lot: one long flow end-to-end, one
     local flow per segment, all Reno bulk. *)
  let sim = Sim.create () in
  let pl =
    Net.Parking_lot.create sim ~rates_bps:[| 10e6; 10e6 |] ~delay_s:0.01 ?qdisc_of ()
  in
  let routes = function 0 -> (0, 1) | 1 -> (0, 0) | _ -> (1, 1) in
  let topo = Net.Parking_lot.as_topology pl ~flow_routes:routes in
  let conns =
    List.map
      (fun flow ->
        let conn = Tcp.Connection.establish topo ~flow ~cca:(Ccsim_cca.Reno.create ()) () in
        Tcp.Sender.set_unlimited conn.sender;
        conn)
      [ 0; 1; 2 ]
  in
  Sim.run ~until:40.0 sim;
  List.map
    (fun conn -> float_of_int (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver) *. 8.0 /. 40.0)
    conns

let test_long_flow_multi_hop_penalty () =
  match run_parking_lot_flows ~qdisc_of:None with
  | [ long; local_a; local_b ] ->
      (* Each segment is saturated by (long + one local); the long flow
         crosses two loss points, so under FIFO it gets less than the
         locals (the multi-hop penalty), and each segment stays busy. *)
      Alcotest.(check bool) "long flow below both locals" true
        (long < local_a && long < local_b);
      Alcotest.(check bool) "segments well used" true (long +. local_a > 8e6);
      Alcotest.(check bool) "long flow not starved" true (long > 1e6)
  | _ -> Alcotest.fail "expected three flows"

let test_fq_gives_long_flow_half () =
  match
    run_parking_lot_flows ~qdisc_of:(Some (fun _ -> Net.Drr.create ~limit_bytes:1_000_000 ()))
  with
  | [ long; local_a; local_b ] ->
      (* Per-segment DRR: the long flow gets half of each segment. *)
      Alcotest.(check bool) "long near half" true (long > 3.5e6 && long < 5.5e6);
      Alcotest.(check bool) "locals take the rest" true (local_a > 3.5e6 && local_b > 3.5e6)
  | _ -> Alcotest.fail "expected three flows"

let test_access_segment_is_the_binding_one () =
  (* §2.2's point quantified: a path whose first (access) segment is much
     slower than its core segments bottlenecks at the access link; core
     segments stay underused even with a competing core flow. *)
  let sim = Sim.create () in
  let pl =
    Net.Parking_lot.create sim ~rates_bps:[| 10e6; 100e6; 100e6 |] ~delay_s:0.005 ()
  in
  let routes = function 0 -> (0, 2) | _ -> (1, 2) in
  let topo = Net.Parking_lot.as_topology pl ~flow_routes:routes in
  let user = Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  let core = Tcp.Connection.establish topo ~flow:1 ~cca:(Ccsim_cca.Cubic.create ()) () in
  Tcp.Sender.set_unlimited user.sender;
  Tcp.Sender.set_unlimited core.sender;
  Sim.run ~until:30.0 sim;
  let rate conn =
    float_of_int (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver) *. 8.0 /. 30.0
  in
  (* The user flow is pinned by its access segment despite the core flow. *)
  Alcotest.(check bool) "user flow at access capacity" true
    (rate user > 8e6 && rate user < 10e6);
  Alcotest.(check bool) "core flow barely affected" true (rate core > 70e6)

let suite =
  [
    ("single segment delivery", `Quick, test_single_segment_delivery);
    ("multi-segment routing", `Quick, test_multi_segment_routing);
    ("attach validation", `Quick, test_attach_validation);
    ("long flow pays the multi-hop penalty (FIFO)", `Quick, test_long_flow_multi_hop_penalty);
    ("per-segment FQ gives the long flow half", `Quick, test_fq_gives_long_flow_half);
    ("access segment binds on short fat-core paths", `Quick, test_access_segment_is_the_binding_one);
  ]
