(* Tests for the later-added models: LEDBAT, the RCS share tree, and
   end-to-end ECN. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module U = Ccsim_util
module Rcs = Ccsim_measure.Rcs

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* --- LEDBAT unit behaviour -------------------------------------------------------- *)

let mss = U.Units.mss
let fmss = float_of_int mss

let ledbat_ack ~now ~rtt ~min_rtt cca =
  cca.Ccsim_cca.Cca.on_ack
    {
      Ccsim_cca.Cca.now;
      rtt_sample = Some rtt;
      srtt = rtt;
      min_rtt;
      newly_acked = mss;
      inflight = 10 * mss;
      delivery_rate = 1e6;
      app_limited = false;
      mss;
    }

let test_ledbat_grows_below_target () =
  let cca = Ccsim_cca.Ledbat.create ~target_delay:0.025 () in
  let before = cca.Ccsim_cca.Cca.cwnd in
  for i = 1 to 50 do
    ledbat_ack ~now:(float_of_int i *. 0.05) ~rtt:0.051 ~min_rtt:0.05 cca
  done;
  Alcotest.(check bool) "grows with empty queue" true (cca.Ccsim_cca.Cca.cwnd > before)

let test_ledbat_shrinks_above_target () =
  let cca =
    Ccsim_cca.Ledbat.create ~target_delay:0.025 ~initial_cwnd:(50.0 *. fmss) ()
  in
  let before = cca.Ccsim_cca.Cca.cwnd in
  for i = 1 to 50 do
    (* 100 ms of queueing: far above the 25 ms target. *)
    ledbat_ack ~now:(float_of_int i *. 0.05) ~rtt:0.15 ~min_rtt:0.05 cca
  done;
  Alcotest.(check bool) "shrinks when delay exceeds target" true
    (cca.Ccsim_cca.Cca.cwnd < before)

let test_ledbat_yields_to_reno () =
  let sim = Sim.create () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:(U.Units.mbps 20.0) ~delay_s:0.02 () in
  let scavenger =
    Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Ledbat.create ()) ()
  in
  let foreground =
    Ccsim_tcp.Connection.establish topo ~flow:1 ~cca:(Ccsim_cca.Reno.create ()) ()
  in
  Ccsim_tcp.Sender.set_unlimited scavenger.sender;
  Ccsim_tcp.Sender.set_unlimited foreground.sender;
  Sim.run ~until:40.0 sim;
  let rx c = float_of_int (Ccsim_tcp.Receiver.bytes_received c.Ccsim_tcp.Connection.receiver) in
  Alcotest.(check bool) "scavenger takes far less than the foreground flow" true
    (rx scavenger < 0.4 *. rx foreground)

let test_ledbat_uses_idle_link () =
  let sim = Sim.create () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:(U.Units.mbps 20.0) ~delay_s:0.02 () in
  let conn = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Ledbat.create ()) () in
  Ccsim_tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:30.0 sim;
  let goodput = Ccsim_tcp.Connection.goodput_bps conn ~over:30.0 in
  Alcotest.(check bool) "fills an idle link" true (goodput > U.Units.mbps 12.0)

(* --- RCS share tree ----------------------------------------------------------------- *)

let backlogged name = Rcs.leaf ~name ~demand_bps:Float.infinity

let test_rcs_flat_even_split () =
  let tree = Rcs.node ~name:"link" [ backlogged "a"; backlogged "b" ] in
  let alloc = Rcs.allocate ~capacity_bps:10e6 tree in
  check_close "a" 1.0 5e6 (Rcs.allocation_for alloc "a");
  check_close "b" 1.0 5e6 (Rcs.allocation_for alloc "b")

let test_rcs_hierarchy_beats_flow_splitting () =
  let tree =
    Rcs.node ~name:"link"
      [
        Rcs.node ~name:"userA" [ backlogged "a0"; backlogged "a1"; backlogged "a2" ];
        Rcs.node ~name:"userB" [ backlogged "b0" ];
      ]
  in
  let alloc = Rcs.allocate ~capacity_bps:12e6 tree in
  (* The user split is 50/50 no matter how many flows A opens. *)
  check_close "b gets half" 1.0 6e6 (Rcs.allocation_for alloc "b0");
  check_close "a flows split a's half" 1.0 2e6 (Rcs.allocation_for alloc "a0")

let test_rcs_demand_redistribution () =
  let tree =
    Rcs.node ~name:"link"
      [ Rcs.leaf ~name:"small" ~demand_bps:1e6; backlogged "big" ]
  in
  let alloc = Rcs.allocate ~capacity_bps:10e6 tree in
  check_close "demand met" 1.0 1e6 (Rcs.allocation_for alloc "small");
  check_close "residual redistributed" 1.0 9e6 (Rcs.allocation_for alloc "big")

let test_rcs_weights () =
  let tree =
    Rcs.node ~name:"link" [ Rcs.weighted 3.0 (backlogged "gold"); backlogged "bronze" ]
  in
  let alloc = Rcs.allocate ~capacity_bps:8e6 tree in
  check_close "gold 3x" 1.0 6e6 (Rcs.allocation_for alloc "gold");
  check_close "bronze 1x" 1.0 2e6 (Rcs.allocation_for alloc "bronze")

let test_rcs_nested_redistribution () =
  (* User A's demand is tiny; the slack flows to user B across the level. *)
  let tree =
    Rcs.node ~name:"link"
      [
        Rcs.node ~name:"userA" [ Rcs.leaf ~name:"a0" ~demand_bps:2e6 ];
        Rcs.node ~name:"userB" [ backlogged "b0" ];
      ]
  in
  let alloc = Rcs.allocate ~capacity_bps:10e6 tree in
  check_close "a's demand" 1.0 2e6 (Rcs.allocation_for alloc "a0");
  check_close "b absorbs slack" 1.0 8e6 (Rcs.allocation_for alloc "b0")

let test_rcs_validation () =
  Alcotest.check_raises "duplicate names" (Invalid_argument "Rcs.allocate: duplicate leaf names")
    (fun () ->
      ignore
        (Rcs.allocate ~capacity_bps:1.0 (Rcs.node ~name:"n" [ backlogged "x"; backlogged "x" ])));
  Alcotest.check_raises "empty node" (Invalid_argument "Rcs.node: needs at least one child")
    (fun () -> ignore (Rcs.node ~name:"n" []))

let test_rcs_total_demand () =
  let tree =
    Rcs.node ~name:"n" [ Rcs.leaf ~name:"a" ~demand_bps:1.0; Rcs.leaf ~name:"b" ~demand_bps:2.0 ]
  in
  check_close "sum" 1e-9 3.0 (Rcs.total_demand tree)

(* --- ECN end-to-end ------------------------------------------------------------------- *)

let test_ecn_marks_trigger_backoff_without_retx () =
  let sim = Sim.create () in
  let qdisc =
    Net.Red.create ~min_th_bytes:(10 * 1500) ~max_th_bytes:(40 * 1500) ~max_p:0.3 ~weight:0.05
      ~ecn:true ()
  in
  let topo = Net.Topology.dumbbell sim ~rate_bps:(U.Units.mbps 20.0) ~delay_s:0.02 ~qdisc () in
  let conn = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) () in
  Ccsim_tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:30.0 sim;
  Alcotest.(check bool) "RED marked packets" true (qdisc.Net.Qdisc.stats.ecn_marked > 0);
  Alcotest.(check bool) "sender responded to ECN" true
    (Ccsim_tcp.Sender.ecn_responses conn.sender > 0);
  (* ECN backoff happens without the loss/retransmit cycle. *)
  Alcotest.(check bool) "far fewer retransmits than ECN responses" true
    (Ccsim_tcp.Sender.segs_retrans conn.sender < Ccsim_tcp.Sender.ecn_responses conn.sender);
  let goodput = Ccsim_tcp.Connection.goodput_bps conn ~over:30.0 in
  Alcotest.(check bool) "link still well used" true (goodput > U.Units.mbps 14.0)

let test_ecn_response_rate_limited () =
  (* Two ECE acks within one RTT must trigger only one window cut. *)
  let sim = Sim.create () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:(U.Units.mbps 50.0) ~delay_s:0.02 () in
  let cca = Ccsim_cca.Reno.create () in
  let conn = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca () in
  Ccsim_tcp.Sender.write conn.sender 200_000;
  Sim.run ~until:2.0 sim;
  let before = Ccsim_tcp.Sender.ecn_responses conn.sender in
  let ack n =
    Net.Packet.ack ~flow:0 ~ack:n ~ece:true ~sent_at:(Sim.now sim) ()
  in
  let acked = Ccsim_tcp.Sender.bytes_acked conn.sender in
  Ccsim_tcp.Sender.handle_ack conn.sender (ack acked);
  Ccsim_tcp.Sender.handle_ack conn.sender (ack acked);
  Alcotest.(check int) "one response for back-to-back ECE" (before + 1)
    (Ccsim_tcp.Sender.ecn_responses conn.sender)

(* --- QCheck properties for the allocation model ---------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let demands_gen = list_of_size (Gen.int_range 1 8) (float_range 0.0 100.0) in
  [
    Test.make ~name:"rcs: flat allocation conserves capacity and respects demands" ~count:300
      (pair (float_range 1.0 1000.0) demands_gen)
      (fun (capacity, demands) ->
        let leaves =
          List.mapi (fun i d -> Rcs.leaf ~name:(string_of_int i) ~demand_bps:d) demands
        in
        let alloc = Rcs.allocate ~capacity_bps:capacity (Rcs.node ~name:"root" leaves) in
        let total = List.fold_left (fun acc (_, a) -> acc +. a) 0.0 alloc in
        let demand_sum = List.fold_left ( +. ) 0.0 demands in
        total <= capacity +. 1e-6
        && total <= demand_sum +. 1e-6
        && List.for_all2
             (fun d (_, a) -> a <= d +. 1e-6 && a >= -1e-9)
             demands alloc);
    Test.make ~name:"rcs: grouping flows never changes the capacity used" ~count:200
      (pair (float_range 1.0 1000.0) demands_gen)
      (fun (capacity, demands) ->
        let leaves () =
          List.mapi (fun i d -> Rcs.leaf ~name:(string_of_int i) ~demand_bps:d) demands
        in
        let flat = Rcs.allocate ~capacity_bps:capacity (Rcs.node ~name:"root" (leaves ())) in
        let grouped =
          Rcs.allocate ~capacity_bps:capacity
            (Rcs.node ~name:"root" [ Rcs.node ~name:"group" (leaves ()) ])
        in
        let sum l = List.fold_left (fun acc (_, a) -> acc +. a) 0.0 l in
        Float.abs (sum flat -. sum grouped) < 1e-6);
    Test.make ~name:"token bucket: long-run conformance" ~count:100
      (pair (float_range 1e3 1e7) (int_range 1500 100_000))
      (fun (rate_bps, burst) ->
        let tb = Ccsim_net.Token_bucket.create ~rate_bps ~burst_bytes:burst ~now:0.0 in
        (* Offer a packet every millisecond for 10 simulated seconds. *)
        let passed = ref 0 in
        for i = 1 to 10_000 do
          if
            Ccsim_net.Token_bucket.try_consume tb ~now:(0.001 *. float_of_int i) ~bytes:1000
          then incr passed
        done;
        (* Conforming bytes <= burst + rate * time (plus one packet of slack). *)
        float_of_int (!passed * 1000) <= float_of_int burst +. (rate_bps *. 10.0 /. 8.0) +. 1000.0);
  ]

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
  @ [
    ("ledbat: grows below target delay", `Quick, test_ledbat_grows_below_target);
    ("ledbat: shrinks above target delay", `Quick, test_ledbat_shrinks_above_target);
    ("ledbat: yields to reno", `Quick, test_ledbat_yields_to_reno);
    ("ledbat: fills an idle link", `Quick, test_ledbat_uses_idle_link);
    ("rcs: flat even split", `Quick, test_rcs_flat_even_split);
    ("rcs: hierarchy beats flow-splitting", `Quick, test_rcs_hierarchy_beats_flow_splitting);
    ("rcs: demand-bounded redistribution", `Quick, test_rcs_demand_redistribution);
    ("rcs: weights", `Quick, test_rcs_weights);
    ("rcs: nested slack redistribution", `Quick, test_rcs_nested_redistribution);
    ("rcs: validation", `Quick, test_rcs_validation);
    ("rcs: total demand", `Quick, test_rcs_total_demand);
    ("ecn: marks cut the window without retransmits", `Quick, test_ecn_marks_trigger_backoff_without_retx);
    ("ecn: response rate-limited per RTT", `Quick, test_ecn_response_rate_limited);
  ]
