(* Integration tests: full scenarios through the public API, checking the
   paper's qualitative claims hold in the simulator. These are the
   "does the whole stack behave like a network" tests. *)

module Scenario = Ccsim_core.Scenario
module Results = Ccsim_core.Results
module U = Ccsim_util

let mbps = U.Units.mbps

let run_pair ?(rate = 48.0) ?(duration = 40.0) ?qdisc cca_a cca_b =
  let scenario =
    Scenario.make ~name:"pair" ~rate_bps:(mbps rate) ~delay_s:0.025 ?qdisc ~duration
      ~warmup:10.0
      [
        Scenario.flow "a" ~cca:cca_a ~app:Scenario.Bulk;
        Scenario.flow "b" ~cca:cca_b ~app:Scenario.Bulk;
      ]
  in
  Scenario.run scenario

let test_reno_pair_fair_and_efficient () =
  let r = run_pair Scenario.Reno Scenario.Reno in
  Alcotest.(check bool) "jain ~1" true (r.jain_index > 0.95);
  Alcotest.(check bool) "high utilization" true (r.utilization > 0.85)

let test_cubic_beats_reno_on_fifo () =
  let r = run_pair Scenario.Cubic Scenario.Reno in
  let a = Results.find r "a" and b = Results.find r "b" in
  Alcotest.(check bool) "cubic takes more" true (a.goodput_bps > b.goodput_bps)

let test_bbr_dominates_reno_on_fifo () =
  let r = run_pair Scenario.Bbr Scenario.Reno in
  let a = Results.find r "a" and b = Results.find r "b" in
  Alcotest.(check bool) "bbr takes far more than fair share" true
    (a.goodput_bps > 2.0 *. b.goodput_bps)

let test_vegas_loses_to_reno_on_fifo () =
  let r = run_pair Scenario.Vegas Scenario.Reno in
  let a = Results.find r "a" and b = Results.find r "b" in
  Alcotest.(check bool) "delay-based yields" true (a.goodput_bps < b.goodput_bps)

let test_drr_equalizes_heterogeneous_pairs () =
  List.iter
    (fun (cca_a, cca_b) ->
      let r =
        run_pair ~qdisc:(Scenario.Drr { quantum_bytes = None; limit_bytes = None }) cca_a cca_b
      in
      Alcotest.(check bool) "fq isolates" true (r.jain_index > 0.85))
    [
      (Scenario.Cubic, Scenario.Reno);
      (Scenario.Bbr, Scenario.Reno);
      (Scenario.Vegas, Scenario.Reno);
    ]

let test_warmup_excluded_from_goodput () =
  (* A flow starting after warmup still reports its own-window goodput. *)
  let scenario =
    Scenario.make ~name:"late" ~rate_bps:(mbps 20.0) ~delay_s:0.01 ~duration:30.0 ~warmup:5.0
      [ Scenario.flow "late" ~cca:Scenario.Cubic ~app:Scenario.Bulk ~start:20.0 ]
  in
  let r = Scenario.run scenario in
  let f = Results.find r "late" in
  (* Goodput is measured over [20, 30], during which it fills the link. *)
  Alcotest.(check bool) "late flow measured from its start" true (f.goodput_bps > mbps 10.0)

let test_shaped_flow_pinned_to_plan () =
  List.iter
    (fun cca ->
      let scenario =
        Scenario.make ~name:"plan" ~rate_bps:(mbps 100.0) ~delay_s:0.02 ~duration:20.0
          ~warmup:5.0
          [
            Scenario.flow "flow" ~cca ~app:Scenario.Bulk
              ~ingress:
                (Ccsim_net.Topology.Shape
                   { rate_bps = mbps 20.0; burst_bytes = 100_000 });
          ]
      in
      let r = Scenario.run scenario in
      let f = Results.find r "flow" in
      let got = U.Units.to_mbps f.goodput_bps in
      (* Loss-based CCAs track the plan rate almost exactly; BBRv1's
         bursts above the token rate cost it some of the plan (a known
         BBR-vs-shaper pathology — see EXPERIMENTS.md/E2). Either way
         the allocation is set by the shaper, never above the plan. *)
      Alcotest.(check bool) "at or below the plan regardless of CCA" true
        (got > 12.0 && got < 20.5))
    [ Scenario.Reno; Scenario.Cubic; Scenario.Bbr ]

let test_cbr_under_capacity_gets_demand () =
  let scenario =
    Scenario.make ~name:"demand" ~rate_bps:(mbps 50.0) ~delay_s:0.02 ~duration:20.0 ~warmup:5.0
      [
        Scenario.flow "a" ~cca:Scenario.Cubic ~app:(Scenario.Cbr_tcp { rate_bps = mbps 10.0 });
        Scenario.flow "b" ~cca:Scenario.Bbr ~app:(Scenario.Cbr_tcp { rate_bps = mbps 15.0 });
      ]
  in
  let r = Scenario.run scenario in
  let a = Results.find r "a" and b = Results.find r "b" in
  Alcotest.(check bool) "a gets its 10M" true (Float.abs (U.Units.to_mbps a.goodput_bps -. 10.0) < 1.0);
  Alcotest.(check bool) "b gets its 15M" true (Float.abs (U.Units.to_mbps b.goodput_bps -. 15.0) < 1.5)

let test_udp_cbr_unaffected_by_tcp_under_drr () =
  let scenario =
    Scenario.make ~name:"isolation" ~rate_bps:(mbps 20.0) ~delay_s:0.01
      ~qdisc:(Scenario.Drr { quantum_bytes = None; limit_bytes = None })
      ~duration:20.0 ~warmup:5.0
      [
        Scenario.flow "cbr" ~app:(Scenario.Cbr_udp { rate_bps = mbps 3.0 });
        Scenario.flow "bulk" ~cca:Scenario.Cubic ~app:Scenario.Bulk;
      ]
  in
  let r = Scenario.run scenario in
  let cbr = Results.find r "cbr" in
  Alcotest.(check bool) "cbr keeps its rate under fq" true
    (U.Units.to_mbps cbr.goodput_bps > 2.7)

let test_scenario_determinism () =
  let run () =
    let r = run_pair ~duration:20.0 Scenario.Cubic Scenario.Reno in
    List.map (fun (f : Results.flow_result) -> f.goodput_bps) r.flows
  in
  let a = run () and b = run () in
  List.iter2 (fun x y -> Alcotest.(check (float 1e-9)) "bit-identical reruns" x y) a b

let test_short_flows_background () =
  let scenario =
    Scenario.make ~name:"bg" ~rate_bps:(mbps 50.0) ~delay_s:0.01 ~duration:20.0 ~warmup:5.0
      ~short_flows:
        { Scenario.arrival_rate = 10.0; mean_size_bytes = 30_000.0; sf_stop = Some 15.0 }
      [ Scenario.flow "bulk" ~cca:Scenario.Cubic ~app:Scenario.Bulk ]
  in
  let r = Scenario.run scenario in
  match r.short_flow_stats with
  | None -> Alcotest.fail "short-flow stats missing"
  | Some s ->
      Alcotest.(check bool) "flows spawned" true (s.spawned > 50);
      Alcotest.(check bool) "most completed" true
        (float_of_int s.completed > 0.9 *. float_of_int s.spawned)

let test_nimbus_handle_exposed () =
  let scenario =
    Scenario.make ~name:"nimbus" ~rate_bps:(mbps 48.0) ~delay_s:0.05 ~duration:20.0 ~warmup:5.0
      [
        Scenario.flow "probe"
          ~cca:(Scenario.Nimbus { mode_switching = false; known_capacity_bps = Some (mbps 48.0) })
          ~app:Scenario.Bulk;
      ]
  in
  let r = Scenario.run scenario in
  let probe = Results.find r "probe" in
  match probe.nimbus with
  | None -> Alcotest.fail "nimbus handle missing"
  | Some h ->
      Alcotest.(check bool) "elasticity series populated" true
        (U.Timeseries.length h.elasticity > 5);
      (* Solo probe on an idle link: no cross traffic, low elasticity. *)
      let values = U.Timeseries.values h.elasticity in
      Alcotest.(check bool) "solo probe reads inelastic" true
        (U.Stats.percentile values 90.0 < 0.5)

let test_results_lookup_missing () =
  let r = run_pair ~duration:15.0 Scenario.Reno Scenario.Reno in
  Alcotest.check_raises "unknown label" Not_found (fun () -> ignore (Results.find r "nope"))

let suite =
  [
    ("reno/reno: fair and efficient", `Slow, test_reno_pair_fair_and_efficient);
    ("cubic/reno: cubic wins on fifo", `Slow, test_cubic_beats_reno_on_fifo);
    ("bbr/reno: bbr dominates on fifo", `Slow, test_bbr_dominates_reno_on_fifo);
    ("vegas/reno: delay-based yields", `Slow, test_vegas_loses_to_reno_on_fifo);
    ("drr: heterogeneous pairs equalized", `Slow, test_drr_equalizes_heterogeneous_pairs);
    ("scenario: late start measured correctly", `Quick, test_warmup_excluded_from_goodput);
    ("scenario: shaping pins any CCA to the plan", `Slow, test_shaped_flow_pinned_to_plan);
    ("scenario: demand met under capacity", `Quick, test_cbr_under_capacity_gets_demand);
    ("scenario: drr isolates udp cbr", `Quick, test_udp_cbr_unaffected_by_tcp_under_drr);
    ("scenario: deterministic", `Quick, test_scenario_determinism);
    ("scenario: background short flows", `Quick, test_short_flows_background);
    ("scenario: nimbus handle exposed", `Quick, test_nimbus_handle_exposed);
    ("results: missing label raises", `Quick, test_results_lookup_missing);
  ]
