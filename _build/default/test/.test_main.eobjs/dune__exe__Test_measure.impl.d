test/test_measure.ml: Alcotest Array Ccsim_app Ccsim_cca Ccsim_engine Ccsim_measure Ccsim_net Ccsim_tcp Ccsim_util Float List
