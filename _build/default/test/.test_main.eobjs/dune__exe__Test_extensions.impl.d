test/test_extensions.ml: Alcotest Array Ccsim_cca Ccsim_core Ccsim_engine Ccsim_net Ccsim_tcp Ccsim_util List Printf String
