test/test_features.ml: Alcotest Ccsim_cca Ccsim_engine Ccsim_net Ccsim_tcp Ccsim_util
