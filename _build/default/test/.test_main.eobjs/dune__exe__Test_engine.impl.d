test/test_engine.ml: Alcotest Array Ccsim_engine Ccsim_util List
