test/test_util.ml: Alcotest Array Ccsim_util Complex Float Fun Gen List QCheck QCheck_alcotest String Test
