test/test_net.ml: Alcotest Ccsim_engine Ccsim_net Ccsim_util Hashtbl List Option
