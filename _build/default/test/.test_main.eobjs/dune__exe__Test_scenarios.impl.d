test/test_scenarios.ml: Alcotest Ccsim_core Ccsim_net Ccsim_util Float List
