test/test_models.ml: Alcotest Ccsim_cca Ccsim_engine Ccsim_measure Ccsim_net Ccsim_tcp Ccsim_util Float Gen List QCheck QCheck_alcotest Test
