test/test_tcp.ml: Alcotest Array Ccsim_cca Ccsim_engine Ccsim_net Ccsim_tcp Ccsim_util List
