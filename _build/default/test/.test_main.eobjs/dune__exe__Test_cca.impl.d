test/test_cca.ml: Alcotest Ccsim_cca Ccsim_util List
